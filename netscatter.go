// Package netscatter is a from-scratch reproduction of "NetScatter:
// Enabling Large-Scale Backscatter Networks" (Hessar, Najafi, Gollakota;
// NSDI 2019): the first wireless protocol scaling to hundreds of
// concurrent backscatter transmissions via distributed chirp spread
// spectrum coding — each device ON-OFF keys its own cyclic shift of a
// shared chirp, and the access point decodes everyone with a single FFT
// per symbol.
//
// This package is the public facade. It wires together the internal
// substrates (chirp DSP, RF channel models, backscatter hardware
// models, the distributed-CSS codec, the MAC protocol and the office
// deployment generator) into a small API:
//
//	net, _ := netscatter.NewNetwork(netscatter.DefaultParams(), netscatter.Options{Devices: 64, Seed: 1})
//	round, _ := net.Run(map[int][]byte{0: []byte("hi"), 5: []byte("yo")})
//	fmt.Println(round.Payloads[0], round.Payloads[5])
//
// The cmd/ binaries and examples/ directories exercise this API; the
// internal/exper registry regenerates every table and figure of the
// paper's evaluation.
package netscatter

import (
	"fmt"

	"netscatter/internal/air"
	"netscatter/internal/chirp"
	"netscatter/internal/core"
	"netscatter/internal/deploy"
	"netscatter/internal/dsp"
	"netscatter/internal/hw"
	"netscatter/internal/mac"
	"netscatter/internal/radio"
)

// Params is the physical-layer configuration.
type Params struct {
	// SF is the spreading factor (9 in the paper's deployment).
	SF int
	// BandwidthHz is the chirp bandwidth (500 kHz in the deployment).
	BandwidthHz float64
	// Skip is the minimum cyclic-shift spacing between devices (2 in
	// the deployment; larger spacing is used automatically when fewer
	// devices than slots are present).
	Skip int
	// Oversample > 1 enables the bandwidth-aggregation mode of §3.1.
	Oversample int
}

// DefaultParams returns the deployed configuration: 500 kHz, SF 9,
// SKIP 2 — 256 concurrent devices at 976 bps each.
func DefaultParams() Params {
	return Params{SF: 9, BandwidthHz: 500e3, Skip: 2, Oversample: 1}
}

func (p Params) chirp() chirp.Params {
	return chirp.Params{SF: p.SF, BW: p.BandwidthHz, Oversample: p.Oversample}
}

// DeviceBitRate returns the per-device ON-OFF keying bitrate: BW/2^SF.
func (p Params) DeviceBitRate() float64 { return p.chirp().OOKBitRate() }

// MaxDevices returns the number of concurrent devices supported:
// Oversample·2^SF/Skip.
func (p Params) MaxDevices() int { return p.chirp().N() / p.Skip }

// Options configures a simulated network.
type Options struct {
	// Devices is the number of tags to deploy (<= Params.MaxDevices).
	Devices int
	// Seed drives all randomness; equal seeds reproduce runs exactly.
	Seed int64
	// PayloadBytes per device per round (default 5, as in §4.4).
	PayloadBytes int
	// Office overrides the floor plan (default: the 12-room 40x20 m
	// office of the paper's deployment).
	Office *deploy.FloorPlan
	// DisablePowerControl turns off device power adaptation.
	DisablePowerControl bool
	// Fading enables per-round Ricean channel variation.
	Fading bool
}

// Network is a simulated NetScatter deployment: an AP plus Devices tags
// placed across an office floor, associated and ready to run concurrent
// rounds.
type Network struct {
	params  Params
	opts    Options
	cp      chirp.Params
	book    *core.CodeBook
	decoder *core.ParallelDecoder
	dep     *deploy.Deployment
	rng     *dsp.Rand

	devices []*Device
}

// Device is one simulated tag.
type Device struct {
	// Index is the device's position in the network (0-based).
	Index int
	// Shift is its assigned cyclic shift.
	Shift int
	// Slot is its code-book slot.
	Slot int
	// SNRdB is its uplink SNR at maximum power gain.
	SNRdB float64
	// GainDB is its current backscatter power-gain setting.
	GainDB float64
	// Position on the floor plan, in meters.
	Position deploy.Point
	// DownlinkRSSIdBm is the AP query strength at the tag's envelope
	// detector — the input to the power-adaptation loop.
	DownlinkRSSIdBm float64

	enc   *Encoder
	osc   radio.Oscillator
	fader *radio.FadingProcess
	pc    *mac.PowerController
}

// Encoder aliases the core encoder for advanced use.
type Encoder = core.Encoder

// NewNetwork deploys and associates a network.
func NewNetwork(params Params, opts Options) (*Network, error) {
	cp := params.chirp()
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	if opts.Devices <= 0 {
		return nil, fmt.Errorf("netscatter: Options.Devices must be positive")
	}
	if opts.Devices > params.MaxDevices() {
		return nil, fmt.Errorf("netscatter: %d devices exceed capacity %d", opts.Devices, params.MaxDevices())
	}
	if opts.PayloadBytes == 0 {
		opts.PayloadBytes = 5
	}
	plan := deploy.DefaultOffice
	if opts.Office != nil {
		plan = *opts.Office
	}
	rng := dsp.NewRand(opts.Seed)
	dep := deploy.Generate(plan, radio.DefaultLinkBudget, opts.Devices, params.BandwidthHz, rng)

	// Spread devices across unused spectrum (effective SKIP grows when
	// fewer devices than slots).
	skip := params.Skip
	if s := cp.N() / opts.Devices; s > skip {
		skip = s
	}
	if max := cp.N() / 2; skip > max {
		skip = max
	}
	book, err := core.NewCodeBook(cp, skip)
	if err != nil {
		return nil, err
	}
	dcfg := core.DefaultDecoderConfig(skip)
	if dcfg.GuardBins > 2 {
		dcfg.GuardBins = 2
	}
	dcfg.NoiseFloor = float64(cp.N())

	n := &Network{
		params:  params,
		opts:    opts,
		cp:      cp,
		book:    book,
		decoder: core.NewParallelDecoder(book, dcfg, 0),
		dep:     dep,
		rng:     rng,
	}

	// Association: power rule, then power-aware allocation.
	ids := make([]uint8, opts.Devices)
	snrs := make([]float64, opts.Devices)
	gains := make([]float64, opts.Devices)
	pcs := make([]*mac.PowerController, opts.Devices)
	for i := 0; i < opts.Devices; i++ {
		ids[i] = uint8(i)
		gain := 0.0
		if !opts.DisablePowerControl {
			pcs[i] = mac.NewPowerController()
			gain = pcs[i].AssociateGainDB(dep.Devices[i].DownlinkRSSIdBm)
		}
		gains[i] = gain
		snrs[i] = dep.Devices[i].UplinkSNRdB + gain
	}
	alloc := mac.NewDataOnlyAllocator(book)
	assign := alloc.AssignAll(ids, snrs)

	for i := 0; i < opts.Devices; i++ {
		slot := assign[uint8(i)]
		shift := book.ShiftOfSlot(slot)
		dev := &Device{
			Index:           i,
			Shift:           shift,
			Slot:            slot,
			SNRdB:           dep.Devices[i].UplinkSNRdB,
			GainDB:          gains[i],
			Position:        dep.Devices[i].Pos,
			DownlinkRSSIdBm: dep.Devices[i].DownlinkRSSIdBm,
			enc:             core.NewEncoder(cp, shift),
			osc:             radio.NewBackscatterOscillator(rng, 20, 50),
			pc:              pcs[i],
		}
		if opts.Fading {
			dev.fader = radio.NewFadingProcess(10, 0.97, rng.Fork())
		}
		n.devices = append(n.devices, dev)
	}
	return n, nil
}

// Devices returns the network's tags.
func (n *Network) Devices() []*Device { return n.devices }

// Params returns the network's physical-layer configuration.
func (n *Network) Params() Params { return n.params }

// Round is the outcome of one concurrent transmission round.
type Round struct {
	// Payloads maps device index to the correctly decoded payload
	// (CRC-checked). Devices that failed to decode are absent.
	Payloads map[int][]byte
	// Detected lists whether each transmitting device's preamble was
	// found.
	Detected map[int]bool
	// Duration is the round's on-air time in seconds (query + shared
	// preamble + payload).
	Duration float64
	// FFTs is the number of receiver FFT operations (constant in the
	// number of devices).
	FFTs int
}

// Run executes one concurrent round: every device with an entry in
// payloads transmits simultaneously; the AP decodes them all from one
// received stream. All payloads must share a length.
func (n *Network) Run(payloads map[int][]byte) (*Round, error) {
	if len(payloads) == 0 {
		return nil, fmt.Errorf("netscatter: no payloads")
	}
	size := -1
	for idx, pl := range payloads {
		if idx < 0 || idx >= len(n.devices) {
			return nil, fmt.Errorf("netscatter: device index %d out of range", idx)
		}
		if size == -1 {
			size = len(pl)
		} else if len(pl) != size {
			return nil, fmt.Errorf("netscatter: payload sizes differ (%d vs %d)", size, len(pl))
		}
	}
	payloadBits := size*8 + core.CRCBits
	frameSymbols := core.PreambleSymbols + payloadBits

	var txs []air.Transmission
	var shifts []int
	var idxs []int
	for idx := 0; idx < len(n.devices); idx++ {
		pl, ok := payloads[idx]
		if !ok {
			continue
		}
		dev := n.devices[idx]
		var fade complex128
		fadeDB := 0.0
		if dev.fader != nil {
			fade = dev.fader.Step()
			fadeDB = radio.LinearToDB(real(fade)*real(fade) + imag(fade)*imag(fade))
		}
		// Zero-overhead power adaptation (§3.2.3): the channel is
		// reciprocal, so the query's envelope-detector RSSI moves with
		// the same fading the uplink sees; the device counter-steers
		// its backscatter gain.
		if dev.pc != nil {
			if gain, participate := dev.pc.Adjust(dev.DownlinkRSSIdBm + fadeDB); participate {
				dev.GainDB = gain
			} else {
				continue // sit the round out rather than transmit badly
			}
		}
		enc := dev.enc
		bits := core.FrameBits(pl)
		txs = append(txs, air.Transmission{
			Mixed: func(dst []complex128, frac, freqHz float64, gain complex128) []complex128 {
				return enc.FrameBitsWaveformMixedInto(dst, bits, frac, freqHz, gain)
			},
			SNRdB:        dev.SNRdB + dev.GainDB,
			DelaySec:     hw.DefaultDelayModel.Draw(n.rng) + hw.PropagationDelaySec(dev.Position.Distance(n.dep.Plan.AP)),
			FreqOffsetHz: dev.osc.PacketOffsetHz(n.rng),
			FadeGain:     fade,
		})
		shifts = append(shifts, dev.Shift)
		idxs = append(idxs, idx)
	}

	ch := air.NewChannel(n.cp, n.rng)
	sig := ch.Receive(ch.FrameLength(frameSymbols, 2), txs)
	res, err := n.decoder.DecodeFrame(sig, 0, shifts, payloadBits)
	if err != nil {
		return nil, err
	}

	t := radio.DefaultASK
	round := &Round{
		Payloads: map[int][]byte{},
		Detected: map[int]bool{},
		Duration: t.Duration(32) + float64(frameSymbols)*n.cp.SymbolPeriod(),
		FFTs:     res.FFTs,
	}
	for i, dev := range res.Devices {
		idx := idxs[i]
		round.Detected[idx] = dev.Detected
		if dev.CRCOK {
			// The decode result aliases decoder arenas reused by the next
			// Run; the Round escapes to the caller, so copy.
			round.Payloads[idx] = append([]byte(nil), dev.Payload...)
		}
	}
	return round, nil
}

// AggregateThroughput returns the ideal aggregate network throughput in
// bits/s: Devices·BW/2^SF (§3.1: the whole bandwidth).
func (n *Network) AggregateThroughput() float64 {
	return float64(len(n.devices)) * n.cp.OOKBitRate()
}

// SNRSpread returns the deployment's max-min uplink SNR spread in dB.
func (n *Network) SNRSpread() float64 { return n.dep.SNRSpreadDB() }
