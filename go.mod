module netscatter

go 1.24
