package netscatter

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.MaxDevices() != 256 {
		t.Fatalf("MaxDevices = %d, want 256 (the paper's deployment)", p.MaxDevices())
	}
	if r := p.DeviceBitRate(); r < 976 || r > 977 {
		t.Fatalf("device bitrate = %v, want ~976 bps", r)
	}
}

func TestNetworkRoundTrip(t *testing.T) {
	net, err := NewNetwork(DefaultParams(), Options{Devices: 24, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	payloads := map[int][]byte{}
	for i := 0; i < 24; i++ {
		payloads[i] = []byte{byte(i), 0xBE, 0xEF, byte(255 - i)}
	}
	round, err := net.Run(payloads)
	if err != nil {
		t.Fatal(err)
	}
	ok := 0
	for i, want := range payloads {
		if got, found := round.Payloads[i]; found && bytes.Equal(got, want) {
			ok++
		}
	}
	if ok < 22 {
		t.Fatalf("only %d/24 payloads decoded", ok)
	}
	if round.Duration <= 0 || round.FFTs <= 0 {
		t.Fatalf("round accounting: %+v", round)
	}
}

func TestNetworkPartialRound(t *testing.T) {
	net, err := NewNetwork(DefaultParams(), Options{Devices: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Only a subset transmits this round.
	payloads := map[int][]byte{3: {1, 2}, 7: {3, 4}, 12: {5, 6}}
	round, err := net.Run(payloads)
	if err != nil {
		t.Fatal(err)
	}
	for idx := range payloads {
		if !bytes.Equal(round.Payloads[idx], payloads[idx]) {
			t.Fatalf("device %d payload mismatch", idx)
		}
	}
	if len(round.Detected) != 3 {
		t.Fatalf("detected map = %v", round.Detected)
	}
}

func TestNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(DefaultParams(), Options{Devices: 0}); err == nil {
		t.Error("zero devices accepted")
	}
	if _, err := NewNetwork(DefaultParams(), Options{Devices: 1000}); err == nil {
		t.Error("over-capacity accepted")
	}
	if _, err := NewNetwork(Params{SF: 99, BandwidthHz: 1, Skip: 2}, Options{Devices: 4}); err == nil {
		t.Error("invalid params accepted")
	}
	net, err := NewNetwork(DefaultParams(), Options{Devices: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(nil); err == nil {
		t.Error("empty round accepted")
	}
	if _, err := net.Run(map[int][]byte{9: {1}}); err == nil {
		t.Error("out-of-range device accepted")
	}
	if _, err := net.Run(map[int][]byte{0: {1}, 1: {1, 2}}); err == nil {
		t.Error("mismatched payload sizes accepted")
	}
}

func TestNetworkDeterministic(t *testing.T) {
	run := func() map[int][]byte {
		net, err := NewNetwork(DefaultParams(), Options{Devices: 8, Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		payloads := map[int][]byte{}
		for i := 0; i < 8; i++ {
			payloads[i] = []byte{byte(i * 11)}
		}
		round, err := net.Run(payloads)
		if err != nil {
			t.Fatal(err)
		}
		return round.Payloads
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic decode count: %d vs %d", len(a), len(b))
	}
	for k, v := range a {
		if !bytes.Equal(b[k], v) {
			t.Fatalf("non-deterministic payload for %d", k)
		}
	}
}

func TestNetworkQuickPayloads(t *testing.T) {
	net, err := NewNetwork(DefaultParams(), Options{Devices: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b [3]byte) bool {
		round, err := net.Run(map[int][]byte{0: a[:], 2: b[:]})
		if err != nil {
			return false
		}
		return bytes.Equal(round.Payloads[0], a[:]) && bytes.Equal(round.Payloads[2], b[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateThroughputScalesWithBandwidth(t *testing.T) {
	// §3.1: aggregate network throughput equals the chirp bandwidth
	// when fully loaded.
	p := DefaultParams()
	net, err := NewNetwork(p, Options{Devices: 256, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	got := net.AggregateThroughput()
	want := p.BandwidthHz / 2 // 256 of 512 shifts at SKIP 2
	if got < want*0.95 || got > want*1.05 {
		t.Fatalf("aggregate throughput %v, want ~%v", got, want)
	}
}

func TestFadingNetworkStillDecodes(t *testing.T) {
	net, err := NewNetwork(DefaultParams(), Options{Devices: 16, Seed: 8, Fading: true})
	if err != nil {
		t.Fatal(err)
	}
	okTotal, txTotal := 0, 0
	for r := 0; r < 3; r++ {
		payloads := map[int][]byte{}
		for i := 0; i < 16; i++ {
			payloads[i] = []byte{byte(r), byte(i)}
		}
		round, err := net.Run(payloads)
		if err != nil {
			t.Fatal(err)
		}
		okTotal += len(round.Payloads)
		txTotal += 16
	}
	if okTotal < txTotal*3/4 {
		t.Fatalf("only %d/%d under fading", okTotal, txTotal)
	}
}
