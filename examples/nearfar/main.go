// Nearfar: demonstrates the near-far machinery of §3.2.3 at the
// physical layer, using the internal packages directly. A strong device
// (near the AP) and a weak device (far, below the noise floor) transmit
// concurrently. With naive adjacent shifts the weak device drowns in
// the strong device's side lobes; with the power-aware assignment —
// far-apart shifts — both decode, up to a ~35 dB power difference.
package main

import (
	"fmt"

	"netscatter/internal/air"
	"netscatter/internal/chirp"
	"netscatter/internal/core"
	"netscatter/internal/dsp"
)

func decodePair(strongShift, weakShift int, strongSNR, weakSNR float64, seed int64) (strongOK, weakOK bool) {
	p := chirp.Default500k9
	book, _ := core.NewCodeBook(p, 2)
	dec := core.NewDecoder(book, core.DefaultDecoderConfig(2))

	strongPayload := []byte{0xAA, 0x55, 0xAA, 0x55}
	weakPayload := []byte{0x12, 0x34, 0x56, 0x78}
	bits := len(strongPayload)*8 + core.CRCBits

	encS := core.NewEncoder(p, strongShift)
	encW := core.NewEncoder(p, weakShift)
	bitsS := core.FrameBits(strongPayload)
	bitsW := core.FrameBits(weakPayload)
	rng := dsp.NewRand(seed)
	ch := air.NewChannel(p, rng)
	// Mixed synthesis: the channel folds each device's frequency offset
	// and carrier gain into the recurrence that generates its chirps.
	sig := ch.Receive(ch.FrameLength(core.PreambleSymbols+bits, 2), []air.Transmission{
		{
			Mixed: func(dst []complex128, f, freqHz float64, gain complex128) []complex128 {
				return encS.FrameBitsWaveformMixedInto(dst, bitsS, f, freqHz, gain)
			},
			SNRdB:        strongSNR,
			FreqOffsetHz: rng.Normal(0, 100),
		},
		{
			Mixed: func(dst []complex128, f, freqHz float64, gain complex128) []complex128 {
				return encW.FrameBitsWaveformMixedInto(dst, bitsW, f, freqHz, gain)
			},
			SNRdB:        weakSNR,
			FreqOffsetHz: rng.Normal(0, 100),
		},
	})
	res, err := dec.DecodeFrame(sig, 0, []int{strongShift, weakShift}, bits)
	if err != nil {
		return false, false
	}
	s, w := res.Devices[0], res.Devices[1]
	return s.CRCOK && string(s.Payload) == string(strongPayload),
		w.CRCOK && string(w.Payload) == string(weakPayload)
}

func main() {
	const strongSNR = 20.0 // a device near the AP
	fmt.Println("near-far demo: strong device at +20 dB, weak device below the noise floor")
	fmt.Println()

	fmt.Printf("%-28s %-14s %-10s %-10s\n", "assignment", "ΔP (dB)", "strong", "weak")
	show := func(name string, strongShift, weakShift int, weakSNR float64) {
		okS, okW := 0, 0
		const trials = 10
		for t := int64(0); t < trials; t++ {
			s, w := decodePair(strongShift, weakShift, strongSNR, weakSNR, t+1)
			if s {
				okS++
			}
			if w {
				okW++
			}
		}
		fmt.Printf("%-28s %-14.0f %2d/%-8d %2d/%-8d\n",
			name, strongSNR-weakSNR, okS, trials, okW, trials)
	}

	// Adjacent shifts (2 bins apart): the strong device's first side
	// lobe (-13.5 dB) sits right on the weak device.
	show("adjacent shifts (bins 0,2)", 0, 2, -10)
	// Power-aware: the weak device gets the far side of the spectrum,
	// where the side lobes have decayed by > 50 dB.
	show("power-aware (bins 0,256)", 0, 256, -10)
	show("power-aware (bins 0,256)", 0, 256, -14)

	fmt.Println()
	fmt.Println("this is why the AP sorts devices by signal strength and assigns")
	fmt.Println("low-SNR devices cyclic shifts far from high-SNR devices (§3.2.3);")
	fmt.Println("Fig. 15b quantifies the tolerance: ~5 dB at 2 bins, 35 dB mid-spectrum.")
}
