// Occupancy: the paper's motivating scenario — a whole office floor of
// battery-free sensors reporting in. 128 devices spread over 12 rooms
// report a 5-byte sample (room, temperature, humidity, motion counter)
// every round; the AP collects all of them concurrently in under 60 ms,
// where a query-response LoRa backscatter network would need seconds.
//
// 128 devices is the paper's interference-free density: they occupy
// every other slot (effective SKIP 4), so per-frame delivery is near
// perfect. Filling all 256 slots (SKIP 2) pushes the system to its
// theoretical limit, where aggregate side-lobe leakage costs a few
// percent of bits (§4.4: "larger variances in the network data rate").
package main

import (
	"fmt"
	"log"

	"netscatter"
)

type sample struct {
	room     uint8
	tempC    uint8 // offset-encoded: value - 10
	humidity uint8
	motion   uint16
}

func (s sample) payload() []byte {
	return []byte{s.room, s.tempC, s.humidity, byte(s.motion >> 8), byte(s.motion)}
}

func main() {
	const devices = 128
	net, err := netscatter.NewNetwork(netscatter.DefaultParams(), netscatter.Options{
		Devices: devices,
		Seed:    7,
		Fading:  true, // people walking around the office
	})
	if err != nil {
		log.Fatal(err)
	}

	const rounds = 5
	received, transmitted := 0, 0
	var latency float64
	perRoom := map[uint8]int{}

	for r := 0; r < rounds; r++ {
		payloads := map[int][]byte{}
		truth := map[int]sample{}
		for i := 0; i < devices; i++ {
			s := sample{
				room:     uint8(i % 12),
				tempC:    uint8(12 + (i+r)%10),
				humidity: uint8(40 + (i*r)%20),
				motion:   uint16(r*100 + i),
			}
			truth[i] = s
			payloads[i] = s.payload()
		}
		round, err := net.Run(payloads)
		if err != nil {
			log.Fatal(err)
		}
		latency = round.Duration
		transmitted += devices
		for i, pl := range round.Payloads {
			if string(pl) == string(truth[i].payload()) {
				received++
				perRoom[truth[i].room]++
			}
		}
	}

	fmt.Printf("collected %d/%d sensor reports over %d rounds (%.1f%%)\n",
		received, transmitted, rounds, 100*float64(received)/float64(transmitted))
	fmt.Printf("floor sweep latency: %.1f ms per round (all %d sensors concurrently)\n",
		latency*1e3, devices)
	fmt.Printf("a sequential query-response network at 8.7 kbps would need ~%.1f s per sweep\n\n",
		float64(devices)*0.013)
	fmt.Println("reports per room:")
	for room := uint8(0); room < 12; room++ {
		fmt.Printf("  room %2d: %d\n", room, perRoom[room])
	}
}
