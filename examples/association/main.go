// Association: walks through the NetScatter protocol of Fig. 10 using
// the MAC state machines — a new device joins a running network via the
// reserved association cyclic shifts, receives its network ID and slot
// piggybacked on the AP's next query, ACKs in its assigned shift, and
// then participates in concurrent data rounds with power adaptation.
package main

import (
	"fmt"
	"log"

	"netscatter/internal/chirp"
	"netscatter/internal/core"
	"netscatter/internal/mac"
)

func main() {
	book, err := core.NewCodeBook(chirp.Default500k9, 2)
	if err != nil {
		log.Fatal(err)
	}
	ap := mac.NewAP(book)

	// Device 1 is already in the network.
	dev1 := mac.NewDevice(book)
	join(ap, dev1, -32 /* strong downlink */)
	fmt.Printf("device 1 associated: network ID %d, slot %d (shift %d)\n\n",
		dev1.NetworkID(), dev1.Slot(), book.ShiftOfSlot(dev1.Slot()))

	// Device 2 wants to join. Fig. 10's sequence:
	dev2 := mac.NewDevice(book)
	rssi2 := -44.0 // weak downlink: device will use the low-SNR assoc region and max power

	fmt.Println("— AP broadcasts query #1")
	q1 := ap.NextQuery()
	fmt.Printf("  query: group %d, %d bits on the 160 kbps ASK downlink\n",
		q1.GroupID, q1.BitLength())

	a1 := dev1.OnQuery(q1, -32)
	fmt.Printf("  device 1 sends data on shift %d at %.0f dB gain\n", a1.Shift, a1.GainDB)

	a2 := dev2.OnQuery(q1, rssi2)
	fmt.Printf("  device 2 sends ASSOCIATION REQUEST on reserved shift %d at %.0f dB gain\n",
		a2.Shift, a2.GainDB)

	// The AP decodes the association shift and measures the request's
	// signal strength (here: a weak -8 dB SNR).
	assign, err := ap.OnAssociationRequest(-8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  AP hears the request at -8 dB, allocates ID %d, slot %d\n\n",
		assign.NetworkID, assign.Slot)

	fmt.Println("— AP broadcasts query #2 (assignment piggybacked)")
	q2 := ap.NextQuery()
	fmt.Printf("  query: %d bits (assignment adds 16 bits — negligible on the downlink)\n",
		q2.BitLength())

	a1 = dev1.OnQuery(q2, -32)
	fmt.Printf("  device 1 keeps sending data on shift %d\n", a1.Shift)

	a2 = dev2.OnQuery(q2, rssi2)
	if !a2.AssocAck {
		log.Fatal("device 2 should ACK")
	}
	fmt.Printf("  device 2 adopts slot %d and sends ASSOCIATION ACK on shift %d\n",
		dev2.Slot(), a2.Shift)
	ap.OnAssociationAck(dev2.NetworkID())
	fmt.Printf("  AP confirms: %d devices associated\n\n", ap.Devices())

	fmt.Println("— steady state: both devices answer every query concurrently")
	q3 := ap.NextQuery()
	for round := 1; round <= 3; round++ {
		// The office channel varies; each device re-measures the query
		// RSSI and adapts its gain by reciprocity (§3.2.3).
		r1 := -32 + float64(round-1)*3 // device 1's channel improving
		act1 := dev1.OnQuery(q3, r1)
		act2 := dev2.OnQuery(q3, rssi2)
		fmt.Printf("  round %d: dev1 gain %+.0f dB (query at %.0f dBm), dev2 gain %+.0f dB\n",
			round, act1.GainDB, r1, act2.GainDB)
	}
	fmt.Println()
	fmt.Println("device 1 backs its power off as its channel improves, keeping the")
	fmt.Println("received levels inside the decoder's 35 dB dynamic range — with zero")
	fmt.Println("uplink signalling (the query's RSSI is the only input).")
}

// join short-circuits the two-query association dance for setup.
func join(ap *mac.AP, dev *mac.Device, rssi float64) {
	q := ap.NextQuery()
	act := dev.OnQuery(q, rssi)
	if !act.AssocRequest {
		log.Fatal("expected an association request")
	}
	if _, err := ap.OnAssociationRequest(5); err != nil {
		log.Fatal(err)
	}
	q = ap.NextQuery()
	act = dev.OnQuery(q, rssi)
	if !act.AssocAck {
		log.Fatal("expected an ACK")
	}
	ap.OnAssociationAck(dev.NetworkID())
}
