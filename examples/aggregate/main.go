// Aggregate: the bandwidth-aggregation mode of §3.1 (Fig. 5). To double
// the device count without halving anyone's bitrate, NetScatter doubles
// the band: devices chirp with the same slope across an aggregate 2·BW
// band, aliasing at the band edge, and the AP decodes the whole
// aggregate with a single double-size FFT — no per-band filters, no
// second FFT.
package main

import (
	"fmt"
	"log"

	"netscatter"
)

func main() {
	// Single band: SF 7 over 125 kHz -> 64 slots at SKIP 2.
	single := netscatter.Params{SF: 7, BandwidthHz: 125e3, Skip: 2, Oversample: 1}
	// Aggregate: same chirp slope and per-device bitrate, twice the
	// band, twice the devices.
	aggregate := netscatter.Params{SF: 7, BandwidthHz: 125e3, Skip: 2, Oversample: 2}

	fmt.Printf("single band:    %3d devices at %.0f bps each\n",
		single.MaxDevices(), single.DeviceBitRate())
	fmt.Printf("aggregate band: %3d devices at %.0f bps each (one FFT for all)\n\n",
		aggregate.MaxDevices(), aggregate.DeviceBitRate())

	net, err := netscatter.NewNetwork(aggregate, netscatter.Options{
		Devices: aggregate.MaxDevices(),
		Seed:    3,
	})
	if err != nil {
		log.Fatal(err)
	}

	payloads := map[int][]byte{}
	for i := 0; i < aggregate.MaxDevices(); i++ {
		payloads[i] = []byte{byte(i), byte(i ^ 0x5A)}
	}
	round, err := net.Run(payloads)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aggregate round: %d/%d devices decoded in %.1f ms with %d FFTs\n",
		len(round.Payloads), aggregate.MaxDevices(), round.Duration*1e3, round.FFTs)
	fmt.Printf("aggregate throughput: %.1f kbps over %.0f kHz\n",
		net.AggregateThroughput()/1e3, 2*aggregate.BandwidthHz/1e3)
}
