// Quickstart: stand up a 16-device NetScatter network, have every
// device transmit a payload in the same instant, and decode them all
// from one received stream with a single FFT per symbol.
package main

import (
	"fmt"
	"log"

	"netscatter"
)

func main() {
	// The paper's deployed configuration: 500 kHz, SF 9, SKIP 2 —
	// room for 256 concurrent devices at 976 bps each.
	params := netscatter.DefaultParams()

	net, err := netscatter.NewNetwork(params, netscatter.Options{
		Devices: 16,
		Seed:    42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Every device sends its own 5-byte reading — all at once.
	payloads := map[int][]byte{}
	for i := 0; i < 16; i++ {
		payloads[i] = []byte{byte(i), 0xCA, 0xFE, byte(i * 3), 0x01}
	}

	round, err := net.Run(payloads)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("one concurrent round: %.1f ms on air, %d receiver FFTs\n",
		round.Duration*1e3, round.FFTs)
	for i := 0; i < 16; i++ {
		dev := net.Devices()[i]
		if pl, ok := round.Payloads[i]; ok {
			fmt.Printf("device %2d (shift %3d, %5.1f dB SNR): % x\n",
				i, dev.Shift, dev.SNRdB, pl)
		} else {
			fmt.Printf("device %2d (shift %3d, %5.1f dB SNR): decode failed\n",
				i, dev.Shift, dev.SNRdB)
		}
	}
	fmt.Printf("\naggregate throughput if fully loaded: %.0f kbps over %.0f kHz\n",
		net.AggregateThroughput()/1e3, params.BandwidthHz/1e3)
}
