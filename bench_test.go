// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per artifact, delegating to the
// internal/exper registry), plus the ablation benches DESIGN.md calls
// out: decoder scaling, SKIP spacing, allocation policy, zero-padding
// and the OOK threshold.
//
// Run a single figure with, e.g.:
//
//	go test -bench=BenchmarkFig17 -benchtime=1x
package netscatter

import (
	"fmt"
	"runtime"
	"testing"

	"netscatter/internal/air"
	"netscatter/internal/chirp"
	"netscatter/internal/core"
	"netscatter/internal/deploy"
	"netscatter/internal/dsp"
	"netscatter/internal/exper"
	"netscatter/internal/radio"
	"netscatter/internal/sim"
)

// benchExperiment runs one registered experiment per iteration in quick
// mode. The tables themselves are printed by cmd/netscatter-exp; here
// the value is wall-clock tracking and regression protection.
func benchExperiment(b *testing.B, id string) {
	e, ok := exper.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	cfg := exper.Config{Seed: 1, Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B)               { benchExperiment(b, "T1") }
func BenchmarkChoirCollision(b *testing.B)       { benchExperiment(b, "C1") }
func BenchmarkFig4(b *testing.B)                 { benchExperiment(b, "F4") }
func BenchmarkFig7a(b *testing.B)                { benchExperiment(b, "F7") }
func BenchmarkFig8(b *testing.B)                 { benchExperiment(b, "F8") }
func BenchmarkFig9(b *testing.B)                 { benchExperiment(b, "F9") }
func BenchmarkFig12(b *testing.B)                { benchExperiment(b, "F12") }
func BenchmarkFig14a(b *testing.B)               { benchExperiment(b, "F14A") }
func BenchmarkFig14b(b *testing.B)               { benchExperiment(b, "F14B") }
func BenchmarkFig15a(b *testing.B)               { benchExperiment(b, "F15A") }
func BenchmarkFig15b(b *testing.B)               { benchExperiment(b, "F15B") }
func BenchmarkFig16(b *testing.B)                { benchExperiment(b, "F16") }
func BenchmarkFig17(b *testing.B)                { benchExperiment(b, "F17") }
func BenchmarkFig18(b *testing.B)                { benchExperiment(b, "F18") }
func BenchmarkFig19(b *testing.B)                { benchExperiment(b, "F19") }
func BenchmarkShannon(b *testing.B)              { benchExperiment(b, "S1") }
func BenchmarkBandwidthAggregation(b *testing.B) { benchExperiment(b, "B1") }

// --- ablation: receiver complexity (the §3.1 single-FFT claim) ---

// BenchmarkDecoderScaling decodes the same 64-device frame against
// growing candidate sets. Receiver work should stay nearly flat in the
// number of devices — the whole point of distributed CSS.
func BenchmarkDecoderScaling(b *testing.B) {
	p := chirp.Default500k9
	book, err := core.NewCodeBook(p, 2)
	if err != nil {
		b.Fatal(err)
	}
	rng := dsp.NewRand(1)
	payload := []byte{1, 2, 3, 4, 5}
	bits := len(payload)*8 + core.CRCBits
	var txs []air.Transmission
	for i := 0; i < 64; i++ {
		enc := core.NewEncoder(p, book.ShiftOfSlot(i))
		txs = append(txs, air.Transmission{Waveform: enc.FrameWaveform(payload), SNRdB: 8})
	}
	ch := air.NewChannel(p, rng)
	sig := ch.Receive(ch.FrameLength(core.PreambleSymbols+bits, 2), txs)

	for _, candidates := range []int{1, 16, 64, 256} {
		shifts := book.AllShifts()[:candidates]
		b.Run(fmt.Sprintf("candidates=%d", candidates), func(b *testing.B) {
			dec := core.NewDecoder(book, core.DefaultDecoderConfig(2))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := dec.DecodeFrame(sig, 0, shifts, bits); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// The parallel pipeline on the same frame: spectra fan out over
	// GOMAXPROCS workers with bit-identical output.
	shifts := book.AllShifts()
	b.Run("candidates=256/parallel", func(b *testing.B) {
		dec := core.NewParallelDecoder(book, core.DefaultDecoderConfig(2), 0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dec.DecodeFrame(sig, 0, shifts, bits); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- ablation: SKIP spacing vs decode reliability (§3.2.1) ---

func BenchmarkSkipAblation(b *testing.B) {
	p := chirp.Params{SF: 7, BW: 125e3, Oversample: 1}
	for _, skip := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("skip=%d", skip), func(b *testing.B) {
			var good, total int
			for i := 0; i < b.N; i++ {
				g, t := runSkipRound(p, skip, int64(i))
				good += g
				total += t
			}
			b.ReportMetric(float64(good)/float64(total), "frameOK/tx")
		})
	}
}

// runSkipRound fills every slot of a SKIP-spaced book under the
// measured hardware timing jitter and counts decoded frames.
func runSkipRound(p chirp.Params, skip int, seed int64) (good, total int) {
	book, err := core.NewCodeBook(p, skip)
	if err != nil {
		return 0, 1
	}
	rng := dsp.NewRand(seed*31 + 7)
	n := book.Slots()
	if n > 32 {
		n = 32
	}
	payload := make([][]byte, n)
	var txs []air.Transmission
	shifts := make([]int, n)
	for i := 0; i < n; i++ {
		shifts[i] = book.ShiftOfSlot(i)
		payload[i] = rng.Bytes(2)
		enc := core.NewEncoder(p, shifts[i])
		pl := payload[i]
		txs = append(txs, air.Transmission{
			Delayed: func(frac float64) []complex128 {
				return enc.FrameWaveformDelayed(pl, frac)
			},
			SNRdB: rng.Uniform(5, 10),
			// Hardware delay jitter up to ~0.45 of a bin — the regime
			// SKIP=1 cannot survive and SKIP>=2 is designed for.
			DelaySec: rng.Uniform(0, 0.45) / p.BW,
		})
	}
	bits := 2*8 + core.CRCBits
	ch := air.NewChannel(p, rng)
	sig := ch.Receive(ch.FrameLength(core.PreambleSymbols+bits, 2), txs)
	dec := core.NewDecoder(book, core.DefaultDecoderConfig(skip))
	res, err := dec.DecodeFrame(sig, 0, shifts, bits)
	if err != nil {
		return 0, n
	}
	for i, dev := range res.Devices {
		if dev.CRCOK && string(dev.Payload) == string(payload[i]) {
			good++
		}
	}
	return good, n
}

// --- ablation: power-aware vs random shift allocation (§3.2.3) ---

func BenchmarkAllocationAblation(b *testing.B) {
	for _, aware := range []bool{true, false} {
		name := "power-aware"
		if !aware {
			name = "random"
		}
		b.Run(name, func(b *testing.B) {
			var goodSum float64
			for i := 0; i < b.N; i++ {
				rng := dsp.NewRand(int64(i) + 1)
				dep := deploy.Generate(deploy.DefaultOffice, radio.DefaultLinkBudget, 128, 500e3, rng)
				cfg := sim.DefaultConfig()
				cfg.PayloadBytes = 4
				cfg.PowerAwareAllocation = aware
				net, err := sim.NewNetwork(cfg, dep, 128, int64(i)+100)
				if err != nil {
					b.Fatal(err)
				}
				stats, err := net.RunRound(128)
				if err != nil {
					b.Fatal(err)
				}
				goodSum += stats.GoodFraction()
			}
			b.ReportMetric(goodSum/float64(b.N), "goodbits/tx")
		})
	}
}

// --- ablation: zero-padding factor (§3.2.3 sub-bin resolution) ---

func BenchmarkZeroPadAblation(b *testing.B) {
	p := chirp.Default500k9
	book, err := core.NewCodeBook(p, 2)
	if err != nil {
		b.Fatal(err)
	}
	rng := dsp.NewRand(5)
	payload := []byte{0xAB, 0xCD, 0xEF}
	bits := len(payload)*8 + core.CRCBits
	var txs []air.Transmission
	shifts := make([]int, 32)
	for i := range shifts {
		shifts[i] = book.ShiftOfSlot(i)
		enc := core.NewEncoder(p, shifts[i])
		pl := payload
		txs = append(txs, air.Transmission{
			Delayed: func(frac float64) []complex128 {
				return enc.FrameWaveformDelayed(pl, frac)
			},
			SNRdB:    8,
			DelaySec: rng.Uniform(0, 0.4) / p.BW,
		})
	}
	ch := air.NewChannel(p, rng)
	sig := ch.Receive(ch.FrameLength(core.PreambleSymbols+bits, 2), txs)

	for _, zp := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("zeropad=%d", zp), func(b *testing.B) {
			cfg := core.DefaultDecoderConfig(2)
			cfg.ZeroPad = zp
			dec := core.NewDecoder(book, cfg)
			var ok int
			for i := 0; i < b.N; i++ {
				res, err := dec.DecodeFrame(sig, 0, shifts, bits)
				if err != nil {
					b.Fatal(err)
				}
				ok = 0
				for _, dev := range res.Devices {
					if dev.CRCOK {
						ok++
					}
				}
			}
			b.ReportMetric(float64(ok)/float64(len(shifts)), "frameOK/tx")
		})
	}
}

// --- ablation: OOK threshold rule (paper's mean/2 vs the tuned 0.35) ---

func BenchmarkOOKThresholdAblation(b *testing.B) {
	p := chirp.Params{SF: 7, BW: 125e3, Oversample: 1}
	for _, factor := range []float64{0.5, 0.35, 0.25} {
		b.Run(fmt.Sprintf("factor=%.2f", factor), func(b *testing.B) {
			var good, total int
			for i := 0; i < b.N; i++ {
				book, _ := core.NewCodeBook(p, 2)
				rng := dsp.NewRand(int64(i)*13 + 3)
				n := 32
				var txs []air.Transmission
				shifts := make([]int, n)
				payloads := make([][]byte, n)
				for j := 0; j < n; j++ {
					shifts[j] = book.ShiftOfSlot(j)
					payloads[j] = rng.Bytes(2)
					enc := core.NewEncoder(p, shifts[j])
					pl := payloads[j]
					txs = append(txs, air.Transmission{
						Delayed: func(frac float64) []complex128 {
							return enc.FrameWaveformDelayed(pl, frac)
						},
						SNRdB:    rng.Uniform(4, 10),
						DelaySec: rng.Uniform(0, 0.4) / p.BW,
					})
				}
				bits := 2*8 + core.CRCBits
				ch := air.NewChannel(p, rng)
				sig := ch.Receive(ch.FrameLength(core.PreambleSymbols+bits, 2), txs)
				cfg := core.DefaultDecoderConfig(2)
				cfg.OOKFactor = factor
				dec := core.NewDecoder(book, cfg)
				res, err := dec.DecodeFrame(sig, 0, shifts, bits)
				if err != nil {
					b.Fatal(err)
				}
				for j, dev := range res.Devices {
					if dev.CRCOK && string(dev.Payload) == string(payloads[j]) {
						good++
					}
				}
				total += n
			}
			b.ReportMetric(float64(good)/float64(total), "frameOK/tx")
		})
	}
}

// --- micro-benchmarks of the hot paths ---

func BenchmarkFFT4096(b *testing.B) {
	plan := dsp.Plan(4096)
	buf := make([]complex128, 4096)
	rng := dsp.NewRand(1)
	for i := range buf {
		buf[i] = rng.ComplexNormal(1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.Forward(buf)
	}
}

func BenchmarkFFT4096Pruned(b *testing.B) {
	// The receiver's actual transform: 512 nonzero dechirped samples
	// zero-padded 8x, with the early stages pruned away.
	plan := dsp.Plan(4096)
	buf := make([]complex128, 4096)
	rng := dsp.NewRand(1)
	for i := 0; i < 512; i++ {
		buf[i] = rng.ComplexNormal(1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.ForwardPruned(buf, 512)
	}
}

func BenchmarkFFT4096PrunedBatch(b *testing.B) {
	// The batched receiver's transform: the same pruned FFT through the
	// planar split re/im layout with fused and cache-blocked stages.
	bp := dsp.PlanBatch(4096, 512)
	re := make([]float64, 4096)
	im := make([]float64, 4096)
	rng := dsp.NewRand(1)
	for i := 0; i < 512; i++ {
		v := rng.ComplexNormal(1)
		re[i] = real(v)
		im[i] = imag(v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bp.Forward(re, im)
	}
}

func BenchmarkSymbolSpectrum(b *testing.B) {
	// One dechirp + padded FFT: the per-symbol receiver cost that is
	// independent of the number of devices.
	p := chirp.Default500k9
	dem := chirp.NewDemodulator(p, 8)
	mod := chirp.NewModulator(p)
	sym := mod.Symbol(37)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dem.Spectrum(sym)
	}
}

func BenchmarkEncodeFrame(b *testing.B) {
	enc := core.NewEncoder(chirp.Default500k9, 42)
	payload := []byte{1, 2, 3, 4, 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.FrameWaveform(payload)
	}
}

func BenchmarkEncodeFrameDelayed(b *testing.B) {
	enc := core.NewEncoder(chirp.Default500k9, 42)
	payload := []byte{1, 2, 3, 4, 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.FrameWaveformDelayed(payload, 0.37)
	}
}

func BenchmarkEncodeFrameDelayedInto(b *testing.B) {
	// The round context's reuse pattern: same frame, preallocated
	// destination — the steady-state synthesis cost per device.
	enc := core.NewEncoder(chirp.Default500k9, 42)
	bits := core.FrameBits([]byte{1, 2, 3, 4, 5})
	dst := enc.FrameBitsWaveformDelayedInto(nil, bits, 0.37)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = enc.FrameBitsWaveformDelayedInto(dst, bits, 0.37)
	}
}

func BenchmarkEncodeFrameMixedInto(b *testing.B) {
	// The simulator's hot path: synthesis with frequency offset and
	// carrier gain folded into the recurrence.
	enc := core.NewEncoder(chirp.Default500k9, 42)
	bits := core.FrameBits([]byte{1, 2, 3, 4, 5})
	dst := enc.FrameBitsWaveformMixedInto(nil, bits, 0.37, 230, complex(1.4, -0.3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = enc.FrameBitsWaveformMixedInto(dst, bits, 0.37, 230, complex(1.4, -0.3))
	}
}

func BenchmarkNetworkRound64(b *testing.B) {
	rng := dsp.NewRand(9)
	dep := deploy.Generate(deploy.DefaultOffice, radio.DefaultLinkBudget, 64, 500e3, rng)
	cfg := sim.DefaultConfig()
	net, err := sim.NewNetwork(cfg, dep, 64, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.RunRound(64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiAPRound64x2 runs the 64-device round heard by two APs:
// template synthesis once per device, per-AP scaled fan-out over the
// tile grid, two parallel decodes and the cross-AP aggregation —
// allocation-free in steady state like the single-AP round. The ratio
// against BenchmarkNetworkRound64 is the marginal cost of an AP.
func BenchmarkMultiAPRound64x2(b *testing.B) {
	rng := dsp.NewRand(9)
	dep := deploy.Generate(deploy.DefaultOffice, radio.DefaultLinkBudget, 64, 500e3, rng)
	dep.PlaceAPs(2)
	cfg := sim.DefaultConfig()
	net, err := sim.NewMultiAPNetwork(cfg, dep, 2, 64, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.RunRound(64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiAPDiversity(b *testing.B) { benchExperiment(b, "M1") }

// BenchmarkCombinedRound64x4 runs the 64-device round heard by four
// APs with soft spectral combining on: four emit decodes filling the
// planar spectra arenas, the bin-wise arena sum, the combined-spectra
// decode and both aggregations. The ratio against MultiAPRound64x2 is
// the soft path's overhead; steady state stays allocation-free
// (test-enforced in internal/sim).
func BenchmarkCombinedRound64x4(b *testing.B) {
	rng := dsp.NewRand(9)
	dep := deploy.Generate(deploy.DefaultOffice, radio.DefaultLinkBudget, 64, 500e3, rng)
	dep.PlaceAPs(4)
	cfg := sim.DefaultConfig()
	net, err := sim.NewMultiAPNetwork(cfg, dep, 4, 64, 10)
	if err != nil {
		b.Fatal(err)
	}
	net.SetSoftCombining(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.RunRound(64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrajectoryRound64 steps a 64-device, 2-AP adversarial
// trajectory in its event-free steady state: correlated fading and CFO
// drift evolve every round (per-device AR(1) and random-walk updates,
// power-rule adjustment, SNR refresh) but no churn/burst/dropout
// events fire, so no re-association or burst synthesis happens. The
// ratio against MultiAPRound64x2 is the adversity layer's overhead on
// top of a plain round — it must stay allocation-free.
func BenchmarkTrajectoryRound64(b *testing.B) {
	rng := dsp.NewRand(9)
	dep := deploy.Generate(deploy.DefaultOffice, radio.DefaultLinkBudget, 64, 500e3, rng)
	dep.PlaceAPs(2)
	cfg := sim.DefaultConfig()
	net, err := sim.NewMultiAPNetwork(cfg, dep, 2, 64, 10)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := sim.NewTrajectory(net, sim.TrajectoryConfig{
		Rounds:      1 << 15, // pre-size the stats arenas past any b.N
		Seed:        9,
		Correlation: 0.9,
		KFactorDB:   20,
		CFODriftHz:  0.5,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetworkRound64Parallel is the same round with the worker
// pool widened to four slots: the tiled channel path fans the transmit
// half across tiles and the decoder fans symbol batches, with output
// bit-identical to the serial round (test-enforced). On a single
// hardware thread this measures the parallel path's overhead floor; on
// multi-core hosts it tracks round-time scaling with cores.
func BenchmarkNetworkRound64Parallel(b *testing.B) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	rng := dsp.NewRand(9)
	dep := deploy.Generate(deploy.DefaultOffice, radio.DefaultLinkBudget, 64, 500e3, rng)
	cfg := sim.DefaultConfig()
	net, err := sim.NewNetwork(cfg, dep, 64, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.RunRound(64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNoiseFill64k tracks the vectorized noise engine: 64k
// Gaussian draws filled and fused-added as unit AWGN over a 32k-sample
// receive buffer, the per-round noise cost of the simulator.
func BenchmarkNoiseFill64k(b *testing.B) {
	st := dsp.NewStream(1)
	sig := make([]complex128, 32768)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		radio.AddAWGN(st, sig, 1)
	}
}
