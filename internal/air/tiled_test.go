package air

import (
	"runtime"
	"testing"

	"netscatter/internal/chirp"
	"netscatter/internal/core"
	"netscatter/internal/dsp"
)

// tiledTxs builds a fleet of template-path transmissions (and,
// optionally, the equivalent Mixed-path fleet) over shared bit
// sections.
func tiledTxs(p chirp.Params, nDev int, bits [][]byte, mixed bool) []Transmission {
	txs := make([]Transmission, nDev)
	for i := 0; i < nDev; i++ {
		enc := core.NewEncoder(p, (i*7+3)%p.N())
		b := bits[i]
		tx := &txs[i]
		tx.SNRdB = float64(3 + i%9)
		tx.DelaySec = float64(i%5)/p.SampleRate() + 0.31/p.SampleRate()
		tx.FreqOffsetHz = float64(i*13%90) - 40
		if mixed {
			tx.Mixed = func(dst []complex128, frac, freqHz float64, gain complex128) []complex128 {
				return enc.FrameBitsWaveformMixedInto(dst, b, frac, freqHz, gain)
			}
		} else {
			tx.MixedTmpl = func(tmpl []complex128, frac, freqHz float64, gain complex128) []complex128 {
				return enc.FrameBitsWaveformMixedTemplates(tmpl, b, frac, freqHz, gain)
			}
			tx.MixedAddRange = func(out []complex128, lo, hi, at int, tmpl []complex128, frac, freqHz float64) {
				enc.FrameBitsWaveformMixedAddRange(out, lo, hi, at, tmpl, b, frac, freqHz)
			}
		}
	}
	return txs
}

func testBits(nDev, nBits int, seed int64) [][]byte {
	rng := dsp.NewRand(seed)
	bits := make([][]byte, nDev)
	for i := range bits {
		bits[i] = rng.Bits(nBits)
	}
	return bits
}

// TestReceiveTiledMatchesMixedBitExact pins the tiled path against the
// legacy Mixed path: with identical rng sequences the two regimes must
// produce bit-identical received streams including noise — the
// per-sample accumulation argument for the signal (same products, same
// transmission order) plus the shared tile-grid noise definition.
func TestReceiveTiledMatchesMixedBitExact(t *testing.T) {
	p := chirp.Params{SF: 7, BW: 125e3, Oversample: 1}
	const nDev = 9
	bits := testBits(nDev, 14, 4)

	length := (8 + 14 + 2) * p.N()
	chA := NewChannel(p, dsp.NewRand(77))
	outA := chA.Receive(length, tiledTxs(p, nDev, bits, false))
	chB := NewChannel(p, dsp.NewRand(77))
	outB := chB.Receive(length, tiledTxs(p, nDev, bits, true))
	for i := range outA {
		if outA[i] != outB[i] {
			t.Fatalf("tiled and mixed paths diverge at sample %d: %v vs %v", i, outA[i], outB[i])
		}
	}
}

// TestReceiveTiledParallelBitIdenticalRace pins the tentpole's
// determinism contract under the race detector: the tiled receive is
// bit-identical across GOMAXPROCS 1, 2 and 4 — tile-indexed noise
// streams and transmission-ordered accumulation make the output a pure
// function of (seed, transmissions), not of worker scheduling.
func TestReceiveTiledParallelBitIdenticalRace(t *testing.T) {
	p := chirp.Params{SF: 7, BW: 125e3, Oversample: 1}
	const nDev = 16
	bits := testBits(nDev, 18, 5)
	length := (8 + 18 + 3) * p.N()

	run := func(procs int) []complex128 {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		ch := NewChannel(p, dsp.NewRand(31))
		out := ch.Receive(length, tiledTxs(p, nDev, bits, false))
		// A second round through the same channel exercises arena reuse.
		ch.Rng = dsp.NewRand(31)
		out2 := ch.ReceiveInto(make([]complex128, length), tiledTxs(p, nDev, bits, false))
		for i := range out {
			if out[i] != out2[i] {
				t.Fatalf("procs=%d: arena reuse diverged at sample %d", procs, i)
			}
		}
		return out
	}

	want := run(1)
	for _, procs := range []int{2, 4} {
		got := run(procs)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("GOMAXPROCS=%d diverges from serial at sample %d: %v vs %v",
					procs, i, got[i], want[i])
			}
		}
	}
}

// TestReceiveTiledNoiseReplayable: reseeding the channel Rng replays
// the exact noise (the round key is drawn from it), while consecutive
// rounds with an advancing Rng draw fresh noise.
func TestReceiveTiledNoiseReplayable(t *testing.T) {
	p := chirp.Params{SF: 7, BW: 125e3, Oversample: 1}
	ch := NewChannel(p, dsp.NewRand(8))
	a := ch.Receive(4*p.N(), nil)
	b := ch.Receive(4*p.N(), nil) // Rng advanced: different key
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("consecutive rounds drew identical noise")
	}
	ch.Rng = dsp.NewRand(8)
	c := ch.Receive(4*p.N(), nil)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("reseeded channel did not replay noise at sample %d", i)
		}
	}
}

// TestReceiveTiledZeroAllocSteadyState: after a warm-up receive, the
// tiled path reuses its template arena and per-transmission state —
// no allocations per round at GOMAXPROCS=1.
func TestReceiveTiledZeroAllocSteadyState(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	p := chirp.Params{SF: 7, BW: 125e3, Oversample: 1}
	const nDev = 6
	bits := testBits(nDev, 10, 6)
	txs := tiledTxs(p, nDev, bits, false)
	ch := NewChannel(p, dsp.NewRand(9))
	out := make([]complex128, (8+10+2)*p.N())
	ch.ReceiveInto(out, txs)
	allocs := testing.AllocsPerRun(10, func() { ch.ReceiveInto(out, txs) })
	if allocs != 0 {
		t.Fatalf("steady-state tiled receive allocates %.1f objects/op", allocs)
	}
}
