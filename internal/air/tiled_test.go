package air_test

// The fleet constructors these tests used to carry live in
// internal/simtest now (TiledTxs, Bits), shared with the sim and
// multi-AP suites.

import (
	"runtime"
	"testing"

	"netscatter/internal/air"
	"netscatter/internal/dsp"
	"netscatter/internal/simtest"
)

// TestReceiveTiledMatchesMixedBitExact pins the tiled path against the
// legacy Mixed path: with identical rng sequences the two regimes must
// produce bit-identical received streams including noise — the
// per-sample accumulation argument for the signal (same products, same
// transmission order) plus the shared tile-grid noise definition.
func TestReceiveTiledMatchesMixedBitExact(t *testing.T) {
	p := simtest.SmallParams()
	const nDev = 9
	bits := simtest.Bits(nDev, 14, 4)

	length := (8 + 14 + 2) * p.N()
	chA := air.NewChannel(p, dsp.NewRand(77))
	outA := chA.Receive(length, simtest.TiledTxs(p, nDev, bits, false))
	chB := air.NewChannel(p, dsp.NewRand(77))
	outB := chB.Receive(length, simtest.TiledTxs(p, nDev, bits, true))
	for i := range outA {
		if outA[i] != outB[i] {
			t.Fatalf("tiled and mixed paths diverge at sample %d: %v vs %v", i, outA[i], outB[i])
		}
	}
}

// TestReceiveTiledParallelBitIdenticalRace pins the tentpole's
// determinism contract under the race detector: the tiled receive is
// bit-identical across GOMAXPROCS 1, 2 and 4 — tile-indexed noise
// streams and transmission-ordered accumulation make the output a pure
// function of (seed, transmissions), not of worker scheduling.
func TestReceiveTiledParallelBitIdenticalRace(t *testing.T) {
	p := simtest.SmallParams()
	const nDev = 16
	bits := simtest.Bits(nDev, 18, 5)
	length := (8 + 18 + 3) * p.N()

	run := func(procs int) []complex128 {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		ch := air.NewChannel(p, dsp.NewRand(31))
		out := ch.Receive(length, simtest.TiledTxs(p, nDev, bits, false))
		// A second round through the same channel exercises arena reuse.
		ch.Rng = dsp.NewRand(31)
		out2 := ch.ReceiveInto(make([]complex128, length), simtest.TiledTxs(p, nDev, bits, false))
		for i := range out {
			if out[i] != out2[i] {
				t.Fatalf("procs=%d: arena reuse diverged at sample %d", procs, i)
			}
		}
		return out
	}

	want := run(1)
	for _, procs := range []int{2, 4} {
		got := run(procs)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("GOMAXPROCS=%d diverges from serial at sample %d: %v vs %v",
					procs, i, got[i], want[i])
			}
		}
	}
}

// TestReceiveTiledNoiseReplayable: reseeding the channel Rng replays
// the exact noise (the round key is drawn from it), while consecutive
// rounds with an advancing Rng draw fresh noise.
func TestReceiveTiledNoiseReplayable(t *testing.T) {
	p := simtest.SmallParams()
	ch := air.NewChannel(p, dsp.NewRand(8))
	a := ch.Receive(4*p.N(), nil)
	b := ch.Receive(4*p.N(), nil) // Rng advanced: different key
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("consecutive rounds drew identical noise")
	}
	ch.Rng = dsp.NewRand(8)
	c := ch.Receive(4*p.N(), nil)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("reseeded channel did not replay noise at sample %d", i)
		}
	}
}

// TestReceiveTiledZeroAllocSteadyState: after a warm-up receive, the
// tiled path reuses its template arena and per-transmission state —
// no allocations per round at GOMAXPROCS=1.
func TestReceiveTiledZeroAllocSteadyState(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	p := simtest.SmallParams()
	const nDev = 6
	bits := simtest.Bits(nDev, 10, 6)
	txs := simtest.TiledTxs(p, nDev, bits, false)
	ch := air.NewChannel(p, dsp.NewRand(9))
	out := make([]complex128, (8+10+2)*p.N())
	ch.ReceiveInto(out, txs)
	allocs := testing.AllocsPerRun(10, func() { ch.ReceiveInto(out, txs) })
	if allocs != 0 {
		t.Fatalf("steady-state tiled receive allocates %.1f objects/op", allocs)
	}
}
