// Multi-AP fan-out: one shared deployment heard by k access points.
//
// Every device transmits one waveform; each AP receives it over its own
// link (its own SNR, fade composition, carrier phase) and adds its own
// thermal noise. The fan-out exploits what the template-synthesis
// regime already established for one AP: a frame is two mixed template
// symbols plus constant-scaled copies, so the per-AP variation reduces
// to a complex scale on the templates — the frequency offset (the
// device's crystal, shared by every AP) and the fractional delay stay
// inside the one base synthesis.
//
// Per-AP timing uses the narrowband model: time-of-flight differences
// between APs on an office floor are well under a sample, so they
// appear as per-(device, AP) carrier phase — folded into the random
// phase each link draws — while the sample-grid placement is shared.
// See DESIGN-multiap.md.

package air

import (
	"fmt"

	"netscatter/internal/chirp"
	"netscatter/internal/dsp"
	"netscatter/internal/pool"
	"netscatter/internal/radio"
)

// MultiTransmission describes one device's contribution as heard by
// every AP of a multi-AP receive. The synthesis closures follow the
// tiled Transmission contract (MixedTmpl / MixedAddRange) and are the
// same closures a single-AP round would install — MixedTmpl is called
// exactly once per receive, with unit gain; per-AP gains are applied by
// scaling the resulting templates (ScaleTemplate).
type MultiTransmission struct {
	// MixedTmpl synthesizes the device's mixed template symbols with
	// the fractional delay, frequency offset and given carrier gain
	// folded in (core.Encoder's FrameBitsWaveformMixedTemplates).
	MixedTmpl func(tmpl []complex128, fracSamples, freqOffsetHz float64, gain complex128) []complex128
	// MixedAddRange accumulates the [lo, hi) clip of the placed frame
	// into the receive buffer from a template set
	// (FrameBitsWaveformMixedAddRange).
	MixedAddRange func(out []complex128, lo, hi, at int, tmpl []complex128, fracSamples, freqOffsetHz float64)
	// SNRdB holds the per-AP received SNRs; len(SNRdB) must cover the
	// channel's AP count for a contributing transmission.
	SNRdB []float64
	// DelaySec is the shared arrival delay (hardware delay plus time of
	// flight to the anchor AP); per-AP flight-time differences are
	// sub-sample and ride the per-AP carrier phases.
	DelaySec float64
	// FreqOffsetHz is the device's oscillator offset.
	FreqOffsetHz float64
	// FadeGain is an optional extra complex gain common to all APs
	// (1 if zero).
	FadeGain complex128
	// FixedPhase disables the random per-(device, AP) carrier phases
	// (for deterministic tests).
	FixedPhase bool
}

// contributes reports whether the transmission adds any samples.
func (tx *MultiTransmission) contributes() bool {
	return tx.MixedTmpl != nil && tx.MixedAddRange != nil
}

// ScaleTemplate writes src scaled by c into dst (grown from its
// capacity as needed) and returns it. This is the whole per-AP
// synthesis cost of the multi-AP fan-out — and the exact operation the
// single-AP oracle closures perform, so a MultiChannel buffer and its
// oracle Channel receive are the same bits.
func ScaleTemplate(dst, src []complex128, c complex128) []complex128 {
	dst = growComplex(dst[:0], len(src))
	dsp.ScaleInto(dst, src, c)
	return dst
}

// MultiChannel assembles the k received streams of a shared deployment
// heard by k APs, synthesizing each device's template symbols once and
// fanning them out to every AP's buffer with per-AP gain and per-AP
// tile-indexed noise streams.
//
// Determinism contract (the single-AP Channel's, extended per AP): the
// per-(device, AP) scales are drawn from the channel Rng serially in
// (device, AP) order, one more serial draw keys the round's noise, and
// AP a's tile t draws its noise from dsp.StreamAt(key^a, t). Signal
// accumulation within a tile runs in transmission order. Output is
// therefore bit-identical for a given seed at any GOMAXPROCS, and AP
// a's buffer is bit-identical to a single-AP Channel.ReceiveIntoKeyed
// with key^a and that AP's scaled-template transmissions — the
// test-enforced oracle.
//
// Like Channel, a MultiChannel reuses its arenas across receives and is
// not safe for concurrent use.
type MultiChannel struct {
	// Params supplies the sample rate.
	Params chirp.Params
	// NoisePower is the per-AP thermal noise power (1 normalized,
	// 0 disables noise).
	NoisePower float64
	// Rng drives the per-(device, AP) phases and the noise key.
	Rng *dsp.Rand

	nAPs int

	// Reused per-call state: per-(device, AP) scales, the shared base
	// template arena (one 2N slot per device, synthesized once), the
	// per-AP scaled template arena (k·nTx slots), placements, and the
	// persistent workers with the in-flight call state they read.
	scales    []complex128
	baseArena []complex128
	base      [][]complex128
	apArena   []complex128
	apTmpls   [][]complex128 // apTmpls[a*nTx+i]: device i's templates at AP a
	txAt      []int
	txFrac    []float64

	tmplWorker func(i int)
	tileWorker func(j int)
	curTxs     []MultiTransmission
	curOuts    [][]complex128
	curKey     int64
	noiseOn    bool
	nTiles     int
}

// NewMultiChannel returns a unit-noise channel fanning out to nAPs
// receive buffers.
func NewMultiChannel(p chirp.Params, nAPs int, rng *dsp.Rand) *MultiChannel {
	if nAPs < 1 {
		panic(fmt.Sprintf("air: MultiChannel with %d APs", nAPs))
	}
	return &MultiChannel{Params: p, NoisePower: 1, Rng: rng, nAPs: nAPs}
}

// APs returns the channel's AP count.
func (mc *MultiChannel) APs() int { return mc.nAPs }

// Receive builds the k received streams of length samples each,
// allocating the outputs. See ReceiveInto.
func (mc *MultiChannel) Receive(length int, txs []MultiTransmission) [][]complex128 {
	outs := make([][]complex128, mc.nAPs)
	for a := range outs {
		outs[a] = make([]complex128, length)
	}
	return mc.ReceiveInto(outs, txs)
}

// ReceiveInto builds the k per-AP received streams into outs (one
// equal-length buffer per AP, each zeroed and refilled) and returns
// outs. Template synthesis runs once per device; per-AP templates are
// scaled copies; then the k·nTiles (AP, tile) pairs — each zeroing,
// accumulating every device's overlap in transmission order, and
// adding its AP- and tile-indexed noise stream — fan out across the
// worker pool in a single pass.
func (mc *MultiChannel) ReceiveInto(outs [][]complex128, txs []MultiTransmission) [][]complex128 {
	k := mc.nAPs
	if len(outs) != k {
		panic(fmt.Sprintf("air: ReceiveInto with %d buffers for %d APs", len(outs), k))
	}
	for a := 1; a < k; a++ {
		if len(outs[a]) != len(outs[0]) {
			panic(fmt.Sprintf("air: per-AP buffer lengths differ: %d vs %d", len(outs[a]), len(outs[0])))
		}
	}

	nTx := len(txs)
	n2 := 2 * mc.Params.N()
	if cap(mc.txAt) < nTx {
		mc.txAt = make([]int, nTx)
		mc.txFrac = make([]float64, nTx)
		mc.base = make([][]complex128, nTx)
		mc.scales = make([]complex128, nTx*k)
	}
	if cap(mc.baseArena) < nTx*n2 {
		mc.baseArena = make([]complex128, nTx*n2)
	}
	if cap(mc.apArena) < k*nTx*n2 {
		mc.apArena = make([]complex128, k*nTx*n2)
		mc.apTmpls = make([][]complex128, k*nTx)
	}
	mc.txAt = mc.txAt[:nTx]
	mc.txFrac = mc.txFrac[:nTx]
	mc.base = mc.base[:nTx]
	mc.scales = mc.scales[:nTx*k]
	mc.apTmpls = mc.apTmpls[:k*nTx]

	// Serial phase: per-(device, AP) scales in (device, AP) order —
	// the same carrier-gain composition the single-AP channel uses per
	// transmission — then the round's noise key. Everything after this
	// point draws no randomness, so the fan-out cannot perturb the
	// sequence.
	fs := mc.Params.SampleRate()
	for i := range txs {
		tx := &txs[i]
		mc.txAt[i], mc.txFrac[i] = splitDelay(tx.DelaySec, fs)
		mc.base[i] = mc.baseArena[i*n2 : i*n2 : (i+1)*n2]
		if tx.contributes() && len(tx.SNRdB) < k {
			panic(fmt.Sprintf("air: transmission %d has %d per-AP SNRs for %d APs", i, len(tx.SNRdB), k))
		}
		for a := 0; a < k; a++ {
			slot := a*nTx + i
			mc.apTmpls[slot] = mc.apArena[slot*n2 : slot*n2 : (slot+1)*n2]
			if !tx.contributes() {
				continue // consumes no randomness, like the single-AP path
			}
			mc.scales[i*k+a] = carrierGain(tx.SNRdB[a], tx.FadeGain, tx.FixedPhase, mc.Rng)
		}
	}
	noise := mc.NoisePower > 0 && mc.Rng != nil
	var key int64
	if noise {
		key = int64(mc.Rng.Uint64())
	}

	if mc.tmplWorker == nil {
		mc.tmplWorker = mc.tmplOne
		mc.tileWorker = mc.tileOne
	}
	mc.curTxs = txs
	mc.curOuts = outs
	mc.curKey = key
	mc.noiseOn = noise
	mc.nTiles = (len(outs[0]) + tileSamples - 1) / tileSamples
	pool.ForEach(nTx, mc.tmplWorker)
	pool.ForEach(k*mc.nTiles, mc.tileWorker)
	mc.curTxs = nil
	mc.curOuts = nil
	return outs
}

// tmplOne synthesizes device i's base template symbols (fractional
// delay and frequency offset folded in, unit gain) — the round's only
// synthesis call for the device — and scales the k per-AP copies.
func (mc *MultiChannel) tmplOne(i int) {
	tx := &mc.curTxs[i]
	if !tx.contributes() {
		return
	}
	k := mc.nAPs
	nTx := len(mc.curTxs)
	mc.base[i] = tx.MixedTmpl(mc.base[i], mc.txFrac[i], tx.FreqOffsetHz, 1)
	for a := 0; a < k; a++ {
		slot := a*nTx + i
		mc.apTmpls[slot] = ScaleTemplate(mc.apTmpls[slot], mc.base[i], mc.scales[i*k+a])
	}
}

// tileOne builds (AP, tile) pair j of the in-flight receive: zero the
// tile, accumulate every device's overlap in transmission order from
// that AP's scaled templates, then add the AP's tile-indexed noise
// stream (dsp.StreamAt(key^ap, tile)). AP 0's noise streams are
// exactly the single-AP channel's for the same key, so a one-AP multi
// receive degenerates to the classic path.
func (mc *MultiChannel) tileOne(j int) {
	a := j / mc.nTiles
	t := j % mc.nTiles
	out := mc.curOuts[a]
	lo := t * tileSamples
	hi := min(lo+tileSamples, len(out))
	w := out[lo:hi]
	for i := range w {
		w[i] = 0
	}
	nTx := len(mc.curTxs)
	for i := range mc.curTxs {
		tx := &mc.curTxs[i]
		if !tx.contributes() {
			continue
		}
		tx.MixedAddRange(out, lo, hi, mc.txAt[i], mc.apTmpls[a*nTx+i], mc.txFrac[i], tx.FreqOffsetHz)
	}
	if mc.noiseOn {
		st := dsp.StreamAt(mc.curKey^int64(a), uint64(t))
		radio.AddAWGN(&st, w, mc.NoisePower)
	}
}

// FrameLength returns the sample count of a frame with the given total
// symbol count plus margin symbols of tail room.
func (mc *MultiChannel) FrameLength(symbols, marginSymbols int) int {
	return (symbols + marginSymbols) * mc.Params.N()
}
