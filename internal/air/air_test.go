package air

import (
	"math"
	"testing"

	"netscatter/internal/chirp"
	"netscatter/internal/dsp"
)

var tp = chirp.Params{SF: 7, BW: 125e3, Oversample: 1}

func TestReceiveScalesToSNR(t *testing.T) {
	rng := dsp.NewRand(1)
	ch := NewChannel(tp, rng)
	ch.NoisePower = 0
	wave := make([]complex128, 4096)
	for i := range wave {
		wave[i] = 1
	}
	sig := ch.Receive(4096, []Transmission{{Waveform: wave, SNRdB: 13, FixedPhase: true}})
	want := math.Pow(10, 1.3)
	if got := dsp.SignalPower(sig); math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("signal power %v, want %v", got, want)
	}
}

func TestReceiveAddsUnitNoise(t *testing.T) {
	rng := dsp.NewRand(2)
	ch := NewChannel(tp, rng)
	sig := ch.Receive(100000, nil)
	if got := dsp.SignalPower(sig); math.Abs(got-1) > 0.05 {
		t.Fatalf("noise power %v, want 1", got)
	}
}

func TestReceiveIntegerDelayPlacement(t *testing.T) {
	rng := dsp.NewRand(3)
	ch := NewChannel(tp, rng)
	ch.NoisePower = 0
	wave := []complex128{1, 2, 3}
	fs := tp.SampleRate()
	sig := ch.Receive(10, []Transmission{{Waveform: wave, SNRdB: 0, DelaySec: 4 / fs, FixedPhase: true}})
	if sig[3] != 0 || sig[4] != 1 || sig[5] != 2 || sig[6] != 3 {
		t.Fatalf("placement wrong: %v", sig[:8])
	}
}

func TestReceiveFractionalDelayMovesChirpPeak(t *testing.T) {
	// The whole reason Delayed exists: a half-sample delay must move
	// the dechirped peak by ~-0.5 bins, impossible to represent by
	// resampling the stored waveform.
	dem := chirp.NewDemodulator(tp, 16)
	rng := dsp.NewRand(4)
	ch := NewChannel(tp, rng)
	ch.NoisePower = 0

	delayed := func(frac float64) []complex128 {
		out := make([]complex128, tp.N()+1)
		for j := range out {
			u := float64(j) - frac
			if u < 0 || u >= float64(tp.N()) {
				continue
			}
			out[j] = chirp.EvalShifted(tp, 20, u)
		}
		return out
	}
	sig := ch.Receive(2*tp.N(), []Transmission{{
		Delayed:    delayed,
		SNRdB:      0,
		DelaySec:   0.5 / tp.SampleRate(),
		FixedPhase: true,
	}})
	frac, _ := dem.PeakFrac(sig[:tp.N()])
	if math.Abs(frac-19.5) > 0.1 {
		t.Fatalf("delayed chirp peak at %v, want ~19.5", frac)
	}
}

func TestReceiveFreqOffset(t *testing.T) {
	mod := chirp.NewModulator(tp)
	dem := chirp.NewDemodulator(tp, 8)
	rng := dsp.NewRand(5)
	ch := NewChannel(tp, rng)
	ch.NoisePower = 0
	sig := ch.Receive(tp.N(), []Transmission{{
		Waveform:     mod.Symbol(10),
		SNRdB:        0,
		FreqOffsetHz: 2 * tp.BinHz(),
		FixedPhase:   true,
	}})
	frac, _ := dem.PeakFrac(sig)
	if math.Abs(frac-12) > 0.1 {
		t.Fatalf("offset peak at %v, want 12", frac)
	}
}

func TestReceiveSuperposesMultiple(t *testing.T) {
	mod := chirp.NewModulator(tp)
	dem := chirp.NewDemodulator(tp, 1)
	rng := dsp.NewRand(6)
	ch := NewChannel(tp, rng)
	ch.NoisePower = 0
	sig := ch.Receive(tp.N(), []Transmission{
		{Waveform: mod.Symbol(5), SNRdB: 10},
		{Waveform: mod.Symbol(80), SNRdB: 10},
	})
	spec := dem.Spectrum(sig)
	p5, _ := chirp.PeakNear(dem, spec, 5, 0.5)
	p80, _ := chirp.PeakNear(dem, spec, 80, 0.5)
	p40, _ := chirp.PeakNear(dem, spec, 40, 0.5)
	if p5 < 100*p40 || p80 < 100*p40 {
		t.Fatalf("expected peaks at 5 and 80: %v %v (floor %v)", p5, p80, p40)
	}
}

func TestReceiveFadeGain(t *testing.T) {
	rng := dsp.NewRand(7)
	ch := NewChannel(tp, rng)
	ch.NoisePower = 0
	wave := []complex128{1, 1, 1, 1}
	sig := ch.Receive(4, []Transmission{{
		Waveform: wave, SNRdB: 0, FadeGain: complex(0.5, 0), FixedPhase: true,
	}})
	if math.Abs(real(sig[0])-0.5) > 1e-12 {
		t.Fatalf("fade gain not applied: %v", sig[0])
	}
}

func TestFrameLength(t *testing.T) {
	ch := NewChannel(tp, nil)
	if got := ch.FrameLength(10, 2); got != 12*tp.N() {
		t.Fatalf("FrameLength = %d", got)
	}
}

func TestReceiveEmptyTransmission(t *testing.T) {
	ch := NewChannel(tp, dsp.NewRand(8))
	ch.NoisePower = 0
	sig := ch.Receive(16, []Transmission{{}})
	for _, v := range sig {
		if v != 0 {
			t.Fatal("empty transmission contributed samples")
		}
	}
}
