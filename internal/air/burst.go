package air

// Interference bursts: in-band transmitters that are not NetScatter
// devices — a WiFi station (wideband noise-like) or a foreign LoRa
// radio (a continuous upchirp train) — expressed through the same
// template contract the device closures use, so a burst rides the
// channel's shared-template fan-out, per-AP scaling and tiled
// accumulation unchanged. A Burst's template is synthesized once per
// event into a caller-owned buffer; tiling the template across the
// burst window turns one symbol of synthesis into an arbitrarily long
// interferer.

import (
	"netscatter/internal/chirp"
	"netscatter/internal/dsp"
)

// Burst is one interference event inside a round: Template repeated
// cyclically over the sample window [StartSample, StartSample +
// DurSamples). Placement is carried here rather than in DelaySec —
// install the Burst's closures on a transmission with DelaySec = 0;
// the closures ignore the channel-computed placement, fractional delay
// and frequency offset (an interferer has no device oscillator; bake
// any offset into the template).
type Burst struct {
	// Template holds the burst's base waveform at unit mean power. Its
	// length must not exceed the channel's per-transmission template
	// slot (two symbol periods, 2·N samples).
	Template []complex128
	// StartSample is the burst's first sample in the receive buffer.
	StartSample int
	// DurSamples is the burst length in samples.
	DurSamples int
}

// MixedTmpl implements the template-synthesis closure: the burst's
// per-AP template is just the base template scaled by the carrier gain.
func (b *Burst) MixedTmpl(tmpl []complex128, _, _ float64, gain complex128) []complex128 {
	return ScaleTemplate(tmpl, b.Template, gain)
}

// AddRange implements the tiled accumulation closure: add the cyclic
// template over the burst window clipped to [lo, hi). The tile workers
// call this concurrently for disjoint [lo, hi) ranges; the method only
// writes inside its clip, so the burst is bit-identical at any
// GOMAXPROCS like every other transmission.
func (b *Burst) AddRange(out []complex128, lo, hi, _ int, tmpl []complex128, _, _ float64) {
	n := len(tmpl)
	if n == 0 || b.DurSamples <= 0 {
		return
	}
	start := b.StartSample
	if end := start + b.DurSamples; hi > end {
		hi = end
	}
	if lo < start {
		lo = start
	}
	for j := lo; j < hi; j++ {
		out[j] += tmpl[(j-start)%n]
	}
}

// Tx wraps the burst as a multi-AP transmission with the given per-AP
// received SNRs. The closures capture the Burst pointer, so a caller
// may build the transmission once and retarget the same Burst (new
// template contents, window, SNRs) each event without reallocating.
func (b *Burst) Tx(snrPerAP []float64) MultiTransmission {
	return MultiTransmission{
		MixedTmpl:     b.MixedTmpl,
		MixedAddRange: b.AddRange,
		SNRdB:         snrPerAP,
	}
}

// NoiseBurstTemplate fills dst with unit-power circularly symmetric
// complex Gaussian samples from st — the wideband, WiFi-shaped
// interferer (an OFDM signal at these bandwidths is statistically
// Gaussian).
func NoiseBurstTemplate(dst []complex128, st *dsp.Stream) {
	for i := range dst {
		dst[i] = st.NormComplex(1)
	}
}

// ChirpBurstTemplate writes one upchirp symbol of m at the given cyclic
// shift into dst (grown from its capacity) and returns it. Tiled over a
// burst window this is a foreign LoRa transmitter's continuous chirp
// train — the worst-shaped interferer for a CSS receiver, since its
// energy dechirps into a coherent bin instead of spreading.
func ChirpBurstTemplate(dst []complex128, m *chirp.Modulator, shift int) []complex128 {
	return m.AppendSymbol(dst[:0], shift)
}
