package air_test

import (
	"math/cmplx"
	"testing"

	"netscatter/internal/air"
	"netscatter/internal/dsp"
	"netscatter/internal/simtest"
	"netscatter/internal/synth"
)

// TestReceiveMixedMatchesDelayed builds the same two-device frame three
// times — through the Delayed path (synthesize, then ApplyFreqOffset,
// then gain scale), the DelayedInto path (same passes, channel-owned
// slot buffers), and the Mixed path (everything folded into the
// synthesis recurrence) — with identical rng sequences, and requires
// the received streams to agree to the synthesis tolerance.
func TestReceiveMixedMatchesDelayed(t *testing.T) {
	p := simtest.SmallParams()
	s := synth.For(p)
	bits := []byte{1, 0, 1, 1, 0, 1}
	shifts := []int{5, 60}
	offsets := []float64{170, -410}
	delays := []float64{0.3 / p.BW, 0.45 / p.BW}
	snrs := []float64{12, 4}

	build := func(path string) []complex128 {
		var txs []air.Transmission
		for i := range shifts {
			shift := shifts[i]
			tx := air.Transmission{
				SNRdB:        snrs[i],
				DelaySec:     delays[i],
				FreqOffsetHz: offsets[i],
			}
			switch path {
			case "mixed":
				tx.Mixed = func(dst []complex128, frac, freqHz float64, gain complex128) []complex128 {
					omega := 2 * 3.141592653589793 * freqHz / p.SampleRate()
					return s.FrameMixedInto(dst, shift, 6, 2, bits, frac, omega, gain)
				}
			case "into":
				tx.DelayedInto = func(dst []complex128, frac float64) []complex128 {
					return s.FrameDelayedInto(dst, shift, 6, 2, bits, frac)
				}
			default:
				tx.Delayed = func(frac float64) []complex128 {
					return s.FrameDelayedInto(nil, shift, 6, 2, bits, frac)
				}
			}
			txs = append(txs, tx)
		}
		ch := air.NewChannel(p, dsp.NewRand(42))
		ch.NoisePower = 1
		// Two rounds through the same channel so the slot-buffer reuse
		// path is exercised; rebuild the rng so both rounds draw the
		// same sequence and must produce identical streams.
		out := ch.Receive(ch.FrameLength(8+len(bits), 2), txs)
		ch.Rng = dsp.NewRand(42)
		out2 := ch.ReceiveInto(make([]complex128, len(out)), txs)
		for i := range out {
			if out[i] != out2[i] {
				t.Fatalf("%s path: reused channel diverged at sample %d", path, i)
			}
		}
		return out
	}

	a := build("delayed")
	b := build("mixed")
	c := build("into")
	if len(a) != len(b) || len(a) != len(c) {
		t.Fatalf("stream lengths differ: %d vs %d vs %d", len(a), len(b), len(c))
	}
	// The DelayedInto path performs the same three passes as Delayed —
	// streams must be bit-identical.
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("DelayedInto path diverges from Delayed at sample %d", i)
		}
	}
	// The mixed path differs only by recurrence-vs-incremental rotation
	// rounding; tolerance scales with the strongest amplitude in the sum.
	worst := 0.0
	for i := range a {
		if e := cmplx.Abs(a[i] - b[i]); e > worst {
			worst = e
		}
	}
	if worst > 1e-8 {
		t.Fatalf("mixed path diverges from delayed path by %.3e", worst)
	}
}
