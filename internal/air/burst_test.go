package air

import (
	"runtime"
	"testing"

	"netscatter/internal/chirp"
	"netscatter/internal/dsp"
)

var burstParams = chirp.Params{SF: 7, BW: 125e3, Oversample: 1}

// TestBurstWindowContainment: with noise off and a fixed phase, a burst
// receive contains exactly the cyclically tiled template inside
// [StartSample, StartSample+DurSamples) — at every AP — and zeros
// outside, across tile boundaries.
func TestBurstWindowContainment(t *testing.T) {
	p := burstParams
	mod := chirp.NewModulator(p)
	b := &Burst{
		Template:    ChirpBurstTemplate(nil, mod, 5),
		StartSample: 3000,
		DurSamples:  2000,
	}
	tx := b.Tx([]float64{0, 0})
	tx.FixedPhase = true

	mc := NewMultiChannel(p, 2, dsp.NewRand(1))
	mc.NoisePower = 0
	length := mc.FrameLength(42, 0) // spans two 4096-sample tiles
	outs := mc.Receive(length, []MultiTransmission{tx})

	n := len(b.Template)
	for a, out := range outs {
		for j, v := range out {
			var want complex128
			if j >= b.StartSample && j < b.StartSample+b.DurSamples {
				want = b.Template[(j-b.StartSample)%n]
			}
			if v != want {
				t.Fatalf("AP %d sample %d: got %v, want %v", a, j, v, want)
			}
		}
	}
}

// TestBurstTiledBitIdentical: a noisy receive containing a burst (and a
// noise-template burst at that — both template kinds) is bit-identical
// across GOMAXPROCS ∈ {1, 2, 4}: the burst's AddRange writes only
// inside its tile clip, so it composes with the (AP, tile) worker
// fan-out like any device transmission.
func TestBurstTiledBitIdentical(t *testing.T) {
	p := burstParams
	run := func(procs int) [][]complex128 {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		st := dsp.StreamAt(7, 0)
		tmpl := make([]complex128, 2*p.N())
		NoiseBurstTemplate(tmpl, &st)
		b := &Burst{Template: tmpl, StartSample: 4000, DurSamples: 3000}
		mc := NewMultiChannel(p, 2, dsp.NewRand(11))
		length := mc.FrameLength(64, 0)
		outs := mc.Receive(length, []MultiTransmission{b.Tx([]float64{6, 3})})
		cp := make([][]complex128, len(outs))
		for a := range outs {
			cp[a] = append([]complex128(nil), outs[a]...)
		}
		return cp
	}
	want := run(1)
	for _, procs := range []int{2, 4} {
		got := run(procs)
		for a := range want {
			for j := range want[a] {
				if got[a][j] != want[a][j] {
					t.Fatalf("GOMAXPROCS=%d AP %d sample %d diverges", procs, a, j)
				}
			}
		}
	}
}
