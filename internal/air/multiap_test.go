package air_test

import (
	"math"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"netscatter/internal/air"
	"netscatter/internal/core"
	"netscatter/internal/dsp"
	"netscatter/internal/radio"
	"netscatter/internal/simtest"
)

// mirrorScalesAndKey replays the MultiChannel's serial randomness for a
// fleet: per-(device, AP) carrier gains in (device, AP) order, then the
// round's noise key — the documented draw-order contract the oracle
// comparison (and replay tooling) depends on.
func mirrorScalesAndKey(seed int64, txs []air.MultiTransmission, nAPs int) ([][]complex128, int64) {
	rng := dsp.NewRand(seed)
	scales := make([][]complex128, len(txs))
	for i := range txs {
		tx := &txs[i]
		scales[i] = make([]complex128, nAPs)
		for a := 0; a < nAPs; a++ {
			gain := complex(radio.AmplitudeForSNRdB(tx.SNRdB[a]), 0)
			if tx.FadeGain != 0 {
				gain *= tx.FadeGain
			}
			if !tx.FixedPhase {
				gain *= rng.UniformPhase()
			}
			scales[i][a] = gain
		}
	}
	return scales, int64(rng.Uint64())
}

// TestMultiChannelMatchesSingleAPOracles pins the tentpole's
// bit-exactness contract: each per-AP buffer of a MultiChannel receive
// must be DeepEqual to an independent single-AP air.Channel receive
// (the retained oracle) given the same per-AP noise key (masterKey^ap)
// and that AP's scaled-template transmissions. The oracle channels
// re-derive everything from scratch — fresh encoders, the mirrored
// scale draws — so the equality validates the fan-out's scale
// composition, accumulation order, tile grid and noise-key derivation
// against the single-AP engine, for k ∈ {1, 2, 4}.
func TestMultiChannelMatchesSingleAPOracles(t *testing.T) {
	p := simtest.SmallParams()
	const nDev = 7
	const nBits = 12
	length := (8 + nBits + 2) * p.N()

	for _, k := range []int{1, 2, 4} {
		bits := simtest.Bits(nDev, nBits, 21)
		txs := simtest.MultiTxs(p, nDev, k, bits)
		const seed = 99
		mc := air.NewMultiChannel(p, k, dsp.NewRand(seed))
		outs := mc.Receive(length, txs)

		scales, key := mirrorScalesAndKey(seed, txs, k)
		for a := 0; a < k; a++ {
			oracle := air.NewChannel(p, dsp.NewRand(1))
			otxs := make([]air.Transmission, nDev)
			for i := 0; i < nDev; i++ {
				enc := core.NewEncoder(p, (i*7+3)%p.N())
				b := bits[i]
				scale := scales[i][a]
				otx := &otxs[i]
				otx.DelaySec = txs[i].DelaySec
				otx.FreqOffsetHz = txs[i].FreqOffsetHz
				otx.FixedPhase = true // scale already carries the phase
				otx.MixedTmpl = func(tmpl []complex128, frac, freqHz float64, gain complex128) []complex128 {
					base := enc.FrameBitsWaveformMixedTemplates(nil, b, frac, freqHz, 1)
					return air.ScaleTemplate(tmpl, base, scale)
				}
				otx.MixedAddRange = func(out []complex128, lo, hi, at int, tmpl []complex128, frac, freqHz float64) {
					enc.FrameBitsWaveformMixedAddRange(out, lo, hi, at, tmpl, b, frac, freqHz)
				}
			}
			want := oracle.ReceiveIntoKeyed(make([]complex128, length), otxs, key^int64(a))
			if !reflect.DeepEqual(outs[a], want) {
				i := firstDiff(outs[a], want)
				t.Fatalf("k=%d AP %d diverges from single-AP oracle at sample %d: %v vs %v",
					k, a, i, outs[a][i], want[i])
			}
		}
	}
}

func firstDiff(a, b []complex128) int {
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}

// TestMultiChannelSynthesizesTemplatesOnce pins the fan-out's economy
// claim: template synthesis (MixedTmpl) runs exactly once per
// contributing device per receive, regardless of the AP count — the
// per-AP variation is applied by scaling, never by re-synthesis.
func TestMultiChannelSynthesizesTemplatesOnce(t *testing.T) {
	p := simtest.SmallParams()
	const nDev = 5
	const k = 4
	bits := simtest.Bits(nDev, 9, 3)
	txs := simtest.MultiTxs(p, nDev, k, bits)
	var calls atomic.Int64
	for i := range txs {
		inner := txs[i].MixedTmpl
		txs[i].MixedTmpl = func(tmpl []complex128, frac, freqHz float64, gain complex128) []complex128 {
			calls.Add(1)
			return inner(tmpl, frac, freqHz, gain)
		}
	}
	mc := air.NewMultiChannel(p, k, dsp.NewRand(5))
	length := (8 + 9 + 2) * p.N()
	outs := mc.Receive(length, txs)
	if got := calls.Load(); got != nDev {
		t.Fatalf("first receive synthesized %d templates for %d devices", got, nDev)
	}
	mc.ReceiveInto(outs, txs)
	if got := calls.Load(); got != 2*nDev {
		t.Fatalf("after two receives: %d synth calls, want %d", got, 2*nDev)
	}
}

// TestMultiChannelBitIdenticalAcrossGOMAXPROCSRace pins the fan-out's
// determinism contract under the race detector: all k buffers are
// bit-identical across GOMAXPROCS ∈ {1, 2, 4} — the (AP, tile)-indexed
// noise streams and transmission-ordered accumulation make every
// buffer a pure function of (seed, transmissions), not of worker
// scheduling.
func TestMultiChannelBitIdenticalAcrossGOMAXPROCSRace(t *testing.T) {
	p := simtest.SmallParams()
	const nDev = 12
	const k = 3
	length := (8 + 16 + 3) * p.N()

	run := func(procs int) [][]complex128 {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		bits := simtest.Bits(nDev, 16, 8)
		mc := air.NewMultiChannel(p, k, dsp.NewRand(44))
		outs := mc.Receive(length, simtest.MultiTxs(p, nDev, k, bits))
		// A second round through the same channel exercises arena reuse.
		mc.Rng = dsp.NewRand(44)
		outs2 := mc.Receive(length, simtest.MultiTxs(p, nDev, k, bits))
		for a := range outs {
			if !reflect.DeepEqual(outs[a], outs2[a]) {
				t.Fatalf("procs=%d: arena reuse diverged at AP %d", procs, a)
			}
		}
		return outs
	}

	want := run(1)
	for _, procs := range []int{2, 4} {
		got := run(procs)
		for a := range want {
			if !reflect.DeepEqual(got[a], want[a]) {
				i := firstDiff(got[a], want[a])
				t.Fatalf("GOMAXPROCS=%d AP %d diverges from serial at sample %d", procs, a, i)
			}
		}
	}
}

// TestMultiChannelZeroAllocSteadyState: after a warm-up receive, the
// multi-AP fan-out reuses every arena — base templates, per-AP scaled
// templates, scales, placements — so steady-state receives allocate
// nothing at GOMAXPROCS=1.
func TestMultiChannelZeroAllocSteadyState(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	p := simtest.SmallParams()
	const nDev = 6
	const k = 2
	bits := simtest.Bits(nDev, 10, 6)
	txs := simtest.MultiTxs(p, nDev, k, bits)
	mc := air.NewMultiChannel(p, k, dsp.NewRand(9))
	outs := mc.Receive((8+10+2)*p.N(), txs)
	allocs := testing.AllocsPerRun(10, func() { mc.ReceiveInto(outs, txs) })
	if allocs != 0 {
		t.Fatalf("steady-state multi-AP receive allocates %.1f objects/op", allocs)
	}
}

// TestMultiChannelNoiseIndependentPerAP: with no transmissions the
// buffers are pure noise; distinct APs must draw distinct streams
// (key^ap), and AP 0's stream must be exactly the single-AP channel's
// for the same Rng sequence — the degeneracy that makes a one-AP multi
// deployment the classic deployment.
func TestMultiChannelNoiseIndependentPerAP(t *testing.T) {
	p := simtest.SmallParams()
	length := 3 * p.N()
	mc := air.NewMultiChannel(p, 3, dsp.NewRand(12))
	outs := mc.Receive(length, nil)
	for a := 1; a < 3; a++ {
		if reflect.DeepEqual(outs[0], outs[a]) {
			t.Fatalf("AP %d drew AP 0's noise stream", a)
		}
	}
	ch := air.NewChannel(p, dsp.NewRand(12))
	single := ch.Receive(length, nil)
	if !reflect.DeepEqual(outs[0], single) {
		t.Fatal("AP 0's noise differs from the single-AP channel at the same seed")
	}
	// Correlation sanity: distinct streams should be near-orthogonal.
	var dot, p0, p1 float64
	for i := range outs[0] {
		dot += real(outs[0][i])*real(outs[1][i]) + imag(outs[0][i])*imag(outs[1][i])
		p0 += real(outs[0][i])*real(outs[0][i]) + imag(outs[0][i])*imag(outs[0][i])
		p1 += real(outs[1][i])*real(outs[1][i]) + imag(outs[1][i])*imag(outs[1][i])
	}
	if corr := math.Abs(dot) / math.Sqrt(p0*p1); corr > 0.1 {
		t.Fatalf("per-AP noise streams correlate at %.3f", corr)
	}
}
