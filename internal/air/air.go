// Package air composes the signal the AP antenna actually receives: the
// superposition of every concurrent backscatter transmission, each with
// its own amplitude (link SNR), timing offset (hardware delay + time of
// flight), frequency offset (crystal + Doppler), random carrier phase
// and optional fading gain, plus unit-power thermal noise.
//
// The simulator works in normalized baseband: noise power is 1, and a
// transmission arriving with SNR s dB has amplitude sqrt(10^(s/10)).
package air

import (
	"math"

	"netscatter/internal/chirp"
	"netscatter/internal/dsp"
	"netscatter/internal/pool"
	"netscatter/internal/radio"
)

// Transmission describes one device's contribution to a received frame.
type Transmission struct {
	// Waveform is the device's ideal transmit waveform (from
	// core.Encoder or css.Modem).
	Waveform []complex128
	// Delayed, if non-nil, synthesizes the waveform with a fractional
	// sample delay baked in analytically (core.Encoder's
	// FrameWaveformDelayed). Cyclically shifted chirps are not
	// bandlimited (the shift wrap is a genuine discontinuity), so
	// interpolating Waveform cannot represent a sub-sample delay
	// exactly; analytic synthesis can. When nil, sub-sample delays fall
	// back to bandlimited interpolation — fine for smooth waveforms
	// like the ASK downlink.
	Delayed func(fracSamples float64) []complex128
	// DelayedInto is Delayed synthesizing into dst's storage when its
	// capacity suffices (core.Encoder's FrameBitsWaveformDelayedInto).
	// It takes precedence over Delayed and Waveform; with it, steady-
	// state rounds through ReceiveInto run allocation-free, reusing the
	// channel's per-slot synthesis buffers.
	DelayedInto func(dst []complex128, fracSamples float64) []complex128
	// Mixed, if non-nil, synthesizes the fractionally-delayed waveform
	// with the transmission's frequency offset and complex carrier gain
	// folded into the synthesis recurrence (core.Encoder's
	// FrameBitsWaveformMixedInto) — one pass instead of synthesize +
	// rotate + scale. Takes precedence over every other waveform field.
	Mixed func(dst []complex128, fracSamples, freqOffsetHz float64, gain complex128) []complex128
	// MixedAdd, if non-nil, accumulates the mixed waveform directly into
	// the receive buffer at the given integer sample offset (clipped to
	// its bounds), using tmpl as caller-owned template scratch — the
	// superposition fused into synthesis, so the frame is never
	// materialized (core.Encoder's FrameBitsWaveformMixedAdd). The
	// channel uses it on the serial path (single-slot pool), where it is
	// bit-identical to Mixed + Superpose; parallel synthesis keeps using
	// Mixed so a transmission intended for both regimes should set both.
	MixedAdd func(out []complex128, at int, tmpl []complex128, fracSamples, freqOffsetHz float64, gain complex128) []complex128
	// MixedTmpl and MixedAddRange together select the tiled channel
	// path, the preferred regime: MixedTmpl synthesizes the frame's
	// mixed template symbols into channel-owned scratch once per receive
	// (core.Encoder's FrameBitsWaveformMixedTemplates), and
	// MixedAddRange accumulates the [lo, hi) clip of the placed frame
	// into the receive buffer from those templates
	// (FrameBitsWaveformMixedAddRange). When every contributing
	// transmission provides both, the channel partitions the buffer into
	// cache-sized tiles, each accumulated and noise-filled
	// independently — in parallel across the worker pool, bit-identical
	// to the serial pass at any worker count. In a mixed fleet these
	// closures are ignored (the legacy paths run); a transmission meant
	// for both regimes should also set Mixed.
	MixedTmpl     func(tmpl []complex128, fracSamples, freqOffsetHz float64, gain complex128) []complex128
	MixedAddRange func(out []complex128, lo, hi, at int, tmpl []complex128, fracSamples, freqOffsetHz float64)
	// SNRdB is the received signal-to-noise ratio at the AP over the
	// receive bandwidth (power versus the unit noise floor).
	SNRdB float64
	// DelaySec is the total arrival delay relative to the nominal
	// frame start: per-packet hardware delay variation plus round-trip
	// time of flight.
	DelaySec float64
	// FreqOffsetHz is the device's oscillator offset (plus Doppler).
	FreqOffsetHz float64
	// FadeGain is an optional extra complex channel gain (1 if zero).
	FadeGain complex128
	// FixedPhase disables the random carrier phase (for deterministic
	// spectral tests).
	FixedPhase bool
}

// hasWave reports whether the transmission contributes any samples.
func (tx *Transmission) hasWave() bool {
	return tx.Mixed != nil || tx.MixedAdd != nil || tx.MixedTmpl != nil ||
		tx.DelayedInto != nil || tx.Delayed != nil || len(tx.Waveform) > 0
}

// tiled reports whether the transmission supports the tiled path.
func (tx *Transmission) tiled() bool {
	return tx.MixedTmpl != nil && tx.MixedAddRange != nil
}

// placement splits the transmission's arrival delay into the integer
// sample placement and the fractional remainder synthesis bakes in.
func (tx *Transmission) placement(sampleRate float64) (intDelay int, fracSamples float64) {
	return splitDelay(tx.DelaySec, sampleRate)
}

// splitDelay splits an arrival delay into integer sample placement and
// the fractional remainder.
func splitDelay(delaySec, sampleRate float64) (intDelay int, fracSamples float64) {
	delaySamples := delaySec * sampleRate
	intDelay = int(math.Floor(delaySamples))
	return intDelay, delaySamples - float64(intDelay)
}

// Channel assembles received frames for one chirp parameter set. Its
// synthesis scratch is reused across Receive calls; a Channel is not
// safe for concurrent use (it owns an Rng), but one channel per
// goroutine is cheap.
type Channel struct {
	// Params supplies the sample rate.
	Params chirp.Params
	// NoisePower is the thermal noise power (1 for the normalized
	// simulator; 0 disables noise for deterministic tests).
	NoisePower float64
	// Rng drives noise, phases and nothing else.
	Rng *dsp.Rand

	// Reused per-call scratch: carrier gains, channel-owned per-slot
	// synthesis buffers, the per-slot result views superposition reads
	// (results[k] aliases bufs[k] for channel-synthesized waveforms but
	// stays distinct for Delayed-path buffers, which the callback owns
	// and must never be handed to a later transmission to overwrite),
	// integer placements, plus the persistent worker closure and the
	// in-flight chunk state it reads (a fresh closure per chunk would
	// heap-allocate every round).
	gains   []complex128
	bufs    [][]complex128
	results [][]complex128
	delays  []int
	tmpl    []complex128 // template scratch for the fused MixedAdd path

	worker func(k int)
	curTxs []Transmission
	curLo  int
	serial bool // this receive runs on a single-slot pool (fixed per call)

	// Tiled-path state: the per-transmission template arena (2N samples
	// per device, synthesized once per receive and read by every tile),
	// per-transmission placements, and the persistent tile/template
	// workers with the in-flight call state they read. All of it is
	// written before the fan-out and only read inside it.
	tmplArena []complex128
	tmpls     [][]complex128
	txAt      []int
	txFrac    []float64

	tmplWorker func(i int)
	tileWorker func(t int)
	curOut     []complex128
	curKey     int64
	noiseOn    bool
}

// tileSamples is the tiled path's partition grain: 4096 complex samples
// (64 KiB) keep a tile's accumulate and noise traffic cache-resident
// while leaving enough tiles per frame to occupy the pool. It is a
// constant of the output format — never derived from worker count — so
// the tile decomposition (and with it the per-tile noise streams) is
// identical at any GOMAXPROCS.
const tileSamples = 4096

// NewChannel returns a unit-noise channel.
func NewChannel(p chirp.Params, rng *dsp.Rand) *Channel {
	return &Channel{Params: p, NoisePower: 1, Rng: rng}
}

// Receive builds a received stream of length samples from the given
// transmissions, allocating the output. See ReceiveInto.
func (c *Channel) Receive(length int, txs []Transmission) []complex128 {
	return c.ReceiveInto(make([]complex128, length), txs)
}

// ReceiveInto builds the received stream into out (which is zeroed
// first) and returns it. Each transmission is scaled to its SNR,
// rotated by its frequency offset, delayed by its arrival offset
// (integer placement plus an analytic or windowed-sinc fractional
// delay, so timing offsets behave physically for both upchirps and
// downchirps), given a random carrier phase, and superposed, with
// thermal noise added on top.
//
// When every contributing transmission supports the tiled regime
// (MixedTmpl + MixedAddRange — the sim's round path), the whole
// receive is tiled: templates are synthesized once per device (in
// parallel), then fixed cache-sized tiles of out are zeroed,
// accumulated in transmission order and noise-filled independently
// across the worker pool. Otherwise the legacy chunked synthesis +
// superpose path runs, followed by the same tile-grid noise.
//
// Determinism is exact in both regimes: carrier phases are drawn from
// the channel Rng in transmission order before any fan-out, one more
// serial draw keys the round's noise, synthesis draws no randomness,
// per-sample accumulation order is transmission order regardless of
// tile scheduling, and each tile's noise comes from its tile-indexed
// stream (dsp.StreamAt) rather than any worker-owned generator — so
// the output is bit-identical for a given seed at any GOMAXPROCS.
func (c *Channel) ReceiveInto(out []complex128, txs []Transmission) []complex128 {
	tiledAll := c.prepareGains(txs)

	// The round's noise key: one serial draw from the channel Rng keys
	// every tile's noise stream (dsp.StreamAt(key, tile)). Noise is thus
	// a pure function of the Rng sequence and the fixed tile grid —
	// replayable by reseeding the Rng, identical at any worker count,
	// and identical between the tiled and legacy accumulate regimes.
	noise := c.NoisePower > 0 && c.Rng != nil
	var key int64
	if noise {
		key = int64(c.Rng.Uint64())
	}
	return c.receiveWithKey(out, txs, tiledAll, noise, key)
}

// ReceiveIntoKeyed is ReceiveInto with the round's noise key supplied
// by the caller instead of drawn from the channel Rng: tile t draws its
// noise from dsp.StreamAt(key, t). Carrier phases for non-FixedPhase
// transmissions still come from the channel Rng, in transmission order.
// This is the single-AP oracle hook the multi-AP fan-out is pinned
// against — MultiChannel gives AP a the key masterKey^a, and a plain
// Channel handed the same key and per-AP transmissions must reproduce
// that AP's buffer bit for bit (see MultiChannel and multiap tests).
func (c *Channel) ReceiveIntoKeyed(out []complex128, txs []Transmission, key int64) []complex128 {
	tiledAll := c.prepareGains(txs)
	return c.receiveWithKey(out, txs, tiledAll, c.NoisePower > 0, key)
}

// prepareGains fills the per-transmission carrier gains (SNR amplitude
// × optional fade × random carrier phase, drawn from the channel Rng in
// transmission order before any fan-out) and reports whether every
// contributing transmission supports the tiled regime.
func (c *Channel) prepareGains(txs []Transmission) (tiledAll bool) {
	if cap(c.gains) < len(txs) {
		c.gains = make([]complex128, len(txs))
	}
	gains := c.gains[:len(txs)]
	tiledAll = true
	for i := range txs {
		tx := &txs[i]
		if !tx.hasWave() {
			continue // no waveform: consumes no randomness, as before
		}
		if !tx.tiled() {
			tiledAll = false
		}
		gains[i] = carrierGain(tx.SNRdB, tx.FadeGain, tx.FixedPhase, c.Rng)
	}
	return tiledAll
}

// carrierGain composes one link's carrier gain: SNR amplitude, then the
// optional fade, then the random phase. The multi-AP channel builds its
// per-(device, AP) scales through this same function, so a scale and a
// single-AP gain composed from the same inputs are the same bits.
func carrierGain(snrDB float64, fade complex128, fixedPhase bool, rng *dsp.Rand) complex128 {
	gain := complex(radio.AmplitudeForSNRdB(snrDB), 0)
	if fade != 0 {
		gain *= fade
	}
	if !fixedPhase && rng != nil {
		gain *= rng.UniformPhase()
	}
	return gain
}

// receiveWithKey runs the accumulate + noise phases of a receive with
// the gains already prepared and the noise key fixed.
func (c *Channel) receiveWithKey(out []complex128, txs []Transmission, tiledAll, noise bool, key int64) []complex128 {
	if tiledAll {
		// Tiled path: every contributing transmission synthesizes
		// templates once, then disjoint tiles accumulate and
		// noise-fill independently across the pool.
		c.receiveTiled(out, txs, noise, key)
		return out
	}

	for i := range out {
		out[i] = 0
	}
	c.receiveLegacy(out, txs)
	if noise {
		c.addNoiseTiled(out, key)
	}
	return out
}

// receiveTiled is the tiled channel path. Phase one synthesizes every
// transmission's mixed template symbols into the channel's template
// arena (independent per transmission, fanned across the pool). Phase
// two partitions out into fixed tileSamples-sized tiles; each tile
// zeroes its span, accumulates every transmission's overlap in
// transmission order, and adds its own noise stream — bit-identical to
// the serial whole-buffer pass because each output sample sees the
// same additions in the same order no matter how tiles are scheduled,
// and each tile's noise comes from the tile-indexed stream, not from a
// worker-owned generator.
func (c *Channel) receiveTiled(out []complex128, txs []Transmission, noise bool, key int64) {
	nTx := len(txs)
	n2 := 2 * c.Params.N()
	if cap(c.txAt) < nTx {
		c.txAt = make([]int, nTx)
		c.txFrac = make([]float64, nTx)
		c.tmpls = make([][]complex128, nTx)
	}
	if cap(c.tmplArena) < nTx*n2 {
		c.tmplArena = make([]complex128, nTx*n2)
	}
	c.txAt = c.txAt[:nTx]
	c.txFrac = c.txFrac[:nTx]
	c.tmpls = c.tmpls[:nTx]
	fs := c.Params.SampleRate()
	for i := range txs {
		c.txAt[i], c.txFrac[i] = txs[i].placement(fs)
		c.tmpls[i] = c.tmplArena[i*n2 : i*n2 : (i+1)*n2]
	}

	if c.tmplWorker == nil {
		c.tmplWorker = c.tmplOne
		c.tileWorker = c.tileOne
	}
	c.curTxs = txs
	c.curOut = out
	c.curKey = key
	c.noiseOn = noise
	pool.ForEach(nTx, c.tmplWorker)
	nTiles := (len(out) + tileSamples - 1) / tileSamples
	pool.ForEach(nTiles, c.tileWorker)
	c.curTxs = nil
	c.curOut = nil
}

// tmplOne synthesizes transmission i's template symbols into its arena
// slot (frequency offset, carrier gain and fractional delay folded in).
func (c *Channel) tmplOne(i int) {
	tx := &c.curTxs[i]
	if !tx.tiled() || !tx.hasWave() {
		return
	}
	c.tmpls[i] = tx.MixedTmpl(c.tmpls[i], c.txFrac[i], tx.FreqOffsetHz, c.gains[i])
}

// tileOne builds tile t of the in-flight receive: zero, accumulate
// every transmission's overlap in order, add the tile's noise stream.
func (c *Channel) tileOne(t int) {
	out := c.curOut
	lo := t * tileSamples
	hi := min(lo+tileSamples, len(out))
	w := out[lo:hi]
	for i := range w {
		w[i] = 0
	}
	for i := range c.curTxs {
		tx := &c.curTxs[i]
		if !tx.tiled() {
			continue
		}
		tx.MixedAddRange(out, lo, hi, c.txAt[i], c.tmpls[i], c.txFrac[i], tx.FreqOffsetHz)
	}
	if c.noiseOn {
		st := dsp.StreamAt(c.curKey, uint64(t))
		radio.AddAWGN(&st, w, c.NoisePower)
	}
}

// addNoiseTiled adds the same tile-grid noise the tiled path would —
// the legacy accumulate regimes share one noise definition, so a
// channel's output depends only on its Rng sequence and configuration,
// never on which synthesis closures the transmissions offered.
func (c *Channel) addNoiseTiled(out []complex128, key int64) {
	for t, lo := 0, 0; lo < len(out); t, lo = t+1, lo+tileSamples {
		hi := min(lo+tileSamples, len(out))
		st := dsp.StreamAt(key, uint64(t))
		radio.AddAWGN(&st, out[lo:hi], c.NoisePower)
	}
}

// receiveLegacy accumulates the composite signal for fleets that do not
// (all) support the tiled path. Synthesis runs in bounded chunks: a
// chunk's waveforms are built in parallel, then superposed serially in
// transmission order before the next chunk starts, so peak memory stays
// O(chunk) frames instead of O(devices) while the sample-level output
// is identical. Slot buffers persist on the channel, so steady-state
// rounds with DelayedInto transmissions synthesize into reused storage.
//
// With a single-slot pool the fan-out would run inline anyway, so the
// channel takes the fused path instead: MixedAdd transmissions
// accumulate straight into out from their template symbols, never
// materializing a frame — bit-identical to synthesize + Superpose (see
// synth.FrameMixedAccumulate) but without the frame-sized write+read
// round trip per device.
func (c *Channel) receiveLegacy(out []complex128, txs []Transmission) {
	chunk := pool.Size() * 2
	if chunk < 1 {
		chunk = 1
	}
	nSlots := min(chunk, len(txs))
	if len(c.bufs) < nSlots {
		c.bufs = append(c.bufs, make([][]complex128, nSlots-len(c.bufs))...)
		c.results = make([][]complex128, nSlots)
		c.delays = make([]int, nSlots)
	}
	if c.worker == nil {
		c.worker = c.synthOne
	}
	c.curTxs = txs
	c.serial = pool.Size() == 1
	fs := c.Params.SampleRate()
	for lo := 0; lo < len(txs); lo += chunk {
		hi := min(lo+chunk, len(txs))
		c.curLo = lo
		if !c.serial {
			// Fan synthesis out; fused transmissions are skipped by
			// synthOne and handled inline below.
			pool.ForEach(hi-lo, c.worker)
		}
		// Superpose in transmission order. MixedAdd transmissions that
		// skipped slot synthesis accumulate inline; runs of synthesized
		// slots between them land in one SuperposeBatch pass.
		k := 0
		for k < hi-lo {
			tx := &txs[lo+k]
			if c.fusedAdd(tx) {
				at, frac := tx.placement(fs)
				c.tmpl = tx.MixedAdd(out, at, c.tmpl, frac, tx.FreqOffsetHz, c.gains[lo+k])
				c.results[k] = nil
				k++
				continue
			}
			if c.serial {
				c.synthOne(k)
			}
			j := k + 1
			for j < hi-lo && !c.fusedAdd(&txs[lo+j]) {
				if c.serial {
					c.synthOne(j)
				}
				j++
			}
			radio.SuperposeBatch(out, c.results[k:j], c.delays[k:j])
			for ; k < j; k++ {
				c.results[k] = nil
			}
		}
	}
	c.curTxs = nil
}

// fusedAdd reports whether tx takes the fused accumulate path on this
// receive: always when it offers only MixedAdd, and on the serial path
// whenever MixedAdd is present. (In parallel mode a transmission with
// both closures synthesizes through Mixed so the pool can build frames
// concurrently; the two routes produce identical bits.) The decision
// reads the per-call serial flag, not pool.Size(), so one receive never
// mixes regimes even if GOMAXPROCS changes mid-call.
func (c *Channel) fusedAdd(tx *Transmission) bool {
	if tx.MixedAdd == nil {
		return false
	}
	return tx.Mixed == nil || c.serial
}

// synthOne synthesizes chunk slot k of the in-flight ReceiveInto call:
// the transmission's delayed waveform, frequency-rotated and scaled
// into the channel's slot buffer, ready for serial superposition.
func (c *Channel) synthOne(k int) {
	i := c.curLo + k
	tx := &c.curTxs[i]
	if c.fusedAdd(tx) {
		// Handled inline by the superposition loop — synthesizing a
		// frame here would only be thrown away.
		c.results[k] = nil
		return
	}
	fs := c.Params.SampleRate()
	intDelay, fracSamples := tx.placement(fs)
	c.delays[k] = intDelay

	if tx.Mixed != nil {
		// Frequency offset and carrier gain are applied inside the
		// synthesis recurrence — nothing left to do here.
		c.bufs[k] = tx.Mixed(c.bufs[k][:0], fracSamples, tx.FreqOffsetHz, c.gains[i])
		c.results[k] = c.bufs[k]
		return
	}
	var buf []complex128
	owned := false // does buf belong to the channel's slot storage?
	switch {
	case tx.DelayedInto != nil:
		buf = tx.DelayedInto(c.bufs[k][:0], fracSamples)
		owned = true
	case tx.Delayed != nil:
		// The callback owns the returned slice; superpose from it but
		// never adopt it as slot storage a later call would overwrite.
		buf = tx.Delayed(fracSamples)
	case fracSamples > 1e-9 && len(tx.Waveform) > 0:
		buf = dsp.FractionalDelay(tx.Waveform, fracSamples)
	case len(tx.Waveform) > 0:
		buf = growComplex(c.bufs[k][:0], len(tx.Waveform))
		copy(buf, tx.Waveform)
		owned = true
	default:
		c.results[k] = nil
		return
	}
	chirp.ApplyFreqOffset(buf, tx.FreqOffsetHz, fs)
	gain := c.gains[i]
	for j := range buf {
		buf[j] *= gain
	}
	if owned {
		c.bufs[k] = buf
	}
	c.results[k] = buf
}

// growComplex returns dst extended to length m, reusing its storage
// when the capacity allows.
func growComplex(dst []complex128, m int) []complex128 {
	if cap(dst) >= m {
		return dst[:m]
	}
	return make([]complex128, m)
}

// FrameLength returns the sample count of a frame with the given total
// symbol count, plus margin symbols of tail room for delayed arrivals.
func (c *Channel) FrameLength(symbols, marginSymbols int) int {
	return (symbols + marginSymbols) * c.Params.N()
}
