// Package air composes the signal the AP antenna actually receives: the
// superposition of every concurrent backscatter transmission, each with
// its own amplitude (link SNR), timing offset (hardware delay + time of
// flight), frequency offset (crystal + Doppler), random carrier phase
// and optional fading gain, plus unit-power thermal noise.
//
// The simulator works in normalized baseband: noise power is 1, and a
// transmission arriving with SNR s dB has amplitude sqrt(10^(s/10)).
package air

import (
	"math"

	"netscatter/internal/chirp"
	"netscatter/internal/dsp"
	"netscatter/internal/pool"
	"netscatter/internal/radio"
)

// Transmission describes one device's contribution to a received frame.
type Transmission struct {
	// Waveform is the device's ideal transmit waveform (from
	// core.Encoder or css.Modem).
	Waveform []complex128
	// Delayed, if non-nil, synthesizes the waveform with a fractional
	// sample delay baked in analytically (core.Encoder's
	// FrameWaveformDelayed). Cyclically shifted chirps are not
	// bandlimited (the shift wrap is a genuine discontinuity), so
	// interpolating Waveform cannot represent a sub-sample delay
	// exactly; analytic synthesis can. When nil, sub-sample delays fall
	// back to bandlimited interpolation — fine for smooth waveforms
	// like the ASK downlink.
	Delayed func(fracSamples float64) []complex128
	// SNRdB is the received signal-to-noise ratio at the AP over the
	// receive bandwidth (power versus the unit noise floor).
	SNRdB float64
	// DelaySec is the total arrival delay relative to the nominal
	// frame start: per-packet hardware delay variation plus round-trip
	// time of flight.
	DelaySec float64
	// FreqOffsetHz is the device's oscillator offset (plus Doppler).
	FreqOffsetHz float64
	// FadeGain is an optional extra complex channel gain (1 if zero).
	FadeGain complex128
	// FixedPhase disables the random carrier phase (for deterministic
	// spectral tests).
	FixedPhase bool
}

// Channel assembles received frames for one chirp parameter set.
type Channel struct {
	// Params supplies the sample rate.
	Params chirp.Params
	// NoisePower is the thermal noise power (1 for the normalized
	// simulator; 0 disables noise for deterministic tests).
	NoisePower float64
	// Rng drives noise, phases and nothing else.
	Rng *dsp.Rand
}

// NewChannel returns a unit-noise channel.
func NewChannel(p chirp.Params, rng *dsp.Rand) *Channel {
	return &Channel{Params: p, NoisePower: 1, Rng: rng}
}

// Receive builds a received stream of length samples from the given
// transmissions. Each transmission is scaled to its SNR, rotated by its
// frequency offset, delayed by its arrival offset (integer placement
// plus a windowed-sinc fractional delay, so timing offsets behave
// physically for both upchirps and downchirps), given a random carrier
// phase, and superposed. Thermal noise is added last.
//
// Per-device waveform synthesis — the dominant cost with hundreds of
// concurrent analytically-delayed frames — runs on the shared worker
// pool. Determinism is preserved exactly: carrier phases are drawn from
// the channel Rng in transmission order before the fan-out (the same
// sequence the serial loop consumed), synthesis itself draws no
// randomness, and superposition and noise stay serial in the original
// order, so Receive's output is bit-identical for a given seed at any
// GOMAXPROCS.
func (c *Channel) Receive(length int, txs []Transmission) []complex128 {
	out := make([]complex128, length)
	fs := c.Params.SampleRate()

	gains := make([]complex128, len(txs))
	for i, tx := range txs {
		if tx.Delayed == nil && len(tx.Waveform) == 0 {
			continue // no waveform: consumes no randomness, as before
		}
		gain := complex(radio.AmplitudeForSNRdB(tx.SNRdB), 0)
		if tx.FadeGain != 0 {
			gain *= tx.FadeGain
		}
		if !tx.FixedPhase && c.Rng != nil {
			gain *= c.Rng.UniformPhase()
		}
		gains[i] = gain
	}

	// Synthesize in bounded chunks: a chunk's waveforms are built in
	// parallel, then superposed serially in transmission order before
	// the next chunk starts, so peak memory stays O(chunk) frames
	// instead of O(devices) while the sample-level output is identical.
	chunk := pool.Size() * 2
	if chunk < 1 {
		chunk = 1
	}
	bufs := make([][]complex128, min(chunk, len(txs)))
	delays := make([]int, len(bufs))
	for lo := 0; lo < len(txs); lo += chunk {
		hi := min(lo+chunk, len(txs))
		pool.ForEach(hi-lo, func(k int) {
			tx := &txs[lo+k]
			delaySamples := tx.DelaySec * fs
			intDelay := int(math.Floor(delaySamples))
			fracSamples := delaySamples - float64(intDelay)
			delays[k] = intDelay

			var buf []complex128
			switch {
			case tx.Delayed != nil:
				buf = tx.Delayed(fracSamples)
			case fracSamples > 1e-9 && len(tx.Waveform) > 0:
				buf = dsp.FractionalDelay(tx.Waveform, fracSamples)
			case len(tx.Waveform) > 0:
				buf = make([]complex128, len(tx.Waveform))
				copy(buf, tx.Waveform)
			default:
				bufs[k] = nil
				return
			}
			chirp.ApplyFreqOffset(buf, tx.FreqOffsetHz, fs)
			gain := gains[lo+k]
			for j := range buf {
				buf[j] *= gain
			}
			bufs[k] = buf
		})
		for k := 0; k < hi-lo; k++ {
			if bufs[k] != nil {
				radio.Superpose(out, bufs[k], delays[k])
				bufs[k] = nil
			}
		}
	}
	if c.NoisePower > 0 && c.Rng != nil {
		radio.AddAWGN(c.Rng, out, c.NoisePower)
	}
	return out
}

// FrameLength returns the sample count of a frame with the given total
// symbol count, plus margin symbols of tail room for delayed arrivals.
func (c *Channel) FrameLength(symbols, marginSymbols int) int {
	return (symbols + marginSymbols) * c.Params.N()
}
