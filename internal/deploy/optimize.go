package deploy

import (
	"fmt"
	"math"
)

// AP placement optimization over room geometry and the wall map. The
// fixed line placement (APPositions) ignores where the devices actually
// are and what the walls do to their links; the optimizer places the k
// APs for the fleet the deployment carries, scored by a combined-PER
// proxy under the soft (non-coherent power) cross-AP combining decode
// path: each device's effective strength is the *sum* of its linear
// SNRs to the chosen APs, exactly the energy the combined spectral
// decode integrates.
//
// The search is deterministic — a pure function of (plan, budget,
// device positions, k) with no randomness — in two phases:
//
//  1. Greedy coverage: candidates on the half-room lattice (room
//     centers, wall intersections and wall midpoints, clamped to the
//     floor's placeable band); each step adds the candidate that most
//     lowers the fleet's summed PER proxy given the APs chosen so far.
//  2. Swap refinement: best-improvement hill climbing — replace one
//     chosen AP with one unchosen candidate while any swap lowers the
//     score. (Simulated-annealing refinement over the continuous floor
//     is the noted follow-on; the discrete climb already converges on
//     this lattice.)

// perKneeDB and perWidthDB shape the logistic PER surrogate
// 1/(1+exp((snr−knee)/width)): a smooth, strictly decreasing function
// of combined SNR that saturates at both ends, so the optimizer spends
// placement on devices near the decode threshold instead of chasing
// already-strong or hopeless ones. It is a comparison surrogate between
// placements, not a calibrated PER prediction; the exper sweep measures
// the real PER of the result.
const (
	perKneeDB  = 2.0
	perWidthDB = 2.0
)

// perProxy returns the surrogate PER for one device's combined linear
// SNR (sum over APs of 10^(SNRdB/10)).
func perProxy(combLin float64) float64 {
	if combLin <= 0 {
		return 1
	}
	combDB := 10 * math.Log10(combLin)
	return 1 / (1 + math.Exp((combDB-perKneeDB)/perWidthDB))
}

// PlacementPERProxy returns the fleet-mean combined-PER surrogate of an
// AP placement: for each device, the linear uplink SNRs to every AP in
// pts (over the deployment's bandwidth, wall-aware) are summed and run
// through the logistic surrogate; the mean over devices comes back.
// Lower is better. Exported so tests and experiments can score the line
// placement against the optimized one with the optimizer's own metric.
func (d *Deployment) PlacementPERProxy(pts []Point) float64 {
	if len(d.Devices) == 0 {
		return 0
	}
	bw := d.bandwidth()
	total := 0.0
	for i := range d.Devices {
		dev := &d.Devices[i]
		comb := 0.0
		for _, ap := range pts {
			dist := dev.Pos.Distance(ap)
			walls := d.Plan.WallsBetween(dev.Pos, ap)
			comb += math.Pow(10, d.Budget.UplinkSNRdB(dist, walls, 0, bw)/10)
		}
		total += perProxy(comb)
	}
	return total / float64(len(d.Devices))
}

// placementCandidates returns the half-room lattice: grid points at
// every half room width/height step, clamped to the floor's placeable
// band (0.5 m margin, matching Generate). Room centers, wall
// intersections and wall midpoints are all on it.
func placementCandidates(plan FloorPlan) []Point {
	nx, ny := 2*plan.RoomsX, 2*plan.RoomsY
	pts := make([]Point, 0, (nx+1)*(ny+1))
	for gx := 0; gx <= nx; gx++ {
		for gy := 0; gy <= ny; gy++ {
			pts = append(pts, Point{
				X: clamp(float64(gx)*plan.Width/float64(nx), 0.5, plan.Width-0.5),
				Y: clamp(float64(gy)*plan.Height/float64(ny), 0.5, plan.Height-0.5),
			})
		}
	}
	return pts
}

// OptimizeAPPlacement returns k AP positions tuned to this deployment's
// device fleet (greedy coverage plus swap refinement over the half-room
// lattice, scored by the combined-PER surrogate). It does not modify
// the deployment; apply the result with PlaceAPsAt, or call
// PlaceAPsOptimized to do both. Deterministic: equal deployments
// produce equal placements.
func (d *Deployment) OptimizeAPPlacement(k int) []Point {
	if k < 1 {
		panic(fmt.Sprintf("deploy: OptimizeAPPlacement with k = %d", k))
	}
	if len(d.Devices) == 0 {
		// No fleet to score against; the geometric line placement is as
		// good as any.
		return APPositions(d.Plan, k)
	}
	cands := placementCandidates(d.Plan)
	if k > len(cands) {
		panic(fmt.Sprintf("deploy: OptimizeAPPlacement k = %d exceeds %d lattice candidates", k, len(cands)))
	}
	bw := d.bandwidth()

	// Precompute every (candidate, device) linear SNR once; the greedy
	// and refinement loops then run on sums of this matrix.
	nDev := len(d.Devices)
	lin := make([]float64, len(cands)*nDev)
	for c, ap := range cands {
		row := lin[c*nDev : (c+1)*nDev]
		for i := range d.Devices {
			dev := &d.Devices[i]
			dist := dev.Pos.Distance(ap)
			walls := d.Plan.WallsBetween(dev.Pos, ap)
			row[i] = math.Pow(10, d.Budget.UplinkSNRdB(dist, walls, 0, bw)/10)
		}
	}
	// comb[i] is device i's combined linear SNR over the chosen APs.
	comb := make([]float64, nDev)
	scoreWith := func(swapOut, swapIn int) float64 {
		total := 0.0
		for i := 0; i < nDev; i++ {
			c := comb[i]
			if swapOut >= 0 {
				c -= lin[swapOut*nDev+i]
			}
			if swapIn >= 0 {
				c += lin[swapIn*nDev+i]
			}
			total += perProxy(c)
		}
		return total
	}

	chosen := make([]int, 0, k)
	inUse := make([]bool, len(cands))
	for len(chosen) < k {
		bestC, bestScore := -1, math.Inf(1)
		for c := range cands {
			if inUse[c] {
				continue
			}
			if s := scoreWith(-1, c); s < bestScore {
				bestC, bestScore = c, s
			}
		}
		chosen = append(chosen, bestC)
		inUse[bestC] = true
		for i := 0; i < nDev; i++ {
			comb[i] += lin[bestC*nDev+i]
		}
	}

	// Swap refinement: while some (chosen, candidate) swap improves the
	// score, take the best one. The pass bound is a safety valve; the
	// climb converges long before it on any real floor.
	cur := scoreWith(-1, -1)
	for pass := 0; pass < 64; pass++ {
		bestAt, bestC, bestScore := -1, -1, cur
		for at, out := range chosen {
			for c := range cands {
				if inUse[c] {
					continue
				}
				if s := scoreWith(out, c); s < bestScore {
					bestAt, bestC, bestScore = at, c, s
				}
			}
		}
		if bestAt < 0 {
			break
		}
		out := chosen[bestAt]
		for i := 0; i < nDev; i++ {
			comb[i] += lin[bestC*nDev+i] - lin[out*nDev+i]
		}
		inUse[out], inUse[bestC] = false, true
		chosen[bestAt] = bestC
		cur = bestScore
	}

	pts := make([]Point, k)
	for i, c := range chosen {
		pts[i] = cands[c]
	}
	return pts
}

// PlaceAPsOptimized optimizes a k-AP placement for this deployment and
// applies it (OptimizeAPPlacement + PlaceAPsAt), returning the placed
// positions.
func (d *Deployment) PlaceAPsOptimized(k int) []Point {
	return d.PlaceAPsAt(d.OptimizeAPPlacement(k))
}
