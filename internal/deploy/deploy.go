// Package deploy generates the office-floor testbed geometry the paper
// evaluates on (Fig. 1): 256 backscatter devices spread across a floor
// with more than ten rooms, an AP near the center, and per-device link
// budgets derived from distance and intervening walls. The output is
// the per-device SNR distribution that drives the near-far machinery
// and the rate-adaptation baselines.
package deploy

import (
	"math"

	"netscatter/internal/dsp"
	"netscatter/internal/radio"
)

// Point is a floor-plan coordinate in meters.
type Point struct{ X, Y float64 }

// Distance returns the Euclidean distance to q.
func (p Point) Distance(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// FloorPlan is a rectangular office floor partitioned into a grid of
// rooms by interior walls.
type FloorPlan struct {
	// Width and Height of the floor in meters.
	Width, Height float64
	// RoomsX and RoomsY give the room grid (RoomsX·RoomsY rooms).
	RoomsX, RoomsY int
	// AP is the access point position.
	AP Point
}

// DefaultOffice is a 40x20 m floor with a 6x2 room grid (12 rooms,
// matching the paper's "more than ten rooms") and the AP at the center.
var DefaultOffice = FloorPlan{
	Width:  40,
	Height: 20,
	RoomsX: 6,
	RoomsY: 2,
	AP:     Point{X: 20, Y: 10},
}

// Rooms returns the number of rooms.
func (f FloorPlan) Rooms() int { return f.RoomsX * f.RoomsY }

// WallsBetween counts interior walls crossed by the straight segment
// from a to b: the number of room-grid lines the segment crosses.
func (f FloorPlan) WallsBetween(a, b Point) int {
	walls := 0
	// Vertical grid lines at k·Width/RoomsX.
	for k := 1; k < f.RoomsX; k++ {
		x := float64(k) * f.Width / float64(f.RoomsX)
		if (a.X-x)*(b.X-x) < 0 {
			walls++
		}
	}
	for k := 1; k < f.RoomsY; k++ {
		y := float64(k) * f.Height / float64(f.RoomsY)
		if (a.Y-y)*(b.Y-y) < 0 {
			walls++
		}
	}
	return walls
}

// Device is one placed backscatter tag.
type Device struct {
	Pos   Point
	Walls int // interior walls to the AP
	// DownlinkRSSIdBm is the AP query strength at the tag.
	DownlinkRSSIdBm float64
	// UplinkSNRdB is the backscatter SNR at the AP over the receive
	// bandwidth at maximum tag power gain (0 dB).
	UplinkSNRdB float64
	// APLinks holds the per-AP link budgets from the last PlaceAPs
	// call, parallel to Deployment.APs; nil until APs are placed. It
	// lives on the device (not the deployment) so sub-deployments
	// built by copying device slices keep their geometry.
	APLinks []APLink
}

// BestAP returns the index of the AP with the strongest uplink from
// this device, or -1 when no APs have been placed.
func (d *Device) BestAP() int {
	best := -1
	for a := range d.APLinks {
		if best < 0 || d.APLinks[a].UplinkSNRdB > d.APLinks[best].UplinkSNRdB {
			best = a
		}
	}
	return best
}

// APLink is the link budget between one device and one placed AP.
type APLink struct {
	// Dist is the device↔AP distance in meters.
	Dist float64
	// Walls is the number of interior walls between device and AP.
	Walls int
	// DownlinkRSSIdBm is this AP's query strength at the tag.
	DownlinkRSSIdBm float64
	// UplinkSNRdB is the backscatter SNR at this AP at maximum tag
	// power gain (0 dB).
	UplinkSNRdB float64
}

// Deployment is a generated testbed.
type Deployment struct {
	Plan    FloorPlan
	Budget  radio.LinkBudget
	Devices []Device
	// BWHz is the receive bandwidth the uplink SNRs were computed over
	// (set by Generate, reused by PlaceAPs).
	BWHz float64
	// APs holds the multi-AP positions from the last PlaceAPs call;
	// empty for classic single-AP deployments (Plan.AP only).
	APs []Point
}

// MinAPDistance keeps devices out of the AP's immediate vicinity. The
// paper's mono-static reader uses co-located TX/RX antennas 3 ft apart
// at 30 dBm; tags closer than a few meters would saturate the front end
// even with AGC.
const MinAPDistance = 5.0

// DefaultBandwidthHz is the paper's receive bandwidth (500 kHz), used
// when a deployment carries no explicit bandwidth: Generate substitutes
// it for a non-positive bwHz, and bandwidth() falls back to it for
// legacy hand-built/decoded deployments whose BWHz field predates its
// introduction.
const DefaultBandwidthHz = 500e3

// bandwidth returns the bandwidth per-AP SNRs are computed over.
// Generate always populates BWHz, so the fallback only fires for legacy
// deployments built by hand or decoded from pre-BWHz artifacts.
func (d *Deployment) bandwidth() float64 {
	if d.BWHz > 0 {
		return d.BWHz
	}
	return DefaultBandwidthHz
}

// Generate places n devices uniformly over the floor (at least
// MinAPDistance from the AP) and computes their link budgets over bwHz.
// A non-positive bwHz is replaced by DefaultBandwidthHz, so a generated
// deployment always carries the bandwidth its SNRs were computed over —
// PlaceAPs never has to guess it.
func Generate(plan FloorPlan, budget radio.LinkBudget, n int, bwHz float64, rng *dsp.Rand) *Deployment {
	if bwHz <= 0 {
		bwHz = DefaultBandwidthHz
	}
	d := &Deployment{Plan: plan, Budget: budget, BWHz: bwHz}
	d.Devices = make([]Device, 0, n)
	for len(d.Devices) < n {
		p := Point{X: rng.Uniform(0.5, plan.Width-0.5), Y: rng.Uniform(0.5, plan.Height-0.5)}
		dist := p.Distance(plan.AP)
		if dist < MinAPDistance {
			continue
		}
		walls := plan.WallsBetween(p, plan.AP)
		d.Devices = append(d.Devices, Device{
			Pos:             p,
			Walls:           walls,
			DownlinkRSSIdBm: budget.DownlinkRSSIdBm(dist, walls),
			UplinkSNRdB:     budget.UplinkSNRdB(dist, walls, 0, bwHz),
		})
	}
	return d
}

// APPositions returns the deterministic k-AP placement for a floor:
// APs evenly spaced along the long axis at the midpoint of the short
// axis — position (2a+1)·L/(2k) along the long axis, L/2 across. A
// floor with Height > Width lines up along Y instead of X (the
// historical code always spaced along Width, stringing a tall floor's
// APs across its short dimension). For k = 1 this is the floor center —
// the DefaultOffice's single AP — so a one-AP multi deployment
// reproduces the classic geometry exactly.
func APPositions(plan FloorPlan, k int) []Point {
	pts := make([]Point, k)
	for a := 0; a < k; a++ {
		along := float64(2*a+1) / float64(2*k)
		if plan.Height > plan.Width {
			pts[a] = Point{X: plan.Width / 2, Y: along * plan.Height}
		} else {
			pts[a] = Point{X: along * plan.Width, Y: plan.Height / 2}
		}
	}
	return pts
}

// PlaceAPs places k APs on the floor (APPositions) and computes every
// device's per-AP link budget over the deployment's bandwidth,
// populating Deployment.APs and each Device.APLinks. Placement is a
// pure function of (plan, budget, device positions, k) — no randomness
// — so it is idempotent and replayable. Devices were generated at
// least MinAPDistance from the central AP but may sit arbitrarily
// close to the placed ones; the link budget's AGC cap bounds their
// received SNR the same way it bounds the classic deployment's.
//
// Not safe to call concurrently with readers of the same deployment;
// place APs before fanning networks out over a shared deployment.
func (d *Deployment) PlaceAPs(k int) []Point {
	return d.PlaceAPsAt(APPositions(d.Plan, k))
}

// PlaceAPsAt places the given AP positions and computes every device's
// per-AP link budget over the deployment's bandwidth — PlaceAPs with
// caller-chosen geometry (the placement optimizer's apply step, or any
// custom infrastructure layout). The positions are copied; the caller's
// slice is not retained.
func (d *Deployment) PlaceAPsAt(pts []Point) []Point {
	bw := d.bandwidth()
	k := len(pts)
	d.APs = append(d.APs[:0], pts...)
	for i := range d.Devices {
		dev := &d.Devices[i]
		if cap(dev.APLinks) < k {
			dev.APLinks = make([]APLink, k)
		}
		dev.APLinks = dev.APLinks[:k]
		for a, ap := range d.APs {
			dist := dev.Pos.Distance(ap)
			walls := d.Plan.WallsBetween(dev.Pos, ap)
			dev.APLinks[a] = APLink{
				Dist:            dist,
				Walls:           walls,
				DownlinkRSSIdBm: d.Budget.DownlinkRSSIdBm(dist, walls),
				UplinkSNRdB:     d.Budget.UplinkSNRdB(dist, walls, 0, bw),
			}
		}
	}
	return d.APs
}

// RelinkDevice recomputes device i's link budgets from its current
// position: distance, wall count, downlink RSSI and uplink SNR to the
// floor plan's central AP, and — when APs have been placed — every
// entry of APLinks, in place. This is the mobility path's re-derivation
// step: a trajectory that moves a device calls this so path loss and
// wall counts track the new position exactly as Generate/PlaceAPs would
// have computed them there (same formulas, no randomness).
func (d *Deployment) RelinkDevice(i int) {
	bw := d.bandwidth()
	dev := &d.Devices[i]
	dist := dev.Pos.Distance(d.Plan.AP)
	walls := d.Plan.WallsBetween(dev.Pos, d.Plan.AP)
	dev.Walls = walls
	dev.DownlinkRSSIdBm = d.Budget.DownlinkRSSIdBm(dist, walls)
	dev.UplinkSNRdB = d.Budget.UplinkSNRdB(dist, walls, 0, bw)
	for a, ap := range d.APs {
		dist := dev.Pos.Distance(ap)
		walls := d.Plan.WallsBetween(dev.Pos, ap)
		dev.APLinks[a] = APLink{
			Dist:            dist,
			Walls:           walls,
			DownlinkRSSIdBm: d.Budget.DownlinkRSSIdBm(dist, walls),
			UplinkSNRdB:     d.Budget.UplinkSNRdB(dist, walls, 0, bw),
		}
	}
}

// MoveDevice offsets device i by (dx, dy), clamps the result to the
// floor's placeable band (0.5 m margin, as Generate uses), and relinks
// it. Mobility may carry a device inside MinAPDistance of an AP; the
// link budget's AGC cap bounds the received SNR there, so the clamp is
// purely geometric.
func (d *Deployment) MoveDevice(i int, dx, dy float64) {
	dev := &d.Devices[i]
	dev.Pos.X = clamp(dev.Pos.X+dx, 0.5, d.Plan.Width-0.5)
	dev.Pos.Y = clamp(dev.Pos.Y+dy, 0.5, d.Plan.Height-0.5)
	d.RelinkDevice(i)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// BestSNRs returns each device's best-AP uplink SNR (the diversity
// network's effective per-device strength). Requires PlaceAPs.
func (d *Deployment) BestSNRs() []float64 {
	out := make([]float64, len(d.Devices))
	for i := range d.Devices {
		dev := &d.Devices[i]
		best := dev.BestAP()
		if best < 0 {
			panic("deploy: BestSNRs before PlaceAPs — no AP links placed")
		}
		out[i] = dev.APLinks[best].UplinkSNRdB
	}
	return out
}

// BestSNRSpreadDB returns the max-min spread of best-AP uplink SNRs —
// the near-far range a multi-AP deployment actually has to absorb.
func (d *Deployment) BestSNRSpreadDB() float64 {
	min, max := dsp.MinMax(d.BestSNRs())
	return max - min
}

// SNRs returns the uplink SNRs of all devices.
func (d *Deployment) SNRs() []float64 {
	out := make([]float64, len(d.Devices))
	for i, dev := range d.Devices {
		out[i] = dev.UplinkSNRdB
	}
	return out
}

// SNRSpreadDB returns the max-min uplink SNR spread, the quantity the
// power-aware allocation and power adaptation must absorb (up to ~35 dB
// per §4.3).
func (d *Deployment) SNRSpreadDB() float64 {
	min, max := dsp.MinMax(d.SNRs())
	return max - min
}
