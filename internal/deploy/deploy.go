// Package deploy generates the office-floor testbed geometry the paper
// evaluates on (Fig. 1): 256 backscatter devices spread across a floor
// with more than ten rooms, an AP near the center, and per-device link
// budgets derived from distance and intervening walls. The output is
// the per-device SNR distribution that drives the near-far machinery
// and the rate-adaptation baselines.
package deploy

import (
	"math"

	"netscatter/internal/dsp"
	"netscatter/internal/radio"
)

// Point is a floor-plan coordinate in meters.
type Point struct{ X, Y float64 }

// Distance returns the Euclidean distance to q.
func (p Point) Distance(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// FloorPlan is a rectangular office floor partitioned into a grid of
// rooms by interior walls.
type FloorPlan struct {
	// Width and Height of the floor in meters.
	Width, Height float64
	// RoomsX and RoomsY give the room grid (RoomsX·RoomsY rooms).
	RoomsX, RoomsY int
	// AP is the access point position.
	AP Point
}

// DefaultOffice is a 40x20 m floor with a 6x2 room grid (12 rooms,
// matching the paper's "more than ten rooms") and the AP at the center.
var DefaultOffice = FloorPlan{
	Width:  40,
	Height: 20,
	RoomsX: 6,
	RoomsY: 2,
	AP:     Point{X: 20, Y: 10},
}

// Rooms returns the number of rooms.
func (f FloorPlan) Rooms() int { return f.RoomsX * f.RoomsY }

// WallsBetween counts interior walls crossed by the straight segment
// from a to b: the number of room-grid lines the segment crosses.
func (f FloorPlan) WallsBetween(a, b Point) int {
	walls := 0
	// Vertical grid lines at k·Width/RoomsX.
	for k := 1; k < f.RoomsX; k++ {
		x := float64(k) * f.Width / float64(f.RoomsX)
		if (a.X-x)*(b.X-x) < 0 {
			walls++
		}
	}
	for k := 1; k < f.RoomsY; k++ {
		y := float64(k) * f.Height / float64(f.RoomsY)
		if (a.Y-y)*(b.Y-y) < 0 {
			walls++
		}
	}
	return walls
}

// Device is one placed backscatter tag.
type Device struct {
	Pos   Point
	Walls int // interior walls to the AP
	// DownlinkRSSIdBm is the AP query strength at the tag.
	DownlinkRSSIdBm float64
	// UplinkSNRdB is the backscatter SNR at the AP over the receive
	// bandwidth at maximum tag power gain (0 dB).
	UplinkSNRdB float64
}

// Deployment is a generated testbed.
type Deployment struct {
	Plan    FloorPlan
	Budget  radio.LinkBudget
	Devices []Device
}

// MinAPDistance keeps devices out of the AP's immediate vicinity. The
// paper's mono-static reader uses co-located TX/RX antennas 3 ft apart
// at 30 dBm; tags closer than a few meters would saturate the front end
// even with AGC.
const MinAPDistance = 5.0

// Generate places n devices uniformly over the floor (at least
// MinAPDistance from the AP) and computes their link budgets over bwHz.
func Generate(plan FloorPlan, budget radio.LinkBudget, n int, bwHz float64, rng *dsp.Rand) *Deployment {
	d := &Deployment{Plan: plan, Budget: budget}
	d.Devices = make([]Device, 0, n)
	for len(d.Devices) < n {
		p := Point{X: rng.Uniform(0.5, plan.Width-0.5), Y: rng.Uniform(0.5, plan.Height-0.5)}
		dist := p.Distance(plan.AP)
		if dist < MinAPDistance {
			continue
		}
		walls := plan.WallsBetween(p, plan.AP)
		d.Devices = append(d.Devices, Device{
			Pos:             p,
			Walls:           walls,
			DownlinkRSSIdBm: budget.DownlinkRSSIdBm(dist, walls),
			UplinkSNRdB:     budget.UplinkSNRdB(dist, walls, 0, bwHz),
		})
	}
	return d
}

// SNRs returns the uplink SNRs of all devices.
func (d *Deployment) SNRs() []float64 {
	out := make([]float64, len(d.Devices))
	for i, dev := range d.Devices {
		out[i] = dev.UplinkSNRdB
	}
	return out
}

// SNRSpreadDB returns the max-min uplink SNR spread, the quantity the
// power-aware allocation and power adaptation must absorb (up to ~35 dB
// per §4.3).
func (d *Deployment) SNRSpreadDB() float64 {
	min, max := dsp.MinMax(d.SNRs())
	return max - min
}
