package deploy

import (
	"testing"

	"netscatter/internal/dsp"
	"netscatter/internal/radio"
)

// TestRelinkDeviceMatchesGenerate: relinking a device at its current
// position must reproduce exactly the budgets Generate and PlaceAPs
// computed there — the relink is the same pure function of position.
func TestRelinkDeviceMatchesGenerate(t *testing.T) {
	d := Generate(DefaultOffice, radio.DefaultLinkBudget, 32, 500e3, dsp.NewRand(3))
	d.PlaceAPs(2)
	for i := range d.Devices {
		want := d.Devices[i]
		wantLinks := append([]APLink(nil), want.APLinks...)
		d.RelinkDevice(i)
		got := d.Devices[i]
		if got.Walls != want.Walls || got.DownlinkRSSIdBm != want.DownlinkRSSIdBm ||
			got.UplinkSNRdB != want.UplinkSNRdB {
			t.Fatalf("device %d: relink changed central-AP budget: %+v vs %+v", i, got, want)
		}
		for a := range wantLinks {
			if got.APLinks[a] != wantLinks[a] {
				t.Fatalf("device %d AP %d: relink changed link: %+v vs %+v",
					i, a, got.APLinks[a], wantLinks[a])
			}
		}
	}
}

// TestMoveDeviceRederives: moving a device across a room boundary
// changes its wall count and budgets coherently, and the clamp keeps it
// inside the floor's placeable band.
func TestMoveDeviceRederives(t *testing.T) {
	d := Generate(DefaultOffice, radio.DefaultLinkBudget, 1, 500e3, dsp.NewRand(1))
	d.PlaceAPs(1)

	// Park the device at a known spot, then walk it toward a far corner:
	// distance to the center AP grows, so the downlink must weaken.
	d.Devices[0].Pos = Point{X: 10, Y: 10}
	d.RelinkDevice(0)
	before := d.Devices[0]

	d.MoveDevice(0, -100, -100) // clamps to (0.5, 0.5)
	after := d.Devices[0]
	if after.Pos.X != 0.5 || after.Pos.Y != 0.5 {
		t.Fatalf("clamp failed: pos %+v", after.Pos)
	}
	if after.DownlinkRSSIdBm >= before.DownlinkRSSIdBm {
		t.Fatalf("downlink did not weaken moving away: %v -> %v",
			before.DownlinkRSSIdBm, after.DownlinkRSSIdBm)
	}
	if after.Walls <= before.Walls {
		t.Fatalf("corner position crosses more walls: %d -> %d", before.Walls, after.Walls)
	}
	if after.APLinks[0].DownlinkRSSIdBm != after.DownlinkRSSIdBm {
		// k=1 placement is the central AP; both views must agree.
		t.Fatalf("central and APLinks budgets diverge: %v vs %v",
			after.DownlinkRSSIdBm, after.APLinks[0].DownlinkRSSIdBm)
	}
}
