package deploy

import (
	"math"
	"testing"
	"testing/quick"

	"netscatter/internal/dsp"
	"netscatter/internal/radio"
)

func TestWallsBetween(t *testing.T) {
	f := DefaultOffice
	// Same room: no walls.
	if got := f.WallsBetween(Point{1, 1}, Point{2, 2}); got != 0 {
		t.Fatalf("same-room walls = %d", got)
	}
	// Crossing one vertical grid line.
	a, b := Point{5, 5}, Point{8, 5} // rooms are 40/6=6.67 m wide
	if got := f.WallsBetween(a, b); got != 1 {
		t.Fatalf("adjacent-room walls = %d", got)
	}
	// Corner to corner crosses most of the grid.
	if got := f.WallsBetween(Point{1, 1}, Point{39, 19}); got < 5 {
		t.Fatalf("diagonal walls = %d", got)
	}
}

func TestWallsSymmetric(t *testing.T) {
	f := DefaultOffice
	g := func(ax, ay, bx, by float64) bool {
		a := Point{math.Mod(math.Abs(ax), f.Width), math.Mod(math.Abs(ay), f.Height)}
		b := Point{math.Mod(math.Abs(bx), f.Width), math.Mod(math.Abs(by), f.Height)}
		return f.WallsBetween(a, b) == f.WallsBetween(b, a)
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeployment(t *testing.T) {
	rng := dsp.NewRand(1)
	dep := Generate(DefaultOffice, radio.DefaultLinkBudget, 256, 500e3, rng)
	if len(dep.Devices) != 256 {
		t.Fatalf("devices = %d", len(dep.Devices))
	}
	for i, d := range dep.Devices {
		if d.Pos.X < 0 || d.Pos.X > DefaultOffice.Width || d.Pos.Y < 0 || d.Pos.Y > DefaultOffice.Height {
			t.Fatalf("device %d outside floor: %+v", i, d.Pos)
		}
		if d.Pos.Distance(DefaultOffice.AP) < MinAPDistance {
			t.Fatalf("device %d too close to AP", i)
		}
		if d.DownlinkRSSIdBm < -60 || d.DownlinkRSSIdBm > 0 {
			t.Fatalf("device %d downlink RSSI %v implausible", i, d.DownlinkRSSIdBm)
		}
	}
}

func TestDeploymentSNRRegime(t *testing.T) {
	// The office must land in the paper's near-far regime: spread of
	// roughly 35-50 dB at max gain (35 dB tolerated after allocation
	// plus the 10 dB power-adaptation range), with the weakest devices
	// near or below the noise floor.
	rng := dsp.NewRand(2)
	dep := Generate(DefaultOffice, radio.DefaultLinkBudget, 256, 500e3, rng)
	spread := dep.SNRSpreadDB()
	if spread < 25 || spread > 55 {
		t.Fatalf("SNR spread %v dB outside the deployment regime", spread)
	}
	min, max := dsp.MinMax(dep.SNRs())
	if max > 31 {
		t.Fatalf("max SNR %v exceeds the AGC cap", max)
	}
	if min > 5 {
		t.Fatalf("min SNR %v — no weak devices to exercise near-far", min)
	}
}

func TestDeviceDownlinkAboveEnvelopeSensitivity(t *testing.T) {
	// Every deployed tag must be able to hear the query (-49 dBm
	// envelope detector, §4.1) — otherwise it could never associate.
	rng := dsp.NewRand(3)
	dep := Generate(DefaultOffice, radio.DefaultLinkBudget, 256, 500e3, rng)
	for i, d := range dep.Devices {
		if d.DownlinkRSSIdBm < radio.DefaultEnvelopeDetector.SensitivityDBm {
			t.Fatalf("device %d downlink %v dBm below envelope sensitivity", i, d.DownlinkRSSIdBm)
		}
	}
}

func TestRoomsCount(t *testing.T) {
	// The paper's floor has "more than ten rooms".
	if DefaultOffice.Rooms() <= 10 {
		t.Fatalf("rooms = %d", DefaultOffice.Rooms())
	}
}

func TestPointDistance(t *testing.T) {
	if got := (Point{0, 0}).Distance(Point{3, 4}); got != 5 {
		t.Fatalf("distance = %v", got)
	}
}

// TestAPPositionsGeometry: the deterministic placement spreads k APs
// along the *actual* long axis at the short axis's midpoint, inside the
// floor, strictly ordered — pinned table-driven for both orientations
// (the historical code always spaced along Width, stringing a tall
// floor's APs across its short axis) plus the square tie — and k=1
// reproduces each plan's central AP, the degeneracy the multi-AP
// subsystem's single-AP compatibility rests on.
func TestAPPositionsGeometry(t *testing.T) {
	tall := FloorPlan{Width: 20, Height: 40, RoomsX: 2, RoomsY: 6, AP: Point{X: 10, Y: 20}}
	square := FloorPlan{Width: 30, Height: 30, RoomsX: 3, RoomsY: 3, AP: Point{X: 15, Y: 15}}
	cases := []struct {
		name string
		plan FloorPlan
		// axis extracts (along-long-axis, across) from a point.
		axis func(p Point) (along, across float64)
		mid  float64 // expected across-coordinate: midpoint of the short axis
	}{
		{"wide", DefaultOffice, func(p Point) (float64, float64) { return p.X, p.Y }, DefaultOffice.Height / 2},
		{"tall", tall, func(p Point) (float64, float64) { return p.Y, p.X }, tall.Width / 2},
		// A square floor keeps the historical X-axis layout (the tie
		// breaks toward Width).
		{"square", square, func(p Point) (float64, float64) { return p.X, p.Y }, square.Height / 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			long := math.Max(tc.plan.Width, tc.plan.Height)
			for _, k := range []int{1, 2, 4, 8} {
				pts := APPositions(tc.plan, k)
				if len(pts) != k {
					t.Fatalf("k=%d: %d positions", k, len(pts))
				}
				prev := math.Inf(-1)
				for a, p := range pts {
					if p.X <= 0 || p.X >= tc.plan.Width || p.Y <= 0 || p.Y >= tc.plan.Height {
						t.Fatalf("k=%d AP %d outside floor: %+v", k, a, p)
					}
					along, across := tc.axis(p)
					if across != tc.mid {
						t.Fatalf("k=%d AP %d off the short-axis midpoint: %+v", k, a, p)
					}
					if want := float64(2*a+1) * long / float64(2*k); along != want {
						t.Fatalf("k=%d AP %d at %v along the long axis, want %v", k, a, along, want)
					}
					if along <= prev {
						t.Fatalf("k=%d APs not strictly ordered: %+v", k, pts)
					}
					prev = along
				}
			}
			if one := APPositions(tc.plan, 1)[0]; one != tc.plan.AP {
				t.Fatalf("k=1 placement %+v != classic AP %+v", one, tc.plan.AP)
			}
		})
	}
}

// TestPlaceAPsCoverage: table-driven over k ∈ {1, 2, 4} — every device
// must be within budget of at least one AP (best-AP downlink above the
// envelope-detector sensitivity, so every tag can hear a query), every
// per-AP link must be fully populated with plausible values, and link
// budgets must be the exact budget-model outputs for the recorded
// distance/walls geometry.
func TestPlaceAPsCoverage(t *testing.T) {
	for _, k := range []int{1, 2, 4} {
		rng := dsp.NewRand(4)
		dep := Generate(DefaultOffice, radio.DefaultLinkBudget, 128, 500e3, rng)
		dep.PlaceAPs(k)
		if len(dep.APs) != k {
			t.Fatalf("k=%d: %d APs placed", k, len(dep.APs))
		}
		for i := range dep.Devices {
			dev := &dep.Devices[i]
			if len(dev.APLinks) != k {
				t.Fatalf("k=%d device %d has %d links", k, i, len(dev.APLinks))
			}
			best := dev.BestAP()
			if best < 0 || best >= k {
				t.Fatalf("k=%d device %d best AP %d", k, i, best)
			}
			bestDown := dev.APLinks[0].DownlinkRSSIdBm
			for a, l := range dev.APLinks {
				if want := dev.Pos.Distance(dep.APs[a]); l.Dist != want {
					t.Fatalf("k=%d device %d AP %d dist %v != %v", k, i, a, l.Dist, want)
				}
				if want := dep.Budget.UplinkSNRdB(l.Dist, l.Walls, 0, dep.BWHz); l.UplinkSNRdB != want {
					t.Fatalf("k=%d device %d AP %d SNR %v != budget %v", k, i, a, l.UplinkSNRdB, want)
				}
				if l.DownlinkRSSIdBm > bestDown {
					bestDown = l.DownlinkRSSIdBm
				}
			}
			if bestDown < radio.DefaultEnvelopeDetector.SensitivityDBm {
				t.Fatalf("k=%d device %d best downlink %v dBm below envelope sensitivity — uncovered",
					k, i, bestDown)
			}
		}
	}
}

// TestPlaceAPsWallsSymmetric: WallsBetween is symmetric for every
// AP↔device pair of every placement — the wall count a device's uplink
// sees is the wall count the AP's downlink sees.
func TestPlaceAPsWallsSymmetric(t *testing.T) {
	rng := dsp.NewRand(6)
	dep := Generate(DefaultOffice, radio.DefaultLinkBudget, 64, 500e3, rng)
	for _, k := range []int{1, 2, 4} {
		dep.PlaceAPs(k)
		for i := range dep.Devices {
			dev := &dep.Devices[i]
			for a, ap := range dep.APs {
				fwd := dep.Plan.WallsBetween(dev.Pos, ap)
				rev := dep.Plan.WallsBetween(ap, dev.Pos)
				if fwd != rev {
					t.Fatalf("k=%d device %d AP %d: walls %d forward, %d reverse", k, i, a, fwd, rev)
				}
				if fwd != dev.APLinks[a].Walls {
					t.Fatalf("k=%d device %d AP %d: recorded walls %d, geometry %d",
						k, i, a, dev.APLinks[a].Walls, fwd)
				}
			}
		}
	}
}

// TestPlaceAPsSNRSpreadRegression: densifying the infrastructure
// shrinks the near-far problem — the best-AP SNR spread is monotone
// non-increasing in k, and the weakest best-AP link is monotone
// non-decreasing (every extra AP can only shorten someone's best
// path). Pinned per seed; a placement or budget regression that
// weakens coverage trips this.
func TestPlaceAPsSNRSpreadRegression(t *testing.T) {
	for _, seed := range []int64{2, 9, 31} {
		rng := dsp.NewRand(seed)
		dep := Generate(DefaultOffice, radio.DefaultLinkBudget, 256, 500e3, rng)
		prevSpread := math.Inf(1)
		prevMin := math.Inf(-1)
		for _, k := range []int{1, 2, 4} {
			dep.PlaceAPs(k)
			spread := dep.BestSNRSpreadDB()
			min, _ := dsp.MinMax(dep.BestSNRs())
			if spread > prevSpread {
				t.Fatalf("seed %d: spread grew %v -> %v dB going to k=%d", seed, prevSpread, spread, k)
			}
			if min < prevMin {
				t.Fatalf("seed %d: weakest best-AP SNR fell %v -> %v dB going to k=%d", seed, prevMin, min, k)
			}
			prevSpread, prevMin = spread, min
		}
		// k=1 must reproduce the classic single-AP spread exactly.
		dep.PlaceAPs(1)
		if got, want := dep.BestSNRSpreadDB(), dep.SNRSpreadDB(); got != want {
			t.Fatalf("seed %d: 1-AP spread %v != classic %v", seed, got, want)
		}
	}
}
