package deploy

import (
	"math"
	"testing"
	"testing/quick"

	"netscatter/internal/dsp"
	"netscatter/internal/radio"
)

func TestWallsBetween(t *testing.T) {
	f := DefaultOffice
	// Same room: no walls.
	if got := f.WallsBetween(Point{1, 1}, Point{2, 2}); got != 0 {
		t.Fatalf("same-room walls = %d", got)
	}
	// Crossing one vertical grid line.
	a, b := Point{5, 5}, Point{8, 5} // rooms are 40/6=6.67 m wide
	if got := f.WallsBetween(a, b); got != 1 {
		t.Fatalf("adjacent-room walls = %d", got)
	}
	// Corner to corner crosses most of the grid.
	if got := f.WallsBetween(Point{1, 1}, Point{39, 19}); got < 5 {
		t.Fatalf("diagonal walls = %d", got)
	}
}

func TestWallsSymmetric(t *testing.T) {
	f := DefaultOffice
	g := func(ax, ay, bx, by float64) bool {
		a := Point{math.Mod(math.Abs(ax), f.Width), math.Mod(math.Abs(ay), f.Height)}
		b := Point{math.Mod(math.Abs(bx), f.Width), math.Mod(math.Abs(by), f.Height)}
		return f.WallsBetween(a, b) == f.WallsBetween(b, a)
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeployment(t *testing.T) {
	rng := dsp.NewRand(1)
	dep := Generate(DefaultOffice, radio.DefaultLinkBudget, 256, 500e3, rng)
	if len(dep.Devices) != 256 {
		t.Fatalf("devices = %d", len(dep.Devices))
	}
	for i, d := range dep.Devices {
		if d.Pos.X < 0 || d.Pos.X > DefaultOffice.Width || d.Pos.Y < 0 || d.Pos.Y > DefaultOffice.Height {
			t.Fatalf("device %d outside floor: %+v", i, d.Pos)
		}
		if d.Pos.Distance(DefaultOffice.AP) < MinAPDistance {
			t.Fatalf("device %d too close to AP", i)
		}
		if d.DownlinkRSSIdBm < -60 || d.DownlinkRSSIdBm > 0 {
			t.Fatalf("device %d downlink RSSI %v implausible", i, d.DownlinkRSSIdBm)
		}
	}
}

func TestDeploymentSNRRegime(t *testing.T) {
	// The office must land in the paper's near-far regime: spread of
	// roughly 35-50 dB at max gain (35 dB tolerated after allocation
	// plus the 10 dB power-adaptation range), with the weakest devices
	// near or below the noise floor.
	rng := dsp.NewRand(2)
	dep := Generate(DefaultOffice, radio.DefaultLinkBudget, 256, 500e3, rng)
	spread := dep.SNRSpreadDB()
	if spread < 25 || spread > 55 {
		t.Fatalf("SNR spread %v dB outside the deployment regime", spread)
	}
	min, max := dsp.MinMax(dep.SNRs())
	if max > 31 {
		t.Fatalf("max SNR %v exceeds the AGC cap", max)
	}
	if min > 5 {
		t.Fatalf("min SNR %v — no weak devices to exercise near-far", min)
	}
}

func TestDeviceDownlinkAboveEnvelopeSensitivity(t *testing.T) {
	// Every deployed tag must be able to hear the query (-49 dBm
	// envelope detector, §4.1) — otherwise it could never associate.
	rng := dsp.NewRand(3)
	dep := Generate(DefaultOffice, radio.DefaultLinkBudget, 256, 500e3, rng)
	for i, d := range dep.Devices {
		if d.DownlinkRSSIdBm < radio.DefaultEnvelopeDetector.SensitivityDBm {
			t.Fatalf("device %d downlink %v dBm below envelope sensitivity", i, d.DownlinkRSSIdBm)
		}
	}
}

func TestRoomsCount(t *testing.T) {
	// The paper's floor has "more than ten rooms".
	if DefaultOffice.Rooms() <= 10 {
		t.Fatalf("rooms = %d", DefaultOffice.Rooms())
	}
}

func TestPointDistance(t *testing.T) {
	if got := (Point{0, 0}).Distance(Point{3, 4}); got != 5 {
		t.Fatalf("distance = %v", got)
	}
}
