package deploy

import (
	"reflect"
	"testing"

	"netscatter/internal/dsp"
	"netscatter/internal/radio"
)

// TestGenerateBWHzContract pins the bandwidth contract: Generate always
// populates BWHz (substituting DefaultBandwidthHz for a non-positive
// input, with the SNRs computed over the substituted value), and the
// legacy fallback in bandwidth() only fires for hand-built deployments
// whose BWHz field was never set.
func TestGenerateBWHzContract(t *testing.T) {
	gen := func(bw float64, seed int64) *Deployment {
		return Generate(DefaultOffice, radio.DefaultLinkBudget, 32, bw, dsp.NewRand(seed))
	}
	if dep := gen(0, 5); dep.BWHz != DefaultBandwidthHz {
		t.Fatalf("Generate(bw=0) left BWHz = %v, want %v", dep.BWHz, DefaultBandwidthHz)
	}
	if dep := gen(-1, 5); dep.BWHz != DefaultBandwidthHz {
		t.Fatalf("Generate(bw=-1) left BWHz = %v, want %v", dep.BWHz, DefaultBandwidthHz)
	}
	// The substituted bandwidth is the one the SNRs are computed over:
	// bw=0 and bw=DefaultBandwidthHz deployments are identical.
	if a, b := gen(0, 5), gen(DefaultBandwidthHz, 5); !reflect.DeepEqual(a, b) {
		t.Fatal("Generate(bw=0) deployment differs from Generate(DefaultBandwidthHz)")
	}
	// An explicit bandwidth is respected, and PlaceAPs computes per-AP
	// SNRs over it (not the default).
	dep := gen(125e3, 5)
	if dep.BWHz != 125e3 {
		t.Fatalf("Generate(125 kHz) set BWHz = %v", dep.BWHz)
	}
	dep.PlaceAPs(2)
	for i := range dep.Devices {
		for a, l := range dep.Devices[i].APLinks {
			if want := dep.Budget.UplinkSNRdB(l.Dist, l.Walls, 0, 125e3); l.UplinkSNRdB != want {
				t.Fatalf("device %d AP %d SNR over wrong bandwidth: %v != %v", i, a, l.UplinkSNRdB, want)
			}
		}
	}
	// Legacy fallback: a hand-built deployment with BWHz unset places
	// over the paper's default bandwidth.
	legacy := &Deployment{Plan: DefaultOffice, Budget: radio.DefaultLinkBudget,
		Devices: append([]Device(nil), gen(DefaultBandwidthHz, 5).Devices...)}
	legacy.PlaceAPs(2)
	for i := range legacy.Devices {
		for a, l := range legacy.Devices[i].APLinks {
			if want := legacy.Budget.UplinkSNRdB(l.Dist, l.Walls, 0, DefaultBandwidthHz); l.UplinkSNRdB != want {
				t.Fatalf("legacy device %d AP %d SNR %v, want default-bandwidth %v", i, a, l.UplinkSNRdB, want)
			}
		}
	}
}

// TestPlaceAPsAtMatchesPlaceAPs: PlaceAPs is exactly PlaceAPsAt over
// the line placement — same APs, same links — and PlaceAPsAt copies
// its input instead of retaining it.
func TestPlaceAPsAtMatchesPlaceAPs(t *testing.T) {
	a := Generate(DefaultOffice, radio.DefaultLinkBudget, 64, 500e3, dsp.NewRand(8))
	b := Generate(DefaultOffice, radio.DefaultLinkBudget, 64, 500e3, dsp.NewRand(8))
	a.PlaceAPs(3)
	pts := APPositions(DefaultOffice, 3)
	b.PlaceAPsAt(pts)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("PlaceAPsAt(APPositions) differs from PlaceAPs")
	}
	pts[0] = Point{X: 1, Y: 1}
	if b.APs[0] == pts[0] {
		t.Fatal("PlaceAPsAt retained the caller's slice")
	}
}

// TestOptimizeAPPlacement pins the optimizer's contract across seeds
// and k ∈ {1, 2, 4, 8}: positions on the floor and pairwise distinct,
// never worse than the line placement under its own combined-PER
// surrogate, and deterministic (equal deployments yield equal
// placements).
func TestOptimizeAPPlacement(t *testing.T) {
	for _, seed := range []int64{2, 9, 31} {
		dep := Generate(DefaultOffice, radio.DefaultLinkBudget, 256, 500e3, dsp.NewRand(seed))
		for _, k := range []int{1, 2, 4, 8} {
			pts := dep.OptimizeAPPlacement(k)
			if len(pts) != k {
				t.Fatalf("seed %d k=%d: %d positions", seed, k, len(pts))
			}
			for a, p := range pts {
				if p.X < 0.5 || p.X > dep.Plan.Width-0.5 || p.Y < 0.5 || p.Y > dep.Plan.Height-0.5 {
					t.Fatalf("seed %d k=%d AP %d outside placeable band: %+v", seed, k, a, p)
				}
				for b := 0; b < a; b++ {
					if pts[b] == p {
						t.Fatalf("seed %d k=%d: duplicate AP position %+v", seed, k, p)
					}
				}
			}
			line := APPositions(dep.Plan, k)
			if opt, base := dep.PlacementPERProxy(pts), dep.PlacementPERProxy(line); opt > base {
				t.Fatalf("seed %d k=%d: optimized proxy %v worse than line placement %v", seed, k, opt, base)
			}
			if again := dep.OptimizeAPPlacement(k); !reflect.DeepEqual(again, pts) {
				t.Fatalf("seed %d k=%d: optimizer not deterministic", seed, k)
			}
		}
	}
}

// TestPlaceAPsOptimizedAppliesPlacement: the apply wrapper links every
// device against exactly the optimized positions.
func TestPlaceAPsOptimizedAppliesPlacement(t *testing.T) {
	dep := Generate(DefaultOffice, radio.DefaultLinkBudget, 64, 500e3, dsp.NewRand(12))
	want := dep.OptimizeAPPlacement(4)
	got := dep.PlaceAPsOptimized(4)
	if !reflect.DeepEqual(got, want) || !reflect.DeepEqual(dep.APs, want) {
		t.Fatalf("PlaceAPsOptimized placed %+v, optimizer computed %+v", dep.APs, want)
	}
	for i := range dep.Devices {
		if len(dep.Devices[i].APLinks) != 4 {
			t.Fatalf("device %d has %d links after optimized placement", i, len(dep.Devices[i].APLinks))
		}
	}
}
