// Package mac implements the NetScatter protocol layer (§3.3): the AP's
// ASK query message, the association state machine, power-aware cyclic
// shift allocation and the device-side zero-overhead power adaptation.
package mac

import (
	"fmt"
	"math/big"

	"netscatter/internal/core"
	"netscatter/internal/radio"
)

// Assignment is the optional association response piggybacked on a
// query (Fig. 11): an 8-bit network ID and an 8-bit cyclic-shift slot.
type Assignment struct {
	NetworkID uint8
	Slot      uint8
}

// Query is the AP's downlink message (Fig. 11). The group ID selects
// which set of up to 256 devices responds concurrently. An optional
// Assignment carries an association response; an optional Shuffle
// carries a full reassignment of every slot, encoded as the index of
// one of the 256! orderings (§3.3.3: "log2(256!) <= 1700 bits").
type Query struct {
	GroupID uint8
	// Assign, when non-nil, tells the device that just requested
	// association which network ID and slot it received.
	Assign *Assignment
	// Shuffle, when non-nil, reassigns all devices: Shuffle[slot] is
	// the network ID now owning that slot. Must be a permutation of
	// 0..len-1 device indices.
	Shuffle []int
}

const (
	flagAssign  = 1 << 0
	flagShuffle = 1 << 1

	// querySync is the fixed leading byte of every query (the ASK
	// downlink's start-of-message marker for the envelope detector).
	querySync = 0xA5
)

// EncodeBits serializes the query to bits (one bit per byte, MSB first)
// with a leading sync byte and trailing CRC-8. Config 1 of §4.4
// (32 bits: sync + group + flags + CRC) is a query with just the group
// ID; Config 2 (~1760 bits) is a query with a full 256-slot shuffle.
func (q *Query) EncodeBits() []byte {
	data := []byte{querySync, q.GroupID}
	var flags byte
	if q.Assign != nil {
		flags |= flagAssign
	}
	if q.Shuffle != nil {
		flags |= flagShuffle
	}
	data = append(data, flags)
	if q.Assign != nil {
		data = append(data, q.Assign.NetworkID, q.Assign.Slot)
	}
	if q.Shuffle != nil {
		perm := EncodePermutation(q.Shuffle)
		data = append(data, byte(len(q.Shuffle)-1))
		data = append(data, byte(len(perm)))
		data = append(data, perm...)
	}
	return core.FrameBits(data)
}

// DecodeBits parses a query from bits produced by EncodeBits.
func DecodeBits(bits []byte) (*Query, error) {
	data, ok := core.CheckFrameBits(bits)
	if !ok {
		return nil, fmt.Errorf("mac: query CRC mismatch")
	}
	if len(data) < 3 {
		return nil, fmt.Errorf("mac: query too short (%d bytes)", len(data))
	}
	if data[0] != querySync {
		return nil, fmt.Errorf("mac: bad query sync byte %#x", data[0])
	}
	q := &Query{GroupID: data[1]}
	flags := data[2]
	rest := data[3:]
	if flags&flagAssign != 0 {
		if len(rest) < 2 {
			return nil, fmt.Errorf("mac: truncated assignment")
		}
		q.Assign = &Assignment{NetworkID: rest[0], Slot: rest[1]}
		rest = rest[2:]
	}
	if flags&flagShuffle != 0 {
		if len(rest) < 2 {
			return nil, fmt.Errorf("mac: truncated shuffle header")
		}
		n := int(rest[0]) + 1
		plen := int(rest[1])
		rest = rest[2:]
		if len(rest) < plen {
			return nil, fmt.Errorf("mac: truncated shuffle body (%d < %d)", len(rest), plen)
		}
		perm, err := DecodePermutation(rest[:plen], n)
		if err != nil {
			return nil, err
		}
		q.Shuffle = perm
	}
	return q, nil
}

// BitLength returns the on-air length of the encoded query in bits.
func (q *Query) BitLength() int { return len(q.EncodeBits()) }

// Duration returns the query's on-air time over the given ASK downlink.
func (q *Query) Duration(modem radio.ASKModem) float64 {
	return modem.Duration(q.BitLength())
}

// EncodePermutation packs a permutation of 0..n-1 into its Lehmer-code
// index, the densest possible encoding: ceil(log2(n!)) bits (1684 for
// n = 256, matching the paper's "<= 1700 bits" bound).
func EncodePermutation(perm []int) []byte {
	n := len(perm)
	// Lehmer code: for each position, count how many smaller elements
	// remain to its right.
	idx := big.NewInt(0)
	fact := big.NewInt(1)
	for i := 2; i <= n; i++ {
		fact.Mul(fact, big.NewInt(int64(i)))
	}
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	for i, v := range perm {
		// position of v among remaining values
		pos := 0
		for j, r := range remaining {
			if r == v {
				pos = j
				break
			}
		}
		fact.Div(fact, big.NewInt(int64(n-i)))
		term := new(big.Int).Mul(big.NewInt(int64(pos)), fact)
		idx.Add(idx, term)
		remaining = append(remaining[:pos], remaining[pos+1:]...)
	}
	// Fixed width so the decoder knows the length.
	out := idx.Bytes()
	width := permBytes(n)
	padded := make([]byte, width)
	copy(padded[width-len(out):], out)
	return padded
}

// DecodePermutation reverses EncodePermutation for a permutation of
// length n.
func DecodePermutation(data []byte, n int) ([]int, error) {
	if len(data) != permBytes(n) {
		return nil, fmt.Errorf("mac: permutation blob %d bytes, want %d", len(data), permBytes(n))
	}
	idx := new(big.Int).SetBytes(data)
	fact := big.NewInt(1)
	for i := 2; i <= n; i++ {
		fact.Mul(fact, big.NewInt(int64(i)))
	}
	if idx.Cmp(fact) >= 0 {
		return nil, fmt.Errorf("mac: permutation index out of range")
	}
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	perm := make([]int, 0, n)
	for i := 0; i < n; i++ {
		fact.Div(fact, big.NewInt(int64(n-i)))
		pos := new(big.Int)
		pos.DivMod(idx, fact, idx)
		p := int(pos.Int64())
		if p >= len(remaining) {
			return nil, fmt.Errorf("mac: corrupt permutation index")
		}
		perm = append(perm, remaining[p])
		remaining = append(remaining[:p], remaining[p+1:]...)
	}
	return perm, nil
}

// permBytes returns the byte width of an encoded n-permutation:
// ceil(log2(n!)/8).
func permBytes(n int) int {
	fact := big.NewInt(1)
	for i := 2; i <= n; i++ {
		fact.Mul(fact, big.NewInt(int64(i)))
	}
	return (fact.BitLen() + 7) / 8
}
