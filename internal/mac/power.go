package mac

import (
	"math"

	"netscatter/internal/hw"
)

// PowerController is the device-side fine-grained self-aware power
// adjustment of §3.2.3. Using channel reciprocity, a device treats the
// RSSI of the AP's query (measured by its envelope detector) as a proxy
// for its own uplink strength at the AP, and steers its backscatter
// power gain to keep the received level where the AP assigned it: if the
// query gets stronger, the channel improved, so the device lowers its
// gain (and vice versa). No uplink signalling is needed.
type PowerController struct {
	// Levels are the available power gains (0/-4/-10 dB in hardware).
	Levels []hw.PowerLevel
	// LowRSSIThresholdDBm splits "weak" from "strong" devices at
	// association: weak devices start at maximum gain (they have no
	// headroom), strong devices start mid-ladder so they can move both
	// ways.
	LowRSSIThresholdDBm float64
	// SlackDB is how far the ideal gain may fall outside the ladder
	// before the device skips the round rather than transmit at a
	// badly wrong power.
	SlackDB float64

	associated   bool
	baselineRSSI float64
	assignedGain float64
	skipCount    int
}

// NewPowerController returns a controller with the paper's three
// hardware levels and defaults.
func NewPowerController() *PowerController {
	return &PowerController{
		Levels:              hw.PowerLevels(),
		LowRSSIThresholdDBm: -35,
		SlackDB:             3,
	}
}

// AssociateGainDB implements the association-time rule: weak downlink →
// maximum gain; otherwise the middle level, leaving headroom both ways.
// It records the RSSI baseline for later adjustments and returns the
// gain used for the association request.
func (pc *PowerController) AssociateGainDB(rssiDBm float64) float64 {
	pc.associated = true
	pc.baselineRSSI = rssiDBm
	pc.skipCount = 0
	if rssiDBm < pc.LowRSSIThresholdDBm {
		pc.assignedGain = pc.maxGain()
	} else {
		pc.assignedGain = pc.midGain()
	}
	return pc.assignedGain
}

// Adjust picks the gain for a data round given the current query RSSI.
// participate is false when the ideal gain falls outside the ladder by
// more than SlackDB — the device sits the round out (§3.2.3). After two
// consecutive skips, NeedsReassociation reports true and the device
// re-enters association so the AP can re-place it.
func (pc *PowerController) Adjust(rssiDBm float64) (gainDB float64, participate bool) {
	if !pc.associated {
		return pc.maxGain(), false
	}
	// Channel improved by delta => back off by delta (reciprocity).
	delta := rssiDBm - pc.baselineRSSI
	ideal := pc.assignedGain - delta
	best, bestErr := 0.0, math.Inf(1)
	for _, l := range pc.Levels {
		if e := math.Abs(l.GainDB - ideal); e < bestErr {
			best, bestErr = l.GainDB, e
		}
	}
	if bestErr > pc.SlackDB {
		pc.skipCount++
		return best, false
	}
	pc.skipCount = 0
	return best, true
}

// NeedsReassociation reports whether the device has skipped more than
// two consecutive rounds and must re-associate (§3.2.3).
func (pc *PowerController) NeedsReassociation() bool { return pc.skipCount > 2 }

// Reset clears association state (called when re-associating).
func (pc *PowerController) Reset() {
	pc.associated = false
	pc.skipCount = 0
}

func (pc *PowerController) maxGain() float64 {
	g := math.Inf(-1)
	for _, l := range pc.Levels {
		if l.GainDB > g {
			g = l.GainDB
		}
	}
	return g
}

func (pc *PowerController) midGain() float64 {
	// Middle of the ladder (levels are few; sort-free selection).
	min, max := math.Inf(1), math.Inf(-1)
	for _, l := range pc.Levels {
		if l.GainDB < min {
			min = l.GainDB
		}
		if l.GainDB > max {
			max = l.GainDB
		}
	}
	target := (min + max) / 2
	best, bestErr := 0.0, math.Inf(1)
	for _, l := range pc.Levels {
		if e := math.Abs(l.GainDB - target); e < bestErr {
			best, bestErr = l.GainDB, e
		}
	}
	return best
}
