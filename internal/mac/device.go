package mac

import (
	"netscatter/internal/core"
)

// DeviceState is a tag's protocol state (Fig. 10).
type DeviceState int

const (
	// StateUnassociated: the device has no slot; it answers queries
	// with an association request on a reserved association shift.
	StateUnassociated DeviceState = iota
	// StateWaitAssign: the request is sent; the device watches queries
	// for its assignment.
	StateWaitAssign
	// StateAssociated: the device has a slot and sends data each round
	// (power permitting).
	StateAssociated
)

// Action describes what a device transmits in response to one query.
type Action struct {
	// Transmit is false when the device sits the round out.
	Transmit bool
	// Shift is the cyclic shift to use.
	Shift int
	// GainDB is the backscatter power gain setting.
	GainDB float64
	// AssocRequest marks an association request transmission.
	AssocRequest bool
	// AssocAck marks the association ACK transmission.
	AssocAck bool
}

// Device is the tag-side protocol engine: association, slot tracking
// through shuffles, and power adaptation. The physical layer (chirp
// synthesis, RF impairments) lives in internal/sim; this type only
// decides what to send.
type Device struct {
	book  *core.CodeBook
	pc    *PowerController
	state DeviceState

	networkID uint8
	slot      int
}

// NewDevice builds an unassociated device over the network's code book.
func NewDevice(book *core.CodeBook) *Device {
	return &Device{book: book, pc: NewPowerController()}
}

// State returns the protocol state.
func (d *Device) State() DeviceState { return d.state }

// NetworkID returns the assigned ID (valid once associated).
func (d *Device) NetworkID() uint8 { return d.networkID }

// Slot returns the assigned slot (valid once associated).
func (d *Device) Slot() int { return d.slot }

// PowerController exposes the device's power-adaptation state.
func (d *Device) PowerController() *PowerController { return d.pc }

// OnQuery reacts to one decoded AP query heard at the given envelope-
// detector RSSI and returns the transmission decision for this round.
func (d *Device) OnQuery(q *Query, rssiDBm float64) Action {
	switch d.state {
	case StateUnassociated:
		// Choose the association region matching our own downlink
		// strength: strong devices use the high-SNR shift, weak ones
		// the low-SNR shift, so the request neither drowns nor is
		// drowned by ongoing traffic (§3.3.2).
		hi, lo := d.book.AssociationSlots()
		slot := lo
		if rssiDBm >= d.pc.LowRSSIThresholdDBm {
			slot = hi
		}
		gain := d.pc.AssociateGainDB(rssiDBm)
		d.state = StateWaitAssign
		return Action{
			Transmit:     true,
			Shift:        d.book.ShiftOfSlot(slot),
			GainDB:       gain,
			AssocRequest: true,
		}

	case StateWaitAssign:
		if q.Assign != nil {
			d.networkID = q.Assign.NetworkID
			d.slot = int(q.Assign.Slot)
			d.state = StateAssociated
			gain, _ := d.pc.Adjust(rssiDBm)
			return Action{
				Transmit: true,
				Shift:    d.book.ShiftOfSlot(d.slot),
				GainDB:   gain,
				AssocAck: true,
			}
		}
		// Assignment lost: retry the request next round.
		d.state = StateUnassociated
		return Action{}

	default: // StateAssociated
		d.applyShuffle(q)
		gain, participate := d.pc.Adjust(rssiDBm)
		if d.pc.NeedsReassociation() {
			d.state = StateUnassociated
			d.pc.Reset()
			return Action{}
		}
		return Action{
			Transmit: participate,
			Shift:    d.book.ShiftOfSlot(d.slot),
			GainDB:   gain,
		}
	}
}

// applyShuffle updates the device's slot from a full-reassignment
// query. Shuffle[i] is the rank of the network ID owning the i-th
// assignable slot; network IDs are handed out densely (0, 1, 2, ...),
// so a device's rank equals its own ID and it can locate its new slot
// without any per-device signalling — the whole point of encoding the
// reassignment as one of the n! orderings (§3.3.3).
func (d *Device) applyShuffle(q *Query) {
	if q.Shuffle == nil {
		return
	}
	for i, rank := range q.Shuffle {
		if rank == int(d.networkID) {
			if s := AssignableSlot(d.book, i); s >= 0 {
				d.slot = s
			}
			return
		}
	}
}
