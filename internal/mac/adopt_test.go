package mac

import (
	"math"
	"testing"
)

// --- power controller state machine: table-driven sweep ---

// pcStep is one operation of a power-controller scenario with the
// expected observable state after it.
type pcStep struct {
	op       string // "assoc", "adjust", "reset"
	rssi     float64
	wantGain float64
	wantOK   bool // participate (adjust) — ignored for assoc/reset
	wantRe   bool // NeedsReassociation after the step
}

// TestPowerControllerStateMachine sweeps skip/ack sequences over the
// §3.2.3 controller: the `skipCount > 2` boundary (two skips hold, the
// third trips), the reset-on-ack path (a good round clears the streak),
// the reset-on-reassociate paths (Reset and a fresh AssociateGainDB
// both clear it), the slack edge at exactly SlackDB, and the
// unassociated controller (which sits out without ever counting toward
// re-association).
func TestPowerControllerStateMachine(t *testing.T) {
	// Ladder 0/-4/-10 dB; baseline -20 dBm assigns the mid gain -4.
	// Adjust(rssi): ideal = -4 - (rssi - (-20)); skip iff the nearest
	// level misses ideal by more than SlackDB = 3.
	cases := []struct {
		name  string
		steps []pcStep
	}{
		{"third skip trips, not the second", []pcStep{
			{op: "assoc", rssi: -20, wantGain: -4},
			{op: "adjust", rssi: 0, wantGain: -10, wantOK: false, wantRe: false},
			{op: "adjust", rssi: 0, wantGain: -10, wantOK: false, wantRe: false},
			{op: "adjust", rssi: 0, wantGain: -10, wantOK: false, wantRe: true},
		}},
		{"good round resets the streak", []pcStep{
			{op: "assoc", rssi: -20, wantGain: -4},
			{op: "adjust", rssi: 0, wantGain: -10, wantOK: false},
			{op: "adjust", rssi: 0, wantGain: -10, wantOK: false},
			{op: "adjust", rssi: -20, wantGain: -4, wantOK: true}, // ack: streak cleared
			{op: "adjust", rssi: 0, wantGain: -10, wantOK: false},
			{op: "adjust", rssi: 0, wantGain: -10, wantOK: false, wantRe: false},
			{op: "adjust", rssi: 0, wantGain: -10, wantOK: false, wantRe: true},
		}},
		{"Reset clears a tripped controller", []pcStep{
			{op: "assoc", rssi: -20, wantGain: -4},
			{op: "adjust", rssi: 0, wantGain: -10, wantOK: false},
			{op: "adjust", rssi: 0, wantGain: -10, wantOK: false},
			{op: "adjust", rssi: 0, wantGain: -10, wantOK: false, wantRe: true},
			{op: "reset", wantRe: false},
		}},
		{"re-association clears a tripped controller", []pcStep{
			{op: "assoc", rssi: -20, wantGain: -4},
			{op: "adjust", rssi: 0, wantGain: -10, wantOK: false},
			{op: "adjust", rssi: 0, wantGain: -10, wantOK: false},
			{op: "adjust", rssi: 0, wantGain: -10, wantOK: false, wantRe: true},
			{op: "assoc", rssi: -45, wantGain: 0, wantRe: false}, // weak now: max gain
			{op: "adjust", rssi: -45, wantGain: 0, wantOK: true, wantRe: false},
		}},
		{"slack edge: misfit of exactly SlackDB participates", []pcStep{
			{op: "assoc", rssi: -20, wantGain: -4},
			// ideal = -4 + 7 = 3: nearest level 0, error 3 = SlackDB.
			{op: "adjust", rssi: -27, wantGain: 0, wantOK: true, wantRe: false},
			// ideal = 4: error 4 > SlackDB — skip.
			{op: "adjust", rssi: -28, wantGain: 0, wantOK: false, wantRe: false},
		}},
		{"unassociated controller sits out without counting", []pcStep{
			{op: "adjust", rssi: -20, wantGain: 0, wantOK: false, wantRe: false},
			{op: "adjust", rssi: -20, wantGain: 0, wantOK: false, wantRe: false},
			{op: "adjust", rssi: -20, wantGain: 0, wantOK: false, wantRe: false},
			{op: "adjust", rssi: -20, wantGain: 0, wantOK: false, wantRe: false},
		}},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pc := NewPowerController()
			for i, s := range c.steps {
				var gain float64
				var ok bool
				switch s.op {
				case "assoc":
					gain = pc.AssociateGainDB(s.rssi)
				case "adjust":
					gain, ok = pc.Adjust(s.rssi)
					if ok != s.wantOK {
						t.Fatalf("step %d: participate %v, want %v", i, ok, s.wantOK)
					}
				case "reset":
					pc.Reset()
					gain = s.wantGain
				}
				if math.Abs(gain-s.wantGain) > 1e-12 {
					t.Fatalf("step %d (%s): gain %v, want %v", i, s.op, gain, s.wantGain)
				}
				if re := pc.NeedsReassociation(); re != s.wantRe {
					t.Fatalf("step %d (%s): NeedsReassociation %v, want %v", i, s.op, re, s.wantRe)
				}
			}
		})
	}
}

// --- assignment adoption (trajectory warm-start) ---

func TestAllocatorAdopt(t *testing.T) {
	book := testBook(t)
	a := NewAllocator(book)
	hi, _ := book.AssociationSlots()

	free := AssignableSlot(book, 0)
	if err := a.Adopt(1, free, 10); err != nil {
		t.Fatalf("adopt free slot: %v", err)
	}
	if s, ok := a.SlotOf(1); !ok || s != free {
		t.Fatalf("SlotOf(1) = %d, %v", s, ok)
	}
	if err := a.Adopt(2, free, 5); err == nil {
		t.Fatal("adopting a taken slot must fail")
	}
	if err := a.Adopt(1, AssignableSlot(book, 1), 5); err == nil {
		t.Fatal("adopting a second slot for the same id must fail")
	}
	if err := a.Adopt(3, hi, 5); err == nil {
		t.Fatal("adopting a reserved slot must fail")
	}
	if err := a.Adopt(3, book.Slots(), 5); err == nil {
		t.Fatal("adopting an out-of-range slot must fail")
	}
}

// TestAPAdoptAssignment: adoption warm-starts records as already-ACKed
// devices, advances the ID allocator past adopted IDs, and composes
// with the dynamic paths (OnDeviceLost frees the slot for a later
// adopt or insert).
func TestAPAdoptAssignment(t *testing.T) {
	book := testBook(t)
	ap := NewAPWith(book, NewDataOnlyAllocator(book))

	if err := ap.AdoptAssignment(3, 0, 20); err != nil {
		t.Fatalf("adopt: %v", err)
	}
	if err := ap.AdoptAssignment(3, 1, 20); err == nil {
		t.Fatal("double adoption of one id must fail")
	}
	r, ok := ap.Record(3)
	if !ok || !r.Acked || r.Slot != 0 {
		t.Fatalf("adopted record %+v, %v", r, ok)
	}
	if ap.Devices() != 1 {
		t.Fatalf("Devices() = %d, want 1", ap.Devices())
	}

	// A later dynamic association must not reissue the adopted ID.
	asg, err := ap.OnAssociationRequest(18)
	if err != nil {
		t.Fatalf("association after adopt: %v", err)
	}
	if asg.NetworkID == 3 {
		t.Fatal("dynamic association reissued an adopted network ID")
	}
	ap.OnAssociationAck(asg.NetworkID)

	// Losing the adopted device frees its slot for re-adoption.
	ap.OnDeviceLost(3)
	if _, ok := ap.Record(3); ok {
		t.Fatal("lost device still has a record")
	}
	if err := ap.AdoptAssignment(7, 0, 12); err != nil {
		t.Fatalf("re-adopt freed slot: %v", err)
	}
}
