package mac

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"netscatter/internal/chirp"
	"netscatter/internal/core"
	"netscatter/internal/dsp"
	"netscatter/internal/radio"
)

func testBook(t *testing.T) *core.CodeBook {
	t.Helper()
	book, err := core.NewCodeBook(chirp.Default500k9, 2)
	if err != nil {
		t.Fatal(err)
	}
	return book
}

// --- query codec ---

func TestQueryRoundTripMinimal(t *testing.T) {
	q := &Query{GroupID: 3}
	got, err := DecodeBits(q.EncodeBits())
	if err != nil {
		t.Fatal(err)
	}
	if got.GroupID != 3 || got.Assign != nil || got.Shuffle != nil {
		t.Fatalf("decoded %+v", got)
	}
}

func TestQueryRoundTripAssignment(t *testing.T) {
	q := &Query{GroupID: 0, Assign: &Assignment{NetworkID: 17, Slot: 200}}
	got, err := DecodeBits(q.EncodeBits())
	if err != nil {
		t.Fatal(err)
	}
	if got.Assign == nil || *got.Assign != *q.Assign {
		t.Fatalf("assignment lost: %+v", got.Assign)
	}
}

func TestQueryRoundTripQuick(t *testing.T) {
	f := func(group, id, slot uint8, withAssign bool) bool {
		q := &Query{GroupID: group}
		if withAssign {
			q.Assign = &Assignment{NetworkID: id, Slot: slot}
		}
		got, err := DecodeBits(q.EncodeBits())
		if err != nil {
			return false
		}
		if got.GroupID != group {
			return false
		}
		if withAssign {
			return got.Assign != nil && *got.Assign == *q.Assign
		}
		return got.Assign == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQueryCorruptionDetected(t *testing.T) {
	bits := (&Query{GroupID: 9}).EncodeBits()
	bits[3] ^= 1
	if _, err := DecodeBits(bits); err == nil {
		t.Fatal("corrupted query accepted")
	}
}

func TestQueryConfigSizes(t *testing.T) {
	// §4.4: Config 1 queries are 32 bits; Config 2 (full 256-device
	// shuffle) is ~1760 bits, i.e. log2(256!) <= 1700 plus framing.
	q1 := &Query{GroupID: 0}
	if got := q1.BitLength(); got != 32 {
		t.Fatalf("config-1 query = %d bits, want 32", got)
	}
	perm := make([]int, 256)
	for i := range perm {
		perm[i] = (i*37 + 11) % 256
	}
	q2 := &Query{GroupID: 0, Shuffle: perm}
	if got := q2.BitLength(); got < 1700 || got > 1800 {
		t.Fatalf("config-2 query = %d bits, want ~1760", got)
	}
	// On-air duration at 160 kbps ~ 11 ms (§3.3.3).
	if d := q2.Duration(radio.DefaultASK); d < 0.010 || d > 0.012 {
		t.Fatalf("config-2 duration = %v", d)
	}
}

func TestPermutationRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 256} {
		perm := make([]int, n)
		for i := range perm {
			perm[i] = (i*7 + 3) % n
		}
		// make it a real permutation
		seen := map[int]bool{}
		k := 0
		for i := range perm {
			for seen[perm[i]] {
				perm[i] = k
				k++
			}
			seen[perm[i]] = true
		}
		got, err := DecodePermutation(EncodePermutation(perm), n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !reflect.DeepEqual(got, perm) {
			t.Fatalf("n=%d: %v != %v", n, got, perm)
		}
	}
}

func TestPermutationQuick(t *testing.T) {
	rng := dsp.NewRand(1)
	f := func(nRaw uint8) bool {
		n := int(nRaw)%64 + 1
		perm := rng.Perm(n)
		got, err := DecodePermutation(EncodePermutation(perm), n)
		return err == nil && reflect.DeepEqual(got, perm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPermutationDensity(t *testing.T) {
	// ceil(log2(256!)/8) bytes = 211 (1688 bits <= the paper's 1700).
	if got := permBytes(256); got != 211 {
		t.Fatalf("permBytes(256) = %d", got)
	}
}

// --- allocator ---

func TestAssignAllSortsBySNR(t *testing.T) {
	book := testBook(t)
	a := NewAllocator(book)
	n := 50
	ids := make([]uint8, n)
	snrs := make([]float64, n)
	rng := dsp.NewRand(2)
	for i := range ids {
		ids[i] = uint8(i)
		snrs[i] = rng.Uniform(-15, 25)
	}
	assign := a.AssignAll(ids, snrs)
	if len(assign) != n {
		t.Fatalf("assigned %d of %d", len(assign), n)
	}
	// Slot order must follow SNR order: lower slot -> higher SNR.
	slots, slotSNRs := a.SlotSNRs()
	for i := 1; i < len(slotSNRs); i++ {
		if slotSNRs[i] > slotSNRs[i-1]+1e-9 {
			t.Fatalf("SNR increases from slot %d to %d", slots[i-1], slots[i])
		}
	}
	// No duplicates, nothing reserved.
	seen := map[int]bool{}
	reserved := ReservedSlots(book)
	for _, s := range assign {
		if seen[s] {
			t.Fatalf("slot %d assigned twice", s)
		}
		if reserved[s] {
			t.Fatalf("reserved slot %d assigned", s)
		}
		seen[s] = true
	}
}

func TestAllocatorInsertFitsSimilarSNR(t *testing.T) {
	book := testBook(t)
	a := NewAllocator(book)
	ids := []uint8{0, 1, 2, 3}
	snrs := []float64{20, 15, 10, 5}
	a.AssignAll(ids, snrs)
	// A 14 dB device fits between existing neighbours without a
	// reshuffle.
	slot, needShuffle, ok := a.Insert(9, 14)
	if !ok || needShuffle {
		t.Fatalf("insert: slot=%d shuffle=%v ok=%v", slot, needShuffle, ok)
	}
	if _, taken := a.SlotOf(9); !taken {
		t.Fatal("device not recorded")
	}
}

func TestAllocatorInsertRequestsShuffle(t *testing.T) {
	book, _ := core.NewCodeBook(chirp.Params{SF: 6, BW: 125e3, Oversample: 1}, 2)
	a := NewAllocator(book)
	// Fill most slots with high-SNR devices.
	n := a.Capacity()
	ids := make([]uint8, n-1)
	snrs := make([]float64, n-1)
	for i := range ids {
		ids[i] = uint8(i)
		snrs[i] = 25 - float64(i)*0.1
	}
	a.AssignAll(ids, snrs)
	// A far weaker newcomer does not fit next to the remaining free
	// slot's neighbours.
	_, needShuffle, ok := a.Insert(200, -25)
	if !ok {
		t.Fatal("insert rejected outright")
	}
	if !needShuffle {
		t.Fatal("expected a reshuffle request for a badly fitting device")
	}
}

func TestAllocatorRemoveFreesSlot(t *testing.T) {
	book := testBook(t)
	a := NewAllocator(book)
	a.AssignAll([]uint8{1}, []float64{10})
	slot, _ := a.SlotOf(1)
	a.Remove(1)
	if _, still := a.SlotOf(1); still {
		t.Fatal("device still assigned")
	}
	got, needShuffle, ok := a.Insert(2, 10)
	if !ok || needShuffle || got != slot {
		t.Fatalf("freed slot not reused: %d vs %d", got, slot)
	}
}

func TestAssignableSlotConsistency(t *testing.T) {
	book := testBook(t)
	reserved := ReservedSlots(book)
	k := 0
	for s := 0; s < book.Slots(); s++ {
		if reserved[s] {
			continue
		}
		if got := AssignableSlot(book, k); got != s {
			t.Fatalf("AssignableSlot(%d) = %d, want %d", k, got, s)
		}
		k++
	}
	if AssignableSlot(book, k) != -1 {
		t.Fatal("out-of-range index should return -1")
	}
}

// --- power controller ---

func TestPowerControllerAssociationRule(t *testing.T) {
	pc := NewPowerController()
	// Weak downlink: start at maximum gain.
	if g := pc.AssociateGainDB(-45); g != 0 {
		t.Fatalf("weak device gain %v, want 0", g)
	}
	pc = NewPowerController()
	// Strong downlink: start mid-ladder with headroom both ways.
	if g := pc.AssociateGainDB(-20); g != -4 {
		t.Fatalf("strong device gain %v, want -4", g)
	}
}

func TestPowerControllerReciprocity(t *testing.T) {
	pc := NewPowerController()
	pc.AssociateGainDB(-20) // baseline, gain -4
	// Channel improves by 6 dB -> back off toward -10.
	g, ok := pc.Adjust(-14)
	if !ok || g != -10 {
		t.Fatalf("improved channel: gain %v ok %v", g, ok)
	}
	// Channel degrades by 4 dB -> step up toward 0.
	g, ok = pc.Adjust(-24)
	if !ok || g != 0 {
		t.Fatalf("degraded channel: gain %v ok %v", g, ok)
	}
}

func TestPowerControllerSkipsAndReassociates(t *testing.T) {
	pc := NewPowerController()
	pc.AssociateGainDB(-20)
	// A 20 dB improvement is beyond the ladder: sit out.
	for i := 0; i < 3; i++ {
		if _, ok := pc.Adjust(0); ok {
			t.Fatal("should skip the round")
		}
	}
	if !pc.NeedsReassociation() {
		t.Fatal("three skips should trigger re-association (paper: more than twice)")
	}
	pc.Reset()
	if pc.NeedsReassociation() {
		t.Fatal("reset did not clear state")
	}
}

// --- AP / device state machines ---

func TestAssociationFlow(t *testing.T) {
	book := testBook(t)
	ap := NewAP(book)
	dev := NewDevice(book)

	q1 := ap.NextQuery()
	act := dev.OnQuery(q1, -40)
	if !act.AssocRequest || !act.Transmit {
		t.Fatalf("expected association request, got %+v", act)
	}
	hi, lo := book.AssociationSlots()
	if act.Shift != book.ShiftOfSlot(hi) && act.Shift != book.ShiftOfSlot(lo) {
		t.Fatalf("request not on an association shift: %d", act.Shift)
	}

	assign, err := ap.OnAssociationRequest(5)
	if err != nil {
		t.Fatal(err)
	}
	q2 := ap.NextQuery()
	if q2.Assign == nil || q2.Assign.NetworkID != assign.NetworkID {
		t.Fatal("assignment not piggybacked")
	}

	act = dev.OnQuery(q2, -40)
	if !act.AssocAck {
		t.Fatalf("expected ACK, got %+v", act)
	}
	if dev.State() != StateAssociated {
		t.Fatal("device not associated")
	}
	ap.OnAssociationAck(dev.NetworkID())
	if ap.Devices() != 1 {
		t.Fatalf("AP device count %d", ap.Devices())
	}
	if ap.PendingAssignment() != nil {
		t.Fatal("pending assignment not cleared after ACK")
	}

	// Steady state: data rounds on the assigned shift.
	act = dev.OnQuery(ap.NextQuery(), -40)
	if act.AssocRequest || act.AssocAck || !act.Transmit {
		t.Fatalf("expected data transmission, got %+v", act)
	}
	if act.Shift != book.ShiftOfSlot(dev.Slot()) {
		t.Fatal("data on wrong shift")
	}
}

func TestAssociationRepeatsUntilAck(t *testing.T) {
	book := testBook(t)
	ap := NewAP(book)
	if _, err := ap.OnAssociationRequest(3); err != nil {
		t.Fatal(err)
	}
	// Without an ACK, the assignment rides every query (§3.3.4).
	for i := 0; i < 3; i++ {
		if q := ap.NextQuery(); q.Assign == nil {
			t.Fatal("assignment dropped before ACK")
		}
	}
}

func TestAssociationOneAtATime(t *testing.T) {
	book := testBook(t)
	ap := NewAP(book)
	if _, err := ap.OnAssociationRequest(3); err != nil {
		t.Fatal(err)
	}
	if _, err := ap.OnAssociationRequest(4); err == nil {
		t.Fatal("second in-flight association accepted")
	}
}

func TestActiveShiftsIncludesAssociation(t *testing.T) {
	book := testBook(t)
	ap := NewAP(book)
	shifts, ids := ap.ActiveShifts()
	if len(ids) != 0 {
		t.Fatalf("ids = %v", ids)
	}
	// Always listening on the two association shifts.
	if len(shifts) != 2 {
		t.Fatalf("shifts = %v", shifts)
	}
}

func TestShuffleUpdatesDeviceSlots(t *testing.T) {
	book := testBook(t)
	ap := NewAP(book)
	// Associate three devices at descending SNR.
	devs := make([]*Device, 3)
	for i := range devs {
		devs[i] = NewDevice(book)
		act := devs[i].OnQuery(ap.NextQuery(), -40)
		if !act.AssocRequest {
			t.Fatal("no request")
		}
		if _, err := ap.OnAssociationRequest(float64(20 - 5*i)); err != nil {
			t.Fatal(err)
		}
		act = devs[i].OnQuery(ap.NextQuery(), -40)
		if !act.AssocAck {
			t.Fatal("no ack")
		}
		ap.OnAssociationAck(devs[i].NetworkID())
	}
	// Force a shuffle and deliver it; devices must land on the AP's
	// view of their slots.
	ap.Reshuffle()
	q := ap.NextQuery()
	if q.Shuffle == nil {
		t.Fatal("shuffle missing")
	}
	// Round-trip the query through its wire encoding too.
	decoded, err := DecodeBits(q.EncodeBits())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range devs {
		d.OnQuery(decoded, -40)
		rec, ok := ap.Record(d.NetworkID())
		if !ok {
			t.Fatal("missing AP record")
		}
		if d.Slot() != rec.Slot {
			t.Fatalf("device %d at slot %d, AP thinks %d", d.NetworkID(), d.Slot(), rec.Slot)
		}
	}
}

func TestAPUpdateSNRAndLost(t *testing.T) {
	book := testBook(t)
	ap := NewAP(book)
	assign, err := ap.OnAssociationRequest(8)
	if err != nil {
		t.Fatal(err)
	}
	ap.OnAssociationAck(assign.NetworkID)
	ap.UpdateSNR(assign.NetworkID, 12)
	rec, _ := ap.Record(assign.NetworkID)
	if rec.SNRdB != 12 {
		t.Fatalf("SNR not updated: %v", rec.SNRdB)
	}
	ap.OnDeviceLost(assign.NetworkID)
	if _, ok := ap.Record(assign.NetworkID); ok {
		t.Fatal("record not removed")
	}
	if ap.Devices() != 0 {
		t.Fatal("device count not decremented")
	}
}

func TestNormalizePerm(t *testing.T) {
	got := normalizePerm([]int{40, 10, 30})
	if !reflect.DeepEqual(got, []int{2, 0, 1}) {
		t.Fatalf("normalizePerm = %v", got)
	}
	// Property: output is always a permutation of 0..n-1.
	f := func(raw []int16) bool {
		vals := make([]int, 0, len(raw))
		seen := map[int]bool{}
		for _, v := range raw {
			if !seen[int(v)] {
				vals = append(vals, int(v))
				seen[int(v)] = true
			}
		}
		out := normalizePerm(vals)
		sorted := append([]int(nil), out...)
		sort.Ints(sorted)
		for i, v := range sorted {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDataOnlyAllocatorFullCapacity(t *testing.T) {
	book := testBook(t)
	a := NewDataOnlyAllocator(book)
	if a.Capacity() != 256 {
		t.Fatalf("data-only capacity = %d, want 256", a.Capacity())
	}
	n := 256
	ids := make([]uint8, n)
	snrs := make([]float64, n)
	for i := range ids {
		ids[i] = uint8(i)
		snrs[i] = float64(i % 40)
	}
	if got := len(a.AssignAll(ids, snrs)); got != 256 {
		t.Fatalf("assigned %d of 256", got)
	}
}

func TestMaxInsertGapConstant(t *testing.T) {
	if MaxInsertGapDB < 5 || MaxInsertGapDB > 35 {
		t.Fatalf("MaxInsertGapDB = %v outside the sane band", float64(MaxInsertGapDB))
	}
	_ = math.Pi // keep math import if assertions change
}
