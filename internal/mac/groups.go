package mac

import (
	"fmt"
	"sort"
)

// Group scheduling (§3.3.3): networks can hold more devices than one
// concurrent round supports. The AP assigns every device an 8-bit group
// ID carried in the query; only the addressed group answers. Devices
// with similar signal strength share a group, which further shrinks the
// near-far spread each concurrent round must absorb.

// Group is one concurrently-transmitting set.
type Group struct {
	ID uint8
	// Members are device identifiers, strongest first.
	Members []uint8
	// MinSNRdB and MaxSNRdB bound the group's signal strengths.
	MinSNRdB, MaxSNRdB float64
}

// SpreadDB returns the group's internal SNR spread.
func (g Group) SpreadDB() float64 { return g.MaxSNRdB - g.MinSNRdB }

// PlanGroups partitions devices into groups: sorted by SNR descending,
// greedily packed while the group stays under maxPerGroup members and
// maxSpreadDB of internal spread. Every device lands in exactly one
// group. ids and snrs run in parallel.
func PlanGroups(ids []uint8, snrs []float64, maxPerGroup int, maxSpreadDB float64) ([]Group, error) {
	if len(ids) != len(snrs) {
		return nil, fmt.Errorf("mac: %d ids vs %d snrs", len(ids), len(snrs))
	}
	if maxPerGroup < 1 {
		return nil, fmt.Errorf("mac: maxPerGroup %d", maxPerGroup)
	}
	if len(ids) > 256*maxPerGroup {
		return nil, fmt.Errorf("mac: %d devices exceed 256 groups of %d", len(ids), maxPerGroup)
	}
	type rec struct {
		id  uint8
		snr float64
	}
	recs := make([]rec, len(ids))
	for i := range ids {
		recs[i] = rec{ids[i], snrs[i]}
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].snr > recs[j].snr })

	var groups []Group
	var cur *Group
	for _, r := range recs {
		if cur == nil || len(cur.Members) >= maxPerGroup ||
			(len(cur.Members) > 0 && cur.MaxSNRdB-r.snr > maxSpreadDB) {
			groups = append(groups, Group{ID: uint8(len(groups)), MaxSNRdB: r.snr, MinSNRdB: r.snr})
			cur = &groups[len(groups)-1]
		}
		cur.Members = append(cur.Members, r.id)
		if r.snr < cur.MinSNRdB {
			cur.MinSNRdB = r.snr
		}
		if r.snr > cur.MaxSNRdB {
			cur.MaxSNRdB = r.snr
		}
	}
	return groups, nil
}

// Schedule cycles through groups round-robin: round k polls
// groups[k mod len].
type Schedule struct {
	Groups []Group
	round  int
}

// NewSchedule builds a round-robin schedule over groups.
func NewSchedule(groups []Group) *Schedule {
	return &Schedule{Groups: groups}
}

// Next returns the group to poll this round and advances the schedule.
func (s *Schedule) Next() Group {
	g := s.Groups[s.round%len(s.Groups)]
	s.round++
	return g
}

// RoundsPerSweep returns how many rounds one full network sweep takes.
func (s *Schedule) RoundsPerSweep() int { return len(s.Groups) }
