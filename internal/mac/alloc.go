package mac

import (
	"fmt"
	"sort"

	"netscatter/internal/core"
)

// Allocator performs the coarse-grained power-aware cyclic-shift
// assignment of §3.2.3: devices sorted by signal strength are mapped to
// code-book slots sorted by circular distance from the anchor bin, so
// low-SNR devices end up far (in FFT-bin distance) from high-SNR devices
// and outside their side lobes (Fig. 8). The two association slots and
// their immediate neighbours are never assigned (§3.3.2: association
// shifts keep a SKIP guard from communication shifts).
type Allocator struct {
	book     *core.CodeBook
	reserved map[int]bool
	// assignments: slot -> network ID, and the SNR each was assigned at.
	bySlot map[int]uint8
	snrOf  map[uint8]float64
	slotOf map[uint8]int
}

// ReservedSlots returns the slots no data device may occupy: the two
// association slots plus one slot of guard on each side (§3.3.2). Both
// the AP's allocator and every device compute this identically, so the
// shuffle message can refer to "the i-th assignable slot" without
// transmitting the reserved set.
func ReservedSlots(book *core.CodeBook) map[int]bool {
	reserved := map[int]bool{}
	hi, lo := book.AssociationSlots()
	for _, s := range []int{hi, lo} {
		reserved[s] = true
		// Guard the slots physically adjacent on the circle (slots s±2
		// share a side with s in the zig-zag ordering).
		for _, g := range []int{s - 2, s - 1, s + 1, s + 2} {
			if g >= 0 && g < book.Slots() {
				reserved[g] = true
			}
		}
	}
	return reserved
}

// AssignableSlot returns the i-th non-reserved slot in slot order, or
// -1 when out of range.
func AssignableSlot(book *core.CodeBook, i int) int {
	reserved := ReservedSlots(book)
	k := 0
	for s := 0; s < book.Slots(); s++ {
		if reserved[s] {
			continue
		}
		if k == i {
			return s
		}
		k++
	}
	return -1
}

// NewAllocator builds an allocator over a code book with the
// association slots (and their guards) reserved.
func NewAllocator(book *core.CodeBook) *Allocator {
	return &Allocator{
		book:     book,
		reserved: ReservedSlots(book),
		bySlot:   map[int]uint8{},
		snrOf:    map[uint8]float64{},
		slotOf:   map[uint8]int{},
	}
}

// NewDataOnlyAllocator builds an allocator with no reserved slots, for
// measurement rounds where every slot carries data — the paper's 256
// concurrent devices occupy all 2^SF/SKIP shifts (§4.4; association
// happened before the measured rounds).
func NewDataOnlyAllocator(book *core.CodeBook) *Allocator {
	return &Allocator{
		book:     book,
		reserved: map[int]bool{},
		bySlot:   map[int]uint8{},
		snrOf:    map[uint8]float64{},
		slotOf:   map[uint8]int{},
	}
}

// Book returns the underlying code book.
func (a *Allocator) Book() *core.CodeBook { return a.book }

// Capacity returns how many devices the allocator can hold.
func (a *Allocator) Capacity() int { return a.book.Slots() - len(a.reserved) }

// Len returns the number of assigned devices.
func (a *Allocator) Len() int { return len(a.bySlot) }

// SlotOf returns the slot assigned to a device.
func (a *Allocator) SlotOf(id uint8) (int, bool) {
	s, ok := a.slotOf[id]
	return s, ok
}

// AssignAll performs a full (re)assignment: devices sorted by SNR
// descending take slots in increasing slot order (increasing circular
// distance from the anchor). Returns slotOf keyed by device index into
// ids. ids and snrs run in parallel.
func (a *Allocator) AssignAll(ids []uint8, snrs []float64) map[uint8]int {
	type rec struct {
		id  uint8
		snr float64
	}
	recs := make([]rec, len(ids))
	for i := range ids {
		recs[i] = rec{ids[i], snrs[i]}
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].snr > recs[j].snr })

	a.bySlot = map[int]uint8{}
	a.snrOf = map[uint8]float64{}
	a.slotOf = map[uint8]int{}
	out := make(map[uint8]int, len(ids))
	slot := 0
	for _, r := range recs {
		for slot < a.book.Slots() && a.reserved[slot] {
			slot++
		}
		if slot >= a.book.Slots() {
			break
		}
		a.bySlot[slot] = r.id
		a.snrOf[r.id] = r.snr
		a.slotOf[r.id] = slot
		out[r.id] = slot
		slot++
	}
	return out
}

// MaxInsertGapDB is how far (in dB) an inserted device's SNR may deviate
// from the SNR rank of the free slot it takes before the AP prefers a
// full reshuffle. The in-built tolerance between adjacent cyclic shifts
// is about 5 dB (§4.3), so a 10 dB misplacement risks side-lobe drowning.
const MaxInsertGapDB = 10

// Insert adds one device incrementally. It finds the free non-reserved
// slot whose SNR neighbourhood best matches the device and returns it.
// needShuffle reports that no free slot fits within MaxInsertGapDB and
// the AP should reassign everyone (the paper's 256!-ordering update).
func (a *Allocator) Insert(id uint8, snr float64) (slot int, needShuffle bool, ok bool) {
	bestSlot, bestGap := -1, 1e18
	for s := 0; s < a.book.Slots(); s++ {
		if a.reserved[s] {
			continue
		}
		if _, taken := a.bySlot[s]; taken {
			continue
		}
		gap := a.neighbourGap(s, snr)
		if gap < bestGap {
			bestGap, bestSlot = gap, s
		}
	}
	if bestSlot < 0 {
		return 0, false, false
	}
	if bestGap > MaxInsertGapDB {
		return 0, true, true
	}
	a.bySlot[bestSlot] = id
	a.snrOf[id] = snr
	a.slotOf[id] = bestSlot
	return bestSlot, false, true
}

// Adopt records an existing (id, slot, snr) assignment made out of
// band — the warm-start path for an AP taking over a deployment whose
// slots were assigned at association time by a bulk AssignAll. It
// fails when the slot is reserved or taken, or the id already holds a
// slot; it performs no fit heuristics (the assignment already exists
// in the air, adopting it differently would desynchronize AP and
// device).
func (a *Allocator) Adopt(id uint8, slot int, snr float64) error {
	if slot < 0 || slot >= a.book.Slots() {
		return fmt.Errorf("mac: adopt slot %d outside book (%d slots)", slot, a.book.Slots())
	}
	if a.reserved[slot] {
		return fmt.Errorf("mac: adopt of reserved slot %d", slot)
	}
	if other, taken := a.bySlot[slot]; taken {
		return fmt.Errorf("mac: adopt slot %d already held by device %d", slot, other)
	}
	if s, ok := a.slotOf[id]; ok {
		return fmt.Errorf("mac: device %d already holds slot %d", id, s)
	}
	a.bySlot[slot] = id
	a.snrOf[id] = snr
	a.slotOf[id] = slot
	return nil
}

// Remove releases a device's slot (e.g. when it re-associates).
func (a *Allocator) Remove(id uint8) {
	if s, ok := a.slotOf[id]; ok {
		delete(a.bySlot, s)
		delete(a.slotOf, id)
		delete(a.snrOf, id)
	}
}

// UpdateSNR records a device's latest signal strength (used on the next
// full reshuffle).
func (a *Allocator) UpdateSNR(id uint8, snr float64) {
	if _, ok := a.slotOf[id]; ok {
		a.snrOf[id] = snr
	}
}

// neighbourGap measures how badly snr fits at slot s: the worst absolute
// SNR difference against the nearest assigned slots on either side (in
// slot order, which tracks circular distance). An empty neighbourhood
// fits perfectly.
func (a *Allocator) neighbourGap(s int, snr float64) float64 {
	worst := 0.0
	for d := 1; d <= 4; d++ {
		for _, nb := range []int{s - d, s + d} {
			if nb < 0 || nb >= a.book.Slots() {
				continue
			}
			if id, ok := a.bySlot[nb]; ok {
				gap := a.snrOf[id] - snr
				if gap < 0 {
					gap = -gap
				}
				// Closer neighbours matter more.
				gap /= float64(d)
				if gap > worst {
					worst = gap
				}
			}
		}
	}
	return worst
}

// SlotSNRs returns the (slot, snr) pairs of all assigned devices in slot
// order; used by tests to check the monotone power layout.
func (a *Allocator) SlotSNRs() (slots []int, snrs []float64) {
	for s := 0; s < a.book.Slots(); s++ {
		if id, ok := a.bySlot[s]; ok {
			slots = append(slots, s)
			snrs = append(snrs, a.snrOf[id])
		}
	}
	return slots, snrs
}
