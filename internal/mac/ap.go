package mac

import (
	"fmt"

	"netscatter/internal/core"
)

// DeviceRecord is the AP's view of one associated device.
type DeviceRecord struct {
	NetworkID uint8
	Slot      int
	SNRdB     float64
	Acked     bool
}

// AP is the access-point side of the NetScatter protocol: it owns the
// allocator, hands out network IDs, piggybacks association responses on
// queries and schedules full reshuffles when an insert does not fit
// (§3.3.2-§3.3.4, Fig. 10).
type AP struct {
	book    *core.CodeBook
	alloc   *Allocator
	records map[uint8]*DeviceRecord
	groupID uint8
	nextID  uint8

	pending  *Assignment // association response awaiting ACK
	shuffled bool        // a reshuffle must ride on the next query
}

// NewAP builds an AP over a code book.
func NewAP(book *core.CodeBook) *AP {
	return NewAPWith(book, NewAllocator(book))
}

// NewAPWith builds an AP over a caller-supplied allocator — e.g. the
// data-only allocator measurement deployments use, where every slot
// carries data and association happened before the measured rounds.
func NewAPWith(book *core.CodeBook, alloc *Allocator) *AP {
	return &AP{
		book:    book,
		alloc:   alloc,
		records: map[uint8]*DeviceRecord{},
	}
}

// Book returns the AP's code book.
func (ap *AP) Book() *core.CodeBook { return ap.book }

// Allocator exposes the shift allocator.
func (ap *AP) Allocator() *Allocator { return ap.alloc }

// Devices returns the number of associated (ACKed) devices.
func (ap *AP) Devices() int {
	n := 0
	for _, r := range ap.records {
		if r.Acked {
			n++
		}
	}
	return n
}

// Record returns a device record by network ID.
func (ap *AP) Record(id uint8) (*DeviceRecord, bool) {
	r, ok := ap.records[id]
	return r, ok
}

// NextQuery builds the query for the next round. The pending association
// response (if any) rides along; it is repeated on every query until the
// AP sees the device's ACK (§3.3.4). After a reshuffle, the full slot
// permutation is included once.
func (ap *AP) NextQuery() *Query {
	q := &Query{GroupID: ap.groupID}
	if ap.pending != nil {
		a := *ap.pending
		q.Assign = &a
	}
	if ap.shuffled {
		q.Shuffle = ap.slotPermutation()
		ap.shuffled = false
	}
	return q
}

// Reshuffle re-packs every device's slot by current signal strength and
// schedules the full permutation for the next query (§3.3.3: the AP
// "updates the cyclic shift assignments for all the devices in the
// network"). After repacking, assigned slots are exactly the first n
// assignable slots in slot order, which is what lets each device find
// its new slot from the permutation alone.
func (ap *AP) Reshuffle() {
	ids, snrs := ap.allIDsSNRs()
	if len(ids) == 0 {
		return
	}
	assign := ap.alloc.AssignAll(ids, snrs)
	for devID, s := range assign {
		if r, exists := ap.records[devID]; exists {
			r.Slot = s
		}
	}
	ap.shuffled = true
}

// OnAssociationRequest handles a decoded association transmission with
// the measured backscatter signal strength. It allocates a network ID
// and slot (possibly reshuffling everyone to fit the newcomer) and
// stages the assignment for the next query.
func (ap *AP) OnAssociationRequest(snrDB float64) (*Assignment, error) {
	if ap.pending != nil {
		// One association in flight at a time (the deployment turns
		// devices on one by one, §3.3.2).
		return nil, fmt.Errorf("mac: association already in progress")
	}
	id, err := ap.allocateID()
	if err != nil {
		return nil, err
	}
	slot, needShuffle, ok := ap.alloc.Insert(id, snrDB)
	if !ok {
		return nil, fmt.Errorf("mac: network full (%d devices)", ap.alloc.Len())
	}
	if needShuffle {
		ids, snrs := ap.allIDsSNRs()
		ids = append(ids, id)
		snrs = append(snrs, snrDB)
		assign := ap.alloc.AssignAll(ids, snrs)
		for devID, s := range assign {
			if r, exists := ap.records[devID]; exists {
				r.Slot = s
			}
		}
		slot = assign[id]
		ap.shuffled = true
	}
	ap.records[id] = &DeviceRecord{NetworkID: id, Slot: slot, SNRdB: snrDB}
	ap.pending = &Assignment{NetworkID: id, Slot: uint8(slot)}
	return ap.pending, nil
}

// AdoptAssignment warm-starts the AP's protocol state with an existing
// (id, slot, snr) assignment made out of band: the simulator's
// networks assign every device's slot in one association-time bulk
// AssignAll, and a trajectory runner that wants the AP's dynamic
// machinery (OnDeviceLost, re-association) afterwards must seed the
// AP's records and allocator with exactly those slots — going through
// OnAssociationRequest would assign different ones and desynchronize
// the AP from the waveforms already on the air. The record starts
// Acked (the device is already transmitting data). nextID is advanced
// past id so later dynamic associations never reissue an adopted ID.
func (ap *AP) AdoptAssignment(id uint8, slot int, snrDB float64) error {
	if _, exists := ap.records[id]; exists {
		return fmt.Errorf("mac: device %d already associated", id)
	}
	if err := ap.alloc.Adopt(id, slot, snrDB); err != nil {
		return err
	}
	ap.records[id] = &DeviceRecord{NetworkID: id, Slot: slot, SNRdB: snrDB, Acked: true}
	if id >= ap.nextID {
		ap.nextID = id + 1
	}
	return nil
}

// OnAssociationAck marks the pending device as fully associated.
func (ap *AP) OnAssociationAck(id uint8) {
	if r, ok := ap.records[id]; ok {
		r.Acked = true
	}
	if ap.pending != nil && ap.pending.NetworkID == id {
		ap.pending = nil
	}
}

// OnDeviceLost removes a device (re-association or timeout).
func (ap *AP) OnDeviceLost(id uint8) {
	ap.alloc.Remove(id)
	delete(ap.records, id)
	if ap.pending != nil && ap.pending.NetworkID == id {
		ap.pending = nil
	}
}

// UpdateSNR feeds back the signal strength measured during a data round.
func (ap *AP) UpdateSNR(id uint8, snrDB float64) {
	if r, ok := ap.records[id]; ok {
		r.SNRdB = snrDB
		ap.alloc.UpdateSNR(id, snrDB)
	}
}

// ActiveShifts returns the cyclic shifts of all ACKed devices plus the
// two association shifts (the AP always listens for newcomers there).
// The shift order is: data devices in network-ID order, then the
// high-SNR and low-SNR association shifts.
func (ap *AP) ActiveShifts() (shifts []int, ids []uint8) {
	for id := 0; id < 256; id++ {
		r, ok := ap.records[uint8(id)]
		if !ok || !r.Acked {
			continue
		}
		shifts = append(shifts, ap.book.ShiftOfSlot(r.Slot))
		ids = append(ids, r.NetworkID)
	}
	hi, lo := ap.book.AssociationSlots()
	shifts = append(shifts, ap.book.ShiftOfSlot(hi), ap.book.ShiftOfSlot(lo))
	return shifts, ids
}

// PendingAssignment exposes the in-flight association response (nil if
// none); used by tests and the association example.
func (ap *AP) PendingAssignment() *Assignment { return ap.pending }

func (ap *AP) allocateID() (uint8, error) {
	for i := 0; i < 256; i++ {
		id := ap.nextID
		ap.nextID++
		if _, taken := ap.records[id]; !taken {
			return id, nil
		}
	}
	return 0, fmt.Errorf("mac: no free network IDs")
}

func (ap *AP) allIDsSNRs() (ids []uint8, snrs []float64) {
	for id, r := range ap.records {
		ids = append(ids, id)
		snrs = append(snrs, r.SNRdB)
	}
	return ids, snrs
}

// slotPermutation serializes the current slot assignment as a
// permutation over device indices for the shuffle query. Index i of the
// result is the network ID owning the i-th assigned slot (in slot
// order); unassigned tail entries are filled with the remaining IDs so
// the result is a valid permutation of 0..n-1.
func (ap *AP) slotPermutation() []int {
	n := ap.alloc.Len()
	perm := make([]int, 0, n)
	seen := map[int]bool{}
	for s := 0; s < ap.book.Slots() && len(perm) < n; s++ {
		if id, ok := ap.alloc.bySlot[s]; ok {
			perm = append(perm, int(id))
			seen[int(id)] = true
		}
	}
	return normalizePerm(perm)
}

// normalizePerm maps arbitrary distinct ints to a permutation of
// 0..n-1 preserving order structure (rank transform), so it can be
// Lehmer-encoded.
func normalizePerm(vals []int) []int {
	type kv struct{ v, pos int }
	sorted := make([]kv, len(vals))
	for i, v := range vals {
		sorted[i] = kv{v, i}
	}
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].v < sorted[j-1].v; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	out := make([]int, len(vals))
	for rank, e := range sorted {
		out[e.pos] = rank
	}
	return out
}
