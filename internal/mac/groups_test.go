package mac

import (
	"testing"
	"testing/quick"

	"netscatter/internal/dsp"
)

func TestPlanGroupsCoversEveryDeviceOnce(t *testing.T) {
	rng := dsp.NewRand(1)
	n := 200
	ids := make([]uint8, n)
	snrs := make([]float64, n)
	for i := range ids {
		ids[i] = uint8(i)
		snrs[i] = rng.Uniform(-20, 30)
	}
	groups, err := PlanGroups(ids, snrs, 64, 15)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint8]int{}
	for _, g := range groups {
		if len(g.Members) == 0 || len(g.Members) > 64 {
			t.Fatalf("group %d size %d", g.ID, len(g.Members))
		}
		if g.SpreadDB() > 15 {
			t.Fatalf("group %d spread %.1f dB", g.ID, g.SpreadDB())
		}
		for _, id := range g.Members {
			seen[id]++
		}
	}
	if len(seen) != n {
		t.Fatalf("covered %d of %d devices", len(seen), n)
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("device %d in %d groups", id, c)
		}
	}
}

func TestPlanGroupsLargeNetwork(t *testing.T) {
	// The paper's scaling story: 1000 devices over 2 MHz total — here,
	// 512 devices in signal-strength groups of <= 256.
	rng := dsp.NewRand(2)
	n := 512
	ids := make([]uint8, n)
	snrs := make([]float64, n)
	for i := range ids {
		ids[i] = uint8(i % 256) // IDs repeat across groups in a real net
		snrs[i] = rng.Uniform(-15, 30)
	}
	groups, err := PlanGroups(ids, snrs, 256, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) < 2 {
		t.Fatalf("512 devices need >= 2 groups, got %d", len(groups))
	}
	total := 0
	for _, g := range groups {
		total += len(g.Members)
	}
	if total != n {
		t.Fatalf("scheduled %d of %d", total, n)
	}
}

func TestPlanGroupsSpreadPropertyQuick(t *testing.T) {
	rng := dsp.NewRand(3)
	f := func(nRaw, maxPerRaw uint8, spreadRaw uint16) bool {
		n := int(nRaw)%100 + 1
		maxPer := int(maxPerRaw)%40 + 1
		maxSpread := float64(spreadRaw%30) + 1
		ids := make([]uint8, n)
		snrs := make([]float64, n)
		for i := range ids {
			ids[i] = uint8(i)
			snrs[i] = rng.Uniform(-30, 30)
		}
		groups, err := PlanGroups(ids, snrs, maxPer, maxSpread)
		if err != nil {
			return false
		}
		count := 0
		for _, g := range groups {
			if len(g.Members) > maxPer || g.SpreadDB() > maxSpread+1e-9 {
				return false
			}
			count += len(g.Members)
		}
		return count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanGroupsErrors(t *testing.T) {
	if _, err := PlanGroups([]uint8{1}, []float64{1, 2}, 4, 10); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := PlanGroups([]uint8{1}, []float64{1}, 0, 10); err == nil {
		t.Error("zero group size accepted")
	}
}

func TestScheduleRoundRobin(t *testing.T) {
	groups := []Group{{ID: 0}, {ID: 1}, {ID: 2}}
	s := NewSchedule(groups)
	if s.RoundsPerSweep() != 3 {
		t.Fatalf("rounds per sweep = %d", s.RoundsPerSweep())
	}
	var order []uint8
	for i := 0; i < 6; i++ {
		order = append(order, s.Next().ID)
	}
	want := []uint8{0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("schedule order %v", order)
		}
	}
}
