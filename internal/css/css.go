// Package css implements the classic single-transmitter chirp spread
// spectrum modem (LoRa-style modulation, §2.1 of the paper): each symbol
// carries SF bits selected by one of 2^SF cyclic shifts. It also provides
// the link-level math — sensitivity, bitrate, rate adaptation — used by
// the LoRa-backscatter baselines and Table 1.
package css

import (
	"fmt"
	"math"

	"netscatter/internal/chirp"
	"netscatter/internal/radio"
)

// Modem is a classic CSS modulator/demodulator pair for one parameter
// set. Unlike NetScatter's distributed coding, a Modem encodes SF bits
// per symbol from a single transmitter.
type Modem struct {
	p   chirp.Params
	mod *chirp.Modulator
	dem *chirp.Demodulator
}

// NewModem builds a modem; zeroPad controls demodulation sub-bin
// resolution (1 disables padding).
func NewModem(p chirp.Params, zeroPad int) *Modem {
	return &Modem{
		p:   p,
		mod: chirp.NewModulator(p),
		dem: chirp.NewDemodulator(p, zeroPad),
	}
}

// Params returns the modem's parameter set.
func (m *Modem) Params() chirp.Params { return m.p }

// ModulateSymbols appends one upchirp per symbol value (each in
// [0, 2^SF)) to dst and returns the extended waveform.
func (m *Modem) ModulateSymbols(dst []complex128, symbols []int) []complex128 {
	for _, s := range symbols {
		dst = m.mod.AppendSymbol(dst, s)
	}
	return dst
}

// DemodulateSymbols recovers one symbol value per symbol period from the
// waveform (whose length must be a multiple of the symbol length).
func (m *Modem) DemodulateSymbols(sig []complex128) ([]int, error) {
	n := m.p.N()
	if len(sig)%n != 0 {
		return nil, fmt.Errorf("css: waveform length %d not a multiple of symbol length %d", len(sig), n)
	}
	out := make([]int, len(sig)/n)
	for i := range out {
		bin, _ := m.dem.DemodSymbol(sig[i*n : (i+1)*n])
		out[i] = bin
	}
	return out, nil
}

// BitsToSymbols packs a bit slice (0/1 per byte) into SF-bit symbol
// values, MSB first, zero-padding the tail.
func BitsToSymbols(bits []byte, sf int) []int {
	nsym := (len(bits) + sf - 1) / sf
	out := make([]int, nsym)
	for i := 0; i < nsym; i++ {
		var v int
		for j := 0; j < sf; j++ {
			v <<= 1
			k := i*sf + j
			if k < len(bits) && bits[k] != 0 {
				v |= 1
			}
		}
		out[i] = v
	}
	return out
}

// SymbolsToBits unpacks SF-bit symbol values back into nBits bits.
func SymbolsToBits(symbols []int, sf, nBits int) []byte {
	out := make([]byte, nBits)
	for i := range out {
		sym := i / sf
		if sym >= len(symbols) {
			break
		}
		shift := sf - 1 - i%sf
		out[i] = byte(symbols[sym]>>shift) & 1
	}
	return out
}

// DemodSNRFloorDB returns the minimum demodulation SNR for a spreading
// factor, anchored so the (500 kHz, SF 9) configuration reproduces the
// paper's -123 dBm sensitivity with a 6 dB noise figure. Each SF step
// buys ~3 dB of processing gain.
func DemodSNRFloorDB(sf int) float64 {
	// SF9 -> -12 dB; 3 dB per SF.
	return -12 + 3*float64(9-sf)
}

// SensitivityDBm returns the receiver sensitivity for a CSS
// configuration: thermal noise floor plus the demodulation SNR floor.
// Reproduces Table 1's sensitivity column (±1 dB for the SF 6 row — see
// EXPERIMENTS.md for the discrepancy note).
func SensitivityDBm(p chirp.Params) float64 {
	return radio.ThermalNoiseDBm(p.BW, radio.DefaultNoiseFigureDB) + DemodSNRFloorDB(p.SF)
}

// Table1Configs lists the six modulation configurations of Table 1.
func Table1Configs() []chirp.Params {
	return []chirp.Params{
		{SF: 9, BW: 500e3, Oversample: 1},
		{SF: 8, BW: 500e3, Oversample: 1},
		{SF: 8, BW: 250e3, Oversample: 1},
		{SF: 7, BW: 250e3, Oversample: 1},
		{SF: 7, BW: 125e3, Oversample: 1},
		{SF: 6, BW: 125e3, Oversample: 1},
	}
}

// RateOption is one (SF, BW) choice available to the ideal
// rate-adaptation baseline.
type RateOption struct {
	Params     chirp.Params
	BitRate    float64 // SF·BW/2^SF
	MinSNRdB   float64 // demodulation floor at this BW
	SensDBm    float64
	ChirpSlope float64 // BW²/2^SF — configs sharing a slope cannot coexist (§2.2)
}

// MaxLoRaBitRate caps the rate-adaptation baseline, following the
// paper's statement that high-SNR devices pick at most 32 kbps.
const MaxLoRaBitRate = 32e3

// RateTable enumerates the rate options at a fixed bandwidth for
// SF 6..12, highest rate first.
func RateTable(bw float64) []RateOption {
	var out []RateOption
	for sf := 6; sf <= 12; sf++ {
		p := chirp.Params{SF: sf, BW: bw, Oversample: 1}
		rate := p.LoRaBitRate()
		if rate > MaxLoRaBitRate {
			rate = MaxLoRaBitRate
		}
		out = append(out, RateOption{
			Params:     p,
			BitRate:    rate,
			MinSNRdB:   DemodSNRFloorDB(sf),
			SensDBm:    SensitivityDBm(p),
			ChirpSlope: bw * bw / float64(p.Chips()),
		})
	}
	return out
}

// BestRate returns the highest-bitrate option whose SNR floor the given
// link SNR satisfies, or ok=false if even the slowest option fails. This
// is the "ideal rate adaptation" oracle of §4.4 (using the SX1276-style
// SNR table).
func BestRate(snrDB float64, opts []RateOption) (RateOption, bool) {
	best := RateOption{}
	found := false
	for _, o := range opts {
		if snrDB >= o.MinSNRdB && (!found || o.BitRate > best.BitRate) {
			best = o
			found = true
		}
	}
	return best, found
}

// ConcurrentSlopePairs counts how many (BW, SF) pairs from the given
// lists can be concurrently decoded, i.e. have pairwise-distinct chirp
// slopes BW²/2^SF (§2.2: same-slope configs collide, citing the Semtech
// patent). The paper counts 19 usable pairs overall and 8 after imposing
// sensitivity <= -123 dBm and bitrate >= 1 kbps.
func ConcurrentSlopePairs(bws []float64, sfs []int, minSensDBm, minBitRate float64) []chirp.Params {
	seen := map[int64]bool{}
	var out []chirp.Params
	for _, bw := range bws {
		for _, sf := range sfs {
			p := chirp.Params{SF: sf, BW: bw, Oversample: 1}
			if minSensDBm != 0 && SensitivityDBm(p) > minSensDBm {
				continue
			}
			if minBitRate != 0 && p.LoRaBitRate() < minBitRate {
				continue
			}
			slope := bw * bw / float64(p.Chips())
			key := int64(math.Round(slope))
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, p)
		}
	}
	return out
}
