package css

import (
	"math"
	"testing"
	"testing/quick"

	"netscatter/internal/air"
	"netscatter/internal/chirp"
	"netscatter/internal/dsp"
)

var tp = chirp.Params{SF: 7, BW: 125e3, Oversample: 1}

func TestBitsSymbolsRoundTrip(t *testing.T) {
	f := func(data []byte, sfRaw uint8) bool {
		sf := int(sfRaw)%7 + 6 // 6..12
		if len(data) > 16 {
			data = data[:16]
		}
		var bits []byte
		for _, b := range data {
			for i := 7; i >= 0; i-- {
				bits = append(bits, (b>>uint(i))&1)
			}
		}
		syms := BitsToSymbols(bits, sf)
		back := SymbolsToBits(syms, sf, len(bits))
		for i := range bits {
			if bits[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestModemRoundTripClean(t *testing.T) {
	m := NewModem(tp, 1)
	symbols := []int{0, 1, 127, 64, 42, 99}
	wave := m.ModulateSymbols(nil, symbols)
	got, err := m.DemodulateSymbols(wave)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range symbols {
		if got[i] != s {
			t.Fatalf("symbol %d: got %d want %d", i, got[i], s)
		}
	}
}

func TestModemRoundTripNoisy(t *testing.T) {
	// Classic LoRa at 0 dB SNR (21 dB processing gain at SF 7).
	m := NewModem(tp, 1)
	rng := dsp.NewRand(1)
	symbols := make([]int, 50)
	for i := range symbols {
		symbols[i] = rng.Intn(tp.Chips())
	}
	wave := m.ModulateSymbols(nil, symbols)
	ch := air.NewChannel(tp, rng)
	sig := ch.Receive(len(wave), []air.Transmission{{Waveform: wave, SNRdB: 0, FixedPhase: true}})
	got, err := m.DemodulateSymbols(sig[:len(wave)])
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i := range symbols {
		if got[i] != symbols[i] {
			errs++
		}
	}
	if errs > 1 {
		t.Fatalf("%d/%d symbol errors at 0 dB", errs, len(symbols))
	}
}

func TestModemQuickRoundTrip(t *testing.T) {
	m := NewModem(chirp.Params{SF: 6, BW: 125e3, Oversample: 1}, 1)
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 8 {
			raw = raw[:8]
		}
		symbols := make([]int, len(raw))
		for i, r := range raw {
			symbols[i] = int(r) % 64
		}
		wave := m.ModulateSymbols(nil, symbols)
		got, err := m.DemodulateSymbols(wave)
		if err != nil {
			return false
		}
		for i := range symbols {
			if got[i] != symbols[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDemodulateRejectsBadLength(t *testing.T) {
	m := NewModem(tp, 1)
	if _, err := m.DemodulateSymbols(make([]complex128, tp.N()+1)); err == nil {
		t.Fatal("partial symbol accepted")
	}
}

func TestSensitivityTable1(t *testing.T) {
	// The paper's Table 1 sensitivities (the SF 6 row deviates by 2 dB
	// from the 3 dB/SF rule; see EXPERIMENTS.md).
	cases := []struct {
		p    chirp.Params
		want float64
	}{
		{chirp.Params{SF: 9, BW: 500e3, Oversample: 1}, -123},
		{chirp.Params{SF: 8, BW: 500e3, Oversample: 1}, -120},
		{chirp.Params{SF: 8, BW: 250e3, Oversample: 1}, -123},
		{chirp.Params{SF: 7, BW: 250e3, Oversample: 1}, -120},
		{chirp.Params{SF: 7, BW: 125e3, Oversample: 1}, -123},
	}
	for _, tc := range cases {
		if got := SensitivityDBm(tc.p); math.Abs(got-tc.want) > 0.6 {
			t.Errorf("sensitivity(%s) = %.1f, want %.0f", tc.p, got, tc.want)
		}
	}
}

func TestTable1ConfigsBitrates(t *testing.T) {
	for i, p := range Table1Configs() {
		want := 976.5625
		if i%2 == 1 {
			want = 1953.125
		}
		if got := p.OOKBitRate(); math.Abs(got-want) > 0.01 {
			t.Errorf("config %d bitrate = %v, want %v", i, got, want)
		}
	}
}

func TestDemodSNRFloorMonotonic(t *testing.T) {
	// Each extra SF buys sensitivity.
	for sf := 7; sf <= 12; sf++ {
		if DemodSNRFloorDB(sf) >= DemodSNRFloorDB(sf-1) {
			t.Fatalf("SNR floor not improving at SF %d", sf)
		}
	}
	if got := DemodSNRFloorDB(9); got != -12 {
		t.Fatalf("SF9 floor = %v, want -12 (anchors -123 dBm)", got)
	}
}

func TestRateTableAndBestRate(t *testing.T) {
	opts := RateTable(500e3)
	if len(opts) != 7 {
		t.Fatalf("rate table size %d", len(opts))
	}
	// High SNR picks the fastest (capped) rate.
	best, ok := BestRate(20, opts)
	if !ok || best.BitRate != MaxLoRaBitRate {
		t.Fatalf("high-SNR rate = %v", best.BitRate)
	}
	// Low SNR picks a robust slow rate.
	best, ok = BestRate(-19, opts)
	if !ok || best.Params.SF != 12 {
		t.Fatalf("low-SNR pick = SF%d", best.Params.SF)
	}
	// Below every floor: not servable.
	if _, ok := BestRate(-30, opts); ok {
		t.Fatal("-30 dB should not be servable")
	}
	// Monotonic: higher SNR never picks a slower rate.
	prev := 0.0
	for snr := -25.0; snr <= 10; snr += 0.5 {
		b, ok := BestRate(snr, opts)
		if !ok {
			continue
		}
		if b.BitRate < prev {
			t.Fatalf("rate decreased at %v dB", snr)
		}
		prev = b.BitRate
	}
}

func TestConcurrentSlopePairs(t *testing.T) {
	// §2.2: distinct-slope (BW, SF) pairs; with the paper's
	// sensitivity and bitrate constraints only a handful remain.
	bws := []float64{500e3, 250e3, 125e3}
	sfs := []int{6, 7, 8, 9, 10, 11, 12}
	all := ConcurrentSlopePairs(bws, sfs, 0, 0)
	constrained := ConcurrentSlopePairs(bws, sfs, -123, 1000)
	if len(constrained) >= len(all) {
		t.Fatalf("constraints did not reduce the set: %d vs %d", len(constrained), len(all))
	}
	if len(constrained) == 0 || len(constrained) > 8 {
		t.Fatalf("constrained set size %d, paper bounds it to ~8", len(constrained))
	}
	// All slopes distinct.
	seen := map[float64]bool{}
	for _, p := range all {
		slope := p.BW * p.BW / float64(p.Chips())
		if seen[slope] {
			t.Fatal("duplicate slope in result")
		}
		seen[slope] = true
	}
}
