package exper

import (
	"context"
	"fmt"

	"netscatter/internal/campaign"
)

func init() {
	register(Experiment{
		ID:    "G1",
		Title: "Declarative campaign: the M1 multi-AP grid as a scenario spec",
		Run:   runCampaignMultiAP,
		Ref:   "ROADMAP campaign runner; §5 scenario grid",
	})
}

// MultiAPSpec re-expresses exper M1's scenario grid — device count ×
// AP count on the office deployment — as a declarative campaign spec:
// the same axes the hard-coded sweep iterates, but runnable by the
// campaign runner in-process or against a live netscatter-serve
// instance, shardable, and resumable. Trials become per-cell rounds;
// per-cell seeds derive from the campaign seed through the splittable
// stream, so the grid is deterministic at any worker count.
func MultiAPSpec(seed int64, quick bool) *campaign.Spec {
	ns := []int{16, 64, 128, 192}
	rounds := 2
	if quick {
		ns = []int{16, 64}
		rounds = 1
	}
	return &campaign.Spec{
		Name:         "m1-multiap",
		PayloadBytes: 4,
		Devices:      ns,
		APs:          []int{1, 2, 4},
		Rounds:       []int{rounds},
		Seeds:        []int64{seed},
	}
}

// runCampaignMultiAP runs the M1 grid through the campaign runner
// (in-process executor) and renders the merged artifact as a table —
// the declarative twin of runMultiAP, proving the spec covers the
// hard-coded sweep's axes.
func runCampaignMultiAP(cfg Config) (*Result, error) {
	spec := MultiAPSpec(cfg.Seed, cfg.Quick)
	r := &campaign.Runner{Spec: spec}
	art, err := r.Run(context.Background())
	if err != nil {
		return nil, err
	}

	res := &Result{ID: "G1", Title: "Declarative campaign over the M1 multi-AP grid"}
	tab := Table{
		Name:    fmt.Sprintf("campaign %q: %d cells", art.Campaign, len(art.Results)),
		Columns: []string{"APs", "devices", "rounds", "PER", "detect frac", "goodput frac"},
	}
	for _, cr := range art.Results {
		s := cr.Snapshot
		detect, good := 0.0, 0.0
		if s.Devices > 0 {
			detect = float64(s.Detected) / float64(s.Devices)
		}
		if s.ScheduledBits > 0 {
			good = float64(s.TotalBits-s.BitErrors) / float64(s.ScheduledBits)
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", cr.APs),
			fmt.Sprintf("%d", cr.Devices),
			fmt.Sprintf("%d", cr.Rounds),
			fmt.Sprintf("%.3f", s.PER),
			fmt.Sprintf("%.3f", detect),
			fmt.Sprintf("%.3f", good),
		})
	}
	res.Tables = append(res.Tables, tab)
	res.Notes = append(res.Notes,
		"axes and geometry match exper M1; cells run independently with stream-derived seeds, so absolute numbers differ from M1's shared-deployment trials",
		fmt.Sprintf("grid total: %d rounds, PER %.3f", art.Totals.Rounds, art.Totals.PER),
		"the same spec runs against a live netscatter-serve via netscatter-campaign -base (byte-identical artifact, test-enforced)")
	return res, nil
}
