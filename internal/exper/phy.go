package exper

import (
	"fmt"
	"math"

	"netscatter/internal/air"
	"netscatter/internal/chirp"
	"netscatter/internal/choir"
	"netscatter/internal/core"
	"netscatter/internal/dsp"
	"netscatter/internal/hw"
	"netscatter/internal/radio"
)

func init() {
	register(Experiment{
		ID:    "F4",
		Title: "Choir FFT-bin variation: radios vs backscatter",
		Ref:   "Fig. 4",
		Run:   runFig4,
	})
	register(Experiment{
		ID:    "F9",
		Title: "Per-device SNR variance under office mobility",
		Ref:   "Fig. 9",
		Run:   runFig9,
	})
	register(Experiment{
		ID:    "F12",
		Title: "Near-far BER vs SNR with power-aware shift assignment",
		Ref:   "Fig. 12",
		Run:   runFig12,
	})
	register(Experiment{
		ID:    "F15A",
		Title: "Doppler effect on FFT-bin variation",
		Ref:   "Fig. 15a",
		Run:   runFig15a,
	})
	register(Experiment{
		ID:    "F15B",
		Title: "Tolerable power difference vs FFT-bin separation",
		Ref:   "Fig. 15b",
		Run:   runFig15b,
	})
	register(Experiment{
		ID:    "F16",
		Title: "Backscatter spectrum at the three power gains",
		Ref:   "Fig. 16",
		Run:   runFig16,
	})
}

func runFig4(cfg Config) (*Result, error) {
	rng := dsp.NewRand(cfg.Seed)
	p := chirp.Default500k9
	nDev, packets := 100, 20
	if cfg.Quick {
		nDev, packets = 30, 5
	}
	var radios, tags []float64
	for d := 0; d < nDev; d++ {
		// LoRa radios synthesize the full 900 MHz carrier from a
		// (TCXO-grade) crystal; backscatter tags synthesize only a
		// ~3 MHz subcarrier from a cheap crystal — the paper's 90x
		// frequency-offset argument (§2.2).
		ro := radio.NewRadioOscillator(rng, 3, 7.5)
		bo := radio.NewBackscatterOscillator(rng, 20, 50)
		for k := 0; k < packets; k++ {
			radios = append(radios, math.Abs(p.FreqOffsetToBins(ro.PacketOffsetHz(rng))))
			tags = append(tags, math.Abs(p.FreqOffsetToBins(bo.PacketOffsetHz(rng))))
		}
	}
	rc, tc := dsp.NewCDF(radios), dsp.NewCDF(tags)
	res := &Result{ID: "F4", Title: "ΔFFTbin CDF: LoRa radios vs backscatter (Fig. 4)"}
	t := Table{Columns: []string{"ΔFFTbin", "CDF radios", "CDF backscatter"}}
	for _, x := range []float64{0.1, 0.33, 0.5, 1, 2, 3, 4, 5, 6, 7} {
		t.Rows = append(t.Rows, []string{f(x), f(rc.At(x)), f(tc.At(x))})
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes, fmt.Sprintf(
		"backscatter variation stays below 1/3 bin for %.1f%% of packets (paper: always); radios spread across ~7 bins",
		100*tc.At(1.0/3)))
	_ = choir.FracResolution // semantic anchor: tenth-bin resolution underlies Fig. 4's axis
	return res, nil
}

func runFig9(cfg Config) (*Result, error) {
	rng := dsp.NewRand(cfg.Seed)
	steps := 1800 // 30 min at one sample per second
	if cfg.Quick {
		steps = 300
	}
	res := &Result{ID: "F9", Title: "Per-device SNR variance CDF (Fig. 9)"}
	t := Table{Columns: []string{"device", "p5[dB]", "p25[dB]", "p50[dB]", "p75[dB]", "p95[dB]"}}
	for dev := 1; dev <= 8; dev++ {
		trace := radio.SNRTrace(0, steps, 10, 0.98, rng.Fork())
		mean := dsp.Mean(trace)
		dev0 := make([]float64, len(trace))
		for i, v := range trace {
			dev0[i] = v - mean
		}
		cdf := dsp.NewCDF(dev0)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", dev),
			f(cdf.Quantile(0.05)), f(cdf.Quantile(0.25)), f(cdf.Quantile(0.50)),
			f(cdf.Quantile(0.75)), f(cdf.Quantile(0.95)),
		})
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"office fading (Ricean K=10 dB, AR(1) ρ=0.98) keeps 90% of SNR variation within roughly ±2-3 dB,",
		"the Fig. 9 band the fine-grained power adaptation is designed to track")
	return res, nil
}

// nearFarBER measures device 1's payload BER at the given SNR while
// device 2 transmits diffDB stronger at another cyclic shift, with
// Gaussian frequency mismatch on both (σ = 300 Hz, §3.2.3's simulation).
func nearFarBER(snrDB, diffDB float64, shift2, symbols int, rng *dsp.Rand) float64 {
	p := chirp.Default500k9
	book, _ := core.NewCodeBook(p, 2)
	dec := core.NewDecoder(book, core.DefaultDecoderConfig(2))
	const shift1 = 2
	batch := 96
	var errs, total int
	// Encoders, channel, transmission slots and the receive buffer are
	// hoisted out of the trial loop (the Mixed closures read the bit
	// sections through variables rewritten per trial): same rng draw
	// order, same bits, no per-trial frame-sized allocations.
	enc1 := core.NewEncoder(p, shift1)
	enc2 := core.NewEncoder(p, shift2)
	var bits1, bits2 []byte
	txs := []air.Transmission{{SNRdB: snrDB}}
	txs[0].Mixed = func(dst []complex128, frac, freqHz float64, gain complex128) []complex128 {
		return enc1.FrameBitsWaveformMixedInto(dst, bits1, frac, freqHz, gain)
	}
	if diffDB > 0 {
		txs = append(txs, air.Transmission{SNRdB: snrDB + diffDB})
		txs[1].Mixed = func(dst []complex128, frac, freqHz float64, gain complex128) []complex128 {
			return enc2.FrameBitsWaveformMixedInto(dst, bits2, frac, freqHz, gain)
		}
	}
	ch := air.NewChannel(p, rng)
	sig := make([]complex128, ch.FrameLength(core.PreambleSymbols+batch, 2))
	for total < symbols {
		bits1 = rng.Bits(batch)
		bits2 = rng.Bits(batch)
		txs[0].FreqOffsetHz = rng.Normal(0, 300)
		if diffDB > 0 {
			txs[1].FreqOffsetHz = rng.Normal(0, 300)
		}
		ch.ReceiveInto(sig, txs)
		res, err := dec.DecodeFrame(sig, 0, []int{shift1}, batch)
		if err != nil {
			return 1
		}
		dev := res.Devices[0]
		if !dev.Detected {
			errs += batch // an undetected frame loses all its bits
		} else {
			for i := range bits1 {
				if dev.Bits[i] != bits1[i] {
					errs++
				}
			}
		}
		total += batch
	}
	return float64(errs) / float64(total)
}

func runFig12(cfg Config) (*Result, error) {
	rng := dsp.NewRand(cfg.Seed)
	symbols := 10000
	if cfg.Quick {
		symbols = 960
	}
	res := &Result{ID: "F12", Title: "Near-far BER vs SNR (Fig. 12)"}
	t := Table{Columns: []string{"SNR[dB]", "single device", "+35dB", "+40dB", "+45dB"}}
	snrs := []float64{-20, -18, -16, -14, -12, -10}
	if cfg.Quick {
		snrs = []float64{-18, -14, -10}
	}
	for _, snr := range snrs {
		row := []string{f(snr)}
		for _, diff := range []float64{0, 35, 40, 45} {
			row = append(row, sci(nearFarBER(snr, diff, 258, symbols, rng)))
		}
		t.Rows = append(t.Rows, row)
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"device 1 at bin 2, device 2 at bin 258 (the power-aware assignment's far separation);",
		"BER stays near the single-device curve up to ~40 dB difference, degrading at 45 dB — the paper's Fig. 12 shape")
	return res, nil
}

func runFig15a(cfg Config) (*Result, error) {
	rng := dsp.NewRand(cfg.Seed)
	p := chirp.Default500k9
	samples := 100000
	if cfg.Quick {
		samples = 5000
	}
	res := &Result{ID: "F15A", Title: "Doppler effect on ΔFFTbin (Fig. 15a)"}
	t := Table{Columns: []string{"speed[m/s]", "doppler[Hz]", "1-CDF@0.5", "1-CDF@1.0", "1-CDF@1.5"}}
	for _, speed := range []float64{0, 1, 3, 5} {
		dopp := radio.DopplerShiftHz(speed, radio.CarrierHz)
		vals := make([]float64, samples)
		for i := range vals {
			osc := radio.NewBackscatterOscillator(rng, 20, 50)
			dt := hw.DefaultDelayModel.Draw(rng)
			df := osc.PacketOffsetHz(rng) + dopp
			vals[i] = math.Abs(-p.TimeOffsetToBins(dt) + p.FreqOffsetToBins(df))
		}
		cdf := dsp.NewCDF(vals)
		t.Rows = append(t.Rows, []string{
			f(speed), f(dopp),
			sci(cdf.Complementary(0.5)), sci(cdf.Complementary(1.0)), sci(cdf.Complementary(1.5)),
		})
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"at 900 MHz even 5 m/s shifts frequency by only 15 Hz (~0.015 bin), so the speed curves coincide — Fig. 15a's conclusion")
	return res, nil
}

func runFig15b(cfg Config) (*Result, error) {
	rng := dsp.NewRand(cfg.Seed)
	bits := 2000
	if cfg.Quick {
		bits = 480
	}
	const strongSNR = 20.0
	res := &Result{ID: "F15B", Title: "Tolerable power difference vs bin separation (Fig. 15b)"}
	t := Table{Columns: []string{"separation[bins]", "max ΔP[dB] @ BER<1%"}}
	seps := []int{2, 4, 8, 16, 32, 64, 128, 192, 256}
	if cfg.Quick {
		seps = []int{2, 8, 64, 256}
	}
	for _, sep := range seps {
		// Binary-search the largest power difference the weak device
		// tolerates while the strong one transmits at +strongSNR.
		lo, hi := 0.0, 45.0
		for it := 0; it < 7; it++ {
			mid := (lo + hi) / 2
			ber := weakDeviceBER(strongSNR, mid, sep, bits, rng)
			if ber < 0.01 {
				lo = mid
			} else {
				hi = mid
			}
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", sep), f(lo)})
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"tolerance grows with separation and saturates ~35 dB mid-spectrum where the noise floor, not the strong",
		"device's side lobes, limits the weak device (paper: 35 dB max, ~5 dB at 2 bins)")
	return res, nil
}

// weakDeviceBER: strong device at bin 0 and +strongSNR; weak device at
// bin sep and strongSNR-diffDB; returns the weak device's BER.
func weakDeviceBER(strongSNR, diffDB float64, sep, symbols int, rng *dsp.Rand) float64 {
	p := chirp.Default500k9
	book, _ := core.NewCodeBook(p, 2)
	dec := core.NewDecoder(book, core.DefaultDecoderConfig(2))
	batch := 96
	var errs, total int
	// Hoisted like nearFarBER: per-trial state is the bit sections and
	// frequency offsets, not encoders, channels or buffers.
	encS := core.NewEncoder(p, 0)
	encW := core.NewEncoder(p, sep)
	var bitsW, bitsS []byte
	txs := []air.Transmission{{SNRdB: strongSNR}, {SNRdB: strongSNR - diffDB}}
	txs[0].Mixed = func(dst []complex128, frac, freqHz float64, gain complex128) []complex128 {
		return encS.FrameBitsWaveformMixedInto(dst, bitsS, frac, freqHz, gain)
	}
	txs[1].Mixed = func(dst []complex128, frac, freqHz float64, gain complex128) []complex128 {
		return encW.FrameBitsWaveformMixedInto(dst, bitsW, frac, freqHz, gain)
	}
	ch := air.NewChannel(p, rng)
	sig := make([]complex128, ch.FrameLength(core.PreambleSymbols+batch, 2))
	for total < symbols {
		bitsW = rng.Bits(batch)
		bitsS = rng.Bits(batch)
		txs[0].FreqOffsetHz = rng.Normal(0, 300)
		txs[1].FreqOffsetHz = rng.Normal(0, 300)
		ch.ReceiveInto(sig, txs)
		res, err := dec.DecodeFrame(sig, 0, []int{sep}, batch)
		if err != nil {
			return 1
		}
		dev := res.Devices[0]
		if !dev.Detected {
			errs += batch
		} else {
			for i := range bitsW {
				if dev.Bits[i] != bitsW[i] {
					errs++
				}
			}
		}
		total += batch
	}
	return float64(errs) / float64(total)
}

func runFig16(cfg Config) (*Result, error) {
	rng := dsp.NewRand(cfg.Seed)
	p := chirp.Default500k9
	mod := chirp.NewModulator(p)
	res := &Result{ID: "F16", Title: "Backscattered spectrum at the power levels (Fig. 16)"}
	t := Table{Columns: []string{"gain setting[dB]", "in-band peak PSD[dB]", "median out-of-band[dB]"}}
	var ref float64
	for i, level := range hw.PowerLevels() {
		// A run of chirp symbols at this power level plus a light
		// noise floor.
		var wave []complex128
		for s := 0; s < 16; s++ {
			wave = mod.AppendSymbol(wave, 0)
		}
		chirp.Scale(wave, radio.AmplitudeForSNRdB(30+level.GainDB))
		noise := dsp.StreamAt(rng.Int63(), 0)
		radio.AddAWGN(&noise, wave, 1)
		psd := dsp.FFTShift(dsp.WelchPSD(wave, 512))
		_, peak := dsp.ArgmaxFloat(psd)
		peakDB := 10 * math.Log10(peak)
		if i == 0 {
			ref = peakDB
		}
		// "Out of band" proxy: median PSD (chirps sweep the whole band,
		// so the floor is the noise).
		cdf := dsp.NewCDF(psd)
		medDB := 10 * math.Log10(cdf.Quantile(0.5))
		t.Rows = append(t.Rows, []string{
			f(level.GainDB), f(peakDB - ref), f(medDB - ref),
		})
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"peak PSD steps track the 0/-4/-10 dB settings with a clean spectrum (no spurious tones) — Fig. 16's claim")
	return res, nil
}
