package exper

import (
	"fmt"
	"sync"

	"netscatter/internal/deploy"
	"netscatter/internal/dsp"
	"netscatter/internal/pool"
	"netscatter/internal/radio"
	"netscatter/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "F17",
		Title: "Network PHY rate vs number of devices",
		Ref:   "Fig. 17",
		Run:   runFig17,
	})
	register(Experiment{
		ID:    "F18",
		Title: "Link-layer data rate vs number of devices",
		Ref:   "Fig. 18",
		Run:   runFig18,
	})
	register(Experiment{
		ID:    "F19",
		Title: "Network latency vs number of devices",
		Ref:   "Fig. 19",
		Run:   runFig19,
	})
}

// sweepPoint is the full set of scheme metrics at one network size.
type sweepPoint struct {
	N          int
	FramesOK   float64 // mean CRC-valid frames per NetScatter round
	BER        float64
	NS1, NS2   sim.SchemeMetrics // NetScatter measured, Config 1 and 2
	Ideal1     sim.SchemeMetrics
	Fixed      sim.SchemeMetrics
	RateAdapt  sim.SchemeMetrics
	Deployment int
}

type sweepKey struct {
	seed  int64
	quick bool
}

var (
	sweepMu    sync.Mutex
	sweepCache = map[sweepKey][]sweepPoint{}
)

// networkSweep runs the §4.4 deployment once per (seed, quick) and
// caches it: Figs. 17, 18 and 19 are three views of the same experiment.
func networkSweep(cfg Config) ([]sweepPoint, error) {
	key := sweepKey{cfg.Seed, cfg.Quick}
	sweepMu.Lock()
	defer sweepMu.Unlock()
	if pts, ok := sweepCache[key]; ok {
		return pts, nil
	}

	rng := dsp.NewRand(cfg.Seed)
	dep := deploy.Generate(deploy.DefaultOffice, radio.DefaultLinkBudget, 256, 500e3, rng)
	ns := []int{1, 16, 32, 64, 96, 128, 160, 192, 224, 256}
	trials := 3
	if cfg.Quick {
		ns = []int{1, 16, 64, 128, 256}
		trials = 1
	}

	scfg := sim.DefaultConfig()
	// §4.4 link-layer experiments set payload+CRC to 40 bits.
	scfg.PayloadBytes = 4
	t := scfg.Timing
	p := scfg.Params
	payload := scfg.PayloadBytes
	payloadBits := payload*8 + 8

	// Every (network size, trial) unit owns its seed, network and rng, so
	// the units fan out across the shared worker pool; aggregation below
	// runs in deterministic unit order, keeping the tables identical to a
	// serial sweep at any GOMAXPROCS.
	type trialOut struct {
		stats sim.RoundStats
		err   error
	}
	outs := make([]trialOut, len(ns)*trials)
	pool.ForEach(len(outs), func(u int) {
		n := ns[u/trials]
		trial := u % trials
		net, err := sim.NewNetwork(scfg, dep, n, cfg.Seed*1000+int64(n)*10+int64(trial))
		if err != nil {
			outs[u].err = err
			return
		}
		outs[u].stats, outs[u].err = net.RunRound(n)
	})
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
	}

	var pts []sweepPoint
	for nIdx, n := range ns {
		var okSum, berSum, goodSum float64
		for trial := 0; trial < trials; trial++ {
			stats := outs[nIdx*trials+trial].stats
			okSum += float64(stats.FramesOK)
			berSum += stats.BER()
			goodSum += stats.GoodFraction()
		}
		meanOK := okSum / float64(trials)
		goodBits := int(goodSum/float64(trials)*float64(n*payloadBits) + 0.5)
		stats := sim.RoundStats{
			Devices:       n,
			FramesOK:      int(meanOK + 0.5),
			TotalBits:     goodBits,
			ScheduledBits: n * payloadBits,
			RoundSecs:     t.NetScatterRoundSeconds(p, sim.Config1, payload),
		}
		stats2 := stats
		stats2.RoundSecs = t.NetScatterRoundSeconds(p, sim.Config2, payload)

		pts = append(pts, sweepPoint{
			N:          n,
			FramesOK:   meanOK,
			BER:        berSum / float64(trials),
			NS1:        sim.NetScatterMetrics(stats, p, payload),
			NS2:        sim.NetScatterMetrics(stats2, p, payload),
			Ideal1:     sim.NetScatterIdealMetrics(n, p, t, sim.Config1, payload),
			Fixed:      sim.LoRaFixedMetrics(n, p, t, payload),
			RateAdapt:  sim.LoRaRateAdaptedMetrics(dep.Devices[:n], t, payload),
			Deployment: len(dep.Devices),
		})
	}
	sweepCache[key] = pts
	return pts, nil
}

func runFig17(cfg Config) (*Result, error) {
	pts, err := networkSweep(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "F17", Title: "Network PHY rate (Fig. 17)"}
	t := Table{Columns: []string{"N", "LoRa-BS fixed[kbps]", "LoRa-BS rate-adapt", "NetScatter(ideal)", "NetScatter"}}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.N),
			f(p.Fixed.PHYRateBps / 1e3),
			f(p.RateAdapt.PHYRateBps / 1e3),
			f(p.Ideal1.PHYRateBps / 1e3),
			f(p.NS1.PHYRateBps / 1e3),
		})
	}
	res.Tables = append(res.Tables, t)
	last := pts[len(pts)-1]
	res.Notes = append(res.Notes,
		fmt.Sprintf("at N=%d: NetScatter/fixed = %.1fx, NetScatter/rate-adapt = %.1fx (paper: 26.2x, 6.8x)",
			last.N, last.NS1.PHYRateBps/last.Fixed.PHYRateBps, last.NS1.PHYRateBps/last.RateAdapt.PHYRateBps),
		fmt.Sprintf("NetScatter decodes %.1f/%d frames at full SKIP=2 density (payload BER %.2e)",
			last.FramesOK, last.N, last.BER))
	return res, nil
}

func runFig18(cfg Config) (*Result, error) {
	pts, err := networkSweep(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "F18", Title: "Link-layer data rate (Fig. 18)"}
	t := Table{Columns: []string{"N", "LoRa-BS fixed[kbps]", "LoRa-BS rate-adapt", "NetScatter cfg1", "NetScatter cfg2"}}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.N),
			f(p.Fixed.LinkRateBps / 1e3),
			f(p.RateAdapt.LinkRateBps / 1e3),
			f(p.NS1.LinkRateBps / 1e3),
			f(p.NS2.LinkRateBps / 1e3),
		})
	}
	res.Tables = append(res.Tables, t)
	last := pts[len(pts)-1]
	res.Notes = append(res.Notes,
		fmt.Sprintf("at N=%d: cfg1 gains %.1fx over fixed and %.1fx over rate adaptation (paper: 61.9x, 14.1x)",
			last.N, last.NS1.LinkRateBps/last.Fixed.LinkRateBps, last.NS1.LinkRateBps/last.RateAdapt.LinkRateBps),
		fmt.Sprintf("cfg2 gains %.1fx / %.1fx (paper: 50.9x, 11.6x)",
			last.NS2.LinkRateBps/last.Fixed.LinkRateBps, last.NS2.LinkRateBps/last.RateAdapt.LinkRateBps))
	return res, nil
}

func runFig19(cfg Config) (*Result, error) {
	pts, err := networkSweep(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "F19", Title: "Network latency (Fig. 19)"}
	t := Table{Columns: []string{"N", "LoRa-BS fixed[ms]", "LoRa-BS rate-adapt", "NetScatter cfg1", "NetScatter cfg2"}}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.N),
			f(p.Fixed.LatencySec * 1e3),
			f(p.RateAdapt.LatencySec * 1e3),
			f(p.NS1.LatencySec * 1e3),
			f(p.NS2.LatencySec * 1e3),
		})
	}
	res.Tables = append(res.Tables, t)
	last := pts[len(pts)-1]
	res.Notes = append(res.Notes,
		fmt.Sprintf("at N=%d: latency reductions %.1fx (fixed) and %.1fx (rate-adapt) for cfg1 (paper: 67.0x, 15.3x)",
			last.N, last.Fixed.LatencySec/last.NS1.LatencySec, last.RateAdapt.LatencySec/last.NS1.LatencySec),
		"NetScatter latency is one shared round regardless of N — the key benefit of concurrency")
	return res, nil
}
