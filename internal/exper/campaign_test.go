package exper

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"

	"netscatter/internal/campaign"
	"netscatter/internal/serve"
)

// TestCampaignCoversM1Grid: the declarative spec must expand to
// exactly the (k, n) grid the hard-coded M1 sweep iterates.
func TestCampaignCoversM1Grid(t *testing.T) {
	spec := MultiAPSpec(1, false)
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	type point struct{ k, n int }
	got := map[point]bool{}
	for _, c := range cells {
		got[point{c.APs, c.Devices}] = true
	}
	for _, k := range []int{1, 2, 4} {
		for _, n := range []int{16, 64, 128, 192} {
			if !got[point{k, n}] {
				t.Errorf("campaign grid missing M1 point k=%d n=%d", k, n)
			}
		}
	}
	if len(cells) != 12 {
		t.Errorf("grid has %d cells, want 12", len(cells))
	}
}

// TestCampaignExperimentShape runs the G1 experiment (quick) and
// checks one row per grid cell with sane PER values.
func TestCampaignExperimentShape(t *testing.T) {
	res := runByID(t, "G1")
	tab := res.Tables[0]
	if want := 6; len(tab.Rows) != want { // quick: 2 device counts × 3 AP counts
		t.Fatalf("G1 quick produced %d rows, want %d", len(tab.Rows), want)
	}
	for r := range tab.Rows {
		per := cell(t, tab, r, 3)
		if per < 0 || per > 1 {
			t.Errorf("row %d PER %v out of range", r, per)
		}
	}
}

// TestCampaignM1ServeMatchesLocal is the acceptance gate for the
// remote path: the M1 grid as a campaign spec, run in-process and
// against a live netscatter-serve instance, must merge to
// byte-identical artifacts.
func TestCampaignM1ServeMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("full M1 grid against a live service; skipped in -short")
	}
	spec := MultiAPSpec(1, true)
	local, err := (&campaign.Runner{Spec: spec}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	localBytes, err := local.Encode()
	if err != nil {
		t.Fatal(err)
	}

	s := serve.New(serve.Config{})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()
	exec := &campaign.RemoteExecutor{Client: &serve.Client{BaseURL: ts.URL, HTTPClient: ts.Client()}}
	remote, err := (&campaign.Runner{Spec: spec, Workers: 3, Exec: exec}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	remoteBytes, err := remote.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(localBytes, remoteBytes) {
		t.Fatal("M1 campaign artifact differs between in-process and netscatter-serve execution")
	}
}
