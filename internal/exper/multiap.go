package exper

import (
	"fmt"

	"netscatter/internal/deploy"
	"netscatter/internal/dsp"
	"netscatter/internal/pool"
	"netscatter/internal/radio"
	"netscatter/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "M1",
		Title: "Multi-AP diversity: PER vs number of devices at k APs",
		Ref:   "ROADMAP multi-AP; Patel et al., bi-static scaling",
		Run:   runMultiAP,
	})
}

// runMultiAP sweeps the office deployment under k ∈ {1, 2, 4} APs:
// each (k, n) point runs concurrent rounds through a MultiAPNetwork
// and reports the combined (cross-AP aggregated) PER next to the best
// single AP's — the frame-level diversity gain of densifying the
// infrastructure, the scenario axis the paper's single-AP evaluation
// leaves open.
func runMultiAP(cfg Config) (*Result, error) {
	ks := []int{1, 2, 4}
	ns := []int{16, 64, 128, 192}
	trials := 2
	if cfg.Quick {
		ns = []int{16, 64}
		trials = 1
	}

	scfg := sim.DefaultConfig()
	scfg.PayloadBytes = 4

	type unitOut struct {
		stats sim.MultiRoundStats
		err   error
	}
	res := &Result{ID: "M1", Title: "Multi-AP diversity (frame-level selection combining)"}
	tab := Table{
		Name:    "PER vs devices at k APs",
		Columns: []string{"APs", "devices", "combined PER", "best-AP PER", "mean-AP PER", "frames gained", "goodput frac"},
	}

	for _, k := range ks {
		// One deployment per k, AP placement applied serially before the
		// (n, trial) units fan out over it read-only.
		rng := dsp.NewRand(cfg.Seed)
		dep := deploy.Generate(deploy.DefaultOffice, radio.DefaultLinkBudget, 256, 500e3, rng)
		dep.PlaceAPs(k)

		outs := make([]unitOut, len(ns)*trials)
		pool.ForEach(len(outs), func(u int) {
			n := ns[u/trials]
			trial := u % trials
			net, err := sim.NewMultiAPNetwork(scfg, dep, k, n, cfg.Seed*1000+int64(n)*10+int64(trial))
			if err != nil {
				outs[u].err = err
				return
			}
			stats, err := net.RunRound(n)
			if err != nil {
				outs[u].err = err
				return
			}
			// PerAP aliases network arenas; keep a copy instead.
			outs[u].stats = stats
			outs[u].stats.PerAP = append([]sim.RoundStats(nil), stats.PerAP...)
		})
		for _, o := range outs {
			if o.err != nil {
				return nil, o.err
			}
		}

		for nIdx, n := range ns {
			var combPER, bestPER, meanPER, gained, good float64
			for trial := 0; trial < trials; trial++ {
				o := outs[nIdx*trials+trial]
				combPER += o.stats.Combined.PER()
				best := 1.0
				mean := 0.0
				for _, s := range o.stats.PerAP {
					if per := s.PER(); per < best {
						best = per
					}
					mean += s.PER()
				}
				bestPER += best
				meanPER += mean / float64(len(o.stats.PerAP))
				gained += float64(o.stats.DiversityFramesGained())
				good += o.stats.Combined.GoodFraction()
			}
			ft := float64(trials)
			tab.Rows = append(tab.Rows, []string{
				fmt.Sprintf("%d", k),
				fmt.Sprintf("%d", n),
				fmt.Sprintf("%.3f", combPER/ft),
				fmt.Sprintf("%.3f", bestPER/ft),
				fmt.Sprintf("%.3f", meanPER/ft),
				fmt.Sprintf("%.1f", gained/ft),
				fmt.Sprintf("%.3f", good/ft),
			})
		}
	}
	res.Tables = append(res.Tables, tab)
	res.Notes = append(res.Notes,
		"combined = cross-AP selection combining (CRC-preferring best-SNR aggregation, deduplicated by device)",
		"k=1 reproduces the paper's single-AP deployment geometry exactly (central AP)")
	return res, nil
}
