package exper

import (
	"fmt"

	"netscatter/internal/chirp"
	"netscatter/internal/deploy"
	"netscatter/internal/dsp"
	"netscatter/internal/pool"
	"netscatter/internal/radio"
	"netscatter/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "R1",
		Title: "Robustness: PER vs Doppler and oscillator drift over a trajectory",
		Ref:   "ROADMAP time-varying channels; §3.2.3 power rule under drift",
		Run:   runTrajectoryDoppler,
	})
	register(Experiment{
		ID:    "R2",
		Title: "Robustness: recovery latency vs device churn at k APs",
		Ref:   "ROADMAP time-varying channels; §3.3.4 re-association",
		Run:   runTrajectoryChurn,
	})
}

// trajectorySimConfig is the shared substrate for the robustness axes:
// a mid-size code book keeps multi-round sweeps cheap while leaving the
// near-far machinery intact.
func trajectorySimConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Params = chirp.Params{SF: 8, BW: 500e3, Oversample: 1}
	cfg.PayloadBytes = 2
	return cfg
}

// runTrajectoryDoppler sweeps fading coherence (via the Jakes model at
// the round period) and oscillator random-walk drift on a single-AP
// deployment: each point evolves one fleet over a multi-round
// trajectory and reports PER over time, losses attributed to fading,
// and how often the power rule benched a device. This is the axis the
// paper's static-channel evaluation leaves open: how fast the channel
// may move before the reciprocity proxy goes stale.
func runTrajectoryDoppler(cfg Config) (*Result, error) {
	type point struct{ dopplerHz, driftHz float64 }
	points := []point{{0, 0}, {2, 0}, {5, 0}, {10, 0}, {5, 2}}
	nDev, rounds := 32, 10
	if cfg.Quick {
		points = []point{{0, 0}, {5, 0}}
		nDev, rounds = 16, 5
	}

	scfg := trajectorySimConfig()
	period := scfg.Timing.NetScatterRoundSeconds(scfg.Params, scfg.Query, scfg.PayloadBytes)

	type unitOut struct {
		stats sim.TrajectoryStats
		err   error
	}
	outs := make([]unitOut, len(points))
	pool.ForEach(len(outs), func(u int) {
		rng := dsp.NewRand(cfg.Seed)
		dep := deploy.Generate(deploy.DefaultOffice, radio.DefaultLinkBudget, nDev, scfg.Params.BW, rng)
		dep.PlaceAPs(1)
		net, err := sim.NewMultiAPNetwork(scfg, dep, 1, nDev, cfg.Seed+int64(u))
		if err != nil {
			outs[u].err = err
			return
		}
		tr, err := sim.NewTrajectory(net, sim.TrajectoryConfig{
			Rounds:     rounds,
			Seed:       cfg.Seed*100 + int64(u),
			DopplerHz:  points[u].dopplerHz,
			CFODriftHz: points[u].driftHz,
		})
		if err != nil {
			outs[u].err = err
			return
		}
		if _, err := tr.Run(); err != nil {
			outs[u].err = err
			return
		}
		outs[u].stats = *tr.Stats()
	})

	res := &Result{ID: "R1", Title: "PER vs Doppler / drift over a trajectory"}
	tab := Table{
		Name:    fmt.Sprintf("%d devices, %d rounds, 1 AP", nDev, rounds),
		Columns: []string{"doppler Hz", "rho", "drift Hz/rnd", "mean PER", "lost fading", "skipped", "reassocs"},
	}
	for u, pt := range points {
		if outs[u].err != nil {
			return nil, outs[u].err
		}
		// Effective per-round correlation the trajectory ran with:
		// doppler 0 disables evolved fading entirely (the oracle), so the
		// static-channel rho = 1 never applies.
		rho := 0.0
		if pt.dopplerHz > 0 {
			rho = radio.JakesCorrelation(pt.dopplerHz, period)
		}
		s := outs[u].stats
		tab.Rows = append(tab.Rows, []string{
			f(pt.dopplerHz),
			fmt.Sprintf("%.3f", rho),
			f(pt.driftHz),
			fmt.Sprintf("%.3f", s.MeanPER()),
			fmt.Sprintf("%d", s.LostToFading),
			fmt.Sprintf("%d", s.SkippedRounds),
			fmt.Sprintf("%d", s.Reassociations),
		})
	}
	res.Tables = append(res.Tables, tab)
	res.Notes = append(res.Notes,
		"rho = J0(2π·fD·T_round): the AR(1) per-round fading correlation at this round period",
		"doppler 0 is the retained oracle: the trajectory is bit-identical to independent rounds")
	return res, nil
}

// runTrajectoryChurn sweeps device duty-cycling rates at k ∈ {1, 2, 4}
// APs and reports the recovery pipeline's throughput: AP-side
// timeouts, completed re-associations, and the latency distribution
// from outage to the next CRC-valid frame. Densifying the
// infrastructure does not shorten the protocol's recovery path (that
// is handshake-bound), but it keeps PER down while devices churn.
func runTrajectoryChurn(cfg Config) (*Result, error) {
	ks := []int{1, 2, 4}
	churns := []float64{0.05, 0.15, 0.3}
	nDev, rounds := 24, 14
	if cfg.Quick {
		// Long enough for full sleep → timeout → wake → re-associate
		// cycles to complete at heavy churn.
		ks = []int{1, 2}
		churns = []float64{0.3}
		nDev, rounds = 12, 12
	}

	scfg := trajectorySimConfig()

	type unitOut struct {
		stats sim.TrajectoryStats
		err   error
	}
	outs := make([]unitOut, len(ks)*len(churns))
	pool.ForEach(len(outs), func(u int) {
		k := ks[u/len(churns)]
		churn := churns[u%len(churns)]
		rng := dsp.NewRand(cfg.Seed)
		dep := deploy.Generate(deploy.DefaultOffice, radio.DefaultLinkBudget, nDev, scfg.Params.BW, rng)
		dep.PlaceAPs(k)
		net, err := sim.NewMultiAPNetwork(scfg, dep, k, nDev, cfg.Seed+int64(u))
		if err != nil {
			outs[u].err = err
			return
		}
		tr, err := sim.NewTrajectory(net, sim.TrajectoryConfig{
			Rounds:    rounds,
			Seed:      cfg.Seed*100 + int64(u),
			SleepProb: churn,
			WakeProb:  0.5,
		})
		if err != nil {
			outs[u].err = err
			return
		}
		if _, err := tr.Run(); err != nil {
			outs[u].err = err
			return
		}
		outs[u].stats = *tr.Stats()
	})

	res := &Result{ID: "R2", Title: "Recovery latency vs churn at k APs"}
	tab := Table{
		Name:    fmt.Sprintf("%d devices, %d rounds, wake prob 0.5", nDev, rounds),
		Columns: []string{"APs", "sleep prob", "mean PER", "lost byAP", "reassocs", "mean rec rnds", "p90 rec rnds"},
	}
	for u := range outs {
		if outs[u].err != nil {
			return nil, outs[u].err
		}
		s := outs[u].stats
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", ks[u/len(churns)]),
			f(churns[u%len(churns)]),
			fmt.Sprintf("%.3f", s.MeanPER()),
			fmt.Sprintf("%d", s.DevicesLostByAP),
			fmt.Sprintf("%d", s.Reassociations),
			fmt.Sprintf("%.1f", s.MeanRecoveryLatency()),
			fmt.Sprintf("%.0f", s.RecoveryLatencyQuantile(0.9)),
		})
	}
	res.Tables = append(res.Tables, tab)
	res.Notes = append(res.Notes,
		"recovery latency counts rounds from the outage event (sleep/skip/loss) to the next CRC-valid frame",
		"sleepers keep stale power state; the AP frees their slot after its silence budget")
	return res, nil
}
