package exper

import (
	"fmt"

	"netscatter/internal/deploy"
	"netscatter/internal/dsp"
	"netscatter/internal/pool"
	"netscatter/internal/radio"
	"netscatter/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "M2",
		Title: "Soft cross-AP spectral combining and placement optimization",
		Ref:   "ROADMAP multi-AP follow-on; non-coherent power combining",
		Run:   runSoftCombining,
	})
}

// runSoftCombining sweeps k ∈ {1, 2, 4, 8} APs under two placement
// arms — the fixed line placement and the greedy combined-PER
// optimizer — with soft (summed power spectra) cross-AP combining
// enabled. Each row reports the soft PER next to frame-level selection
// combining and the best single AP, so the table reads as a ladder:
// soft ≤ selection ≤ best-AP, with the soft column strictly below
// selection wherever summing spectra rescues frames every individual
// AP lost.
func runSoftCombining(cfg Config) (*Result, error) {
	ks := []int{1, 2, 4, 8}
	ns := []int{64, 128, 192}
	trials := 2
	if cfg.Quick {
		ks = []int{1, 2, 4}
		ns = []int{192}
		trials = 1
	}

	scfg := sim.DefaultConfig()
	scfg.PayloadBytes = 4

	arms := []struct {
		name  string
		place func(d *deploy.Deployment, k int)
	}{
		{"line", func(d *deploy.Deployment, k int) { d.PlaceAPs(k) }},
		{"optimized", func(d *deploy.Deployment, k int) { d.PlaceAPsOptimized(k) }},
	}

	type unitOut struct {
		stats sim.MultiRoundStats
		err   error
	}
	res := &Result{ID: "M2", Title: "Soft cross-AP spectral combining (summed power spectra) vs selection"}
	tab := Table{
		Name: "PER vs devices at k APs, soft combining on",
		Columns: []string{"APs", "placement", "devices", "soft PER", "selection PER",
			"best-AP PER", "soft frames gained", "placement proxy"},
	}

	for _, k := range ks {
		for _, arm := range arms {
			// One deployment per (k, arm): AP placement mutates the device
			// links, so it happens serially before the (n, trial) units fan
			// out over the deployment read-only.
			rng := dsp.NewRand(cfg.Seed)
			dep := deploy.Generate(deploy.DefaultOffice, radio.DefaultLinkBudget, 256, 500e3, rng)
			arm.place(dep, k)
			proxy := dep.PlacementPERProxy(dep.APs)

			outs := make([]unitOut, len(ns)*trials)
			pool.ForEach(len(outs), func(u int) {
				n := ns[u/trials]
				trial := u % trials
				net, err := sim.NewMultiAPNetwork(scfg, dep, k, n, cfg.Seed*1000+int64(n)*10+int64(trial))
				if err != nil {
					outs[u].err = err
					return
				}
				net.SetSoftCombining(true)
				stats, err := net.RunRound(n)
				if err != nil {
					outs[u].err = err
					return
				}
				// PerAP aliases network arenas; keep a copy instead.
				outs[u].stats = stats
				outs[u].stats.PerAP = append([]sim.RoundStats(nil), stats.PerAP...)
			})
			for _, o := range outs {
				if o.err != nil {
					return nil, o.err
				}
			}

			for nIdx, n := range ns {
				var softPER, selPER, bestPER, gained float64
				for trial := 0; trial < trials; trial++ {
					o := outs[nIdx*trials+trial]
					softPER += o.stats.Soft.PER()
					selPER += o.stats.Combined.PER()
					best := 1.0
					for _, s := range o.stats.PerAP {
						if per := s.PER(); per < best {
							best = per
						}
					}
					bestPER += best
					gained += float64(o.stats.SoftFramesGained())
				}
				ft := float64(trials)
				tab.Rows = append(tab.Rows, []string{
					fmt.Sprintf("%d", k),
					arm.name,
					fmt.Sprintf("%d", n),
					fmt.Sprintf("%.4f", softPER/ft),
					fmt.Sprintf("%.4f", selPER/ft),
					fmt.Sprintf("%.4f", bestPER/ft),
					fmt.Sprintf("%.1f", gained/ft),
					fmt.Sprintf("%.4f", proxy),
				})
			}
		}
	}
	res.Tables = append(res.Tables, tab)
	res.Notes = append(res.Notes,
		"soft = non-coherent power combining: per-AP |X[k]|^2 spectra summed bin-wise, decoded once, then CRC-preferring selection over per-AP decodes plus the combined decode",
		"selection = PR5's frame-level cross-AP selection combining (the M1 baseline)",
		"optimized placement = greedy k-center + swap refinement over the half-room lattice, scored by the combined-PER surrogate (lower proxy is better)")
	return res, nil
}
