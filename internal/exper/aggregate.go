package exper

import (
	"fmt"

	"netscatter/internal/air"
	"netscatter/internal/chirp"
	"netscatter/internal/core"
	"netscatter/internal/dsp"
)

func init() {
	register(Experiment{
		ID:    "B1",
		Title: "Bandwidth aggregation: one wide FFT vs two bands",
		Ref:   "§3.1, Fig. 5",
		Run:   runAggregate,
	})
}

// runAggregate demonstrates the paper's bandwidth-aggregation argument:
// doubling the device count at constant per-device bitrate by doubling
// the band, decoded either as two independent single-band networks (two
// FFTs per symbol) or one aggregate band (a single, double-size FFT).
// Both must deliver every frame; the aggregate decoder does it with
// half the FFT invocations.
func runAggregate(cfg Config) (*Result, error) {
	rng := dsp.NewRand(cfg.Seed)
	payloadBytes := 3
	bits := payloadBytes*8 + core.CRCBits
	nPerBand := 16

	// --- aggregate: one network over 2·BW (Oversample = 2). ---
	pAgg := chirp.Params{SF: 7, BW: 125e3, Oversample: 2}
	bookAgg, err := core.NewCodeBook(pAgg, 2)
	if err != nil {
		return nil, err
	}
	shifts := make([]int, 2*nPerBand)
	payloads := make([][]byte, 2*nPerBand)
	var txs []air.Transmission
	for i := range shifts {
		shifts[i] = bookAgg.ShiftOfSlot(i * (bookAgg.Slots() / len(shifts)))
		payloads[i] = rng.Bytes(payloadBytes)
		enc := core.NewEncoder(pAgg, shifts[i])
		bits := core.FrameBits(payloads[i])
		txs = append(txs, air.Transmission{
			Mixed: func(dst []complex128, f, freqHz float64, gain complex128) []complex128 {
				return enc.FrameBitsWaveformMixedInto(dst, bits, f, freqHz, gain)
			},
			SNRdB:    rng.Uniform(6, 12),
			DelaySec: rng.Uniform(0, 0.3) / pAgg.BW,
		})
	}
	ch := air.NewChannel(pAgg, rng)
	sig := ch.Receive(ch.FrameLength(core.PreambleSymbols+bits, 2), txs)
	dec := core.NewDecoder(bookAgg, core.DefaultDecoderConfig(2))
	resAgg, err := dec.DecodeFrame(sig, 0, shifts, bits)
	if err != nil {
		return nil, err
	}
	aggOK := 0
	for i, dev := range resAgg.Devices {
		if dev.CRCOK && string(dev.Payload) == string(payloads[i]) {
			aggOK++
		}
	}

	// --- split: two independent single-band networks. ---
	pOne := chirp.Params{SF: 7, BW: 125e3, Oversample: 1}
	bookOne, err := core.NewCodeBook(pOne, 2)
	if err != nil {
		return nil, err
	}
	splitOK, splitFFTs := 0, 0
	for band := 0; band < 2; band++ {
		bandShifts := make([]int, nPerBand)
		bandPayloads := make([][]byte, nPerBand)
		var bandTxs []air.Transmission
		for i := range bandShifts {
			bandShifts[i] = bookOne.ShiftOfSlot(i * (bookOne.Slots() / nPerBand))
			bandPayloads[i] = rng.Bytes(payloadBytes)
			enc := core.NewEncoder(pOne, bandShifts[i])
			bits := core.FrameBits(bandPayloads[i])
			bandTxs = append(bandTxs, air.Transmission{
				Mixed: func(dst []complex128, f, freqHz float64, gain complex128) []complex128 {
					return enc.FrameBitsWaveformMixedInto(dst, bits, f, freqHz, gain)
				},
				SNRdB:    rng.Uniform(6, 12),
				DelaySec: rng.Uniform(0, 0.3) / pOne.BW,
			})
		}
		chOne := air.NewChannel(pOne, rng)
		sigOne := chOne.Receive(chOne.FrameLength(core.PreambleSymbols+bits, 2), bandTxs)
		decOne := core.NewDecoder(bookOne, core.DefaultDecoderConfig(2))
		resOne, err := decOne.DecodeFrame(sigOne, 0, bandShifts, bits)
		if err != nil {
			return nil, err
		}
		splitFFTs += resOne.FFTs
		for i, dev := range resOne.Devices {
			if dev.CRCOK && string(dev.Payload) == string(bandPayloads[i]) {
				splitOK++
			}
		}
	}

	res := &Result{ID: "B1", Title: "Bandwidth aggregation (§3.1, Fig. 5)"}
	t := Table{
		Columns: []string{"decoder", "devices", "frames OK", "FFTs/frame", "FFT size"},
		Rows: [][]string{
			{"aggregate (one 2BW FFT)", fmt.Sprintf("%d", 2*nPerBand),
				fmt.Sprintf("%d", aggOK), fmt.Sprintf("%d", resAgg.FFTs),
				fmt.Sprintf("%d", dec.Demodulator().PaddedBins())},
			{"split (two BW FFTs)", fmt.Sprintf("%d", 2*nPerBand),
				fmt.Sprintf("%d", splitOK), fmt.Sprintf("%d", splitFFTs),
				fmt.Sprintf("2x%d", core.NewDecoder(bookOne, core.DefaultDecoderConfig(2)).Demodulator().PaddedBins())},
		},
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"both decoders deliver the same frames; the aggregate band needs one FFT invocation per symbol",
		"instead of two (plus no per-band filters), the lower-complexity option §3.1 argues for")
	return res, nil
}
