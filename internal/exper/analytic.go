package exper

import (
	"fmt"
	"math"

	"netscatter/internal/chirp"
	"netscatter/internal/choir"
	"netscatter/internal/css"
	"netscatter/internal/dsp"
	"netscatter/internal/hw"
	"netscatter/internal/radio"
)

func init() {
	register(Experiment{
		ID:    "T1",
		Title: "NetScatter modulation configurations",
		Ref:   "Table 1",
		Run:   runTable1,
	})
	register(Experiment{
		ID:    "C1",
		Title: "Choir collision probabilities",
		Ref:   "§2.2",
		Run:   runChoirCollision,
	})
	register(Experiment{
		ID:    "F7",
		Title: "Backscatter power gain vs Z0 impedance",
		Ref:   "Fig. 7a",
		Run:   runFig7,
	})
	register(Experiment{
		ID:    "F8",
		Title: "Normalized power spectrum side lobes",
		Ref:   "Fig. 8",
		Run:   runFig8,
	})
	register(Experiment{
		ID:    "F14A",
		Title: "Device frequency offsets",
		Ref:   "Fig. 14a",
		Run:   runFig14a,
	})
	register(Experiment{
		ID:    "F14B",
		Title: "Residual FFT-bin variation per configuration",
		Ref:   "Fig. 14b",
		Run:   runFig14b,
	})
	register(Experiment{
		ID:    "S1",
		Title: "Multi-user Shannon capacity below the noise floor",
		Ref:   "§3.1",
		Run:   runShannon,
	})
}

func runTable1(cfg Config) (*Result, error) {
	res := &Result{ID: "T1", Title: "NetScatter modulation configurations (Table 1)"}
	t := Table{
		Columns: []string{"BW[kHz]", "SF", "TimeVar[us]", "FreqVar[Hz]", "BitRate[bps]", "Sens[dBm]"},
	}
	const skip = 2
	for _, p := range css.Table1Configs() {
		t.Rows = append(t.Rows, []string{
			f(p.BW / 1e3),
			fmt.Sprintf("%d", p.SF),
			f(p.TimeToleranceSec(skip) * 1e6),
			f(p.FreqToleranceHz(skip)),
			f(p.OOKBitRate()),
			fmt.Sprintf("%.0f", css.SensitivityDBm(p)),
		})
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"sensitivity anchored at -123 dBm for (500 kHz, SF 9) with NF = 6 dB and 3 dB per SF step;",
		"the paper's (125 kHz, SF 6) row reports -118 dBm where the 3 dB/SF rule gives -120 (see EXPERIMENTS.md)")
	return res, nil
}

func runChoirCollision(cfg Config) (*Result, error) {
	rng := dsp.NewRand(cfg.Seed)
	trials := 200000
	if cfg.Quick {
		trials = 20000
	}
	res := &Result{ID: "C1", Title: "Choir collision probabilities (§2.2)"}
	t := Table{
		Name:    "same cyclic shift collisions, SF 9",
		Columns: []string{"N", "P[analytic]", "P[approx n(n-1)/2^(SF+1)]", "P[monte-carlo]"},
	}
	for _, n := range []int{2, 5, 10, 20, 50} {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			sci(choir.SameShiftCollisionProb(n, 9)),
			sci(choir.SameShiftCollisionApprox(n, 9)),
			sci(choir.MonteCarloSameShift(n, 9, trials, rng)),
		})
	}
	res.Tables = append(res.Tables, t)
	t2 := Table{
		Name:    "all transmitters on distinct tenth-bin fractions",
		Columns: []string{"N", "P[analytic]", "P[monte-carlo]"},
	}
	for _, n := range []int{2, 5, 8, 10} {
		t2.Rows = append(t2.Rows, []string{
			fmt.Sprintf("%d", n),
			sci(choir.UniqueFractionProb(n)),
			sci(choir.MonteCarloUniqueFraction(n, trials, rng)),
		})
	}
	res.Tables = append(res.Tables, t2)
	res.Notes = append(res.Notes,
		"paper quotes ~30% unique-fraction probability at N=5 and 9%/32% same-shift collisions at N=10/20 (SF 9)")
	return res, nil
}

func runFig7(cfg Config) (*Result, error) {
	res := &Result{ID: "F7", Title: "Backscatter power gain vs Z0 (Fig. 7a)"}
	t := Table{Columns: []string{"Z0[ohm]", "Gain[dB]"}}
	for _, z := range []float64{0, 10, 25, 50, 100, 200, 400, 600, 800, 1000} {
		t.Rows = append(t.Rows, []string{f(z), f(hw.PowerGainDB(z, math.Inf(1)))})
	}
	res.Tables = append(res.Tables, t)
	t2 := Table{
		Name:    "switch-network power levels (§4.1)",
		Columns: []string{"Gain[dB]", "Z0[ohm]"},
	}
	for _, l := range hw.PowerLevels() {
		t2.Rows = append(t2.Rows, []string{f(l.GainDB), f(l.Z0Ohms)})
	}
	res.Tables = append(res.Tables, t2)
	return res, nil
}

func runFig8(cfg Config) (*Result, error) {
	p := chirp.Default500k9
	mod := chirp.NewModulator(p)
	dem := chirp.NewDemodulator(p, 8)
	spec := dem.Spectrum(mod.Symbol(0))
	peak := spec[0]
	res := &Result{ID: "F8", Title: "Normalized power spectrum of a dechirped symbol (Fig. 8)"}
	t := Table{Columns: []string{"offset[bins]", "measured[dB]", "Dirichlet analytic[dB]"}}
	for _, off := range []float64{0, 0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4, 8, 16, 64, 256} {
		idx := int(off * float64(dem.ZeroPad()))
		meas := 10 * math.Log10(spec[idx]/peak)
		ana := 20 * math.Log10(dsp.DirichletMag(off, p.Chips()))
		t.Rows = append(t.Rows, []string{f(off), f(meas), f(ana)})
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"first side lobe -13.5 dB at 1.5 bins: a SKIP=2 neighbour drowns below this (paper's 13.5 dB figure);",
		"third side lobe -20.8 dB near 3.5 bins matches the paper's (SKIP=3, -21 dB) annotation")
	return res, nil
}

func runFig14a(cfg Config) (*Result, error) {
	rng := dsp.NewRand(cfg.Seed)
	nDev, packets := 256, 1000
	if cfg.Quick {
		nDev, packets = 64, 50
	}
	var samples []float64
	for d := 0; d < nDev; d++ {
		osc := radio.NewBackscatterOscillator(rng, 20, 50)
		for k := 0; k < packets; k++ {
			samples = append(samples, osc.PacketOffsetHz(rng))
		}
	}
	cdf := dsp.NewCDF(samples)
	res := &Result{ID: "F14A", Title: "Backscatter frequency offsets (Fig. 14a)"}
	t := Table{Columns: []string{"freq[Hz]", "CDF"}}
	for _, x := range []float64{-150, -100, -50, -25, 0, 25, 50, 100, 150} {
		t.Rows = append(t.Rows, []string{f(x), f(cdf.At(x))})
	}
	res.Tables = append(res.Tables, t)
	min, max := dsp.MinMax(samples)
	res.Notes = append(res.Notes, fmt.Sprintf(
		"offsets span [%.0f, %.0f] Hz — within the paper's ±150 Hz, under 0.15 of a 976 Hz bin", min, max))
	return res, nil
}

func runFig14b(cfg Config) (*Result, error) {
	rng := dsp.NewRand(cfg.Seed)
	samplesPer := 200000
	if cfg.Quick {
		samplesPer = 10000
	}
	configs := []chirp.Params{
		{SF: 9, BW: 500e3, Oversample: 1},
		{SF: 8, BW: 250e3, Oversample: 1},
		{SF: 7, BW: 125e3, Oversample: 1},
	}
	res := &Result{ID: "F14B", Title: "Residual FFT-bin variation (Fig. 14b)"}
	t := Table{Columns: []string{"config", "1-CDF@0.5", "1-CDF@1.0", "1-CDF@1.5", "1-CDF@2.0"}}
	model := defaultDelayModel()
	for _, p := range configs {
		vals := make([]float64, samplesPer)
		for i := range vals {
			osc := radio.NewBackscatterOscillator(rng, 20, 50)
			dt := model.Draw(rng)
			df := osc.PacketOffsetHz(rng)
			vals[i] = math.Abs(-p.TimeOffsetToBins(dt) + p.FreqOffsetToBins(df))
		}
		cdf := dsp.NewCDF(vals)
		t.Rows = append(t.Rows, []string{
			p.String(),
			sci(cdf.Complementary(0.5)),
			sci(cdf.Complementary(1.0)),
			sci(cdf.Complementary(1.5)),
			sci(cdf.Complementary(2.0)),
		})
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"the same hardware delay costs proportionally fewer bins at lower bandwidth (ΔFFTbin = Δt·BW),",
		"matching Fig. 14b's ordering: the 125 kHz configuration has the lightest tail")
	return res, nil
}

func defaultDelayModel() hw.DelayModel { return hw.DefaultDelayModel }

func runShannon(cfg Config) (*Result, error) {
	res := &Result{ID: "S1", Title: "Multi-user capacity scaling below the noise floor (§3.1)"}
	bw := 500e3
	t := Table{Columns: []string{"N", "C[exact, kbps] @-20dB", "C[linear approx]", "ratio"}}
	ps, pn := math.Pow(10, -2.0), 1.0 // -20 dB per-device SNR
	for _, n := range []int{1, 16, 64, 128, 256} {
		exact := radio.MultiUserCapacity(bw, n, ps, pn) / 1e3
		approx := radio.MultiUserCapacityLinearApprox(bw, n, ps, pn) / 1e3
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n), f(exact), f(approx), f(exact / approx)})
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"below the noise floor capacity grows ~linearly with N: N concurrent backscatter devices put N× more power at the AP")
	return res, nil
}
