package exper

import (
	"strconv"
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Seed: 1, Quick: true} }

func runByID(t *testing.T, id string) *Result {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	res, err := e.Run(quickCfg())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(res.Tables) == 0 {
		t.Fatalf("%s produced no tables", id)
	}
	return res
}

func cell(t *testing.T, tab Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(tab.Rows[row][col]), 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	// One experiment per paper artifact listed in DESIGN.md.
	want := []string{"T1", "C1", "F4", "F7", "F8", "F9", "F12", "F14A", "F14B",
		"F15A", "F15B", "F16", "F17", "F18", "F19", "S1", "B1", "G1", "M1", "M2", "R1", "R2"}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s missing", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	if len(IDs()) != len(want) {
		t.Errorf("IDs() size mismatch")
	}
}

func TestByIDCaseInsensitive(t *testing.T) {
	if _, ok := ByID("f17"); !ok {
		t.Fatal("lower-case lookup failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("bogus ID matched")
	}
}

func TestTable1Values(t *testing.T) {
	res := runByID(t, "T1")
	tab := res.Tables[0]
	if len(tab.Rows) != 6 {
		t.Fatalf("Table 1 rows = %d", len(tab.Rows))
	}
	// First row: 500 kHz, SF 9, 2 µs, 976 Hz, 976 bps, -123 dBm.
	if got := cell(t, tab, 0, 2); got != 2 {
		t.Errorf("time tolerance = %v µs", got)
	}
	if got := cell(t, tab, 0, 4); got < 976 || got > 977 {
		t.Errorf("bitrate = %v", got)
	}
	if got := cell(t, tab, 0, 5); got != -123 {
		t.Errorf("sensitivity = %v", got)
	}
}

func TestFig8SideLobes(t *testing.T) {
	res := runByID(t, "F8")
	tab := res.Tables[0]
	// Row at 1.5 bins: ~-13.5 dB (the paper's SKIP=2 drowning figure).
	for _, row := range tab.Rows {
		if row[0] == "1.500" {
			if v := mustF(t, row[1]); v > -12.5 || v < -14.5 {
				t.Fatalf("first side lobe %v dB", v)
			}
			return
		}
	}
	t.Fatal("1.5-bin row missing")
}

func TestFig12NearFarShape(t *testing.T) {
	res := runByID(t, "F12")
	tab := res.Tables[0]
	last := tab.Rows[len(tab.Rows)-1] // highest SNR row
	single := mustF(t, last[1])
	plus40 := mustF(t, last[3])
	plus45 := mustF(t, last[4])
	// At the top of the SNR range, +40 dB interference is harmless
	// while +45 dB degrades (Fig. 12's message).
	if plus40 > single+0.02 {
		t.Fatalf("+40 dB BER %v vs single %v", plus40, single)
	}
	if plus45 < plus40 {
		t.Fatalf("+45 dB should be worse than +40 dB: %v vs %v", plus45, plus40)
	}
}

func TestFig15bDynamicRange(t *testing.T) {
	res := runByID(t, "F15B")
	tab := res.Tables[0]
	first := mustF(t, tab.Rows[0][1])              // 2-bin separation
	last := mustF(t, tab.Rows[len(tab.Rows)-1][1]) // mid-spectrum
	if first > 12 {
		t.Fatalf("2-bin tolerance %v dB too generous (paper: ~5)", first)
	}
	if last < 28 || last > 42 {
		t.Fatalf("mid-spectrum tolerance %v dB (paper: ~35)", last)
	}
	if last <= first {
		t.Fatal("tolerance should grow with separation")
	}
}

func TestFig17Shape(t *testing.T) {
	res := runByID(t, "F17")
	tab := res.Tables[0]
	lastRow := tab.Rows[len(tab.Rows)-1]
	fixed := mustF(t, lastRow[1])
	ns := mustF(t, lastRow[4])
	ideal := mustF(t, lastRow[3])
	if ns < 10*fixed {
		t.Fatalf("NetScatter %v vs fixed %v: gain too small", ns, fixed)
	}
	if ns > ideal {
		t.Fatal("measured above ideal")
	}
	if ns < 0.7*ideal {
		t.Fatalf("measured %v too far below ideal %v", ns, ideal)
	}
}

func TestFig19LatencyFlat(t *testing.T) {
	res := runByID(t, "F19")
	tab := res.Tables[0]
	nsFirst := mustF(t, tab.Rows[0][3])
	nsLast := mustF(t, tab.Rows[len(tab.Rows)-1][3])
	if nsFirst != nsLast {
		t.Fatalf("NetScatter latency should be flat: %v vs %v", nsFirst, nsLast)
	}
	fixedLast := mustF(t, tab.Rows[len(tab.Rows)-1][1])
	if fixedLast < 30*nsLast {
		t.Fatalf("latency gain only %vx", fixedLast/nsLast)
	}
}

func TestMultiAPDiversityShape(t *testing.T) {
	res := runByID(t, "M1")
	tab := res.Tables[0]
	if len(tab.Rows) != 6 { // k ∈ {1,2,4} × quick ns {16, 64}
		t.Fatalf("M1 rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		comb := mustF(t, row[2])
		best := mustF(t, row[3])
		mean := mustF(t, row[4])
		// Selection combining can never do worse than the best single
		// AP, and the best AP never worse than the average AP.
		if comb > best+1e-9 {
			t.Fatalf("combined PER %v above best-AP PER %v (row %v)", comb, best, row)
		}
		if best > mean+1e-9 {
			t.Fatalf("best-AP PER %v above mean-AP PER %v (row %v)", best, mean, row)
		}
	}
	// k=1 rows: combining over one AP is exactly that AP.
	for _, row := range tab.Rows[:2] {
		if comb, best := mustF(t, row[2]), mustF(t, row[3]); comb != best {
			t.Fatalf("k=1 combined PER %v != single-AP PER %v", comb, best)
		}
	}
}

func TestSoftCombiningShape(t *testing.T) {
	res := runByID(t, "M2")
	tab := res.Tables[0]
	if len(tab.Rows) != 6 { // k ∈ {1,2,4} × {line, optimized} × quick n {192}
		t.Fatalf("M2 rows = %d", len(tab.Rows))
	}
	strictGain := false
	for _, row := range tab.Rows {
		k := mustF(t, row[0])
		soft := mustF(t, row[3])
		sel := mustF(t, row[4])
		best := mustF(t, row[5])
		gained := mustF(t, row[6])
		// The PER ladder: soft combining selects over {per-AP decodes,
		// combined decode}, so it can never do worse than selection,
		// and selection never worse than the best single AP.
		if soft > sel+1e-9 {
			t.Fatalf("soft PER %v above selection PER %v (row %v)", soft, sel, row)
		}
		if sel > best+1e-9 {
			t.Fatalf("selection PER %v above best-AP PER %v (row %v)", sel, best, row)
		}
		if gained < 0 {
			t.Fatalf("soft combining lost %v frames (row %v)", gained, row)
		}
		// k=1: the combined spectrum is the single AP's spectrum, so the
		// soft outcome degenerates to selection exactly.
		if k == 1 && soft != sel {
			t.Fatalf("k=1 soft PER %v != selection PER %v (row %v)", soft, sel, row)
		}
		if k >= 2 && soft < sel {
			strictGain = true
		}
	}
	// The tentpole's acceptance shape: summing spectra must rescue
	// frames that every individual AP lost at some k >= 2.
	if !strictGain {
		t.Fatal("soft combining never strictly beat selection at k >= 2")
	}
	// Rows come in (line, optimized) pairs per k; the optimizer must
	// never be worse than the line placement under its own proxy.
	for r := 0; r+1 < len(tab.Rows); r += 2 {
		line, opt := mustF(t, tab.Rows[r][7]), mustF(t, tab.Rows[r+1][7])
		if opt > line+1e-12 {
			t.Fatalf("optimized placement proxy %v above line %v (k=%v)", opt, line, tab.Rows[r][0])
		}
	}
}

func TestTrajectoryDopplerShape(t *testing.T) {
	res := runByID(t, "R1")
	tab := res.Tables[0]
	if len(tab.Rows) != 2 { // quick: doppler {0, 5}
		t.Fatalf("R1 rows = %d", len(tab.Rows))
	}
	// Doppler 0 is the oracle row: no evolved fading, so nothing can be
	// attributed to it and the effective rho must read 0.
	if rho := mustF(t, tab.Rows[0][1]); rho != 0 {
		t.Fatalf("doppler-0 effective rho = %v, want 0", rho)
	}
	if lost := mustF(t, tab.Rows[0][4]); lost != 0 {
		t.Fatalf("doppler-0 row lost %v frames to fading", lost)
	}
	// The moving-channel row must carry a correlated (rho > 0) process.
	if rho := mustF(t, tab.Rows[1][1]); rho <= 0 || rho >= 1 {
		t.Fatalf("doppler-5 effective rho = %v", rho)
	}
	for _, row := range tab.Rows {
		if per := mustF(t, row[3]); per < 0 || per > 1 {
			t.Fatalf("mean PER %v out of range (row %v)", per, row)
		}
	}
}

func TestTrajectoryChurnShape(t *testing.T) {
	res := runByID(t, "R2")
	tab := res.Tables[0]
	if len(tab.Rows) != 2 { // quick: k ∈ {1,2} × churn {0.2}
		t.Fatalf("R2 rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if per := mustF(t, row[2]); per < 0 || per > 1 {
			t.Fatalf("mean PER %v out of range (row %v)", per, row)
		}
		// Heavy churn must exercise the loss/re-association pipeline.
		if lost := mustF(t, row[3]); lost == 0 {
			t.Fatalf("no AP-side losses under churn (row %v)", row)
		}
		if re := mustF(t, row[4]); re == 0 {
			t.Fatalf("no re-associations under churn (row %v)", row)
		}
	}
}

func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(quickCfg())
			if err != nil {
				t.Fatal(err)
			}
			out := res.Format()
			if !strings.Contains(out, e.ID) {
				t.Errorf("formatted output missing ID")
			}
			for _, tab := range res.Tables {
				for _, row := range tab.Rows {
					if len(row) != len(tab.Columns) {
						t.Fatalf("ragged row in %s: %v", e.ID, row)
					}
				}
			}
		})
	}
}

func TestResultFormatAlignment(t *testing.T) {
	r := &Result{
		ID:    "X",
		Title: "demo",
		Tables: []Table{{
			Columns: []string{"a", "long-column"},
			Rows:    [][]string{{"1", "2"}, {"333333", "4"}},
		}},
		Notes: []string{"hello"},
	}
	out := r.Format()
	if !strings.Contains(out, "note: hello") {
		t.Fatal("note missing")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 5 {
		t.Fatal("too few lines")
	}
}

func mustF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}
