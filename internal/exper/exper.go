// Package exper contains one registered experiment per table and figure
// of the paper's evaluation, each regenerating the corresponding rows or
// series from the simulation substrate. The cmd/netscatter-exp binary
// and the repository's benchmark suite both drive this registry.
package exper

import (
	"fmt"
	"sort"
	"strings"
)

// Config controls experiment execution.
type Config struct {
	// Seed makes every experiment deterministic.
	Seed int64
	// Quick trades statistical depth for speed (used by tests and the
	// default bench run).
	Quick bool
}

// DefaultConfig is the reproducible default.
func DefaultConfig() Config { return Config{Seed: 1} }

// Table is a printable result table.
type Table struct {
	Name    string
	Columns []string
	Rows    [][]string
}

// Result is an experiment's output: tables plus free-form notes
// (deviations, calibration remarks).
type Result struct {
	ID     string
	Title  string
	Tables []Table
	Notes  []string
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	// ID is the index key ("T1", "F17", ...).
	ID string
	// Title names the paper artifact.
	Title string
	// Ref cites the paper section/figure.
	Ref string
	// Run executes the experiment.
	Run func(Config) (*Result, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment in registration order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID finds an experiment by its ID (case-insensitive).
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns the sorted experiment IDs.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return ids
}

// Format renders a result as aligned text.
func (r *Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		if t.Name != "" {
			fmt.Fprintf(&b, "\n-- %s --\n", t.Name)
		}
		widths := make([]int, len(t.Columns))
		for i, c := range t.Columns {
			widths[i] = len(c)
		}
		for _, row := range t.Rows {
			for i, cell := range row {
				if i < len(widths) && len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		writeRow := func(cells []string) {
			for i, cell := range cells {
				if i > 0 {
					b.WriteString("  ")
				}
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			}
			b.WriteByte('\n')
		}
		writeRow(t.Columns)
		for i, w := range widths {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat("-", w))
		}
		b.WriteByte('\n')
		for _, row := range t.Rows {
			writeRow(row)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "\nnote: %s\n", n)
	}
	return b.String()
}

// f formats a float compactly.
func f(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// sci formats small probabilities in scientific style.
func sci(v float64) string {
	if v == 0 {
		return "0"
	}
	if v >= 0.01 {
		return fmt.Sprintf("%.3f", v)
	}
	return fmt.Sprintf("%.2e", v)
}
