// Package campaign runs declarative scenario campaigns: a JSON spec
// names the scenario axes of the paper's evaluation grid — device
// count × AP count × channel/adversity condition × rounds × seeds — and
// the runner expands the axes into a cell grid, shards the cells
// across worker goroutines, checkpoints completed cells so a killed
// campaign resumes exactly where it stopped, and merges per-cell
// snapshots into one deterministic results artifact.
//
// Determinism is the load-bearing property: every cell's deployment
// seed is a splittable dsp.StreamAt(seed, cellIndex) derivation — a
// pure function of the spec and the cell's grid position — so results
// are independent of worker count, execution order, and whether the
// run was interrupted (resumed-vs-uninterrupted artifacts are
// byte-identical, test-enforced). Cells execute either in-process
// (serve.RunLocal, the hosted tenant's exact code path) or against a
// live netscatter-serve instance (serve.Client); both produce the
// same snapshots by construction.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"

	"netscatter/internal/dsp"
	"netscatter/internal/serve"
)

// Spec declares one campaign: scalar radio/deployment parameters plus
// list-valued scenario axes. Every combination of axis values becomes
// one grid cell; empty axes default to a single value, so the smallest
// useful spec is just a name and a devices list.
type Spec struct {
	// Name labels the campaign (artifact, checkpoint header, tenant
	// names on a service).
	Name string `json:"name"`

	// Scalar parameters shared by every cell; zero values select the
	// service defaults (SF 9, 500 kHz, skip 2, 5 payload bytes).
	SF                int     `json:"sf,omitempty"`
	BandwidthHz       float64 `json:"bandwidth_hz,omitempty"`
	Skip              int     `json:"skip,omitempty"`
	PayloadBytes      int     `json:"payload_bytes,omitempty"`
	SoftCombining     bool    `json:"soft_combining,omitempty"`
	OptimizePlacement bool    `json:"optimize_placement,omitempty"`

	// Axes. Devices is mandatory; the rest default to one-element
	// lists: APs [1], Rounds [1], Seeds [1], Channels [{"name":"static"}].
	Devices  []int         `json:"devices"`
	APs      []int         `json:"aps,omitempty"`
	Rounds   []int         `json:"rounds,omitempty"`
	Seeds    []int64       `json:"seeds,omitempty"`
	Channels []ChannelSpec `json:"channels,omitempty"`
}

// ChannelSpec is one entry of the channel-condition axis: a static
// channel (nil adversity) or a named time-varying adversarial world.
type ChannelSpec struct {
	Name      string                 `json:"name"`
	Adversity *serve.AdversityConfig `json:"adversity,omitempty"`
}

// Cell is one expanded grid point, self-describing: its axis values,
// the derived deployment config, and the rounds to run on it.
type Cell struct {
	Index   int    `json:"index"`
	Devices int    `json:"devices"`
	APs     int    `json:"aps"`
	Rounds  int    `json:"rounds"`
	Seed    int64  `json:"seed"`
	Channel string `json:"channel"`
	// Config is the cell's full deployment config. Its Seed is the
	// splittable stream derivation dsp.StreamAt(Seed, Index) — a pure
	// function of the axis seed and the grid position, so a cell's
	// randomness never depends on which worker runs it or when.
	Config serve.DeploymentConfig `json:"config"`
}

// LoadSpec reads and expands-checks a spec file.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("campaign: parsing %s: %w", path, err)
	}
	if _, err := s.Cells(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Digest is the spec's canonical SHA-256, recorded in checkpoints and
// artifacts so a resume against a different spec fails loudly instead
// of merging unrelated results.
func (s *Spec) Digest() string {
	data, err := json.Marshal(s)
	if err != nil {
		// Spec is a plain data struct; Marshal cannot fail on it.
		panic(err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Cells expands the axes into the campaign grid. The expansion order
// is fixed (seeds ▸ channels ▸ rounds ▸ APs ▸ devices, devices
// innermost) and indices are dense from 0, so a cell's index — and
// with it its derived RNG — is stable for a given spec.
func (s *Spec) Cells() ([]Cell, error) {
	if s.Name == "" {
		return nil, fmt.Errorf("campaign: spec needs a name")
	}
	if len(s.Devices) == 0 {
		return nil, fmt.Errorf("campaign: spec needs a devices axis")
	}
	aps := s.APs
	if len(aps) == 0 {
		aps = []int{1}
	}
	rounds := s.Rounds
	if len(rounds) == 0 {
		rounds = []int{1}
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	channels := s.Channels
	if len(channels) == 0 {
		channels = []ChannelSpec{{Name: "static"}}
	}
	for _, n := range s.Devices {
		if n < 1 {
			return nil, fmt.Errorf("campaign: devices axis value %d (must be >= 1)", n)
		}
	}
	for _, k := range aps {
		if k < 1 {
			return nil, fmt.Errorf("campaign: aps axis value %d (must be >= 1)", k)
		}
	}
	for _, r := range rounds {
		if r < 1 {
			return nil, fmt.Errorf("campaign: rounds axis value %d (must be >= 1)", r)
		}
	}
	for i, ch := range channels {
		if ch.Name == "" {
			return nil, fmt.Errorf("campaign: channel %d needs a name", i)
		}
	}

	cells := make([]Cell, 0, len(seeds)*len(channels)*len(rounds)*len(aps)*len(s.Devices))
	idx := 0
	for _, seed := range seeds {
		for _, ch := range channels {
			for _, r := range rounds {
				for _, k := range aps {
					for _, n := range s.Devices {
						st := dsp.StreamAt(seed, uint64(idx))
						depSeed := int64(st.Uint64())
						if depSeed == 0 {
							depSeed = 1 // 0 would select the service default
						}
						cells = append(cells, Cell{
							Index:   idx,
							Devices: n,
							APs:     k,
							Rounds:  r,
							Seed:    seed,
							Channel: ch.Name,
							Config: serve.DeploymentConfig{
								Name:              fmt.Sprintf("%s/%d", s.Name, idx),
								Devices:           n,
								APs:               k,
								SF:                s.SF,
								BandwidthHz:       s.BandwidthHz,
								Skip:              s.Skip,
								PayloadBytes:      s.PayloadBytes,
								Seed:              depSeed,
								SoftCombining:     s.SoftCombining,
								OptimizePlacement: s.OptimizePlacement,
								Adversity:         ch.Adversity,
							},
						})
						idx++
					}
				}
			}
		}
	}
	return cells, nil
}
