package campaign

import (
	"context"
	"sync"

	"netscatter/internal/pool"
	"netscatter/internal/sim"
)

// Runner executes a campaign: expand the grid, skip cells the
// checkpoint already holds, shard the rest across workers, journal
// each completion, and merge everything into the artifact. Because a
// cell's result is a pure function of the spec and its index, the
// runner needs no cross-worker coordination beyond the work queue —
// any worker may run any cell in any order and the merged artifact
// comes out identical.
type Runner struct {
	Spec *Spec
	// Exec runs cells (default LocalExecutor).
	Exec Executor
	// Workers is the shard width (default pool.Size()).
	Workers int
	// CheckpointPath, when set, journals completed cells there and
	// resumes from whatever the journal already holds.
	CheckpointPath string
	// Progress, when set, is called after each cell completes with the
	// completed count (including resumed cells), the grid size, and
	// the cell. Called from worker goroutines, possibly concurrently.
	Progress func(done, total int, c Cell)
}

// Run executes the campaign to completion and returns the merged
// artifact. On error (or context cancellation) the checkpoint retains
// every completed cell, so the same Run call picks up where it
// stopped.
func (r *Runner) Run(ctx context.Context) (*Artifact, error) {
	cells, err := r.Spec.Cells()
	if err != nil {
		return nil, err
	}
	exec := r.Exec
	if exec == nil {
		exec = LocalExecutor{}
	}
	workers := r.Workers
	if workers < 1 {
		workers = pool.Size()
	}

	done := make(map[int]sim.Snapshot)
	var ck *checkpoint
	if r.CheckpointPath != "" {
		ck, done, err = openCheckpoint(r.CheckpointPath, r.Spec, len(cells))
		if err != nil {
			return nil, err
		}
		defer ck.close()
	}

	pending := make([]Cell, 0, len(cells))
	for _, c := range cells {
		if _, ok := done[c.Index]; !ok {
			pending = append(pending, c)
		}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}

	jobs := make(chan Cell)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				snap, err := exec.RunCell(runCtx, c)
				if err != nil {
					fail(err)
					continue
				}
				mu.Lock()
				done[c.Index] = snap
				var ckErr error
				if ck != nil {
					ckErr = ck.record(c.Index, snap)
				}
				n := len(done)
				mu.Unlock()
				if ckErr != nil {
					fail(ckErr)
					continue
				}
				if r.Progress != nil {
					r.Progress(n, len(cells), c)
				}
			}
		}()
	}
feed:
	for _, c := range pending {
		select {
		case jobs <- c:
		case <-runCtx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return assemble(r.Spec, cells, done)
}
