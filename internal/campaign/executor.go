package campaign

import (
	"context"
	"fmt"
	"time"

	"netscatter/internal/serve"
	"netscatter/internal/sim"
)

// Executor runs one cell's rounds and returns the accumulated
// snapshot. Implementations must be deterministic functions of the
// config — the runner relies on a cell producing the same snapshot no
// matter which worker runs it, in what order, or on which attempt.
type Executor interface {
	RunCell(ctx context.Context, c Cell) (sim.Snapshot, error)
}

// LocalExecutor runs cells in-process through serve.RunLocal — the
// hosted tenant's exact construction and round path, without the HTTP
// surface.
type LocalExecutor struct{}

// RunCell implements Executor.
func (LocalExecutor) RunCell(ctx context.Context, c Cell) (sim.Snapshot, error) {
	if err := ctx.Err(); err != nil {
		return sim.Snapshot{}, err
	}
	return serve.RunLocal(c.Config, c.Rounds)
}

// RemoteExecutor runs cells against a live netscatter-serve instance:
// create the deployment, enqueue the cell's rounds (chunked under the
// service backlog bound), wait for them to drain, snapshot, tear down.
// Because a hosted tenant steps the same code RunLocal does, a remote
// campaign's artifact is byte-identical to the local one.
type RemoteExecutor struct {
	Client *serve.Client
	// Poll is the stats poll interval while waiting for rounds to
	// drain (default 20ms).
	Poll time.Duration
}

// RunCell implements Executor.
func (e *RemoteExecutor) RunCell(ctx context.Context, c Cell) (sim.Snapshot, error) {
	id, err := e.Client.CreateDeployment(ctx, c.Config)
	if err != nil {
		return sim.Snapshot{}, fmt.Errorf("campaign: cell %d create: %w", c.Index, err)
	}
	defer func() {
		// Best-effort teardown, detached from the (possibly canceled)
		// cell context so an interrupted campaign still cleans up.
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = e.Client.DeleteDeployment(dctx, id)
	}()
	if err := e.Client.StepAll(ctx, id, c.Rounds, e.Poll); err != nil {
		return sim.Snapshot{}, fmt.Errorf("campaign: cell %d step: %w", c.Index, err)
	}
	st, err := e.Client.WaitRounds(ctx, id, c.Rounds, e.Poll)
	if err != nil {
		return sim.Snapshot{}, fmt.Errorf("campaign: cell %d wait: %w", c.Index, err)
	}
	return st.Stats, nil
}
