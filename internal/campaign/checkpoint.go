package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"netscatter/internal/sim"
)

// The checkpoint is an append-only NDJSON journal: a header line
// binding the file to one spec (name, digest, cell count), then one
// line per completed cell. Appends are flushed and synced per cell, so
// a killed campaign loses at most the cell that was mid-write — and a
// torn final line is detected and truncated away on reopen, restoring
// the append invariant before any new cell lands.

// ckptHeader is the journal's first line.
type ckptHeader struct {
	Campaign string `json:"campaign"`
	SpecSHA  string `json:"spec_sha256"`
	Cells    int    `json:"cells"`
}

// ckptEntry is one completed cell.
type ckptEntry struct {
	Index    int          `json:"index"`
	Snapshot sim.Snapshot `json:"snapshot"`
}

// checkpoint is an open journal positioned for appends.
type checkpoint struct {
	f *os.File
}

// openCheckpoint opens (or creates) the journal at path for a run of
// spec over nCells cells, returning the already-completed cells. A
// header from a different spec is an error; a torn trailing line — the
// kill signature — is dropped and truncated away.
func openCheckpoint(path string, spec *Spec, nCells int) (*checkpoint, map[int]sim.Snapshot, error) {
	done := make(map[int]sim.Snapshot)
	digest := spec.Digest()

	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err) || (err == nil && len(data) == 0):
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, err
		}
		ck := &checkpoint{f: f}
		if err := ck.writeLine(ckptHeader{Campaign: spec.Name, SpecSHA: digest, Cells: nCells}); err != nil {
			f.Close()
			return nil, nil, err
		}
		return ck, done, nil
	case err != nil:
		return nil, nil, err
	}

	// Walk the journal, tracking the offset after the last fully valid
	// line so a torn tail can be truncated away.
	valid := 0
	first := true
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn final line: no newline made it to disk
		}
		line := data[off : off+nl]
		if first {
			var h ckptHeader
			if err := json.Unmarshal(line, &h); err != nil {
				return nil, nil, fmt.Errorf("campaign: checkpoint %s: malformed header: %w", path, err)
			}
			if h.SpecSHA != digest {
				return nil, nil, fmt.Errorf("campaign: checkpoint %s was written by a different spec (campaign %q, %d cells); refusing to resume", path, h.Campaign, h.Cells)
			}
			first = false
		} else {
			var e ckptEntry
			if err := json.Unmarshal(line, &e); err != nil || e.Index < 0 || e.Index >= nCells {
				break // torn or corrupt entry: drop it and everything after
			}
			done[e.Index] = e.Snapshot
		}
		off += nl + 1
		valid = off
	}
	if first {
		return nil, nil, fmt.Errorf("campaign: checkpoint %s has no valid header", path)
	}

	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if err := f.Truncate(int64(valid)); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(int64(valid), 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &checkpoint{f: f}, done, nil
}

// record journals one completed cell, durably.
func (ck *checkpoint) record(index int, snap sim.Snapshot) error {
	if err := ck.writeLine(ckptEntry{Index: index, Snapshot: snap}); err != nil {
		return err
	}
	return ck.f.Sync()
}

func (ck *checkpoint) writeLine(v any) error {
	line, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = ck.f.Write(append(line, '\n'))
	return err
}

func (ck *checkpoint) close() error { return ck.f.Close() }
