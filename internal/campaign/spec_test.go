package campaign

import (
	"os"
	"path/filepath"
	"testing"

	"netscatter/internal/serve"
)

// testSpec is a tiny but fully-axed campaign: two device counts, two
// AP counts, two seeds, a static and an adversarial channel — 16
// cells, each cheap (SF 6, 2-byte payloads).
func testSpec() *Spec {
	return &Spec{
		Name:         "test-grid",
		SF:           6,
		PayloadBytes: 2,
		Devices:      []int{2, 3},
		APs:          []int{1, 2},
		Rounds:       []int{2},
		Seeds:        []int64{1, 2},
		Channels: []ChannelSpec{
			{Name: "static"},
			{Name: "mobile", Adversity: &serve.AdversityConfig{DopplerHz: 4, SleepProb: 0.1}},
		},
	}
}

func TestSpecExpansion(t *testing.T) {
	spec := testSpec()
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2 * 1 * 2 * 2; len(cells) != want {
		t.Fatalf("expanded %d cells, want %d", len(cells), want)
	}
	seen := map[int64]bool{}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has index %d", i, c.Index)
		}
		if c.Config.Devices != c.Devices || c.Config.APs != c.APs {
			t.Errorf("cell %d config does not mirror axes: %+v", i, c)
		}
		if c.Config.Seed == 0 {
			t.Errorf("cell %d has zero deployment seed (would select the service default)", i)
		}
		seen[c.Config.Seed] = true
		if (c.Channel == "mobile") != (c.Config.Adversity != nil) {
			t.Errorf("cell %d channel %q adversity mismatch", i, c.Channel)
		}
	}
	if len(seen) != len(cells) {
		t.Errorf("deployment seeds collide: %d distinct over %d cells", len(seen), len(cells))
	}

	// Expansion is deterministic: a second expansion is identical.
	again, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if cells[i] != again[i] {
			t.Fatalf("cell %d differs between expansions", i)
		}
	}
}

func TestSpecDefaults(t *testing.T) {
	spec := &Spec{Name: "minimal", Devices: []int{4}}
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("minimal spec expanded to %d cells, want 1", len(cells))
	}
	c := cells[0]
	if c.APs != 1 || c.Rounds != 1 || c.Seed != 1 || c.Channel != "static" {
		t.Errorf("defaults not applied: %+v", c)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []*Spec{
		{Devices: []int{4}},                                         // no name
		{Name: "x"},                                                 // no devices axis
		{Name: "x", Devices: []int{0}},                              // bad device count
		{Name: "x", Devices: []int{4}, APs: []int{0}},               // bad AP count
		{Name: "x", Devices: []int{4}, Rounds: []int{0}},            // bad rounds
		{Name: "x", Devices: []int{4}, Channels: []ChannelSpec{{}}}, // unnamed channel
	}
	for i, s := range bad {
		if _, err := s.Cells(); err == nil {
			t.Errorf("bad spec %d expanded without error", i)
		}
	}
}

func TestLoadSpecAndDigest(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spec.json")
	body := `{"name":"loaded","sf":6,"devices":[2,4],"aps":[1,2],"seeds":[7]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("loaded spec expanded to %d cells, want 4", len(cells))
	}
	if spec.Digest() != spec.Digest() {
		t.Error("digest is not stable")
	}
	other := testSpec()
	if spec.Digest() == other.Digest() {
		t.Error("distinct specs share a digest")
	}

	if err := os.WriteFile(path, []byte(`{"name":"x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSpec(path); err == nil {
		t.Error("LoadSpec accepted a spec with no devices axis")
	}
}
