package campaign

import (
	"encoding/json"
	"fmt"
	"os"

	"netscatter/internal/sim"
)

// CellResult pairs one grid cell with its accumulated snapshot.
type CellResult struct {
	Cell
	Snapshot sim.Snapshot `json:"snapshot"`
}

// Artifact is the merged campaign output: every cell's snapshot in
// grid order plus the grid-wide aggregate. It is a pure function of
// the spec — no timestamps, no host state, results sorted by cell
// index, totals folded in index order — so two runs of the same spec
// produce byte-identical artifacts regardless of worker count,
// execution order, or interruption/resume.
type Artifact struct {
	Campaign string       `json:"campaign"`
	SpecSHA  string       `json:"spec_sha256"`
	Spec     *Spec        `json:"spec"`
	Results  []CellResult `json:"results"`
	Totals   sim.Snapshot `json:"totals"`
}

// assemble merges completed cells into the artifact. Every cell must
// be present.
func assemble(spec *Spec, cells []Cell, done map[int]sim.Snapshot) (*Artifact, error) {
	a := &Artifact{
		Campaign: spec.Name,
		SpecSHA:  spec.Digest(),
		Spec:     spec,
		Results:  make([]CellResult, 0, len(cells)),
	}
	for _, c := range cells {
		snap, ok := done[c.Index]
		if !ok {
			return nil, fmt.Errorf("campaign: cell %d missing from results", c.Index)
		}
		a.Results = append(a.Results, CellResult{Cell: c, Snapshot: snap})
		a.Totals.Merge(snap)
	}
	return a, nil
}

// Encode renders the artifact's canonical byte form.
func (a *Artifact) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteFile writes the canonical form to path atomically (temp file +
// rename), so a crash mid-write never leaves a torn artifact behind.
func (a *Artifact) WriteFile(path string) error {
	data, err := a.Encode()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
