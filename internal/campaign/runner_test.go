package campaign

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"netscatter/internal/serve"
	"netscatter/internal/sim"
)

// countingExec wraps an executor and records which cells actually ran
// — the probe the resume tests use to prove checkpointed cells are
// skipped, not re-executed.
type countingExec struct {
	inner Executor
	mu    sync.Mutex
	ran   []int
}

func (e *countingExec) RunCell(ctx context.Context, c Cell) (sim.Snapshot, error) {
	e.mu.Lock()
	e.ran = append(e.ran, c.Index)
	e.mu.Unlock()
	return e.inner.RunCell(ctx, c)
}

func (e *countingExec) count() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.ran)
}

func runToBytes(t *testing.T, r *Runner) []byte {
	t.Helper()
	art, err := r.Run(context.Background())
	if err != nil {
		t.Fatalf("campaign run: %v", err)
	}
	data, err := art.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return data
}

// TestShardOrderIndependence pins the determinism contract: the same
// grid run at different worker counts — different cell-to-worker
// assignments, different completion orders — merges to byte-identical
// artifacts.
func TestShardOrderIndependence(t *testing.T) {
	spec := testSpec()
	want := runToBytes(t, &Runner{Spec: spec, Workers: 1})
	for _, workers := range []int{2, 4, 7} {
		got := runToBytes(t, &Runner{Spec: spec, Workers: workers})
		if !bytes.Equal(got, want) {
			t.Fatalf("artifact at %d workers differs from serial run", workers)
		}
	}
}

// TestResumeByteIdentical kills a campaign mid-grid (simulated by
// truncating its checkpoint journal, including a torn trailing line —
// the on-disk signature of a kill during a write) and asserts the
// resumed run (a) re-executes only the missing cells and (b) merges to
// an artifact byte-identical to the uninterrupted run.
func TestResumeByteIdentical(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()

	full := filepath.Join(dir, "full.ckpt")
	want := runToBytes(t, &Runner{Spec: spec, Workers: 3, CheckpointPath: full})

	// Keep the header plus the first 5 journaled cells, then a torn
	// entry — as if the process died mid-write on the sixth.
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 7 {
		t.Fatalf("checkpoint has %d lines, want header + 16 cells", len(lines))
	}
	kept := 5
	truncated := append([]byte{}, bytes.Join(lines[:1+kept], nil)...)
	truncated = append(truncated, []byte(`{"index":9,"snap`)...)
	resumePath := filepath.Join(dir, "resume.ckpt")
	if err := os.WriteFile(resumePath, truncated, 0o644); err != nil {
		t.Fatal(err)
	}

	exec := &countingExec{inner: LocalExecutor{}}
	got := runToBytes(t, &Runner{Spec: spec, Workers: 3, CheckpointPath: resumePath, Exec: exec})
	if !bytes.Equal(got, want) {
		t.Fatal("resumed artifact differs from uninterrupted run")
	}
	cells, _ := spec.Cells()
	if want := len(cells) - kept; exec.count() != want {
		t.Errorf("resume re-executed %d cells, want %d (grid %d, %d checkpointed)",
			exec.count(), want, len(cells), kept)
	}

	// A second resume over the now-complete journal runs nothing and
	// still reproduces the artifact.
	exec2 := &countingExec{inner: LocalExecutor{}}
	again := runToBytes(t, &Runner{Spec: spec, CheckpointPath: resumePath, Exec: exec2})
	if !bytes.Equal(again, want) {
		t.Fatal("re-merge over a complete checkpoint differs")
	}
	if exec2.count() != 0 {
		t.Errorf("complete checkpoint still re-executed %d cells", exec2.count())
	}
}

// TestResumeRejectsForeignCheckpoint: a checkpoint written by a
// different spec must refuse to resume rather than merge unrelated
// results.
func TestResumeRejectsForeignCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "grid.ckpt")
	if _, err := (&Runner{Spec: testSpec(), CheckpointPath: path}).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	other := testSpec()
	other.Devices = []int{2, 4}
	if _, err := (&Runner{Spec: other, CheckpointPath: path}).Run(context.Background()); err == nil {
		t.Fatal("resume against a foreign checkpoint succeeded")
	}
}

// TestCancelKeepsCheckpoint: cancelling mid-run returns the context
// error but retains completed cells, and a plain rerun finishes the
// grid to the uninterrupted artifact.
func TestCancelKeepsCheckpoint(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()
	want := runToBytes(t, &Runner{Spec: spec})

	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	path := filepath.Join(dir, "cancel.ckpt")
	r := &Runner{Spec: spec, Workers: 2, CheckpointPath: path,
		Progress: func(done, total int, c Cell) {
			n++
			if n == 4 {
				cancel() // kill the campaign after a few cells land
			}
		}}
	if _, err := r.Run(ctx); err == nil {
		t.Fatal("cancelled run returned no error")
	}

	got := runToBytes(t, &Runner{Spec: spec, Workers: 2, CheckpointPath: path})
	if !bytes.Equal(got, want) {
		t.Fatal("artifact after cancel+resume differs from uninterrupted run")
	}
}

// TestRemoteMatchesLocal runs the same grid in-process and against a
// live netscatter-serve instance: the artifacts must be
// byte-identical, since a hosted tenant steps exactly the code the
// local executor runs.
func TestRemoteMatchesLocal(t *testing.T) {
	spec := testSpec()
	want := runToBytes(t, &Runner{Spec: spec})

	s := serve.New(serve.Config{})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()
	exec := &RemoteExecutor{Client: &serve.Client{BaseURL: ts.URL, HTTPClient: ts.Client()}}
	got := runToBytes(t, &Runner{Spec: spec, Workers: 4, Exec: exec})
	if !bytes.Equal(got, want) {
		t.Fatal("remote (netscatter-serve) artifact differs from in-process run")
	}
}
