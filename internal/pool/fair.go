package pool

// FairScheduler: the multi-tenant companion to ForEach. Where ForEach
// fans one caller's independent items across the machine, the
// FairScheduler multiplexes *many callers'* serial work streams over a
// fixed worker set — the shape netscatter-serve needs to host thousands
// of deployments whose rounds must each run single-threaded (a
// network's round arena is reused in place) while no tenant starves or
// monopolizes the process.
//
// Three properties, all test-enforced:
//
//   - Per-key serialization: at most one job of a given tenant runs at
//     a time, in submission order. A tenant's jobs may therefore close
//     over shared mutable state (the deployment's roundCtx) without
//     locking.
//   - Round-robin fairness: runnable tenants are served in FIFO
//     rotation, one job per turn, so a tenant with a deep backlog delays
//     a fresh submitter by at most one job per runnable tenant.
//   - Bounded backpressure: each tenant's queue holds at most the
//     configured number of jobs; Submit fails fast with ErrBacklog
//     instead of buffering without bound (the HTTP layer surfaces this
//     as 429).
//
// Jobs run on the scheduler's own workers, not the global ForEach
// budget; work inside a job that calls ForEach still shares the
// machine-wide inflight token pool like every other caller.

import (
	"errors"
	"sync"
)

// ErrBacklog is returned by Submit when the tenant's queue is full.
var ErrBacklog = errors.New("pool: tenant queue full")

// ErrSchedulerClosed is returned by Submit after Close.
var ErrSchedulerClosed = errors.New("pool: scheduler closed")

// FairScheduler multiplexes per-tenant serial job streams over a fixed
// set of workers with round-robin fairness and bounded queues.
type FairScheduler struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[int64]*tenantQueue
	ready  []int64 // FIFO rotation of runnable tenant keys
	cap    int
	closed bool
	wg     sync.WaitGroup
}

// tenantQueue is one tenant's bounded FIFO plus its scheduling state.
// A tenant is "runnable" when it has queued jobs, nothing running, and
// is not already in the ready rotation; the three flags keep each key
// in the rotation at most once, which is what makes rotation order
// round-robin rather than submission-weighted.
type tenantQueue struct {
	jobs    []func()
	head    int
	n       int
	running bool
	ready   bool
}

func (q *tenantQueue) push(job func()) {
	i := (q.head + q.n) % len(q.jobs)
	q.jobs[i] = job
	q.n++
}

func (q *tenantQueue) pop() func() {
	job := q.jobs[q.head]
	q.jobs[q.head] = nil
	q.head = (q.head + 1) % len(q.jobs)
	q.n--
	return job
}

// NewFairScheduler starts a scheduler with the given worker count
// (values < 1 mean Size()) and per-tenant queue capacity (values < 1
// mean 1). Callers must Close it to release the workers.
func NewFairScheduler(workers, perTenantQueue int) *FairScheduler {
	if workers < 1 {
		workers = Size()
	}
	if perTenantQueue < 1 {
		perTenantQueue = 1
	}
	s := &FairScheduler{
		queues: make(map[int64]*tenantQueue),
		cap:    perTenantQueue,
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go s.worker()
	}
	return s
}

func (s *FairScheduler) worker() {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		for len(s.ready) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		k := s.ready[0]
		s.ready = s.ready[1:]
		q := s.queues[k]
		if q == nil || q.n == 0 {
			// Stale rotation entry (the tenant was dropped); skip it.
			if q != nil {
				q.ready = false
			}
			continue
		}
		q.ready = false
		q.running = true
		job := q.pop()
		s.mu.Unlock()

		job()

		s.mu.Lock()
		q.running = false
		if q.n > 0 && !q.ready && !s.closed {
			q.ready = true
			s.ready = append(s.ready, k)
			s.cond.Signal()
		} else if q.n == 0 {
			delete(s.queues, k)
		}
	}
}

// Submit enqueues a job for the tenant. Jobs of one tenant run
// serially in submission order; jobs of different tenants run
// concurrently, scheduled round-robin. Returns ErrBacklog when the
// tenant already has perTenantQueue jobs queued, ErrSchedulerClosed
// after Close.
func (s *FairScheduler) Submit(tenant int64, job func()) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSchedulerClosed
	}
	q := s.queues[tenant]
	if q == nil {
		q = &tenantQueue{jobs: make([]func(), s.cap)}
		s.queues[tenant] = q
	}
	if q.n == len(q.jobs) {
		return ErrBacklog
	}
	q.push(job)
	if !q.running && !q.ready {
		q.ready = true
		s.ready = append(s.ready, tenant)
		s.cond.Signal()
	}
	return nil
}

// QueueLen reports the tenant's queued (not yet started) job count.
func (s *FairScheduler) QueueLen(tenant int64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q := s.queues[tenant]; q != nil {
		return q.n
	}
	return 0
}

// Queued reports the total queued job count across all tenants.
func (s *FairScheduler) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, q := range s.queues {
		total += q.n
	}
	return total
}

// Drop discards the tenant's queued jobs. A job already running is not
// interrupted; its completion clears the tenant's remaining state.
func (s *FairScheduler) Drop(tenant int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.queues[tenant]
	if q == nil {
		return
	}
	for q.n > 0 {
		q.pop()
	}
	if !q.running && !q.ready {
		delete(s.queues, tenant)
	}
}

// Close discards all queued jobs, waits for in-flight jobs to finish,
// and releases the workers. Submit fails afterwards.
func (s *FairScheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.queues = make(map[int64]*tenantQueue)
	s.ready = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}
