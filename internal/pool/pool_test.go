package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndicesOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1000} {
		counts := make([]atomic.Int32, n)
		ForEach(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, got)
			}
		}
	}
}

func TestForEachWorkerIDsAreExclusive(t *testing.T) {
	// Each worker id must never run two items concurrently — that is the
	// contract that makes per-worker scratch safe.
	const workers, n = 4, 200
	busy := make([]atomic.Int32, workers)
	ForEachWorker(workers, n, func(w, _ int) {
		if busy[w].Add(1) != 1 {
			t.Errorf("worker %d ran concurrently with itself", w)
		}
		runtime.Gosched()
		busy[w].Add(-1)
	})
}

func TestForEachWorkerBoundsWorkerID(t *testing.T) {
	const workers, n = 3, 50
	var maxW atomic.Int32
	ForEachWorker(workers, n, func(w, _ int) {
		for {
			cur := maxW.Load()
			if int32(w) <= cur || maxW.CompareAndSwap(cur, int32(w)) {
				break
			}
		}
	})
	if got := maxW.Load(); got >= workers {
		t.Fatalf("worker id %d out of bounds", got)
	}
}

func TestForEachWorkerSerialFallback(t *testing.T) {
	// workers=1 must run inline: no goroutines means results are written
	// in index order.
	order := make([]int, 0, 10)
	ForEachWorker(1, 10, func(w, i int) {
		if w != 0 {
			t.Fatalf("serial fallback used worker %d", w)
		}
		order = append(order, i)
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order broken: %v", order)
		}
	}
}

func TestSizePositive(t *testing.T) {
	if Size() < 1 {
		t.Fatalf("Size() = %d", Size())
	}
}
