// Package pool is the repository's shared bounded worker pool: a
// parallel-for over an index space, capped at GOMAXPROCS goroutines.
// The decode pipeline fans symbol spectra across it, the channel
// simulator fans template synthesis and receive-buffer tiles through
// it, and the figure experiments run independent rounds on it — one
// concurrency primitive instead of ad-hoc goroutine spawns in every
// layer.
//
// Work items must be independent; the pool makes no ordering guarantee
// beyond "ForEach returns after every fn call has returned". Callers
// that need determinism index results by the *item* (per-index slots,
// tile-indexed rng streams — see air's tiled receive), never by the
// worker, so output is identical at any pool width.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Size returns the pool's parallelism bound: GOMAXPROCS at call time.
func Size() int { return runtime.GOMAXPROCS(0) }

// inflight bounds the extra goroutines the pool may have running across
// every caller, so nested parallel-fors (a parallel decode inside a
// parallel experiment sweep) share one machine-wide budget instead of
// multiplying. The limit is re-read from GOMAXPROCS on every acquire,
// so runtime.GOMAXPROCS changes (e.g. `go test -cpu 1,4`) take effect
// immediately. Callers always run work inline themselves, so forward
// progress never depends on acquiring a token.
var inflight atomic.Int64

func acquireToken() bool {
	limit := int64(Size() - 1)
	for {
		cur := inflight.Load()
		if cur >= limit {
			return false
		}
		if inflight.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

func releaseToken() { inflight.Add(-1) }

// ForEach invokes fn(i) for every i in [0, n), using up to Size()
// goroutines. With a single-slot pool (or a single item) it runs inline
// on the calling goroutine, spawning nothing. The body mirrors
// ForEachWorker rather than wrapping fn in an adapter closure: hot
// callers (the channel simulator, the parallel decoder) pass persistent
// funcs, and the adapter would put one heap allocation back on every
// call.
func ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := Size()
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	run := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	for w := 1; w < workers; w++ {
		if !acquireToken() {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer releaseToken()
			run()
		}()
	}
	run()
	wg.Wait()
}

// ForEachWorker invokes fn(w, i) for every i in [0, n), where w
// identifies the executing worker (0 <= w < workers). Callers use w to
// index per-worker scratch state — each worker id runs on exactly one
// goroutine at a time, so scratch needs no locking. workers caps the
// goroutine count (values < 1 mean Size()); under global budget
// pressure fewer ids may actually run, never more.
func ForEachWorker(workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers < 1 {
		workers = Size()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	run := func(w int) {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(w, i)
		}
	}
	// Spawn helpers only while the global budget allows; the remaining
	// worker ids simply never run, and the caller drains the rest.
	for w := 1; w < workers; w++ {
		if !acquireToken() {
			break
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer releaseToken()
			run(w)
		}(w)
	}
	// The caller participates as worker 0 rather than blocking idle.
	run(0)
	wg.Wait()
}
