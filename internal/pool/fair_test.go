package pool

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFairSerialization: at most one job of a given tenant runs at a
// time, and a tenant's jobs run in submission order, at any worker
// count.
func TestFairSerialization(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		s := NewFairScheduler(workers, 64)
		const tenants = 5
		const jobs = 40
		var inflight [tenants]atomic.Int32
		var order [tenants][]int
		var mu sync.Mutex
		var wg sync.WaitGroup
		for k := 0; k < tenants; k++ {
			for j := 0; j < jobs; j++ {
				k, j := k, j
				wg.Add(1)
				if err := s.Submit(int64(k), func() {
					defer wg.Done()
					if got := inflight[k].Add(1); got != 1 {
						t.Errorf("workers=%d: tenant %d has %d concurrent jobs", workers, k, got)
					}
					mu.Lock()
					order[k] = append(order[k], j)
					mu.Unlock()
					inflight[k].Add(-1)
				}); err != nil {
					t.Fatalf("workers=%d: submit: %v", workers, err)
				}
			}
		}
		wg.Wait()
		s.Close()
		for k := 0; k < tenants; k++ {
			if len(order[k]) != jobs {
				t.Fatalf("workers=%d: tenant %d ran %d of %d jobs", workers, k, len(order[k]), jobs)
			}
			for j, got := range order[k] {
				if got != j {
					t.Fatalf("workers=%d: tenant %d ran job %d at position %d", workers, k, got, j)
				}
			}
		}
	}
}

// TestFairRotation: with one worker, a fresh tenant's job is served
// after at most one job per runnable tenant — a deep backlog cannot
// starve a late submitter.
func TestFairRotation(t *testing.T) {
	s := NewFairScheduler(1, 128)
	defer s.Close()

	// A gate job parks the single worker so submissions below queue up
	// in a deterministic state.
	gate := make(chan struct{})
	started := make(chan struct{})
	if err := s.Submit(0, func() { close(started); <-gate }); err != nil {
		t.Fatal(err)
	}
	<-started

	var seq []int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	record := func(k int64) func() {
		return func() {
			defer wg.Done()
			mu.Lock()
			seq = append(seq, k)
			mu.Unlock()
		}
	}
	// Tenant 0 floods; tenant 1 then submits two jobs.
	for j := 0; j < 20; j++ {
		wg.Add(1)
		if err := s.Submit(0, record(0)); err != nil {
			t.Fatal(err)
		}
	}
	for j := 0; j < 2; j++ {
		wg.Add(1)
		if err := s.Submit(1, record(1)); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	wg.Wait()

	// Round-robin means tenant 1's second job completes within the
	// first four post-gate jobs (0,1,0,1...), far before tenant 0's
	// backlog drains.
	pos := -1
	count := 0
	for i, k := range seq {
		if k == 1 {
			count++
			pos = i
		}
	}
	if count != 2 {
		t.Fatalf("tenant 1 ran %d of 2 jobs; seq %v", count, seq)
	}
	if pos > 3 {
		t.Fatalf("tenant 1 finished at position %d, want <= 3 (starved by tenant 0's backlog); seq %v", pos, seq)
	}
}

// TestFairBacklog: the per-tenant queue bound rejects the overflow
// submission with ErrBacklog, and other tenants are unaffected.
func TestFairBacklog(t *testing.T) {
	s := NewFairScheduler(1, 2)
	defer s.Close()
	gate := make(chan struct{})
	started := make(chan struct{})
	if err := s.Submit(0, func() { close(started); <-gate }); err != nil {
		t.Fatal(err)
	}
	<-started

	// Tenant 0 is running; its queue holds 2 more.
	if err := s.Submit(0, func() {}); err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	if err := s.Submit(0, func() {}); err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	if err := s.Submit(0, func() {}); err != ErrBacklog {
		t.Fatalf("overflow submit: got %v, want ErrBacklog", err)
	}
	if got := s.QueueLen(0); got != 2 {
		t.Fatalf("QueueLen(0) = %d, want 2", got)
	}
	// A different tenant still has room.
	done := make(chan struct{})
	if err := s.Submit(1, func() { close(done) }); err != nil {
		t.Fatalf("tenant 1 submit: %v", err)
	}
	close(gate)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("tenant 1's job never ran")
	}
}

// TestFairDrop: Drop discards queued jobs without touching the running
// one, and the tenant can submit again afterwards.
func TestFairDrop(t *testing.T) {
	s := NewFairScheduler(1, 8)
	defer s.Close()
	gate := make(chan struct{})
	started := make(chan struct{})
	var ran atomic.Int32
	if err := s.Submit(7, func() { close(started); <-gate; ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	<-started
	for j := 0; j < 4; j++ {
		if err := s.Submit(7, func() { ran.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	s.Drop(7)
	if got := s.QueueLen(7); got != 0 {
		t.Fatalf("QueueLen after Drop = %d, want 0", got)
	}
	close(gate)

	done := make(chan struct{})
	if err := s.Submit(7, func() { ran.Add(1); close(done) }); err != nil {
		t.Fatalf("submit after Drop: %v", err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("post-Drop job never ran")
	}
	if got := ran.Load(); got != 2 {
		t.Fatalf("ran %d jobs, want 2 (gate job + post-Drop job)", got)
	}
}

// TestFairClose: Close waits for the in-flight job, discards the
// queued ones, and fails subsequent submissions.
func TestFairClose(t *testing.T) {
	s := NewFairScheduler(2, 8)
	var finished atomic.Bool
	started := make(chan struct{})
	if err := s.Submit(0, func() {
		close(started)
		time.Sleep(50 * time.Millisecond)
		finished.Store(true)
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	var leaked atomic.Bool
	if err := s.Submit(0, func() { leaked.Store(true) }); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if !finished.Load() {
		t.Fatal("Close returned before the in-flight job finished")
	}
	if leaked.Load() {
		t.Fatal("Close ran a queued job instead of discarding it")
	}
	if err := s.Submit(1, func() {}); err != ErrSchedulerClosed {
		t.Fatalf("Submit after Close: got %v, want ErrSchedulerClosed", err)
	}
	s.Close() // idempotent
}

// TestFairSchedulerRace hammers submissions, drops and queue
// inspection from many goroutines; the race detector is the assertion.
func TestFairSchedulerRace(t *testing.T) {
	s := NewFairScheduler(4, 4)
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := int64(g % 4)
				_ = s.Submit(k, func() {})
				if i%17 == 0 {
					s.Drop(k)
				}
				_ = s.QueueLen(k)
				_ = s.Queued()
			}
		}()
	}
	wg.Wait()
}
