// Package hw models the backscatter tag hardware that NetScatter's
// protocol depends on: the impedance switch network that realizes
// multiple transmit power gains (Fig. 7), the per-packet hardware delay
// of the envelope-detector → MCU → FPGA chain (§3.2.1, Fig. 14b), and
// per-device crystal behaviour (Fig. 14a).
package hw

import (
	"fmt"
	"math"

	"netscatter/internal/dsp"
)

// AntennaImpedanceOhms is the reference (antenna) impedance the
// reflection coefficients are computed against.
const AntennaImpedanceOhms = 50.0

// ReflectionCoeff returns the reflection coefficient Γ = (Z-Za)/(Z+Za)
// for a purely resistive termination Z against the antenna impedance.
// math.Inf(1) is accepted for an open circuit (Γ = 1).
func ReflectionCoeff(zOhms float64) float64 {
	if math.IsInf(zOhms, 1) {
		return 1
	}
	return (zOhms - AntennaImpedanceOhms) / (zOhms + AntennaImpedanceOhms)
}

// PowerGain returns the backscatter transmit power gain for switching
// between two terminations: |Γ0-Γ1|²/4 (§3.2.3). Switching between a
// short (Γ=-1) and an open (Γ=1) yields the maximum gain of 1 (0 dB).
func PowerGain(z0, z1 float64) float64 {
	g0 := ReflectionCoeff(z0)
	g1 := ReflectionCoeff(z1)
	d := g0 - g1
	return d * d / 4
}

// PowerGainDB returns PowerGain in dB.
func PowerGainDB(z0, z1 float64) float64 {
	return 10 * math.Log10(PowerGain(z0, z1))
}

// GainSweep reproduces Fig. 7a: the power gain (normalized to the 0 dB
// maximum, in dB) as Z0 sweeps from 0 to maxOhms while Z1 stays an open
// circuit.
func GainSweep(maxOhms float64, points int) (z []float64, gainDB []float64) {
	z = dsp.Linspace(0, maxOhms, points)
	gainDB = make([]float64, points)
	for i, zv := range z {
		gainDB[i] = PowerGainDB(zv, math.Inf(1))
	}
	return z, gainDB
}

// ImpedanceForGainDB solves for the Z0 (switched against an open
// circuit) that produces the requested power gain in dB (<= 0). This is
// how the three discrete power levels of the switch network are chosen.
func ImpedanceForGainDB(gainDB float64) (float64, error) {
	if gainDB > 0 {
		return 0, fmt.Errorf("hw: backscatter power gain %v dB must be <= 0", gainDB)
	}
	// |Γ0 - 1|²/4 = g  =>  Γ0 = 1 - 2√g  (taking the branch with Γ0 <= 1).
	g := math.Pow(10, gainDB/10)
	gamma0 := 1 - 2*math.Sqrt(g)
	if gamma0 >= 1 {
		return 0, fmt.Errorf("hw: gain %v dB unreachable", gainDB)
	}
	// Γ = (Z-Za)/(Z+Za)  =>  Z = Za(1+Γ)/(1-Γ).
	z := AntennaImpedanceOhms * (1 + gamma0) / (1 - gamma0)
	return z, nil
}

// PowerLevel is one setting of the tag's switch network.
type PowerLevel struct {
	GainDB float64 // transmit power gain relative to maximum
	Z0Ohms float64 // termination switched against the open circuit
}

// PowerLevels returns the paper's three power settings (0, -4, -10 dB)
// with the impedances that realize them. The switch network is three
// resistors on NMOS switches (§4.1, IC simulation), so more levels cost
// almost nothing — ExtendedPowerLevels provides a finer ladder for the
// ablation benches.
func PowerLevels() []PowerLevel {
	return levelsFor([]float64{0, -4, -10})
}

// ExtendedPowerLevels returns a finer 2 dB-step gain ladder used by the
// power-adaptation ablation.
func ExtendedPowerLevels() []PowerLevel {
	return levelsFor([]float64{0, -2, -4, -6, -8, -10})
}

func levelsFor(gains []float64) []PowerLevel {
	out := make([]PowerLevel, len(gains))
	for i, g := range gains {
		z, err := ImpedanceForGainDB(g)
		if err != nil {
			panic(err)
		}
		out[i] = PowerLevel{GainDB: g, Z0Ohms: z}
	}
	return out
}
