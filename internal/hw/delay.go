package hw

import (
	"netscatter/internal/dsp"
)

// DelayModel draws the per-packet hardware delay between the tag hearing
// the AP's query and the first backscattered chirp sample. The paper
// measures this chain (envelope detector → MCU interrupt → FPGA chirp
// start) to vary by as much as 3.5 µs packet-to-packet (§3.2.1, §4.2),
// which at 500 kHz is more than one FFT bin — the reason SKIP bins are
// left empty between devices.
//
// The model is a mixture: a well-behaved Gaussian jitter for most
// packets plus an occasional long MCU hiccup, which reproduces the heavy
// 1-CDF tail of Fig. 14b.
type DelayModel struct {
	// BaseSec is the deterministic part of the turnaround delay; it is
	// common-mode (the AP calibrates it out) and only the variation
	// matters for decoding.
	BaseSec float64
	// JitterSigmaSec is the standard deviation of the per-packet
	// Gaussian jitter.
	JitterSigmaSec float64
	// HiccupProb is the probability of a long MCU-scheduling hiccup.
	HiccupProb float64
	// HiccupMaxSec bounds the uniform extra delay of a hiccup.
	HiccupMaxSec float64
	// MaxSec clips the total variation (the paper's measured cap).
	MaxSec float64
}

// DefaultDelayModel is calibrated against §4.2: residual ΔFFTbin below
// one bin for ~98% of packets at 500 kHz, with a tail reaching ~2 bins.
var DefaultDelayModel = DelayModel{
	BaseSec:        12e-6,
	JitterSigmaSec: 0.55e-6,
	HiccupProb:     0.02,
	HiccupMaxSec:   3.0e-6,
	MaxSec:         3.5e-6,
}

// Draw returns one per-packet delay variation in seconds (>= 0, i.e. the
// deviation from the calibrated base delay).
func (m DelayModel) Draw(rng *dsp.Rand) float64 {
	d := rng.Normal(0, m.JitterSigmaSec)
	if d < 0 {
		d = -d
	}
	if rng.Bernoulli(m.HiccupProb) {
		d += rng.Uniform(0, m.HiccupMaxSec)
	}
	if d > m.MaxSec {
		d = m.MaxSec
	}
	return d
}

// PropagationDelaySec returns the round-trip time of flight for a tag at
// the given distance: 2d/c. At <= 100 m this is under 666 ns, i.e. a
// 0.33-bin shift at 500 kHz (§3.2.1) — small but included for fidelity.
func PropagationDelaySec(distanceM float64) float64 {
	return 2 * distanceM / 299792458.0
}
