package hw

import (
	"math"
	"testing"
	"testing/quick"

	"netscatter/internal/dsp"
)

func TestReflectionEndpoints(t *testing.T) {
	if got := ReflectionCoeff(0); got != -1 {
		t.Errorf("short Γ = %v", got)
	}
	if got := ReflectionCoeff(math.Inf(1)); got != 1 {
		t.Errorf("open Γ = %v", got)
	}
	if got := ReflectionCoeff(AntennaImpedanceOhms); got != 0 {
		t.Errorf("matched Γ = %v", got)
	}
}

func TestPowerGainMaximum(t *testing.T) {
	// Short <-> open gives the full |Γ0-Γ1|²/4 = 1 (0 dB).
	if got := PowerGain(0, math.Inf(1)); math.Abs(got-1) > 1e-12 {
		t.Fatalf("max gain = %v", got)
	}
	// Matched load kills the reflection entirely.
	if got := PowerGainDB(50, math.Inf(1)); math.Abs(got-(-6.02)) > 0.01 {
		t.Fatalf("50Ω gain = %v dB, want -6", got)
	}
}

func TestGainSweepShape(t *testing.T) {
	// Fig. 7a: 0 dB at Z0=0, monotonically decreasing toward ~-26 dB
	// at 1000Ω.
	z, g := GainSweep(1000, 101)
	if z[0] != 0 || g[0] != 0 {
		t.Fatalf("sweep start: z=%v g=%v", z[0], g[0])
	}
	for i := 1; i < len(g); i++ {
		if g[i] >= g[i-1] {
			t.Fatalf("gain not decreasing at %v Ω", z[i])
		}
	}
	if last := g[len(g)-1]; math.Abs(last-(-26.4)) > 0.5 {
		t.Fatalf("gain at 1000Ω = %v, want ~-26.4", last)
	}
}

func TestImpedanceForGainRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		gain := -math.Mod(math.Abs(raw), 25) - 0.5 // (-25.5, -0.5]
		z, err := ImpedanceForGainDB(gain)
		if err != nil {
			return false
		}
		return math.Abs(PowerGainDB(z, math.Inf(1))-gain) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ImpedanceForGainDB(3); err == nil {
		t.Fatal("positive gain accepted")
	}
}

func TestPowerLevels(t *testing.T) {
	levels := PowerLevels()
	want := []float64{0, -4, -10}
	if len(levels) != len(want) {
		t.Fatalf("levels = %v", levels)
	}
	for i, l := range levels {
		if l.GainDB != want[i] {
			t.Errorf("level %d gain = %v, want %v", i, l.GainDB, want[i])
		}
		if got := PowerGainDB(l.Z0Ohms, math.Inf(1)); math.Abs(got-l.GainDB) > 1e-9 {
			t.Errorf("level %d impedance %vΩ realizes %v dB", i, l.Z0Ohms, got)
		}
	}
	if len(ExtendedPowerLevels()) != 6 {
		t.Fatal("extended ladder size")
	}
}

func TestDelayModelBounds(t *testing.T) {
	rng := dsp.NewRand(1)
	m := DefaultDelayModel
	var max float64
	for i := 0; i < 100000; i++ {
		d := m.Draw(rng)
		if d < 0 {
			t.Fatalf("negative delay %v", d)
		}
		if d > m.MaxSec {
			t.Fatalf("delay %v exceeds cap %v", d, m.MaxSec)
		}
		if d > max {
			max = d
		}
	}
	// The tail should actually reach past 2 µs (the >1 FFT bin regime
	// at 500 kHz the SKIP spacing exists for).
	if max < 2e-6 {
		t.Fatalf("max delay only %v", max)
	}
}

func TestDelayModelCalibration(t *testing.T) {
	// Fig. 14b at 500 kHz: most packets land within one bin, with a
	// small but real tail beyond it.
	rng := dsp.NewRand(2)
	m := DefaultDelayModel
	n := 200000
	over1bin := 0
	for i := 0; i < n; i++ {
		if m.Draw(rng)*500e3 > 1 {
			over1bin++
		}
	}
	frac := float64(over1bin) / float64(n)
	if frac < 0.001 || frac > 0.1 {
		t.Fatalf("P(>1 bin at 500kHz) = %v, want ~0.2-5%%", frac)
	}
}

func TestPropagationDelay(t *testing.T) {
	// §3.2.1: 100 m -> 666 ns round trip (0.33 bins at 500 kHz).
	got := PropagationDelaySec(100)
	if math.Abs(got-666e-9) > 2e-9 {
		t.Fatalf("propagation delay = %v", got)
	}
}
