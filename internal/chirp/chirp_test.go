package chirp

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"netscatter/internal/dsp"
)

var tp = Params{SF: 7, BW: 125e3, Oversample: 1}

func TestParamsDerivedQuantities(t *testing.T) {
	p := Default500k9
	if p.Chips() != 512 || p.N() != 512 {
		t.Fatalf("chips/N = %d/%d", p.Chips(), p.N())
	}
	if got := p.SymbolPeriod(); math.Abs(got-1.024e-3) > 1e-9 {
		t.Errorf("symbol period = %v", got)
	}
	if got := p.BinHz(); math.Abs(got-976.5625) > 1e-9 {
		t.Errorf("bin width = %v", got)
	}
	if got := p.OOKBitRate(); math.Abs(got-976.5625) > 1e-9 {
		t.Errorf("OOK bitrate = %v", got)
	}
	if got := p.LoRaBitRate(); math.Abs(got-8789.0625) > 1e-9 {
		t.Errorf("LoRa bitrate = %v", got)
	}
	// Table 1 tolerances at SKIP=2.
	if got := p.TimeToleranceSec(2); math.Abs(got-2e-6) > 1e-12 {
		t.Errorf("time tolerance = %v", got)
	}
	if got := p.FreqToleranceHz(2); math.Abs(got-976.5625) > 1e-9 {
		t.Errorf("freq tolerance = %v", got)
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{SF: 4, BW: 500e3},
		{SF: 13, BW: 500e3},
		{SF: 9, BW: 0},
		{SF: 9, BW: 500e3, Oversample: 3},
		{SF: 9, BW: 500e3, Oversample: 16},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", p)
		}
	}
	if err := Default500k9.Validate(); err != nil {
		t.Errorf("default params rejected: %v", err)
	}
}

func TestOffsetConversions(t *testing.T) {
	p := Default500k9
	// §3.2.1: ΔFFTbin = Δt·BW.
	if got := p.TimeOffsetToBins(2e-6); math.Abs(got-1) > 1e-12 {
		t.Errorf("2us at 500kHz = %v bins, want 1", got)
	}
	// §3.2.2: ΔFFTbin = 2^SF·Δf/BW.
	if got := p.FreqOffsetToBins(976.5625); math.Abs(got-1) > 1e-9 {
		t.Errorf("976.6Hz = %v bins, want 1", got)
	}
	f := func(raw float64) bool {
		bins := math.Mod(raw, 100)
		return math.Abs(p.FreqOffsetToBins(p.BinsToFreqOffset(bins))-bins) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUpchirpUnitModulus(t *testing.T) {
	for _, v := range Upchirp(tp) {
		if math.Abs(cmplx.Abs(v)-1) > 1e-12 {
			t.Fatal("upchirp sample not unit modulus")
		}
	}
}

func TestDownchirpIsConjugate(t *testing.T) {
	up, down := Upchirp(tp), Downchirp(tp)
	for i := range up {
		if cmplx.Abs(down[i]-cmplx.Conj(up[i])) > 1e-12 {
			t.Fatal("downchirp is not the conjugate upchirp")
		}
	}
}

func TestDechirpedBaselineIsDC(t *testing.T) {
	// Upchirp × downchirp = constant frequency at bin 0 (Fig. 3a).
	dem := NewDemodulator(tp, 1)
	bin, _ := dem.DemodSymbol(Upchirp(tp))
	if bin != 0 {
		t.Fatalf("baseline dechirps to bin %d, want 0", bin)
	}
}

func TestCyclicShiftMapsToBin(t *testing.T) {
	// Core CSS property (§2.1): cyclic shift c -> FFT bin c.
	mod := NewModulator(tp)
	dem := NewDemodulator(tp, 1)
	for _, shift := range []int{0, 1, 5, 64, 100, 127} {
		bin, _ := dem.DemodSymbol(mod.Symbol(shift))
		if bin != shift {
			t.Fatalf("shift %d demodulated to bin %d", shift, bin)
		}
	}
}

func TestCyclicShiftQuickAllShifts(t *testing.T) {
	mod := NewModulator(tp)
	dem := NewDemodulator(tp, 1)
	f := func(raw uint8) bool {
		shift := int(raw) % tp.N()
		bin, _ := dem.DemodSymbol(mod.Symbol(shift))
		return bin == shift
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFreqOffsetMovesPeak(t *testing.T) {
	// A frequency offset of k bins moves the dechirped peak k bins
	// (Fig. 3b) — the aliasing equivalence of time and frequency
	// shifts.
	mod := NewModulator(tp)
	dem := NewDemodulator(tp, 8)
	sym := mod.Symbol(10)
	ApplyFreqOffset(sym, 3*tp.BinHz(), tp.SampleRate())
	frac, _ := dem.PeakFrac(sym)
	if math.Abs(frac-13) > 0.1 {
		t.Fatalf("peak at %v, want 13", frac)
	}
}

func TestFreqOffsetAliasesAcrossNyquist(t *testing.T) {
	// Shifting past the band edge wraps around (Fig. 3c).
	mod := NewModulator(tp)
	dem := NewDemodulator(tp, 8)
	sym := mod.Symbol(120)
	ApplyFreqOffset(sym, 20*tp.BinHz(), tp.SampleRate())
	frac, _ := dem.PeakFrac(sym)
	if math.Abs(frac-12) > 0.1 { // 120+20 mod 128
		t.Fatalf("peak at %v, want 12", frac)
	}
}

func TestEvalShiftedMatchesSampledSymbol(t *testing.T) {
	mod := NewModulator(tp)
	for _, shift := range []int{0, 7, 100} {
		sym := mod.Symbol(shift)
		for i := 0; i < tp.N(); i += 13 {
			want := sym[i]
			got := EvalShifted(tp, shift, float64(i))
			if cmplx.Abs(got-want) > 1e-9 {
				t.Fatalf("shift %d sample %d: eval %v != table %v", shift, i, got, want)
			}
		}
	}
}

func TestEvalShiftedMatchesAggregateSymbol(t *testing.T) {
	p := Params{SF: 6, BW: 125e3, Oversample: 2}
	mod := NewModulator(p)
	for _, shift := range []int{0, 5, 70, 127} {
		sym := mod.Symbol(shift)
		for i := 0; i < p.N(); i += 11 {
			if cmplx.Abs(EvalShifted(p, shift, float64(i))-sym[i]) > 1e-9 {
				t.Fatalf("aggregate shift %d sample %d mismatch", shift, i)
			}
		}
	}
}

func TestAggregateShiftsSpanDoubleBand(t *testing.T) {
	// Oversample=2 doubles the shift space: one FFT decodes 2·2^SF
	// shifts (Fig. 5).
	p := Params{SF: 6, BW: 125e3, Oversample: 2}
	mod := NewModulator(p)
	dem := NewDemodulator(p, 1)
	if mod.NumShifts() != 128 {
		t.Fatalf("NumShifts = %d", mod.NumShifts())
	}
	for _, shift := range []int{0, 32, 63, 64, 100, 127} {
		bin, _ := dem.DemodSymbol(mod.Symbol(shift))
		if bin != shift {
			t.Fatalf("aggregate shift %d -> bin %d", shift, bin)
		}
	}
}

func TestDownSymbolDechirpsWithUp(t *testing.T) {
	mod := NewModulator(tp)
	dem := NewDemodulator(tp, 1)
	spec := dem.SpectrumDown(mod.DownSymbol(30))
	idx, _ := dsp.ArgmaxFloat(spec)
	// Downchirp with shift c despreads (against the upchirp) to -c.
	want := dsp.WrapIndex(-30, tp.N())
	if idx != want {
		t.Fatalf("down symbol peak at %d, want %d", idx, want)
	}
}

func TestSpectrumPanicsOnBadLength(t *testing.T) {
	dem := NewDemodulator(tp, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for short symbol")
		}
	}()
	dem.Spectrum(make([]complex128, 7))
}

func TestPeakNearWindow(t *testing.T) {
	mod := NewModulator(tp)
	dem := NewDemodulator(tp, 8)
	spec := dem.Spectrum(mod.Symbol(40))
	pw, at := PeakNear(dem, spec, 40, 1)
	if math.Abs(at-40) > 0.01 {
		t.Fatalf("peak at %v", at)
	}
	if pw < 1000 {
		t.Fatalf("peak power %v too small", pw)
	}
	// A window far from the peak sees only (zero) floor.
	pwFar, _ := PeakNear(dem, spec, 100, 1)
	if pwFar > pw/100 {
		t.Fatalf("far window power %v vs peak %v", pwFar, pw)
	}
}

func TestScale(t *testing.T) {
	sig := []complex128{1, 2i}
	Scale(sig, 3)
	if sig[0] != 3 || sig[1] != 6i {
		t.Fatalf("Scale = %v", sig)
	}
}

func TestModulatorAppendHelpers(t *testing.T) {
	mod := NewModulator(tp)
	w := mod.AppendSymbol(nil, 5)
	w = mod.AppendSilence(w)
	if len(w) != 2*tp.N() {
		t.Fatalf("waveform length %d", len(w))
	}
	for _, v := range w[tp.N():] {
		if v != 0 {
			t.Fatal("silence not zero")
		}
	}
}
