package chirp

import (
	"fmt"
	"slices"

	"netscatter/internal/dsp"
)

// Modulator synthesizes cyclic-shifted chirp symbols for one parameter
// set. The baseline upchirp is generated once; each symbol is a cyclic
// rotation (plus a band frequency offset in aggregate-bandwidth mode).
type Modulator struct {
	p  Params
	up []complex128
}

// NewModulator builds a modulator for p.
func NewModulator(p Params) *Modulator {
	p = p.norm()
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Modulator{p: p, up: Upchirp(p)}
}

// Params returns the modulator's parameter set.
func (m *Modulator) Params() Params { return m.p }

// NumShifts returns the number of distinct cyclic shifts (FFT bins)
// available: Oversample·2^SF.
func (m *Modulator) NumShifts() int { return m.p.N() }

// Symbol returns a freshly allocated upchirp symbol with the given cyclic
// shift. At critical sampling (Oversample == 1) shifts are realized as
// time rotations — what the backscatter chirp generator does in hardware,
// where the wrapped tail aliases back into the same dechirped bin. In
// aggregate-bandwidth mode (Oversample > 1) a time rotation would split
// its energy across bands (the wrap segment aliases at the aggregate band
// edge, fs = Oversample·BW, not at BW), so the shift is realized as the
// equivalent initial-frequency offset instead: the chirp sweeping from
// shift·BW/2^SF, aliasing at the aggregate edge exactly as in Fig. 5.
// The paper's FPGA chirp generator programs initial frequency directly
// (§4.1: "generate assigned cyclic shift with required frequency
// offset"), so this is hardware-faithful too.
func (m *Modulator) Symbol(shift int) []complex128 {
	p := m.p
	shift = dsp.WrapIndex(shift, p.N())
	if p.Oversample == 1 {
		return CyclicShift(m.up, shift)
	}
	sym := make([]complex128, len(m.up))
	copy(sym, m.up)
	ApplyFreqOffset(sym, float64(shift)*p.BinHz(), p.SampleRate())
	return sym
}

// DownSymbol returns the downchirp (conjugate) version of Symbol(shift).
// NetScatter preambles end with two downchirps carrying the same cyclic
// shift as the device's upchirps (§3.3.1).
func (m *Modulator) DownSymbol(shift int) []complex128 {
	sym := m.Symbol(shift)
	for i, v := range sym {
		sym[i] = complex(real(v), -imag(v))
	}
	return sym
}

// AppendSymbol appends Symbol(shift) to dst and returns the extended
// slice, writing the rotation (or frequency mix) directly into the
// appended region — no throwaway per-symbol slice.
func (m *Modulator) AppendSymbol(dst []complex128, shift int) []complex128 {
	p := m.p
	shift = dsp.WrapIndex(shift, p.N())
	if p.Oversample == 1 {
		dst = append(dst, m.up[shift:]...)
		return append(dst, m.up[:shift]...)
	}
	base := len(dst)
	dst = append(dst, m.up...)
	ApplyFreqOffset(dst[base:], float64(shift)*p.BinHz(), p.SampleRate())
	return dst
}

// AppendSilence appends one symbol period of zeros (an OOK '0').
func (m *Modulator) AppendSilence(dst []complex128) []complex128 {
	n := m.p.N()
	base := len(dst)
	dst = slices.Grow(dst, n)[:base+n]
	for i := base; i < len(dst); i++ {
		dst[i] = 0
	}
	return dst
}

// Demodulator de-spreads chirp symbols and locates FFT peaks with
// zero-padded sub-bin resolution. All scratch buffers are preallocated so
// the per-symbol hot path does not allocate (the receiver performs this
// once per symbol regardless of how many devices transmit — the paper's
// constant-receiver-complexity claim). The forward transform runs through
// dsp.FFTPlan.ForwardPruned: only the first N of the ZeroPad·N padded
// samples are nonzero, so the early butterfly stages collapse and the
// zero tail is never even written.
//
// A Demodulator is not safe for concurrent use; create one per goroutine
// (plans are shared and read-only, so per-goroutine demodulators are
// cheap).
type Demodulator struct {
	p       Params
	zeroPad int
	down    []complex128
	up      []complex128
	padBuf  []complex128
	power   []float64
	plan    *dsp.FFTPlan

	// arena backs the batched Spectra API: nSyms contiguous power
	// spectra handed out as sub-slices, reused across calls.
	arena     []float64
	arenaOuts [][]float64

	// Planar batch pipeline state (batch.go): the pruned planar FFT
	// plan and the split re/im scratch a tile of symbols is dechirped
	// and transformed in.
	bplan            *dsp.BatchPlan
	batchRe, batchIm []float64
}

// NewDemodulator builds a demodulator with the given zero-padding factor
// (>= 1). The padded FFT has ZeroPad·N bins; Fig. 8 of the paper uses a
// 10x padding (5120 bins for SF 9).
func NewDemodulator(p Params, zeroPad int) *Demodulator {
	p = p.norm()
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if zeroPad < 1 {
		panic(fmt.Sprintf("chirp: zero-pad factor %d must be >= 1", zeroPad))
	}
	padN := dsp.NextPow2(p.N() * zeroPad)
	zeroPad = padN / p.N()
	return &Demodulator{
		p:       p,
		zeroPad: zeroPad,
		down:    Downchirp(p),
		up:      Upchirp(p),
		padBuf:  make([]complex128, padN),
		power:   make([]float64, padN),
		plan:    dsp.Plan(padN),
	}
}

// Params returns the demodulator's parameter set.
func (d *Demodulator) Params() Params { return d.p }

// ZeroPad returns the effective padding factor (rounded up to keep the
// FFT size a power of two).
func (d *Demodulator) ZeroPad() int { return d.zeroPad }

// PaddedBins returns the number of bins in the padded spectrum.
func (d *Demodulator) PaddedBins() int { return len(d.padBuf) }

// Spectrum de-spreads one received symbol (len == N) against the baseline
// downchirp, zero-pads, and returns the power spectrum. The returned
// slice aliases an internal buffer valid until the next call.
func (d *Demodulator) Spectrum(sym []complex128) []float64 {
	return d.spectrum(d.power, sym, d.down)
}

// SpectrumInto is Spectrum writing the power spectrum into dst, which
// must have length PaddedBins(). It lets callers own the storage — the
// concurrent decoder's workers compute many spectra into one shared
// arena without copies.
func (d *Demodulator) SpectrumInto(dst []float64, sym []complex128) {
	if len(dst) != len(d.padBuf) {
		panic(fmt.Sprintf("chirp: spectrum dst length %d, want %d", len(dst), len(d.padBuf)))
	}
	d.spectrum(dst, sym, d.down)
}

// SpectrumDown de-spreads against the baseline *upchirp* instead, which
// turns received downchirps into tones. The packet-start estimator uses
// this on the two preamble downchirps.
func (d *Demodulator) SpectrumDown(sym []complex128) []float64 {
	return d.spectrum(d.power, sym, d.up)
}

// Spectra computes the power spectra of nSyms consecutive symbols of sig
// beginning at sample index start, returning one PaddedBins()-long slice
// per symbol. All spectra live in a single reused arena, valid until the
// next Spectra call; Spectrum/SpectrumDown use separate storage and do
// not invalidate them.
func (d *Demodulator) Spectra(sig []complex128, start, nSyms int) [][]float64 {
	n := d.p.N()
	if start < 0 || start+nSyms*n > len(sig) {
		panic(fmt.Sprintf("chirp: Spectra window [%d, %d) outside signal of %d samples",
			start, start+nSyms*n, len(sig)))
	}
	m := len(d.padBuf)
	if cap(d.arena) < nSyms*m {
		d.arena = make([]float64, nSyms*m)
		d.arenaOuts = make([][]float64, 0, nSyms)
	}
	d.arena = d.arena[:nSyms*m]
	d.arenaOuts = d.arenaOuts[:0]
	for s := 0; s < nSyms; s++ {
		dst := d.arena[s*m : (s+1)*m]
		d.spectrum(dst, sig[start+s*n:start+(s+1)*n], d.down)
		d.arenaOuts = append(d.arenaOuts, dst)
	}
	return d.arenaOuts
}

func (d *Demodulator) spectrum(dst []float64, sym []complex128, ref []complex128) []float64 {
	n := d.p.N()
	if len(sym) != n {
		panic(fmt.Sprintf("chirp: symbol length %d, want %d", len(sym), n))
	}
	// Fused dechirp: the product lands directly in the transform buffer's
	// nonzero prefix; the padded tail is never touched (ForwardPruned
	// ignores it).
	for i := 0; i < n; i++ {
		d.padBuf[i] = sym[i] * ref[i]
	}
	d.plan.ForwardPruned(d.padBuf, n)
	return dsp.PowerSpectrum(dst, d.padBuf)
}

// BinOf converts a padded-spectrum index to a (possibly fractional)
// chirp bin in [0, N).
func (d *Demodulator) BinOf(paddedIdx int) float64 {
	return float64(paddedIdx) / float64(d.zeroPad)
}

// PaddedIndexOf converts an integer chirp bin to the corresponding
// padded-spectrum index.
func (d *Demodulator) PaddedIndexOf(bin int) int {
	return dsp.WrapIndex(bin, d.p.N()) * d.zeroPad
}

// DemodSymbol locates the strongest peak of one symbol and returns the
// nearest integer chirp bin along with the peak power. This is the
// classic single-transmitter LoRa demodulation (§2.1).
func (d *Demodulator) DemodSymbol(sym []complex128) (bin int, power float64) {
	spec := d.Spectrum(sym)
	idx, pw := dsp.ArgmaxFloat(spec)
	b := int(d.BinOf(idx) + 0.5)
	return dsp.WrapIndex(b, d.p.N()), pw
}

// PeakFrac locates the strongest peak with sub-bin resolution: the padded
// argmax refined by quadratic interpolation. Returns the fractional chirp
// bin in [0, N) and the peak power.
func (d *Demodulator) PeakFrac(sym []complex128) (fracBin float64, power float64) {
	spec := d.Spectrum(sym)
	idx, pw := dsp.ArgmaxFloat(spec)
	frac := dsp.QuadraticInterpolate(spec, idx)
	bins := float64(d.p.N())
	b := d.BinOf(idx) + frac/float64(d.zeroPad)
	for b < 0 {
		b += bins
	}
	for b >= bins {
		b -= bins
	}
	return b, pw
}

// PeakNear returns the maximum power in the padded spectrum within
// ±halfBins (fractional chirp bins) of the expected integer bin, along
// with the fractional bin where it occurs. The concurrent decoder calls
// this once per device per symbol on the shared spectrum.
func PeakNear(d *Demodulator, spec []float64, bin int, halfBins float64) (power float64, at float64) {
	center := d.PaddedIndexOf(bin)
	half := int(halfBins * float64(d.zeroPad))
	idx, pw := windowMax(spec, center, half)
	return pw, d.BinOf(idx)
}

// ScanPeaks locates, for every candidate cyclic shift, the strongest peak
// within ±halfBins chirp bins of its assigned bin — the whole candidate
// set against one shared spectrum in a single pass. outPow[i] receives
// the peak power and outAt[i] (when non-nil) the fractional chirp bin of
// the peak. The inner window loops index the spectrum directly, wrapping
// only at the circular boundary, unlike a per-element modulo walk.
func (d *Demodulator) ScanPeaks(spec []float64, shifts []int, halfBins float64, outPow, outAt []float64) {
	half := int(halfBins * float64(d.zeroPad))
	for i, s := range shifts {
		center := d.PaddedIndexOf(s)
		idx, pw := windowMax(spec, center, half)
		outPow[i] = pw
		if outAt != nil {
			outAt[i] = d.BinOf(idx)
		}
	}
}

// ScanPaddedCenters writes into outPow[i] the maximum power within ±half
// padded bins of centers[i] (a padded-spectrum index). A negative center
// skips that slot, leaving outPow[i] untouched — the payload tracker uses
// this to scan only detected candidates.
func ScanPaddedCenters(spec []float64, centers []int, half int, outPow []float64) {
	for i, c := range centers {
		if c < 0 {
			continue
		}
		_, pw := windowMax(spec, c, half)
		outPow[i] = pw
	}
}

// windowMax returns the index and value of the largest element in the
// circular window [center-half, center+half] of spec. Windows that do
// not straddle the boundary — the overwhelmingly common case — run as a
// single direct slice scan.
func windowMax(spec []float64, center, half int) (idx int, val float64) {
	n := len(spec)
	lo, hi := center-half, center+half
	if lo >= 0 && hi < n {
		idx, val = lo, spec[lo]
		for i := lo + 1; i <= hi; i++ {
			if spec[i] > val {
				idx, val = i, spec[i]
			}
		}
		return idx, val
	}
	return dsp.MaxInWindow(spec, center, half)
}
