// Package chirp implements chirp spread spectrum (CSS) symbol generation
// and demodulation: baseline up/down chirps, cyclic shifts, dechirping and
// FFT-bin detection with zero-padded sub-bin resolution.
//
// This is the modulation substrate shared by the classic LoRa-style modem
// (internal/css) and NetScatter's distributed CSS coding (internal/core).
// Terminology follows §2.1 of the paper: a symbol is one upchirp of
// duration 2^SF/BW; cyclically shifting it in time moves the dechirped
// FFT peak by the same number of bins.
package chirp

import (
	"fmt"
	"math"

	"netscatter/internal/dsp"
)

// Params describes one CSS physical-layer configuration.
type Params struct {
	// SF is the spreading factor; a symbol spans 2^SF chips.
	SF int
	// BW is the chirp bandwidth in Hz. With critical sampling
	// (Oversample == 1) it is also the sample rate.
	BW float64
	// Oversample multiplies the sample rate: fs = Oversample·BW.
	// Oversample == 1 is the standard receiver; Oversample == 2 models
	// the paper's bandwidth-aggregation mode (§3.1, Fig. 5) where one
	// FFT covers an aggregate band of 2·BW.
	Oversample int
}

// Default500k9 is the configuration the paper deploys: 500 kHz bandwidth,
// SF 9, 976 bps per device (Table 1, first row).
var Default500k9 = Params{SF: 9, BW: 500e3, Oversample: 1}

// Validate reports a descriptive error for unusable parameter sets.
func (p Params) Validate() error {
	if p.SF < 5 || p.SF > 12 {
		return fmt.Errorf("chirp: SF %d outside supported range [5,12]", p.SF)
	}
	if p.BW <= 0 {
		return fmt.Errorf("chirp: bandwidth %v must be positive", p.BW)
	}
	if p.Oversample < 1 || p.Oversample > 8 || !dsp.IsPow2(p.Oversample) {
		return fmt.Errorf("chirp: oversample %d must be a power of two in [1,8]", p.Oversample)
	}
	return nil
}

func (p Params) norm() Params {
	if p.Oversample == 0 {
		p.Oversample = 1
	}
	return p
}

// Chips returns the number of chips (and FFT bins at critical sampling)
// per symbol: 2^SF.
func (p Params) Chips() int { return 1 << p.SF }

// N returns the number of samples per symbol: Oversample·2^SF.
func (p Params) N() int { return p.norm().Oversample * p.Chips() }

// SampleRate returns the simulation sample rate in Hz.
func (p Params) SampleRate() float64 { return float64(p.norm().Oversample) * p.BW }

// SymbolPeriod returns the duration of one chirp symbol in seconds:
// 2^SF/BW.
func (p Params) SymbolPeriod() float64 { return float64(p.Chips()) / p.BW }

// BinHz returns the frequency width of one FFT bin: BW/2^SF.
func (p Params) BinHz() float64 { return p.BW / float64(p.Chips()) }

// SymbolRate returns symbols per second: BW/2^SF.
func (p Params) SymbolRate() float64 { return p.BW / float64(p.Chips()) }

// OOKBitRate returns the per-device NetScatter bitrate (one ON-OFF keyed
// bit per symbol): BW/2^SF. Table 1's "Bit Rate" column.
func (p Params) OOKBitRate() float64 { return p.SymbolRate() }

// LoRaBitRate returns the classic CSS bitrate (SF bits per symbol):
// SF·BW/2^SF.
func (p Params) LoRaBitRate() float64 { return float64(p.SF) * p.SymbolRate() }

// TimeToleranceSec returns the largest timing mismatch a SKIP-spaced
// assignment tolerates before adjacent devices collide: (SKIP-1) FFT bins
// worth of time, (SKIP-1)/BW (§3.2.1: ΔFFTbin = Δt·BW).
func (p Params) TimeToleranceSec(skip int) float64 {
	return float64(skip-1) / p.BW
}

// FreqToleranceHz returns the largest frequency mismatch a SKIP-spaced
// assignment tolerates: (SKIP-1) bins, (SKIP-1)·BW/2^SF (§3.2.2:
// ΔFFTbin = 2^SF·Δf/BW).
func (p Params) FreqToleranceHz(skip int) float64 {
	return float64(skip-1) * p.BinHz()
}

// TimeOffsetToBins converts a timing offset in seconds to an FFT-bin
// displacement: ΔFFTbin = Δt·BW.
func (p Params) TimeOffsetToBins(dt float64) float64 { return dt * p.BW }

// FreqOffsetToBins converts a frequency offset in Hz to an FFT-bin
// displacement: ΔFFTbin = 2^SF·Δf/BW.
func (p Params) FreqOffsetToBins(df float64) float64 {
	return df * float64(p.Chips()) / p.BW
}

// BinsToFreqOffset converts a fractional bin displacement to the
// equivalent frequency offset in Hz.
func (p Params) BinsToFreqOffset(bins float64) float64 {
	return bins * p.BinHz()
}

// String implements fmt.Stringer ("BW=500kHz SF=9").
func (p Params) String() string {
	return fmt.Sprintf("BW=%gkHz SF=%d", p.BW/1e3, p.SF)
}

// Upchirp returns the baseline upchirp symbol: a linear frequency sweep
// from -BW/2 to +BW/2 over one symbol period, sampled at the params'
// sample rate. Phase: φ(t) = 2π(-BW/2·t + BW/(2T)·t²).
func Upchirp(p Params) []complex128 {
	p = p.norm()
	n := p.N()
	fs := p.SampleRate()
	t0 := p.SymbolPeriod()
	out := make([]complex128, n)
	slope := p.BW / t0
	for i := 0; i < n; i++ {
		t := float64(i) / fs
		phase := 2 * math.Pi * (-p.BW/2*t + slope/2*t*t)
		out[i] = complex(math.Cos(phase), math.Sin(phase))
	}
	return out
}

// Downchirp returns the conjugate of the baseline upchirp; multiplying a
// received upchirp by it de-spreads the symbol into a constant tone.
func Downchirp(p Params) []complex128 {
	up := Upchirp(p)
	for i, v := range up {
		up[i] = complex(real(v), -imag(v))
	}
	return up
}

// EvalShifted evaluates the shifted upchirp symbol at the continuous
// sample coordinate x in [0, N). It is the analytic counterpart of
// Modulator.Symbol: at integer x it reproduces the sampled symbol
// exactly, and at fractional x it gives the waveform the hardware
// actually transmits between sample instants — which an FFT interpolator
// cannot (the cyclic-shift wrap makes the symbol non-bandlimited).
// Synthesizing fractionally-delayed frames through this evaluator keeps
// timing-offset physics exact, including the partial self-cancellation
// of the two wrap segments that reduces the dechirped peak at
// half-sample offsets.
func EvalShifted(p Params, shift int, x float64) complex128 {
	p = p.norm()
	n := float64(p.N())
	var phase float64
	if p.Oversample == 1 {
		// Time cyclic shift: base phase evaluated at (x+shift) mod N,
		// with φ(u) = 2π(u²/(2N) - u/2) in sample units.
		u := math.Mod(x+float64(shift), n)
		if u < 0 {
			u += n
		}
		phase = 2 * math.Pi * (u*u/(2*n) - u/2)
	} else {
		// Aggregate mode: frequency-shifted base chirp.
		fs := p.SampleRate()
		t := x / fs
		t0 := p.SymbolPeriod()
		slope := p.BW / t0
		phase = 2*math.Pi*(-p.BW/2*t+slope/2*t*t) +
			2*math.Pi*float64(shift)*p.BinHz()*t
	}
	return complex(math.Cos(phase), math.Sin(phase))
}

// CyclicShift returns a copy of sym rotated left by shift samples:
// out[n] = sym[(n+shift) mod N]. Shifting the baseline upchirp by c chips
// moves its dechirped FFT peak to bin c.
func CyclicShift(sym []complex128, shift int) []complex128 {
	n := len(sym)
	out := make([]complex128, n)
	shift = dsp.WrapIndex(shift, n)
	copy(out, sym[shift:])
	copy(out[n-shift:], sym[:shift])
	return out
}

// ApplyFreqOffset rotates sig in place by a complex exponential of df Hz
// at sample rate fs, modeling an oscillator offset.
func ApplyFreqOffset(sig []complex128, df, fs float64) {
	if df == 0 {
		return
	}
	step := 2 * math.Pi * df / fs
	// Incremental rotation avoids a sin/cos per sample.
	rot := complex(math.Cos(step), math.Sin(step))
	cur := complex(1, 0)
	for i := range sig {
		sig[i] *= cur
		cur *= rot
	}
}

// Scale multiplies sig in place by the real amplitude a.
func Scale(sig []complex128, a float64) {
	c := complex(a, 0)
	for i := range sig {
		sig[i] *= c
	}
}
