package chirp

import (
	"testing"

	"netscatter/internal/dsp"
)

// TestSpectrumIntoMatchesSpectrum pins the arena APIs to the original
// single-shot path.
func TestSpectrumIntoMatchesSpectrum(t *testing.T) {
	p := Params{SF: 7, BW: 125e3, Oversample: 1}
	dem := NewDemodulator(p, 8)
	mod := NewModulator(p)
	sym := mod.Symbol(33)

	want := append([]float64(nil), dem.Spectrum(sym)...)
	dst := make([]float64, dem.PaddedBins())
	dem.SpectrumInto(dst, sym)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("bin %d: SpectrumInto %v != Spectrum %v", i, dst[i], want[i])
		}
	}
}

func TestSpectraMatchesPerSymbolSpectrum(t *testing.T) {
	p := Params{SF: 7, BW: 125e3, Oversample: 1}
	dem := NewDemodulator(p, 4)
	mod := NewModulator(p)
	n := p.N()

	var sig []complex128
	shifts := []int{0, 17, 64, 100}
	for _, s := range shifts {
		sig = mod.AppendSymbol(sig, s)
	}

	// Reference spectra first (Spectra reuses its own arena, Spectrum its
	// own buffer — the two must not interfere).
	want := make([][]float64, len(shifts))
	for i := range shifts {
		want[i] = append([]float64(nil), dem.Spectrum(sig[i*n:(i+1)*n])...)
	}
	got := dem.Spectra(sig, 0, len(shifts))
	if len(got) != len(shifts) {
		t.Fatalf("Spectra returned %d spectra, want %d", len(got), len(shifts))
	}
	for s := range got {
		for b := range got[s] {
			if got[s][b] != want[s][b] {
				t.Fatalf("symbol %d bin %d: %v != %v", s, b, got[s][b], want[s][b])
			}
		}
	}
	// Each symbol's dominant peak sits at its shift.
	for s, spec := range got {
		idx, _ := dsp.ArgmaxFloat(spec)
		if bin := int(dem.BinOf(idx) + 0.5); bin != shifts[s] {
			t.Fatalf("symbol %d peak at bin %d, want %d", s, bin, shifts[s])
		}
	}
}

func TestScanPeaksMatchesPeakNear(t *testing.T) {
	p := Params{SF: 7, BW: 125e3, Oversample: 1}
	dem := NewDemodulator(p, 8)
	mod := NewModulator(p)
	spec := append([]float64(nil), dem.Spectrum(mod.Symbol(42))...)

	shifts := []int{0, 1, 42, 63, 127} // includes windows wrapping both edges
	pow := make([]float64, len(shifts))
	at := make([]float64, len(shifts))
	dem.ScanPeaks(spec, shifts, 1.5, pow, at)
	for i, s := range shifts {
		wantPw, wantAt := PeakNear(dem, spec, s, 1.5)
		if pow[i] != wantPw || at[i] != wantAt {
			t.Fatalf("shift %d: ScanPeaks (%v, %v) != PeakNear (%v, %v)",
				s, pow[i], at[i], wantPw, wantAt)
		}
	}
}

func TestScanPaddedCenters(t *testing.T) {
	spec := []float64{1, 9, 2, 3, 8, 1, 0, 5}
	out := []float64{-1, -1, -1}
	ScanPaddedCenters(spec, []int{1, -1, 7}, 1, out)
	if out[0] != 9 {
		t.Fatalf("center 1 max = %v, want 9", out[0])
	}
	if out[1] != -1 {
		t.Fatalf("skipped center overwritten: %v", out[1])
	}
	if out[2] != 5 { // wraps: window {6,7,0} = {0,5,1}
		t.Fatalf("wrapping center max = %v, want 5", out[2])
	}
}
