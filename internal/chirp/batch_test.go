package chirp

import (
	"fmt"
	"testing"

	"netscatter/internal/dsp"
)

// batchTestSignal builds a multi-symbol test signal: a few shifted
// symbols plus noise, long enough for nSyms symbols at an offset.
func batchTestSignal(p Params, nSyms int, seed int64) []complex128 {
	rng := dsp.NewRand(seed)
	mod := NewModulator(p)
	n := p.N()
	sig := make([]complex128, (nSyms+2)*n)
	for i := range sig {
		sig[i] = rng.ComplexNormal(1)
	}
	for s := 0; s < nSyms; s++ {
		sym := mod.Symbol((s*37 + 11) % p.N())
		for i, v := range sym {
			sig[s*n+n/2+i] += v * complex(2.5, 0.4)
		}
	}
	return sig
}

// TestSpectraBatchBitExact requires the planar batch spectra to be
// bit-identical to the single-symbol Spectrum oracle across SF and
// zero-pad combinations, including tiles larger than one batch pass.
func TestSpectraBatchBitExact(t *testing.T) {
	for _, sf := range []int{7, 9} {
		for _, zp := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("sf=%d/zeropad=%d", sf, zp), func(t *testing.T) {
				p := Params{SF: sf, BW: 125e3, Oversample: 1}
				const nSyms = 11 // crosses the 8-symbol tile boundary
				sig := batchTestSignal(p, nSyms, int64(sf*100+zp))
				n := p.N()

				dem := NewDemodulator(p, zp)
				oracle := NewDemodulator(p, zp)
				specs := dem.SpectraBatch(sig, 3, nSyms)
				if len(specs) != nSyms {
					t.Fatalf("got %d spectra, want %d", len(specs), nSyms)
				}
				for s := 0; s < nSyms; s++ {
					want := oracle.Spectrum(sig[3+s*n : 3+(s+1)*n])
					for k := range want {
						if specs[s][k] != want[k] {
							t.Fatalf("symbol %d bin %d: batch %g != oracle %g", s, k, specs[s][k], want[k])
						}
					}
				}
			})
		}
	}
}

// TestSpectraBatchMatchesSpectra checks the batch arena path against the
// existing complex-path Spectra API (same arena layout, same values).
func TestSpectraBatchMatchesSpectra(t *testing.T) {
	p := Params{SF: 8, BW: 250e3, Oversample: 1}
	const nSyms = 5
	sig := batchTestSignal(p, nSyms, 77)

	a := NewDemodulator(p, 4)
	b := NewDemodulator(p, 4)
	batch := a.SpectraBatch(sig, 0, nSyms)
	serial := b.Spectra(sig, 0, nSyms)
	for s := range serial {
		for k := range serial[s] {
			if batch[s][k] != serial[s][k] {
				t.Fatalf("symbol %d bin %d: %g != %g", s, k, batch[s][k], serial[s][k])
			}
		}
	}
}

// TestScanBatchBitExact requires the fused dechirp+FFT+window scan to
// write exactly the peak powers the Spectrum + ScanPaddedCenters
// pipeline produces, in the decoder's candidate-major layout, skipping
// negative centers — across zero-pad factors and window widths,
// including windows that straddle the circular boundary.
func TestScanBatchBitExact(t *testing.T) {
	for _, zp := range []int{1, 8} {
		for _, half := range []int{0, 2, 7} {
			t.Run(fmt.Sprintf("zeropad=%d/half=%d", zp, half), func(t *testing.T) {
				p := Params{SF: 7, BW: 125e3, Oversample: 1}
				const nSyms = 10
				sig := batchTestSignal(p, nSyms, int64(zp*10+half))
				n := p.N()

				dem := NewDemodulator(p, zp)
				oracle := NewDemodulator(p, zp)
				bins := dem.PaddedBins()
				centers := []int{0, 5 * zp, -1, bins - 1, bins / 2, -1, 17 % bins}
				const stride = nSyms + 3

				sentinel := -123.456
				got := make([]float64, len(centers)*stride)
				want := make([]float64, len(centers)*stride)
				for i := range got {
					got[i] = sentinel
					want[i] = sentinel
				}

				dem.ScanBatch(sig, 2, 0, nSyms, centers, half, got, stride)

				scan := make([]float64, len(centers))
				for s := 0; s < nSyms; s++ {
					spec := oracle.Spectrum(sig[2+s*n : 2+(s+1)*n])
					ScanPaddedCenters(spec, centers, half, scan)
					for i, c := range centers {
						if c >= 0 {
							want[i*stride+s] = scan[i]
						}
					}
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("arena cell %d: batch %g != oracle %g", i, got[i], want[i])
					}
				}
			})
		}
	}
}

// TestScanBatchOffsetColumns checks that firstSym offsets land in the
// right arena columns (the parallel decoder hands workers disjoint
// symbol ranges of one arena).
func TestScanBatchOffsetColumns(t *testing.T) {
	p := Params{SF: 7, BW: 125e3, Oversample: 1}
	const nSyms = 9
	sig := batchTestSignal(p, nSyms, 5)

	centers := []int{3, 40, 99}
	whole := NewDemodulator(p, 2)
	split := NewDemodulator(p, 2)

	a := make([]float64, len(centers)*nSyms)
	b := make([]float64, len(centers)*nSyms)
	whole.ScanBatch(sig, 0, 0, nSyms, centers, 3, a, nSyms)
	// Same symbols, scanned as two separate batches with symbol offsets.
	split.ScanBatch(sig, 0, 0, 4, centers, 3, b, nSyms)
	split.ScanBatch(sig, 0, 4, nSyms-4, centers, 3, b, nSyms)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cell %d: whole-batch %g != split-batch %g", i, a[i], b[i])
		}
	}
}

func BenchmarkScanBatch48(b *testing.B) {
	p := Default500k9
	const nSyms = 48
	sig := batchTestSignal(p, nSyms, 1)
	dem := NewDemodulator(p, 8)
	centers := make([]int, 64)
	for i := range centers {
		centers[i] = (i * 8 * dem.ZeroPad()) % dem.PaddedBins()
	}
	out := make([]float64, len(centers)*nSyms)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dem.ScanBatch(sig, 0, 0, nSyms, centers, 2, out, nSyms)
	}
}
