package chirp

import (
	"fmt"

	"netscatter/internal/dsp"
)

// Batched receive front-end. The per-symbol receiver cost is one
// dechirp, one zero-pad-pruned FFT and one spectrum read-off; the batch
// kernels below run a whole run of candidate symbols through those
// stages in one pre-planned pass over a planar (split real/imaginary)
// buffer — the layout dsp.BatchPlan's bounds-check-free butterfly loops
// operate on. Results are bit-identical to the single-symbol
// Spectrum/ScanPaddedCenters path, which the decoder keeps as its
// exactness oracle (core.Decoder.DecodeFrameOracle).

// batchTile bounds how many symbols are dechirped into the planar
// scratch per ForwardBatch pass: 8 symbols of a 4096-bin padded
// transform are 512 KiB of planar floats — enough to amortize per-pass
// overhead while keeping the scratch's cache footprint bounded.
const batchTile = 8

// batchPlan returns the demodulator's planar pruned-FFT plan, building
// it on first use (the plan itself is cached process-wide).
func (d *Demodulator) batchPlan() *dsp.BatchPlan {
	if d.bplan == nil {
		d.bplan = dsp.PlanBatch(len(d.padBuf), d.p.N())
	}
	return d.bplan
}

// growBatch sizes the planar scratch for a tile of nSyms symbols.
func (d *Demodulator) growBatch(nSyms int) {
	m := nSyms * len(d.padBuf)
	if cap(d.batchRe) < m {
		d.batchRe = make([]float64, m)
		d.batchIm = make([]float64, m)
	}
	d.batchRe = d.batchRe[:m]
	d.batchIm = d.batchIm[:m]
}

// dechirpTile writes the dechirped products of count consecutive
// symbols (symbol indices firstSym, firstSym+1, … relative to sample
// index start) into the planar scratch prefixes and runs the batched
// pruned transform over them. Only the first N entries of each
// padN-long stride are written — the pruned transform treats the tail
// as zero without reading it.
func (d *Demodulator) dechirpTile(sig []complex128, start, firstSym, count int) {
	n := d.p.N()
	padN := len(d.padBuf)
	down := d.down
	for s := 0; s < count; s++ {
		sym := sig[start+(firstSym+s)*n : start+(firstSym+s+1)*n]
		re := d.batchRe[s*padN : s*padN+n]
		im := d.batchIm[s*padN : s*padN+n]
		dsp.Dechirp(re, im, sym, down[:n])
	}
	d.batchPlan().ForwardBatch(d.batchRe, d.batchIm, count)
}

// SpectraBatch computes the power spectra of nSyms consecutive symbols
// of sig beginning at sample index start through the planar batch
// pipeline, returning one PaddedBins()-long slice per symbol. Spectra
// live in the same reused arena as Spectra (valid until the next
// Spectra/SpectraBatch call) and are bit-identical to what Spectrum
// produces symbol by symbol.
func (d *Demodulator) SpectraBatch(sig []complex128, start, nSyms int) [][]float64 {
	m := len(d.padBuf)
	if cap(d.arena) < nSyms*m {
		d.arena = make([]float64, nSyms*m)
		d.arenaOuts = make([][]float64, 0, nSyms)
	}
	d.arena = d.arena[:nSyms*m]
	d.arenaOuts = d.arenaOuts[:0]
	d.SpectraBatchInto(d.arena, sig, start, nSyms)
	for s := 0; s < nSyms; s++ {
		d.arenaOuts = append(d.arenaOuts, d.arena[s*m:(s+1)*m])
	}
	return d.arenaOuts
}

// SpectraBatchInto is SpectraBatch writing the nSyms power spectra into
// caller-owned storage (len(dst) >= nSyms·PaddedBins()) — the parallel
// decoder's workers fill disjoint sections of one shared arena, a whole
// symbol batch per work item.
func (d *Demodulator) SpectraBatchInto(dst []float64, sig []complex128, start, nSyms int) {
	n := d.p.N()
	padN := len(d.padBuf)
	if start < 0 || start+nSyms*n > len(sig) {
		panic(fmt.Sprintf("chirp: SpectraBatch window [%d, %d) outside signal of %d samples",
			start, start+nSyms*n, len(sig)))
	}
	if len(dst) < nSyms*padN {
		panic(fmt.Sprintf("chirp: SpectraBatch dst length %d, want at least %d", len(dst), nSyms*padN))
	}
	d.growBatch(min(nSyms, batchTile))
	for lo := 0; lo < nSyms; lo += batchTile {
		count := min(batchTile, nSyms-lo)
		d.dechirpTile(sig, start, lo, count)
		for s := 0; s < count; s++ {
			dsp.PowerSpectrumPlanar(dst[(lo+s)*padN:(lo+s+1)*padN],
				d.batchRe[s*padN:(s+1)*padN], d.batchIm[s*padN:(s+1)*padN])
		}
	}
}

// ScanBatch fuses the payload tracker's per-symbol pipeline: it
// dechirps and transforms symbols [firstSym, firstSym+nSyms) of the
// frame section starting at sample index start, then scans each
// candidate's ±half padded-bin window and writes the peak power of
// candidate i at symbol s into out[i·stride + s] — candidate-major,
// directly into the decoder's power arena, with no intermediate power
// spectrum ever materialized (window powers are read straight off the
// planar transform). Negative centers skip their candidate, leaving the
// arena untouched, exactly like ScanPaddedCenters.
func (d *Demodulator) ScanBatch(sig []complex128, start, firstSym, nSyms int, centers []int, half int, out []float64, stride int) {
	n := d.p.N()
	padN := len(d.padBuf)
	if start < 0 || start+(firstSym+nSyms)*n > len(sig) {
		panic(fmt.Sprintf("chirp: ScanBatch window [%d, %d) outside signal of %d samples",
			start+firstSym*n, start+(firstSym+nSyms)*n, len(sig)))
	}
	d.growBatch(min(nSyms, batchTile))
	for lo := 0; lo < nSyms; lo += batchTile {
		count := min(batchTile, nSyms-lo)
		d.dechirpTile(sig, start, firstSym+lo, count)
		for s := 0; s < count; s++ {
			re := d.batchRe[s*padN : (s+1)*padN]
			im := d.batchIm[s*padN : (s+1)*padN]
			col := firstSym + lo + s
			for i, c := range centers {
				if c < 0 {
					continue
				}
				out[i*stride+col] = planarWindowPower(re, im, c, half)
			}
		}
	}
}

// ScanBatchEmit is ScanBatch with the power spectra kept: besides the
// fused dechirp+FFT+window scan, the power spectrum of symbol column
// col = firstSym+lo+s is materialized into
// emit[col·PaddedBins() : (col+1)·PaddedBins()] through the same
// dsp.PowerSpectrumPlanar kernel SpectraBatchInto uses, so the emitted
// rows are bit-identical to the spectra the fused kernel would
// otherwise discard. The scan output in out is untouched relative to
// ScanBatch; emitting is a pure by-product. The soft cross-AP combiner
// sums emitted arenas across APs before one combined decode.
func (d *Demodulator) ScanBatchEmit(sig []complex128, start, firstSym, nSyms int, centers []int, half int, out []float64, stride int, emit []float64) {
	n := d.p.N()
	padN := len(d.padBuf)
	if start < 0 || start+(firstSym+nSyms)*n > len(sig) {
		panic(fmt.Sprintf("chirp: ScanBatchEmit window [%d, %d) outside signal of %d samples",
			start+firstSym*n, start+(firstSym+nSyms)*n, len(sig)))
	}
	if len(emit) < (firstSym+nSyms)*padN {
		panic(fmt.Sprintf("chirp: ScanBatchEmit emit length %d, want at least %d", len(emit), (firstSym+nSyms)*padN))
	}
	d.growBatch(min(nSyms, batchTile))
	for lo := 0; lo < nSyms; lo += batchTile {
		count := min(batchTile, nSyms-lo)
		d.dechirpTile(sig, start, firstSym+lo, count)
		for s := 0; s < count; s++ {
			re := d.batchRe[s*padN : (s+1)*padN]
			im := d.batchIm[s*padN : (s+1)*padN]
			col := firstSym + lo + s
			dsp.PowerSpectrumPlanar(emit[col*padN:(col+1)*padN], re, im)
			for i, c := range centers {
				if c < 0 {
					continue
				}
				out[i*stride+col] = planarWindowPower(re, im, c, half)
			}
		}
	}
}

// planarWindowPower returns the maximum |X[k]|² in the circular window
// [center-half, center+half] of the planar spectrum (re, im). Window
// powers use the exact PowerSpectrum expression and the exact windowMax
// scan order, so the result is bit-identical to materializing the power
// spectrum and calling windowMax on it.
func planarWindowPower(re, im []float64, center, half int) float64 {
	n := len(re)
	lo, hi := center-half, center+half
	if lo >= 0 && hi < n {
		// Contiguous window: dsp's max-power kernel (AVX2 with a
		// bit-identical scalar fallback).
		return dsp.MaxPower(re[lo:hi+1], im[lo:hi+1])
	}
	// Boundary-straddling window: mirror dsp.MaxInWindow's walk.
	val := 0.0
	first := true
	for off := -half; off <= half; off++ {
		i := dsp.WrapIndex(center+off, n)
		r, m := re[i], im[i]
		p := r*r + m*m
		if first || p > val {
			val = p
			first = false
		}
	}
	return val
}
