package radio

// Time-varying channel evolution for multi-round trajectories. Unlike
// FadingProcess (driven by a *dsp.Rand forked from the network's
// master generator), the types here evolve from value-type dsp.Streams
// derived by dsp.StreamAt(seed, key) — a pure function of the trajectory
// seed and the device index — so a multi-round trajectory's channel
// history is bit-reproducible from one seed, independent of everything
// the round path itself draws. See DESIGN-trajectory.md.

import (
	"math"

	"netscatter/internal/dsp"
)

// BesselJ0 evaluates the Bessel function of the first kind of order
// zero — the Jakes/Clarke temporal autocorrelation of an isotropic
// scattering channel. Polynomial approximations from Abramowitz &
// Stegun 9.4.1 (|x| ≤ 3) and 9.4.3 (|x| > 3); absolute error under
// 5e-8 and 2e-7 per the handbook bounds, far inside what an AR(1)
// correlation coefficient can resolve.
func BesselJ0(x float64) float64 {
	x = math.Abs(x)
	if x <= 3 {
		t := x * x / 9
		return 1 + t*(-2.2499997+t*(1.2656208+t*(-0.3163866+
			t*(0.0444479+t*(-0.0039444+t*0.0002100)))))
	}
	t := 3 / x
	f0 := 0.79788456 + t*(-0.00000077+t*(-0.00552740+t*(-0.00009512+
		t*(0.00137237+t*(-0.00072805+t*0.00014476)))))
	theta0 := x - 0.78539816 + t*(-0.04166397+t*(-0.00003954+
		t*(0.00262573+t*(-0.00054125+t*(-0.00029333+t*0.00013558)))))
	return f0 * math.Cos(theta0) / math.Sqrt(x)
}

// JakesCorrelation returns the AR(1) step correlation matching the
// Jakes model at lag stepSec for a maximum Doppler shift dopplerHz:
// rho = J0(2π·fD·T). J0 oscillates below zero past its first root
// (fD·T ≈ 0.38); a negative or tiny correlation means successive
// rounds are effectively independent, so the result is clamped to
// [0, 1) — rho = 0 is the degenerate i.i.d. regime.
func JakesCorrelation(dopplerHz, stepSec float64) float64 {
	rho := BesselJ0(2 * math.Pi * dopplerHz * stepSec)
	if rho < 0 {
		return 0
	}
	if rho >= 1 {
		// fD·T = 0: a static channel between rounds.
		return 1
	}
	return rho
}

// CorrelatedFader is the trajectory-grade Ricean fader: the same
// static-plus-AR(1)-scatter model as FadingProcess, but evolved from a
// value-type dsp.Stream so the fade history of device i is a pure
// function of (seed, i). With Rho = 0 every Step draws an independent
// Ricean sample — exactly the i.i.d. sequence a fresh draw per round
// would produce from the same stream (test-enforced oracle).
type CorrelatedFader struct {
	// KFactorDB is the Ricean K-factor (static-to-scattered power ratio).
	KFactorDB float64
	// Rho is the per-step AR(1) correlation (JakesCorrelation for a
	// physical Doppler/round-period pair).
	Rho float64

	st      dsp.Stream
	static  complex128
	scatter complex128
}

// NewCorrelatedFader initializes the fader's state from the stream:
// a uniformly random static phase, then one stationary scatter draw.
// Total mean power is normalized to 1 (static k/(k+1), scatter
// 1/(k+1)).
func NewCorrelatedFader(kFactorDB, rho float64, st dsp.Stream) *CorrelatedFader {
	f := &CorrelatedFader{KFactorDB: kFactorDB, Rho: rho, st: st}
	k := DBToLinear(kFactorDB)
	f.static = complex(math.Sqrt(k/(k+1)), 0) * f.st.UniformPhase()
	f.scatter = f.st.NormComplex(1 / (k + 1))
	return f
}

// Step advances the fade one round and returns the new complex channel
// gain: scatter ← rho·scatter + √(1-rho²)·CN(0, 1/(k+1)) — the
// variance-preserving Gauss-Markov recurrence, stationary for any
// rho ∈ [0, 1).
func (f *CorrelatedFader) Step() complex128 {
	rho := f.Rho
	innov := f.st.NormComplex((1 - rho*rho) / (DBToLinear(f.KFactorDB) + 1))
	f.scatter = complex(rho, 0)*f.scatter + innov
	return f.static + f.scatter
}

// Gain returns the current complex channel gain without advancing.
func (f *CorrelatedFader) Gain() complex128 { return f.static + f.scatter }

// GainDB returns the instantaneous power gain of the current state in
// dB relative to the mean channel.
func (f *CorrelatedFader) GainDB() float64 {
	h := f.static + f.scatter
	return LinearToDB(real(h)*real(h) + imag(h)*imag(h))
}

// SetDeepFade forces the fader into a fade depthDB below the mean
// channel by collapsing the scatter component against the static one —
// the trajectory tests' fault-injection hook. Subsequent Steps recover
// toward the stationary distribution at the fader's own rho.
func (f *CorrelatedFader) SetDeepFade(depthDB float64) {
	target := math.Sqrt(DBToLinear(-depthDB))
	h := f.static + f.scatter
	mag := math.Sqrt(real(h)*real(h) + imag(h)*imag(h))
	dir := complex(1, 0)
	if mag > 0 {
		dir = h * complex(1/mag, 0)
	}
	f.scatter = dir*complex(target, 0) - f.static
}

// CFOWalk is a per-device carrier-frequency-offset random walk layered
// on top of the oscillator's static ppm error and per-packet jitter: a
// slow thermal drift accumulating StepHz-sized Gaussian increments per
// round, reflected at ±BoundHz so a long trajectory cannot wander
// beyond what the crystal could physically produce.
type CFOWalk struct {
	// StepHz is the standard deviation of the per-round drift increment.
	StepHz float64
	// BoundHz reflects the accumulated offset into [-BoundHz, +BoundHz]
	// (0 disables the reflection).
	BoundHz float64

	st     dsp.Stream
	offset float64
}

// NewCFOWalk returns a walk starting at zero accumulated drift.
func NewCFOWalk(stepHz, boundHz float64, st dsp.Stream) *CFOWalk {
	return &CFOWalk{StepHz: stepHz, BoundHz: boundHz, st: st}
}

// Step advances the walk one round and returns the accumulated offset
// in Hz.
func (w *CFOWalk) Step() float64 {
	w.offset += w.StepHz * w.st.NormFloat64()
	if b := w.BoundHz; b > 0 {
		for w.offset > b || w.offset < -b {
			if w.offset > b {
				w.offset = 2*b - w.offset
			} else {
				w.offset = -2*b - w.offset
			}
		}
	}
	return w.offset
}

// OffsetHz returns the current accumulated offset without advancing.
func (w *CFOWalk) OffsetHz() float64 { return w.offset }
