// Package radio provides the RF-level substrate for the NetScatter
// simulation: unit conversions, thermal noise, path loss and link
// budgets, Rayleigh fading, Doppler, multipath, oscillator imperfection
// models, and the AP's ASK downlink with the tag-side envelope detector.
//
// The simulator works in normalized complex baseband: thermal noise has
// unit power (sigma² = 1), and a transmission arriving with SNR s dB is
// synthesized with amplitude sqrt(10^(s/10)). Absolute dBm quantities are
// used only in the link-budget layer that produces those SNRs.
package radio

import "math"

// DBmToWatts converts dBm to watts.
func DBmToWatts(dbm float64) float64 {
	return math.Pow(10, (dbm-30)/10)
}

// WattsToDBm converts watts to dBm.
func WattsToDBm(w float64) float64 {
	return 10*math.Log10(w) + 30
}

// DBToLinear converts a dB power ratio to linear.
func DBToLinear(db float64) float64 { return math.Pow(10, db/10) }

// LinearToDB converts a linear power ratio to dB.
func LinearToDB(lin float64) float64 { return 10 * math.Log10(lin) }

// AmplitudeForSNRdB returns the per-sample signal amplitude that yields
// the given SNR against unit-power complex noise.
func AmplitudeForSNRdB(snrDB float64) float64 {
	return math.Sqrt(DBToLinear(snrDB))
}

// ThermalNoiseDBm returns the thermal noise floor in dBm for a bandwidth
// in Hz and a receiver noise figure in dB: -174 + 10log10(BW) + NF.
func ThermalNoiseDBm(bwHz, noiseFigureDB float64) float64 {
	return -174 + 10*math.Log10(bwHz) + noiseFigureDB
}

// DefaultNoiseFigureDB is the receiver noise figure assumed throughout
// the reproduction. With NF = 6 dB, the 500 kHz noise floor is
// -111 dBm, which makes the paper's quoted -123 dBm sensitivity at
// (500 kHz, SF 9) correspond to a -12 dB demodulation SNR.
const DefaultNoiseFigureDB = 6.0

// SpeedOfLight in m/s.
const SpeedOfLight = 299792458.0

// CarrierHz is the 900 MHz ISM-band carrier the paper's hardware uses.
const CarrierHz = 900e6

// DopplerShiftHz returns the Doppler frequency shift for a device moving
// at speed m/s relative to a carrier at carrierHz: f·v/c. The paper
// (§4.2, Measurements 3) notes 10 m/s at 900 MHz is only 30 Hz, far
// below one FFT bin.
func DopplerShiftHz(speedMS, carrierHz float64) float64 {
	return carrierHz * speedMS / SpeedOfLight
}
