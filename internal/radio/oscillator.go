package radio

import "netscatter/internal/dsp"

// Oscillator models a crystal-driven clock with a static part-per-million
// error plus small per-packet drift. The paper's key observation (§2.2)
// is that backscatter devices synthesize only baseband frequencies
// (< 10 MHz), so the same crystal tolerance produces ~90x smaller
// absolute frequency offsets than a 900 MHz radio — which is why Choir's
// fractional-bin trick cannot separate backscatter devices.
type Oscillator struct {
	// NominalHz is the frequency being synthesized (the 3 MHz
	// backscatter subcarrier, or the 900 MHz carrier for a radio).
	NominalHz float64
	// PPM is this device's static crystal error in parts per million.
	PPM float64
	// DriftHz is the standard deviation of the additional per-packet
	// frequency wander (temperature, supply voltage).
	DriftHz float64
}

// StaticOffsetHz returns the device's static frequency offset:
// NominalHz·PPM·1e-6.
func (o Oscillator) StaticOffsetHz() float64 {
	return o.NominalHz * o.PPM * 1e-6
}

// PacketOffsetHz returns the total frequency offset for one packet:
// static plus a fresh drift draw.
func (o Oscillator) PacketOffsetHz(rng *dsp.Rand) float64 {
	return o.StaticOffsetHz() + rng.Normal(0, o.DriftHz)
}

// NewBackscatterOscillator draws a backscatter device's oscillator:
// 3 MHz subcarrier with a crystal error drawn from N(0, ppmSigma),
// clipped to ±maxPPM. With a 40 ppm crystal the worst-case offset is
// 3e6·40e-6 = 120 Hz, matching the < 150 Hz spread of Fig. 14a.
func NewBackscatterOscillator(rng *dsp.Rand, ppmSigma, maxPPM float64) Oscillator {
	return Oscillator{
		NominalHz: 3e6,
		PPM:       rng.TruncNormal(0, ppmSigma, -maxPPM, maxPPM),
		DriftHz:   5,
	}
}

// NewRadioOscillator draws a LoRa radio's oscillator: the full 900 MHz
// carrier is synthesized from the crystal, so the same ppm error is
// amplified by the carrier frequency (Choir's enabling imperfection).
func NewRadioOscillator(rng *dsp.Rand, ppmSigma, maxPPM float64) Oscillator {
	return Oscillator{
		NominalHz: CarrierHz,
		PPM:       rng.TruncNormal(0, ppmSigma, -maxPPM, maxPPM),
		DriftHz:   30,
	}
}
