package radio

import (
	"math"
	"testing"

	"netscatter/internal/dsp"
)

// TestBesselJ0Known checks the approximation against handbook values:
// J0(0) = 1, the first root at 2.4048255577, and a mid-range value in
// each polynomial regime.
func TestBesselJ0Known(t *testing.T) {
	cases := []struct{ x, want, tol float64 }{
		{0, 1, 1e-12},
		{1, 0.7651976866, 1e-6},
		{2.4048255577, 0, 1e-6},
		{5, -0.1775967713, 1e-6},
		{10, -0.2459357645, 1e-6},
	}
	for _, c := range cases {
		if got := BesselJ0(c.x); math.Abs(got-c.want) > c.tol {
			t.Errorf("J0(%v) = %v, want %v ± %v", c.x, got, c.want, c.tol)
		}
	}
	if BesselJ0(-1) != BesselJ0(1) {
		t.Errorf("J0 must be even")
	}
}

// TestJakesCorrelation pins the clamped AR(1) mapping: a static channel
// at fD = 0, a decaying positive correlation for slow fading, and 0 once
// J0 crosses its first root (successive rounds decorrelated).
func TestJakesCorrelation(t *testing.T) {
	if rho := JakesCorrelation(0, 1); rho != 1 {
		t.Fatalf("fD=0 gives rho %v, want 1", rho)
	}
	slow := JakesCorrelation(0.05, 1) // fD·T = 0.05
	if slow <= 0.8 || slow >= 1 {
		t.Fatalf("slow-fading rho %v outside (0.8, 1)", slow)
	}
	fast := JakesCorrelation(10, 1) // way past the first J0 root
	if fast < 0 || fast > 0.3 {
		t.Fatalf("fast-fading rho %v, want small and non-negative", fast)
	}
	if rho := JakesCorrelation(0.383, 1); rho != 0 {
		// 2π·0.383 ≈ 2.406, just past the first root: clamped to 0.
		t.Fatalf("past-root rho %v, want clamp to 0", rho)
	}
}

// TestCorrelatedFaderRhoZeroIIDOracle: with Rho = 0 every Step must
// reproduce, bit-exactly, the i.i.d. Ricean sequence drawn directly
// from the same stream — the correlation-0 degeneracy the trajectory
// layer's oracle rests on.
func TestCorrelatedFaderRhoZeroIIDOracle(t *testing.T) {
	const kDB = 8.0
	f := NewCorrelatedFader(kDB, 0, dsp.StreamAt(42, 7))

	ref := dsp.StreamAt(42, 7)
	k := DBToLinear(kDB)
	static := complex(math.Sqrt(k/(k+1)), 0) * ref.UniformPhase()
	ref.NormComplex(1 / (k + 1)) // the init-time scatter draw
	for step := 0; step < 64; step++ {
		want := static + ref.NormComplex(1/(k+1))
		if got := f.Step(); got != want {
			t.Fatalf("step %d: rho=0 fader %v, i.i.d. draw %v", step, got, want)
		}
	}
}

// TestCorrelatedFaderStationary: the Gauss-Markov recurrence preserves
// the unit mean channel power for rho inside (0, 1).
func TestCorrelatedFaderStationary(t *testing.T) {
	f := NewCorrelatedFader(6, 0.95, dsp.StreamAt(9, 3))
	var acc float64
	const steps = 50000
	for i := 0; i < steps; i++ {
		h := f.Step()
		acc += real(h)*real(h) + imag(h)*imag(h)
	}
	if mean := acc / steps; math.Abs(mean-1) > 0.08 {
		t.Fatalf("mean channel power %v, want 1 ± 0.08", mean)
	}
}

// TestCorrelatedFaderReproducible: the fade history is a pure function
// of (seed, stream index); distinct indices decorrelate.
func TestCorrelatedFaderReproducible(t *testing.T) {
	a := NewCorrelatedFader(10, 0.9, dsp.StreamAt(5, 1))
	b := NewCorrelatedFader(10, 0.9, dsp.StreamAt(5, 1))
	c := NewCorrelatedFader(10, 0.9, dsp.StreamAt(5, 2))
	same, diff := true, false
	for i := 0; i < 32; i++ {
		ga, gb, gc := a.Step(), b.Step(), c.Step()
		same = same && ga == gb
		diff = diff || ga != gc
	}
	if !same {
		t.Fatalf("same (seed, index) diverged")
	}
	if !diff {
		t.Fatalf("distinct stream indices produced identical fades")
	}
}

// TestCorrelatedFaderSetDeepFade: the fault-injection hook lands the
// instantaneous gain at the requested depth, and the process recovers
// toward the mean afterwards.
func TestCorrelatedFaderSetDeepFade(t *testing.T) {
	f := NewCorrelatedFader(10, 0.5, dsp.StreamAt(1, 0))
	f.SetDeepFade(30)
	if g := f.GainDB(); math.Abs(g-(-30)) > 1e-9 {
		t.Fatalf("after SetDeepFade(30): gain %v dB, want -30", g)
	}
	var acc float64
	for i := 0; i < 2000; i++ {
		f.Step()
		acc += DBToLinear(f.GainDB())
	}
	if mean := acc / 2000; mean < 0.5 {
		t.Fatalf("mean power %v after deep fade: process did not recover", mean)
	}
}

// TestCFOWalk: the drift stays inside the reflection bound, accumulates
// (non-degenerate), and is reproducible from its stream.
func TestCFOWalk(t *testing.T) {
	a := NewCFOWalk(3, 40, dsp.StreamAt(11, 4))
	b := NewCFOWalk(3, 40, dsp.StreamAt(11, 4))
	moved := false
	for i := 0; i < 5000; i++ {
		oa := a.Step()
		if math.Abs(oa) > 40 {
			t.Fatalf("step %d: offset %v beyond bound 40", i, oa)
		}
		if oa != b.Step() {
			t.Fatalf("step %d: same-stream walks diverged", i)
		}
		if math.Abs(oa) > 1 {
			moved = true
		}
	}
	if !moved {
		t.Fatalf("walk never left ±1 Hz — drift not accumulating")
	}
	if a.OffsetHz() != b.OffsetHz() {
		t.Fatalf("OffsetHz mismatch")
	}
}
