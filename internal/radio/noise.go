package radio

import (
	"math"

	"netscatter/internal/dsp"
)

// noiseBlock is the number of complex samples filled per batch draw in
// the fused AWGN pass: 2·noiseBlock float64s (4 KiB) of stack scratch,
// small enough to stay cache- and stack-resident, large enough to
// amortize the batch call.
const noiseBlock = 256

// AddAWGN adds circularly symmetric complex Gaussian noise with total
// power noisePower to sig in place, drawing from a dsp.Stream — the
// fused "fill + add" pass of the vectorized noise engine: the ziggurat
// sampler fills a small planar block, which is scaled and accumulated
// while still hot, so the per-sample cost is one batch table lookup and
// one multiply-add instead of a scaled per-sample generator call. Each
// complex sample consumes two normals, real part first, matching the
// draw order of the per-sample oracle path.
func AddAWGN(st *dsp.Stream, sig []complex128, noisePower float64) {
	s := math.Sqrt(noisePower / 2)
	var buf [2 * noiseBlock]float64
	for base := 0; base < len(sig); base += noiseBlock {
		blk := sig[base:min(base+noiseBlock, len(sig))]
		st.NormBatch(buf[: 2*len(blk) : 2*len(blk)])
		dsp.AddScaledFloats(blk, buf[:2*len(blk)], s)
	}
}

// AddUnitNoise adds unit-power complex noise, the normalization used
// throughout the simulator.
func AddUnitNoise(st *dsp.Stream, sig []complex128) {
	AddAWGN(st, sig, 1)
}

// AddAWGNOracle is the retained math/rand reference path: one
// Rand.ComplexNormal draw per sample. The statistical tests pin the
// stream engine's noise distribution against it; simulation code should
// use AddAWGN.
func AddAWGNOracle(rng *dsp.Rand, sig []complex128, noisePower float64) {
	for i := range sig {
		sig[i] += rng.ComplexNormal(noisePower)
	}
}

// Superpose adds src (starting at sample offset) into dst, clipping src
// to dst's bounds. It returns the number of samples written. This is how
// concurrent backscatter transmissions combine at the AP antenna.
//
// The overlap is clipped once up front so the accumulation loop carries
// no per-element bounds branch — with hundreds of concurrent frames
// this add is one of the receiver front-end's hottest loops; the add
// itself runs through dsp.AddInto's vector kernel where available
// (bit-identical to the scalar loop by the lane-independence argument
// in dsp/simd.go).
func Superpose(dst, src []complex128, offset int) int {
	lo, hi := clipRange(len(dst), len(src), offset)
	if hi <= lo {
		return 0
	}
	dsp.AddInto(dst[offset+lo:offset+hi], src[lo:hi:hi])
	return hi - lo
}

// SuperposeBatch accumulates every source into dst in one pass:
// srcs[k] is added starting at sample offsets[k], clipped to dst's
// bounds, in slice order — element for element the same additions in
// the same order as calling Superpose once per source, so the composite
// signal is bit-identical to the serial loop it replaces. Empty or
// fully clipped sources are skipped. It returns the total number of
// samples written.
func SuperposeBatch(dst []complex128, srcs [][]complex128, offsets []int) int {
	if len(srcs) != len(offsets) {
		panic("radio: SuperposeBatch sources and offsets differ in length")
	}
	total := 0
	for k, src := range srcs {
		total += Superpose(dst, src, offsets[k])
	}
	return total
}

// clipRange returns the half-open range [lo, hi) of src indices that
// land inside a dst of length dstLen when src is placed at offset.
func clipRange(dstLen, srcLen, offset int) (lo, hi int) {
	lo = 0
	if offset < 0 {
		lo = -offset
	}
	hi = srcLen
	if offset+hi > dstLen {
		hi = dstLen - offset
	}
	return lo, hi
}

// MeasureSNRdB estimates the SNR of a signal of known power against unit
// noise; provided for tests.
func MeasureSNRdB(signalPower float64) float64 {
	return LinearToDB(signalPower)
}
