package radio

import (
	"netscatter/internal/dsp"
)

// AddAWGN adds circularly symmetric complex Gaussian noise with total
// power noisePower to sig in place.
func AddAWGN(rng *dsp.Rand, sig []complex128, noisePower float64) {
	for i := range sig {
		sig[i] += rng.ComplexNormal(noisePower)
	}
}

// AddUnitNoise adds unit-power complex noise, the normalization used
// throughout the simulator.
func AddUnitNoise(rng *dsp.Rand, sig []complex128) {
	AddAWGN(rng, sig, 1)
}

// Superpose adds src (starting at sample offset) into dst, clipping src
// to dst's bounds. It returns the number of samples written. This is how
// concurrent backscatter transmissions combine at the AP antenna.
func Superpose(dst, src []complex128, offset int) int {
	n := 0
	for i, v := range src {
		j := offset + i
		if j < 0 {
			continue
		}
		if j >= len(dst) {
			break
		}
		dst[j] += v
		n++
	}
	return n
}

// MeasureSNRdB estimates the SNR of a signal of known power against unit
// noise; provided for tests.
func MeasureSNRdB(signalPower float64) float64 {
	return LinearToDB(signalPower)
}
