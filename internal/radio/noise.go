package radio

import (
	"netscatter/internal/dsp"
)

// AddAWGN adds circularly symmetric complex Gaussian noise with total
// power noisePower to sig in place.
func AddAWGN(rng *dsp.Rand, sig []complex128, noisePower float64) {
	for i := range sig {
		sig[i] += rng.ComplexNormal(noisePower)
	}
}

// AddUnitNoise adds unit-power complex noise, the normalization used
// throughout the simulator.
func AddUnitNoise(rng *dsp.Rand, sig []complex128) {
	AddAWGN(rng, sig, 1)
}

// Superpose adds src (starting at sample offset) into dst, clipping src
// to dst's bounds. It returns the number of samples written. This is how
// concurrent backscatter transmissions combine at the AP antenna.
//
// The overlap is clipped once up front so the accumulation loop carries
// no per-element bounds branch — with hundreds of concurrent frames
// this add is one of the receiver front-end's hottest loops.
func Superpose(dst, src []complex128, offset int) int {
	lo, hi := clipRange(len(dst), len(src), offset)
	if hi <= lo {
		return 0
	}
	d := dst[offset+lo : offset+hi]
	s := src[lo:hi:hi]
	for i := range d {
		d[i] += s[i]
	}
	return hi - lo
}

// SuperposeBatch accumulates every source into dst in one pass:
// srcs[k] is added starting at sample offsets[k], clipped to dst's
// bounds, in slice order — element for element the same additions in
// the same order as calling Superpose once per source, so the composite
// signal is bit-identical to the serial loop it replaces. Empty or
// fully clipped sources are skipped. It returns the total number of
// samples written.
func SuperposeBatch(dst []complex128, srcs [][]complex128, offsets []int) int {
	if len(srcs) != len(offsets) {
		panic("radio: SuperposeBatch sources and offsets differ in length")
	}
	total := 0
	for k, src := range srcs {
		total += Superpose(dst, src, offsets[k])
	}
	return total
}

// clipRange returns the half-open range [lo, hi) of src indices that
// land inside a dst of length dstLen when src is placed at offset.
func clipRange(dstLen, srcLen, offset int) (lo, hi int) {
	lo = 0
	if offset < 0 {
		lo = -offset
	}
	hi = srcLen
	if offset+hi > dstLen {
		hi = dstLen - offset
	}
	return lo, hi
}

// MeasureSNRdB estimates the SNR of a signal of known power against unit
// noise; provided for tests.
func MeasureSNRdB(signalPower float64) float64 {
	return LinearToDB(signalPower)
}
