package radio

import "math"

// MultiUserCapacity returns the Shannon capacity of an N-user multiple
// access channel in bits/s: BW·log2(1 + N·Ps/Pn) (§3.1 of the paper,
// citing Tse & Viswanath). Ps and Pn are linear signal and noise powers.
func MultiUserCapacity(bwHz float64, n int, ps, pn float64) float64 {
	return bwHz * math.Log2(1+float64(n)*ps/pn)
}

// MultiUserCapacityLinearApprox returns the paper's low-SNR
// approximation BW/ln(2)·N·Ps/Pn, valid below the noise floor where
// ln(1+x) ~ x. The gap between this and MultiUserCapacity quantifies how
// "linear in N" the capacity really is at a given SNR.
func MultiUserCapacityLinearApprox(bwHz float64, n int, ps, pn float64) float64 {
	return bwHz / math.Ln2 * float64(n) * ps / pn
}
