package radio

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"netscatter/internal/dsp"
)

func TestUnitConversions(t *testing.T) {
	if got := DBmToWatts(30); math.Abs(got-1) > 1e-12 {
		t.Errorf("30 dBm = %v W", got)
	}
	if got := WattsToDBm(0.001); math.Abs(got-0) > 1e-12 {
		t.Errorf("1 mW = %v dBm", got)
	}
	f := func(dbm float64) bool {
		dbm = math.Mod(dbm, 100)
		return math.Abs(WattsToDBm(DBmToWatts(dbm))-dbm) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThermalNoise(t *testing.T) {
	// -174 dBm/Hz + 10log10(500kHz) + 6 = -111.0 dBm: the floor that
	// makes the paper's -123 dBm sensitivity a -12 dB demod SNR.
	got := ThermalNoiseDBm(500e3, 6)
	if math.Abs(got-(-111.01)) > 0.05 {
		t.Fatalf("noise floor = %v", got)
	}
}

func TestDopplerShift(t *testing.T) {
	// §4.2: 10 m/s at 900 MHz -> 30 Hz.
	got := DopplerShiftHz(10, 900e6)
	if math.Abs(got-30) > 0.1 {
		t.Fatalf("doppler = %v Hz", got)
	}
}

func TestAWGNPower(t *testing.T) {
	st := dsp.NewStream(1)
	sig := make([]complex128, 100000)
	AddAWGN(st, sig, 2.0)
	if got := dsp.SignalPower(sig); math.Abs(got-2) > 0.05 {
		t.Fatalf("noise power = %v, want 2", got)
	}
}

// TestAWGNStreamMatchesNormBatchSequence pins the fused pass's draw order:
// AddAWGN consumes the stream exactly as 2·len(sig) NormBatch draws —
// real part first — scaled by √(power/2), so the fused fill+add is a
// pure optimization over the obvious two-pass implementation.
func TestAWGNStreamMatchesNormBatchSequence(t *testing.T) {
	a := dsp.StreamAt(7, 3)
	b := dsp.StreamAt(7, 3)
	const n = 1000 // odd block coverage: not a multiple of the fill block
	sig := make([]complex128, n)
	AddAWGN(&a, sig, 3.7)

	raw := make([]float64, 2*n)
	b.NormBatch(raw)
	s := math.Sqrt(3.7 / 2)
	for i := range sig {
		want := complex(s*raw[2*i], s*raw[2*i+1])
		if sig[i] != want {
			t.Fatalf("sample %d: %v, want %v", i, sig[i], want)
		}
	}
}

// TestAWGNStreamStatsMatchOracle compares the fused AWGN path's noise
// statistics against the retained math/rand oracle at the same power:
// matching power and per-component moments within a few standard
// errors.
func TestAWGNStreamStatsMatchOracle(t *testing.T) {
	const n = 200000
	const power = 2.5

	st := dsp.NewStream(5)
	sig := make([]complex128, n)
	AddAWGN(st, sig, power)

	rng := dsp.NewRand(5)
	ref := make([]complex128, n)
	AddAWGNOracle(rng, ref, power)

	stats := func(v []complex128) (pwr, meanRe, meanIm float64) {
		for _, x := range v {
			pwr += real(x)*real(x) + imag(x)*imag(x)
			meanRe += real(x)
			meanIm += imag(x)
		}
		return pwr / n, meanRe / n, meanIm / n
	}
	p1, mr1, mi1 := stats(sig)
	p2, mr2, mi2 := stats(ref)
	if math.Abs(p1-power) > 0.05 || math.Abs(p1-p2) > 0.1 {
		t.Fatalf("fused power %v vs oracle %v (want %v)", p1, p2, power)
	}
	for _, m := range []float64{mr1, mi1, mr2, mi2} {
		if math.Abs(m) > 0.02 {
			t.Fatalf("noise mean off zero: %v", m)
		}
	}
}

func TestAWGNZeroAlloc(t *testing.T) {
	st := dsp.NewStream(9)
	sig := make([]complex128, 4096)
	allocs := testing.AllocsPerRun(10, func() { AddAWGN(st, sig, 1) })
	if allocs != 0 {
		t.Fatalf("AddAWGN allocates %.1f objects/op", allocs)
	}
}

func TestSuperpose(t *testing.T) {
	dst := make([]complex128, 5)
	n := Superpose(dst, []complex128{1, 1, 1}, 3)
	if n != 2 || dst[3] != 1 || dst[4] != 1 || dst[2] != 0 {
		t.Fatalf("Superpose tail: n=%d dst=%v", n, dst)
	}
	dst = make([]complex128, 5)
	n = Superpose(dst, []complex128{1, 1, 1}, -2)
	if n != 1 || dst[0] != 1 || dst[1] != 0 {
		t.Fatalf("Superpose negative offset: n=%d dst=%v", n, dst)
	}
}

func TestLogDistanceMonotonic(t *testing.T) {
	m := DefaultIndoor900MHz
	prev := -1.0
	for d := 1.0; d <= 50; d += 1 {
		loss := m.LossDB(d, 0)
		if loss <= prev {
			t.Fatalf("loss not monotonic at %v m", d)
		}
		prev = loss
	}
	if m.LossDB(10, 2)-m.LossDB(10, 0) != 2*m.WallLossDB {
		t.Fatal("wall loss not additive")
	}
	// Below the reference distance the loss is clamped.
	if m.LossDB(0.1, 0) != m.LossDB(1, 0) {
		t.Fatal("sub-reference distance not clamped")
	}
}

func TestFreeSpaceRefLoss(t *testing.T) {
	// ~31.5 dB at 1 m, 900 MHz.
	got := FreeSpaceRefLossDB(900e6)
	if math.Abs(got-31.5) > 0.3 {
		t.Fatalf("free space ref loss = %v", got)
	}
}

func TestLinkBudgetDirections(t *testing.T) {
	b := DefaultLinkBudget
	// Two-way loss makes the uplink far weaker than the downlink.
	down := b.DownlinkRSSIdBm(10, 1)
	up := b.UplinkRSSIdBm(10, 1, 0)
	if up >= down {
		t.Fatalf("uplink %v not weaker than downlink %v", up, down)
	}
	// Tag gain reduces the uplink 1:1.
	if diff := b.UplinkRSSIdBm(10, 1, 0) - b.UplinkRSSIdBm(10, 1, -10); math.Abs(diff-10) > 1e-9 {
		t.Fatalf("tag gain not 1:1: %v", diff)
	}
}

func TestLinkBudgetAGCCap(t *testing.T) {
	b := DefaultLinkBudget
	snrNear := b.UplinkSNRdB(5, 0, 0, 500e3)
	if snrNear > b.AGCCapDB+1e-9 {
		t.Fatalf("AGC cap violated: %v", snrNear)
	}
	// Backing off power keeps the same headroom below the cap.
	snrBack := b.UplinkSNRdB(5, 0, -10, 500e3)
	if math.Abs(snrNear-snrBack-10) > 1e-9 {
		t.Fatalf("cap does not preserve gain steps: %v vs %v", snrNear, snrBack)
	}
}

func TestFadingMeanPowerAndCorrelation(t *testing.T) {
	rng := dsp.NewRand(3)
	fp := NewFadingProcess(10, 0.95, rng)
	n := 200000
	var pwr float64
	for i := 0; i < n; i++ {
		h := fp.Step()
		pwr += real(h)*real(h) + imag(h)*imag(h)
	}
	if got := pwr / float64(n); math.Abs(got-1) > 0.1 {
		t.Fatalf("mean channel power = %v, want ~1", got)
	}
}

func TestSNRTraceVariance(t *testing.T) {
	rng := dsp.NewRand(4)
	trace := SNRTrace(10, 5000, 10, 0.98, rng)
	mean := dsp.Mean(trace)
	if math.Abs(mean-10) > 1.5 {
		t.Fatalf("trace mean = %v", mean)
	}
	sd := dsp.StdDev(trace)
	if sd < 0.3 || sd > 4 {
		t.Fatalf("trace stddev = %v, want the Fig. 9 band (~1-3 dB)", sd)
	}
}

func TestMultipathPreservesPower(t *testing.T) {
	rng := dsp.NewRand(5)
	sig := make([]complex128, 8192)
	for i := range sig {
		sig[i] = rng.ComplexNormal(1)
	}
	out := Multipath(sig, 500e3, 200e-9, 4, rng)
	inP, outP := dsp.SignalPower(sig), dsp.SignalPower(out)
	if math.Abs(outP/inP-1) > 0.15 {
		t.Fatalf("multipath power ratio = %v", outP/inP)
	}
}

func TestASKRoundTrip(t *testing.T) {
	m := DefaultASK
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 32 {
			data = data[:32]
		}
		bits := make([]byte, 0, len(data)*8)
		for _, b := range data {
			for i := 7; i >= 0; i-- {
				bits = append(bits, (b>>uint(i))&1)
			}
		}
		sig := m.Modulate(bits)
		got, err := m.Demodulate(sig, len(bits))
		return err == nil && bytes.Equal(got, bits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestASKWithNoise(t *testing.T) {
	m := DefaultASK
	rng := dsp.NewRand(6)
	bits := rng.Bits(64)
	sig := m.Modulate(bits)
	// 10 dB SNR on the envelope.
	for i := range sig {
		sig[i] += rng.ComplexNormal(0.1)
	}
	got, err := m.Demodulate(sig, len(bits))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bits) {
		t.Fatal("ASK decode failed at 10 dB SNR")
	}
}

func TestASKDemodulateShortSignal(t *testing.T) {
	if _, err := DefaultASK.Demodulate(make([]complex128, 10), 64); err == nil {
		t.Fatal("short signal accepted")
	}
}

func TestASKDuration(t *testing.T) {
	// The paper's Config 2 query: 1760 bits at 160 kbps = 11 ms.
	if got := DefaultASK.Duration(1760); math.Abs(got-0.011) > 1e-9 {
		t.Fatalf("1760-bit query duration = %v", got)
	}
}

func TestEnvelopeDetector(t *testing.T) {
	e := DefaultEnvelopeDetector
	if _, ok := e.Detect(-48); !ok {
		t.Error("-48 dBm should be detectable (sensitivity -49)")
	}
	if _, ok := e.Detect(-55); ok {
		t.Error("-55 dBm should be below sensitivity")
	}
	e.GainErrorDB = 2
	if got, _ := e.Detect(-40); got != -38 {
		t.Errorf("gain error not applied: %v", got)
	}
}

func TestOscillatorOffsets(t *testing.T) {
	rng := dsp.NewRand(7)
	// Backscatter: 3 MHz subcarrier, so offsets stay under ~150 Hz
	// (Fig. 14a), ~90x smaller than the same crystal on a 900 MHz
	// radio (§2.2).
	for i := 0; i < 200; i++ {
		bo := NewBackscatterOscillator(rng, 20, 50)
		if math.Abs(bo.StaticOffsetHz()) > 150 {
			t.Fatalf("backscatter offset %v Hz exceeds 150", bo.StaticOffsetHz())
		}
	}
	ro := NewRadioOscillator(rng, 3, 7.5)
	if ro.NominalHz != CarrierHz {
		t.Fatal("radio oscillator not at carrier")
	}
}

func TestShannonLinearRegime(t *testing.T) {
	// Below the noise floor the exact capacity approaches the linear
	// approximation (§3.1).
	bw := 500e3
	exact := MultiUserCapacity(bw, 10, 0.001, 1)
	approx := MultiUserCapacityLinearApprox(bw, 10, 0.001, 1)
	if r := exact / approx; r < 0.98 || r > 1 {
		t.Fatalf("low-SNR ratio = %v", r)
	}
	// Well above the floor the approximation overshoots.
	exact = MultiUserCapacity(bw, 100, 1, 1)
	approx = MultiUserCapacityLinearApprox(bw, 100, 1, 1)
	if approx < 2*exact {
		t.Fatalf("high-SNR approximation should overshoot: %v vs %v", approx, exact)
	}
}
