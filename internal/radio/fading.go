package radio

import (
	"math"

	"netscatter/internal/dsp"
)

// FadingProcess models the slow channel variation a static backscatter
// device experiences while people move through an office (Fig. 9 of the
// paper). It is a first-order Gauss-Markov (AR(1)) process over a
// Ricean channel gain: a strong static component (the device is not
// moving) plus a scattered component whose phase and amplitude wander
// with temporal correlation rho per step.
type FadingProcess struct {
	// KFactorDB is the Ricean K-factor: power ratio of the static to
	// scattered component. Larger K means smaller SNR variance.
	KFactorDB float64
	// Rho is the AR(1) correlation coefficient per sample step.
	Rho float64

	rng     *dsp.Rand
	scatter complex128
	static  complex128
}

// NewFadingProcess creates a fading process with its own deterministic
// stream. Typical office values: K = 9..12 dB, rho = 0.98 with one step
// per second.
func NewFadingProcess(kFactorDB, rho float64, rng *dsp.Rand) *FadingProcess {
	f := &FadingProcess{
		KFactorDB: kFactorDB,
		Rho:       rho,
		rng:       rng,
	}
	k := DBToLinear(kFactorDB)
	// Normalize total mean power to 1: static k/(k+1), scatter 1/(k+1).
	f.static = complex(math.Sqrt(k/(k+1)), 0) * rng.UniformPhase()
	f.scatter = rng.ComplexNormal(1 / (k + 1))
	return f
}

// Step advances the process one time step and returns the current
// complex channel gain.
func (f *FadingProcess) Step() complex128 {
	rho := f.Rho
	innov := f.rng.ComplexNormal((1 - rho*rho) / (DBToLinear(f.KFactorDB) + 1))
	f.scatter = complex(rho, 0)*f.scatter + innov
	return f.static + f.scatter
}

// GainDB returns the instantaneous power gain of the current state in dB
// relative to the mean channel.
func (f *FadingProcess) GainDB() float64 {
	h := f.static + f.scatter
	p := real(h)*real(h) + imag(h)*imag(h)
	return LinearToDB(p)
}

// SNRTrace simulates steps of the process and returns the per-step SNR
// in dB around a nominal meanSNRdB. Used to regenerate Fig. 9.
func SNRTrace(meanSNRdB float64, steps int, kFactorDB, rho float64, rng *dsp.Rand) []float64 {
	f := NewFadingProcess(kFactorDB, rho, rng)
	out := make([]float64, steps)
	for i := range out {
		f.Step()
		out[i] = meanSNRdB + f.GainDB()
	}
	return out
}

// Multipath applies a tapped-delay-line multipath channel to sig at
// sample rate fs. Taps follow an exponentially decaying power profile
// with RMS delay spread delaySpread seconds (50-300 ns indoors per the
// Saleh-Valenzuela measurements the paper cites). The output is a fresh
// slice of the same length, normalized to preserve mean power.
func Multipath(sig []complex128, fs, delaySpread float64, nTaps int, rng *dsp.Rand) []complex128 {
	if nTaps < 1 {
		nTaps = 1
	}
	taps := make([]complex128, nTaps)
	var totalPower float64
	ts := 1 / fs
	for i := range taps {
		delay := float64(i) * ts
		p := math.Exp(-delay / delaySpread)
		taps[i] = rng.ComplexNormal(p)
		if i == 0 {
			// Keep a dominant line-of-sight first tap.
			taps[0] = complex(math.Sqrt(p), 0)
		}
		re, im := real(taps[i]), imag(taps[i])
		totalPower += re*re + im*im
	}
	norm := complex(1/math.Sqrt(totalPower), 0)
	out := make([]complex128, len(sig))
	for i := range sig {
		var acc complex128
		for t, tap := range taps {
			if i-t < 0 {
				break
			}
			acc += tap * sig[i-t]
		}
		out[i] = acc * norm
	}
	return out
}
