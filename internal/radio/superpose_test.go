package radio

import (
	"fmt"
	"testing"

	"netscatter/internal/dsp"
)

// superposeNaive is the obviously correct per-element reference the
// clipped fast path must match exactly.
func superposeNaive(dst, src []complex128, offset int) int {
	n := 0
	for i, v := range src {
		j := offset + i
		if j < 0 || j >= len(dst) {
			continue
		}
		dst[j] += v
		n++
	}
	return n
}

func randComplex(rng *dsp.Rand, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = rng.ComplexNormal(1)
	}
	return out
}

// TestSuperposeClipping drives every clipping regime — fully inside,
// clipped at the front (negative offset), clipped at the tail, clipped
// on both ends (src longer than dst), entirely off either end, and
// zero-length sources — against the naive reference.
func TestSuperposeClipping(t *testing.T) {
	rng := dsp.NewRand(11)
	cases := []struct {
		name           string
		dstLen, srcLen int
		offset         int
		wantWritten    int
	}{
		{"inside", 64, 16, 10, 16},
		{"front-clip", 64, 16, -5, 11},
		{"tail-clip", 64, 16, 56, 8},
		{"both-clip", 16, 64, -8, 16},
		{"exact-fit", 32, 32, 0, 32},
		{"off-front", 64, 16, -16, 0},
		{"off-front-far", 64, 16, -1000, 0},
		{"off-tail", 64, 16, 64, 0},
		{"off-tail-far", 64, 16, 1000, 0},
		{"empty-src", 64, 0, 10, 0},
		{"empty-src-neg", 64, 0, -10, 0},
		{"empty-dst", 0, 16, 0, 0},
		{"first-sample-only", 64, 16, -15, 1},
		{"last-sample-only", 64, 16, 63, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := randComplex(rng, tc.srcLen)
			base := randComplex(rng, tc.dstLen)
			got := append([]complex128(nil), base...)
			want := append([]complex128(nil), base...)

			n := Superpose(got, src, tc.offset)
			wantN := superposeNaive(want, src, tc.offset)
			if n != tc.wantWritten || n != wantN {
				t.Fatalf("written = %d, want %d (naive %d)", n, tc.wantWritten, wantN)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("sample %d: %v != naive %v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestSuperposeBatchBitExact checks that the one-pass batch accumulation
// is bit-identical to serial Superpose calls in the same order, across a
// mix of offsets including heavy clipping and empty sources.
func TestSuperposeBatchBitExact(t *testing.T) {
	rng := dsp.NewRand(23)
	const dstLen = 512
	srcs := make([][]complex128, 0, 24)
	offsets := make([]int, 0, 24)
	for k := 0; k < 24; k++ {
		n := int(rng.Uniform(0, 300))
		if k%7 == 3 {
			n = 0 // zero-length sources must be skipped cleanly
		}
		srcs = append(srcs, randComplex(rng, n))
		offsets = append(offsets, int(rng.Uniform(-150, float64(dstLen+50))))
	}

	got := randComplex(rng, dstLen)
	want := append([]complex128(nil), got...)

	gotN := SuperposeBatch(got, srcs, offsets)
	wantN := 0
	for k := range srcs {
		wantN += superposeNaive(want, srcs[k], offsets[k])
	}
	if gotN != wantN {
		t.Fatalf("batch wrote %d samples, serial wrote %d", gotN, wantN)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: batch %v != serial %v", i, got[i], want[i])
		}
	}
}

// TestSuperposeBatchMismatchedLengths pins the length-contract panic.
func TestSuperposeBatchMismatchedLengths(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on srcs/offsets length mismatch")
		}
	}()
	SuperposeBatch(make([]complex128, 8), make([][]complex128, 2), []int{0})
}

func BenchmarkSuperpose(b *testing.B) {
	for _, n := range []int{4096, 28672} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := dsp.NewRand(1)
			dst := randComplex(rng, n+64)
			src := randComplex(rng, n)
			b.SetBytes(int64(n * 16))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Superpose(dst, src, 17)
			}
		})
	}
}
