package radio

import "math"

// PathLossModel converts a propagation path into attenuation in dB.
type PathLossModel interface {
	// LossDB returns the one-way path loss in dB over distance meters
	// with walls intervening walls.
	LossDB(distance float64, walls int) float64
}

// LogDistance is the standard log-distance path-loss model with an
// additional per-wall attenuation term, the usual fit for indoor office
// propagation at 900 MHz:
//
//	PL(d) = RefLossDB + 10·Exponent·log10(d/RefDistance) + walls·WallLossDB
type LogDistance struct {
	// RefLossDB is the free-space loss at the reference distance. At
	// 900 MHz and 1 m it is 20·log10(4π·1m/λ) ≈ 31.5 dB.
	RefLossDB float64
	// RefDistance in meters (typically 1).
	RefDistance float64
	// Exponent is the path-loss exponent (2 free space, 2.5–3.5 indoor).
	Exponent float64
	// WallLossDB is the penetration loss per intervening wall.
	WallLossDB float64
}

// DefaultIndoor900MHz is the office propagation model used by the
// deployment generator; together with the AGC cap below it is calibrated
// so a 256-device office floor produces the ~35-45 dB SNR spread the
// paper's near-far machinery is designed for (35 dB tolerated after
// allocation, Fig. 15b, plus the 10 dB power-adaptation range).
var DefaultIndoor900MHz = LogDistance{
	RefLossDB:   31.5,
	RefDistance: 1,
	Exponent:    2.5,
	WallLossDB:  4.5,
}

// LossDB implements PathLossModel.
func (m LogDistance) LossDB(distance float64, walls int) float64 {
	if distance < m.RefDistance {
		distance = m.RefDistance
	}
	return m.RefLossDB + 10*m.Exponent*math.Log10(distance/m.RefDistance) +
		float64(walls)*m.WallLossDB
}

// FreeSpaceRefLossDB returns the free-space path loss at 1 m for a
// carrier frequency in Hz: 20·log10(4πf/c).
func FreeSpaceRefLossDB(carrierHz float64) float64 {
	lambda := SpeedOfLight / carrierHz
	return 20 * math.Log10(4*math.Pi/lambda)
}

// LinkBudget computes received power for the two legs of a backscatter
// link. Backscatter suffers the product of both path losses: the AP's
// single tone travels to the tag, is reflected with the tag's modulation
// (and its power gain setting), and travels back.
type LinkBudget struct {
	// APTransmitDBm is the AP's transmit power (30 dBm in the paper:
	// 0 dBm USRP output plus an RF5110 amplifier).
	APTransmitDBm float64
	// APAntennaGainDBi and TagAntennaGainDBi are antenna gains. The
	// paper's tags use 2 dBi whip antennas.
	APAntennaGainDBi  float64
	TagAntennaGainDBi float64
	// BackscatterLossDB is the intrinsic conversion loss of reflecting
	// with a square-wave subcarrier (~6 dB: modulator + harmonics).
	BackscatterLossDB float64
	// AGCCapDB caps the uplink SNR, modeling the receiver front end's
	// automatic gain control: a tag a couple of meters from the AP
	// would otherwise arrive 70+ dB above the noise floor, which no
	// 35 dB-dynamic-range concurrent decoder (Fig. 15b) could coexist
	// with. The paper additionally groups devices by signal strength
	// (§3.3.3); the cap emulates the headroom its single-group
	// 256-device deployment must have had. Zero disables the cap.
	AGCCapDB float64
	// Model is the one-way propagation model.
	Model PathLossModel
}

// DefaultLinkBudget mirrors the paper's testbed numbers.
var DefaultLinkBudget = LinkBudget{
	APTransmitDBm:     30,
	APAntennaGainDBi:  6,
	TagAntennaGainDBi: 2,
	BackscatterLossDB: 6,
	AGCCapDB:          30,
	Model:             DefaultIndoor900MHz,
}

// DownlinkRSSIdBm returns the power of the AP's query as seen by the
// tag's envelope detector (one-way loss). The paper notes the envelope
// detector needs only -44 dBm here versus -120 dBm for the uplink
// because the query experiences one-way path loss.
func (b LinkBudget) DownlinkRSSIdBm(distance float64, walls int) float64 {
	return b.APTransmitDBm + b.APAntennaGainDBi + b.TagAntennaGainDBi -
		b.Model.LossDB(distance, walls)
}

// UplinkRSSIdBm returns the backscattered signal power back at the AP
// (two-way loss) for a tag using the given power-gain setting (<= 0 dB).
func (b LinkBudget) UplinkRSSIdBm(distance float64, walls int, tagGainDB float64) float64 {
	oneWay := b.Model.LossDB(distance, walls)
	return b.APTransmitDBm + b.APAntennaGainDBi + 2*b.TagAntennaGainDBi +
		b.APAntennaGainDBi - 2*oneWay - b.BackscatterLossDB + tagGainDB
}

// UplinkSNRdB returns the uplink SNR at the AP over a receive bandwidth,
// after the AGC cap.
func (b LinkBudget) UplinkSNRdB(distance float64, walls int, tagGainDB, bwHz float64) float64 {
	snr := b.UplinkRSSIdBm(distance, walls, tagGainDB) - ThermalNoiseDBm(bwHz, DefaultNoiseFigureDB)
	if b.AGCCapDB > 0 && snr > b.AGCCapDB+tagGainDB {
		// The cap applies to the maximum-gain signal; a tag that backs
		// off by 10 dB still lands 10 dB under the cap.
		snr = b.AGCCapDB + tagGainDB
	}
	return snr
}
