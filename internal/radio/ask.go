package radio

import (
	"fmt"

	"netscatter/internal/dsp"
)

// ASKModem implements the AP's amplitude-shift-keyed downlink. The paper
// uses a 160 kbps ASK query that doubles as the timing reference for all
// concurrent devices; tags receive it with a microwatt envelope detector
// (§3.3, §4.1).
type ASKModem struct {
	// BitRate in bits/s (160 kbps in the paper).
	BitRate float64
	// SampleRate of the simulated baseband in Hz.
	SampleRate float64
	// Depth is the modulation depth: a '0' bit is transmitted at
	// (1-Depth) amplitude so the carrier never fully disappears (the
	// same carrier is the backscatter excitation tone).
	Depth float64
}

// DefaultASK is the paper's 160 kbps downlink sampled at 4 MHz.
var DefaultASK = ASKModem{BitRate: 160e3, SampleRate: 4e6, Depth: 0.8}

// SamplesPerBit returns the (integer) samples per ASK bit.
func (m ASKModem) SamplesPerBit() int {
	return int(m.SampleRate / m.BitRate)
}

// Duration returns the on-air time of n bits in seconds.
func (m ASKModem) Duration(nBits int) float64 {
	return float64(nBits) / m.BitRate
}

// Modulate converts bits (one bit per byte, values 0/1) to an amplitude
// envelope on a unit carrier.
func (m ASKModem) Modulate(bits []byte) []complex128 {
	spb := m.SamplesPerBit()
	if spb < 1 {
		panic(fmt.Sprintf("radio: ASK sample rate %v too low for bit rate %v", m.SampleRate, m.BitRate))
	}
	out := make([]complex128, len(bits)*spb)
	hi := complex(1, 0)
	lo := complex(1-m.Depth, 0)
	for i, b := range bits {
		v := lo
		if b != 0 {
			v = hi
		}
		for j := 0; j < spb; j++ {
			out[i*spb+j] = v
		}
	}
	return out
}

// Demodulate recovers nBits bits from the received envelope using a
// per-message adaptive threshold (midpoint between the min and max bit
// energies), matching what a comparator after an envelope detector does.
func (m ASKModem) Demodulate(sig []complex128, nBits int) ([]byte, error) {
	spb := m.SamplesPerBit()
	if len(sig) < nBits*spb {
		return nil, fmt.Errorf("radio: ASK demodulate needs %d samples, have %d", nBits*spb, len(sig))
	}
	levels := make([]float64, nBits)
	for i := 0; i < nBits; i++ {
		var e float64
		for j := 0; j < spb; j++ {
			v := sig[i*spb+j]
			e += real(v)*real(v) + imag(v)*imag(v)
		}
		levels[i] = e / float64(spb)
	}
	min, max := dsp.MinMax(levels)
	thresh := (min + max) / 2
	bits := make([]byte, nBits)
	for i, l := range levels {
		if l > thresh {
			bits[i] = 1
		}
	}
	return bits, nil
}

// EnvelopeDetector models the tag's RF receive path: a passive detector
// with limited sensitivity that reports the query's RSSI for the
// power-adaptation loop.
type EnvelopeDetector struct {
	// SensitivityDBm is the weakest downlink the detector demodulates
	// (-49 dBm for the paper's COTS hardware).
	SensitivityDBm float64
	// GainErrorDB is a per-device static RSSI measurement error.
	GainErrorDB float64
}

// DefaultEnvelopeDetector matches the COTS hardware in §4.1.
var DefaultEnvelopeDetector = EnvelopeDetector{SensitivityDBm: -49}

// Detect returns the measured RSSI and whether the query is decodable.
// The measurement includes the detector's static gain error.
func (e EnvelopeDetector) Detect(rssiDBm float64) (measuredDBm float64, ok bool) {
	measured := rssiDBm + e.GainErrorDB
	return measured, rssiDBm >= e.SensitivityDBm
}
