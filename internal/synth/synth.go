// Package synth is the transmit-side waveform engine: it synthesizes
// cyclic-shifted chirp symbols and whole NetScatter frames by iterating
// the quadratic-phase second-order recurrence instead of calling sin/cos
// per sample, which PR 1's profiling showed dominating NetworkRound64
// (~96% of a round was chirp.EvalShifted).
//
// The chirp phase in sample units is quadratic, φ(u) = A·u² + B·u, so
// the unit-magnitude sample z(u) = e^{jφ(u)} satisfies
//
//	z(u+1) = z(u)·d(u),   d(u+1) = d(u)·D,   D = e^{j2A}
//
// — two complex multiplies per sample, no trigonometry. Rounding drift
// is bounded by renormalizing z and d every renormEvery samples with one
// Newton step of 1/√m² (the magnitudes stay within ~1e-13 of 1, so a
// single step is exact to O(1e-26)); the phase error is a random walk of
// rounding noise, ~√n·ε ≈ 1e-13 over the largest supported symbol —
// three orders of magnitude inside the 1e-9 budget the golden-vector
// tests enforce against the analytic chirp.EvalShifted oracle.
//
// At critical sampling the cyclic-shift wrap u → u−N is not a free
// phase continuation for fractional u (the symbol is genuinely
// discontinuous there — the physics the decoder's timing tolerance
// depends on). The wrap is still recurrence-friendly: φ(u) − φ(u−N) =
// 2πu − 2πN, so crossing it multiplies z by the constant e^{-j2π·frac(u)}
// and leaves d unchanged (2AN = 2π). One extra complex multiply per
// symbol, exact fractional-delay physics.
//
// A Synthesizer is immutable after construction and cached per Params
// (synth.For), so any number of goroutines — the channel simulator fans
// frame synthesis across the worker pool — share one instance and one
// baseline symbol bank.
package synth

import (
	"fmt"
	"math"
	"sync"

	"netscatter/internal/chirp"
	"netscatter/internal/dsp"
)

// renormEvery is the renormalization cadence of the recurrence loops:
// every renormEvery samples the running factors are pulled back onto the
// unit circle. 128 keeps the amortized cost under 1% of the loop while
// holding magnitude drift below 1e-13 (see DESIGN-synth.md for the error
// budget).
const renormEvery = 128

// Synthesizer generates shifted chirp symbols and frames for one
// parameter set. Safe for concurrent use; obtain one via For.
type Synthesizer struct {
	p chirp.Params
	n int

	// bank is the baseline (shift 0) upchirp sampled once analytically —
	// the per-Params symbol bank. At critical sampling every integer
	// shift is a cyclic rotation of it (two copies, zero arithmetic); in
	// aggregate-bandwidth mode shifts become frequency-offset mixes of
	// it (one complex multiply per sample).
	bank []complex128

	// a, b are the quadratic phase coefficients in sample units:
	// φ(u) = a·u² + b·u for the baseline chirp (shift folds into u at
	// critical sampling and into b in aggregate mode).
	a, b float64

	// ddzUp, ddzDown cache the recurrence's second difference
	// e^{j2a}/e^{-j2a} — constant per parameter set, so MixedInto
	// spends its trigonometry on the per-call seeds only.
	ddzUp, ddzDown complex128
}

var (
	cacheMu sync.RWMutex
	cache   = map[chirp.Params]*Synthesizer{}
)

// For returns the shared synthesizer for p, building and caching it on
// first use (like dsp.Plan). Panics on invalid params, mirroring
// chirp.NewModulator.
func For(p chirp.Params) *Synthesizer {
	if p.Oversample == 0 {
		p.Oversample = 1
	}
	cacheMu.RLock()
	s := cache[p]
	cacheMu.RUnlock()
	if s != nil {
		return s
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	s = build(p)
	cacheMu.Lock()
	if prev, ok := cache[p]; ok {
		s = prev // lost the build race; share the winner
	} else {
		cache[p] = s
	}
	cacheMu.Unlock()
	return s
}

func build(p chirp.Params) *Synthesizer {
	n := p.N()
	s := &Synthesizer{p: p, n: n, bank: chirp.Upchirp(p)}
	if p.Oversample == 1 {
		// φ(u) = 2π(u²/(2N) − u/2).
		s.a = math.Pi / float64(n)
		s.b = -math.Pi
	} else {
		// φ(x) = 2π(−BW/2·t + slope/2·t²), t = x/fs, in sample units.
		fs := p.SampleRate()
		slope := p.BW / p.SymbolPeriod()
		s.a = math.Pi * slope / (fs * fs)
		s.b = -math.Pi * p.BW / fs
	}
	s.ddzUp = cis(2 * s.a)
	s.ddzDown = cis(2 * -s.a)
	return s
}

// Params returns the synthesizer's parameter set.
func (s *Synthesizer) Params() chirp.Params { return s.p }

// N returns the samples per symbol.
func (s *Synthesizer) N() int { return s.n }

// Bank returns the baseline upchirp symbol bank. Callers must not
// modify it.
func (s *Synthesizer) Bank() []complex128 { return s.bank }

func cis(theta float64) complex128 {
	sin, cos := math.Sincos(theta)
	return complex(cos, sin)
}

// renorm pulls v back onto the unit circle with one Newton step of the
// inverse square root — exact to O(δ²) for |v| = 1+δ, and δ stays below
// ~1e-13 between renormalizations.
func renorm(v complex128) complex128 {
	m2 := real(v)*real(v) + imag(v)*imag(v)
	return v * complex(1.5-0.5*m2, 0)
}

// SymbolInto writes the integer-shift symbol into dst (length N),
// matching chirp.Modulator.Symbol sample for sample. At critical
// sampling this is a pure rotated copy of the bank; in aggregate mode it
// mixes the bank with the shift's frequency offset through a first-order
// recurrence.
func (s *Synthesizer) SymbolInto(dst []complex128, shift int) {
	n := s.n
	if len(dst) != n {
		panic(fmt.Sprintf("synth: symbol dst length %d, want %d", len(dst), n))
	}
	shift = ((shift % n) + n) % n
	if s.p.Oversample == 1 {
		copy(dst, s.bank[shift:])
		copy(dst[n-shift:], s.bank[:shift])
		return
	}
	// Aggregate mode: dst[i] = bank[i]·e^{j2π·shift·i/N}.
	step := cis(2 * math.Pi * float64(shift) / float64(n))
	cur := complex(1, 0)
	for i := 0; i < n; i++ {
		dst[i] = s.bank[i] * cur
		cur *= step
		if i%renormEvery == renormEvery-1 {
			cur = renorm(cur)
		}
	}
}

// DownSymbolInto writes the conjugate (downchirp) version of
// SymbolInto.
func (s *Synthesizer) DownSymbolInto(dst []complex128, shift int) {
	s.SymbolInto(dst, shift)
	for i, v := range dst {
		dst[i] = complex(real(v), -imag(v))
	}
}

// ShiftedInto writes dst[i] = chirp.EvalShifted(p, shift, x0+i) for
// i in [0, len(dst)) — the analytic fractionally-delayed symbol,
// synthesized by the phase recurrence at two complex multiplies per
// sample. len(dst) may be any length; the cyclic wrap(s) inside the run
// are handled exactly (see the package comment).
func (s *Synthesizer) ShiftedInto(dst []complex128, shift int, x0 float64) {
	s.MixedInto(dst, shift, x0, false, 0, 1)
}

// MixedInto is the analytic fractional-delay mixer: it writes
//
//	dst[i] = E(x0+i) · e^{jω·i} · c0,   ω = omega rad/sample,
//
// where E is chirp.EvalShifted(p, shift, ·) — conjugated when conj is
// set (downchirps) — all inside one recurrence pass. The frequency
// offset only adds a linear term to the quadratic chirp phase, and the
// carrier gain c0 is a constant factor, so mixing costs nothing over
// plain synthesis; the channel simulator uses this to fold its
// oscillator-offset rotation and SNR scaling into symbol synthesis
// instead of two extra passes over every frame.
func (s *Synthesizer) MixedInto(dst []complex128, shift int, x0 float64, conj bool, omega float64, c0 complex128) {
	if len(dst) == 0 {
		return
	}
	mag := math.Hypot(real(c0), imag(c0))
	if mag == 0 {
		zeroComplex(dst)
		return
	}
	phase0 := c0 * complex(1/mag, 0)
	sign := 1.0
	if conj {
		sign = -1
	}
	n := float64(s.n)
	a, b := sign*s.a, sign*s.b
	ddz := s.ddzUp
	if conj {
		ddz = s.ddzDown
	}
	if s.p.Oversample > 1 {
		// Aggregate mode: shift is an initial-frequency offset folded
		// into the linear phase term; the phase is a single unwrapped
		// quadratic — no cyclic wrap.
		b += sign * 2 * math.Pi * float64(shift) / n
		u0 := x0
		z := phase0 * cis(a*u0*u0+b*u0)
		dz := cis(a*(2*u0+1) + b + omega)
		s.run(dst, z, dz, ddz, mag, 0, 0)
		return
	}
	// Critical sampling: u = (x0+shift) mod N, with the wrap constant
	// e^{∓j2π·frac(u0)} applied each time u crosses N (the frequency
	// mix rides on the sample index i, untouched by the wrap).
	u0 := math.Mod(x0+float64(shift), n)
	if u0 < 0 {
		u0 += n
	}
	frac := u0 - math.Floor(u0)
	wrapRot := complex(1, 0)
	if frac != 0 {
		wrapRot = cis(sign * -2 * math.Pi * frac)
	}
	z := phase0 * cis(a*u0*u0+b*u0)
	dz := cis(a*(2*u0+1) + b + omega)
	s.run(dst, z, dz, ddz, mag, int(math.Ceil(n-u0)), wrapRot)
}

// chainMinSeg is the shortest segment the interleaved-chain path
// accepts: below it the chain seeding (a stride's worth of serial
// steps plus the step-ratio powers) costs more than it saves, so short
// segments run the plain serial recurrence. The threshold is a pure
// function of the segment length — never of the CPU — so output bits
// are identical on every platform.
const chainMinSeg = 3 * dsp.SynthChainCount

// run iterates the second-order recurrence dst[i] = mag·z_i with
// z_{i+1} = z_i·dz_i and dz_{i+1} = dz_i·ddz. When toWrap > 0, z is
// multiplied by wrapRot after every s.n-sample period starting toWrap
// samples in (the critical-sampling cyclic wrap); toWrap <= 0 disables
// wrapping (aggregate mode). z must be unit magnitude — the emission
// scale mag keeps renormalization a pure unit-circle projection.
//
// The wrap events split dst into wrap-free segments; each segment runs
// through runSeg's interleaved sub-chains (see below), and the serial
// state is renormalized at every segment boundary.
func (s *Synthesizer) run(dst []complex128, z, dz, ddz complex128, mag float64, toWrap int, wrapRot complex128) {
	if toWrap <= 0 {
		s.runSeg(dst, z, dz, ddz, mag)
		return
	}
	for {
		segLen := min(toWrap, len(dst))
		z, dz = s.runSeg(dst[:segLen], z, dz, ddz, mag)
		dst = dst[segLen:]
		if len(dst) == 0 {
			return
		}
		z = renorm(mulFMA(z, wrapRot))
		dz = renorm(dz)
		toWrap = s.n
	}
}

// runSeg emits one wrap-free segment of the recurrence into dst and
// returns the serial state (z, dz) continued past the segment's end.
//
// Long segments run dsp.SynthChainCount = L interleaved sub-chains:
// sub-chain c owns samples c, c+L, c+2L, … . With the quadratic phase
// ψ(u) = ψ(0) + δ·u + a·u² (δ the linear term at the segment start),
// sub-chain c's per-step factor is
//
//	dzc_c = e^{j(ψ(c+L)−ψ(c))} = e^{j(δL + aL² + 2aLc)} = dzc_0·(ddz^L)^c
//
// and every sub-chain shares the second difference ddz^{L²} = (ddz^L)^L
// — so the seeding needs no trigonometry: the chain start values
// z(0…L−1) and dzc_0 = ∏ dz·ddz^k come from L serial recurrence steps,
// and the ratio ddz^L from log₂L squarings. The L chains are mutually
// independent, which turns the two dependent complex multiplies per
// sample into throughput-bound work for the FMA pipeline
// (dsp.SynthChains8). Per-chain renormalization runs every renormEvery
// chain steps, and the continued state is renormalized by run at each
// segment boundary; DESIGN-synth.md carries the error budget.
func (s *Synthesizer) runSeg(dst []complex128, z, dz, ddz complex128, mag float64) (complex128, complex128) {
	m := len(dst)
	if m < chainMinSeg {
		for i := 0; i < m; i++ {
			dst[i] = complex(real(z)*mag, imag(z)*mag)
			z = mulFMA(z, dz)
			dz = mulFMA(dz, ddz)
			if i%renormEvery == renormEvery-1 {
				z = renorm(z)
				dz = renorm(dz)
			}
		}
		return z, dz
	}

	const L = dsp.SynthChainCount
	var st dsp.SynthChainState
	zc, d := z, dz
	p := complex(1.0, 0)
	for c := 0; c < L; c++ {
		st[c] = real(zc)
		st[L+c] = imag(zc)
		zc = mulFMA(zc, d)
		p = mulFMA(p, d)
		d = mulFMA(d, ddz)
	}
	ratio := powFMA(ddz, L) // ddz^L
	dL := powFMA(ratio, L)  // ddz^{L²}: the shared chain second difference
	for c := 0; c < L; c++ {
		st[2*L+c] = real(p)
		st[3*L+c] = imag(p)
		p = mulFMA(p, ratio)
	}

	steps := m / L
	rem := m - steps*L
	done := 0
	for done < steps {
		blk := min(renormEvery, steps-done)
		dsp.SynthChains8(dst[done*L:], &st, dL, mag, blk)
		done += blk
		if blk == renormEvery {
			renormChains(&st)
		}
	}
	for c := 0; c < rem; c++ {
		dst[steps*L+c] = complex(st[c]*mag, st[L+c]*mag)
	}
	// Continuation: after `steps` chain steps, sub-chain c holds
	// z(steps·L + c), so z(m) is chain rem's state; dz(m) advances the
	// second-order factor m steps, dz·ddz^m.
	zNext := complex(st[rem], st[L+rem])
	dzNext := mulFMA(dz, powFMA(ddz, m))
	return zNext, dzNext
}

// mulFMA is the complex product with fused inner terms:
// re = FMA(ar, br, −ai·bi), im = FMA(ar, bi, ai·br) — one rounding
// fewer per component than the plain expansion, deterministic on every
// platform (math.FMA), and exactly the operation dsp's FMA kernels
// perform per lane.
func mulFMA(a, b complex128) complex128 {
	ar, ai := real(a), imag(a)
	br, bi := real(b), imag(b)
	return complex(math.FMA(ar, br, -(ai*bi)), math.FMA(ar, bi, ai*br))
}

// powFMA returns v^k (k >= 0) by binary exponentiation over mulFMA —
// O(log k) multiplies, deterministic bits on every platform.
func powFMA(v complex128, k int) complex128 {
	r := complex(1.0, 0)
	for k > 0 {
		if k&1 != 0 {
			r = mulFMA(r, v)
		}
		v = mulFMA(v, v)
		k >>= 1
	}
	return r
}

// renormChains pulls every sub-chain's z and d back onto the unit
// circle with the same Newton step renorm applies, in the fused form
// m² = FMA(re, re, im·im) the chain kernels' error analysis assumes.
func renormChains(st *dsp.SynthChainState) {
	const L = dsp.SynthChainCount
	for c := 0; c < L; c++ {
		zr, zi := st[c], st[L+c]
		sc := 1.5 - 0.5*math.FMA(zr, zr, zi*zi)
		st[c], st[L+c] = zr*sc, zi*sc
		dr, di := st[2*L+c], st[3*L+c]
		sc = 1.5 - 0.5*math.FMA(dr, dr, di*di)
		st[2*L+c], st[3*L+c] = dr*sc, di*sc
	}
}
