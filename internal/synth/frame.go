package synth

import (
	"fmt"

	"netscatter/internal/dsp"
)

// Frame synthesis. A NetScatter frame is upPreamble shifted upchirps,
// downPreamble shifted downchirps, then one ON-OFF keyed symbol per
// payload bit — every non-silent symbol is the *same* shifted chirp (or
// its conjugate). A fractional delay shifts every symbol by the same
// sub-sample offset, so the whole frame reduces to one recurrence-
// synthesized template symbol plus copies: O(N) arithmetic for a frame
// of dozens of symbols, where the analytic path paid a sin/cos for
// every sample of every symbol.

// FrameSamples returns the length of the waveform Frame-family calls
// produce for the given symbol count: totalSyms·N undelayed, plus one
// sample of tail when a fractional delay pushes the last symbol past
// the nominal grid.
func (s *Synthesizer) FrameSamples(totalSyms int, frac float64) int {
	if frac == 0 {
		return totalSyms * s.n
	}
	return totalSyms*s.n + 1
}

// AppendFrame appends the undelayed frame waveform for bits to dst and
// returns the extended slice: upPreamble shifted upchirps, downPreamble
// shifted downchirps, one shifted upchirp per '1' bit and one symbol of
// silence per '0' bit. Symbols are written in place from the symbol
// bank — no per-symbol scratch slices.
func (s *Synthesizer) AppendFrame(dst []complex128, shift int, upPreamble, downPreamble int, bits []byte) []complex128 {
	n := s.n
	totalSyms := upPreamble + downPreamble + len(bits)
	base := len(dst)
	dst = growComplex(dst, base+totalSyms*n)
	body := dst[base:]

	k0 := firstOnSymbol(upPreamble, downPreamble, bits)
	if k0 < 0 {
		zeroComplex(body)
		return dst
	}
	tmpl := body[k0*n : (k0+1)*n]
	s.SymbolInto(tmpl, shift)
	s.fillFromTemplate(body, tmpl, k0, upPreamble, downPreamble, bits)
	return dst
}

// FrameDelayedInto writes the frame waveform delayed by frac samples
// (0 <= frac < 1) into dst, reusing its storage when the capacity
// suffices, and returns the result. This is the exact waveform a tag
// starting frac samples late contributes to the AP's sample grid:
// sample j holds frame(j - frac), evaluated through the analytic phase
// recurrence, with samples near symbol boundaries correctly falling
// into the previous symbol's tail. Integer delays are applied by
// placement (air.Channel); together they realize arbitrary real-valued
// hardware delays with exact chirp physics.
func (s *Synthesizer) FrameDelayedInto(dst []complex128, shift int, upPreamble, downPreamble int, bits []byte, frac float64) []complex128 {
	if frac == 0 {
		return s.AppendFrame(dst[:0], shift, upPreamble, downPreamble, bits)
	}
	if frac < 0 || frac >= 1 {
		panic(fmt.Sprintf("synth: fractional delay %v outside [0, 1)", frac))
	}
	n := s.n
	totalSyms := upPreamble + downPreamble + len(bits)
	dst = growComplex(dst[:0], s.FrameSamples(totalSyms, frac))
	// Sample 0 precedes the delayed frame start (u = -frac < 0); symbol
	// k then occupies samples [k·n+1, (k+1)·n], each evaluating the
	// shifted chirp at the same sub-sample grid x ∈ {1-frac, …, n-frac}.
	dst[0] = 0
	body := dst[1:]

	k0 := firstOnSymbol(upPreamble, downPreamble, bits)
	if k0 < 0 {
		zeroComplex(body)
		return dst
	}
	tmpl := body[k0*n : (k0+1)*n]
	s.ShiftedInto(tmpl, shift, 1-frac)
	s.fillFromTemplate(body, tmpl, k0, upPreamble, downPreamble, bits)
	return dst
}

// FrameMixedInto is FrameDelayedInto with the channel mix folded into
// synthesis: the returned waveform w satisfies
//
//	w[j] = frameDelayed[j] · e^{jω·j} · gain,   ω = omega rad/sample,
//
// i.e. exactly what applying a frequency offset of ω and a complex
// carrier gain to the delayed frame would produce — in a single pass.
// The frequency mix breaks exact symbol repetition (each symbol picks
// up a constant phase e^{jω·k·N}), so the frame becomes two mixed
// templates (upchirp and downchirp) plus one constant complex multiply
// per sample — still O(N) recurrence arithmetic per frame.
func (s *Synthesizer) FrameMixedInto(dst []complex128, shift int, upPreamble, downPreamble int, bits []byte, frac, omega float64, gain complex128) []complex128 {
	if frac < 0 || frac >= 1 {
		panic(fmt.Sprintf("synth: fractional delay %v outside [0, 1)", frac))
	}
	n := s.n
	totalSyms := upPreamble + downPreamble + len(bits)
	off := 0 // leading samples before the first symbol
	x0 := 0.0
	if frac != 0 {
		off = 1
		x0 = 1 - frac
	}
	dst = growComplex(dst[:0], s.FrameSamples(totalSyms, frac))
	if off == 1 {
		dst[0] = 0 // precedes the delayed frame start (u = -frac < 0)
	}
	body := dst[off:]

	// Template slots: the first upchirp-valued symbol and the first
	// downchirp symbol are synthesized in place with their own mix
	// phase baked in; every other symbol is a constant-scaled copy.
	kUp := -1
	if upPreamble > 0 {
		kUp = 0
	} else {
		for i, b := range bits {
			if b != 0 {
				kUp = upPreamble + downPreamble + i
				break
			}
		}
	}
	kDown := -1
	if downPreamble > 0 {
		kDown = upPreamble
	}
	if kUp < 0 && kDown < 0 {
		zeroComplex(body)
		return dst
	}

	symPhase := func(k int) complex128 {
		if omega == 0 {
			return gain
		}
		return gain * cis(omega*float64(off+k*n))
	}
	var tmplUp, tmplDown []complex128
	if kUp >= 0 {
		tmplUp = body[kUp*n : (kUp+1)*n]
		s.MixedInto(tmplUp, shift, x0, false, omega, symPhase(kUp))
	}
	if kDown >= 0 {
		tmplDown = body[kDown*n : (kDown+1)*n]
		s.MixedInto(tmplDown, shift, x0, true, omega, symPhase(kDown))
	}
	for k := 0; k < totalSyms; k++ {
		if k == kUp || k == kDown {
			continue
		}
		seg := body[k*n : (k+1)*n]
		switch {
		case k < upPreamble:
			scaledCopy(seg, tmplUp, symRot(omega, (k-kUp)*n))
		case k < upPreamble+downPreamble:
			scaledCopy(seg, tmplDown, symRot(omega, (k-kDown)*n))
		case bits[k-upPreamble-downPreamble] != 0:
			scaledCopy(seg, tmplUp, symRot(omega, (k-kUp)*n))
		default:
			zeroComplex(seg)
		}
	}
	return dst
}

// frameTemplateSlots mirrors FrameMixedInto's template selection: the
// index of the first upchirp-valued symbol (kUp, -1 when the frame has
// no preamble and all-zero bits) and the first downchirp symbol (kDown,
// -1 without a down preamble), plus the leading-silence offset and
// synthesis start coordinate implied by frac.
func frameTemplateSlots(upPreamble, downPreamble int, bits []byte, frac float64) (kUp, kDown, off int, x0 float64) {
	if frac != 0 {
		off = 1
		x0 = 1 - frac
	}
	kUp = -1
	if upPreamble > 0 {
		kUp = 0
	} else {
		for i, b := range bits {
			if b != 0 {
				kUp = upPreamble + downPreamble + i
				break
			}
		}
	}
	kDown = -1
	if downPreamble > 0 {
		kDown = upPreamble
	}
	return
}

// FrameMixedTemplates synthesizes the frame's mixed template symbols —
// everything FrameMixedAccumulate needs besides plain scaled adds —
// into tmpl, grown to 2N and returned for reuse: the upchirp template
// (with kUp's mix phase and the carrier gain baked in) at tmpl[:N] and
// the downchirp template at tmpl[N:2N]. A frame that is all silence
// returns tmpl untouched. Splitting template synthesis from
// accumulation lets the channel build every device's templates once
// (in parallel) and then accumulate arbitrary sub-ranges of the
// receive buffer from them — the tiled transmit path.
func (s *Synthesizer) FrameMixedTemplates(tmpl []complex128, shift, upPreamble, downPreamble int, bits []byte, frac, omega float64, gain complex128) []complex128 {
	if frac < 0 || frac >= 1 {
		panic(fmt.Sprintf("synth: fractional delay %v outside [0, 1)", frac))
	}
	n := s.n
	kUp, kDown, off, x0 := frameTemplateSlots(upPreamble, downPreamble, bits, frac)
	if kUp < 0 && kDown < 0 {
		return tmpl // all silence: nothing to synthesize
	}
	tmpl = growComplex(tmpl[:0], 2*n)
	symPhase := func(k int) complex128 {
		if omega == 0 {
			return gain
		}
		return gain * cis(omega*float64(off+k*n))
	}
	if kUp >= 0 {
		s.MixedInto(tmpl[:n], shift, x0, false, omega, symPhase(kUp))
	}
	if kDown >= 0 {
		s.MixedInto(tmpl[n:2*n], shift, x0, true, omega, symPhase(kDown))
	}
	return tmpl
}

// FrameMixedAccumulateRange adds the [lo, hi) clip of the placed frame
// into out, reading pre-synthesized templates from tmpl (which must
// come from FrameMixedTemplates with identical frame arguments). Only
// symbols overlapping the range are touched, so accumulating a tile
// costs O(overlap), not O(frame) — tiles covering the whole buffer
// reproduce FrameMixedAccumulate's additions exactly: per sample the
// same products in the same order, regardless of how [0, len(out)) is
// partitioned. That per-sample invariance is what makes the tiled
// parallel transmit path bit-identical to the serial pass.
func (s *Synthesizer) FrameMixedAccumulateRange(out []complex128, lo, hi, at int, tmpl []complex128, upPreamble, downPreamble int, bits []byte, frac, omega float64) {
	if frac < 0 || frac >= 1 {
		panic(fmt.Sprintf("synth: fractional delay %v outside [0, 1)", frac))
	}
	if lo < 0 || hi > len(out) || lo > hi {
		panic(fmt.Sprintf("synth: accumulate range [%d, %d) outside buffer of %d", lo, hi, len(out)))
	}
	n := s.n
	totalSyms := upPreamble + downPreamble + len(bits)
	kUp, kDown, off, _ := frameTemplateSlots(upPreamble, downPreamble, bits, frac)
	if kUp < 0 && kDown < 0 {
		return // all silence: nothing to add
	}
	var tmplUp, tmplDown []complex128
	if kUp >= 0 {
		tmplUp = tmpl[:n]
	}
	if kDown >= 0 {
		tmplDown = tmpl[n : 2*n]
	}

	// Restrict the symbol walk to those whose span [base+k·n, base+k·n+n)
	// intersects [lo, hi).
	// Smallest k with base+k·n+n > lo is ⌊(lo−base)/n⌋ exactly.
	base := at + off
	kMin := floorDiv(lo-base, n)
	if kMin < 0 {
		kMin = 0
	}
	kMax := floorDiv(hi-1-base, n)
	if kMax > totalSyms-1 {
		kMax = totalSyms - 1
	}
	window := out[lo:hi]
	for k := kMin; k <= kMax; k++ {
		g0 := base + k*n - lo
		switch {
		case k == kUp:
			addScaled(window, g0, tmplUp, 1)
		case k == kDown:
			addScaled(window, g0, tmplDown, 1)
		case k < upPreamble:
			addScaled(window, g0, tmplUp, symRot(omega, (k-kUp)*n))
		case k < upPreamble+downPreamble:
			addScaled(window, g0, tmplDown, symRot(omega, (k-kDown)*n))
		case bits[k-upPreamble-downPreamble] != 0:
			addScaled(window, g0, tmplUp, symRot(omega, (k-kUp)*n))
		}
	}
}

// FrameMixedAccumulate adds the FrameMixedInto waveform, placed at
// sample offset at, directly into out — without materializing the
// frame. The frame is two recurrence-synthesized template symbols plus
// constant-scaled copies, so accumulation needs only the templates:
// each symbol segment adds tmpl[i]·rot into its clipped slice of out,
// and silent symbols are skipped outright. tmpl is caller-owned
// template scratch (grown to 2N and returned for reuse), which keeps
// the synthesizer shareable across goroutines. It is the composition
// of FrameMixedTemplates and a whole-buffer FrameMixedAccumulateRange.
//
// Bit-exactness contract: for every sample, the value added is the
// exact product scaledCopy would have stored (same expression, same
// order), so out ends bit-identical to FrameMixedInto followed by
// radio.Superpose at offset `at` — provided out was accumulated from
// (+0.0)-zeroed storage. (Skipping a silent symbol differs from adding
// its +0.0 samples only on a -0.0 accumulator element, and a sum seeded
// with +0.0 can never produce -0.0.)
func (s *Synthesizer) FrameMixedAccumulate(out []complex128, at int, tmpl []complex128, shift, upPreamble, downPreamble int, bits []byte, frac, omega float64, gain complex128) []complex128 {
	tmpl = s.FrameMixedTemplates(tmpl, shift, upPreamble, downPreamble, bits, frac, omega, gain)
	s.FrameMixedAccumulateRange(out, 0, len(out), at, tmpl, upPreamble, downPreamble, bits, frac, omega)
	return tmpl
}

// floorDiv returns ⌊a/b⌋ for positive b.
func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// addScaled adds src[i]·c into out[g0+i], clipped to out's bounds — the
// synthesis-fused form of radio.Superpose. The product mirrors
// scaledCopy bit for bit, including the c == 1 copy fast path; the
// accumulation runs through dsp's vector kernels where available,
// which are bit-identical to the scalar loops (see dsp/simd.go).
func addScaled(out []complex128, g0 int, src []complex128, c complex128) {
	lo := 0
	if g0 < 0 {
		lo = -g0
	}
	hi := len(src)
	if g0+hi > len(out) {
		hi = len(out) - g0
	}
	if hi <= lo {
		return
	}
	d := out[g0+lo : g0+hi]
	s := src[lo:hi:hi]
	if c == 1 {
		dsp.AddInto(d, s)
		return
	}
	dsp.AxpyInto(d, s, c)
}

// symRot returns the constant inter-symbol mix rotation e^{jω·Δ}.
func symRot(omega float64, deltaSamples int) complex128 {
	if omega == 0 {
		return 1
	}
	return cis(omega * float64(deltaSamples))
}

// scaledCopy writes dst[i] = src[i]·c through dsp.ScaleInto, whose
// fused expansion is bit-identical to dsp.AxpyInto over a zero
// accumulator — the materialize/accumulate equality the frame-path
// oracles pin.
func scaledCopy(dst, src []complex128, c complex128) {
	if c == 1 {
		copy(dst, src)
		return
	}
	dsp.ScaleInto(dst[:len(src)], src, c)
}

// fillFromTemplate fills every symbol slot of body from the up-chirp
// template living in slot k0: copies for upchirps and '1' bits,
// conjugated copies for downchirps, zeros for '0' bits. The template
// slot itself is conjugated last when it holds a downchirp, so earlier
// copies always read the up version.
func (s *Synthesizer) fillFromTemplate(body, tmpl []complex128, k0, upPreamble, downPreamble int, bits []byte) {
	n := s.n
	totalSyms := upPreamble + downPreamble + len(bits)
	for k := 0; k < totalSyms; k++ {
		if k == k0 {
			continue
		}
		seg := body[k*n : (k+1)*n]
		switch {
		case k < upPreamble:
			copy(seg, tmpl)
		case k < upPreamble+downPreamble:
			conjCopy(seg, tmpl)
		case bits[k-upPreamble-downPreamble] != 0:
			copy(seg, tmpl)
		default:
			zeroComplex(seg)
		}
	}
	if k0 >= upPreamble && k0 < upPreamble+downPreamble {
		conjInPlace(tmpl)
	}
}

// firstOnSymbol returns the index of the first non-silent symbol, or -1
// when the frame is all silence (no preamble, all-zero bits).
func firstOnSymbol(upPreamble, downPreamble int, bits []byte) int {
	if upPreamble+downPreamble > 0 {
		return 0
	}
	for i, b := range bits {
		if b != 0 {
			return i
		}
	}
	return -1
}

// growComplex returns dst extended to length m, reusing its storage
// when the capacity allows.
func growComplex(dst []complex128, m int) []complex128 {
	if cap(dst) >= m {
		return dst[:m]
	}
	out := make([]complex128, m)
	copy(out, dst)
	return out
}

func zeroComplex(v []complex128) {
	for i := range v {
		v[i] = 0
	}
}

func conjCopy(dst, src []complex128) {
	for i, v := range src {
		dst[i] = complex(real(v), -imag(v))
	}
}

func conjInPlace(v []complex128) {
	for i := range v {
		v[i] = complex(real(v[i]), -imag(v[i]))
	}
}
