package synth

// Golden-vector harness: compact reference vectors generated from the
// analytic chirp.EvalShifted path — stride-sampled symbol values plus a
// checksummed spectrum summary per (SF, BW, Oversample, ZeroPad, shift,
// frac) combination — are committed under testdata/. The tests assert
//
//  1. the committed file is internally consistent (per-vector FNV-64a
//     checksum over the canonical value strings — catches corruption or
//     hand-editing),
//  2. the analytic oracle still reproduces the committed values (the
//     reference physics cannot drift silently), and
//  3. the phase-recurrence synthesizer matches the oracle to ≤ 1e-9 at
//     every sample, with its dechirped spectrum matching the committed
//     peak location, peak power and total energy.
//
// Regenerate after an intentional physics change with:
//
//	go test ./internal/synth -run TestGolden -update

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math/cmplx"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"netscatter/internal/chirp"
	"netscatter/internal/dsp"
)

var update = flag.Bool("update", false, "regenerate golden vectors from the analytic path")

const goldenPath = "testdata/golden.json"

// goldenVector is one committed reference case. All float values are
// stored as full-precision strings so the checksum has a canonical byte
// representation independent of JSON number formatting.
type goldenVector struct {
	SF         int     `json:"sf"`
	BW         float64 `json:"bw"`
	Oversample int     `json:"oversample"`
	ZeroPad    int     `json:"zero_pad"`
	Shift      int     `json:"shift"`
	Frac       float64 `json:"frac"`

	// SampleStride-spaced probes of the delayed symbol
	// v[i] = EvalShifted(p, shift, i - frac).
	SampleStride int      `json:"sample_stride"`
	SamplesRe    []string `json:"samples_re"`
	SamplesIm    []string `json:"samples_im"`

	// Dechirped zero-padded power-spectrum summary of v: the padded
	// argmax index at generation time plus powers probed at fixed
	// indices derived from it (probing fixed indices rather than
	// re-running argmax keeps the comparison immune to near-tie peak
	// flips at half-sample offsets), and the total energy.
	SpecProbeIdx   []int    `json:"spec_probe_idx"`
	SpecProbePower []string `json:"spec_probe_power"`
	SpecEnergy     string   `json:"spec_energy"`

	CRC string `json:"crc"` // FNV-64a over the canonical strings above
}

type goldenFile struct {
	Comment string         `json:"comment"`
	Vectors []goldenVector `json:"vectors"`
}

func (v *goldenVector) params() chirp.Params {
	return chirp.Params{SF: v.SF, BW: v.BW, Oversample: v.Oversample}
}

func fstr(x float64) string { return strconv.FormatFloat(x, 'g', 17, 64) }

// checksum hashes every canonical value string of the vector (in
// field order) with FNV-64a.
func (v *goldenVector) checksum() string {
	h := fnv.New64a()
	w := func(s string) { h.Write([]byte(s)); h.Write([]byte{'\n'}) }
	w(fmt.Sprintf("%d/%g/%d/%d/%d/%s/%d", v.SF, v.BW, v.Oversample, v.ZeroPad, v.Shift, fstr(v.Frac), v.SampleStride))
	for i := range v.SamplesRe {
		w(v.SamplesRe[i])
		w(v.SamplesIm[i])
	}
	for i := range v.SpecProbeIdx {
		w(strconv.Itoa(v.SpecProbeIdx[i]))
		w(v.SpecProbePower[i])
	}
	w(v.SpecEnergy)
	return fmt.Sprintf("%016x", h.Sum64())
}

// analyticSymbol samples the delayed shifted symbol from the oracle.
func analyticSymbol(p chirp.Params, shift int, frac float64) []complex128 {
	out := make([]complex128, p.N())
	for i := range out {
		out[i] = chirp.EvalShifted(p, shift, float64(i)-frac)
	}
	return out
}

// spectrum dechirps sym with the vector's zero-padding and returns a
// copy of the padded power spectrum plus its total energy.
func spectrum(p chirp.Params, zeroPad int, sym []complex128) (spec []float64, energy float64) {
	dem := chirp.NewDemodulator(p, zeroPad)
	spec = append([]float64(nil), dem.Spectrum(sym)...)
	for _, s := range spec {
		energy += s
	}
	return spec, energy
}

// goldenCases enumerates the committed combinations.
func goldenCases() []goldenVector {
	type c struct {
		p       chirp.Params
		zeroPad int
		shifts  []int
		fracs   []float64
	}
	cases := []c{
		{chirp.Params{SF: 7, BW: 125e3, Oversample: 1}, 4, []int{0, 37}, []float64{0, 0.5}},
		{chirp.Params{SF: 9, BW: 500e3, Oversample: 1}, 8, []int{0, 1, 200}, []float64{0, 0.25, 0.73}},
		{chirp.Params{SF: 11, BW: 500e3, Oversample: 1}, 4, []int{1000}, []float64{0.5}},
		{chirp.Params{SF: 7, BW: 125e3, Oversample: 2}, 4, []int{0, 100}, []float64{0, 0.36}},
	}
	var out []goldenVector
	for _, cs := range cases {
		for _, shift := range cs.shifts {
			for _, frac := range cs.fracs {
				out = append(out, goldenVector{
					SF: cs.p.SF, BW: cs.p.BW, Oversample: cs.p.Oversample,
					ZeroPad: cs.zeroPad, Shift: shift, Frac: frac,
					SampleStride: cs.p.N() / 16,
				})
			}
		}
	}
	return out
}

// fill populates a vector's reference values from the analytic path.
func (v *goldenVector) fill() {
	p := v.params()
	sym := analyticSymbol(p, v.Shift, v.Frac)
	v.SamplesRe, v.SamplesIm = nil, nil
	for i := 0; i < len(sym); i += v.SampleStride {
		v.SamplesRe = append(v.SamplesRe, fstr(real(sym[i])))
		v.SamplesIm = append(v.SamplesIm, fstr(imag(sym[i])))
	}
	spec, en := spectrum(p, v.ZeroPad, sym)
	peak, _ := dsp.ArgmaxFloat(spec)
	m := len(spec)
	v.SpecProbeIdx = []int{peak, (peak + 1) % m, (peak + m/4) % m, (peak + m/2) % m}
	v.SpecProbePower = nil
	for _, idx := range v.SpecProbeIdx {
		v.SpecProbePower = append(v.SpecProbePower, fstr(spec[idx]))
	}
	v.SpecEnergy = fstr(en)
	v.CRC = v.checksum()
}

func writeGolden(t *testing.T) {
	t.Helper()
	gf := goldenFile{
		Comment: "Reference vectors generated from the analytic chirp.EvalShifted path; regenerate with: go test ./internal/synth -run TestGolden -update",
	}
	for _, v := range goldenCases() {
		v.fill()
		gf.Vectors = append(gf.Vectors, v)
	}
	data, err := json.MarshalIndent(&gf, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d vectors)", goldenPath, len(gf.Vectors))
}

func loadGolden(t *testing.T) goldenFile {
	t.Helper()
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden vectors missing (regenerate with -update): %v", err)
	}
	var gf goldenFile
	if err := json.Unmarshal(data, &gf); err != nil {
		t.Fatalf("golden vectors unreadable: %v", err)
	}
	return gf
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	x, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("golden value %q: %v", s, err)
	}
	return x
}

func TestGoldenVectors(t *testing.T) {
	if *update {
		writeGolden(t)
	}
	gf := loadGolden(t)
	if len(gf.Vectors) != len(goldenCases()) {
		t.Fatalf("golden file has %d vectors, expected %d (regenerate with -update)",
			len(gf.Vectors), len(goldenCases()))
	}
	for _, v := range gf.Vectors {
		v := v
		name := fmt.Sprintf("SF%d_O%d_zp%d_shift%d_frac%v", v.SF, v.Oversample, v.ZeroPad, v.Shift, v.Frac)
		t.Run(name, func(t *testing.T) {
			if got := v.checksum(); got != v.CRC {
				t.Fatalf("checksum mismatch: file says %s, contents hash to %s — golden file corrupted?", v.CRC, got)
			}
			p := v.params()
			n := p.N()

			// The analytic oracle must still reproduce the committed
			// values (tolerance absorbs cross-platform FP contraction).
			oracle := analyticSymbol(p, v.Shift, v.Frac)
			for k := range v.SamplesRe {
				i := k * v.SampleStride
				want := complex(parseF(t, v.SamplesRe[k]), parseF(t, v.SamplesIm[k]))
				if cmplx.Abs(oracle[i]-want) > oracleTol {
					t.Fatalf("analytic path drifted from golden at sample %d: got %v want %v", i, oracle[i], want)
				}
			}

			// The recurrence synthesizer must match the oracle at every
			// sample of the symbol, not just the committed probes.
			syn := make([]complex128, n)
			For(p).ShiftedInto(syn, v.Shift, -v.Frac)
			for i := range syn {
				if e := cmplx.Abs(syn[i] - oracle[i]); e > oracleTol {
					t.Fatalf("recurrence err %.3e > %g at sample %d", e, oracleTol, i)
				}
			}

			// And its dechirped spectrum must reproduce the committed
			// probe powers and energy. The probes are normalized by the
			// peak power (probe 0): far-from-peak bins hold values ~1e-30
			// of the peak, where only absolute-vs-peak error is
			// meaningful.
			spec, en := spectrum(p, v.ZeroPad, syn)
			wantPeak := parseF(t, v.SpecProbePower[0])
			for k, idx := range v.SpecProbeIdx {
				want := parseF(t, v.SpecProbePower[k])
				if d := (spec[idx] - want) / wantPeak; d > 1e-9 || d < -1e-9 {
					t.Errorf("spectrum probe %d (padded bin %d) off by %.3e of peak", k, idx, d)
				}
			}
			wantEn := parseF(t, v.SpecEnergy)
			if rel := (en - wantEn) / wantEn; rel > 1e-9 || rel < -1e-9 {
				t.Errorf("spectrum energy off by %.3e relative", rel)
			}
		})
	}
}
