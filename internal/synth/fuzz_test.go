package synth

// Fuzz targets for the synthesizer invariants the decoder's physics
// relies on. `go test -run Fuzz` exercises the committed seed corpus as
// part of tier-1; `go test -fuzz FuzzShiftedRecurrence ./internal/synth`
// explores further.

import (
	"math"
	"math/cmplx"
	"testing"

	"netscatter/internal/chirp"
)

// fuzzParams maps raw fuzz bytes onto a valid parameter set: SF in
// [5, 12], Oversample in {1, 2}.
func fuzzParams(sf, ovs uint8) chirp.Params {
	return chirp.Params{SF: 5 + int(sf)%8, BW: 125e3, Oversample: 1 + int(ovs)%2}
}

// FuzzShiftedRecurrence checks phase continuity of the recurrence
// synthesizer against the analytic oracle for arbitrary shift and
// fractional offset: every sample unit magnitude, every sample within
// oracleTol of chirp.EvalShifted.
func FuzzShiftedRecurrence(f *testing.F) {
	f.Add(uint8(4), uint8(0), int16(37), uint16(250))
	f.Add(uint8(2), uint8(0), int16(0), uint16(0))
	f.Add(uint8(2), uint8(1), int16(100), uint16(360))
	f.Add(uint8(7), uint8(0), int16(-1234), uint16(999))
	f.Add(uint8(0), uint8(0), int16(31), uint16(500))
	f.Fuzz(func(t *testing.T, sf, ovs uint8, shift int16, fracMil uint16) {
		p := fuzzParams(sf, ovs)
		frac := float64(fracMil%1000) / 1000
		s := For(p)
		buf := make([]complex128, p.N())
		x0 := -frac
		s.ShiftedInto(buf, int(shift), x0)
		for i, v := range buf {
			if d := math.Abs(cmplx.Abs(v) - 1); d > oracleTol {
				t.Fatalf("%v shift=%d frac=%.3f sample %d: magnitude off unit by %.3e",
					p, shift, frac, i, d)
			}
		}
		if err := maxOracleErr(p, int(shift), x0, buf); err > oracleTol {
			t.Fatalf("%v shift=%d frac=%.3f: recurrence err %.3e > %g",
				p, shift, frac, err, oracleTol)
		}
	})
}

// FuzzSymbolCyclicShift checks the cyclic-shift identity at critical
// sampling: the banked integer-shift symbol must be exactly the cyclic
// rotation of the baseline upchirp (this is what moves the dechirped
// peak bin, §2.1), and in aggregate mode it must match the analytic
// frequency-offset symbol within tolerance.
func FuzzSymbolCyclicShift(f *testing.F) {
	f.Add(uint8(4), uint8(0), int16(37))
	f.Add(uint8(2), uint8(1), int16(-3))
	f.Add(uint8(6), uint8(0), int16(4095))
	f.Fuzz(func(t *testing.T, sf, ovs uint8, shift int16) {
		p := fuzzParams(sf, ovs)
		s := For(p)
		n := p.N()
		buf := make([]complex128, n)
		s.SymbolInto(buf, int(shift))
		if p.Oversample == 1 {
			want := chirp.CyclicShift(s.Bank(), int(shift))
			for i := range buf {
				if buf[i] != want[i] {
					t.Fatalf("%v shift=%d sample %d: bank rotation %v != CyclicShift %v",
						p, shift, i, buf[i], want[i])
				}
			}
			return
		}
		for i := range buf {
			if e := cmplx.Abs(buf[i] - chirp.EvalShifted(p, int(shift), float64(i))); e > oracleTol {
				t.Fatalf("%v shift=%d sample %d: aggregate symbol err %.3e", p, shift, i, e)
			}
		}
	})
}
