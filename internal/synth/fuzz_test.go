package synth

// Fuzz targets for the synthesizer invariants the decoder's physics
// relies on. `go test -run Fuzz` exercises the committed seed corpus as
// part of tier-1; `go test -fuzz FuzzShiftedRecurrence ./internal/synth`
// explores further.

import (
	"math"
	"math/cmplx"
	"testing"

	"netscatter/internal/chirp"
	"netscatter/internal/dsp"
)

// fuzzParams maps raw fuzz bytes onto a valid parameter set: SF in
// [5, 12], Oversample in {1, 2}.
func fuzzParams(sf, ovs uint8) chirp.Params {
	return chirp.Params{SF: 5 + int(sf)%8, BW: 125e3, Oversample: 1 + int(ovs)%2}
}

// FuzzShiftedRecurrence checks phase continuity of the recurrence
// synthesizer against the analytic oracle for arbitrary shift and
// fractional offset: every sample unit magnitude, every sample within
// oracleTol of chirp.EvalShifted.
func FuzzShiftedRecurrence(f *testing.F) {
	f.Add(uint8(4), uint8(0), int16(37), uint16(250))
	f.Add(uint8(2), uint8(0), int16(0), uint16(0))
	f.Add(uint8(2), uint8(1), int16(100), uint16(360))
	f.Add(uint8(7), uint8(0), int16(-1234), uint16(999))
	f.Add(uint8(0), uint8(0), int16(31), uint16(500))
	f.Fuzz(func(t *testing.T, sf, ovs uint8, shift int16, fracMil uint16) {
		p := fuzzParams(sf, ovs)
		frac := float64(fracMil%1000) / 1000
		s := For(p)
		buf := make([]complex128, p.N())
		x0 := -frac
		s.ShiftedInto(buf, int(shift), x0)
		for i, v := range buf {
			if d := math.Abs(cmplx.Abs(v) - 1); d > oracleTol {
				t.Fatalf("%v shift=%d frac=%.3f sample %d: magnitude off unit by %.3e",
					p, shift, frac, i, d)
			}
		}
		if err := maxOracleErr(p, int(shift), x0, buf); err > oracleTol {
			t.Fatalf("%v shift=%d frac=%.3f: recurrence err %.3e > %g",
				p, shift, frac, err, oracleTol)
		}
	})
}

// FuzzSymbolCyclicShift checks the cyclic-shift identity at critical
// sampling: the banked integer-shift symbol must be exactly the cyclic
// rotation of the baseline upchirp (this is what moves the dechirped
// peak bin, §2.1), and in aggregate mode it must match the analytic
// frequency-offset symbol within tolerance.
func FuzzSymbolCyclicShift(f *testing.F) {
	f.Add(uint8(4), uint8(0), int16(37))
	f.Add(uint8(2), uint8(1), int16(-3))
	f.Add(uint8(6), uint8(0), int16(4095))
	f.Fuzz(func(t *testing.T, sf, ovs uint8, shift int16) {
		p := fuzzParams(sf, ovs)
		s := For(p)
		n := p.N()
		buf := make([]complex128, n)
		s.SymbolInto(buf, int(shift))
		if p.Oversample == 1 {
			want := chirp.CyclicShift(s.Bank(), int(shift))
			for i := range buf {
				if buf[i] != want[i] {
					t.Fatalf("%v shift=%d sample %d: bank rotation %v != CyclicShift %v",
						p, shift, i, buf[i], want[i])
				}
			}
			return
		}
		for i := range buf {
			if e := cmplx.Abs(buf[i] - chirp.EvalShifted(p, int(shift), float64(i))); e > oracleTol {
				t.Fatalf("%v shift=%d sample %d: aggregate symbol err %.3e", p, shift, i, e)
			}
		}
	})
}

// chainTol bounds the divergence between the interleaved sub-chain
// recurrence and the plain serial recurrence over one segment: both
// stay renormalized onto the unit circle, so the accumulated rounding
// difference is orders of magnitude below the analytic oracle budget.
const chainTol = 1e-9

// FuzzChainStrideContinuity drives runSeg's interleaved sub-chain path
// with arbitrary quadratic-phase seeds and segment lengths and checks
// it against the plain serial recurrence: every emitted sample within
// chainTol of the serial sample, every sample unit magnitude, and the
// continued (z, dz) state — what stitches the next wrap-free segment on
// — equally close. Segment lengths sweep the stride remainder
// m mod L through every residue and cross the renormalization cadence,
// so phase continuity is exercised at chain-stride boundaries, at the
// serial tail hand-off and across renorm blocks.
func FuzzChainStrideContinuity(f *testing.F) {
	f.Add(uint16(0), uint16(100), uint16(200), uint16(300))
	f.Add(uint16(1), uint16(0), uint16(999), uint16(0))
	f.Add(uint16(7), uint16(500), uint16(0), uint16(999))
	f.Add(uint16(1000), uint16(250), uint16(750), uint16(500))
	f.Add(uint16(4093), uint16(999), uint16(1), uint16(42))
	f.Fuzz(func(t *testing.T, mRaw, phiMil, deltaMil, aMil uint16) {
		m := chainMinSeg + int(mRaw)%4096
		phi0 := 2 * math.Pi * float64(phiMil%1000) / 1000
		delta := 2*math.Pi*float64(deltaMil%1000)/1000 - math.Pi
		curv := math.Pi * (float64(aMil%1000)/1000 - 0.5) / 256
		z0 := cis(phi0)
		dz0 := cis(delta)
		ddz := cis(2 * curv)

		var s Synthesizer
		dst := make([]complex128, m)
		zN, dzN := s.runSeg(dst, z0, dz0, ddz, 1)

		z, d := z0, dz0
		for i := 0; i < m; i++ {
			ref := complex(real(z), imag(z))
			if e := cmplx.Abs(dst[i] - ref); e > chainTol {
				t.Fatalf("m=%d δ=%.4f a=%.2e sample %d (stride phase %d): chain vs serial err %.3e",
					m, delta, curv, i, i%dsp.SynthChainCount, e)
			}
			if e := math.Abs(cmplx.Abs(dst[i]) - 1); e > chainTol {
				t.Fatalf("m=%d sample %d: magnitude off unit by %.3e", m, i, e)
			}
			z = mulFMA(z, d)
			d = mulFMA(d, ddz)
			if i%renormEvery == renormEvery-1 {
				z = renorm(z)
				d = renorm(d)
			}
		}
		if e := cmplx.Abs(zN - z); e > chainTol {
			t.Fatalf("m=%d: continued z diverges from serial by %.3e", m, e)
		}
		if e := cmplx.Abs(dzN - d); e > chainTol {
			t.Fatalf("m=%d: continued dz diverges from serial by %.3e", m, e)
		}
	})
}
