package synth

import (
	"math"
	"math/cmplx"
	"testing"

	"netscatter/internal/chirp"
)

// oracleTol is the error budget every synthesized sample must meet
// against the analytic chirp.EvalShifted oracle (ISSUE acceptance:
// ≤ 1e-9; the recurrence actually lands around 1e-13).
const oracleTol = 1e-9

var testParamSets = []chirp.Params{
	{SF: 7, BW: 125e3, Oversample: 1},
	{SF: 9, BW: 500e3, Oversample: 1},
	{SF: 11, BW: 500e3, Oversample: 1},
	{SF: 7, BW: 125e3, Oversample: 2},
	{SF: 8, BW: 250e3, Oversample: 4},
}

func maxOracleErr(p chirp.Params, shift int, x0 float64, got []complex128) float64 {
	worst := 0.0
	for i, v := range got {
		if e := cmplx.Abs(v - chirp.EvalShifted(p, shift, x0+float64(i))); e > worst {
			worst = e
		}
	}
	return worst
}

func TestShiftedIntoMatchesOracle(t *testing.T) {
	for _, p := range testParamSets {
		s := For(p)
		n := p.N()
		buf := make([]complex128, n)
		for _, shift := range []int{0, 1, 2, n / 3, n / 2, n - 1} {
			for _, frac := range []float64{0, 0.25, 0.5, 0.73, 0.999} {
				x0 := 1 - frac
				s.ShiftedInto(buf, shift, x0)
				if err := maxOracleErr(p, shift, x0, buf); err > oracleTol {
					t.Errorf("%v shift=%d frac=%.3f: recurrence err %.3e > %g",
						p, shift, frac, err, oracleTol)
				}
			}
		}
	}
}

// TestShiftedIntoLongRun drives the recurrence across many wraps — a
// frame-length run over the largest supported symbol — to bound the
// accumulated drift the renormalization cadence must contain.
func TestShiftedIntoLongRun(t *testing.T) {
	p := chirp.Params{SF: 12, BW: 500e3, Oversample: 1}
	s := For(p)
	buf := make([]complex128, 8*p.N())
	s.ShiftedInto(buf, 1234, 1-0.37)
	if err := maxOracleErr(p, 1234, 1-0.37, buf); err > oracleTol {
		t.Fatalf("long-run recurrence err %.3e > %g", err, oracleTol)
	}
}

func TestShiftedIntoUnitMagnitude(t *testing.T) {
	p := chirp.Default500k9
	s := For(p)
	buf := make([]complex128, 4*p.N())
	s.ShiftedInto(buf, 77, 0.583)
	for i, v := range buf {
		if d := math.Abs(cmplx.Abs(v) - 1); d > oracleTol {
			t.Fatalf("sample %d magnitude off unit circle by %.3e", i, d)
		}
	}
}

func TestSymbolIntoMatchesModulator(t *testing.T) {
	for _, p := range testParamSets {
		s := For(p)
		mod := chirp.NewModulator(p)
		buf := make([]complex128, p.N())
		for _, shift := range []int{0, 1, 37 % p.N(), p.N() - 1, -3, p.N() + 5} {
			s.SymbolInto(buf, shift)
			want := mod.Symbol(shift)
			for i := range buf {
				if cmplx.Abs(buf[i]-want[i]) > oracleTol {
					t.Fatalf("%v shift=%d sample %d: got %v want %v", p, shift, i, buf[i], want[i])
				}
			}
		}
	}
}

func TestDownSymbolIntoConjugates(t *testing.T) {
	p := chirp.Params{SF: 7, BW: 125e3, Oversample: 1}
	s := For(p)
	up := make([]complex128, p.N())
	down := make([]complex128, p.N())
	s.SymbolInto(up, 12)
	s.DownSymbolInto(down, 12)
	for i := range up {
		if down[i] != complex(real(up[i]), -imag(up[i])) {
			t.Fatalf("sample %d: down symbol is not the conjugate of up", i)
		}
	}
}

// referenceFrameDelayed is the pre-synth analytic frame loop (one
// EvalShifted per sample), kept verbatim as the oracle for whole-frame
// synthesis.
func referenceFrameDelayed(p chirp.Params, shift, up, down int, bits []byte, frac float64) []complex128 {
	n := p.N()
	totalSyms := up + down + len(bits)
	out := make([]complex128, totalSyms*n+1)
	for j := range out {
		u := float64(j) - frac
		if u < 0 {
			continue
		}
		k := int(u) / n
		if k >= totalSyms {
			break
		}
		x := u - float64(k*n)
		switch {
		case k < up:
			out[j] = chirp.EvalShifted(p, shift, x)
		case k < up+down:
			v := chirp.EvalShifted(p, shift, x)
			out[j] = complex(real(v), -imag(v))
		default:
			if bits[k-up-down] != 0 {
				out[j] = chirp.EvalShifted(p, shift, x)
			}
		}
	}
	return out
}

func TestFrameDelayedIntoMatchesReference(t *testing.T) {
	bits := []byte{1, 0, 1, 1, 0, 0, 1, 0, 1, 1}
	for _, p := range testParamSets[:4] {
		s := For(p)
		for _, shift := range []int{0, 5, p.N() / 2} {
			for _, frac := range []float64{0.25, 0.5, 0.901} {
				got := s.FrameDelayedInto(nil, shift, 6, 2, bits, frac)
				want := referenceFrameDelayed(p, shift, 6, 2, bits, frac)
				if len(got) != len(want) {
					t.Fatalf("%v: length %d want %d", p, len(got), len(want))
				}
				worst := 0.0
				for i := range got {
					if e := cmplx.Abs(got[i] - want[i]); e > worst {
						worst = e
					}
				}
				if worst > oracleTol {
					t.Errorf("%v shift=%d frac=%.3f: frame err %.3e > %g", p, shift, frac, worst, oracleTol)
				}
			}
		}
	}
}

func TestFrameDelayedIntoZeroFracMatchesAppend(t *testing.T) {
	p := chirp.Params{SF: 7, BW: 125e3, Oversample: 1}
	s := For(p)
	bits := []byte{1, 0, 0, 1, 1}
	a := s.AppendFrame(nil, 9, 6, 2, bits)
	b := s.FrameDelayedInto(nil, 9, 6, 2, bits, 0)
	if len(a) != len(b) {
		t.Fatalf("length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d: %v vs %v — frac=0 must be bit-identical to AppendFrame", i, a[i], b[i])
		}
	}
}

func TestFrameMixedIntoMatchesSeparatePasses(t *testing.T) {
	bits := []byte{1, 1, 0, 1, 0, 0, 0, 1}
	gain := complex(0.35, -1.2)
	for _, p := range testParamSets[:4] {
		s := For(p)
		fs := p.SampleRate()
		for _, frac := range []float64{0, 0.37, 0.62} {
			for _, dfHz := range []float64{0, 113.7, -540.2} {
				got := s.FrameMixedInto(nil, 21%p.N(), 6, 2, bits, frac, 2*math.Pi*dfHz/fs, gain)
				want := s.FrameDelayedInto(nil, 21%p.N(), 6, 2, bits, frac)
				chirp.ApplyFreqOffset(want, dfHz, fs)
				for i := range want {
					want[i] *= gain
				}
				if len(got) != len(want) {
					t.Fatalf("%v: length %d want %d", p, len(got), len(want))
				}
				worst := 0.0
				for i := range got {
					if e := cmplx.Abs(got[i] - want[i]); e > worst {
						worst = e
					}
				}
				// ApplyFreqOffset's own incremental rotation drifts at the
				// same order as the recurrence; compare a touch looser,
				// scaled by the gain magnitude.
				if worst > 10*oracleTol*cmplx.Abs(gain) {
					t.Errorf("%v frac=%.2f df=%.1f: mixed err %.3e", p, frac, dfHz, worst)
				}
			}
		}
	}
}

func TestFrameAllSilence(t *testing.T) {
	p := chirp.Params{SF: 7, BW: 125e3, Oversample: 1}
	s := For(p)
	zeros := []byte{0, 0, 0}
	for _, buf := range [][]complex128{
		s.AppendFrame(nil, 4, 0, 0, zeros),
		s.FrameDelayedInto(nil, 4, 0, 0, zeros, 0.5),
		s.FrameMixedInto(nil, 4, 0, 0, zeros, 0.5, 0.01, complex(2, 1)),
	} {
		for i, v := range buf {
			if v != 0 {
				t.Fatalf("all-silence frame has energy at sample %d: %v", i, v)
			}
		}
	}
}

func TestForCachesPerParams(t *testing.T) {
	a := For(chirp.Default500k9)
	b := For(chirp.Default500k9)
	if a != b {
		t.Fatal("For returned distinct synthesizers for identical params")
	}
	c := For(chirp.Params{SF: 9, BW: 500e3}) // Oversample 0 normalizes to 1
	if c != a {
		t.Fatal("For did not normalize Oversample 0 to the cached instance")
	}
}

// TestSynthHotPathsZeroAlloc pins the allocation-free property of the
// synthesis hot paths, mirroring the decoder's PR 1 gate: with a
// preallocated destination, symbol and frame synthesis must not touch
// the heap.
func TestSynthHotPathsZeroAlloc(t *testing.T) {
	p := chirp.Default500k9
	s := For(p)
	bits := []byte{1, 0, 1, 1, 0, 1, 0, 0}
	sym := make([]complex128, p.N())
	frame := make([]complex128, 0, (8+len(bits))*p.N()+1)

	if allocs := testing.AllocsPerRun(20, func() {
		s.SymbolInto(sym, 42)
		s.ShiftedInto(sym, 42, 0.75)
	}); allocs != 0 {
		t.Errorf("symbol synthesis allocates %.1f objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		frame = s.FrameDelayedInto(frame, 42, 6, 2, bits, 0.37)
	}); allocs != 0 {
		t.Errorf("FrameDelayedInto allocates %.1f objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		frame = s.FrameMixedInto(frame, 42, 6, 2, bits, 0.37, 0.003, complex(1.7, 0.2))
	}); allocs != 0 {
		t.Errorf("FrameMixedInto allocates %.1f objects/op, want 0", allocs)
	}
}
