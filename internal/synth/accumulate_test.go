package synth

import (
	"testing"

	"netscatter/internal/chirp"
)

// TestFrameMixedAccumulateBitExact pins the fused accumulate contract:
// adding a frame directly into a receive buffer must be bit-identical
// to materializing it with FrameMixedInto and superposing it sample by
// sample — across fractional delays, frequency offsets, gains,
// clipping at both ends, and all-silence frames.
func TestFrameMixedAccumulateBitExact(t *testing.T) {
	p := chirp.Params{SF: 7, BW: 125e3, Oversample: 1}
	s := For(p)
	n := s.N()

	cases := []struct {
		name  string
		at    int
		bits  []byte
		frac  float64
		omega float64
		gain  complex128
	}{
		{"plain", 3, []byte{1, 0, 1, 1, 0}, 0, 0, 1},
		{"delayed", 7, []byte{1, 0, 1, 1, 0}, 0.37, 0, complex(0.8, 0.1)},
		{"mixed", 11, []byte{0, 1, 0, 0, 1, 1}, 0.12, 2 * 3.14159 * 200 / p.SampleRate(), complex(1.4, -0.3)},
		{"neg-offset-clip", -3*n - 17, []byte{1, 1, 0, 1}, 0.5, 0.001, complex(0.5, 0.5)},
		{"tail-clip", 6 * n, []byte{1, 0, 1}, 0.25, -0.002, complex(2, 0)},
		{"all-zero-bits", 5, []byte{0, 0, 0, 0}, 0.4, 0.001, complex(1, 1)},
		{"far-negative", -100 * n, []byte{1, 1}, 0.3, 0, 1},
		{"far-positive", 100 * n, []byte{1, 1}, 0.3, 0, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			outLen := 10 * n
			want := make([]complex128, outLen)
			got := make([]complex128, outLen)
			// Non-trivial starting contents, built additively from +0.0
			// so they satisfy the accumulate contract's precondition.
			seed := s.bank
			for i := range want {
				v := seed[i%n] * complex(0.01, 0.02)
				want[i] += v
				got[i] += v
			}

			frame := s.FrameMixedInto(nil, 9, 6, 2, tc.bits, tc.frac, tc.omega, tc.gain)
			for i, v := range frame {
				j := tc.at + i
				if j < 0 || j >= len(want) {
					continue
				}
				want[j] += v
			}

			tmpl := s.FrameMixedAccumulate(got, tc.at, nil, 9, 6, 2, tc.bits, tc.frac, tc.omega, tc.gain)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("sample %d: accumulate %v != materialized %v", i, got[i], want[i])
				}
			}

			// Second frame through the reused template scratch.
			s.FrameMixedAccumulate(got, tc.at+n, tmpl, 9, 6, 2, tc.bits, tc.frac, tc.omega, tc.gain)
			for i, v := range frame {
				j := tc.at + n + i
				if j < 0 || j >= len(want) {
					continue
				}
				want[j] += v
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("reused scratch: sample %d: %v != %v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestFrameMixedAccumulateRangeTilesBitExact pins the tiled transmit
// contract: accumulating a frame through any partition of the buffer
// into [lo, hi) tiles — including tiny, unaligned and degenerate ones —
// is bit-identical to the single whole-buffer accumulate, because the
// per-sample additions are the same products in the same order.
func TestFrameMixedAccumulateRangeTilesBitExact(t *testing.T) {
	p := chirp.Params{SF: 7, BW: 125e3, Oversample: 1}
	s := For(p)
	n := s.N()
	bits := []byte{1, 0, 1, 1, 0, 1, 0, 0, 1}
	frac := 0.31
	omega := 0.0004
	gain := complex(1.2, -0.7)
	outLen := 14*n + 5

	want := make([]complex128, outLen)
	tmpl := s.FrameMixedAccumulate(want, 2*n+3, nil, 9, 6, 2, bits, frac, omega, gain)

	partitions := [][]int{
		{0, outLen},                             // trivial
		{0, 1, 2, outLen - 1, outLen},           // degenerate edges
		{0, 512, 1024, 1536, outLen},            // fixed-grain tiles
		{0, n / 2, n, 3*n + 7, 9 * n, outLen},   // unaligned
		{0, 33, 34, 35, 4*n + 1, 5 * n, outLen}, // mixed
	}
	for _, cuts := range partitions {
		got := make([]complex128, outLen)
		for i := 0; i+1 < len(cuts); i++ {
			s.FrameMixedAccumulateRange(got, cuts[i], cuts[i+1], 2*n+3, tmpl, 6, 2, bits, frac, omega)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("partition %v: sample %d: %v != %v", cuts, i, got[i], want[i])
			}
		}
	}

	// Tiles may also arrive in any order (parallel workers finish out of
	// order; their ranges are disjoint).
	got := make([]complex128, outLen)
	order := []int{3, 0, 2, 1}
	cuts := []int{0, 4 * n, 8 * n, 12 * n, outLen}
	for _, k := range order {
		s.FrameMixedAccumulateRange(got, cuts[k], cuts[k+1], 2*n+3, tmpl, 6, 2, bits, frac, omega)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("out-of-order tiles: sample %d: %v != %v", i, got[i], want[i])
		}
	}
}

// TestFrameMixedTemplatesAllSilence checks the all-silent frame leaves
// the template scratch untouched and range accumulation adds nothing.
func TestFrameMixedTemplatesAllSilence(t *testing.T) {
	p := chirp.Params{SF: 7, BW: 125e3, Oversample: 1}
	s := For(p)
	bits := []byte{0, 0, 0}
	tmpl := s.FrameMixedTemplates(nil, 9, 0, 0, bits, 0.2, 0.001, 1)
	if tmpl != nil {
		t.Fatalf("all-silent frame grew the template scratch to %d", len(tmpl))
	}
	out := make([]complex128, 4*s.N())
	s.FrameMixedAccumulateRange(out, 0, len(out), 0, tmpl, 0, 0, bits, 0.2, 0.001)
	for i, v := range out {
		if v != 0 {
			t.Fatalf("all-silent frame wrote sample %d: %v", i, v)
		}
	}
}

// TestFrameMixedAccumulateAggregate covers the bandwidth-aggregation
// synthesis branch (Oversample > 1).
func TestFrameMixedAccumulateAggregate(t *testing.T) {
	p := chirp.Params{SF: 7, BW: 125e3, Oversample: 2}
	s := For(p)
	bits := []byte{1, 0, 1}
	out := make([]complex128, 14*s.N())
	want := make([]complex128, len(out))

	frame := s.FrameMixedInto(nil, 30, 6, 2, bits, 0.21, 0.0007, complex(1.1, 0.4))
	for i, v := range frame {
		want[5+i] += v
	}
	s.FrameMixedAccumulate(out, 5, nil, 30, 6, 2, bits, 0.21, 0.0007, complex(1.1, 0.4))
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("sample %d: %v != %v", i, out[i], want[i])
		}
	}
}

func BenchmarkFrameMixedAccumulate(b *testing.B) {
	p := chirp.Default500k9
	s := For(p)
	bits := make([]byte, 48)
	for i := range bits {
		bits[i] = byte(i % 2)
	}
	out := make([]complex128, s.FrameSamples(8+len(bits), 0.37)+64)
	var tmpl []complex128
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tmpl = s.FrameMixedAccumulate(out, 17, tmpl, 42, 6, 2, bits, 0.37, 0.0003, complex(1.4, -0.3))
	}
}
