package dsp

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestIsPow2(t *testing.T) {
	for _, tc := range []struct {
		n    int
		want bool
	}{{1, true}, {2, true}, {1024, true}, {0, false}, {-4, false}, {3, false}, {12, false}} {
		if got := IsPow2(tc.n); got != tc.want {
			t.Errorf("IsPow2(%d) = %v", tc.n, got)
		}
	}
}

func TestNextPow2(t *testing.T) {
	for _, tc := range []struct{ n, want int }{{1, 1}, {2, 2}, {3, 4}, {5, 8}, {1000, 1024}} {
		if got := NextPow2(tc.n); got != tc.want {
			t.Errorf("NextPow2(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestFFTImpulse(t *testing.T) {
	// FFT of a delta is flat.
	x := make([]complex128, 64)
	x[0] = 1
	y := FFT(x)
	for i, v := range y {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// FFT of e^{2πi·k·n/N} peaks only at bin k.
	n, k := 128, 17
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*float64(k*i)/float64(n)))
	}
	y := FFT(x)
	for i, v := range y {
		mag := cmplx.Abs(v)
		if i == k && math.Abs(mag-float64(n)) > 1e-9 {
			t.Fatalf("peak bin %d magnitude %v, want %d", i, mag, n)
		}
		if i != k && mag > 1e-8 {
			t.Fatalf("leakage at bin %d: %v", i, mag)
		}
	}
}

func TestFFTInverseRoundTrip(t *testing.T) {
	rng := NewRand(1)
	for _, n := range []int{2, 16, 256, 2048} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = rng.ComplexNormal(1)
		}
		y := IFFT(FFT(x))
		for i := range x {
			if cmplx.Abs(y[i]-x[i]) > 1e-9 {
				t.Fatalf("n=%d sample %d: %v != %v", n, i, y[i], x[i])
			}
		}
	}
}

func TestFFTParseval(t *testing.T) {
	// Energy conservation: sum|x|^2 = sum|X|^2 / N.
	rng := NewRand(2)
	x := make([]complex128, 512)
	for i := range x {
		x[i] = rng.ComplexNormal(1)
	}
	tx := SignalEnergy(x)
	fx := SignalEnergy(FFT(x)) / float64(len(x))
	if math.Abs(tx-fx)/tx > 1e-10 {
		t.Fatalf("Parseval violated: %v vs %v", tx, fx)
	}
}

func TestFFTLinearityQuick(t *testing.T) {
	rng := NewRand(3)
	f := func(scale1, scale2 float64) bool {
		// Bound scales: quick generates values up to ±MaxFloat64.
		scale1 = math.Mod(scale1, 100)
		scale2 = math.Mod(scale2, 100)
		if math.IsNaN(scale1) || math.IsNaN(scale2) {
			return true
		}
		n := 64
		a := make([]complex128, n)
		b := make([]complex128, n)
		sum := make([]complex128, n)
		for i := range a {
			a[i] = rng.ComplexNormal(1)
			b[i] = rng.ComplexNormal(1)
			sum[i] = complex(scale1, 0)*a[i] + complex(scale2, 0)*b[i]
		}
		fa, fb, fs := FFT(a), FFT(b), FFT(sum)
		for i := range fs {
			want := complex(scale1, 0)*fa[i] + complex(scale2, 0)*fb[i]
			if cmplx.Abs(fs[i]-want) > 1e-6*(1+cmplx.Abs(want)) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20, Values: nil}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFFTPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-power-of-two")
		}
	}()
	NewFFT(100)
}

func TestZeroPad(t *testing.T) {
	x := []complex128{1, 2, 3}
	y := ZeroPad(x, 8)
	if len(y) != 8 || y[0] != 1 || y[2] != 3 || y[3] != 0 || y[7] != 0 {
		t.Fatalf("ZeroPad = %v", y)
	}
}

func TestFractionalDelayTonePhase(t *testing.T) {
	// A delayed pure tone acquires phase -2πf·d; check mid-signal
	// samples (edges carry interpolation transients).
	n, k := 256, 10
	tone := make([]complex128, n)
	for i := range tone {
		tone[i] = cmplx.Exp(complex(0, 2*math.Pi*float64(k*i)/float64(n)))
	}
	d := 0.5
	del := FractionalDelay(tone, d)
	// The padded FFT length is 512; frequency of the tone is k/n in
	// cycles/sample regardless.
	wantPhase := -2 * math.Pi * float64(k) / float64(n) * d
	got := cmplx.Phase(del[128] / tone[128])
	if math.Abs(got-wantPhase) > 0.05 {
		t.Fatalf("phase %v, want %v", got, wantPhase)
	}
}

func TestFractionalDelayZero(t *testing.T) {
	x := []complex128{1, 2i, -3}
	y := FractionalDelay(x, 0)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("zero delay modified signal")
		}
	}
}

func TestDBConversions(t *testing.T) {
	if got := DB(100); math.Abs(got-20) > 1e-12 {
		t.Errorf("DB(100) = %v", got)
	}
	if got := FromDB(30); math.Abs(got-1000) > 1e-9 {
		t.Errorf("FromDB(30) = %v", got)
	}
	if got := AmpDB(10); math.Abs(got-20) > 1e-12 {
		t.Errorf("AmpDB(10) = %v", got)
	}
	f := func(db float64) bool {
		db = math.Mod(db, 100)
		return math.Abs(DB(FromDB(db))-db) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSinc(t *testing.T) {
	if Sinc(0) != 1 {
		t.Error("Sinc(0) != 1")
	}
	for k := 1; k < 5; k++ {
		if math.Abs(Sinc(float64(k))) > 1e-12 {
			t.Errorf("Sinc(%d) = %v, want 0", k, Sinc(float64(k)))
		}
	}
}

func TestDirichletSideLobes(t *testing.T) {
	// The paper's side-lobe figures: first lobe ~-13.3 dB, third
	// ~-20.8 dB (Fig. 8 annotations).
	first := 20 * math.Log10(DirichletMag(1.5, 512))
	if math.Abs(first-(-13.5)) > 0.5 {
		t.Errorf("first side lobe %v dB, want ~-13.5", first)
	}
	third := 20 * math.Log10(DirichletMag(3.5, 512))
	if math.Abs(third-(-20.8)) > 0.5 {
		t.Errorf("third side lobe %v dB, want ~-20.8", third)
	}
}

func TestWrapIndexAndCircularDistance(t *testing.T) {
	if WrapIndex(-1, 8) != 7 || WrapIndex(9, 8) != 1 || WrapIndex(8, 8) != 0 {
		t.Fatal("WrapIndex broken")
	}
	if CircularDistance(0, 7, 8) != 1 {
		t.Fatal("CircularDistance(0,7,8) != 1")
	}
	if CircularDistance(2, 6, 8) != 4 {
		t.Fatal("CircularDistance(2,6,8) != 4")
	}
	f := func(a, b int, n uint8) bool {
		m := int(n%200) + 2
		d := CircularDistance(a, b, m)
		return d >= 0 && d <= m/2 && d == CircularDistance(b, a, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWrapFrac(t *testing.T) {
	if got := WrapFrac(300, 512); got != 300-512 {
		t.Errorf("WrapFrac(300,512) = %v", got)
	}
	if got := WrapFrac(-300, 512); got != 212 {
		t.Errorf("WrapFrac(-300,512) = %v", got)
	}
	if got := WrapFrac(100, 512); got != 100 {
		t.Errorf("WrapFrac(100,512) = %v", got)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if got := c.At(2.5); got != 0.5 {
		t.Errorf("At(2.5) = %v", got)
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v", got)
	}
	if got := c.At(4); got != 1 {
		t.Errorf("At(4) = %v", got)
	}
	if got := c.Complementary(2.5); got != 0.5 {
		t.Errorf("Complementary = %v", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v", got)
	}
	if got := c.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) = %v", got)
	}
}

func TestStats(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v", got)
	}
	min, max := MinMax(xs)
	if min != 2 || max != 9 {
		t.Errorf("MinMax = %v,%v", min, max)
	}
}

func TestRandDistributions(t *testing.T) {
	rng := NewRand(4)
	n := 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := rng.Normal(3, 2)
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Errorf("Normal mean = %v", mean)
	}
	if math.Abs(variance-4) > 0.1 {
		t.Errorf("Normal variance = %v", variance)
	}

	var pwr float64
	for i := 0; i < n; i++ {
		v := rng.ComplexNormal(2.5)
		pwr += real(v)*real(v) + imag(v)*imag(v)
	}
	if got := pwr / float64(n); math.Abs(got-2.5) > 0.05 {
		t.Errorf("ComplexNormal power = %v, want 2.5", got)
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestTruncNormalBounds(t *testing.T) {
	rng := NewRand(5)
	for i := 0; i < 10000; i++ {
		v := rng.TruncNormal(0, 10, -3, 3)
		if v < -3 || v > 3 {
			t.Fatalf("TruncNormal out of bounds: %v", v)
		}
	}
}

func TestPeakSearch(t *testing.T) {
	power := []float64{1, 5, 2, 8, 3, 1, 9, 2}
	idx, val := ArgmaxFloat(power)
	if idx != 6 || val != 9 {
		t.Fatalf("ArgmaxFloat = %d,%v", idx, val)
	}
	idx, val = MaxInWindow(power, 3, 1)
	if idx != 3 || val != 8 {
		t.Fatalf("MaxInWindow = %d,%v", idx, val)
	}
	// Circular window.
	idx, _ = MaxInWindow(power, 0, 2)
	if idx != 6 {
		t.Fatalf("circular MaxInWindow = %d, want 6", idx)
	}
	peaks := FindPeaksAbove(power, 4)
	if len(peaks) != 3 {
		t.Fatalf("peaks = %v", peaks)
	}
}

func TestQuadraticInterpolate(t *testing.T) {
	// Symmetric neighborhood -> no offset; tilted -> offset toward the
	// larger side.
	if got := QuadraticInterpolate([]float64{2, 10, 2}, 1); got != 0 {
		t.Errorf("symmetric offset = %v", got)
	}
	if got := QuadraticInterpolate([]float64{2, 10, 5}, 1); got <= 0 {
		t.Errorf("offset should lean right, got %v", got)
	}
}

func TestWelchPSDTone(t *testing.T) {
	n := 4096
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*0.25*float64(i)))
	}
	psd := WelchPSD(x, 256)
	idx, _ := ArgmaxFloat(psd)
	if idx != 64 { // 0.25 cycles/sample -> bin 64 of 256
		t.Fatalf("tone peak at bin %d, want 64", idx)
	}
}

func TestFFTShiftAndFreqAxis(t *testing.T) {
	spec := []float64{0, 1, 2, 3}
	sh := FFTShift(spec)
	want := []float64{2, 3, 0, 1}
	for i := range want {
		if sh[i] != want[i] {
			t.Fatalf("FFTShift = %v", sh)
		}
	}
	axis := FreqAxis(4, 8)
	if axis[0] != -4 || axis[2] != 0 {
		t.Fatalf("FreqAxis = %v", axis)
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 1, 5)
	if len(xs) != 5 || xs[0] != 0 || xs[4] != 1 || xs[2] != 0.5 {
		t.Fatalf("Linspace = %v", xs)
	}
}

func TestHannWindow(t *testing.T) {
	w := HannWindow(65)
	if math.Abs(w[0]) > 1e-12 || math.Abs(w[64]) > 1e-12 {
		t.Fatal("Hann endpoints not ~0")
	}
	if math.Abs(w[32]-1) > 1e-12 {
		t.Fatal("Hann center not 1")
	}
}
