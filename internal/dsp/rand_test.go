package dsp

import (
	"math"
	"testing"
)

// TestBytesFillBytesEquivalence pins the documented contract: Bytes(n)
// and FillBytes over a fresh n-slice consume the generator identically
// and produce the same bytes, for lengths on both sides of the 8-byte
// refill chunk.
func TestBytesFillBytesEquivalence(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 16, 37, 256} {
		a := NewRand(21)
		b := NewRand(21)
		got := a.Bytes(n)
		want := make([]byte, n)
		b.FillBytes(want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: Bytes[%d] = %#x, FillBytes = %#x", n, i, got[i], want[i])
			}
		}
		// Both generators must end in the same state.
		if a.Uint64() != b.Uint64() {
			t.Fatalf("n=%d: Bytes and FillBytes consumed different draw counts", n)
		}
	}
}

// TestFillBytesDrawEconomy checks the refill really spends one Uint64
// per eight bytes: a 64-byte fill advances the generator exactly eight
// draws.
func TestFillBytesDrawEconomy(t *testing.T) {
	a := NewRand(5)
	b := NewRand(5)
	a.FillBytes(make([]byte, 64))
	for i := 0; i < 8; i++ {
		b.Uint64()
	}
	if a.Uint64() != b.Uint64() {
		t.Fatal("FillBytes(64 bytes) did not consume exactly 8 Uint64 draws")
	}
}

func TestFillBytesUniform(t *testing.T) {
	rng := NewRand(6)
	const n = 256000
	buf := make([]byte, n)
	rng.FillBytes(buf)
	var counts [256]int
	for _, v := range buf {
		counts[v]++
	}
	// χ² against uniform: 255 dof, 0.999 quantile ≈ 330.5.
	expected := float64(n) / 256
	sum := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		sum += d * d / expected
	}
	if sum > 330.5 {
		t.Fatalf("byte χ² = %v, want < 330.5", sum)
	}
}

func TestBitsBalancedAndBinary(t *testing.T) {
	rng := NewRand(7)
	const n = 100000
	bits := rng.Bits(n)
	ones := 0
	for _, b := range bits {
		if b != 0 && b != 1 {
			t.Fatalf("non-binary bit %d", b)
		}
		ones += int(b)
	}
	if frac := float64(ones) / n; math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("ones fraction %v", frac)
	}
}

// TestTruncNormalMildFastPath pins the mild-truncation contract: with
// bounds holding most of the mass the draw lands inside on the first
// try essentially always (no clamp artifacts), and the truncated sample
// keeps the parent's center.
func TestTruncNormalMildFastPath(t *testing.T) {
	rng := NewRand(8)
	const n = 50000
	sum := 0.0
	atBounds := 0
	for i := 0; i < n; i++ {
		v := rng.TruncNormal(1, 0.5, -0.5, 2.5) // ±3σ: ~99.7% mass
		if v < -0.5 || v > 2.5 {
			t.Fatalf("draw %v outside bounds", v)
		}
		if v == -0.5 || v == 2.5 {
			atBounds++ // a clamp would sit exactly on a bound
		}
		sum += v
	}
	if atBounds > 0 {
		t.Fatalf("%d draws clamped to a bound under mild truncation", atBounds)
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("truncated mean %v, want ~1", mean)
	}
}

// TestTruncNormalExtremeClamps documents the fallback: truncation so
// extreme that 1000 rejections fire returns the clamped mean — a
// deterministic in-range value, not a hang.
func TestTruncNormalExtremeClamps(t *testing.T) {
	rng := NewRand(9)
	v := rng.TruncNormal(0, 1e-12, 5, 6) // mass at the bounds ≈ 0
	if v != 5 {
		t.Fatalf("extreme truncation returned %v, want clamp to 5", v)
	}
}

func TestTruncNormalPanicsOnDegenerateBounds(t *testing.T) {
	rng := NewRand(10)
	for _, bounds := range [][2]float64{{1, -1}, {math.NaN(), 1}, {0, math.NaN()}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for bounds [%v, %v]", bounds[0], bounds[1])
				}
			}()
			rng.TruncNormal(0, 1, bounds[0], bounds[1])
		}()
	}
}
