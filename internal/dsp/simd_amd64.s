//go:build amd64

#include "textflag.h"

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func addIntoAVX2(dst, src []complex128)
//
// dst[i] += src[i]. Lanes are independent doubles; VADDPD performs the
// same IEEE addition the scalar body does, so results are bit-identical.
TEXT ·addIntoAVX2(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ dst_len+8(FP), DX
	MOVQ DX, CX
	SHRQ $1, CX        // pairs of complex128 = 32-byte chunks
	JZ   tail

loop:
	VMOVUPD (DI), Y0
	VMOVUPD (SI), Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD Y0, (DI)
	ADDQ    $32, DI
	ADDQ    $32, SI
	DECQ    CX
	JNZ     loop

tail:
	ANDQ $1, DX
	JZ   done
	VMOVUPD (DI), X0
	VMOVUPD (SI), X1
	VADDPD  X1, X0, X0
	VMOVUPD X0, (DI)

done:
	VZEROUPPER
	RET

// func addF64AVX2(dst, src []float64)
//
// dst[i] += src[i] over independent double lanes, four per 32-byte
// chunk with a scalar-double tail for the up-to-three leftovers.
// VADDPD/VADDSD perform the same IEEE addition the scalar body does,
// so results are bit-identical.
TEXT ·addF64AVX2(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ dst_len+8(FP), DX
	MOVQ DX, CX
	SHRQ $2, CX        // quads of float64 = 32-byte chunks
	JZ   tail

loop:
	VMOVUPD (DI), Y0
	VMOVUPD (SI), Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD Y0, (DI)
	ADDQ    $32, DI
	ADDQ    $32, SI
	DECQ    CX
	JNZ     loop

tail:
	ANDQ $3, DX
	JZ   done

tailloop:
	VMOVSD (DI), X0
	VMOVSD (SI), X1
	VADDSD X1, X0, X0
	VMOVSD X0, (DI)
	ADDQ   $8, DI
	ADDQ   $8, SI
	DECQ   DX
	JNZ    tailloop

done:
	VZEROUPPER
	RET

// func axpyIntoAVX2(dst, src []complex128, c complex128)
//
// dst[i] += src[i]·c with the product fused exactly as the scalar
// body: prod = swap(src)·ci (one VMULPD), then VFMADDSUB231PD computes
// src·cr − prod on real lanes and src·cr + prod on imaginary lanes in
// one fused instruction — tr = FMA(sr, cr, −si·ci), ti = FMA(si, cr,
// sr·ci) — and the accumulate stays a separate VADDPD, matching the
// scalar `dst[i] += complex(tr, ti)`. The main loop is unrolled to two
// independent 32-byte chunks with offset addressing, cutting the loop
// bookkeeping roughly in half on this store-throughput-bound kernel.
// Requires FMA3 (dispatched on simdFMA).
TEXT ·axpyIntoAVX2(SB), NOSPLIT, $0-64
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ dst_len+8(FP), DX
	VBROADCASTSD c_real+48(FP), Y2 // [cr cr cr cr]
	VBROADCASTSD c_imag+56(FP), Y3 // [ci ci ci ci]
	XORQ AX, AX
	MOVQ DX, CX
	SHRQ $2, CX // 64-byte chunks of four complex
	JZ   rest

loop:
	VMOVUPD        (SI)(AX*1), Y0     // [sr0 si0 sr1 si1]
	VPERMILPD      $0x5, Y0, Y1       // [si0 sr0 si1 sr1]
	VMULPD         Y3, Y1, Y1         // [si·ci, sr·ci, …]
	VFMADDSUB231PD Y2, Y0, Y1         // [sr·cr−si·ci, si·cr+sr·ci, …]
	VMOVUPD        (DI)(AX*1), Y4
	VADDPD         Y4, Y1, Y1
	VMOVUPD        Y1, (DI)(AX*1)
	VMOVUPD        32(SI)(AX*1), Y5
	VPERMILPD      $0x5, Y5, Y6
	VMULPD         Y3, Y6, Y6
	VFMADDSUB231PD Y2, Y5, Y6
	VMOVUPD        32(DI)(AX*1), Y7
	VADDPD         Y7, Y6, Y6
	VMOVUPD        Y6, 32(DI)(AX*1)
	ADDQ           $64, AX
	DECQ           CX
	JNZ            loop

rest:
	ADDQ  AX, DI
	ADDQ  AX, SI
	TESTQ $2, DX
	JZ    tail
	VMOVUPD        (SI), Y0
	VPERMILPD      $0x5, Y0, Y1
	VMULPD         Y3, Y1, Y1
	VFMADDSUB231PD Y2, Y0, Y1
	VMOVUPD        (DI), Y4
	VADDPD         Y4, Y1, Y1
	VMOVUPD        Y1, (DI)
	ADDQ           $32, DI
	ADDQ           $32, SI

tail:
	ANDQ $1, DX
	JZ   done
	VMOVUPD        (SI), X0
	VPERMILPD      $0x1, X0, X1
	VMULPD         X3, X1, X1
	VFMADDSUB231PD X2, X0, X1
	VMOVUPD        (DI), X4
	VADDPD         X4, X1, X1
	VMOVUPD        X1, (DI)

done:
	VZEROUPPER
	RET

// func scaleIntoAVX2(dst, src []complex128, c complex128)
//
// dst[i] = src[i]·c with exactly axpyIntoAVX2's fused product
// expansion, minus the accumulate: the stored value is the (tr, ti)
// AxpyInto would add. Requires FMA3.
TEXT ·scaleIntoAVX2(SB), NOSPLIT, $0-64
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ dst_len+8(FP), DX
	VBROADCASTSD c_real+48(FP), Y2 // [cr cr cr cr]
	VBROADCASTSD c_imag+56(FP), Y3 // [ci ci ci ci]
	MOVQ DX, CX
	SHRQ $1, CX
	JZ   tail

loop:
	VMOVUPD        (SI), Y0     // [sr0 si0 sr1 si1]
	VPERMILPD      $0x5, Y0, Y1 // [si0 sr0 si1 sr1]
	VMULPD         Y3, Y1, Y1   // [si·ci, sr·ci, …]
	VFMADDSUB231PD Y2, Y0, Y1   // [sr·cr−si·ci, si·cr+sr·ci, …]
	VMOVUPD        Y1, (DI)
	ADDQ           $32, DI
	ADDQ           $32, SI
	DECQ           CX
	JNZ            loop

tail:
	ANDQ $1, DX
	JZ   done
	VMOVUPD        (SI), X0
	VPERMILPD      $0x1, X0, X1
	VMULPD         X3, X1, X1
	VFMADDSUB231PD X2, X0, X1
	VMOVUPD        X1, (DI)

done:
	VZEROUPPER
	RET

// func stageAVX2(are, aim, bre, bim, twr, twi []float64)
//
// One radix-2 butterfly stage over planar halves a and b:
//
//	t  = w·b   (complex, expanded as in stageSpan)
//	b' = a − t
//	a' = a + t
//
// len(twr) elements, caller guarantees a multiple of 4. Each j is an
// independent lane running the scalar expressions verbatim.
TEXT ·stageAVX2(SB), NOSPLIT, $0-144
	MOVQ are_base+0(FP), R8
	MOVQ aim_base+24(FP), R9
	MOVQ bre_base+48(FP), R10
	MOVQ bim_base+72(FP), R11
	MOVQ twr_base+96(FP), R12
	MOVQ twi_base+120(FP), R13
	MOVQ twr_len+104(FP), CX
	XORQ AX, AX

loop:
	VMOVUPD (R12)(AX*8), Y0 // wr
	VMOVUPD (R13)(AX*8), Y1 // wi
	VMOVUPD (R10)(AX*8), Y2 // xr
	VMOVUPD (R11)(AX*8), Y3 // xi
	VMULPD  Y2, Y0, Y4      // wr·xr
	VMULPD  Y3, Y1, Y5      // wi·xi
	VSUBPD  Y5, Y4, Y4      // tr = wr·xr − wi·xi
	VMULPD  Y3, Y0, Y5      // wr·xi
	VMULPD  Y2, Y1, Y6      // wi·xr
	VADDPD  Y6, Y5, Y5      // ti = wr·xi + wi·xr
	VMOVUPD (R8)(AX*8), Y2  // ur
	VMOVUPD (R9)(AX*8), Y3  // ui
	VSUBPD  Y4, Y2, Y6      // ur − tr
	VMOVUPD Y6, (R10)(AX*8)
	VSUBPD  Y5, Y3, Y6      // ui − ti
	VMOVUPD Y6, (R11)(AX*8)
	VADDPD  Y4, Y2, Y6      // ur + tr
	VMOVUPD Y6, (R8)(AX*8)
	VADDPD  Y5, Y3, Y6      // ui + ti
	VMOVUPD Y6, (R9)(AX*8)
	ADDQ    $4, AX
	CMPQ    AX, CX
	JL      loop

	VZEROUPPER
	RET

// func stagePairAVX2(re, im []float64, start, h int, w1r, w1i, w2r, w2i []float64)
//
// One fused group of BatchPlan.stagePairSpan: the four planar quarters
// a/b/c/d of length h at re[start:], im[start:] flow through their two
// size-s butterflies (twiddles w1) and two size-2s butterflies
// (twiddles w2[:h] and w2[h:2h]) with intermediates in registers.
// Caller guarantees h a multiple of 4. Every butterfly computes the
// scalar stagePairSpan expressions lane for lane.
// Register budget: the fourteen array pointers (four planar quarters
// per plane plus six twiddle pointers) take every general-purpose
// register except BP/SP, so the loop advances the pointers in place and
// keeps its end sentinel (w1r + 8h) in the local stack slot.
TEXT ·stagePairAVX2(SB), NOSPLIT, $8-160
	MOVQ re_base+0(FP), R8   // a_re
	MOVQ im_base+24(FP), R12 // a_im
	MOVQ start+48(FP), AX
	LEAQ (R8)(AX*8), R8
	LEAQ (R12)(AX*8), R12
	MOVQ h+56(FP), AX
	LEAQ (R8)(AX*8), R9   // b_re
	LEAQ (R9)(AX*8), R10  // c_re
	LEAQ (R10)(AX*8), R11 // d_re
	LEAQ (R12)(AX*8), R13 // b_im
	LEAQ (R13)(AX*8), R14 // c_im
	LEAQ (R14)(AX*8), R15 // d_im
	MOVQ w1r_base+64(FP), BX
	MOVQ w1i_base+88(FP), CX
	MOVQ w2r_base+112(FP), DX
	MOVQ w2i_base+136(FP), SI
	LEAQ (DX)(AX*8), DI // w2b real = w2r[h:]
	LEAQ (BX)(AX*8), AX
	MOVQ AX, 0(SP)      // end sentinel: w1r + 8h
	MOVQ h+56(FP), AX
	LEAQ (SI)(AX*8), AX // w2b imag = w2i[h:]

loop:
	VMOVUPD (BX), Y0  // wr
	VMOVUPD (CX), Y1  // wi
	VMOVUPD (R9), Y2  // xr = b_re
	VMOVUPD (R13), Y3 // xi = b_im
	VMULPD  Y2, Y0, Y4
	VMULPD  Y3, Y1, Y5
	VSUBPD  Y5, Y4, Y4 // t1r
	VMULPD  Y3, Y0, Y5
	VMULPD  Y2, Y1, Y6
	VADDPD  Y6, Y5, Y5 // t1i
	VMOVUPD (R8), Y2   // ur = a_re
	VMOVUPD (R12), Y3  // ui = a_im
	VSUBPD  Y4, Y2, Y6 // b1r = ur − t1r
	VSUBPD  Y5, Y3, Y7 // b1i
	VADDPD  Y4, Y2, Y8 // a1r
	VADDPD  Y5, Y3, Y9 // a1i

	VMOVUPD (R11), Y2     // yr = d_re
	VMOVUPD (R15), Y3     // yi = d_im
	VMULPD  Y2, Y0, Y4
	VMULPD  Y3, Y1, Y10
	VSUBPD  Y10, Y4, Y4   // t2r
	VMULPD  Y3, Y0, Y10
	VMULPD  Y2, Y1, Y11
	VADDPD  Y11, Y10, Y10 // t2i
	VMOVUPD (R10), Y2     // vr = c_re
	VMOVUPD (R14), Y3     // vi = c_im
	VSUBPD  Y4, Y2, Y11   // d1r = vr − t2r
	VSUBPD  Y10, Y3, Y12  // d1i
	VADDPD  Y4, Y2, Y13   // c1r
	VADDPD  Y10, Y3, Y14  // c1i

	VMOVUPD (DX), Y0   // pr = w2a real
	VMOVUPD (SI), Y1   // pi
	VMULPD  Y13, Y0, Y2
	VMULPD  Y14, Y1, Y3
	VSUBPD  Y3, Y2, Y2 // t3r = pr·c1r − pi·c1i
	VMULPD  Y14, Y0, Y3
	VMULPD  Y13, Y1, Y4
	VADDPD  Y4, Y3, Y3 // t3i = pr·c1i + pi·c1r
	VSUBPD  Y2, Y8, Y4 // c' = a1r − t3r
	VMOVUPD Y4, (R10)
	VSUBPD  Y3, Y9, Y4
	VMOVUPD Y4, (R14)
	VADDPD  Y2, Y8, Y4 // a' = a1r + t3r
	VMOVUPD Y4, (R8)
	VADDPD  Y3, Y9, Y4
	VMOVUPD Y4, (R12)

	VMOVUPD (DI), Y0   // qr = w2b real
	VMOVUPD (AX), Y1   // qi = w2b imag
	VMULPD  Y11, Y0, Y2
	VMULPD  Y12, Y1, Y3
	VSUBPD  Y3, Y2, Y2 // t4r
	VMULPD  Y12, Y0, Y3
	VMULPD  Y11, Y1, Y4
	VADDPD  Y4, Y3, Y3 // t4i
	VSUBPD  Y2, Y6, Y4 // d' = b1r − t4r
	VMOVUPD Y4, (R11)
	VSUBPD  Y3, Y7, Y4
	VMOVUPD Y4, (R15)
	VADDPD  Y2, Y6, Y4 // b' = b1r + t4r
	VMOVUPD Y4, (R9)
	VADDPD  Y3, Y7, Y4
	VMOVUPD Y4, (R13)

	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	ADDQ $32, R12
	ADDQ $32, R13
	ADDQ $32, R14
	ADDQ $32, R15
	ADDQ $32, BX
	ADDQ $32, CX
	ADDQ $32, DX
	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, AX
	CMPQ BX, 0(SP)
	JB   loop

	VZEROUPPER
	RET

// func synthChains8AVX2(dst []complex128, st *[32]float64, dLr, dLi, mag float64, steps int)
//
// Eight interleaved phase-recurrence chains in planar registers:
// Y0/Y1 = zr, Y2/Y3 = zi, Y4/Y5 = dr, Y6/Y7 = di (chains 0-3 / 4-7).
// Per step each chain emits complex(zr·mag, zi·mag) and advances
//
//	z = z·d:  zr' = FMA(zr, dr, −zi·di), zi' = FMA(zr, di, zi·dr)
//	d = d·dL: dr' = FMA(dr, dLr, −di·dLi), di' = FMA(dr, dLi, di·dLr)
//
// — exactly the math.FMA expressions of the scalar body, one rounding
// per VFMSUB231PD/VFMADD231PD, so both paths are bit-identical. The
// planar layout needs zero shuffles in the arithmetic; only the store
// interleaves (unpack + 128-bit permute) the planar lanes into
// complex128 pairs. No renormalization here — the driver renormalizes
// the state between bounded-step calls.
TEXT ·synthChains8AVX2(SB), NOSPLIT, $0-64
	MOVQ dst_base+0(FP), DI
	MOVQ st+24(FP), SI
	VBROADCASTSD dLr+32(FP), Y8
	VBROADCASTSD dLi+40(FP), Y9
	VBROADCASTSD mag+48(FP), Y10
	MOVQ steps+56(FP), CX
	VMOVUPD 0(SI), Y0    // zr 0-3
	VMOVUPD 32(SI), Y1   // zr 4-7
	VMOVUPD 64(SI), Y2   // zi 0-3
	VMOVUPD 96(SI), Y3   // zi 4-7
	VMOVUPD 128(SI), Y4  // dr 0-3
	VMOVUPD 160(SI), Y5  // dr 4-7
	VMOVUPD 192(SI), Y6  // di 0-3
	VMOVUPD 224(SI), Y7  // di 4-7

loop:
	// Emit chains 0-3: interleave (zr·mag, zi·mag) into dst[0:2].
	VMULPD     Y10, Y0, Y11
	VMULPD     Y10, Y2, Y12
	VUNPCKLPD  Y12, Y11, Y13     // [r0 i0 r2 i2]
	VUNPCKHPD  Y12, Y11, Y14     // [r1 i1 r3 i3]
	VPERM2F128 $0x20, Y14, Y13, Y15
	VMOVUPD    Y15, 0(DI)        // [r0 i0 r1 i1]
	VPERM2F128 $0x31, Y14, Y13, Y15
	VMOVUPD    Y15, 32(DI)       // [r2 i2 r3 i3]

	// Emit chains 4-7 into dst[2:4].
	VMULPD     Y10, Y1, Y11
	VMULPD     Y10, Y3, Y12
	VUNPCKLPD  Y12, Y11, Y13
	VUNPCKHPD  Y12, Y11, Y14
	VPERM2F128 $0x20, Y14, Y13, Y15
	VMOVUPD    Y15, 64(DI)
	VPERM2F128 $0x31, Y14, Y13, Y15
	VMOVUPD    Y15, 96(DI)

	// z ← z·d, chains 0-3.
	VMULPD      Y6, Y2, Y11 // zi·di
	VMULPD      Y4, Y2, Y12 // zi·dr
	VFMSUB231PD Y4, Y0, Y11 // zr·dr − zi·di
	VFMADD231PD Y6, Y0, Y12 // zr·di + zi·dr
	VMOVAPD     Y11, Y0
	VMOVAPD     Y12, Y2

	// z ← z·d, chains 4-7.
	VMULPD      Y7, Y3, Y11
	VMULPD      Y5, Y3, Y12
	VFMSUB231PD Y5, Y1, Y11
	VFMADD231PD Y7, Y1, Y12
	VMOVAPD     Y11, Y1
	VMOVAPD     Y12, Y3

	// d ← d·dL, chains 0-3.
	VMULPD      Y9, Y6, Y11 // di·dLi
	VMULPD      Y8, Y6, Y12 // di·dLr
	VFMSUB231PD Y8, Y4, Y11 // dr·dLr − di·dLi
	VFMADD231PD Y9, Y4, Y12 // dr·dLi + di·dLr
	VMOVAPD     Y11, Y4
	VMOVAPD     Y12, Y6

	// d ← d·dL, chains 4-7.
	VMULPD      Y9, Y7, Y11
	VMULPD      Y8, Y7, Y12
	VFMSUB231PD Y8, Y5, Y11
	VFMADD231PD Y9, Y5, Y12
	VMOVAPD     Y11, Y5
	VMOVAPD     Y12, Y7

	ADDQ $128, DI
	DECQ CX
	JNZ  loop

	VMOVUPD Y0, 0(SI)
	VMOVUPD Y1, 32(SI)
	VMOVUPD Y2, 64(SI)
	VMOVUPD Y3, 96(SI)
	VMOVUPD Y4, 128(SI)
	VMOVUPD Y5, 160(SI)
	VMOVUPD Y6, 192(SI)
	VMOVUPD Y7, 224(SI)
	VZEROUPPER
	RET

// func maxPowerAVX2(re, im []float64) float64
//
// max(re[i]² + im[i]²) over the slices. Per-lane powers use the exact
// scalar expression (two multiplies, one add, same order); VMAXPD of
// non-negative, NaN-free values returns the same maximum value as the
// scalar strictly-greater walk regardless of evaluation order, so the
// result is bit-identical. Caller guarantees len >= 4 — one seed quad,
// any further full quads, then a scalar tail — so the short ±2-bin
// payload windows (5 elements) vectorize too.
TEXT ·maxPowerAVX2(SB), NOSPLIT, $0-56
	MOVQ re_base+0(FP), DI
	MOVQ im_base+24(FP), SI
	MOVQ re_len+8(FP), DX
	VMOVUPD (DI), Y1
	VMOVUPD (SI), Y2
	VMULPD  Y1, Y1, Y1
	VMULPD  Y2, Y2, Y2
	VADDPD  Y2, Y1, Y0 // running 4-lane max
	MOVQ    DX, CX
	SHRQ    $2, CX     // total quads (>= 1)
	MOVQ    $4, AX
	DECQ    CX
	JZ      reduce

loop:
	VMOVUPD (DI)(AX*8), Y1
	VMOVUPD (SI)(AX*8), Y2
	VMULPD  Y1, Y1, Y1
	VMULPD  Y2, Y2, Y2
	VADDPD  Y2, Y1, Y1
	VMAXPD  Y1, Y0, Y0
	ADDQ    $4, AX
	DECQ    CX
	JNZ     loop

reduce:
	// Horizontal reduce the 4 lanes.
	VEXTRACTF128 $1, Y0, X1
	VMAXPD       X1, X0, X0
	VPERMILPD    $1, X0, X1
	VMAXSD       X1, X0, X0

	// Scalar tail: up to 3 leftover elements.
	CMPQ AX, DX
	JGE  done

tail:
	VMOVSD (DI)(AX*8), X1
	VMOVSD (SI)(AX*8), X2
	VMULSD X1, X1, X1
	VMULSD X2, X2, X2
	VADDSD X2, X1, X1
	VMAXSD X1, X0, X0
	INCQ   AX
	CMPQ   AX, DX
	JL     tail

done:
	VMOVSD X0, ret+48(FP)
	VZEROUPPER
	RET

// func zigFillAVX2(dst []float64, wbuf []uint64, st *Stream, kTab *uint64, wTab *float64) int
//
// The fused xoshiro256++ generator and ziggurat fast path: per quad,
// four uniform words are generated serially in integer registers (the
// exact Stream.Uint64 recurrence), stored to wbuf, and pushed through
// the four-lane acceptance test
//
//	i   = u & 127                  (layer index)
//	j   = int64(u) >> 11           (signed 53-bit magnitude)
//	mag = |j|
//	accept iff mag < kTab[i];  value = float64(j) · wTab[i]
//
// The serial integer chain and the SIMD ziggurat work issue on
// different ports, so generation is effectively free next to the
// scalar two-pass fill. All four lane values are computed branchlessly
// (layer and scale via VPGATHERQQ/VGATHERQPD, the int64→float64
// conversion via the 2⁵² mantissa-or trick — exact because accepted
// mags are < 2⁵², and zigK < 2⁵² means mag = 2⁵² always rejects) and
// stored; the return value is the accepted prefix length. On a
// rejection the generator state — already advanced through the full
// quad — is written back, and the driver replays the rejecting word
// and the quad's remaining lookahead words from wbuf in scalar code
// (lanes stored beyond the prefix are overwritten there), keeping the
// word-consumption order identical to sequential NormFloat64 calls.
// Accepted values are one exact conversion and one VMULPD —
// bit-identical to the scalar float64(j)·zigW[i]. Processes
// min(len(dst), len(wbuf))/4 quads; sub-quad tails are the driver's.
TEXT ·zigFillAVX2(SB), NOSPLIT, $0-80
	MOVQ dst_base+0(FP), DI
	MOVQ wbuf_base+24(FP), SI
	MOVQ dst_len+8(FP), DX
	MOVQ wbuf_len+32(FP), CX
	CMPQ CX, DX
	CMOVQLT CX, DX     // DX = min(len(dst), len(wbuf))
	MOVQ kTab+56(FP), R8
	MOVQ wTab+64(FP), R9

	// Generator state in integer registers for the duration.
	MOVQ st+48(FP), BX
	MOVQ 0(BX), R10  // s0
	MOVQ 8(BX), R11  // s1
	MOVQ 16(BX), R12 // s2
	MOVQ 24(BX), R13 // s3

	MOVQ         $127, AX
	VMOVQ        AX, X0
	VPBROADCASTQ X0, Y8            // layer mask
	MOVQ         $0x4330000000000000, AX
	VMOVQ        AX, X0
	VPBROADCASTQ X0, Y9            // 2^52 exponent pattern (int and double)
	MOVQ         $0x8000000000000000, AX
	VMOVQ        AX, X0
	VPBROADCASTQ X0, Y10           // sign bit
	VPXOR        Y11, Y11, Y11     // zero

	XORQ AX, AX        // word/sample cursor
	MOVQ DX, CX
	SHRQ $2, CX        // quads
	JZ   done

loop:
	// Four xoshiro256++ steps (exact Stream.Uint64 recurrence), packed
	// into Y0 low-to-high and mirrored to wbuf for slow-path replay.
	MOVQ    R10, R14
	ADDQ    R13, R14
	ROLQ    $23, R14
	ADDQ    R10, R14    // res = rotl(s0+s3, 23) + s0
	MOVQ    R11, R15
	SHLQ    $17, R15    // t = s1 << 17
	XORQ    R10, R12
	XORQ    R11, R13
	XORQ    R12, R11
	XORQ    R13, R10
	XORQ    R15, R12
	ROLQ    $45, R13
	VMOVQ   R14, X6

	MOVQ    R10, R14
	ADDQ    R13, R14
	ROLQ    $23, R14
	ADDQ    R10, R14
	MOVQ    R11, R15
	SHLQ    $17, R15
	XORQ    R10, R12
	XORQ    R11, R13
	XORQ    R12, R11
	XORQ    R13, R10
	XORQ    R15, R12
	ROLQ    $45, R13
	VPINSRQ $1, R14, X6, X6

	MOVQ    R10, R14
	ADDQ    R13, R14
	ROLQ    $23, R14
	ADDQ    R10, R14
	MOVQ    R11, R15
	SHLQ    $17, R15
	XORQ    R10, R12
	XORQ    R11, R13
	XORQ    R12, R11
	XORQ    R13, R10
	XORQ    R15, R12
	ROLQ    $45, R13
	VMOVQ   R14, X7

	MOVQ    R10, R14
	ADDQ    R13, R14
	ROLQ    $23, R14
	ADDQ    R10, R14
	MOVQ    R11, R15
	SHLQ    $17, R15
	XORQ    R10, R12
	XORQ    R11, R13
	XORQ    R12, R11
	XORQ    R13, R10
	XORQ    R15, R12
	ROLQ    $45, R13
	VPINSRQ $1, R14, X7, X7

	VINSERTI128 $1, X7, Y6, Y0 // u ×4
	VMOVDQU     Y0, (SI)(AX*8)

	// Layer indices and gathered thresholds.
	VPAND      Y8, Y0, Y1          // i = u & 127
	VPCMPEQD   Y13, Y13, Y13       // gather mask: all ones
	VPGATHERQQ Y13, (R8)(Y1*8), Y2 // k = kTab[i]

	// j = int64(u) >> 11 (arithmetic), via logical shift + sign fill.
	VPCMPGTQ Y0, Y11, Y3 // s: all-ones where u < 0
	VPSRLQ   $11, Y0, Y4
	VPSLLQ   $53, Y3, Y5
	VPOR     Y5, Y4, Y4  // j

	// mag = (j ^ s) − s  (branch-free |j|; sign(j) == sign(u)).
	VPXOR  Y3, Y4, Y5
	VPSUBQ Y3, Y5, Y5 // mag

	// Accept mask: mag < k. Both are < 2⁶³, so signed compare is exact.
	VPCMPGTQ  Y5, Y2, Y6 // k > mag
	VMOVMSKPD Y6, BX

	// value = float64(j)·wTab[i]: exact int→double via the 2⁵² trick,
	// sign applied by XOR, then one rounded multiply.
	VPOR       Y9, Y5, Y7          // 2⁵² + mag as double bits
	VSUBPD     Y9, Y7, Y7          // float64(mag)
	VPAND      Y10, Y3, Y12
	VXORPD     Y12, Y7, Y7         // float64(j)
	VPCMPEQD   Y13, Y13, Y13
	VGATHERQPD Y13, (R9)(Y1*8), Y14
	VMULPD     Y14, Y7, Y7
	VMOVUPD    Y7, (DI)(AX*8)

	CMPQ BX, $0xf
	JNE  reject
	ADDQ $4, AX
	DECQ CX
	JNZ  loop
	JMP  done

reject:
	// First rejecting lane: tzcnt of the complement.
	NOTQ BX
	ANDQ $0xf, BX
	BSFQ BX, BX
	ADDQ BX, AX

done:
	MOVQ st+48(FP), BX
	MOVQ R10, 0(BX)
	MOVQ R11, 8(BX)
	MOVQ R12, 16(BX)
	MOVQ R13, 24(BX)
	MOVQ AX, ret+72(FP)
	VZEROUPPER
	RET


// func firstStageBlockAVX2(re, im []float64, base, block int, twr, twi []float64)
//
// The fused zero-pad broadcast stage over one whole cache block: for
// each 2z-chunk of [base, base+block), with the chunk's two prefix
// values (v0, v1) = (x[pv], x[pv+1]) broadcast to all lanes,
//
//	t       = w·v1   (expanded as in fusedFirstStage)
//	o[j]    = v0 + t
//	o[z+j]  = v0 − t
//
// for j in [0, z), z = len(twr), a power of two >= 4 (caller-
// guaranteed; block is a multiple of 2z). Chunks walk backwards
// exactly like the scalar body, and each chunk's prefix values are
// loaded into registers before any of its stores, so the chunk that
// contains its own prefix entries is safe. Hoisting the chunk walk
// into one call removes the per-chunk call overhead that dominated at
// small z.
TEXT ·firstStageBlockAVX2(SB), NOSPLIT, $0-112
	MOVQ re_base+0(FP), DI
	MOVQ im_base+24(FP), SI
	MOVQ base+48(FP), R8
	MOVQ block+56(FP), R9
	MOVQ twr_base+64(FP), R10
	MOVQ twi_base+88(FP), R11
	MOVQ twr_len+72(FP), R12 // z

	// Prefix pointers: pv of the last chunk is (base+block)/z − 2.
	MOVQ R8, AX
	ADDQ R9, AX
	BSFQ R12, CX
	SHRQ CX, AX          // (base+block)/z
	SUBQ $2, AX
	LEAQ (DI)(AX*8), R13 // &re[pv]
	LEAQ (SI)(AX*8), R14 // &im[pv]

	// Chunk countdown: block/(2z) chunks.
	SHRQ CX, R9
	SHRQ $1, R9

	// Last chunk's planar pointers: lo at base+block−2z, hi = lo + z.
	MOVQ R8, AX
	ADDQ block+56(FP), AX
	SUBQ R12, AX
	SUBQ R12, AX
	LEAQ (DI)(AX*8), DI   // re lo
	LEAQ (SI)(AX*8), SI   // im lo
	LEAQ (DI)(R12*8), BX  // re hi
	LEAQ (SI)(R12*8), R15 // im hi
	MOVQ R12, R8
	SHLQ $4, R8           // chunk stride: 2z elements = 16z bytes

chunk:
	VBROADCASTSD (R13), Y8   // v0r
	VBROADCASTSD 8(R13), Y10 // v1r
	VBROADCASTSD (R14), Y9   // v0i
	VBROADCASTSD 8(R14), Y11 // v1i
	MOVQ         R12, CX
	SHRQ         $2, CX      // z/4 quads
	XORQ         AX, AX

inner:
	VMOVUPD     (R10)(AX*8), Y0 // wr
	VMOVUPD     (R11)(AX*8), Y1 // wi
	VMULPD      Y10, Y0, Y2     // wr·v1r
	VMULPD      Y11, Y1, Y5     // wi·v1i
	VSUBPD      Y5, Y2, Y2      // tr = wr·v1r − wi·v1i
	VMULPD      Y11, Y0, Y3     // wr·v1i
	VMULPD      Y10, Y1, Y5     // wi·v1r
	VADDPD      Y5, Y3, Y3      // ti = wr·v1i + wi·v1r
	VADDPD      Y2, Y8, Y4      // v0r + tr
	VMOVUPD     Y4, (DI)(AX*8)
	VADDPD      Y3, Y9, Y4      // v0i + ti
	VMOVUPD     Y4, (SI)(AX*8)
	VSUBPD      Y2, Y8, Y4      // v0r − tr
	VMOVUPD     Y4, (BX)(AX*8)
	VSUBPD      Y3, Y9, Y4      // v0i − ti
	VMOVUPD     Y4, (R15)(AX*8)
	ADDQ        $4, AX
	DECQ        CX
	JNZ         inner

	SUBQ R8, DI
	SUBQ R8, SI
	SUBQ R8, BX
	SUBQ R8, R15
	SUBQ $16, R13
	SUBQ $16, R14
	DECQ R9
	JNZ  chunk

	VZEROUPPER
	RET

// func addScaledFloatsAVX2(dst []complex128, src []float64, s float64)
//
// dst[i] += complex(s·src[2i], s·src[2i+1]) — component-wise, so the
// kernel is a scaled float64 add over 2·len(dst) doubles: one VMULPD
// rounding for s·src and one VADDPD for the accumulate, exactly the
// scalar body's unfused expression per element. Caller guarantees
// len(dst) >= 2.
TEXT ·addScaledFloatsAVX2(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ dst_len+8(FP), DX
	VBROADCASTSD s+48(FP), Y2
	MOVQ DX, CX
	SHRQ $1, CX // 32-byte chunks of two complex

loop:
	VMOVUPD (SI), Y0
	VMULPD  Y2, Y0, Y0
	VMOVUPD (DI), Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     loop

	ANDQ $1, DX
	JZ   done
	VMOVUPD (SI), X0
	VMULPD  X2, X0, X0
	VMOVUPD (DI), X1
	VADDPD  X1, X0, X0
	VMOVUPD X0, (DI)

done:
	VZEROUPPER
	RET

// func dechirpAVX2(re, im []float64, sym, down []complex128)
//
// Planar complex product re+i·im = sym·down, four elements per
// iteration: unpack splits the interleaved inputs into real/imag
// vectors in permuted lane order [0 2 1 3], the product runs the
// scalar expressions lane-wise (unfused multiplies, same order), and
// one VPERMPD per output restores element order before the planar
// store. Caller guarantees len(sym) a positive multiple of 4.
TEXT ·dechirpAVX2(SB), NOSPLIT, $0-96
	MOVQ re_base+0(FP), DI
	MOVQ im_base+24(FP), R8
	MOVQ sym_base+48(FP), SI
	MOVQ down_base+72(FP), DX
	MOVQ sym_len+56(FP), CX
	SHRQ $2, CX

loop:
	VMOVUPD   (SI), Y0      // [ar0 ai0 ar1 ai1]
	VMOVUPD   32(SI), Y1    // [ar2 ai2 ar3 ai3]
	VMOVUPD   (DX), Y2      // [br0 bi0 br1 bi1]
	VMOVUPD   32(DX), Y3    // [br2 bi2 br3 bi3]
	VUNPCKLPD Y1, Y0, Y4    // ar, order [0 2 1 3]
	VUNPCKHPD Y1, Y0, Y5    // ai
	VUNPCKLPD Y3, Y2, Y6    // br
	VUNPCKHPD Y3, Y2, Y7    // bi
	VMULPD    Y6, Y4, Y8    // ar·br
	VMULPD    Y7, Y5, Y9    // ai·bi
	VSUBPD    Y9, Y8, Y8    // re = ar·br − ai·bi
	VMULPD    Y7, Y4, Y9    // ar·bi
	VMULPD    Y6, Y5, Y10   // ai·br
	VADDPD    Y10, Y9, Y9   // im = ar·bi + ai·br
	VPERMPD   $0xd8, Y8, Y8 // restore [0 1 2 3]
	VPERMPD   $0xd8, Y9, Y9
	VMOVUPD   Y8, (DI)
	VMOVUPD   Y9, (R8)
	ADDQ      $64, SI
	ADDQ      $64, DX
	ADDQ      $32, DI
	ADDQ      $32, R8
	DECQ      CX
	JNZ       loop

	VZEROUPPER
	RET
