//go:build amd64

#include "textflag.h"

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func addIntoAVX2(dst, src []complex128)
//
// dst[i] += src[i]. Lanes are independent doubles; VADDPD performs the
// same IEEE addition the scalar body does, so results are bit-identical.
TEXT ·addIntoAVX2(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ dst_len+8(FP), DX
	MOVQ DX, CX
	SHRQ $1, CX        // pairs of complex128 = 32-byte chunks
	JZ   tail

loop:
	VMOVUPD (DI), Y0
	VMOVUPD (SI), Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD Y0, (DI)
	ADDQ    $32, DI
	ADDQ    $32, SI
	DECQ    CX
	JNZ     loop

tail:
	ANDQ $1, DX
	JZ   done
	VMOVUPD (DI), X0
	VMOVUPD (SI), X1
	VADDPD  X1, X0, X0
	VMOVUPD X0, (DI)

done:
	VZEROUPPER
	RET

// func addF64AVX2(dst, src []float64)
//
// dst[i] += src[i] over independent double lanes, four per 32-byte
// chunk with a scalar-double tail for the up-to-three leftovers.
// VADDPD/VADDSD perform the same IEEE addition the scalar body does,
// so results are bit-identical.
TEXT ·addF64AVX2(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ dst_len+8(FP), DX
	MOVQ DX, CX
	SHRQ $2, CX        // quads of float64 = 32-byte chunks
	JZ   tail

loop:
	VMOVUPD (DI), Y0
	VMOVUPD (SI), Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD Y0, (DI)
	ADDQ    $32, DI
	ADDQ    $32, SI
	DECQ    CX
	JNZ     loop

tail:
	ANDQ $3, DX
	JZ   done

tailloop:
	VMOVSD (DI), X0
	VMOVSD (SI), X1
	VADDSD X1, X0, X0
	VMOVSD X0, (DI)
	ADDQ   $8, DI
	ADDQ   $8, SI
	DECQ   DX
	JNZ    tailloop

done:
	VZEROUPPER
	RET

// func axpyIntoAVX2(dst, src []complex128, c complex128)
//
// dst[i] += src[i]·c with the complex product expanded exactly as the
// scalar body: re = sr·cr − si·ci (two multiplies, one subtract),
// im = si·cr + sr·ci (two multiplies, one add — addition commuted
// against the scalar body, which is bitwise-neutral). VADDSUBPD
// performs the subtract on even (real) lanes and the add on odd
// (imaginary) lanes in one instruction.
TEXT ·axpyIntoAVX2(SB), NOSPLIT, $0-64
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ dst_len+8(FP), DX
	VBROADCASTSD c_real+48(FP), Y2 // [cr cr cr cr]
	VBROADCASTSD c_imag+56(FP), Y3 // [ci ci ci ci]
	MOVQ DX, CX
	SHRQ $1, CX
	JZ   tail

loop:
	VMOVUPD   (SI), Y0       // [sr0 si0 sr1 si1]
	VPERMILPD $0x5, Y0, Y1   // [si0 sr0 si1 sr1]
	VMULPD    Y2, Y0, Y0     // [sr·cr, si·cr, …]
	VMULPD    Y3, Y1, Y1     // [si·ci, sr·ci, …]
	VADDSUBPD Y1, Y0, Y0     // [sr·cr−si·ci, si·cr+sr·ci, …]
	VMOVUPD   (DI), Y4
	VADDPD    Y4, Y0, Y0
	VMOVUPD   Y0, (DI)
	ADDQ      $32, DI
	ADDQ      $32, SI
	DECQ      CX
	JNZ       loop

tail:
	ANDQ $1, DX
	JZ   done
	VMOVUPD   (SI), X0
	VPERMILPD $0x1, X0, X1
	VMULPD    X2, X0, X0
	VMULPD    X3, X1, X1
	VADDSUBPD X1, X0, X0
	VMOVUPD   (DI), X4
	VADDPD    X4, X0, X0
	VMOVUPD   X0, (DI)

done:
	VZEROUPPER
	RET

// func stageAVX2(are, aim, bre, bim, twr, twi []float64)
//
// One radix-2 butterfly stage over planar halves a and b:
//
//	t  = w·b   (complex, expanded as in stageSpan)
//	b' = a − t
//	a' = a + t
//
// len(twr) elements, caller guarantees a multiple of 4. Each j is an
// independent lane running the scalar expressions verbatim.
TEXT ·stageAVX2(SB), NOSPLIT, $0-144
	MOVQ are_base+0(FP), R8
	MOVQ aim_base+24(FP), R9
	MOVQ bre_base+48(FP), R10
	MOVQ bim_base+72(FP), R11
	MOVQ twr_base+96(FP), R12
	MOVQ twi_base+120(FP), R13
	MOVQ twr_len+104(FP), CX
	XORQ AX, AX

loop:
	VMOVUPD (R12)(AX*8), Y0 // wr
	VMOVUPD (R13)(AX*8), Y1 // wi
	VMOVUPD (R10)(AX*8), Y2 // xr
	VMOVUPD (R11)(AX*8), Y3 // xi
	VMULPD  Y2, Y0, Y4      // wr·xr
	VMULPD  Y3, Y1, Y5      // wi·xi
	VSUBPD  Y5, Y4, Y4      // tr = wr·xr − wi·xi
	VMULPD  Y3, Y0, Y5      // wr·xi
	VMULPD  Y2, Y1, Y6      // wi·xr
	VADDPD  Y6, Y5, Y5      // ti = wr·xi + wi·xr
	VMOVUPD (R8)(AX*8), Y2  // ur
	VMOVUPD (R9)(AX*8), Y3  // ui
	VSUBPD  Y4, Y2, Y6      // ur − tr
	VMOVUPD Y6, (R10)(AX*8)
	VSUBPD  Y5, Y3, Y6      // ui − ti
	VMOVUPD Y6, (R11)(AX*8)
	VADDPD  Y4, Y2, Y6      // ur + tr
	VMOVUPD Y6, (R8)(AX*8)
	VADDPD  Y5, Y3, Y6      // ui + ti
	VMOVUPD Y6, (R9)(AX*8)
	ADDQ    $4, AX
	CMPQ    AX, CX
	JL      loop

	VZEROUPPER
	RET

// func stagePairAVX2(re, im []float64, start, h int, w1r, w1i, w2r, w2i []float64)
//
// One fused group of BatchPlan.stagePairSpan: the four planar quarters
// a/b/c/d of length h at re[start:], im[start:] flow through their two
// size-s butterflies (twiddles w1) and two size-2s butterflies
// (twiddles w2[:h] and w2[h:2h]) with intermediates in registers.
// Caller guarantees h a multiple of 4. Every butterfly computes the
// scalar stagePairSpan expressions lane for lane.
// Register budget: the fourteen array pointers (four planar quarters
// per plane plus six twiddle pointers) take every general-purpose
// register except BP/SP, so the loop advances the pointers in place and
// keeps its end sentinel (w1r + 8h) in the local stack slot.
TEXT ·stagePairAVX2(SB), NOSPLIT, $8-160
	MOVQ re_base+0(FP), R8   // a_re
	MOVQ im_base+24(FP), R12 // a_im
	MOVQ start+48(FP), AX
	LEAQ (R8)(AX*8), R8
	LEAQ (R12)(AX*8), R12
	MOVQ h+56(FP), AX
	LEAQ (R8)(AX*8), R9   // b_re
	LEAQ (R9)(AX*8), R10  // c_re
	LEAQ (R10)(AX*8), R11 // d_re
	LEAQ (R12)(AX*8), R13 // b_im
	LEAQ (R13)(AX*8), R14 // c_im
	LEAQ (R14)(AX*8), R15 // d_im
	MOVQ w1r_base+64(FP), BX
	MOVQ w1i_base+88(FP), CX
	MOVQ w2r_base+112(FP), DX
	MOVQ w2i_base+136(FP), SI
	LEAQ (DX)(AX*8), DI // w2b real = w2r[h:]
	LEAQ (BX)(AX*8), AX
	MOVQ AX, 0(SP)      // end sentinel: w1r + 8h
	MOVQ h+56(FP), AX
	LEAQ (SI)(AX*8), AX // w2b imag = w2i[h:]

loop:
	VMOVUPD (BX), Y0  // wr
	VMOVUPD (CX), Y1  // wi
	VMOVUPD (R9), Y2  // xr = b_re
	VMOVUPD (R13), Y3 // xi = b_im
	VMULPD  Y2, Y0, Y4
	VMULPD  Y3, Y1, Y5
	VSUBPD  Y5, Y4, Y4 // t1r
	VMULPD  Y3, Y0, Y5
	VMULPD  Y2, Y1, Y6
	VADDPD  Y6, Y5, Y5 // t1i
	VMOVUPD (R8), Y2   // ur = a_re
	VMOVUPD (R12), Y3  // ui = a_im
	VSUBPD  Y4, Y2, Y6 // b1r = ur − t1r
	VSUBPD  Y5, Y3, Y7 // b1i
	VADDPD  Y4, Y2, Y8 // a1r
	VADDPD  Y5, Y3, Y9 // a1i

	VMOVUPD (R11), Y2     // yr = d_re
	VMOVUPD (R15), Y3     // yi = d_im
	VMULPD  Y2, Y0, Y4
	VMULPD  Y3, Y1, Y10
	VSUBPD  Y10, Y4, Y4   // t2r
	VMULPD  Y3, Y0, Y10
	VMULPD  Y2, Y1, Y11
	VADDPD  Y11, Y10, Y10 // t2i
	VMOVUPD (R10), Y2     // vr = c_re
	VMOVUPD (R14), Y3     // vi = c_im
	VSUBPD  Y4, Y2, Y11   // d1r = vr − t2r
	VSUBPD  Y10, Y3, Y12  // d1i
	VADDPD  Y4, Y2, Y13   // c1r
	VADDPD  Y10, Y3, Y14  // c1i

	VMOVUPD (DX), Y0   // pr = w2a real
	VMOVUPD (SI), Y1   // pi
	VMULPD  Y13, Y0, Y2
	VMULPD  Y14, Y1, Y3
	VSUBPD  Y3, Y2, Y2 // t3r = pr·c1r − pi·c1i
	VMULPD  Y14, Y0, Y3
	VMULPD  Y13, Y1, Y4
	VADDPD  Y4, Y3, Y3 // t3i = pr·c1i + pi·c1r
	VSUBPD  Y2, Y8, Y4 // c' = a1r − t3r
	VMOVUPD Y4, (R10)
	VSUBPD  Y3, Y9, Y4
	VMOVUPD Y4, (R14)
	VADDPD  Y2, Y8, Y4 // a' = a1r + t3r
	VMOVUPD Y4, (R8)
	VADDPD  Y3, Y9, Y4
	VMOVUPD Y4, (R12)

	VMOVUPD (DI), Y0   // qr = w2b real
	VMOVUPD (AX), Y1   // qi = w2b imag
	VMULPD  Y11, Y0, Y2
	VMULPD  Y12, Y1, Y3
	VSUBPD  Y3, Y2, Y2 // t4r
	VMULPD  Y12, Y0, Y3
	VMULPD  Y11, Y1, Y4
	VADDPD  Y4, Y3, Y3 // t4i
	VSUBPD  Y2, Y6, Y4 // d' = b1r − t4r
	VMOVUPD Y4, (R11)
	VSUBPD  Y3, Y7, Y4
	VMOVUPD Y4, (R15)
	VADDPD  Y2, Y6, Y4 // b' = b1r + t4r
	VMOVUPD Y4, (R9)
	VADDPD  Y3, Y7, Y4
	VMOVUPD Y4, (R13)

	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	ADDQ $32, R12
	ADDQ $32, R13
	ADDQ $32, R14
	ADDQ $32, R15
	ADDQ $32, BX
	ADDQ $32, CX
	ADDQ $32, DX
	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, AX
	CMPQ BX, 0(SP)
	JB   loop

	VZEROUPPER
	RET

// func firstStageAVX2(or, oi, twr, twi []float64, v0r, v0i, v1r, v1i float64)
//
// The fused zero-pad broadcast stage over one 2z-chunk: with the
// chunk's two prefix values (v0, v1) broadcast to all lanes,
//
//	t       = w·v1
//	o[j]    = v0 + t
//	o[z+j]  = v0 − t
//
// for j in [0, z), z = len(twr), a multiple of 4 (caller-guaranteed).
TEXT ·firstStageAVX2(SB), NOSPLIT, $0-128
	MOVQ or_base+0(FP), R8
	MOVQ oi_base+24(FP), R9
	MOVQ twr_base+48(FP), R10
	MOVQ twi_base+72(FP), R11
	MOVQ twr_len+56(FP), CX // z
	LEAQ (R8)(CX*8), R12    // or upper half
	LEAQ (R9)(CX*8), R13    // oi upper half
	VBROADCASTSD v0r+96(FP), Y8
	VBROADCASTSD v0i+104(FP), Y9
	VBROADCASTSD v1r+112(FP), Y10
	VBROADCASTSD v1i+120(FP), Y11
	XORQ AX, AX

loop:
	VMOVUPD (R10)(AX*8), Y0 // wr
	VMOVUPD (R11)(AX*8), Y1 // wi
	VMULPD  Y10, Y0, Y2     // wr·v1r
	VMULPD  Y11, Y1, Y3     // wi·v1i
	VSUBPD  Y3, Y2, Y2      // tr
	VMULPD  Y11, Y0, Y3     // wr·v1i
	VMULPD  Y10, Y1, Y4     // wi·v1r
	VADDPD  Y4, Y3, Y3      // ti
	VADDPD  Y2, Y8, Y4      // v0r + tr
	VMOVUPD Y4, (R8)(AX*8)
	VADDPD  Y3, Y9, Y4      // v0i + ti
	VMOVUPD Y4, (R9)(AX*8)
	VSUBPD  Y2, Y8, Y4      // v0r − tr
	VMOVUPD Y4, (R12)(AX*8)
	VSUBPD  Y3, Y9, Y4      // v0i − ti
	VMOVUPD Y4, (R13)(AX*8)
	ADDQ    $4, AX
	CMPQ    AX, CX
	JL      loop

	VZEROUPPER
	RET
