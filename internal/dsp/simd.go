package dsp

// SIMD dispatch for the repository's two hottest inner loops: the
// complex accumulate kernels (the fused transmit path adds hundreds of
// template-symbol segments into the receive buffer per round) and the
// planar FFT butterfly stages (the receive cascade). Each kernel has a
// pure-Go scalar body — the reference — and an AVX2 body selected at
// init on amd64 when the CPU and OS support it.
//
// Bit-exactness contract: every vector lane performs exactly the
// scalar body's operation sequence on its element (unfused multiplies
// and adds, no FMA, same expression order), and lanes are independent,
// so vector and scalar paths produce bit-identical results. Tests
// enforce this by running both paths on random inputs and comparing
// exactly; the decode-side oracle suites (BatchPlan vs ForwardPruned,
// accumulate vs materialize+superpose) then pin it end to end.

// simdAVX2 reports whether the AVX2 kernel bodies are in use. It is a
// variable, not a constant, so tests can force the scalar path and
// compare the two bitwise.
var simdAVX2 = false

// SIMDEnabled reports whether vector kernel bodies are active.
func SIMDEnabled() bool { return simdAVX2 }

// AddInto adds src into dst element-wise: dst[i] += src[i]. The slices
// must have equal length; mismatches panic identically on the scalar
// and vector paths, so misuse cannot be platform-dependent.
func AddInto(dst, src []complex128) {
	if len(src) != len(dst) {
		panic("dsp: AddInto length mismatch")
	}
	if simdAVX2 && len(dst) >= 2 {
		addIntoAVX2(dst, src)
		return
	}
	addIntoScalar(dst, src)
}

func addIntoScalar(dst, src []complex128) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// AddFloat64 adds src into dst element-wise: dst[i] += src[i]. This is
// the power-spectrum sum of the soft cross-AP combining path: per-AP
// planar power spectra are accumulated bin by bin before a single
// combined peak scan. The slices must have equal length; mismatches
// panic identically on the scalar and vector paths.
func AddFloat64(dst, src []float64) {
	if len(src) != len(dst) {
		panic("dsp: AddFloat64 length mismatch")
	}
	if simdAVX2 && len(dst) >= 4 {
		addF64AVX2(dst, src)
		return
	}
	addF64Scalar(dst, src)
}

func addF64Scalar(dst, src []float64) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// AxpyInto accumulates a constant complex multiple of src into dst:
// dst[i] += src[i]·c, with the product expanded exactly as Go's
// complex multiply (re·re − im·im, re·im + im·re). The slices must
// have equal length; mismatches panic on both paths.
func AxpyInto(dst, src []complex128, c complex128) {
	if len(src) != len(dst) {
		panic("dsp: AxpyInto length mismatch")
	}
	if simdAVX2 && len(dst) >= 2 {
		axpyIntoAVX2(dst, src, c)
		return
	}
	axpyIntoScalar(dst, src, c)
}

func axpyIntoScalar(dst, src []complex128, c complex128) {
	for i := range dst {
		t := src[i] * c
		dst[i] += t
	}
}
