package dsp

import "math"

// SIMD dispatch for the repository's two hottest inner loops: the
// complex accumulate kernels (the fused transmit path adds hundreds of
// template-symbol segments into the receive buffer per round) and the
// planar FFT butterfly stages (the receive cascade). Each kernel has a
// pure-Go scalar body — the reference — and an AVX2 body selected at
// init on amd64 when the CPU and OS support it.
//
// Bit-exactness contract: every vector lane performs exactly the
// scalar body's operation sequence on its element — same expression
// order, and wherever a kernel fuses a multiply-add into one rounding
// (VFMADD/VFMSUB families) the scalar body computes the identical
// fusion with math.FMA, which Go software-fuses when hardware FMA is
// absent. Lanes are independent, so vector and scalar paths produce
// bit-identical results on every platform. Tests enforce this by
// running both paths on random inputs and comparing exactly; the
// decode-side oracle suites (BatchPlan vs ForwardPruned, accumulate vs
// materialize+superpose) then pin it end to end.

// simdAVX2 reports whether the AVX2 kernel bodies are in use. It is a
// variable, not a constant, so tests can force the scalar path and
// compare the two bitwise.
var simdAVX2 = false

// simdFMA reports whether the FMA kernel bodies are in use: AVX2 plus
// the FMA3 instruction set. Kernels whose scalar reference uses
// math.FMA (single-rounding multiply-add) dispatch on this flag; the
// scalar bodies stay bit-identical because math.FMA is exactly the
// fused operation VFMADD/VFMSUB perform.
var simdFMA = false

// SIMDEnabled reports whether vector kernel bodies are active.
func SIMDEnabled() bool { return simdAVX2 }

// FMAEnabled reports whether fused-multiply-add vector kernels are
// active.
func FMAEnabled() bool { return simdFMA }

// AddInto adds src into dst element-wise: dst[i] += src[i]. The slices
// must have equal length; mismatches panic identically on the scalar
// and vector paths, so misuse cannot be platform-dependent.
func AddInto(dst, src []complex128) {
	if len(src) != len(dst) {
		panic("dsp: AddInto length mismatch")
	}
	if simdAVX2 && len(dst) >= 2 {
		addIntoAVX2(dst, src)
		return
	}
	addIntoScalar(dst, src)
}

func addIntoScalar(dst, src []complex128) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// AddFloat64 adds src into dst element-wise: dst[i] += src[i]. This is
// the power-spectrum sum of the soft cross-AP combining path: per-AP
// planar power spectra are accumulated bin by bin before a single
// combined peak scan. The slices must have equal length; mismatches
// panic identically on the scalar and vector paths.
func AddFloat64(dst, src []float64) {
	if len(src) != len(dst) {
		panic("dsp: AddFloat64 length mismatch")
	}
	if simdAVX2 && len(dst) >= 4 {
		addF64AVX2(dst, src)
		return
	}
	addF64Scalar(dst, src)
}

func addF64Scalar(dst, src []float64) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// AxpyInto accumulates a constant complex multiple of src into dst:
// dst[i] += src[i]·c, with the product fused to one rounding per
// component and the accumulate kept as a separate add:
//
//	tr = FMA(sr, cr, −(si·ci))    (VFMADDSUB231PD even lanes)
//	ti = FMA(si, cr, sr·ci)       (VFMADDSUB231PD odd lanes)
//	dst[i] += complex(tr, ti)
//
// math.FMA is exactly the fused operation the vector body performs, so
// scalar and vector paths are bit-identical on every platform
// (software-fused where hardware FMA is absent). Keeping the
// accumulate unfused is what preserves the accumulate ≡
// materialize+superpose contract: ScaleInto computes the identical
// (tr, ti) and AddInto performs the identical lane-wise add, so
// accumulating directly or materializing first gives the same bits.
// The slices must have equal length; mismatches panic on both paths.
func AxpyInto(dst, src []complex128, c complex128) {
	if len(src) != len(dst) {
		panic("dsp: AxpyInto length mismatch")
	}
	if simdFMA && len(dst) >= 2 {
		axpyIntoAVX2(dst, src, c)
		return
	}
	axpyIntoScalar(dst, src, c)
}

func axpyIntoScalar(dst, src []complex128, c complex128) {
	cr, ci := real(c), imag(c)
	for i := range dst {
		sr, si := real(src[i]), imag(src[i])
		tr := math.FMA(sr, cr, -(si * ci))
		ti := math.FMA(si, cr, sr*ci)
		dst[i] += complex(tr, ti)
	}
}

// ScaleInto writes dst[i] = src[i]·c with exactly AxpyInto's fused
// product expansion, so materializing a scaled template and
// accumulating it with AddInto is bit-identical to accumulating with
// AxpyInto directly (the superposition oracles rely on this). The
// slices must have equal length; mismatches panic on both paths.
func ScaleInto(dst, src []complex128, c complex128) {
	if len(src) != len(dst) {
		panic("dsp: ScaleInto length mismatch")
	}
	if simdFMA && len(dst) >= 2 {
		scaleIntoAVX2(dst, src, c)
		return
	}
	scaleIntoScalar(dst, src, c)
}

func scaleIntoScalar(dst, src []complex128, c complex128) {
	cr, ci := real(c), imag(c)
	for i := range dst {
		sr, si := real(src[i]), imag(src[i])
		dst[i] = complex(math.FMA(sr, cr, -(si*ci)), math.FMA(si, cr, sr*ci))
	}
}

// AddScaledFloats accumulates s·src into dst viewed as interleaved
// float64 pairs: dst[i] += complex(s·src[2i], s·src[2i+1]). This is
// the noise-injection primitive — NormBatch fills src with unit
// normals and one fused pass scales and adds them onto the signal.
// Complex addition is component-wise, so the whole operation is a
// scaled float64 add over 2·len(dst) doubles; the vector body performs
// the identical multiply-then-add per element (both unfused, matching
// the scalar body). len(src) must be exactly 2·len(dst); mismatches
// panic on both paths.
func AddScaledFloats(dst []complex128, src []float64, s float64) {
	if len(src) != 2*len(dst) {
		panic("dsp: AddScaledFloats length mismatch")
	}
	if simdAVX2 && len(dst) >= 2 {
		addScaledFloatsAVX2(dst, src, s)
		return
	}
	addScaledFloatsScalar(dst, src, s)
}

func addScaledFloatsScalar(dst []complex128, src []float64, s float64) {
	for i := range dst {
		dst[i] += complex(s*src[2*i], s*src[2*i+1])
	}
}

// Dechirp writes the planar product sym[i]·down[i] into (re, im):
//
//	re[i] = ar·br − ai·bi
//	im[i] = ar·bi + ai·br
//
// — the dechirp multiply of the batched receiver, deinterleaving the
// complex product into the planar FFT layout in the same pass. All
// slices must have length len(sym). Products and the final add/sub
// are unfused on both paths (plain VMULPD/VSUBPD/VADDPD against the
// scalar expressions in the same order), so results are bit-identical.
func Dechirp(re, im []float64, sym, down []complex128) {
	n := len(sym)
	if len(down) != n || len(re) != n || len(im) != n {
		panic("dsp: Dechirp length mismatch")
	}
	if simdAVX2 && n >= 4 {
		q := n &^ 3
		dechirpAVX2(re[:q], im[:q], sym[:q], down[:q])
		if q == n {
			return
		}
		re, im, sym, down = re[q:], im[q:], sym[q:], down[q:]
	}
	dechirpScalar(re, im, sym, down)
}

func dechirpScalar(re, im []float64, sym, down []complex128) {
	for i := range sym {
		ar, ai := real(sym[i]), imag(sym[i])
		br, bi := real(down[i]), imag(down[i])
		re[i] = ar*br - ai*bi
		im[i] = ar*bi + ai*br
	}
}

// SynthChainState is the planar state of synthChainCount interleaved
// phase-recurrence chains: zr, zi, dr, di blocks of synthChainCount
// float64 each. Chain c's oscillator is (zr[c], zi[c]) and its
// per-chain step factor is (dr[c], di[c]).
type SynthChainState [4 * SynthChainCount]float64

// SynthChainCount is the number of interleaved recurrence chains the
// synthesis kernel advances per step — one output sample per chain per
// step, so a step emits SynthChainCount consecutive samples.
const SynthChainCount = 8

// SynthChains8 advances 8 interleaved second-order phase-recurrence
// chains `steps` times, emitting the 8 chain samples of each step as
// consecutive complex values: for step k and chain c,
//
//	dst[8k+c] = complex(zr[c]·mag, zi[c]·mag)
//	z[c]      = z[c]·d[c]     (complex, fused: re = FMA(zr, dr, −zi·di),
//	                                           im = FMA(zr, di, zi·dr))
//	d[c]      = d[c]·dL       (same fused expansion)
//
// dL is the shared second difference (e^{j·2a·L²} for stride L = 8).
// len(dst) must be at least 8·steps. The caller owns renormalization:
// the kernel never renormalizes, so drivers renormalize st between
// bounded-step calls. The scalar body uses math.FMA in exactly the
// pattern the AVX2 body's VFMSUB231PD/VFMADD231PD instructions
// compute, so both paths are bit-identical.
func SynthChains8(dst []complex128, st *SynthChainState, dL complex128, mag float64, steps int) {
	if steps <= 0 {
		return
	}
	if len(dst) < SynthChainCount*steps {
		panic("dsp: SynthChains8 dst too short")
	}
	if simdFMA {
		synthChains8AVX2(dst, (*[32]float64)(st), real(dL), imag(dL), mag, steps)
		return
	}
	synthChains8Scalar(dst, st, real(dL), imag(dL), mag, steps)
}

func synthChains8Scalar(dst []complex128, st *SynthChainState, dLr, dLi, mag float64, steps int) {
	for k := 0; k < steps; k++ {
		row := dst[k*8 : k*8+8 : k*8+8]
		for c := 0; c < 8; c++ {
			zr, zi := st[c], st[8+c]
			row[c] = complex(zr*mag, zi*mag)
			dr, di := st[16+c], st[24+c]
			st[c] = math.FMA(zr, dr, -(zi * di))
			st[8+c] = math.FMA(zr, di, zi*dr)
			st[16+c] = math.FMA(dr, dLr, -(di * dLi))
			st[24+c] = math.FMA(dr, dLi, di*dLr)
		}
	}
}

// MaxPower returns the maximum re[i]²+im[i]² over the planar slices —
// the window-power scan primitive of the batched receiver. The per-
// element power uses the exact PowerSpectrumPlanar expression; the
// running maximum of non-negative values is order-insensitive, so the
// scalar and AVX2 bodies are bit-identical. len(im) must be at least
// len(re); len(re) must be > 0.
func MaxPower(re, im []float64) float64 {
	if len(re) == 0 {
		panic("dsp: MaxPower of empty window")
	}
	if simdAVX2 && len(re) >= 4 {
		return maxPowerAVX2(re, im[:len(re)])
	}
	return maxPowerScalar(re, im)
}

func maxPowerScalar(re, im []float64) float64 {
	r, m := re[0], im[0]
	val := r*r + m*m
	for i := 1; i < len(re); i++ {
		r, m = re[i], im[i]
		if p := r*r + m*m; p > val {
			val = p
		}
	}
	return val
}
