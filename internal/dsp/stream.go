package dsp

import "math"

// Stream is the simulator's batch randomness engine: a splittable,
// deterministically seedable PRNG (xoshiro256++ state derived from one
// master seed through a SplitMix64-style key hash) with a vectorizable
// ziggurat Gaussian sampler on top. It replaces per-sample
// Rand.ComplexNormal draws on the hot noise path: StreamAt carves any
// number of statistically independent streams out of a single seed, so
// parallel workers each fill their own region from their own stream and
// the composite output is independent of worker count by construction
// (the stream index names the *region*, not the worker).
//
// The math/rand-backed Rand stays as the statistical oracle; the stream
// sampler's distribution is pinned against it by moment and
// Kolmogorov–Smirnov tests (see stream_test.go).
//
// A Stream is a 32-byte value. The zero Stream is not valid; obtain one
// via NewStream or StreamAt. Streams are not safe for concurrent use —
// they are cheap values, give every goroutine its own.
type Stream struct {
	s0, s1, s2, s3 uint64
}

// NewStream returns the stream at index 0 of seed.
func NewStream(seed int64) *Stream {
	st := StreamAt(seed, 0)
	return &st
}

// StreamAt derives the i-th stream of seed: a deterministic function of
// (seed, i) only. Distinct indices yield decorrelated generators — the
// xoshiro state words come from a SplitMix64 sequence whose origin is a
// full-avalanche hash of both inputs, so streams at related indices
// (i, i+1, …) share no state-word positions the way a naive
// seed+i·gamma derivation would.
func StreamAt(seed int64, i uint64) Stream {
	x := mix64(uint64(seed))
	x ^= mix64(i + 0x9e3779b97f4a7c15)
	x = mix64(x)
	var st Stream
	st.s0 = splitmix64(&x)
	st.s1 = splitmix64(&x)
	st.s2 = splitmix64(&x)
	st.s3 = splitmix64(&x)
	if st.s0|st.s1|st.s2|st.s3 == 0 {
		// The all-zero xoshiro state is absorbing; unreachable in
		// practice but cheap to exclude outright.
		st.s0 = 0x9e3779b97f4a7c15
	}
	return st
}

// splitmix64 advances x by the golden-ratio increment and returns the
// finalized output — Vigna's canonical seeding generator.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// mix64 is the SplitMix64 output finalizer alone: a bijective
// full-avalanche mix of one word.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func rotl64(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniform bits (xoshiro256++).
func (st *Stream) Uint64() uint64 {
	s0, s1, s2, s3 := st.s0, st.s1, st.s2, st.s3
	res := rotl64(s0+s3, 23) + s0
	t := s1 << 17
	s2 ^= s0
	s3 ^= s1
	s1 ^= s2
	s0 ^= s3
	s2 ^= t
	s3 = rotl64(s3, 45)
	st.s0, st.s1, st.s2, st.s3 = s0, s1, s2, s3
	return res
}

// Float64 returns a uniform draw from [0, 1) with 53 random bits.
func (st *Stream) Float64() float64 {
	return float64(st.Uint64()>>11) * 0x1p-53
}

// float64Open returns a uniform draw from (0, 1) — never exactly 0 —
// for the logarithms of the ziggurat tail.
func (st *Stream) float64Open() float64 {
	return (float64(st.Uint64()>>11) + 0.5) * 0x1p-53
}

// Ziggurat tables for the standard normal (Marsaglia & Tsang layout,
// zigLayers rectangles). Layer magnitudes are compared as 52-bit
// integers so the fast path is one table lookup, one compare and one
// multiply per sample; 52 bits keeps the uint64→float64 conversion
// exact.
const (
	zigLayers = 128
	zigR      = 3.442619855899      // right edge of the base layer
	zigV      = 9.91256303526217e-3 // area of each layer
	zigM      = 1 << 52             // integer magnitude scale
)

var (
	zigK [zigLayers]uint64  // fast-path acceptance thresholds
	zigW [zigLayers]float64 // magnitude → x scale per layer
	zigF [zigLayers]float64 // f(x_i) = exp(-x_i²/2) per layer
)

func init() {
	f := func(x float64) float64 { return math.Exp(-0.5 * x * x) }
	dn, tn := zigR, zigR
	q := zigV / f(dn)
	zigK[0] = uint64(dn / q * zigM)
	zigK[1] = 0
	zigW[0] = q / zigM
	zigW[zigLayers-1] = dn / zigM
	zigF[0] = 1
	zigF[zigLayers-1] = f(dn)
	for i := zigLayers - 2; i >= 1; i-- {
		dn = math.Sqrt(-2 * math.Log(zigV/dn+f(dn)))
		zigK[i+1] = uint64(dn / tn * zigM)
		tn = dn
		zigW[i] = dn / zigM
		zigF[i] = f(dn)
	}
}

// zigSplit extracts the ziggurat draw from one uniform word: the layer
// index from the low bits and a signed 53-bit magnitude from the high
// bits (arithmetic shift, so the sign rides the top bit and the
// scale multiply needs no branch — mispredicting a uniformly random
// sign branch would cost more than the whole fast path).
func zigSplit(u uint64) (i uint64, j int64, mag uint64) {
	i = u & (zigLayers - 1)
	j = int64(u) >> 11
	m := uint64(j >> 63)
	mag = (uint64(j) ^ m) - m // |j|, branch-free
	return
}

// NormFloat64 returns a standard normal draw via the ziggurat: one
// Uint64 covers the layer index, sign and 52-bit magnitude; ~98.8% of
// draws accept immediately.
func (st *Stream) NormFloat64() float64 {
	u := st.Uint64()
	i, j, mag := zigSplit(u)
	if mag < zigK[i] {
		return float64(j) * zigW[i]
	}
	return st.normSlow(u)
}

// normSlow finishes a draw whose first Uint64 u fell outside the fast
// path: the base-layer tail or a wedge rejection test, redrawing until
// acceptance.
func (st *Stream) normSlow(u uint64) float64 {
	src := zigSource{st: st}
	return normSlowSrc(u, &src)
}

// zigSource supplies the slow path's uniform words: buffered lookahead
// words first (words the batch driver generated but the vector kernel
// did not consume), then the live stream. The buffer is always a
// prefix of the stream's own future output — it was filled by
// advancing the real state — so draining it and falling through to
// Uint64 reproduces the exact word sequence sequential NormFloat64
// calls would see.
type zigSource struct {
	st  *Stream
	buf []uint64
	pos int
}

func (s *zigSource) next() uint64 {
	if s.pos < len(s.buf) {
		u := s.buf[s.pos]
		s.pos++
		return u
	}
	return s.st.Uint64()
}

// float64 and float64Open mirror Stream.Float64/float64Open word for
// word and expression for expression, so slow-path draws through a
// buffered source are bit-identical to the struct methods.
func (s *zigSource) float64() float64     { return float64(s.next()>>11) * 0x1p-53 }
func (s *zigSource) float64Open() float64 { return (float64(s.next()>>11) + 0.5) * 0x1p-53 }

// normSlowSrc is normSlow over an arbitrary word source — the one
// implementation both the sequential and the batch path use.
func normSlowSrc(u uint64, src *zigSource) float64 {
	for {
		i, j, mag := zigSplit(u)
		x := float64(j) * zigW[i]
		switch {
		case mag < zigK[i]:
			// Only reachable on redraws.
			return x
		case i == 0:
			// Base-layer tail beyond R (Marsaglia's exact method).
			var tail float64
			for {
				tail = -math.Log(src.float64Open()) / zigR
				y := -math.Log(src.float64Open())
				if y+y >= tail*tail {
					break
				}
			}
			if j < 0 {
				return -(zigR + tail)
			}
			return zigR + tail
		default:
			// Wedge between layer i and the density curve.
			if zigF[i]+src.float64()*(zigF[i-1]-zigF[i]) < math.Exp(-0.5*x*x) {
				return x
			}
		}
		u = src.next()
	}
}

// NormComplex returns a circularly symmetric complex Gaussian draw with
// total variance sigma2 — the stream engine's analogue of
// Rand.ComplexNormal (real part drawn first, then imaginary, each with
// variance sigma2/2). This is the draw the trajectory layer's evolved
// channel state (correlated fading innovations) is built on.
func (st *Stream) NormComplex(sigma2 float64) complex128 {
	s := math.Sqrt(sigma2 / 2)
	re := st.NormFloat64() * s
	im := st.NormFloat64() * s
	return complex(re, im)
}

// UniformPhase returns e^{jθ} with θ uniform over [0, 2π) — a unit
// complex number with uniformly random phase.
func (st *Stream) UniformPhase() complex128 {
	theta := st.Float64() * 2 * math.Pi
	return complex(math.Cos(theta), math.Sin(theta))
}

// zigBlock is the block depth of the vectorized NormBatch driver: how
// many samples (and so at most how many lookahead uniform words) one
// kernel call covers. Each output sample consumes at least one word,
// so a block of min(zigBlock, samples remaining) words can never
// overrun the sequential draw order — every generated word is
// consumed before the destination fills.
const zigBlock = 512

// NormBatch fills dst with standard normal draws — the same sequence
// len(dst) successive NormFloat64 calls would produce (test-enforced),
// with the generator and ziggurat fast path inlined into one planar
// fill loop. On AVX2 the whole fast path runs in one fused kernel
// (zigFillAVX2): xoshiro word generation in integer registers
// overlapped with the four-lane acceptance test, conversion and scale
// multiply. Rejections and sub-quad tails fall back to the scalar
// expressions, replaying the kernel's already-generated words from
// its side buffer so the word-consumption order — and therefore every
// output bit — matches the sequential path exactly. This is the batch
// primitive the fused AWGN path is built on.
func (st *Stream) NormBatch(dst []float64) {
	if !simdAVX2 || len(dst) < 8 {
		st.normBatchScalar(dst)
		return
	}
	var buf [zigBlock]uint64
	idx := 0
	for idx < len(dst) {
		quads := min(zigBlock, len(dst)-idx) >> 2
		if quads == 0 {
			// Fewer than four samples left: finish sequentially.
			for ; idx < len(dst); idx++ {
				dst[idx] = st.NormFloat64()
			}
			return
		}
		c := zigFillAVX2(dst[idx:idx+quads*4], buf[:quads*4], st, &zigK[0], &zigW[0])
		idx += c
		if c == quads*4 {
			continue
		}
		// The kernel stopped on a rejection at generated word c, with
		// the generator state advanced through that word's whole quad.
		// Replay the rejecting word and the quad's remaining lookahead
		// words in scalar code; slow-path redraws drain the lookahead
		// first and then fall through to the live stream, which is
		// positioned exactly where the sequential order demands.
		src := zigSource{st: st, buf: buf[:c&^3+4], pos: c}
		for src.pos < len(src.buf) {
			u := src.next()
			i, j, mag := zigSplit(u)
			if mag < zigK[i] {
				dst[idx] = float64(j) * zigW[i]
			} else {
				dst[idx] = normSlowSrc(u, &src)
			}
			idx++
		}
	}
}

// normBatchScalar is the portable NormBatch body: generator and
// ziggurat fast path inlined into one fill loop.
func (st *Stream) normBatchScalar(dst []float64) {
	s0, s1, s2, s3 := st.s0, st.s1, st.s2, st.s3
	for idx := range dst {
		res := rotl64(s0+s3, 23) + s0
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = rotl64(s3, 45)

		i, j, mag := zigSplit(res)
		if mag < zigK[i] {
			dst[idx] = float64(j) * zigW[i]
			continue
		}
		// Slow path: hand the advanced state back to the struct, finish
		// the draw there, and reload.
		st.s0, st.s1, st.s2, st.s3 = s0, s1, s2, s3
		dst[idx] = st.normSlow(res)
		s0, s1, s2, s3 = st.s0, st.s1, st.s2, st.s3
	}
	st.s0, st.s1, st.s2, st.s3 = s0, s1, s2, s3
}
