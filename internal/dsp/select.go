package dsp

// Order statistics without a full sort. The decoder's noise estimator
// needs one spectrum quantile per preamble symbol; sort.Float64s over a
// 4096-bin padded spectrum was the single most expensive non-FFT step of
// the receive path, and quickselect does the same job in O(n).

// SelectFloat64 partially sorts xs in place so that xs[k] holds the
// element of rank k (0-indexed ascending); elements before k are <= xs[k]
// and elements after are >= xs[k]. It returns xs[k]. It panics if k is
// out of range.
func SelectFloat64(xs []float64, k int) float64 {
	if k < 0 || k >= len(xs) {
		panic("dsp: SelectFloat64 rank out of range")
	}
	lo, hi := 0, len(xs)-1
	for lo < hi {
		// Median-of-three pivot guards against sorted and constant
		// inputs (spectra are far from adversarial, but preamble spectra
		// at high SNR have long equal-ish noise runs).
		mid := lo + (hi-lo)/2
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[mid]
		// Hoare partition.
		i, j := lo-1, hi+1
		for {
			for {
				i++
				if xs[i] >= pivot {
					break
				}
			}
			for {
				j--
				if xs[j] <= pivot {
					break
				}
			}
			if i >= j {
				break
			}
			xs[i], xs[j] = xs[j], xs[i]
		}
		if k <= j {
			hi = j
		} else {
			lo = j + 1
		}
	}
	return xs[k]
}

// QuantileInPlace returns the p-quantile (p in [0,1]) of xs using linear
// interpolation between the order statistics at ranks floor(h) and
// ceil(h), h = p·(len-1) — the standard "type 7" definition. xs is
// partially reordered. An empty slice yields 0.
func QuantileInPlace(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return xs[0]
	}
	p = Clamp(p, 0, 1)
	h := p * float64(n-1)
	lo := int(h)
	frac := h - float64(lo)
	v := SelectFloat64(xs, lo)
	if frac == 0 || lo+1 >= n {
		return v
	}
	// After SelectFloat64 the suffix xs[lo+1:] holds all elements of
	// rank > lo, so its minimum is the (lo+1)-th order statistic.
	next := xs[lo+1]
	for _, x := range xs[lo+2:] {
		if x < next {
			next = x
		}
	}
	return v + frac*(next-v)
}
