package dsp

import (
	"math"
	"sort"
	"testing"
)

func TestSelectFloat64MatchesSort(t *testing.T) {
	rng := NewRand(11)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		xs := make([]float64, n)
		for i := range xs {
			switch rng.Intn(4) {
			case 0:
				xs[i] = 0 // duplicate-heavy inputs
			case 1:
				xs[i] = float64(rng.Intn(5))
			default:
				xs[i] = rng.Normal(0, 10)
			}
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		k := rng.Intn(n)
		buf := append([]float64(nil), xs...)
		if got := SelectFloat64(buf, k); got != sorted[k] {
			t.Fatalf("trial %d: rank %d of %d = %v, want %v", trial, k, n, got, sorted[k])
		}
		// Partition property: everything left of k is <= xs[k], right >=.
		for i := 0; i < k; i++ {
			if buf[i] > buf[k] {
				t.Fatalf("partition violated left of %d", k)
			}
		}
		for i := k + 1; i < n; i++ {
			if buf[i] < buf[k] {
				t.Fatalf("partition violated right of %d", k)
			}
		}
	}
}

func TestSelectFloat64SortedAndReversed(t *testing.T) {
	n := 257
	asc := make([]float64, n)
	desc := make([]float64, n)
	for i := range asc {
		asc[i] = float64(i)
		desc[i] = float64(n - i)
	}
	if got := SelectFloat64(append([]float64(nil), asc...), 100); got != 100 {
		t.Fatalf("ascending rank 100 = %v", got)
	}
	if got := SelectFloat64(append([]float64(nil), desc...), 0); got != 1 {
		t.Fatalf("descending rank 0 = %v", got)
	}
}

func TestQuantileInPlaceInterpolation(t *testing.T) {
	// Four elements: the 25th percentile (type 7) is x_(0) + 0.75·(x_(1)-x_(0)).
	xs := []float64{4, 1, 3, 2}
	got := QuantileInPlace(append([]float64(nil), xs...), 0.25)
	want := 1 + 0.75*(2-1)
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("q25 = %v, want %v", got, want)
	}
	// Exact-rank case: five elements, q25 lands on rank 1 exactly.
	xs5 := []float64{5, 1, 4, 2, 3}
	if got := QuantileInPlace(xs5, 0.25); got != 2 {
		t.Fatalf("q25 of 5 = %v, want 2", got)
	}
	if got := QuantileInPlace([]float64{7}, 0.9); got != 7 {
		t.Fatalf("single-element quantile = %v", got)
	}
	if got := QuantileInPlace(nil, 0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
}

func TestQuantileInPlaceMatchesSortedInterpolation(t *testing.T) {
	rng := NewRand(13)
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(500)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Normal(0, 1)
		}
		p := rng.Float64()
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		h := p * float64(n-1)
		lo := int(h)
		want := sorted[lo]
		if frac := h - float64(lo); frac > 0 && lo+1 < n {
			want += frac * (sorted[lo+1] - sorted[lo])
		}
		got := QuantileInPlace(append([]float64(nil), xs...), p)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: q%.3f = %v, want %v", trial, p, got, want)
		}
	}
}
