//go:build amd64

package dsp

// CPUID-based feature detection. The vector bodies need AVX2 plus OS
// support for saving ymm state (OSXSAVE + XCR0 bits 1 and 2). There is
// no build-time assumption: on CPUs or kernels without support every
// dispatch stays on the scalar bodies.

func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

func init() {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return
	}
	_, _, c1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if c1&osxsave == 0 || c1&avx == 0 {
		return
	}
	if lo, _ := xgetbv(); lo&6 != 6 { // XMM and YMM state enabled by the OS
		return
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	simdAVX2 = b7&avx2 != 0
	const fma3 = 1 << 12
	simdFMA = simdAVX2 && c1&fma3 != 0
}

//go:noescape
func addIntoAVX2(dst, src []complex128)

//go:noescape
func addF64AVX2(dst, src []float64)

//go:noescape
func axpyIntoAVX2(dst, src []complex128, c complex128)

//go:noescape
func scaleIntoAVX2(dst, src []complex128, c complex128)

//go:noescape
func stageAVX2(are, aim, bre, bim, twr, twi []float64)

//go:noescape
func stagePairAVX2(re, im []float64, start, h int, w1r, w1i, w2r, w2i []float64)

//go:noescape
func firstStageBlockAVX2(re, im []float64, base, block int, twr, twi []float64)

//go:noescape
func addScaledFloatsAVX2(dst []complex128, src []float64, s float64)

//go:noescape
func dechirpAVX2(re, im []float64, sym, down []complex128)

//go:noescape
func synthChains8AVX2(dst []complex128, st *[32]float64, dLr, dLi, mag float64, steps int)

//go:noescape
func maxPowerAVX2(re, im []float64) float64

//go:noescape
func zigFillAVX2(dst []float64, wbuf []uint64, st *Stream, kTab *uint64, wTab *float64) int
