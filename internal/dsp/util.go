package dsp

import "math"

// DB converts a linear power ratio to decibels. DB(0) returns -Inf.
func DB(ratio float64) float64 {
	return 10 * math.Log10(ratio)
}

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 {
	return math.Pow(10, db/10)
}

// AmpDB converts a linear amplitude ratio to decibels (20·log10).
func AmpDB(ratio float64) float64 {
	return 20 * math.Log10(ratio)
}

// AmpFromDB converts decibels to a linear amplitude ratio.
func AmpFromDB(db float64) float64 {
	return math.Pow(10, db/20)
}

// Sinc returns the normalized sinc function sin(πx)/(πx).
func Sinc(x float64) float64 {
	if x == 0 {
		return 1
	}
	px := math.Pi * x
	return math.Sin(px) / px
}

// DirichletMag returns the magnitude of the periodic sinc (Dirichlet)
// kernel |sin(πx)/(N·sin(πx/N))| that a rectangular window of N samples
// produces at a fractional-bin offset x. This is the analytic shape of
// the side lobes in Fig. 8 of the paper: the first side lobe peaks near
// -13.3 dB, the second near -17.8 dB, the third near -20.8 dB.
func DirichletMag(x float64, n int) float64 {
	if x == 0 {
		return 1
	}
	num := math.Sin(math.Pi * x)
	den := float64(n) * math.Sin(math.Pi*x/float64(n))
	if den == 0 {
		return 1
	}
	return math.Abs(num / den)
}

// WrapIndex reduces i into [0, n) for cyclic indexing (Go's % can be
// negative for negative operands).
func WrapIndex(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}

// CircularDistance returns the distance between bins a and b on a circle
// of n bins: min(|a-b|, n-|a-b|). Cyclic shifts alias (Fig. 15b is
// symmetric around the center), so interference between two devices is
// governed by this circular bin distance, not the linear one.
func CircularDistance(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	d %= n
	if d > n-d {
		d = n - d
	}
	return d
}

// WrapFrac reduces a fractional bin offset into (-n/2, n/2].
func WrapFrac(x float64, n int) float64 {
	half := float64(n) / 2
	for x > half {
		x -= float64(n)
	}
	for x <= -half {
		x += float64(n)
	}
	return x
}

// Clamp limits v to the interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
