package dsp

import "math"

// ArgmaxAbs returns the index and magnitude of the largest-magnitude
// element of x. It returns (-1, 0) for an empty slice.
func ArgmaxAbs(x []complex128) (idx int, mag float64) {
	idx = -1
	for i, v := range x {
		m := real(v)*real(v) + imag(v)*imag(v)
		if m > mag {
			mag = m
			idx = i
		}
	}
	return idx, math.Sqrt(mag)
}

// ArgmaxFloat returns the index and value of the largest element of xs.
func ArgmaxFloat(xs []float64) (idx int, val float64) {
	idx = -1
	val = math.Inf(-1)
	for i, x := range xs {
		if x > val {
			val = x
			idx = i
		}
	}
	return idx, val
}

// MaxInWindow returns the index and value of the largest element of power
// in the circular window [center-half, center+half] (inclusive). The
// NetScatter decoder uses this to search for a device's FFT peak within
// the guard region around its assigned (zero-padded) bin.
func MaxInWindow(power []float64, center, half int) (idx int, val float64) {
	n := len(power)
	idx = -1
	val = math.Inf(-1)
	for off := -half; off <= half; off++ {
		i := WrapIndex(center+off, n)
		if power[i] > val {
			val = power[i]
			idx = i
		}
	}
	return idx, val
}

// Peak describes a local maximum in a power spectrum.
type Peak struct {
	Bin   int     // index into the (possibly zero-padded) spectrum
	Power float64 // |X[bin]|²
}

// FindPeaksAbove returns all local maxima in power whose value exceeds
// threshold, treating the spectrum as circular. Plateaus report their
// first index.
func FindPeaksAbove(power []float64, threshold float64) []Peak {
	n := len(power)
	if n == 0 {
		return nil
	}
	var peaks []Peak
	for i := 0; i < n; i++ {
		p := power[i]
		if p < threshold {
			continue
		}
		prev := power[WrapIndex(i-1, n)]
		next := power[WrapIndex(i+1, n)]
		if p > prev && p >= next {
			peaks = append(peaks, Peak{Bin: i, Power: p})
		}
	}
	return peaks
}

// QuadraticInterpolate refines a peak location using the standard
// three-point parabolic fit on a dB-scaled spectrum. It returns the
// fractional offset in (-0.5, 0.5) to add to the integer peak index.
func QuadraticInterpolate(power []float64, i int) float64 {
	n := len(power)
	pm := power[WrapIndex(i-1, n)]
	p0 := power[i]
	pp := power[WrapIndex(i+1, n)]
	if pm <= 0 || p0 <= 0 || pp <= 0 {
		return 0
	}
	a := math.Log(pm)
	b := math.Log(p0)
	c := math.Log(pp)
	den := a - 2*b + c
	if den == 0 {
		return 0
	}
	d := 0.5 * (a - c) / den
	return Clamp(d, -0.5, 0.5)
}
