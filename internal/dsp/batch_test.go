package dsp

import (
	"fmt"
	"testing"
)

// splitPlanar copies the first nonzero entries of x into fresh planar
// buffers of length n (tail filled with a sentinel the pruned transform
// must ignore).
func splitPlanar(x []complex128, n, nonzero int) (re, im []float64) {
	re = make([]float64, n)
	im = make([]float64, n)
	for i := range re {
		re[i] = 123.456 // sentinel garbage in the padded tail
		im[i] = -98.765
	}
	for i := 0; i < nonzero; i++ {
		re[i] = real(x[i])
		im[i] = imag(x[i])
	}
	return re, im
}

// TestBatchPlanBitExact verifies that the planar batch transform is
// bit-identical to FFTPlan.ForwardPruned for every (size, nonzero)
// combination the receiver uses — including the degenerate unpruned and
// single-sample cases.
func TestBatchPlanBitExact(t *testing.T) {
	for _, n := range []int{2, 8, 64, 512, 1024, 4096, 8192} {
		for nonzero := 1; nonzero <= n; nonzero <<= 1 {
			t.Run(fmt.Sprintf("n=%d/nonzero=%d", n, nonzero), func(t *testing.T) {
				rng := NewRand(int64(n + nonzero))
				in := make([]complex128, nonzero)
				for i := range in {
					in[i] = rng.ComplexNormal(1)
				}

				ref := make([]complex128, n)
				copy(ref, in)
				Plan(n).ForwardPruned(ref, nonzero)

				re, im := splitPlanar(in, n, nonzero)
				PlanBatch(n, nonzero).Forward(re, im)

				for i := range ref {
					if re[i] != real(ref[i]) || im[i] != imag(ref[i]) {
						t.Fatalf("bin %d: batch (%g, %g) != oracle (%g, %g)",
							i, re[i], im[i], real(ref[i]), imag(ref[i]))
					}
				}
			})
		}
	}
}

// TestForwardBatchStrided checks that a multi-transform batch buffer
// produces the same bits as transform-at-a-time calls.
func TestForwardBatchStrided(t *testing.T) {
	const n, nonzero, batch = 1024, 128, 5
	rng := NewRand(7)
	bp := PlanBatch(n, nonzero)

	re := make([]float64, batch*n)
	im := make([]float64, batch*n)
	refRe := make([]float64, batch*n)
	refIm := make([]float64, batch*n)
	for b := 0; b < batch; b++ {
		for i := 0; i < nonzero; i++ {
			v := rng.ComplexNormal(1)
			re[b*n+i] = real(v)
			im[b*n+i] = imag(v)
		}
		copy(refRe[b*n:(b+1)*n], re[b*n:(b+1)*n])
		copy(refIm[b*n:(b+1)*n], im[b*n:(b+1)*n])
		bp.Forward(refRe[b*n:(b+1)*n], refIm[b*n:(b+1)*n])
	}

	bp.ForwardBatch(re, im, batch)
	for i := range re {
		if re[i] != refRe[i] || im[i] != refIm[i] {
			t.Fatalf("sample %d: batch (%g, %g) != serial (%g, %g)", i, re[i], im[i], refRe[i], refIm[i])
		}
	}
}

// TestPowerSpectrumPlanarMatches verifies the planar power kernel
// matches the complex128 one bit for bit.
func TestPowerSpectrumPlanarMatches(t *testing.T) {
	rng := NewRand(3)
	x := make([]complex128, 257)
	re := make([]float64, len(x))
	im := make([]float64, len(x))
	for i := range x {
		x[i] = rng.ComplexNormal(2)
		re[i] = real(x[i])
		im[i] = imag(x[i])
	}
	want := PowerSpectrum(nil, x)
	got := make([]float64, len(x))
	PowerSpectrumPlanar(got, re, im)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bin %d: planar %g != complex %g", i, got[i], want[i])
		}
	}
}

// TestBatchPlanPanics pins the argument contract.
func TestBatchPlanPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("non-pow2 size", func() { NewBatchPlan(100, 4) })
	mustPanic("non-pow2 nonzero", func() { NewBatchPlan(128, 3) })
	mustPanic("nonzero > n", func() { NewBatchPlan(128, 256) })
	bp := PlanBatch(64, 8)
	mustPanic("short input", func() { bp.Forward(make([]float64, 32), make([]float64, 64)) })
	mustPanic("short batch", func() { bp.ForwardBatch(make([]float64, 64), make([]float64, 64), 2) })
}

func BenchmarkForwardBatch4096Pruned(b *testing.B) {
	bp := PlanBatch(4096, 512)
	re := make([]float64, 4096)
	im := make([]float64, 4096)
	rng := NewRand(1)
	for i := 0; i < 512; i++ {
		v := rng.ComplexNormal(1)
		re[i] = real(v)
		im[i] = imag(v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bp.Forward(re, im)
	}
}
