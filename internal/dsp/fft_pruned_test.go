package dsp

import (
	"math/cmplx"
	"testing"
)

// referencePadded computes the full forward DFT of x zero-padded to padN
// through the unpruned path.
func referencePadded(x []complex128, padN int) []complex128 {
	buf := make([]complex128, padN)
	copy(buf, x)
	Plan(padN).Forward(buf)
	return buf
}

func TestForwardPrunedMatchesReference(t *testing.T) {
	rng := NewRand(21)
	for _, tc := range []struct{ n, padN int }{
		{1, 8},      // degenerate: single nonzero sample
		{4, 8},      // z = 2
		{16, 64},    // z = 4
		{128, 1024}, // z = 8, the receiver's ZeroPad=8 shape at SF 7
		{512, 4096}, // the deployed SF 9 shape
		{256, 256},  // no padding: must match Forward exactly
	} {
		x := make([]complex128, tc.n)
		for i := range x {
			x[i] = rng.ComplexNormal(1)
		}
		want := referencePadded(x, tc.padN)

		got := make([]complex128, tc.padN)
		copy(got, x)
		// Poison the tail: ForwardPruned must ignore it.
		for i := tc.n; i < tc.padN; i++ {
			got[i] = complex(1e30, -1e30)
		}
		Plan(tc.padN).ForwardPruned(got, tc.n)

		var maxErr, scale float64
		for i := range want {
			if m := cmplx.Abs(want[i]); m > scale {
				scale = m
			}
		}
		for i := range want {
			if e := cmplx.Abs(got[i] - want[i]); e > maxErr {
				maxErr = e
			}
		}
		if scale == 0 {
			scale = 1
		}
		if maxErr/scale > 1e-12 {
			t.Fatalf("n=%d padN=%d: max relative error %v > 1e-12", tc.n, tc.padN, maxErr/scale)
		}
	}
}

func TestForwardPrunedImpulse(t *testing.T) {
	// A delta in the nonzero prefix must give a flat spectrum, exercising
	// the broadcast stage directly.
	padN := 64
	x := make([]complex128, padN)
	x[0] = 1
	Plan(padN).ForwardPruned(x, 8)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestForwardPrunedPanicsOnBadPrefix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-power-of-two prefix")
		}
	}()
	Plan(64).ForwardPruned(make([]complex128, 64), 12)
}

func TestInverseOfPruned(t *testing.T) {
	// Inverse(ForwardPruned(x)) recovers the zero-padded input — the
	// conjugate-twiddle inverse path against the pruned forward path.
	rng := NewRand(22)
	n, padN := 32, 256
	x := make([]complex128, padN)
	for i := 0; i < n; i++ {
		x[i] = rng.ComplexNormal(1)
	}
	y := make([]complex128, padN)
	copy(y, x)
	p := Plan(padN)
	p.ForwardPruned(y, n)
	p.Inverse(y)
	for i := range x {
		if cmplx.Abs(y[i]-x[i]) > 1e-9 {
			t.Fatalf("sample %d: %v != %v", i, y[i], x[i])
		}
	}
}
