// Package dsp provides the digital signal processing substrate used by the
// NetScatter reproduction: a radix-2 FFT, spectral helpers, peak search,
// deterministic random distributions and small statistics utilities.
//
// Everything operates on []complex128 baseband samples. The FFT is an
// in-place iterative Cooley-Tukey transform with cached twiddle factors so
// the receiver hot path (one FFT per CSS symbol) does not allocate.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// NextPow2 returns the smallest power of two >= n. It panics if n <= 0.
func NextPow2(n int) int {
	if n <= 0 {
		panic("dsp: NextPow2 requires n > 0")
	}
	if IsPow2(n) {
		return n
	}
	return 1 << bits.Len(uint(n))
}

// Log2 returns log2(n) for a power-of-two n.
func Log2(n int) int {
	if !IsPow2(n) {
		panic(fmt.Sprintf("dsp: Log2 of non power of two %d", n))
	}
	return bits.TrailingZeros(uint(n))
}

// FFTPlan holds the precomputed bit-reversal permutation and twiddle
// factors for a fixed power-of-two transform size. A plan is safe for
// concurrent use: Forward and Inverse only read the plan.
type FFTPlan struct {
	n        int
	perm     []int        // bit-reversal permutation
	twiddles []complex128 // e^{-2πik/n} for k in [0, n/2)
}

// NewFFT builds a transform plan for size n (a power of two).
func NewFFT(n int) *FFTPlan {
	if !IsPow2(n) {
		panic(fmt.Sprintf("dsp: FFT size %d is not a power of two", n))
	}
	p := &FFTPlan{n: n}
	p.perm = make([]int, n)
	shift := 64 - uint(Log2(n))
	for i := range p.perm {
		p.perm[i] = int(bits.Reverse64(uint64(i)) >> shift)
	}
	p.twiddles = make([]complex128, n/2)
	for k := range p.twiddles {
		angle := -2 * math.Pi * float64(k) / float64(n)
		p.twiddles[k] = complex(math.Cos(angle), math.Sin(angle))
	}
	return p
}

// Size returns the transform size.
func (p *FFTPlan) Size() int { return p.n }

// Forward computes the in-place forward DFT of x. len(x) must equal the
// plan size.
func (p *FFTPlan) Forward(x []complex128) {
	p.transform(x, false)
}

// Inverse computes the in-place inverse DFT of x, including the 1/n
// normalization, so Inverse(Forward(x)) == x.
func (p *FFTPlan) Inverse(x []complex128) {
	p.transform(x, true)
	scale := complex(1/float64(p.n), 0)
	for i := range x {
		x[i] *= scale
	}
}

func (p *FFTPlan) transform(x []complex128, inverse bool) {
	n := p.n
	if len(x) != n {
		panic(fmt.Sprintf("dsp: FFT input length %d does not match plan size %d", len(x), n))
	}
	// Bit-reversal reordering.
	for i, j := range p.perm {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Iterative butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			k := 0
			for i := start; i < start+half; i++ {
				w := p.twiddles[k]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				t := w * x[i+half]
				x[i+half] = x[i] - t
				x[i] = x[i] + t
				k += step
			}
		}
	}
}

var (
	planMu    sync.Mutex
	planCache = map[int]*FFTPlan{}
)

// Plan returns a cached FFT plan for size n, building it on first use.
func Plan(n int) *FFTPlan {
	planMu.Lock()
	defer planMu.Unlock()
	if p, ok := planCache[n]; ok {
		return p
	}
	p := NewFFT(n)
	planCache[n] = p
	return p
}

// FFT returns the forward DFT of x in a fresh slice. len(x) must be a
// power of two.
func FFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	Plan(len(x)).Forward(out)
	return out
}

// IFFT returns the normalized inverse DFT of x in a fresh slice.
func IFFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	Plan(len(x)).Inverse(out)
	return out
}

// ZeroPad copies x into a slice of length padLen (>= len(x)) with zeros
// appended. Zero-padding before an FFT interpolates the spectrum, giving
// the sub-bin resolution the NetScatter receiver needs (§3.2.3).
func ZeroPad(x []complex128, padLen int) []complex128 {
	if padLen < len(x) {
		panic("dsp: ZeroPad target shorter than input")
	}
	out := make([]complex128, padLen)
	copy(out, x)
	return out
}

// Magnitudes writes |x[i]| into dst and returns it. If dst is nil or too
// short, a new slice is allocated.
func Magnitudes(dst []float64, x []complex128) []float64 {
	if cap(dst) < len(x) {
		dst = make([]float64, len(x))
	}
	dst = dst[:len(x)]
	for i, v := range x {
		dst[i] = math.Hypot(real(v), imag(v))
	}
	return dst
}

// PowerSpectrum writes |x[i]|^2 into dst and returns it.
func PowerSpectrum(dst []float64, x []complex128) []float64 {
	if cap(dst) < len(x) {
		dst = make([]float64, len(x))
	}
	dst = dst[:len(x)]
	for i, v := range x {
		re, im := real(v), imag(v)
		dst[i] = re*re + im*im
	}
	return dst
}

// SignalEnergy returns the total energy sum(|x|^2) of the samples.
func SignalEnergy(x []complex128) float64 {
	var e float64
	for _, v := range x {
		re, im := real(v), imag(v)
		e += re*re + im*im
	}
	return e
}

// SignalPower returns the mean power of the samples.
func SignalPower(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	return SignalEnergy(x) / float64(len(x))
}
