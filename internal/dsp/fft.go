// Package dsp provides the digital signal processing substrate used by the
// NetScatter reproduction: a radix-2 FFT, spectral helpers, peak search,
// deterministic random distributions and small statistics utilities.
//
// Everything operates on []complex128 baseband samples. The FFT is an
// in-place iterative Cooley-Tukey transform with cached twiddle factors so
// the receiver hot path (one FFT per CSS symbol) does not allocate. The
// ForwardPruned variant exploits the zero-padded structure of the
// NetScatter receiver's input (§3.2.3: only the first N of ZeroPad·N
// samples carry the dechirped symbol) to skip the early butterfly stages
// entirely.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// NextPow2 returns the smallest power of two >= n. It panics if n <= 0.
func NextPow2(n int) int {
	if n <= 0 {
		panic("dsp: NextPow2 requires n > 0")
	}
	if IsPow2(n) {
		return n
	}
	return 1 << bits.Len(uint(n))
}

// Log2 returns log2(n) for a power-of-two n.
func Log2(n int) int {
	if !IsPow2(n) {
		panic(fmt.Sprintf("dsp: Log2 of non power of two %d", n))
	}
	return bits.TrailingZeros(uint(n))
}

// FFTPlan holds the precomputed bit-reversal permutation and twiddle
// factors for a fixed power-of-two transform size. A plan is safe for
// concurrent use: Forward, ForwardPruned and Inverse only read the plan.
type FFTPlan struct {
	n        int
	perm     []int        // bit-reversal permutation
	twiddles []complex128 // e^{-2πik/n} for k in [0, n/2)
	conj     []complex128 // e^{+2πik/n}: inverse twiddles, precomputed so
	// the butterfly loops carry no direction branch
}

// NewFFT builds a transform plan for size n (a power of two).
func NewFFT(n int) *FFTPlan {
	if !IsPow2(n) {
		panic(fmt.Sprintf("dsp: FFT size %d is not a power of two", n))
	}
	p := &FFTPlan{n: n}
	p.perm = make([]int, n)
	shift := 64 - uint(Log2(n))
	for i := range p.perm {
		p.perm[i] = int(bits.Reverse64(uint64(i)) >> shift)
	}
	p.twiddles = make([]complex128, n/2)
	p.conj = make([]complex128, n/2)
	for k := range p.twiddles {
		angle := -2 * math.Pi * float64(k) / float64(n)
		w := complex(math.Cos(angle), math.Sin(angle))
		p.twiddles[k] = w
		p.conj[k] = complex(real(w), -imag(w))
	}
	return p
}

// Size returns the transform size.
func (p *FFTPlan) Size() int { return p.n }

// Forward computes the in-place forward DFT of x. len(x) must equal the
// plan size.
func (p *FFTPlan) Forward(x []complex128) {
	p.checkLen(x)
	p.bitReverse(x)
	p.butterflies(x, p.twiddles, 2)
}

// Inverse computes the in-place inverse DFT of x, including the 1/n
// normalization, so Inverse(Forward(x)) == x.
func (p *FFTPlan) Inverse(x []complex128) {
	p.checkLen(x)
	p.bitReverse(x)
	p.butterflies(x, p.conj, 2)
	scale := complex(1/float64(p.n), 0)
	for i := range x {
		x[i] *= scale
	}
}

// ForwardPruned computes the forward DFT of x assuming only the first
// nonzero samples are meaningful; the tail x[nonzero:] is treated as
// zero regardless of its contents (callers need not clear it). nonzero
// must be a power of two dividing the plan size.
//
// For zero-padded input the first log2(n/nonzero) butterfly stages
// degenerate: in bit-reversed order the nonzero samples land on
// multiples of z = n/nonzero, so each z-aligned block holds a single
// value whose size-z sub-DFT is a constant broadcast. ForwardPruned
// replaces those stages with the broadcast and enters the butterfly
// cascade at size 2z — at the receiver's ZeroPad=8 this removes three of
// twelve stages plus the whole tail zero-fill, roughly halving the
// per-symbol transform cost.
func (p *FFTPlan) ForwardPruned(x []complex128, nonzero int) {
	p.checkLen(x)
	if nonzero >= p.n {
		p.bitReverse(x)
		p.butterflies(x, p.twiddles, 2)
		return
	}
	if !IsPow2(nonzero) || nonzero <= 0 {
		panic(fmt.Sprintf("dsp: pruned FFT nonzero prefix %d must be a power of two", nonzero))
	}
	z := p.n / nonzero
	// Bit-reverse the nonzero prefix in place. For i < nonzero the full
	// permutation satisfies perm[i] = rev_m(i)·z with m = nonzero, so
	// rev_m(i) = perm[i]/z and the swap stays inside the prefix.
	for i := 0; i < nonzero; i++ {
		if j := p.perm[i] / z; i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Broadcast each prefix value across its z-block, walking backwards
	// so no value is overwritten before it is read (i ≤ i·z).
	for i := nonzero - 1; i >= 0; i-- {
		v := x[i]
		blk := x[i*z : i*z+z]
		for k := range blk {
			blk[k] = v
		}
	}
	p.butterflies(x, p.twiddles, 2*z)
}

func (p *FFTPlan) checkLen(x []complex128) {
	if len(x) != p.n {
		panic(fmt.Sprintf("dsp: FFT input length %d does not match plan size %d", len(x), p.n))
	}
}

func (p *FFTPlan) bitReverse(x []complex128) {
	for i, j := range p.perm {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
}

// butterflies runs the iterative Cooley-Tukey cascade from stage size
// firstSize (a power of two >= 2) up to the full transform, reading
// twiddles from tw — the forward or conjugate table, so the inner loop
// carries no direction branch.
func (p *FFTPlan) butterflies(x []complex128, tw []complex128, firstSize int) {
	n := p.n
	for size := firstSize; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			k := 0
			for i := start; i < start+half; i++ {
				t := tw[k] * x[i+half]
				x[i+half] = x[i] - t
				x[i] = x[i] + t
				k += step
			}
		}
	}
}

var (
	planMu    sync.Mutex
	planCache = map[int]*FFTPlan{}
)

// Plan returns a cached FFT plan for size n, building it on first use.
func Plan(n int) *FFTPlan {
	planMu.Lock()
	defer planMu.Unlock()
	if p, ok := planCache[n]; ok {
		return p
	}
	p := NewFFT(n)
	planCache[n] = p
	return p
}

// FFT returns the forward DFT of x in a fresh slice. len(x) must be a
// power of two.
func FFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	Plan(len(x)).Forward(out)
	return out
}

// IFFT returns the normalized inverse DFT of x in a fresh slice.
func IFFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	Plan(len(x)).Inverse(out)
	return out
}

// ZeroPad copies x into a slice of length padLen (>= len(x)) with zeros
// appended. Zero-padding before an FFT interpolates the spectrum, giving
// the sub-bin resolution the NetScatter receiver needs (§3.2.3).
func ZeroPad(x []complex128, padLen int) []complex128 {
	if padLen < len(x) {
		panic("dsp: ZeroPad target shorter than input")
	}
	out := make([]complex128, padLen)
	copy(out, x)
	return out
}

// Magnitudes writes |x[i]| into dst and returns it. If dst is nil or too
// short, a new slice is allocated.
func Magnitudes(dst []float64, x []complex128) []float64 {
	if cap(dst) < len(x) {
		dst = make([]float64, len(x))
	}
	dst = dst[:len(x)]
	for i, v := range x {
		dst[i] = math.Hypot(real(v), imag(v))
	}
	return dst
}

// PowerSpectrum writes |x[i]|^2 into dst and returns it.
func PowerSpectrum(dst []float64, x []complex128) []float64 {
	if cap(dst) < len(x) {
		dst = make([]float64, len(x))
	}
	dst = dst[:len(x)]
	for i, v := range x {
		re, im := real(v), imag(v)
		dst[i] = re*re + im*im
	}
	return dst
}

// SignalEnergy returns the total energy sum(|x|^2) of the samples.
func SignalEnergy(x []complex128) float64 {
	var e float64
	for _, v := range x {
		re, im := real(v), imag(v)
		e += re*re + im*im
	}
	return e
}

// SignalPower returns the mean power of the samples.
func SignalPower(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	return SignalEnergy(x) / float64(len(x))
}
