package dsp

import (
	"math"
	"math/rand"
)

// Rand wraps math/rand with the extra distributions the simulator needs.
// Every stochastic component in the reproduction draws from an explicitly
// seeded Rand so experiments are reproducible run-to-run.
type Rand struct {
	*rand.Rand
}

// NewRand returns a deterministic source seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{rand.New(rand.NewSource(seed))}
}

// Normal draws from N(mean, sigma²).
func (r *Rand) Normal(mean, sigma float64) float64 {
	return mean + sigma*r.NormFloat64()
}

// TruncNormal draws from N(mean, sigma²) truncated to [lo, hi] by
// rejection (the simulator only uses mild truncation, so this terminates
// quickly).
func (r *Rand) TruncNormal(mean, sigma, lo, hi float64) float64 {
	for i := 0; i < 1000; i++ {
		v := r.Normal(mean, sigma)
		if v >= lo && v <= hi {
			return v
		}
	}
	return Clamp(mean, lo, hi)
}

// Rayleigh draws from a Rayleigh distribution with scale sigma.
func (r *Rand) Rayleigh(sigma float64) float64 {
	u := r.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return sigma * math.Sqrt(-2*math.Log(u))
}

// ComplexNormal draws a circularly symmetric complex Gaussian with total
// variance sigma2 (variance sigma2/2 per real/imaginary component). This
// is the standard model for both thermal noise and Rayleigh fading taps.
func (r *Rand) ComplexNormal(sigma2 float64) complex128 {
	s := math.Sqrt(sigma2 / 2)
	return complex(s*r.NormFloat64(), s*r.NormFloat64())
}

// UniformPhase returns e^{jθ} with θ uniform in [0, 2π).
func (r *Rand) UniformPhase() complex128 {
	theta := 2 * math.Pi * r.Float64()
	return complex(math.Cos(theta), math.Sin(theta))
}

// Uniform draws uniformly from [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Bytes fills a fresh slice of length n with random bytes.
func (r *Rand) Bytes(n int) []byte {
	b := make([]byte, n)
	r.FillBytes(b)
	return b
}

// FillBytes fills b with random bytes, drawing the same sequence Bytes
// would — callers with arenas refill in place without allocating.
func (r *Rand) FillBytes(b []byte) {
	for i := range b {
		b[i] = byte(r.Intn(256))
	}
}

// Bits returns n random bits.
func (r *Rand) Bits(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r.Intn(2))
	}
	return b
}

// Fork derives an independent deterministic stream from this one. Useful
// for giving every simulated device its own source while keeping a single
// top-level seed.
func (r *Rand) Fork() *Rand {
	return NewRand(r.Int63())
}
