package dsp

import (
	"fmt"
	"math"
	"math/rand"
)

// Rand wraps math/rand with the extra distributions the simulator needs.
// Every stochastic component in the reproduction draws from an explicitly
// seeded Rand so experiments are reproducible run-to-run.
type Rand struct {
	*rand.Rand
}

// NewRand returns a deterministic source seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{rand.New(rand.NewSource(seed))}
}

// Normal draws from N(mean, sigma²).
func (r *Rand) Normal(mean, sigma float64) float64 {
	return mean + sigma*r.NormFloat64()
}

// TruncNormal draws from N(mean, sigma²) truncated to [lo, hi] by
// rejection. The simulator only uses mild truncation (the bounds retain
// a non-negligible share of the mass), where the first draw almost
// always lands inside and the loop is effectively free. Extreme
// truncation is outside the contract: after 1000 rejected draws the
// result is Clamp(mean, lo, hi) — a deliberate, documented fallback so
// a pathological parameterization degrades to a deterministic in-range
// value instead of spinning. Degenerate bounds (lo > hi, or NaN) are a
// caller bug and panic.
func (r *Rand) TruncNormal(mean, sigma, lo, hi float64) float64 {
	if !(lo <= hi) {
		panic(fmt.Sprintf("dsp: TruncNormal degenerate bounds [%v, %v]", lo, hi))
	}
	for i := 0; i < 1000; i++ {
		v := r.Normal(mean, sigma)
		if v >= lo && v <= hi {
			return v
		}
	}
	return Clamp(mean, lo, hi)
}

// Rayleigh draws from a Rayleigh distribution with scale sigma.
func (r *Rand) Rayleigh(sigma float64) float64 {
	u := r.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return sigma * math.Sqrt(-2*math.Log(u))
}

// ComplexNormal draws a circularly symmetric complex Gaussian with total
// variance sigma2 (variance sigma2/2 per real/imaginary component). This
// is the standard model for both thermal noise and Rayleigh fading taps.
func (r *Rand) ComplexNormal(sigma2 float64) complex128 {
	s := math.Sqrt(sigma2 / 2)
	return complex(s*r.NormFloat64(), s*r.NormFloat64())
}

// UniformPhase returns e^{jθ} with θ uniform in [0, 2π).
func (r *Rand) UniformPhase() complex128 {
	theta := 2 * math.Pi * r.Float64()
	return complex(math.Cos(theta), math.Sin(theta))
}

// Uniform draws uniformly from [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Bytes fills a fresh slice of length n with random bytes.
func (r *Rand) Bytes(n int) []byte {
	b := make([]byte, n)
	r.FillBytes(b)
	return b
}

// FillBytes fills b with random bytes, drawing the same sequence Bytes
// would — callers with arenas refill in place without allocating. Each
// Uint64 draw yields eight bytes (little-endian), so a payload refill
// costs n/8 generator steps instead of one Intn per byte.
func (r *Rand) FillBytes(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		u := r.Uint64()
		b[i+0] = byte(u)
		b[i+1] = byte(u >> 8)
		b[i+2] = byte(u >> 16)
		b[i+3] = byte(u >> 24)
		b[i+4] = byte(u >> 32)
		b[i+5] = byte(u >> 40)
		b[i+6] = byte(u >> 48)
		b[i+7] = byte(u >> 56)
	}
	if i < len(b) {
		u := r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(u)
			u >>= 8
		}
	}
}

// Bits returns n random bits, one Uint64 draw per 64 bits (consumed
// least-significant first).
func (r *Rand) Bits(n int) []byte {
	b := make([]byte, n)
	var u uint64
	for i := range b {
		if i&63 == 0 {
			u = r.Uint64()
		}
		b[i] = byte(u & 1)
		u >>= 1
	}
	return b
}

// Fork derives an independent deterministic stream from this one. Useful
// for giving every simulated device its own source while keeping a single
// top-level seed.
func (r *Rand) Fork() *Rand {
	return NewRand(r.Int63())
}
