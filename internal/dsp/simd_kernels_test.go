package dsp

import (
	"testing"
)

// Per-kernel scalar-vs-vector equivalence gates for the PR 9 kernels.
// Every test runs the dispatching entry point (vector body on this
// machine) against the scalar reference body on identical inputs and
// requires bit-identical output — the contract simd.go documents.
// Lengths are chosen to cover the vector main loop, every tail residue
// and the scalar-only short cases.

// TestScaleIntoMatchesScalar pins the vector ScaleInto body bit for bit
// against the scalar reference, sharing AxpyInto's fused product
// expansion (the materialize ≡ accumulate oracles depend on the two
// agreeing).
func TestScaleIntoMatchesScalar(t *testing.T) {
	if !simdFMA {
		t.Skip("no FMA on this machine; scalar path is the only body")
	}
	rng := NewRand(11)
	for _, n := range []int{0, 1, 2, 3, 5, 8, 33, 512, 513} {
		for _, c := range []complex128{complex(1.7, -0.3), complex(-2.1, 4.9), complex(0, 1), complex(1, 0)} {
			src := randComplexSlice(rng, n)
			dst := make([]complex128, n)
			want := make([]complex128, n)
			scaleIntoScalar(want, src, c)
			ScaleInto(dst, src, c)
			for i := range dst {
				if dst[i] != want[i] {
					t.Fatalf("n=%d c=%v: ScaleInto[%d] = %v, scalar = %v", n, c, i, dst[i], want[i])
				}
			}
		}
	}
}

// TestAddScaledFloatsMatchesScalar pins the fused noise-injection add
// bit for bit against the scalar reference across vector-body, odd-tail
// and scalar-only lengths.
func TestAddScaledFloatsMatchesScalar(t *testing.T) {
	if !simdAVX2 {
		t.Skip("no AVX2 on this machine; scalar path is the only body")
	}
	rng := NewRand(12)
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 63, 64, 65, 256, 257} {
		for _, s := range []float64{0.70710678, -1.5, 0, 3.25} {
			dst := randComplexSlice(rng, n)
			src := make([]float64, 2*n)
			for i := range src {
				src[i] = rng.Normal(0, 1)
			}
			want := append([]complex128(nil), dst...)
			addScaledFloatsScalar(want, src, s)
			AddScaledFloats(dst, src, s)
			for i := range dst {
				if dst[i] != want[i] {
					t.Fatalf("n=%d s=%v: AddScaledFloats[%d] = %v, scalar = %v", n, s, i, dst[i], want[i])
				}
			}
		}
	}
}

// TestDechirpMatchesScalar pins the planar dechirp product bit for bit
// against the scalar reference, covering the quad main loop, every
// sub-quad tail residue and the scalar-only short cases.
func TestDechirpMatchesScalar(t *testing.T) {
	if !simdAVX2 {
		t.Skip("no AVX2 on this machine; scalar path is the only body")
	}
	rng := NewRand(13)
	for _, n := range []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 64, 67, 1024} {
		sym := randComplexSlice(rng, n)
		down := randComplexSlice(rng, n)
		re := make([]float64, n)
		im := make([]float64, n)
		wantRe := make([]float64, n)
		wantIm := make([]float64, n)
		dechirpScalar(wantRe, wantIm, sym, down)
		Dechirp(re, im, sym, down)
		for i := 0; i < n; i++ {
			if re[i] != wantRe[i] || im[i] != wantIm[i] {
				t.Fatalf("n=%d: Dechirp[%d] = (%v,%v), scalar = (%v,%v)",
					n, i, re[i], im[i], wantRe[i], wantIm[i])
			}
		}
	}
}

// TestMaxPowerMatchesScalar pins the window-power scan bit for bit
// against the scalar reference. Lengths 4–7 matter most: they exercise
// the single-quad vector body plus every tail residue — the payload
// tracker's ±half windows are exactly this size.
func TestMaxPowerMatchesScalar(t *testing.T) {
	if !simdAVX2 {
		t.Skip("no AVX2 on this machine; scalar path is the only body")
	}
	rng := NewRand(14)
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 15, 16, 64, 67, 1024} {
		re := make([]float64, n)
		im := make([]float64, n)
		for i := 0; i < n; i++ {
			re[i] = rng.Normal(0, 2)
			im[i] = rng.Normal(0, 2)
		}
		want := maxPowerScalar(re, im)
		got := MaxPower(re, im)
		if got != want {
			t.Fatalf("n=%d: MaxPower = %v, scalar = %v", n, got, want)
		}
	}
}

// TestSynthChains8MatchesScalar pins the interleaved-chain synthesis
// kernel bit for bit against the scalar reference: emitted samples and
// the continued chain state must both match, across step counts
// covering single steps through full renormalization blocks.
func TestSynthChains8MatchesScalar(t *testing.T) {
	if !simdFMA {
		t.Skip("no FMA on this machine; scalar path is the only body")
	}
	rng := NewRand(15)
	seedState := func() SynthChainState {
		var st SynthChainState
		for c := 0; c < SynthChainCount; c++ {
			// Unit-magnitude oscillator and step-factor seeds, as the
			// synthesizer provides.
			z := rng.UniformPhase()
			d := rng.UniformPhase()
			st[c], st[SynthChainCount+c] = real(z), imag(z)
			st[2*SynthChainCount+c], st[3*SynthChainCount+c] = real(d), imag(d)
		}
		return st
	}
	dL := complex(0.9999999973015135, 7.346410206643587e-05)
	for _, steps := range []int{1, 2, 3, 7, 16, 128} {
		stV := seedState()
		stS := stV
		dstV := make([]complex128, SynthChainCount*steps)
		dstS := make([]complex128, SynthChainCount*steps)
		SynthChains8(dstV, &stV, dL, 0.125, steps)
		synthChains8Scalar(dstS, &stS, real(dL), imag(dL), 0.125, steps)
		for i := range dstV {
			if dstV[i] != dstS[i] {
				t.Fatalf("steps=%d: SynthChains8[%d] = %v, scalar = %v", steps, i, dstV[i], dstS[i])
			}
		}
		if stV != stS {
			t.Fatalf("steps=%d: continued chain state diverges:\nvector %v\nscalar %v", steps, stV, stS)
		}
	}
}

// TestNormBatchSIMDMatchesScalarBody pins the fused AVX2 ziggurat fill
// against the portable normBatchScalar body: identical streams, bit-
// identical output, for lengths crossing the kernel's quad and block
// boundaries and the sequential sub-8 fallback.
func TestNormBatchSIMDMatchesScalarBody(t *testing.T) {
	if !simdAVX2 {
		t.Skip("no AVX2 on this machine; scalar path is the only body")
	}
	for _, n := range []int{1, 7, 8, 9, 12, 100, 511, 512, 513, 2048, 4099} {
		stV := StreamAt(99, 0)
		stS := stV
		got := make([]float64, n)
		want := make([]float64, n)
		stV.NormBatch(got)
		stS.normBatchScalar(want)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: NormBatch[%d] = %v, scalar body = %v", n, i, got[i], want[i])
			}
		}
		if stV != stS {
			t.Fatalf("n=%d: generator state diverges after fill", n)
		}
	}
}

// TestKernelsZeroAlloc gates the new hot-path entry points at zero
// allocations per call — these run millions of times per simulated
// round, and a single boxed argument or escaped slice would show up as
// GC pressure across the whole network simulation.
func TestKernelsZeroAlloc(t *testing.T) {
	n := 256
	rng := NewRand(16)
	dst := randComplexSlice(rng, n)
	src := randComplexSlice(rng, n)
	re := make([]float64, n)
	im := make([]float64, n)
	fl := make([]float64, 2*n)
	for i := range fl {
		fl[i] = rng.Normal(0, 1)
	}
	var st SynthChainState
	for c := 0; c < SynthChainCount; c++ {
		st[c] = 1
		st[2*SynthChainCount+c] = 1
	}
	chainDst := make([]complex128, SynthChainCount*16)
	sink := 0.0
	cases := []struct {
		name string
		fn   func()
	}{
		{"AddInto", func() { AddInto(dst, src) }},
		{"AxpyInto", func() { AxpyInto(dst, src, complex(0.5, -0.25)) }},
		{"ScaleInto", func() { ScaleInto(dst, src, complex(0.5, -0.25)) }},
		{"AddScaledFloats", func() { AddScaledFloats(dst, fl, 0.75) }},
		{"Dechirp", func() { Dechirp(re, im, dst, src) }},
		{"MaxPower", func() { sink += MaxPower(re, im) }},
		{"SynthChains8", func() { SynthChains8(chainDst, &st, complex(1, 0), 0.5, 16) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(100, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs per call, want 0", tc.name, allocs)
		}
	}
	_ = sink
}
