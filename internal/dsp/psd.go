package dsp

import "math"

// HannWindow returns an n-point Hann window.
func HannWindow(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return w
}

// WelchPSD estimates the power spectral density of sig with Welch's
// method: Hann-windowed segments of length segLen (a power of two) with
// 50% overlap, averaged periodograms. The result has segLen bins covering
// [0, fs) in FFT order; use FFTShift to center DC. Used to regenerate the
// spectrogram-style views of Fig. 16.
func WelchPSD(sig []complex128, segLen int) []float64 {
	if !IsPow2(segLen) {
		panic("dsp: WelchPSD segment length must be a power of two")
	}
	if len(sig) < segLen {
		padded := make([]complex128, segLen)
		copy(padded, sig)
		sig = padded
	}
	win := HannWindow(segLen)
	var winPower float64
	for _, w := range win {
		winPower += w * w
	}
	plan := Plan(segLen)
	buf := make([]complex128, segLen)
	psd := make([]float64, segLen)
	hop := segLen / 2
	segments := 0
	for start := 0; start+segLen <= len(sig); start += hop {
		for i := 0; i < segLen; i++ {
			buf[i] = sig[start+i] * complex(win[i], 0)
		}
		plan.Forward(buf)
		for i, v := range buf {
			re, im := real(v), imag(v)
			psd[i] += (re*re + im*im) / winPower
		}
		segments++
	}
	if segments == 0 {
		segments = 1
	}
	for i := range psd {
		psd[i] /= float64(segments)
	}
	return psd
}

// FFTShift reorders a spectrum so the DC bin is centered. The returned
// slice is fresh.
func FFTShift(spec []float64) []float64 {
	n := len(spec)
	out := make([]float64, n)
	half := n / 2
	copy(out, spec[half:])
	copy(out[n-half:], spec[:half])
	return out
}

// FreqAxis returns the centered frequency axis (Hz) matching
// FFTShift(WelchPSD(...)) for n bins at sample rate fs.
func FreqAxis(n int, fs float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = (float64(i) - float64(n/2)) * fs / float64(n)
	}
	return out
}
