package dsp

import "math"

// FractionalDelay delays sig by frac samples (0 <= frac < 1) and returns
// a same-length slice. The delay is applied in the frequency domain as
// an exact all-pass phase ramp e^{-j2πf·frac}, which is correct at every
// frequency — unlike FIR interpolation, which cannot represent a
// fractional delay near the band edge that critically-sampled chirps
// sweep through.
//
// A true fractional delay — rather than the "equivalent frequency
// offset" shortcut — matters because a time shift moves upchirp and
// downchirp dechirped peaks in opposite directions, which is exactly
// what the packet-start midpoint estimator exploits (§3.3.1). The delay
// is circular over the padded FFT length; with frac < 1 sample the
// wrap-around is a single sample of leakage at the very end of the
// padded (zero) region, far from any symbol of interest.
func FractionalDelay(sig []complex128, frac float64) []complex128 {
	if frac == 0 || len(sig) == 0 {
		out := make([]complex128, len(sig))
		copy(out, sig)
		return out
	}
	m := NextPow2(len(sig) + 2)
	buf := make([]complex128, m)
	copy(buf, sig)
	plan := Plan(m)
	plan.Forward(buf)
	for k := range buf {
		// DFT shift theorem: x[n-d] <-> X[k]·e^{-j2πkd/M} with the
		// unsigned bin index k.
		phase := -2 * math.Pi * float64(k) * frac / float64(m)
		buf[k] *= complex(math.Cos(phase), math.Sin(phase))
	}
	plan.Inverse(buf)
	out := make([]complex128, len(sig))
	copy(out, buf)
	return out
}
