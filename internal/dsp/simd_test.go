package dsp

import (
	"testing"
)

// forceScalar turns the vector kernels off — both the AVX2 and the
// FMA-gated dispatches — for the duration of a test body and restores
// the detected settings afterwards.
func forceScalar(t *testing.T) {
	t.Helper()
	prevAVX2, prevFMA := simdAVX2, simdFMA
	simdAVX2, simdFMA = false, false
	t.Cleanup(func() { simdAVX2, simdFMA = prevAVX2, prevFMA })
}

func randComplexSlice(rng *Rand, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = rng.ComplexNormal(2)
	}
	return out
}

// TestAddIntoMatchesScalar pins the vector AddInto body bit for bit
// against the scalar reference across lengths covering the vector body,
// the odd tail and the scalar-only short cases.
func TestAddIntoMatchesScalar(t *testing.T) {
	if !simdAVX2 {
		t.Skip("no AVX2 on this machine; scalar path is the only body")
	}
	rng := NewRand(1)
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 15, 64, 67, 1024} {
		dst := randComplexSlice(rng, n)
		src := randComplexSlice(rng, n)
		want := append([]complex128(nil), dst...)
		addIntoScalar(want, src)
		AddInto(dst, src)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("n=%d: AddInto[%d] = %v, scalar = %v", n, i, dst[i], want[i])
			}
		}
	}
}

// TestAddFloat64MatchesScalar pins the vector AddFloat64 body bit for
// bit against the scalar reference across lengths covering the vector
// body, all three tail residues and the scalar-only short cases.
func TestAddFloat64MatchesScalar(t *testing.T) {
	if !simdAVX2 {
		t.Skip("no AVX2 on this machine; scalar path is the only body")
	}
	rng := NewRand(7)
	for _, n := range []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 64, 65, 66, 67, 1024} {
		dst := make([]float64, n)
		src := make([]float64, n)
		for i := 0; i < n; i++ {
			dst[i] = rng.Normal(0, 3)
			src[i] = rng.Normal(0, 3)
		}
		want := append([]float64(nil), dst...)
		addF64Scalar(want, src)
		AddFloat64(dst, src)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("n=%d: AddFloat64[%d] = %v, scalar = %v", n, i, dst[i], want[i])
			}
		}
	}
}

func TestAddFloat64LengthMismatchPanics(t *testing.T) {
	forceScalar(t)
	defer func() {
		if recover() == nil {
			t.Fatal("AddFloat64 with mismatched lengths did not panic")
		}
	}()
	AddFloat64(make([]float64, 4), make([]float64, 3))
}

// TestAxpyIntoMatchesScalar pins the vector AxpyInto body bit for bit
// against the scalar reference, including the complex-product expansion
// order.
func TestAxpyIntoMatchesScalar(t *testing.T) {
	if !simdAVX2 {
		t.Skip("no AVX2 on this machine; scalar path is the only body")
	}
	rng := NewRand(2)
	for _, n := range []int{0, 1, 2, 3, 5, 8, 33, 512, 513} {
		for _, c := range []complex128{complex(1.7, -0.3), complex(-2.1, 4.9), complex(0.0, 1.0), complex(1, 0)} {
			dst := randComplexSlice(rng, n)
			src := randComplexSlice(rng, n)
			want := append([]complex128(nil), dst...)
			axpyIntoScalar(want, src, c)
			AxpyInto(dst, src, c)
			for i := range dst {
				if dst[i] != want[i] {
					t.Fatalf("n=%d c=%v: AxpyInto[%d] = %v, scalar = %v", n, c, i, dst[i], want[i])
				}
			}
		}
	}
}

// TestBatchPlanSIMDMatchesScalarBitExact runs the full planar transform
// with the vector kernels on and off over random inputs and requires
// bit-identical spectra — the whole-cascade version of the per-kernel
// checks, covering the fused first stage, paired stages and any odd
// leftover stage across pruning configurations.
func TestBatchPlanSIMDMatchesScalarBitExact(t *testing.T) {
	if !simdAVX2 {
		t.Skip("no AVX2 on this machine; scalar path is the only body")
	}
	rng := NewRand(3)
	for _, tc := range []struct{ n, nonzero int }{
		{64, 64}, {128, 16}, {256, 32}, {1024, 128}, {4096, 512}, {4096, 4096}, {8192, 1024},
	} {
		bp := NewBatchPlan(tc.n, tc.nonzero)
		re := make([]float64, tc.n)
		im := make([]float64, tc.n)
		for i := 0; i < tc.nonzero; i++ {
			v := rng.ComplexNormal(1)
			re[i] = real(v)
			im[i] = imag(v)
		}
		wantRe := append([]float64(nil), re...)
		wantIm := append([]float64(nil), im...)

		prevAVX2, prevFMA := simdAVX2, simdFMA
		simdAVX2, simdFMA = false, false
		bp.Forward(wantRe, wantIm)
		simdAVX2, simdFMA = prevAVX2, prevFMA

		bp.Forward(re, im)
		for i := range re {
			if re[i] != wantRe[i] || im[i] != wantIm[i] {
				t.Fatalf("n=%d/%d: SIMD transform diverges at bin %d: (%v,%v) vs (%v,%v)",
					tc.n, tc.nonzero, i, re[i], im[i], wantRe[i], wantIm[i])
			}
		}
	}
}

func TestSIMDEnabledReportsDispatch(t *testing.T) {
	if SIMDEnabled() != simdAVX2 {
		t.Fatal("SIMDEnabled out of sync with dispatch flag")
	}
	forceScalar(t)
	if SIMDEnabled() {
		t.Fatal("forceScalar did not disable dispatch")
	}
}
