package dsp

import (
	"fmt"
	"sync"
)

// BatchPlan runs the receiver's zero-pad-pruned forward FFT over a
// planar (split real/imaginary, contiguous-stride) sample layout, one
// pre-planned pass per transform. It exists for the batched receive
// path: a frame's candidate-symbol transforms all share one plan, and
// the planar float64 layout keeps the butterfly inner loops free of
// bounds checks and friendly to vectorization.
//
// Everything that the per-call pruned transform recomputes is hoisted
// into the plan:
//
//   - The prefix bit-reversal permutation is stored as an explicit swap
//     list (ForwardPruned re-derives it from the full permutation on
//     every call).
//   - Twiddle factors are repacked per butterfly stage into compact
//     planar tables, so every stage reads its twiddles at unit stride
//     instead of striding through the full-size table.
//   - The zero-pad broadcast is fused into the first butterfly stage:
//     the stage reads the two prefix values of each block directly and
//     writes the stage output, eliminating a full write+read pass over
//     the buffer.
//
// Stages are additionally executed cache-blocked: every stage whose
// butterflies fit inside a block of blockElems elements runs
// block-by-block while the block is resident in L1, leaving only the
// last log2(n/block) stages as full-array passes. Reordering butterfly
// execution never changes results — each butterfly's operands and
// operation order are identical to FFTPlan's radix-2 cascade, so a
// BatchPlan transform is bit-identical to ForwardPruned on the same
// input (the oracle the tests enforce).
//
// A BatchPlan is safe for concurrent use; transforms only read it.
type BatchPlan struct {
	n       int
	nonzero int
	z       int // zero-pad factor n/nonzero
	block   int // cache-block span in elements (power of two)
	swaps   []int32
	stages  []batchStage
}

// batchStage is one butterfly stage's compact twiddle table:
// twr[j] + i·twi[j] = e^{-2πij/size} for j in [0, size/2). The values
// are copied verbatim from the FFTPlan twiddle table (not recomputed
// from a different trig expression), keeping them bit-identical.
type batchStage struct {
	size     int
	twr, twi []float64
}

// blockElems is the cache-block span: 1024 complex elements = 16 KiB of
// planar floats, comfortably inside a 32 KiB L1d alongside the twiddle
// tables.
const blockElems = 1024

// NewBatchPlan builds a planar pruned-FFT plan for transforms of size n
// whose inputs have only the first nonzero samples populated. Both must
// be powers of two with nonzero <= n. nonzero == n degenerates to an
// unpruned planar transform.
func NewBatchPlan(n, nonzero int) *BatchPlan {
	if !IsPow2(n) {
		panic(fmt.Sprintf("dsp: batch FFT size %d is not a power of two", n))
	}
	if !IsPow2(nonzero) || nonzero > n {
		panic(fmt.Sprintf("dsp: batch FFT nonzero prefix %d must be a power of two <= %d", nonzero, n))
	}
	src := Plan(n)
	bp := &BatchPlan{n: n, nonzero: nonzero, z: n / nonzero}

	// Prefix bit-reversal as an explicit swap list. For i < nonzero the
	// full-size permutation satisfies perm[i] = rev_m(i)·z with
	// m = nonzero, so rev_m(i) = perm[i]/z and every swap stays inside
	// the prefix (see FFTPlan.ForwardPruned).
	for i := 0; i < nonzero; i++ {
		if j := src.perm[i] / bp.z; i < j {
			bp.swaps = append(bp.swaps, int32(i), int32(j))
		}
	}

	// Compact per-stage twiddles for every stage the pruned cascade
	// runs: sizes firstSize, 2·firstSize, …, n.
	firstSize := 2 * bp.z
	if bp.z == 1 {
		firstSize = 2
	}
	for size := firstSize; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		st := batchStage{
			size: size,
			twr:  make([]float64, half),
			twi:  make([]float64, half),
		}
		for j := 0; j < half; j++ {
			w := src.twiddles[j*step]
			st.twr[j] = real(w)
			st.twi[j] = imag(w)
		}
		bp.stages = append(bp.stages, st)
	}

	bp.block = blockElems
	if bp.block > n {
		bp.block = n
	}
	if bp.block < firstSize {
		bp.block = firstSize
	}
	return bp
}

// Size returns the transform size.
func (bp *BatchPlan) Size() int { return bp.n }

// Nonzero returns the planned nonzero prefix length.
func (bp *BatchPlan) Nonzero() int { return bp.nonzero }

// Forward computes the in-place pruned forward DFT of the planar signal
// (re, im), both of length Size(). Only the first Nonzero() entries are
// read as input; the tail is treated as zero regardless of its contents
// and is fully overwritten. The result is bit-identical to
// FFTPlan.ForwardPruned on the equivalent complex128 buffer.
func (bp *BatchPlan) Forward(re, im []float64) {
	if len(re) != bp.n || len(im) != bp.n {
		panic(fmt.Sprintf("dsp: batch FFT input lengths %d/%d do not match plan size %d", len(re), len(im), bp.n))
	}
	bp.transform(re[:bp.n], im[:bp.n])
}

// ForwardBatch computes batch consecutive pruned transforms over the
// planar buffers re and im, each transform occupying one Size()-long
// stride. len(re) and len(im) must be at least batch·Size().
func (bp *BatchPlan) ForwardBatch(re, im []float64, batch int) {
	n := bp.n
	if len(re) < batch*n || len(im) < batch*n {
		panic(fmt.Sprintf("dsp: batch FFT buffers %d/%d too short for %d transforms of %d", len(re), len(im), batch, n))
	}
	for b := 0; b < batch; b++ {
		bp.transform(re[b*n:(b+1)*n], im[b*n:(b+1)*n])
	}
}

func (bp *BatchPlan) transform(re, im []float64) {
	// Prefix bit reversal.
	sw := bp.swaps
	for k := 0; k+1 < len(sw); k += 2 {
		i, j := sw[k], sw[k+1]
		re[i], re[j] = re[j], re[i]
		im[i], im[j] = im[j], im[i]
	}
	if bp.nonzero == 1 {
		// Single nonzero input: the DFT is a constant broadcast.
		vr, vi := re[0], im[0]
		for i := range re {
			re[i] = vr
			im[i] = vi
		}
		return
	}

	// Cache-blocked stages. Blocks run back to front so the fused
	// broadcast stage never overwrites prefix values a lower block has
	// yet to read (block b's prefix reads all land strictly below its
	// own span for b >= 1, and block 0 handles its self-overlap by
	// walking its chunks backwards). Within a block — and again for the
	// full-array tail — consecutive stages run pairwise fused: one pass
	// over the data performs both stages' butterflies with the
	// intermediate values held in registers, halving loads and stores.
	nBlocks := bp.n / bp.block
	inBlock := 0
	for inBlock < len(bp.stages) && bp.stages[inBlock].size <= bp.block {
		inBlock++
	}
	for b := nBlocks - 1; b >= 0; b-- {
		base := b * bp.block
		si := 0
		if bp.z > 1 {
			bp.fusedFirstStage(re, im, base)
			si = 1
		}
		for si < inBlock {
			if si+1 < inBlock {
				bp.stagePairSpan(re, im, base, bp.block, si)
				si += 2
			} else {
				bp.stageSpan(re, im, base, bp.block, si)
				si++
			}
		}
	}
	// Remaining stages span more than one block: full-array passes,
	// still pairwise fused.
	for si := inBlock; si < len(bp.stages); {
		if si+1 < len(bp.stages) {
			bp.stagePairSpan(re, im, 0, bp.n, si)
			si += 2
		} else {
			bp.stageSpan(re, im, 0, bp.n, si)
			si++
		}
	}
}

// fusedFirstStage runs the first butterfly stage (size 2z) of the pruned
// cascade over [base, base+block), reading each 2z-chunk's pair of
// prefix values directly instead of materializing the zero-pad
// broadcast. Chunks walk backwards so the chunk at offset 0 — whose
// output overwrites the prefix entries it reads — loads them into
// locals first.
func (bp *BatchPlan) fusedFirstStage(re, im []float64, base int) {
	z := bp.z
	st := &bp.stages[0]
	twr, twi := st.twr[:z], st.twi[:z]
	if simdAVX2 && z >= 4 {
		// Whole-block kernel: the backward chunk walk, per-chunk prefix
		// broadcasts and stage-output stores run in one asm call — at
		// small z a per-chunk call spent more time in call overhead
		// than in butterflies.
		firstStageBlockAVX2(re, im, base, bp.block, twr, twi)
		return
	}
	for start := base + bp.block - 2*z; start >= base; start -= 2 * z {
		pv := start / z
		v0r, v0i := re[pv], im[pv]
		v1r, v1i := re[pv+1], im[pv+1]
		or := re[start : start+2*z]
		oi := im[start : start+2*z]
		for j := 0; j < z; j++ {
			wr, wi := twr[j], twi[j]
			tr := wr*v1r - wi*v1i
			ti := wr*v1i + wi*v1r
			or[j] = v0r + tr
			oi[j] = v0i + ti
			or[z+j] = v0r - tr
			oi[z+j] = v0i - ti
		}
	}
}

// stageSpan runs butterfly stage si over [base, base+span). The operand
// expressions mirror FFTPlan.butterflies exactly (t = w·b; b' = a − t;
// a' = a + t, with the complex products expanded in the same order), so
// results are bit-identical to the complex128 cascade.
func (bp *BatchPlan) stageSpan(re, im []float64, base, span int, si int) {
	st := &bp.stages[si]
	size := st.size
	half := size >> 1
	if simdAVX2 && half >= 4 {
		// Vector lanes run the identical expressions on independent
		// elements — bit-exact with the scalar body (see simd.go).
		for start := base; start < base+span; start += size {
			stageAVX2(
				re[start:start+half], im[start:start+half],
				re[start+half:start+size], im[start+half:start+size],
				st.twr[:half], st.twi[:half])
		}
		return
	}
	for start := base; start < base+span; start += size {
		ar := re[start : start+half : start+half]
		ai := im[start : start+half : start+half]
		br := re[start+half : start+size : start+size]
		bi := im[start+half : start+size : start+size]
		twr := st.twr[:half]
		twi := st.twi[:half]
		for j := range ar {
			wr, wi := twr[j], twi[j]
			xr, xi := br[j], bi[j]
			tr := wr*xr - wi*xi
			ti := wr*xi + wi*xr
			ur, ui := ar[j], ai[j]
			br[j] = ur - tr
			bi[j] = ui - ti
			ar[j] = ur + tr
			ai[j] = ui + ti
		}
	}
}

// stagePairSpan runs butterfly stages si and si+1 (sizes s and 2s) over
// [base, base+span) in a single pass: each group of four elements
// {a, b, c, d} = {x[j], x[j+s/2], x[j+s], x[j+3s/2]} flows through its
// two size-s butterflies and then its two size-2s butterflies entirely
// in registers before being stored. Every individual butterfly computes
// exactly the operands and operation order of stageSpan — fusing only
// reorders independent butterflies, which cannot change any value — so
// the pass stays bit-identical to running the two stages separately.
func (bp *BatchPlan) stagePairSpan(re, im []float64, base, span int, si int) {
	st1 := &bp.stages[si]
	st2 := &bp.stages[si+1]
	s := st1.size
	h := s >> 1
	if simdAVX2 && h >= 4 {
		// Same fused two-stage flow with the intermediates in vector
		// registers; bit-exact with the scalar body (see simd.go).
		for start := base; start < base+span; start += 2 * s {
			stagePairAVX2(re, im, start, h, st1.twr, st1.twi, st2.twr, st2.twi)
		}
		return
	}
	for start := base; start < base+span; start += 2 * s {
		ar := re[start+0*h : start+1*h : start+1*h]
		ai := im[start+0*h : start+1*h : start+1*h]
		br := re[start+1*h : start+2*h : start+2*h]
		bi := im[start+1*h : start+2*h : start+2*h]
		cr := re[start+2*h : start+3*h : start+3*h]
		ci := im[start+2*h : start+3*h : start+3*h]
		dr := re[start+3*h : start+4*h : start+4*h]
		di := im[start+3*h : start+4*h : start+4*h]
		w1r := st1.twr[:h]
		w1i := st1.twi[:h]
		w2ar := st2.twr[0*h : 1*h : 1*h]
		w2ai := st2.twi[0*h : 1*h : 1*h]
		w2br := st2.twr[1*h : 2*h : 2*h]
		w2bi := st2.twi[1*h : 2*h : 2*h]
		for j := range w1r {
			wr, wi := w1r[j], w1i[j]
			// Stage s, lower block: (a, b).
			xr, xi := br[j], bi[j]
			t1r := wr*xr - wi*xi
			t1i := wr*xi + wi*xr
			ur, ui := ar[j], ai[j]
			b1r := ur - t1r
			b1i := ui - t1i
			a1r := ur + t1r
			a1i := ui + t1i
			// Stage s, upper block: (c, d), same twiddle index.
			yr, yi := dr[j], di[j]
			t2r := wr*yr - wi*yi
			t2i := wr*yi + wi*yr
			vr, vi := cr[j], ci[j]
			d1r := vr - t2r
			d1i := vi - t2i
			c1r := vr + t2r
			c1i := vi + t2i
			// Stage 2s, twiddle j: (a1, c1).
			pr, pi := w2ar[j], w2ai[j]
			t3r := pr*c1r - pi*c1i
			t3i := pr*c1i + pi*c1r
			cr[j] = a1r - t3r
			ci[j] = a1i - t3i
			ar[j] = a1r + t3r
			ai[j] = a1i + t3i
			// Stage 2s, twiddle j + s/2: (b1, d1).
			qr, qi := w2br[j], w2bi[j]
			t4r := qr*d1r - qi*d1i
			t4i := qr*d1i + qi*d1r
			dr[j] = b1r - t4r
			di[j] = b1i - t4i
			br[j] = b1r + t4r
			bi[j] = b1i + t4i
		}
	}
}

// PowerSpectrumPlanar writes |re[i] + i·im[i]|² into dst using the same
// per-element expression as PowerSpectrum, so spectra computed through
// the planar batch path match the complex128 path bit for bit.
func PowerSpectrumPlanar(dst, re, im []float64) {
	dst = dst[:len(re)]
	im = im[:len(re)]
	for i, r := range re {
		m := im[i]
		dst[i] = r*r + m*m
	}
}

var (
	batchPlanMu    sync.Mutex
	batchPlanCache = map[[2]int]*BatchPlan{}
)

// PlanBatch returns a cached planar pruned-FFT plan for (size, nonzero),
// building it on first use. Like Plan, the cache never evicts: the
// receiver uses a handful of (padded size, symbol length) pairs per
// process.
func PlanBatch(n, nonzero int) *BatchPlan {
	key := [2]int{n, nonzero}
	batchPlanMu.Lock()
	defer batchPlanMu.Unlock()
	if bp, ok := batchPlanCache[key]; ok {
		return bp
	}
	bp := NewBatchPlan(n, nonzero)
	batchPlanCache[key] = bp
	return bp
}
