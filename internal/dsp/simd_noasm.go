//go:build !amd64

package dsp

// Non-amd64 builds never flip simdAVX2, so these bodies are
// unreachable; they exist to satisfy the dispatch call sites.

func addIntoAVX2(dst, src []complex128) {
	panic("dsp: AVX2 kernel called without AVX2 support")
}

func addF64AVX2(dst, src []float64) {
	panic("dsp: AVX2 kernel called without AVX2 support")
}

func axpyIntoAVX2(dst, src []complex128, c complex128) {
	panic("dsp: AVX2 kernel called without AVX2 support")
}

func stageAVX2(are, aim, bre, bim, twr, twi []float64) {
	panic("dsp: AVX2 kernel called without AVX2 support")
}

func stagePairAVX2(re, im []float64, start, h int, w1r, w1i, w2r, w2i []float64) {
	panic("dsp: AVX2 kernel called without AVX2 support")
}

func firstStageAVX2(or, oi, twr, twi []float64, v0r, v0i, v1r, v1i float64) {
	panic("dsp: AVX2 kernel called without AVX2 support")
}
