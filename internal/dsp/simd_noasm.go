//go:build !amd64

package dsp

// Non-amd64 builds never flip simdAVX2, so these bodies are
// unreachable; they exist to satisfy the dispatch call sites.

func addIntoAVX2(dst, src []complex128) {
	panic("dsp: AVX2 kernel called without AVX2 support")
}

func addF64AVX2(dst, src []float64) {
	panic("dsp: AVX2 kernel called without AVX2 support")
}

func axpyIntoAVX2(dst, src []complex128, c complex128) {
	panic("dsp: AVX2 kernel called without AVX2 support")
}

func scaleIntoAVX2(dst, src []complex128, c complex128) {
	panic("dsp: AVX2 kernel called without AVX2 support")
}

func stageAVX2(are, aim, bre, bim, twr, twi []float64) {
	panic("dsp: AVX2 kernel called without AVX2 support")
}

func stagePairAVX2(re, im []float64, start, h int, w1r, w1i, w2r, w2i []float64) {
	panic("dsp: AVX2 kernel called without AVX2 support")
}

func firstStageBlockAVX2(re, im []float64, base, block int, twr, twi []float64) {
	panic("dsp: AVX2 kernel called without AVX2 support")
}

func addScaledFloatsAVX2(dst []complex128, src []float64, s float64) {
	panic("dsp: AVX2 kernel called without AVX2 support")
}

func dechirpAVX2(re, im []float64, sym, down []complex128) {
	panic("dsp: AVX2 kernel called without AVX2 support")
}

func synthChains8AVX2(dst []complex128, st *[32]float64, dLr, dLi, mag float64, steps int) {
	panic("dsp: AVX2 kernel called without AVX2 support")
}

func maxPowerAVX2(re, im []float64) float64 {
	panic("dsp: AVX2 kernel called without AVX2 support")
}

func zigFillAVX2(dst []float64, wbuf []uint64, st *Stream, kTab *uint64, wTab *float64) int {
	panic("dsp: AVX2 kernel called without AVX2 support")
}
