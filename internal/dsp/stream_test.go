package dsp

import (
	"math"
	"sort"
	"testing"
)

func TestStreamDeterministicAndSplittable(t *testing.T) {
	a := StreamAt(42, 7)
	b := StreamAt(42, 7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same (seed, index) diverged")
		}
	}
	// Different indices and different seeds must give different
	// sequences.
	c := StreamAt(42, 8)
	d := StreamAt(43, 7)
	base := StreamAt(42, 7)
	sameC, sameD := 0, 0
	for i := 0; i < 64; i++ {
		v := base.Uint64()
		if c.Uint64() == v {
			sameC++
		}
		if d.Uint64() == v {
			sameD++
		}
	}
	if sameC > 2 || sameD > 2 {
		t.Fatalf("derived streams correlate with base: %d/%d matches", sameC, sameD)
	}
}

func TestStreamAtIndexIsNotWorkerDependent(t *testing.T) {
	// The stream index is the only split input: deriving the same index
	// twice, in any order, yields the same stream — the property the
	// tiled channel path's determinism rests on.
	order1 := []uint64{0, 1, 2, 3}
	order2 := []uint64{3, 1, 0, 2}
	got := map[uint64]uint64{}
	for _, i := range order1 {
		st := StreamAt(9, i)
		got[i] = st.Uint64()
	}
	for _, i := range order2 {
		st := StreamAt(9, i)
		if st.Uint64() != got[i] {
			t.Fatalf("stream %d depends on derivation order", i)
		}
	}
}

func TestStreamFloat64Range(t *testing.T) {
	st := NewStream(1)
	for i := 0; i < 100000; i++ {
		v := st.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

// TestNormBatchMatchesNormFloat64 pins the documented equivalence: a
// batch fill consumes the generator exactly as sequential scalar draws
// do, so mixing the two APIs cannot fork the stream.
func TestNormBatchMatchesNormFloat64(t *testing.T) {
	for _, n := range []int{0, 1, 7, 128, 4097} {
		a := StreamAt(5, 11)
		b := StreamAt(5, 11)
		batch := make([]float64, n)
		a.NormBatch(batch)
		for i := 0; i < n; i++ {
			if v := b.NormFloat64(); v != batch[i] {
				t.Fatalf("n=%d: batch[%d] = %v, scalar draw = %v", n, i, batch[i], v)
			}
		}
		// The post-fill states must agree too.
		if a != b {
			t.Fatalf("n=%d: states diverged after fill", n)
		}
	}
}

// moments4 returns mean, variance, skewness and excess-free kurtosis of
// xs.
func moments4(xs []float64) (mean, variance, skew, kurt float64) {
	n := float64(len(xs))
	for _, x := range xs {
		mean += x
	}
	mean /= n
	var m2, m3, m4 float64
	for _, x := range xs {
		d := x - mean
		m2 += d * d
		m3 += d * d * d
		m4 += d * d * d * d
	}
	m2 /= n
	m3 /= n
	m4 /= n
	return mean, m2, m3 / math.Pow(m2, 1.5), m4 / (m2 * m2)
}

// TestNormBatchFirstFourMoments checks the ziggurat sampler's first
// four moments against N(0,1) and against the math/rand oracle drawn at
// the same sample size, with tolerances a few times the standard error.
func TestNormBatchFirstFourMoments(t *testing.T) {
	const n = 400000
	st := NewStream(77)
	xs := make([]float64, n)
	st.NormBatch(xs)
	mean, variance, skew, kurt := moments4(xs)

	oracle := NewRand(77)
	ys := make([]float64, n)
	for i := range ys {
		ys[i] = oracle.NormFloat64()
	}
	omean, ovar, oskew, okurt := moments4(ys)

	// Standard errors at n=4e5: mean ~1.6e-3, var ~2.2e-3, skew ~3.9e-3,
	// kurt ~7.7e-3; allow ~4σ plus the oracle's own wobble.
	checks := []struct {
		name             string
		got, want, oracl float64
		tol              float64
	}{
		{"mean", mean, 0, omean, 0.01},
		{"variance", variance, 1, ovar, 0.015},
		{"skewness", skew, 0, oskew, 0.03},
		{"kurtosis", kurt, 3, okurt, 0.08},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > c.tol {
			t.Errorf("%s = %v, want %v ± %v", c.name, c.got, c.want, c.tol)
		}
		if math.Abs(c.got-c.oracl) > 2*c.tol {
			t.Errorf("%s = %v diverges from oracle %v", c.name, c.got, c.oracl)
		}
	}
}

// normCDF is Φ(x) for the KS reference.
func normCDF(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }

// ksStatistic returns the one-sample Kolmogorov–Smirnov statistic of xs
// (sorted in place) against cdf.
func ksStatistic(xs []float64, cdf func(float64) float64) float64 {
	sort.Float64s(xs)
	n := float64(len(xs))
	d := 0.0
	for i, x := range xs {
		f := cdf(x)
		if hi := float64(i+1)/n - f; hi > d {
			d = hi
		}
		if lo := f - float64(i)/n; lo > d {
			d = lo
		}
	}
	return d
}

// TestNormBatchKolmogorovSmirnov runs a one-sample KS test of the
// ziggurat sampler against Φ at α≈0.001 (critical value 1.95/√n), and
// requires the math/rand oracle to pass the identical test, so a
// too-strict threshold would flag itself.
func TestNormBatchKolmogorovSmirnov(t *testing.T) {
	const n = 200000
	crit := 1.95 / math.Sqrt(n)

	st := NewStream(123)
	xs := make([]float64, n)
	st.NormBatch(xs)
	if d := ksStatistic(xs, normCDF); d > crit {
		t.Errorf("ziggurat KS statistic %v exceeds %v", d, crit)
	}

	oracle := NewRand(123)
	ys := make([]float64, n)
	for i := range ys {
		ys[i] = oracle.NormFloat64()
	}
	if d := ksStatistic(ys, normCDF); d > crit {
		t.Errorf("oracle KS statistic %v exceeds %v (threshold too strict)", d, crit)
	}
}

// TestNormBatchChiSquare bins ziggurat samples into 32 equiprobable
// cells of Φ and checks the χ² statistic against the 31-dof 0.999
// quantile (~61.1); the oracle must pass identically.
func TestNormBatchChiSquare(t *testing.T) {
	const n = 320000
	const cells = 32
	const crit = 61.1

	chi2 := func(xs []float64) float64 {
		var counts [cells]int
		for _, x := range xs {
			c := int(normCDF(x) * cells)
			if c >= cells {
				c = cells - 1
			}
			counts[c]++
		}
		expected := float64(n) / cells
		sum := 0.0
		for _, c := range counts {
			d := float64(c) - expected
			sum += d * d / expected
		}
		return sum
	}

	st := NewStream(99)
	xs := make([]float64, n)
	st.NormBatch(xs)
	if got := chi2(xs); got > crit {
		t.Errorf("ziggurat χ² = %v exceeds %v", got, crit)
	}
	oracle := NewRand(99)
	ys := make([]float64, n)
	for i := range ys {
		ys[i] = oracle.NormFloat64()
	}
	if got := chi2(ys); got > crit {
		t.Errorf("oracle χ² = %v exceeds %v (threshold too strict)", got, crit)
	}
}

// TestStreamCrossCorrelation checks that sibling streams are
// decorrelated: the empirical correlation of N(0,1) draws from streams
// i and i+1 stays within a few standard errors of zero.
func TestStreamCrossCorrelation(t *testing.T) {
	const n = 100000
	for _, pair := range [][2]uint64{{0, 1}, {5, 6}, {1000, 1001}} {
		a := StreamAt(31, pair[0])
		b := StreamAt(31, pair[1])
		xs := make([]float64, n)
		ys := make([]float64, n)
		a.NormBatch(xs)
		b.NormBatch(ys)
		sum := 0.0
		for i := range xs {
			sum += xs[i] * ys[i]
		}
		corr := sum / n
		if math.Abs(corr) > 4/math.Sqrt(n) {
			t.Errorf("streams %d/%d correlate: %v", pair[0], pair[1], corr)
		}
	}
}

func TestNormBatchZeroAlloc(t *testing.T) {
	st := NewStream(3)
	buf := make([]float64, 4096)
	allocs := testing.AllocsPerRun(10, func() { st.NormBatch(buf) })
	if allocs != 0 {
		t.Fatalf("NormBatch allocates %.1f objects/op", allocs)
	}
}
