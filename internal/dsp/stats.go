package dsp

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// MinMax returns the smallest and largest elements of xs.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// CDF is an empirical cumulative distribution function over a sample set.
// The paper reports several results as CDFs (Figs. 4, 9, 14) and
// complementary CDFs (Figs. 14b, 15a).
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from samples (the input is copied).
func NewCDF(samples []float64) *CDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the number of samples.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Complementary returns P(X > x) = 1 - CDF(x).
func (c *CDF) Complementary(x float64) float64 {
	return 1 - c.At(x)
}

// Quantile returns the p-quantile (p in [0,1]) of the sample set.
func (c *CDF) Quantile(p float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	p = Clamp(p, 0, 1)
	i := int(p * float64(len(c.sorted)-1))
	return c.sorted[i]
}

// Samples exposes the sorted sample set (do not modify).
func (c *CDF) Samples() []float64 { return c.sorted }

// Evaluate returns the CDF value at each x in xs.
func (c *CDF) Evaluate(xs []float64) []float64 {
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = c.At(x)
	}
	return ys
}

// Linspace returns n evenly spaced points covering [lo, hi] inclusive.
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}
