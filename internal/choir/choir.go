// Package choir models the Choir comparison of §2.2: decoding
// concurrent LoRa transmissions by the fractional FFT-bin offsets that
// hardware imperfections induce. It provides the paper's two analytic
// collision formulas, Monte-Carlo counterparts, and the Fig. 4
// experiment showing why the trick fails for backscatter — baseband
// (< 10 MHz) devices have ~90x smaller absolute frequency offsets than
// 900 MHz radios, compressing every device into a fraction of one bin.
package choir

import (
	"math"

	"netscatter/internal/chirp"
	"netscatter/internal/dsp"
	"netscatter/internal/radio"
)

// FracResolution is the fractional-bin resolution Choir relies on
// (one-tenth of an FFT bin, §2.2).
const FracResolution = 10

// UniqueFractionProb returns the probability that n concurrent
// transmitters all occupy distinct tenth-of-a-bin fractions:
// 10!/((10-n)!·10^n). For n = 5 this is only ~30%, the paper's argument
// for why Choir tops out at 5-10 devices.
func UniqueFractionProb(n int) float64 {
	if n > FracResolution {
		return 0
	}
	p := 1.0
	for i := 0; i < n; i++ {
		p *= float64(FracResolution-i) / FracResolution
	}
	return p
}

// SameShiftCollisionProb returns the probability that at least two of n
// transmitters pick the same cyclic shift in one symbol:
// 1 - Π_{i=1..n}(1 - (i-1)/2^SF), ~ n(n-1)/2^(SF+1) (§2.2). For SF 9,
// n = 10 this is ~9%, rising to ~32% at n = 20.
func SameShiftCollisionProb(n, sf int) float64 {
	bins := float64(int(1) << sf)
	p := 1.0
	for i := 1; i <= n; i++ {
		p *= 1 - float64(i-1)/bins
	}
	return 1 - p
}

// SameShiftCollisionApprox is the paper's small-n approximation
// n(n-1)/2^(SF+1).
func SameShiftCollisionApprox(n, sf int) float64 {
	return float64(n*(n-1)) / float64(int(1)<<(sf+1))
}

// MonteCarloSameShift estimates SameShiftCollisionProb empirically.
func MonteCarloSameShift(n, sf, trials int, rng *dsp.Rand) float64 {
	bins := 1 << sf
	collisions := 0
	seen := make([]int, bins)
	for t := 1; t <= trials; t++ {
		hit := false
		for i := 0; i < n; i++ {
			b := rng.Intn(bins)
			if seen[b] == t {
				hit = true
				break
			}
			seen[b] = t
		}
		if hit {
			collisions++
		}
	}
	return float64(collisions) / float64(trials)
}

// MonteCarloUniqueFraction estimates UniqueFractionProb empirically.
func MonteCarloUniqueFraction(n, trials int, rng *dsp.Rand) float64 {
	unique := 0
	var seen [FracResolution]int
	for t := 1; t <= trials; t++ {
		ok := true
		for i := 0; i < n; i++ {
			f := rng.Intn(FracResolution)
			if seen[f] == t {
				ok = false
				break
			}
			seen[f] = t
		}
		if ok {
			unique++
		}
	}
	return float64(unique) / float64(trials)
}

// OffsetSamples draws the |ΔFFTbin| samples of Fig. 4 for nDevices of
// each kind: 900 MHz LoRa radios versus ~3 MHz-baseband backscatter
// tags, both with crystal tolerances of ppmSigma (clipped at maxPPM),
// at the given chirp configuration. Each device also contributes the
// per-packet drift of its oscillator model.
func OffsetSamples(p chirp.Params, nDevices, packetsPerDevice int, ppmSigma, maxPPM float64, rng *dsp.Rand) (radios, tags []float64) {
	for d := 0; d < nDevices; d++ {
		ro := radio.NewRadioOscillator(rng, ppmSigma, maxPPM)
		bo := radio.NewBackscatterOscillator(rng, ppmSigma, maxPPM)
		for k := 0; k < packetsPerDevice; k++ {
			radios = append(radios, math.Abs(p.FreqOffsetToBins(ro.PacketOffsetHz(rng))))
			tags = append(tags, math.Abs(p.FreqOffsetToBins(bo.PacketOffsetHz(rng))))
		}
	}
	return radios, tags
}
