package choir

import (
	"math"
	"sort"

	"netscatter/internal/chirp"
	"netscatter/internal/dsp"
)

// Decoder implements Choir-style concurrent LoRa decoding (§2.2,
// citing Eletreby et al., SIGCOMM'17): multiple *classic* LoRa
// transmitters (each encoding SF bits per symbol as a cyclic shift)
// collide on the same channel, and the receiver disambiguates them by
// the fractional part of each FFT peak — the per-device hardware
// frequency offset, stable across a packet, acts as a fingerprint at a
// tenth-of-a-bin resolution.
//
// The paper's argument, which this implementation lets you verify
// experimentally (experiment C1/F4 give the statistics; the decoder
// tests give the mechanism): the trick works for a handful of 900 MHz
// radios whose offsets span many bins, and cannot work for backscatter
// devices whose baseband offsets compress every fingerprint into a
// third of a bin.
type Decoder struct {
	p   chirp.Params
	dem *chirp.Demodulator
	// Resolution is the fingerprint granularity in bins (0.1 = the
	// tenth-of-a-bin figure from the paper).
	Resolution float64
}

// NewDecoder builds a Choir decoder for the parameter set.
func NewDecoder(p chirp.Params) *Decoder {
	return &Decoder{
		p:          p,
		dem:        chirp.NewDemodulator(p, 16),
		Resolution: 0.1,
	}
}

// peakObs is one FFT peak in one symbol.
type peakObs struct {
	frac  float64 // fractional part in (-0.5, 0.5]
	shift int     // integer cyclic shift (the LoRa symbol value)
	power float64
}

// Decode recovers per-device symbol streams from a superposition of
// nDevices classic LoRa transmitters. The stream must hold nSymbols
// symbol periods. Devices are identified by clustering peak fractional
// offsets; the returned slice has one symbol sequence per discovered
// device (up to nDevices), strongest cluster first. A symbol is -1
// where the device's peak could not be attributed (e.g. two devices
// picked the same cyclic shift that interval — the collision case the
// paper quantifies).
func (d *Decoder) Decode(sig []complex128, nDevices, nSymbols int) [][]int {
	n := d.p.N()
	// Collect the nDevices strongest peaks per symbol.
	obs := make([][]peakObs, nSymbols)
	var allFracs []float64
	for s := 0; s < nSymbols; s++ {
		spec := d.dem.Spectrum(sig[s*n : (s+1)*n])
		obs[s] = d.topPeaks(spec, nDevices)
		for _, o := range obs[s] {
			allFracs = append(allFracs, o.frac)
		}
	}
	// Cluster fingerprints at the fractional-bin resolution.
	centers := clusterFracs(allFracs, d.Resolution, nDevices)

	out := make([][]int, len(centers))
	for i := range out {
		out[i] = make([]int, nSymbols)
		for s := range out[i] {
			out[i][s] = -1
		}
	}
	// Attribute each symbol's peaks to the nearest fingerprint.
	for s := 0; s < nSymbols; s++ {
		used := make([]bool, len(centers))
		for _, o := range obs[s] {
			best, bestDist := -1, d.Resolution
			for c, center := range centers {
				if used[c] {
					continue
				}
				if dist := math.Abs(o.frac - center); dist < bestDist {
					best, bestDist = c, dist
				}
			}
			if best >= 0 {
				out[best][s] = o.shift
				used[best] = true
			}
		}
	}
	return out
}

// topPeaks returns the k strongest well-separated peaks of a spectrum.
func (d *Decoder) topPeaks(spec []float64, k int) []peakObs {
	peaks := dsp.FindPeaksAbove(spec, 0)
	sort.Slice(peaks, func(i, j int) bool { return peaks[i].Power > peaks[j].Power })
	var out []peakObs
	zp := d.dem.ZeroPad()
	minSep := zp / 2
	for _, p := range peaks {
		if len(out) >= k {
			break
		}
		tooClose := false
		for _, o := range out {
			existing := int(math.Round((float64(o.shift) + o.frac) * float64(zp)))
			if dsp.CircularDistance(p.Bin, existing, len(spec)) < minSep {
				tooClose = true
				break
			}
		}
		if tooClose {
			continue
		}
		bin := d.dem.BinOf(p.Bin)
		shift := int(math.Round(bin))
		frac := bin - float64(shift)
		shift = dsp.WrapIndex(shift, d.p.N())
		out = append(out, peakObs{frac: frac, shift: shift, power: p.Power})
	}
	return out
}

// clusterFracs finds up to k cluster centers among fractional offsets
// using a simple greedy histogram at the given resolution.
func clusterFracs(fracs []float64, resolution float64, k int) []float64 {
	if len(fracs) == 0 {
		return nil
	}
	type bucket struct {
		sum   float64
		count int
	}
	buckets := map[int]*bucket{}
	for _, f := range fracs {
		idx := int(math.Round(f / resolution))
		b := buckets[idx]
		if b == nil {
			b = &bucket{}
			buckets[idx] = b
		}
		b.sum += f
		b.count++
	}
	type cand struct {
		center float64
		count  int
	}
	var cands []cand
	for _, b := range buckets {
		cands = append(cands, cand{b.sum / float64(b.count), b.count})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].count > cands[j].count })
	var centers []float64
	for _, c := range cands {
		if len(centers) >= k {
			break
		}
		distinct := true
		for _, existing := range centers {
			if math.Abs(existing-c.center) < resolution {
				distinct = false
				break
			}
		}
		if distinct {
			centers = append(centers, c.center)
		}
	}
	sort.Float64s(centers)
	return centers
}
