package choir

import (
	"math"
	"testing"
	"testing/quick"

	"netscatter/internal/chirp"
	"netscatter/internal/dsp"
)

func TestPaperQuotedNumbers(t *testing.T) {
	// §2.2: unique-fraction probability ~30% at N=5.
	if got := UniqueFractionProb(5); math.Abs(got-0.302) > 0.005 {
		t.Fatalf("UniqueFractionProb(5) = %v, want ~0.30", got)
	}
	// Same-shift collisions at SF 9: ~9% for N=10, ~32% for N=20.
	if got := SameShiftCollisionProb(10, 9); math.Abs(got-0.085) > 0.01 {
		t.Fatalf("collision(10) = %v, want ~0.09", got)
	}
	if got := SameShiftCollisionProb(20, 9); math.Abs(got-0.31) > 0.02 {
		t.Fatalf("collision(20) = %v, want ~0.32", got)
	}
}

func TestUniqueFractionEdge(t *testing.T) {
	if UniqueFractionProb(1) != 1 {
		t.Fatal("single device always unique")
	}
	if UniqueFractionProb(11) != 0 {
		t.Fatal("pigeonhole: 11 devices cannot be unique in 10 fractions")
	}
}

func TestAnalyticVsApprox(t *testing.T) {
	// The paper's small-n approximation should track the exact value.
	for _, n := range []int{2, 5, 10} {
		exact := SameShiftCollisionProb(n, 9)
		approx := SameShiftCollisionApprox(n, 9)
		if math.Abs(exact-approx)/exact > 0.1 {
			t.Fatalf("n=%d: exact %v vs approx %v", n, exact, approx)
		}
	}
}

func TestMonteCarloAgreement(t *testing.T) {
	rng := dsp.NewRand(1)
	for _, n := range []int{5, 10, 20} {
		mc := MonteCarloSameShift(n, 9, 50000, rng)
		exact := SameShiftCollisionProb(n, 9)
		if math.Abs(mc-exact) > 0.02 {
			t.Fatalf("n=%d: MC %v vs exact %v", n, mc, exact)
		}
	}
	mc := MonteCarloUniqueFraction(5, 50000, rng)
	if math.Abs(mc-UniqueFractionProb(5)) > 0.02 {
		t.Fatalf("unique-fraction MC %v", mc)
	}
}

func TestCollisionMonotonicQuick(t *testing.T) {
	f := func(raw uint8) bool {
		n := int(raw)%30 + 2
		// More devices, more collisions; higher SF, fewer.
		return SameShiftCollisionProb(n+1, 9) >= SameShiftCollisionProb(n, 9) &&
			SameShiftCollisionProb(n, 10) <= SameShiftCollisionProb(n, 9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOffsetSamplesScale(t *testing.T) {
	// The backscatter offsets must be dramatically smaller than the
	// radio offsets (the ~90x baseband argument).
	rng := dsp.NewRand(2)
	p := chirp.Default500k9
	radios, tags := OffsetSamples(p, 50, 10, 3, 7.5, rng)
	if len(radios) != 500 || len(tags) != 500 {
		t.Fatalf("sample counts %d/%d", len(radios), len(tags))
	}
	rm := dsp.Mean(radios)
	tm := dsp.Mean(tags)
	if rm < 20*tm {
		t.Fatalf("radio offsets (%v bins) should dwarf backscatter (%v bins)", rm, tm)
	}
	// Backscatter stays under a third of a bin (Fig. 4).
	tc := dsp.NewCDF(tags)
	if tc.At(1.0/3) < 0.99 {
		t.Fatalf("backscatter offsets exceed 1/3 bin too often: %v", tc.At(1.0/3))
	}
}
