package choir

import (
	"testing"

	"netscatter/internal/air"
	"netscatter/internal/chirp"
	"netscatter/internal/css"
	"netscatter/internal/dsp"
)

// choirScenario synthesizes nDev concurrent classic-LoRa transmitters
// with the given per-device frequency offsets and returns the decode
// accuracy of the Choir decoder.
func choirScenario(t *testing.T, offsetsHz []float64, nSymbols int, seed int64) float64 {
	t.Helper()
	p := chirp.Params{SF: 7, BW: 125e3, Oversample: 1}
	rng := dsp.NewRand(seed)
	nDev := len(offsetsHz)

	modem := css.NewModem(p, 1)
	truth := make([][]int, nDev)
	var txs []air.Transmission
	for d := 0; d < nDev; d++ {
		truth[d] = make([]int, nSymbols)
		for s := range truth[d] {
			truth[d][s] = rng.Intn(p.Chips())
		}
		wave := modem.ModulateSymbols(nil, truth[d])
		txs = append(txs, air.Transmission{
			Waveform:     wave,
			SNRdB:        12,
			FreqOffsetHz: offsetsHz[d],
		})
	}
	ch := air.NewChannel(p, rng)
	sig := ch.Receive(nSymbols*p.N(), txs)

	dec := NewDecoder(p)
	got := dec.Decode(sig, nDev, nSymbols)

	// Match decoded streams to ground truth by best overlap: a stream
	// belongs to the device whose symbols it matches most.
	correct, total := 0, nDev*nSymbols
	for d := 0; d < nDev; d++ {
		// Expected fractional fingerprint of this device.
		best := 0
		for _, stream := range got {
			m := 0
			for s := 0; s < nSymbols; s++ {
				if stream[s] == truth[d][s] {
					m++
				}
			}
			if m > best {
				best = m
			}
		}
		correct += best
	}
	return float64(correct) / float64(total)
}

func TestChoirDecodesSeparatedRadios(t *testing.T) {
	// Three radios with well-separated fractional offsets (0.0, 0.3,
	// -0.35 bins): Choir's regime. Expect high symbol accuracy (losses
	// come only from same-shift collisions, ~2% for 3 devices at SF 7).
	p := chirp.Params{SF: 7, BW: 125e3, Oversample: 1}
	offsets := []float64{
		0.00 * p.BinHz(),
		0.30 * p.BinHz(),
		-0.35 * p.BinHz(),
	}
	acc := choirScenario(t, offsets, 40, 1)
	if acc < 0.85 {
		t.Fatalf("separated radios: accuracy %.2f, want > 0.85", acc)
	}
}

func TestChoirFailsForBackscatterOffsets(t *testing.T) {
	// The same three devices with backscatter-grade offsets (all within
	// ±0.03 bins — a 3 MHz subcarrier with tens of ppm): the
	// fingerprints collapse into one resolution cell and the decoder
	// cannot attribute symbols. This is §2.2's core argument for why
	// NetScatter cannot just reuse Choir.
	p := chirp.Params{SF: 7, BW: 125e3, Oversample: 1}
	offsets := []float64{
		0.00 * p.BinHz(),
		0.02 * p.BinHz(),
		-0.03 * p.BinHz(),
	}
	acc := choirScenario(t, offsets, 40, 2)
	if acc > 0.75 {
		t.Fatalf("backscatter offsets: accuracy %.2f — should degrade well below the radio case", acc)
	}
}

func TestChoirAccuracyDropsWithDeviceCount(t *testing.T) {
	// Even for radios, Choir degrades as devices multiply (fingerprint
	// collisions + same-shift collisions): the scaling wall NetScatter
	// removes.
	p := chirp.Params{SF: 7, BW: 125e3, Oversample: 1}
	rng := dsp.NewRand(3)
	mkOffsets := func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = rng.Uniform(-0.5, 0.5) * p.BinHz()
		}
		return out
	}
	acc3 := choirScenario(t, mkOffsets(3), 30, 4)
	acc8 := choirScenario(t, mkOffsets(8), 30, 5)
	if acc8 >= acc3 {
		t.Fatalf("accuracy should drop with device count: 3 dev %.2f vs 8 dev %.2f", acc3, acc8)
	}
}

func TestClusterFracs(t *testing.T) {
	fracs := []float64{0.1, 0.11, 0.09, -0.3, -0.31, -0.29, 0.1}
	centers := clusterFracs(fracs, 0.1, 2)
	if len(centers) != 2 {
		t.Fatalf("centers = %v", centers)
	}
	if centers[0] > -0.25 || centers[0] < -0.35 {
		t.Fatalf("first center %v", centers[0])
	}
	if centers[1] < 0.05 || centers[1] > 0.15 {
		t.Fatalf("second center %v", centers[1])
	}
	if got := clusterFracs(nil, 0.1, 3); got != nil {
		t.Fatal("empty input should yield nil")
	}
}
