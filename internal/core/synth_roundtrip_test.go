package core

// End-to-end golden requirement of the synth engine: frames synthesized
// through the phase recurrence (including the mixed fast path the
// simulator uses) must decode bit-exact — same detections, same bits,
// same payloads — as the paper's operating conditions demand.

import (
	"bytes"
	"testing"

	"netscatter/internal/air"
	"netscatter/internal/chirp"
	"netscatter/internal/dsp"
)

// TestSynthFramesDecodeBitExact runs a deterministic multi-device round
// — fractional delays, oscillator offsets, a weak device, unit noise —
// through the mixed synthesis path and requires every frame to decode
// to exactly the transmitted bits.
func TestSynthFramesDecodeBitExact(t *testing.T) {
	p := chirp.Params{SF: 8, BW: 250e3, Oversample: 1}
	book, err := NewCodeBook(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := dsp.NewRand(77)
	payloads := [][]byte{
		{0xDE, 0xAD, 0xBE},
		{0x01, 0x02, 0x03},
		{0xFF, 0x00, 0xAA},
		{0x42, 0x42, 0x42},
	}
	slots := []int{0, book.Slots() / 4, book.Slots() / 2, book.Slots() - 1}
	delays := []float64{0, 0.21, 0.44, 0.35}
	offsets := []float64{0, 180, -220, 90}
	snrs := []float64{14, 9, 7, 11}

	bitsLen := len(payloads[0])*8 + CRCBits
	var txs []air.Transmission
	shifts := make([]int, len(payloads))
	for i := range payloads {
		shifts[i] = book.ShiftOfSlot(slots[i])
		enc := NewEncoder(p, shifts[i])
		bits := FrameBits(payloads[i])
		txs = append(txs, air.Transmission{
			Mixed: func(dst []complex128, frac, freqHz float64, gain complex128) []complex128 {
				return enc.FrameBitsWaveformMixedInto(dst, bits, frac, freqHz, gain)
			},
			SNRdB:        snrs[i],
			DelaySec:     delays[i] / p.BW,
			FreqOffsetHz: offsets[i],
		})
	}
	ch := air.NewChannel(p, rng)
	sig := ch.Receive(ch.FrameLength(PreambleSymbols+bitsLen, 2), txs)
	dec := NewDecoder(book, DefaultDecoderConfig(2))
	res, err := dec.DecodeFrame(sig, 0, shifts, bitsLen)
	if err != nil {
		t.Fatal(err)
	}
	for i, dev := range res.Devices {
		if !dev.Detected {
			t.Fatalf("device %d not detected", i)
		}
		want := FrameBits(payloads[i])
		if !bytes.Equal(dev.Bits, want) {
			t.Errorf("device %d bits = %v, want %v (must be bit-exact)", i, dev.Bits, want)
		}
		if !dev.CRCOK || !bytes.Equal(dev.Payload, payloads[i]) {
			t.Errorf("device %d payload = %x CRCOK=%v, want %x", i, dev.Payload, dev.CRCOK, payloads[i])
		}
	}
}

// FuzzDecoderRoundTrip fuzzes the whole transmit-receive chain: a
// random payload on a random slot with random fractional timing, a
// small oscillator offset and an SNR above the paper's operating point
// must always decode to the transmitted bits. Failures reproduce
// deterministically from the fuzz input (the noise seed is part of it).
func FuzzDecoderRoundTrip(f *testing.F) {
	f.Add(int64(1), uint16(3), uint16(0), []byte{0xA5, 0x3C})
	f.Add(int64(9), uint16(60), uint16(0xFFFF), []byte{0x00})
	f.Add(int64(123), uint16(17), uint16(0x1234), []byte{0xFF, 0x01, 0x80})
	f.Add(int64(-5), uint16(40), uint16(777), []byte{0x55, 0xAA})
	f.Fuzz(func(t *testing.T, seed int64, slot uint16, knobs uint16, payload []byte) {
		if len(payload) == 0 || len(payload) > 4 {
			return
		}
		p := testParams // SF 7, 125 kHz
		book, err := NewCodeBook(p, 2)
		if err != nil {
			t.Fatal(err)
		}
		shift := book.ShiftOfSlot(int(slot) % book.Slots())
		snr := 8 + float64(knobs%8)                        // [8, 15] dB: above operating point
		frac := float64((knobs>>3)%100) / 100 * 0.45       // [0, 0.45) bins of timing error
		dfBins := (float64((knobs>>10)%32)/32 - 0.5) * 0.4 // ±0.2 bins of CFO
		enc := NewEncoder(p, shift)
		bits := FrameBits(payload)
		tx := air.Transmission{
			Mixed: func(dst []complex128, fr, freqHz float64, gain complex128) []complex128 {
				return enc.FrameBitsWaveformMixedInto(dst, bits, fr, freqHz, gain)
			},
			SNRdB:        snr,
			DelaySec:     frac / p.BW,
			FreqOffsetHz: p.BinsToFreqOffset(dfBins),
		}
		ch := air.NewChannel(p, dsp.NewRand(seed))
		sig := ch.Receive(ch.FrameLength(PreambleSymbols+len(bits), 2), []air.Transmission{tx})
		dec := NewDecoder(book, DefaultDecoderConfig(2))
		res, err := dec.DecodeFrame(sig, 0, []int{shift}, len(bits))
		if err != nil {
			t.Fatal(err)
		}
		dev := res.Devices[0]
		if !dev.Detected {
			t.Fatalf("undetected: slot=%d snr=%.1f frac=%.3f dfBins=%.3f seed=%d", slot, snr, frac, dfBins, seed)
		}
		if !bytes.Equal(dev.Bits, bits) {
			t.Fatalf("bit errors: got %v want %v (slot=%d snr=%.1f frac=%.3f dfBins=%.3f seed=%d)",
				dev.Bits, bits, slot, snr, frac, dfBins, seed)
		}
		if !dev.CRCOK || !bytes.Equal(dev.Payload, payload) {
			t.Fatalf("payload mismatch: got %x want %x", dev.Payload, payload)
		}
	})
}
