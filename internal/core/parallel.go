package core

import (
	"fmt"

	"netscatter/internal/chirp"
	"netscatter/internal/pool"
)

// Symbol-batch sizing for the parallel pipeline: workers claim whole
// runs of symbols, not single symbols, so each work item amortizes one
// planar batch pass (dechirp + pruned FFT + scan) and the pool's
// per-item overhead. The preamble is only six symbols, so its tiles are
// small to keep some fan-out; payload runs are long enough for full
// tiles.
const (
	preBatchSymbols = 2
	payBatchSymbols = 8
)

// ParallelDecoder fans the symbol-batch work of DecodeFrame — dechirp,
// pruned planar FFT, noise quantile, candidate window scan — across a
// bounded worker set, one chirp.Demodulator per worker. Each work item
// is a whole run of symbols through the batched front-end
// (chirp.SpectraBatchInto / chirp.ScanBatch), writing disjoint slices
// of the shared arenas. Everything that determines the decode outcome
// (statistic accumulation, thresholds, CRC, ghost rejection) runs
// serially in a fixed order on the embedded serial Decoder's arenas, so
// the parallel decoder's FrameDecode is bit-identical to the serial
// decoder's — and hence to DecodeFrameOracle's — for the same input.
//
// Like Decoder, a ParallelDecoder is not safe for concurrent use (it is
// itself the concurrency), and its results alias decoder-owned storage
// valid until the next DecodeFrame call.
type ParallelDecoder struct {
	dec     *Decoder
	workers []*decodeWorker

	preArena []float64
	preSpec  [PreambleUpSymbols][]float64

	// Persistent phase funcs plus the in-flight call state they read;
	// fresh closures per DecodeFrame would put two heap allocations
	// back on the steady-state path.
	preWorker                               func(w, batch int)
	payWorker                               func(w, batch int)
	curSig                                  []complex128
	curStart                                int
	curPayStart, curHalfIdx, curPayloadBits int

	// curPre is the arena phase-1 workers write preamble spectra into:
	// preArena normally, the caller's emit arena on DecodeFrameEmit.
	// curEmitPay, non-nil only during DecodeFrameEmit, is the payload
	// section of the emit arena for phase-2 ScanBatchEmit calls.
	curPre     []float64
	curEmitPay []float64
}

// decodeWorker is one worker's private state: a demodulator (FFT and
// planar batch scratch are per-instance) plus a quantile buffer. The
// pool guarantees a worker id never runs two items concurrently, so no
// locking is needed.
type decodeWorker struct {
	dem   *chirp.Demodulator
	quant []float64
}

// NewParallelDecoder builds a parallel decoder over a code book with the
// given worker count; workers <= 0 means pool.Size() (GOMAXPROCS). One
// worker degrades gracefully to the serial path with zero goroutines.
//
// Worker 0 — the caller's own lane — shares the serial decoder's
// demodulator, and further workers materialize their demodulators only
// when the shared pool actually hands them work, so a decoder built in
// a saturated sweep (where nested fan-out runs inline) costs one
// demodulator, not GOMAXPROCS of them.
func NewParallelDecoder(book *CodeBook, cfg DecoderConfig, workers int) *ParallelDecoder {
	if workers <= 0 {
		workers = pool.Size()
	}
	pd := &ParallelDecoder{dec: NewDecoder(book, cfg)}
	pd.workers = make([]*decodeWorker, workers)
	pd.workers[0] = &decodeWorker{dem: pd.dec.dem}
	bins := pd.dec.dem.PaddedBins()
	pd.preArena = make([]float64, PreambleUpSymbols*bins)
	for sym := range pd.preSpec {
		pd.preSpec[sym] = pd.preArena[sym*bins : (sym+1)*bins]
	}
	pd.preWorker = pd.preBatch
	pd.payWorker = pd.payBatch
	return pd
}

// batchCount returns how many batch work items cover n symbols.
func batchCount(n, tile int) int {
	return (n + tile - 1) / tile
}

// preBatch computes one preamble symbol batch — spectra into the shared
// arena plus per-symbol noise quantiles — for the in-flight DecodeFrame
// (phase 1 work item).
func (pd *ParallelDecoder) preBatch(w, batch int) {
	d := pd.dec
	n := d.book.Params().N()
	lo := batch * preBatchSymbols
	hi := min(PreambleUpSymbols, lo+preBatchSymbols)
	wk := pd.worker(w)
	bins := wk.dem.PaddedBins()
	wk.dem.SpectraBatchInto(pd.curPre[lo*bins:hi*bins], pd.curSig, pd.curStart+lo*n, hi-lo)
	for sym := lo; sym < hi; sym++ {
		if d.cfg.NoiseFloor > 0 {
			d.noisePerSym[sym] = d.cfg.NoiseFloor
		} else {
			d.noisePerSym[sym], wk.quant = noiseQuantile(wk.quant, pd.preSpec[sym])
		}
	}
}

// payBatch runs one payload symbol batch through the fused
// dechirp+FFT+scan kernel, scattering peak powers into the shared
// candidate-major arena (phase 2 work item). Batches own disjoint
// symbol columns, so every (candidate, symbol) cell is written by
// exactly one worker.
func (pd *ParallelDecoder) payBatch(w, batch int) {
	d := pd.dec
	lo := batch * payBatchSymbols
	hi := min(pd.curPayloadBits, lo+payBatchSymbols)
	wk := pd.worker(w)
	if pd.curEmitPay != nil {
		wk.dem.ScanBatchEmit(pd.curSig, pd.curPayStart, lo, hi-lo, d.payCenter, pd.curHalfIdx, d.powers, pd.curPayloadBits, pd.curEmitPay)
		return
	}
	wk.dem.ScanBatch(pd.curSig, pd.curPayStart, lo, hi-lo, d.payCenter, pd.curHalfIdx, d.powers, pd.curPayloadBits)
}

// worker returns worker w's state, materializing it on first use. Safe
// without locks: the pool runs each worker id on exactly one goroutine
// at a time, and successive ForEachWorker phases are ordered by its
// WaitGroup, so slot w is only ever touched by w's current goroutine.
func (pd *ParallelDecoder) worker(w int) *decodeWorker {
	wk := pd.workers[w]
	if wk == nil {
		wk = &decodeWorker{dem: chirp.NewDemodulator(pd.dec.book.Params(), pd.dec.cfg.ZeroPad)}
		pd.workers[w] = wk
	}
	return wk
}

// Serial returns the embedded serial decoder (which shares this
// decoder's result arenas — do not interleave DecodeFrame calls on both
// while holding results).
func (pd *ParallelDecoder) Serial() *Decoder { return pd.dec }

// Book returns the decoder's code book.
func (pd *ParallelDecoder) Book() *CodeBook { return pd.dec.Book() }

// Workers returns the worker count.
func (pd *ParallelDecoder) Workers() int { return len(pd.workers) }

// DecodeFrame is Decoder.DecodeFrame with the symbol batches computed in
// parallel. Output is bit-identical to the serial path.
func (pd *ParallelDecoder) DecodeFrame(sig []complex128, start int, shifts []int, payloadBits int) (*FrameDecode, error) {
	return pd.decodeFrame(sig, start, shifts, payloadBits, nil)
}

// DecodeFrameEmit is Decoder.DecodeFrameEmit with the symbol batches
// computed in parallel: workers write their spectra rows (disjoint
// sections of emit) alongside the scan, and the decode outcome stays
// bit-identical to the serial emit path — and hence to DecodeFrame.
func (pd *ParallelDecoder) DecodeFrameEmit(sig []complex128, start int, shifts []int, payloadBits int, emit []float64) (*FrameDecode, error) {
	if len(emit) < pd.dec.EmitLen(payloadBits) {
		return nil, fmt.Errorf("core: emit arena length %d, want at least %d", len(emit), pd.dec.EmitLen(payloadBits))
	}
	return pd.decodeFrame(sig, start, shifts, payloadBits, emit)
}

func (pd *ParallelDecoder) decodeFrame(sig []complex128, start int, shifts []int, payloadBits int, emit []float64) (*FrameDecode, error) {
	d := pd.dec
	if err := d.begin(sig, start, shifts, payloadBits); err != nil {
		return nil, err
	}
	n := d.book.Params().N()
	bins := d.dem.PaddedBins()
	pd.curSig, pd.curStart, pd.curPayloadBits = sig, start, payloadBits
	pd.curPre, pd.curEmitPay = pd.preArena, nil
	if emit != nil {
		pd.curPre, pd.curEmitPay = emit[:PreambleUpSymbols*bins], emit[PreambleUpSymbols*bins:]
	}
	for sym := range pd.preSpec {
		pd.preSpec[sym] = pd.curPre[sym*bins : (sym+1)*bins]
	}

	// Phase 1: preamble spectra and per-symbol noise quantiles, one
	// symbol batch per work item. Workers write disjoint spectra slots
	// and disjoint noisePerSym entries; the reduction below runs
	// serially in symbol order, so the noise average is bit-identical to
	// the serial decoder's.
	pool.ForEachWorker(len(pd.workers), batchCount(PreambleUpSymbols, preBatchSymbols), pd.preWorker)
	noise := d.reduceNoise()
	d.accumPreamble(pd.preSpec[:], shifts, noise)

	// Phase 2: payload symbol batches through the fused scan kernel.
	d.preparePayload(payloadBits)
	pd.curPayStart = start + PreambleSymbols*n
	pd.curHalfIdx = d.trackHalf()
	pool.ForEachWorker(len(pd.workers), batchCount(payloadBits, payBatchSymbols), pd.payWorker)

	pd.curSig, pd.curEmitPay = nil, nil
	d.finish(noise, payloadBits)
	d.rejectGhosts(d.devices)
	return &d.res, nil
}
