package core

import (
	"netscatter/internal/chirp"
	"netscatter/internal/pool"
)

// ParallelDecoder fans the per-symbol spectrum work of DecodeFrame —
// dechirp, pruned FFT, noise quantile, candidate peak scan — across a
// bounded worker set, one chirp.Demodulator per worker. Everything that
// determines the decode outcome (statistic accumulation, thresholds,
// CRC, ghost rejection) runs serially in a fixed order on the embedded
// serial Decoder's arenas, so the parallel decoder's FrameDecode is
// bit-identical to the serial decoder's for the same input.
//
// Like Decoder, a ParallelDecoder is not safe for concurrent use (it is
// itself the concurrency), and its results alias decoder-owned storage
// valid until the next DecodeFrame call.
type ParallelDecoder struct {
	dec     *Decoder
	workers []*decodeWorker

	preArena []float64
	preSpec  [PreambleUpSymbols][]float64

	// Persistent phase funcs plus the in-flight call state they read;
	// fresh closures per DecodeFrame would put two heap allocations
	// back on the steady-state path.
	preWorker                               func(w, sym int)
	payWorker                               func(w, sym int)
	curSig                                  []complex128
	curShifts                               []int
	curStart                                int
	curPayStart, curHalfIdx, curPayloadBits int
}

// decodeWorker is one worker's private state: a demodulator (FFT scratch
// is per-instance) plus scan and quantile buffers. The pool guarantees a
// worker id never runs two items concurrently, so no locking is needed.
type decodeWorker struct {
	dem   *chirp.Demodulator
	scan  []float64
	quant []float64
}

// NewParallelDecoder builds a parallel decoder over a code book with the
// given worker count; workers <= 0 means pool.Size() (GOMAXPROCS). One
// worker degrades gracefully to the serial path with zero goroutines.
//
// Worker 0 — the caller's own lane — shares the serial decoder's
// demodulator, and further workers materialize their demodulators only
// when the shared pool actually hands them work, so a decoder built in
// a saturated sweep (where nested fan-out runs inline) costs one
// demodulator, not GOMAXPROCS of them.
func NewParallelDecoder(book *CodeBook, cfg DecoderConfig, workers int) *ParallelDecoder {
	if workers <= 0 {
		workers = pool.Size()
	}
	pd := &ParallelDecoder{dec: NewDecoder(book, cfg)}
	pd.workers = make([]*decodeWorker, workers)
	pd.workers[0] = &decodeWorker{dem: pd.dec.dem}
	bins := pd.dec.dem.PaddedBins()
	pd.preArena = make([]float64, PreambleUpSymbols*bins)
	for sym := range pd.preSpec {
		pd.preSpec[sym] = pd.preArena[sym*bins : (sym+1)*bins]
	}
	pd.preWorker = pd.preOne
	pd.payWorker = pd.payOne
	return pd
}

// preOne computes one preamble symbol's spectrum and noise quantile for
// the in-flight DecodeFrame (phase 1 work item).
func (pd *ParallelDecoder) preOne(w, sym int) {
	d := pd.dec
	n := d.book.Params().N()
	wk := pd.worker(w, len(pd.curShifts))
	wk.dem.SpectrumInto(pd.preSpec[sym], pd.curSig[pd.curStart+sym*n:pd.curStart+(sym+1)*n])
	if d.cfg.NoiseFloor > 0 {
		d.noisePerSym[sym] = d.cfg.NoiseFloor
	} else {
		d.noisePerSym[sym], wk.quant = noiseQuantile(wk.quant, pd.preSpec[sym])
	}
}

// payOne dechirps one payload symbol, scans the detected candidates'
// windows and scatters the peak powers into the shared candidate-major
// arena (phase 2 work item).
func (pd *ParallelDecoder) payOne(w, sym int) {
	d := pd.dec
	n := d.book.Params().N()
	wk := pd.worker(w, len(pd.curShifts))
	spec := wk.dem.Spectrum(pd.curSig[pd.curPayStart+sym*n : pd.curPayStart+(sym+1)*n])
	chirp.ScanPaddedCenters(spec, d.payCenter, pd.curHalfIdx, wk.scan)
	for i := range pd.curShifts {
		if d.payCenter[i] >= 0 {
			d.powers[i*pd.curPayloadBits+sym] = wk.scan[i]
		}
	}
}

// worker returns worker w's state, materializing it on first use. Safe
// without locks: the pool runs each worker id on exactly one goroutine
// at a time, and successive ForEachWorker phases are ordered by its
// WaitGroup, so slot w is only ever touched by w's current goroutine.
func (pd *ParallelDecoder) worker(w, nCand int) *decodeWorker {
	wk := pd.workers[w]
	if wk == nil {
		wk = &decodeWorker{dem: chirp.NewDemodulator(pd.dec.book.Params(), pd.dec.cfg.ZeroPad)}
		pd.workers[w] = wk
	}
	if cap(wk.scan) < nCand {
		wk.scan = make([]float64, nCand)
	}
	wk.scan = wk.scan[:nCand]
	return wk
}

// Serial returns the embedded serial decoder (which shares this
// decoder's result arenas — do not interleave DecodeFrame calls on both
// while holding results).
func (pd *ParallelDecoder) Serial() *Decoder { return pd.dec }

// Book returns the decoder's code book.
func (pd *ParallelDecoder) Book() *CodeBook { return pd.dec.Book() }

// Workers returns the worker count.
func (pd *ParallelDecoder) Workers() int { return len(pd.workers) }

// DecodeFrame is Decoder.DecodeFrame with the symbol spectra computed in
// parallel. Output is bit-identical to the serial path.
func (pd *ParallelDecoder) DecodeFrame(sig []complex128, start int, shifts []int, payloadBits int) (*FrameDecode, error) {
	d := pd.dec
	if err := d.begin(sig, start, shifts, payloadBits); err != nil {
		return nil, err
	}
	n := d.book.Params().N()
	pd.curSig, pd.curStart, pd.curShifts, pd.curPayloadBits = sig, start, shifts, payloadBits

	// Phase 1: preamble spectra and per-symbol noise quantiles, one
	// symbol per work item. Workers write disjoint spectra slots and
	// disjoint noisePerSym entries; the reduction below runs serially in
	// symbol order, so the noise average is bit-identical to the serial
	// decoder's.
	pool.ForEachWorker(len(pd.workers), PreambleUpSymbols, pd.preWorker)
	noise := d.reduceNoise()
	d.accumPreamble(pd.preSpec[:], shifts, noise)

	// Phase 2: payload symbols. Each worker dechirps its symbol, scans
	// the detected candidates' windows, and scatters the peak powers
	// into the shared candidate-major power arena — every (candidate,
	// symbol) cell is written by exactly one worker.
	d.preparePayload(payloadBits)
	pd.curPayStart = start + PreambleSymbols*n
	pd.curHalfIdx = d.trackHalf()
	pool.ForEachWorker(len(pd.workers), payloadBits, pd.payWorker)

	pd.curSig = nil
	d.finish(noise, payloadBits)
	d.rejectGhosts(d.devices)
	return &d.res, nil
}
