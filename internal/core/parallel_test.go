package core

import (
	"bytes"
	"fmt"
	"testing"

	"netscatter/internal/air"
	"netscatter/internal/chirp"
	"netscatter/internal/dsp"
)

// buildConcurrentFrame synthesizes a received stream with nDev concurrent
// devices under timing/frequency offsets, returning the signal, shifts
// and payload bit length.
func buildConcurrentFrame(t testing.TB, p chirp.Params, skip, nDev int, seed int64) (*CodeBook, []complex128, []int, int) {
	t.Helper()
	book, err := NewCodeBook(p, skip)
	if err != nil {
		t.Fatal(err)
	}
	if nDev > book.Slots() {
		nDev = book.Slots()
	}
	rng := dsp.NewRand(seed)
	payloadBytes := 3
	bitsLen := payloadBytes*8 + CRCBits
	var txs []air.Transmission
	shifts := make([]int, nDev)
	for i := 0; i < nDev; i++ {
		shifts[i] = book.ShiftOfSlot(i)
		enc := NewEncoder(p, shifts[i])
		pl := rng.Bytes(payloadBytes)
		txs = append(txs, air.Transmission{
			Delayed: func(frac float64) []complex128 {
				return enc.FrameWaveformDelayed(pl, frac)
			},
			SNRdB:        rng.Uniform(3, 10),
			DelaySec:     rng.Uniform(0, 0.4) / p.BW,
			FreqOffsetHz: rng.Normal(0, 200),
		})
	}
	ch := air.NewChannel(p, rng)
	sig := ch.Receive(ch.FrameLength(PreambleSymbols+bitsLen, 2), txs)
	return book, sig, shifts, bitsLen
}

// snapshotDecode deep-copies a FrameDecode out of the decoder's arenas.
func snapshotDecode(res *FrameDecode) FrameDecode {
	out := *res
	out.Devices = make([]DeviceDecode, len(res.Devices))
	for i, dev := range res.Devices {
		cp := dev
		cp.Bits = append([]byte(nil), dev.Bits...)
		cp.Payload = append([]byte(nil), dev.Payload...)
		if dev.Payload == nil {
			cp.Payload = nil
		}
		if dev.Bits == nil {
			cp.Bits = nil
		}
		out.Devices[i] = cp
	}
	return out
}

func decodesEqual(a, b FrameDecode) error {
	if a.Start != b.Start || a.FFTs != b.FFTs || a.NoiseBinPower != b.NoiseBinPower {
		return fmt.Errorf("header mismatch: %+v vs %+v",
			FrameDecode{Start: a.Start, FFTs: a.FFTs, NoiseBinPower: a.NoiseBinPower},
			FrameDecode{Start: b.Start, FFTs: b.FFTs, NoiseBinPower: b.NoiseBinPower})
	}
	if len(a.Devices) != len(b.Devices) {
		return fmt.Errorf("device count %d vs %d", len(a.Devices), len(b.Devices))
	}
	for i := range a.Devices {
		da, db := a.Devices[i], b.Devices[i]
		if da.Shift != db.Shift || da.Detected != db.Detected || da.CRCOK != db.CRCOK ||
			da.MeanPeakPower != db.MeanPeakPower || da.ObservedBin != db.ObservedBin {
			return fmt.Errorf("device %d mismatch: %+v vs %+v", i, da, db)
		}
		if !bytes.Equal(da.Bits, db.Bits) {
			return fmt.Errorf("device %d bits differ", i)
		}
		if !bytes.Equal(da.Payload, db.Payload) {
			return fmt.Errorf("device %d payload differs", i)
		}
	}
	return nil
}

// TestParallelDecoderBitExact is the tentpole contract: the parallel
// decoder's FrameDecode must be field-for-field, bit-for-bit identical
// to the serial decoder's across seeds, SKIP values and worker counts.
func TestParallelDecoderBitExact(t *testing.T) {
	p := chirp.Params{SF: 7, BW: 125e3, Oversample: 1}
	for _, skip := range []int{1, 2, 4} {
		for seed := int64(1); seed <= 4; seed++ {
			book, sig, shifts, bitsLen := buildConcurrentFrame(t, p, skip, 24, seed*977)
			serial := NewDecoder(book, DefaultDecoderConfig(skip))
			sres, err := serial.DecodeFrame(sig, 0, shifts, bitsLen)
			if err != nil {
				t.Fatal(err)
			}
			want := snapshotDecode(sres)
			for _, workers := range []int{1, 2, 4, 7} {
				par := NewParallelDecoder(book, DefaultDecoderConfig(skip), workers)
				pres, err := par.DecodeFrame(sig, 0, shifts, bitsLen)
				if err != nil {
					t.Fatal(err)
				}
				if err := decodesEqual(want, snapshotDecode(pres)); err != nil {
					t.Fatalf("skip=%d seed=%d workers=%d: %v", skip, seed, workers, err)
				}
			}
		}
	}
}

// TestParallelDecoderCalibratedNoiseFloor covers the NoiseFloor>0 branch
// (the simulator's calibrated path) for equivalence too.
func TestParallelDecoderCalibratedNoiseFloor(t *testing.T) {
	p := chirp.Params{SF: 7, BW: 125e3, Oversample: 1}
	book, sig, shifts, bitsLen := buildConcurrentFrame(t, p, 2, 32, 555)
	cfg := DefaultDecoderConfig(2)
	cfg.NoiseFloor = float64(p.N())
	serial := NewDecoder(book, cfg)
	sres, err := serial.DecodeFrame(sig, 0, shifts, bitsLen)
	if err != nil {
		t.Fatal(err)
	}
	want := snapshotDecode(sres)
	par := NewParallelDecoder(book, cfg, 3)
	pres, err := par.DecodeFrame(sig, 0, shifts, bitsLen)
	if err != nil {
		t.Fatal(err)
	}
	if err := decodesEqual(want, snapshotDecode(pres)); err != nil {
		t.Fatal(err)
	}
}

// TestParallelDecoderReuse runs the same decoder across different frame
// shapes to exercise arena regrowth and result reset.
func TestParallelDecoderReuse(t *testing.T) {
	p := chirp.Params{SF: 7, BW: 125e3, Oversample: 1}
	book, sig, shifts, bitsLen := buildConcurrentFrame(t, p, 2, 16, 42)
	par := NewParallelDecoder(book, DefaultDecoderConfig(2), 0)
	serial := NewDecoder(book, DefaultDecoderConfig(2))

	// Shrinking candidate sets, then growing again.
	for _, k := range []int{16, 3, 1, 16} {
		sres, err := serial.DecodeFrame(sig, 0, shifts[:k], bitsLen)
		if err != nil {
			t.Fatal(err)
		}
		want := snapshotDecode(sres)
		pres, err := par.DecodeFrame(sig, 0, shifts[:k], bitsLen)
		if err != nil {
			t.Fatal(err)
		}
		if err := decodesEqual(want, snapshotDecode(pres)); err != nil {
			t.Fatalf("candidates=%d: %v", k, err)
		}
	}
}

func TestParallelDecoderBoundsError(t *testing.T) {
	book, err := NewCodeBook(chirp.Params{SF: 7, BW: 125e3, Oversample: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	par := NewParallelDecoder(book, DefaultDecoderConfig(2), 2)
	if _, err := par.DecodeFrame(make([]complex128, 10), 0, []int{0}, 8); err == nil {
		t.Error("out-of-bounds frame accepted")
	}
}

// TestDecodeFrameSteadyStateZeroAlloc asserts the tentpole's
// allocation-free claim as a regular test, so a regression fails tier-1
// rather than only drifting a benchmark number.
func TestDecodeFrameSteadyStateZeroAlloc(t *testing.T) {
	p := chirp.Params{SF: 7, BW: 125e3, Oversample: 1}
	book, sig, shifts, bitsLen := buildConcurrentFrame(t, p, 2, 24, 9)
	dec := NewDecoder(book, DefaultDecoderConfig(2))
	// Warm the arenas to their high-water mark.
	if _, err := dec.DecodeFrame(sig, 0, shifts, bitsLen); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := dec.DecodeFrame(sig, 0, shifts, bitsLen); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state DecodeFrame allocates %.1f objects/op, want 0", allocs)
	}
}
