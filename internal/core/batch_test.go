package core

import (
	"fmt"
	"reflect"
	"testing"

	"netscatter/internal/chirp"
)

// decodeConfigs are the (params, skip, zeroPad, noiseFloor) combinations
// the batch-vs-oracle equality is enforced over: both spreading factors
// the suite simulates, zero-pad factors from none to the deployment's 8,
// and both noise-floor modes (calibrated floor vs quantile estimation —
// the latter exercises the full-spectrum path of the preamble batch).
var decodeConfigs = []struct {
	p          chirp.Params
	skip       int
	zeroPad    int
	noiseFloor float64
}{
	{chirp.Params{SF: 7, BW: 125e3, Oversample: 1}, 2, 1, 0},
	{chirp.Params{SF: 7, BW: 125e3, Oversample: 1}, 2, 4, 0},
	{chirp.Params{SF: 7, BW: 125e3, Oversample: 1}, 3, 8, 128},
	{chirp.Params{SF: 9, BW: 500e3, Oversample: 1}, 2, 8, 0},
	{chirp.Params{SF: 9, BW: 500e3, Oversample: 1}, 8, 2, 512},
}

// TestDecodeBatchMatchesOracleRace pins the PR's core contract: the
// batched decode path (serial and parallel) produces FrameDecodes that
// are bit-identical — every float, every bit, every flag — to the
// retained single-symbol oracle, across SF, SKIP, zero-pad and
// noise-floor combinations. The "Race" suffix opts the test into the
// CI race-detector pass, which sweeps the parallel decoder's
// symbol-batch fan-out for data races at the same time.
func TestDecodeBatchMatchesOracleRace(t *testing.T) {
	for ci, tc := range decodeConfigs {
		t.Run(fmt.Sprintf("sf=%d/skip=%d/zeropad=%d", tc.p.SF, tc.skip, tc.zeroPad), func(t *testing.T) {
			book, sig, shifts, bitsLen := buildConcurrentFrame(t, tc.p, tc.skip, 24, int64(1000+ci))
			cfg := DefaultDecoderConfig(tc.skip)
			cfg.ZeroPad = tc.zeroPad
			cfg.NoiseFloor = tc.noiseFloor

			oracle := NewDecoder(book, cfg)
			oracleRes, err := oracle.DecodeFrameOracle(sig, 0, shifts, bitsLen)
			if err != nil {
				t.Fatal(err)
			}
			want := snapshotDecode(oracleRes)

			serial := NewDecoder(book, cfg)
			serialRes, err := serial.DecodeFrame(sig, 0, shifts, bitsLen)
			if err != nil {
				t.Fatal(err)
			}
			if got := snapshotDecode(serialRes); !reflect.DeepEqual(got, want) {
				t.Fatalf("batched serial decode diverges from oracle:\n got %+v\nwant %+v", got, want)
			}

			parallel := NewParallelDecoder(book, cfg, 4)
			parRes, err := parallel.DecodeFrame(sig, 0, shifts, bitsLen)
			if err != nil {
				t.Fatal(err)
			}
			if got := snapshotDecode(parRes); !reflect.DeepEqual(got, want) {
				t.Fatalf("batched parallel decode diverges from oracle:\n got %+v\nwant %+v", got, want)
			}

			// Every path must decode at least one frame in these
			// configurations — equality against a decoder that found
			// nothing would be a hollow check.
			if want.DetectedCount() == 0 {
				t.Fatal("oracle detected no devices; test inputs are too hard")
			}
		})
	}
}

// TestDecodeBatchOracleRepeatability re-runs the batched decoder on the
// same frame twice (arena reuse) and on a second frame in between, so
// stale arena contents from a previous call can never leak into a
// result without this test catching it.
func TestDecodeBatchOracleRepeatability(t *testing.T) {
	p := chirp.Params{SF: 7, BW: 125e3, Oversample: 1}
	book, sig, shifts, bitsLen := buildConcurrentFrame(t, p, 2, 16, 5)
	_, sig2, shifts2, bitsLen2 := buildConcurrentFrame(t, p, 2, 9, 6)

	dec := NewDecoder(book, DefaultDecoderConfig(2))
	first, err := dec.DecodeFrame(sig, 0, shifts, bitsLen)
	if err != nil {
		t.Fatal(err)
	}
	want := snapshotDecode(first)
	if _, err := dec.DecodeFrame(sig2, 0, shifts2, bitsLen2); err != nil {
		t.Fatal(err)
	}
	again, err := dec.DecodeFrame(sig, 0, shifts, bitsLen)
	if err != nil {
		t.Fatal(err)
	}
	if got := snapshotDecode(again); !reflect.DeepEqual(got, want) {
		t.Fatalf("arena reuse changed the decode:\n got %+v\nwant %+v", got, want)
	}
}
