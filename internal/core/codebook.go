// Package core implements NetScatter's primary contribution: distributed
// chirp spread spectrum coding (§3 of the paper). Each concurrent device
// is assigned a distinct cyclic shift of the shared upchirp and ON-OFF
// keys that shift to convey bits; the access point decodes every device
// from a single dechirp + FFT per symbol.
//
// The package provides the cyclic-shift code book with SKIP guard
// spacing, the link-layer frame (six upchirp + two downchirp preamble,
// OOK payload, CRC-8), the device-side encoder, the concurrent
// single-FFT decoder with preamble-based device detection and per-device
// power thresholds, and the packet-start/offset estimators.
package core

import (
	"fmt"

	"netscatter/internal/chirp"
	"netscatter/internal/dsp"
)

// CodeBook maps devices to cyclic shifts. Assigned shifts are SKIP bins
// apart, leaving SKIP-1 empty FFT bins between devices so per-packet
// hardware timing jitter cannot make neighbours collide (§3.2.1). Slots
// are indexed by circular distance from the anchor bin 0: slot 0 is bin
// 0, slot 1 is the first slot on the other side of the circle, and so on
// — so consecutive slot indices are physically adjacent on the FFT
// circle. The power-aware allocator (internal/mac) assigns the
// strongest device to slot 0 and progressively weaker devices to farther
// slots, realising Fig. 8's high/low/high power layout.
type CodeBook struct {
	params chirp.Params
	skip   int
	slots  int
	// shiftOf maps slot index -> cyclic shift, ordered by circular
	// distance from bin 0 (ties broken toward the positive side).
	shiftOf []int
	slotOf  map[int]int
}

// NewCodeBook builds a code book for the parameter set with the given
// SKIP spacing (SKIP >= 1; the paper deploys SKIP = 2 at 500 kHz, SF 9).
func NewCodeBook(p chirp.Params, skip int) (*CodeBook, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if skip < 1 {
		return nil, fmt.Errorf("core: SKIP %d must be >= 1", skip)
	}
	n := p.N()
	if skip > n/2 {
		return nil, fmt.Errorf("core: SKIP %d too large for %d bins", skip, n)
	}
	c := &CodeBook{params: p, skip: skip, slots: n / skip}
	c.shiftOf = make([]int, 0, c.slots)
	c.slotOf = make(map[int]int, c.slots)
	// Zig-zag enumeration: bin 0, then alternating positive/negative
	// multiples of SKIP, so slot index increases with circular distance
	// from the anchor. When SKIP does not divide N the two sides meet
	// unevenly; walking multiples of SKIP on each side keeps every shift
	// a SKIP multiple.
	pos, neg := skip, n-skip
	c.shiftOf = append(c.shiftOf, 0)
	for len(c.shiftOf) < c.slots {
		dPos := dsp.CircularDistance(pos, 0, n)
		dNeg := dsp.CircularDistance(neg, 0, n)
		if dPos <= dNeg {
			c.shiftOf = append(c.shiftOf, pos)
			pos += skip
		} else {
			c.shiftOf = append(c.shiftOf, neg)
			neg -= skip
		}
	}
	for slot, shift := range c.shiftOf {
		c.slotOf[shift] = slot
	}
	return c, nil
}

// Params returns the code book's chirp parameters.
func (c *CodeBook) Params() chirp.Params { return c.params }

// Skip returns the SKIP spacing.
func (c *CodeBook) Skip() int { return c.skip }

// Slots returns the number of assignable cyclic shifts: N/SKIP (256 for
// SF 9 with SKIP 2).
func (c *CodeBook) Slots() int { return c.slots }

// ShiftOfSlot returns the cyclic shift for a slot index. Slots are
// ordered by circular distance from bin 0, alternating sides:
// slot 0 -> bin 0, slot 1 -> bin SKIP, slot 2 -> bin N-SKIP,
// slot 3 -> bin 2·SKIP, ... so higher slot indices are farther (in
// circular FFT-bin distance) from slot 0.
func (c *CodeBook) ShiftOfSlot(slot int) int {
	if slot < 0 || slot >= c.slots {
		panic(fmt.Sprintf("core: slot %d out of range [0,%d)", slot, c.slots))
	}
	return c.shiftOf[slot]
}

// SlotOfShift inverts ShiftOfSlot; ok is false if the shift is not an
// assignable slot.
func (c *CodeBook) SlotOfShift(shift int) (slot int, ok bool) {
	shift = dsp.WrapIndex(shift, c.params.N())
	slot, ok = c.slotOf[shift]
	return slot, ok
}

// CircularBinDistance returns the FFT-bin distance between two slots'
// shifts on the circular spectrum.
func (c *CodeBook) CircularBinDistance(slotA, slotB int) int {
	return dsp.CircularDistance(c.ShiftOfSlot(slotA), c.ShiftOfSlot(slotB), c.params.N())
}

// AllShifts returns the cyclic shifts of all slots in slot order. The
// returned slice is fresh.
func (c *CodeBook) AllShifts() []int {
	out := make([]int, c.slots)
	copy(out, c.shiftOf)
	return out
}

// AssociationSlots returns the two reserved association slots: one in
// the high-SNR region (near slot 0) and one in the low-SNR region (the
// farthest slot), per §3.3.2. An incoming device picks the region
// matching its own query RSSI so its association transmission neither
// drowns nor is drowned by ongoing traffic.
func (c *CodeBook) AssociationSlots() (highSNR, lowSNR int) {
	return 1, c.slots - 1
}
