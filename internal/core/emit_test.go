package core

import (
	"fmt"
	"reflect"
	"testing"

	"netscatter/internal/chirp"
)

// TestDecodeFrameEmitMatchesDecodeFrameRace pins the emit mode's core
// contract across the decodeConfigs matrix: DecodeFrameEmit (serial and
// parallel) produces FrameDecodes bit-identical to DecodeFrame —
// emitting spectra is a pure by-product — and the serial and parallel
// emitted arenas are themselves bit-identical (workers fill disjoint
// rows of the same layout). The "Race" suffix opts the test into the CI
// race-detector pass, sweeping the emit fan-out for races.
func TestDecodeFrameEmitMatchesDecodeFrameRace(t *testing.T) {
	for ci, tc := range decodeConfigs {
		t.Run(fmt.Sprintf("sf=%d/skip=%d/zeropad=%d", tc.p.SF, tc.skip, tc.zeroPad), func(t *testing.T) {
			book, sig, shifts, bitsLen := buildConcurrentFrame(t, tc.p, tc.skip, 24, int64(1000+ci))
			cfg := DefaultDecoderConfig(tc.skip)
			cfg.ZeroPad = tc.zeroPad
			cfg.NoiseFloor = tc.noiseFloor

			base := NewDecoder(book, cfg)
			baseRes, err := base.DecodeFrame(sig, 0, shifts, bitsLen)
			if err != nil {
				t.Fatal(err)
			}
			want := snapshotDecode(baseRes)

			serial := NewDecoder(book, cfg)
			emit := make([]float64, serial.EmitLen(bitsLen))
			serialRes, err := serial.DecodeFrameEmit(sig, 0, shifts, bitsLen, emit)
			if err != nil {
				t.Fatal(err)
			}
			if got := snapshotDecode(serialRes); !reflect.DeepEqual(got, want) {
				t.Fatalf("serial emit decode diverges from DecodeFrame:\n got %+v\nwant %+v", got, want)
			}

			parallel := NewParallelDecoder(book, cfg, 4)
			emitPar := make([]float64, parallel.Serial().EmitLen(bitsLen))
			parRes, err := parallel.DecodeFrameEmit(sig, 0, shifts, bitsLen, emitPar)
			if err != nil {
				t.Fatal(err)
			}
			if got := snapshotDecode(parRes); !reflect.DeepEqual(got, want) {
				t.Fatalf("parallel emit decode diverges from DecodeFrame:\n got %+v\nwant %+v", got, want)
			}
			if !reflect.DeepEqual(emit, emitPar) {
				t.Fatal("parallel emitted arena diverges from serial emitted arena")
			}
			if want.DetectedCount() == 0 {
				t.Fatal("decoder detected no devices; test inputs are too hard")
			}
		})
	}
}

// TestEmittedSpectraMatchMaterialized pins the emit arena's contents
// against the materializing path: every emitted row must be bit-equal to
// the power spectrum chirp.Demodulator.Spectrum computes for the same
// symbol — preamble upchirp rows first, then one row per payload symbol
// (the two preamble downchirps are skipped, per the EmitRows layout).
func TestEmittedSpectraMatchMaterialized(t *testing.T) {
	p := chirp.Params{SF: 7, BW: 125e3, Oversample: 1}
	book, sig, shifts, bitsLen := buildConcurrentFrame(t, p, 2, 16, 77)
	cfg := DefaultDecoderConfig(2)

	dec := NewDecoder(book, cfg)
	emit := make([]float64, dec.EmitLen(bitsLen))
	if _, err := dec.DecodeFrameEmit(sig, 0, shifts, bitsLen, emit); err != nil {
		t.Fatal(err)
	}

	ref := chirp.NewDemodulator(p, cfg.ZeroPad)
	n := p.N()
	bins := ref.PaddedBins()
	if want := EmitRows(bitsLen) * bins; len(emit) != want {
		t.Fatalf("EmitLen = %d, want %d", len(emit), want)
	}
	check := func(row int, symStart int) {
		spec := ref.Spectrum(sig[symStart : symStart+n])
		got := emit[row*bins : (row+1)*bins]
		for i := range spec {
			if got[i] != spec[i] {
				t.Fatalf("row %d bin %d: emitted %v, materialized %v", row, i, got[i], spec[i])
			}
		}
	}
	for sym := 0; sym < PreambleUpSymbols; sym++ {
		check(sym, sym*n)
	}
	payloadStart := PreambleSymbols * n
	for sym := 0; sym < bitsLen; sym++ {
		check(PreambleUpSymbols+sym, payloadStart+sym*n)
	}
}

// TestDecodeFrameSpectraSingleDegeneracy pins the tentpole's k=1
// contract: decoding one AP's emitted arena through DecodeFrameSpectra
// with nSummed = 1 is bit-identical to DecodeFrame on that AP's signal
// — same floats, same bits, same flags — except the FFTs count, which
// is 0 on the spectra path (it performs no transforms of its own).
func TestDecodeFrameSpectraSingleDegeneracy(t *testing.T) {
	for ci, tc := range decodeConfigs {
		t.Run(fmt.Sprintf("sf=%d/skip=%d/zeropad=%d", tc.p.SF, tc.skip, tc.zeroPad), func(t *testing.T) {
			book, sig, shifts, bitsLen := buildConcurrentFrame(t, tc.p, tc.skip, 24, int64(4000+ci))
			cfg := DefaultDecoderConfig(tc.skip)
			cfg.ZeroPad = tc.zeroPad
			cfg.NoiseFloor = tc.noiseFloor

			emitter := NewDecoder(book, cfg)
			emit := make([]float64, emitter.EmitLen(bitsLen))
			emitRes, err := emitter.DecodeFrameEmit(sig, 0, shifts, bitsLen, emit)
			if err != nil {
				t.Fatal(err)
			}
			want := snapshotDecode(emitRes)
			want.FFTs = 0
			want.Start = 0

			comb := NewDecoder(book, cfg)
			combRes, err := comb.DecodeFrameSpectra(emit, 1, shifts, bitsLen)
			if err != nil {
				t.Fatal(err)
			}
			if got := snapshotDecode(combRes); !reflect.DeepEqual(got, want) {
				t.Fatalf("k=1 spectra decode diverges from signal decode:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestDecodeFrameSpectraErrors covers the argument contract.
func TestDecodeFrameSpectraErrors(t *testing.T) {
	p := chirp.Params{SF: 7, BW: 125e3, Oversample: 1}
	book, err := NewCodeBook(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(book, DefaultDecoderConfig(2))
	shifts := []int{0}
	if _, err := dec.DecodeFrameSpectra(make([]float64, dec.EmitLen(8)), 0, shifts, 8); err == nil {
		t.Fatal("nSummed = 0 accepted")
	}
	if _, err := dec.DecodeFrameSpectra(make([]float64, dec.EmitLen(8)-1), 1, shifts, 8); err == nil {
		t.Fatal("short spectra arena accepted")
	}
	if _, err := dec.DecodeFrameEmit(nil, 0, shifts, 8, make([]float64, dec.EmitLen(8))); err == nil {
		t.Fatal("emit with empty signal accepted")
	}
}
