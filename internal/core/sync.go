package core

import (
	"math"

	"netscatter/internal/dsp"
)

// Packet start estimation (§3.3.1). The preamble carries six upchirps
// followed by two downchirps, all with the device's assigned cyclic
// shift. Dechirping an *upchirp* window with the baseline downchirp
// yields a tone at bin (c - δ + f) while dechirping a *downchirp* window
// with the baseline upchirp yields a tone at (-(c - δ) + f), where c is
// the cyclic shift, δ the timing offset in samples and f the frequency
// offset in bins. Their sum isolates 2f and their difference isolates
// 2(c-δ) — the "middle point between an upchirp and downchirp" trick the
// paper describes (it conjectures LoRa's preamble downchirps exist for
// the same reason).

// EstimateStart locates the frame start near a nominal sample index.
// Two stages:
//
//  1. A coarse power search (steps of N/8 over ±radius) maximizing the
//     summed dechirped peak power over the preamble windows, which lands
//     within a fraction of a symbol. Power alone cannot resolve finer
//     alignment — the six preamble upchirps are identical, so any window
//     inside the repeated region yields equally sharp peaks.
//  2. The paper's midpoint refinement (§3.3.1): the strongest device's
//     upchirp peak sits at (c - δ + f) and its downchirp peak at
//     (-(c - δ) + f); half their difference gives c - δ, and matching c
//     against the known candidate shifts recovers the residual timing
//     error δ exactly. The N/2 halving ambiguity is harmless for timing:
//     if it matches a different device's shift c' = c + N/2, the implied
//     δ is identical.
//
// shifts is the set of cyclic shifts that may be transmitting (the AP
// always knows this — it assigned them).
func (d *Decoder) EstimateStart(sig []complex128, nominal, radius int, shifts []int) int {
	n := d.book.Params().N()
	coarse := nominal
	if radius > 0 {
		step := n / 8
		if step < 1 {
			step = 1
		}
		bestQ := math.Inf(-1)
		for off := nominal - radius; off <= nominal+radius; off += step {
			if q := d.alignQuality(sig, off); q > bestQ {
				bestQ, coarse = q, off
			}
		}
	}
	if len(shifts) == 0 {
		return coarse
	}
	if coarse < 0 || coarse+PreambleSymbols*n > len(sig) {
		return coarse
	}
	delta, ok := d.midpointDelta(sig, coarse, shifts)
	if !ok {
		return coarse
	}
	return coarse + int(math.Round(delta))
}

// midpointDelta estimates the residual timing error δ of a coarse frame
// alignment by template correlation against the assigned shifts. The
// upchirp spectra carry a peak at (c - δ + f) for every transmitting
// shift c, so the correlation
//
//	corrU(ℓ) = Σ_syms Σ_c Spec[c + ℓ]
//
// is maximized at the common lag ℓu = -δ + f, with every device voting
// coherently. The downchirp spectra carry peaks at (-c + δ + f), giving
// a correlation maximized at ℓd = +δ + f. Then δ = (ℓd - ℓu)/2. This is
// robust at any device density: unlike per-device peak windows, a
// neighbour's peak is just another template spike contributing to the
// same lag.
func (d *Decoder) midpointDelta(sig []complex128, start int, shifts []int) (float64, bool) {
	p := d.book.Params()
	n := p.N()
	zp := d.dem.ZeroPad()
	m := d.dem.PaddedBins()
	maxLag := (n/8 + 2) * zp // covers the coarse search step

	corrU := make([]float64, 2*maxLag+1)
	corrD := make([]float64, 2*maxLag+1)

	for sym := 0; sym < PreambleUpSymbols; sym++ {
		spec := d.dem.Spectrum(sig[start+sym*n : start+(sym+1)*n])
		for _, c := range shifts {
			base := dsp.WrapIndex(c*zp, m)
			for l := -maxLag; l <= maxLag; l++ {
				corrU[l+maxLag] += spec[dsp.WrapIndex(base+l, m)]
			}
		}
	}
	for sym := PreambleUpSymbols; sym < PreambleSymbols; sym++ {
		spec := d.dem.SpectrumDown(sig[start+sym*n : start+(sym+1)*n])
		for _, c := range shifts {
			base := dsp.WrapIndex(-c*zp, m)
			for l := -maxLag; l <= maxLag; l++ {
				corrD[l+maxLag] += spec[dsp.WrapIndex(base+l, m)]
			}
		}
	}

	iu, pu := dsp.ArgmaxFloat(corrU)
	id, pd := dsp.ArgmaxFloat(corrD)
	if pu <= 0 || pd <= 0 {
		return 0, false
	}
	lu := float64(iu-maxLag) / float64(zp) // -δ + f in bins
	ld := float64(id-maxLag) / float64(zp) // +δ + f in bins
	return (ld - lu) / 2, true
}

// alignQuality scores a candidate frame start; higher is better.
func (d *Decoder) alignQuality(sig []complex128, start int) float64 {
	n := d.book.Params().N()
	if start < 0 || start+PreambleSymbols*n > len(sig) {
		return math.Inf(-1)
	}
	var q float64
	for sym := 0; sym < PreambleUpSymbols; sym++ {
		spec := d.dem.Spectrum(sig[start+sym*n : start+(sym+1)*n])
		_, pw := dsp.ArgmaxFloat(spec)
		q += pw
	}
	for sym := PreambleUpSymbols; sym < PreambleSymbols; sym++ {
		spec := d.dem.SpectrumDown(sig[start+sym*n : start+(sym+1)*n])
		_, pw := dsp.ArgmaxFloat(spec)
		q += pw
	}
	return q
}

// MidpointOffsets resolves a device's residual timing and frequency
// offsets from its preamble peak positions: upBin is the fractional bin
// observed in the upchirp section, downBin in the downchirp section
// (both despread as in EstimateStart), and expectedShift is the device's
// assigned cyclic shift. It returns the timing offset in samples (δ,
// positive = late) and the frequency offset in bins.
//
// The mod-N/2 ambiguity of halving circular quantities is resolved by
// picking the frequency candidate with the smaller magnitude and the
// shift candidate closest to the assigned shift — valid because
// NetScatter's residual offsets are well under N/4 bins (§3.2).
func MidpointOffsets(upBin, downBin float64, expectedShift, n int) (timingSamples, freqBins float64) {
	half := float64(n) / 2

	// f = (upBin + downBin)/2 (mod N/2 ambiguity).
	s := (upBin + downBin) / 2
	f1 := dsp.WrapFrac(s, n)
	f2 := dsp.WrapFrac(s+half, n)
	freqBins = f1
	if math.Abs(f2) < math.Abs(f1) {
		freqBins = f2
	}

	// c - δ = (upBin - downBin)/2 (mod N/2 ambiguity).
	diff := (upBin - downBin) / 2
	c1 := dsp.WrapFrac(diff-float64(expectedShift), n)
	c2 := dsp.WrapFrac(diff+half-float64(expectedShift), n)
	rel := c1
	if math.Abs(c2) < math.Abs(c1) {
		rel = c2
	}
	// rel = (c - δ) - c = -δ.
	timingSamples = -rel
	return timingSamples, freqBins
}

// PreamblePeaks measures the dominant fractional peak bins in the
// upchirp and downchirp sections of a frame whose start is known —
// inputs for MidpointOffsets. It averages the three cleanest symbols of
// each section for noise robustness.
func (d *Decoder) PreamblePeaks(sig []complex128, start int) (upBin, downBin float64) {
	n := d.book.Params().N()
	var upSum, upW float64
	for sym := 0; sym < PreambleUpSymbols; sym++ {
		spec := d.dem.Spectrum(sig[start+sym*n : start+(sym+1)*n])
		idx, pw := dsp.ArgmaxFloat(spec)
		b := d.dem.BinOf(idx)
		if upW == 0 {
			upSum, upW = b*pw, pw
			continue
		}
		// Average around the first estimate, unwrapping the circle.
		ref := upSum / upW
		b = ref + dsp.WrapFrac(b-ref, n)
		upSum += b * pw
		upW += pw
	}
	var downSum, downW float64
	for sym := PreambleUpSymbols; sym < PreambleSymbols; sym++ {
		spec := d.dem.SpectrumDown(sig[start+sym*n : start+(sym+1)*n])
		idx, pw := dsp.ArgmaxFloat(spec)
		b := d.dem.BinOf(idx)
		if downW == 0 {
			downSum, downW = b*pw, pw
			continue
		}
		ref := downSum / downW
		b = ref + dsp.WrapFrac(b-ref, n)
		downSum += b * pw
		downW += pw
	}
	u := 0.0
	if upW > 0 {
		u = upSum / upW
	}
	dn := 0.0
	if downW > 0 {
		dn = downSum / downW
	}
	return dsp.WrapFrac(u, n) + 0, dsp.WrapFrac(dn, n) + 0
}
