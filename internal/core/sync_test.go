package core

import (
	"math"
	"testing"

	"netscatter/internal/air"
	"netscatter/internal/chirp"
	"netscatter/internal/dsp"
)

func TestEstimateStartFindsFrame(t *testing.T) {
	p := testParams
	book, _ := NewCodeBook(p, 2)
	dec := NewDecoder(book, DefaultDecoderConfig(2))
	payload := []byte{0xAB, 0xCD}
	bits := FrameBits(payload)
	n := p.N()

	for _, trueStart := range []int{0, 37, 3*n + 5, 300} {
		rng := dsp.NewRand(int64(trueStart) + 17)
		enc := NewEncoder(p, 10)
		ch := air.NewChannel(p, rng)
		length := trueStart + (PreambleSymbols+len(bits)+2)*n
		sig := ch.Receive(length, []air.Transmission{{
			Waveform: enc.FrameWaveform(payload),
			SNRdB:    8,
			DelaySec: float64(trueStart) / p.SampleRate(),
		}})
		nominal := trueStart + n/3 // off by a third of a symbol
		if nominal+PreambleSymbols*n > length {
			nominal = trueStart
		}
		got := dec.EstimateStart(sig, nominal, n/2, []int{10})
		if d := got - trueStart; d < -1 || d > 1 {
			t.Errorf("trueStart=%d: estimated %d (err %d samples)", trueStart, got, d)
		}
	}
}

func TestEstimateStartMultiDevice(t *testing.T) {
	p := testParams
	book, _ := NewCodeBook(p, 2)
	dec := NewDecoder(book, DefaultDecoderConfig(2))
	payload := []byte{0x77}
	bits := FrameBits(payload)
	n := p.N()
	trueStart := 2 * n

	rng := dsp.NewRand(5)
	var txs []air.Transmission
	for i := 0; i < 8; i++ {
		enc := NewEncoder(p, book.ShiftOfSlot(i))
		txs = append(txs, air.Transmission{
			Waveform: enc.FrameWaveform(payload),
			SNRdB:    6,
			DelaySec: float64(trueStart) / p.SampleRate(),
		})
	}
	ch := air.NewChannel(p, rng)
	sig := ch.Receive(trueStart+(PreambleSymbols+len(bits)+2)*n, txs)
	shifts := make([]int, 8)
	for i := range shifts {
		shifts[i] = book.ShiftOfSlot(i)
	}
	got := dec.EstimateStart(sig, trueStart-n/4, n/2, shifts)
	if d := got - trueStart; d < -1 || d > 1 {
		t.Fatalf("estimated %d, want %d", got, trueStart)
	}
}

func TestMidpointOffsetsResolvesInjectedOffsets(t *testing.T) {
	p := testParams
	book, _ := NewCodeBook(p, 2)
	dec := NewDecoder(book, DefaultDecoderConfig(2))
	payload := []byte{0x0F}
	bits := FrameBits(payload)
	n := p.N()

	cases := []struct {
		shift  int
		dtBins float64 // timing offset in bins (= samples at OS 1)
		dfBins float64 // frequency offset in bins
	}{
		{shift: 8, dtBins: 0, dfBins: 0},
		{shift: 8, dtBins: 0.4, dfBins: 0},
		{shift: 8, dtBins: 0, dfBins: 0.3},
		{shift: 40, dtBins: 0.5, dfBins: -0.25},
		{shift: 120, dtBins: -0.3, dfBins: 0.2},
	}
	for _, tc := range cases {
		rng := dsp.NewRand(int64(tc.shift)*100 + 4)
		enc := NewEncoder(p, tc.shift)
		ch := air.NewChannel(p, rng)
		ch.NoisePower = 0.01 // near-clean for estimator accuracy checks
		sig := ch.Receive((PreambleSymbols+len(bits)+2)*n, []air.Transmission{{
			Waveform: enc.FrameWaveform(payload),
			Delayed: func(frac float64) []complex128 {
				return enc.FrameWaveformDelayed(payload, frac)
			},
			SNRdB:        15,
			DelaySec:     tc.dtBins / p.BW,
			FreqOffsetHz: p.BinsToFreqOffset(tc.dfBins),
		}})
		up, down := dec.PreamblePeaks(sig, 0)
		dtSamples, dfBins := MidpointOffsets(up, down, tc.shift, n)
		// At critical sampling, timing offset in samples == bins.
		if math.Abs(dtSamples-tc.dtBins) > 0.3 {
			t.Errorf("shift=%d dt=%.2f df=%.2f: estimated dt %.3f", tc.shift, tc.dtBins, tc.dfBins, dtSamples)
		}
		if math.Abs(dfBins-tc.dfBins) > 0.3 {
			t.Errorf("shift=%d dt=%.2f df=%.2f: estimated df %.3f bins", tc.shift, tc.dtBins, tc.dfBins, dfBins)
		}
	}
}

func TestAlignQualityPeaksAtTrueStart(t *testing.T) {
	p := testParams
	book, _ := NewCodeBook(p, 2)
	dec := NewDecoder(book, DefaultDecoderConfig(2))
	payload := []byte{0xEE}
	n := p.N()
	trueStart := n

	rng := dsp.NewRand(21)
	enc := NewEncoder(p, 16)
	ch := air.NewChannel(p, rng)
	sig := ch.Receive(trueStart+(PreambleSymbols+len(FrameBits(payload))+2)*n,
		[]air.Transmission{{
			Waveform: enc.FrameWaveform(payload),
			SNRdB:    10,
			DelaySec: float64(trueStart) / p.SampleRate(),
		}})
	qTrue := dec.alignQuality(sig, trueStart)
	qOff := dec.alignQuality(sig, trueStart+n/2)
	if qTrue <= qOff {
		t.Fatalf("quality at true start %.1f <= misaligned %.1f", qTrue, qOff)
	}
}

// Ensure chirp params validate against the book used everywhere here.
func TestTestParamsValid(t *testing.T) {
	if err := testParams.Validate(); err != nil {
		t.Fatal(err)
	}
	if testParams.N() != 128 {
		t.Fatalf("N = %d, want 128", testParams.N())
	}
	if got := testParams.OOKBitRate(); math.Abs(got-976.5625) > 0.01 {
		t.Fatalf("OOK bitrate = %v", got)
	}
}

var _ = chirp.Params{} // keep import if cases change
