package core

import (
	"bytes"

	"testing"
	"testing/quick"

	"netscatter/internal/air"
	"netscatter/internal/chirp"
	"netscatter/internal/dsp"
)

var testParams = chirp.Params{SF: 7, BW: 125e3, Oversample: 1}

// deviceTx builds a Transmission with exact fractional-delay synthesis.
func deviceTx(enc *Encoder, payload []byte, snrDB, delaySec, dfHz float64) air.Transmission {
	return air.Transmission{
		Waveform: enc.FrameWaveform(payload),
		Delayed: func(frac float64) []complex128 {
			return enc.FrameWaveformDelayed(payload, frac)
		},
		SNRdB:        snrDB,
		DelaySec:     delaySec,
		FreqOffsetHz: dfHz,
	}
}

func frameStream(t *testing.T, p chirp.Params, skip int, txs []air.Transmission, payloadBits, seed int64) ([]complex128, *Decoder) {
	t.Helper()
	book, err := NewCodeBook(p, int(skip))
	if err != nil {
		t.Fatal(err)
	}
	ch := air.NewChannel(p, dsp.NewRand(seed))
	length := ch.FrameLength(PreambleSymbols+int(payloadBits), 2)
	sig := ch.Receive(length, txs)
	return sig, NewDecoder(book, DefaultDecoderConfig(int(skip)))
}

func TestDecodeSingleDeviceClean(t *testing.T) {
	p := testParams
	payload := []byte{0xA5, 0x3C, 0x00, 0xFF}
	enc := NewEncoder(p, 4)
	bits := FrameBits(payload)
	tx := air.Transmission{Waveform: enc.FrameWaveform(payload), SNRdB: 10}
	sig, dec := frameStream(t, p, 2, []air.Transmission{tx}, int64(len(bits)), 1)

	res, err := dec.DecodeFrame(sig, 0, []int{4}, len(bits))
	if err != nil {
		t.Fatal(err)
	}
	dev := res.Devices[0]
	if !dev.Detected {
		t.Fatal("device not detected")
	}
	if !dev.CRCOK {
		t.Fatalf("CRC failed; bits=%v", dev.Bits)
	}
	if !bytes.Equal(dev.Payload, payload) {
		t.Fatalf("payload = %x, want %x", dev.Payload, payload)
	}
}

func TestDecodeAbsentDeviceNotDetected(t *testing.T) {
	p := testParams
	payload := []byte{0x11, 0x22}
	enc := NewEncoder(p, 8)
	bits := FrameBits(payload)
	tx := air.Transmission{Waveform: enc.FrameWaveform(payload), SNRdB: 5}
	sig, dec := frameStream(t, p, 2, []air.Transmission{tx}, int64(len(bits)), 2)

	// Candidate shifts: the real device plus two silent ones.
	res, err := dec.DecodeFrame(sig, 0, []int{8, 40, 80}, len(bits))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Devices[0].Detected {
		t.Error("active device missed")
	}
	if res.Devices[1].Detected || res.Devices[2].Detected {
		t.Errorf("silent shifts detected: %+v %+v", res.Devices[1].Detected, res.Devices[2].Detected)
	}
}

func TestDecodeManyConcurrentDevices(t *testing.T) {
	p := testParams // SF7: 128 bins, SKIP 2 -> 64 slots
	skip := 2
	book, err := NewCodeBook(p, skip)
	if err != nil {
		t.Fatal(err)
	}
	rng := dsp.NewRand(42)
	nDev := 48
	payloadBytes := 3
	bitsLen := payloadBytes*8 + CRCBits

	var txs []air.Transmission
	shifts := make([]int, nDev)
	payloads := make([][]byte, nDev)
	for i := 0; i < nDev; i++ {
		shifts[i] = book.ShiftOfSlot(i)
		payloads[i] = rng.Bytes(payloadBytes)
		enc := NewEncoder(p, shifts[i])
		txs = append(txs, air.Transmission{
			Waveform: enc.FrameWaveform(payloads[i]),
			SNRdB:    rng.Uniform(3, 9),
		})
	}
	ch := air.NewChannel(p, rng)
	sig := ch.Receive(ch.FrameLength(PreambleSymbols+bitsLen, 2), txs)

	dec := NewDecoder(book, DefaultDecoderConfig(skip))
	res, err := dec.DecodeFrame(sig, 0, shifts, bitsLen)
	if err != nil {
		t.Fatal(err)
	}
	okCount := 0
	for i, dev := range res.Devices {
		if dev.Detected && dev.CRCOK && bytes.Equal(dev.Payload, payloads[i]) {
			okCount++
		}
	}
	if okCount < nDev-1 {
		t.Fatalf("only %d/%d devices decoded correctly", okCount, nDev)
	}
}

func TestDecodeWithTimingAndFrequencyOffsets(t *testing.T) {
	// Offsets within the SKIP=2 tolerance (< 1 bin total) must decode.
	p := testParams
	skip := 2
	book, err := NewCodeBook(p, skip)
	if err != nil {
		t.Fatal(err)
	}
	rng := dsp.NewRand(7)
	nDev := 24
	payloadBytes := 3
	bitsLen := payloadBytes*8 + CRCBits

	var txs []air.Transmission
	shifts := make([]int, nDev)
	payloads := make([][]byte, nDev)
	for i := 0; i < nDev; i++ {
		shifts[i] = book.ShiftOfSlot(i)
		payloads[i] = rng.Bytes(payloadBytes)
		enc := NewEncoder(p, shifts[i])
		// Up to ±0.35 bin of timing and ±0.1 bin of frequency offset.
		dtBins := rng.Uniform(0, 0.35)
		dfBins := rng.Uniform(-0.1, 0.1)
		txs = append(txs, deviceTx(enc, payloads[i],
			rng.Uniform(4, 10), dtBins/p.BW, p.BinsToFreqOffset(dfBins)))
	}
	ch := air.NewChannel(p, rng)
	sig := ch.Receive(ch.FrameLength(PreambleSymbols+bitsLen, 2), txs)

	dec := NewDecoder(book, DefaultDecoderConfig(skip))
	res, err := dec.DecodeFrame(sig, 0, shifts, bitsLen)
	if err != nil {
		t.Fatal(err)
	}
	okCount := 0
	for i, dev := range res.Devices {
		if dev.Detected && dev.CRCOK && bytes.Equal(dev.Payload, payloads[i]) {
			okCount++
		}
	}
	if okCount < nDev-2 {
		t.Fatalf("only %d/%d devices decoded correctly under offsets", okCount, nDev)
	}
}

func TestDecodeBelowNoiseFloor(t *testing.T) {
	// A single device at -10 dB SNR (below the noise floor) must decode
	// thanks to the 2^SF processing gain (~24 dB at SF 8, leaving a
	// comfortable ~14 dB post-FFT SNR; Fig. 12 of the paper shows the
	// OOK waterfall lives around 12-14 dB post-FFT).
	p := chirp.Params{SF: 8, BW: 250e3, Oversample: 1}
	payload := []byte{0x5A, 0xC3}
	enc := NewEncoder(p, 6)
	bits := FrameBits(payload)
	tx := air.Transmission{Waveform: enc.FrameWaveform(payload), SNRdB: -10}
	sig, dec := frameStream(t, p, 2, []air.Transmission{tx}, int64(len(bits)), 99)

	res, err := dec.DecodeFrame(sig, 0, []int{6}, len(bits))
	if err != nil {
		t.Fatal(err)
	}
	dev := res.Devices[0]
	if !dev.Detected || !dev.CRCOK || !bytes.Equal(dev.Payload, payload) {
		t.Fatalf("below-noise decode failed: detected=%v crc=%v payload=%x",
			dev.Detected, dev.CRCOK, dev.Payload)
	}
}

func TestDecoderFFTCountIndependentOfDevices(t *testing.T) {
	// The receiver-complexity claim (§3.1): FFT work per frame does not
	// grow with the number of candidate devices.
	p := testParams
	book, err := NewCodeBook(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte{1, 2, 3}
	bitsLen := len(payload)*8 + CRCBits
	enc := NewEncoder(p, 0)
	ch := air.NewChannel(p, dsp.NewRand(3))
	sig := ch.Receive(ch.FrameLength(PreambleSymbols+bitsLen, 2),
		[]air.Transmission{{Waveform: enc.FrameWaveform(payload), SNRdB: 8}})

	dec := NewDecoder(book, DefaultDecoderConfig(2))
	res1, err := dec.DecodeFrame(sig, 0, []int{0}, bitsLen)
	if err != nil {
		t.Fatal(err)
	}
	// DecodeFrame results alias decoder-owned arenas, so capture the
	// count before the next decode overwrites it.
	ffts1 := res1.FFTs
	res64, err := dec.DecodeFrame(sig, 0, book.AllShifts(), bitsLen)
	if err != nil {
		t.Fatal(err)
	}
	if ffts1 != res64.FFTs {
		t.Fatalf("FFT count grew with candidates: %d vs %d", ffts1, res64.FFTs)
	}
}

func TestDecodeQuickPayloadRoundTrip(t *testing.T) {
	p := chirp.Params{SF: 6, BW: 125e3, Oversample: 1}
	book, err := NewCodeBook(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(book, DefaultDecoderConfig(2))
	rng := dsp.NewRand(11)
	f := func(payload [3]byte, slotRaw uint8) bool {
		slot := int(slotRaw) % book.Slots()
		shift := book.ShiftOfSlot(slot)
		enc := NewEncoder(p, shift)
		bits := FrameBits(payload[:])
		ch := air.NewChannel(p, rng)
		sig := ch.Receive(ch.FrameLength(PreambleSymbols+len(bits), 2),
			[]air.Transmission{{Waveform: enc.FrameWaveform(payload[:]), SNRdB: 12}})
		res, err := dec.DecodeFrame(sig, 0, []int{shift}, len(bits))
		if err != nil {
			return false
		}
		dev := res.Devices[0]
		return dev.Detected && dev.CRCOK && bytes.Equal(dev.Payload, payload[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeFrameBoundsError(t *testing.T) {
	p := testParams
	book, _ := NewCodeBook(p, 2)
	dec := NewDecoder(book, DefaultDecoderConfig(2))
	if _, err := dec.DecodeFrame(make([]complex128, 10), 0, []int{0}, 8); err == nil {
		t.Error("out-of-bounds frame accepted")
	}
	if _, err := dec.DecodeFrame(make([]complex128, 10000), -1, []int{0}, 8); err == nil {
		t.Error("negative start accepted")
	}
}

func TestAggregateBandwidthDecode(t *testing.T) {
	// §3.1 bandwidth aggregation: Oversample=2 doubles the shift space
	// (one FFT over the aggregate band). Devices in both halves of the
	// extended shift range must decode concurrently.
	p := chirp.Params{SF: 6, BW: 125e3, Oversample: 2}
	book, err := NewCodeBook(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if book.Slots() != 64 { // 2·2^6 / 2
		t.Fatalf("aggregate slots = %d, want 64", book.Slots())
	}
	rng := dsp.NewRand(5)
	payloadBytes := 2
	bitsLen := payloadBytes*8 + CRCBits
	nDev := 16
	var txs []air.Transmission
	shifts := make([]int, nDev)
	payloads := make([][]byte, nDev)
	for i := 0; i < nDev; i++ {
		// Spread across the whole extended range, including shifts
		// beyond 2^SF (the second band).
		shifts[i] = book.ShiftOfSlot(i * (book.Slots() / nDev))
		payloads[i] = rng.Bytes(payloadBytes)
		enc := NewEncoder(p, shifts[i])
		txs = append(txs, air.Transmission{
			Waveform: enc.FrameWaveform(payloads[i]),
			SNRdB:    8,
		})
	}
	ch := air.NewChannel(p, rng)
	sig := ch.Receive(ch.FrameLength(PreambleSymbols+bitsLen, 2), txs)
	dec := NewDecoder(book, DefaultDecoderConfig(2))
	res, err := dec.DecodeFrame(sig, 0, shifts, bitsLen)
	if err != nil {
		t.Fatal(err)
	}
	for i, dev := range res.Devices {
		if !dev.Detected || !dev.CRCOK || !bytes.Equal(dev.Payload, payloads[i]) {
			t.Fatalf("aggregate device %d (shift %d) failed: detected=%v crc=%v",
				i, shifts[i], dev.Detected, dev.CRCOK)
		}
	}
}

func TestObservedBinTracksOffset(t *testing.T) {
	// The preamble estimate of a device's actual bin should reflect an
	// injected timing offset (peak moves by -Δt·BW bins).
	p := testParams
	payload := []byte{0xF0}
	enc := NewEncoder(p, 20)
	bits := FrameBits(payload)
	dtBins := 0.4
	tx := deviceTx(enc, payload, 15, dtBins/p.BW, 0)
	sig, dec := frameStream(t, p, 2, []air.Transmission{tx}, int64(len(bits)), 8)
	res, err := dec.DecodeFrame(sig, 0, []int{20}, len(bits))
	if err != nil {
		t.Fatal(err)
	}
	dev := res.Devices[0]
	if !dev.Detected {
		t.Fatal("not detected")
	}
	// A delay of Δt moves the dechirped tone to c - Δt·BW bins, but the
	// apparent spectral maximum is biased back toward the integer bin:
	// the cyclic-shift wrap splits the symbol into two segments whose
	// sincs interfere. Assert direction and a plausible magnitude rather
	// than the exact tone location.
	got := dev.ObservedBin - 20
	if got > -0.05 || got < -dtBins-0.1 {
		t.Fatalf("observed bin offset %.3f, want in [%.2f, -0.05]", got, -dtBins-0.1)
	}
}
