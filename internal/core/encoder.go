package core

import (
	"fmt"

	"netscatter/internal/chirp"
)

// Encoder produces a single device's transmit waveform: preamble chirps
// and ON-OFF keyed payload chirps, all using the device's assigned
// cyclic shift. In hardware this is the FPGA chirp generator (§4.1);
// here it synthesizes baseband samples for the channel simulator.
type Encoder struct {
	mod   *chirp.Modulator
	shift int
}

// NewEncoder builds an encoder for one device.
func NewEncoder(p chirp.Params, shift int) *Encoder {
	return &Encoder{mod: chirp.NewModulator(p), shift: shift}
}

// Shift returns the device's assigned cyclic shift.
func (e *Encoder) Shift() int { return e.shift }

// SetShift reassigns the device's cyclic shift (the AP can reshuffle
// assignments in its query, §3.3.3).
func (e *Encoder) SetShift(shift int) { e.shift = shift }

// Params returns the chirp parameters.
func (e *Encoder) Params() chirp.Params { return e.mod.Params() }

// AppendFrame appends the full frame waveform for payload to dst:
// 6 shifted upchirps, 2 shifted downchirps, then one shifted upchirp per
// '1' bit and one symbol of silence per '0' bit of FrameBits(payload).
func (e *Encoder) AppendFrame(dst []complex128, payload []byte) []complex128 {
	return e.AppendFrameBits(dst, FrameBits(payload))
}

// AppendFrameBits is AppendFrame for a caller-supplied bit section
// (already including any checksum).
func (e *Encoder) AppendFrameBits(dst []complex128, bits []byte) []complex128 {
	for i := 0; i < PreambleUpSymbols; i++ {
		dst = e.mod.AppendSymbol(dst, e.shift)
	}
	for i := 0; i < PreambleDownSymbols; i++ {
		dst = append(dst, e.mod.DownSymbol(e.shift)...)
	}
	for _, b := range bits {
		if b != 0 {
			dst = e.mod.AppendSymbol(dst, e.shift)
		} else {
			dst = e.mod.AppendSilence(dst)
		}
	}
	return dst
}

// FrameWaveform returns AppendFrame into a fresh slice.
func (e *Encoder) FrameWaveform(payload []byte) []complex128 {
	n := e.Params().N()
	dst := make([]complex128, 0, n*FrameSymbols(len(payload)))
	return e.AppendFrame(dst, payload)
}

// FrameWaveformDelayed synthesizes the frame waveform delayed by frac
// samples (0 <= frac < 1), evaluating each symbol's chirp phase at the
// shifted time coordinates. This is the exact waveform a tag starting
// frac samples late contributes to the AP's sample grid: sample j holds
// frame((j - frac)), with samples near symbol boundaries correctly
// falling into the previous symbol's tail. Integer delays are applied by
// placement (air.Channel); together they realize arbitrary real-valued
// hardware delays with exact chirp physics.
func (e *Encoder) FrameWaveformDelayed(payload []byte, frac float64) []complex128 {
	return e.FrameBitsWaveformDelayed(FrameBits(payload), frac)
}

// FrameBitsWaveformDelayed is FrameWaveformDelayed for a caller-supplied
// bit section (already including any checksum).
func (e *Encoder) FrameBitsWaveformDelayed(bits []byte, frac float64) []complex128 {
	if frac == 0 {
		return e.AppendFrameBits(nil, bits)
	}
	p := e.Params()
	n := p.N()
	totalSyms := PreambleSymbols + len(bits)
	out := make([]complex128, totalSyms*n+1)
	for j := range out {
		u := float64(j) - frac
		if u < 0 {
			continue
		}
		k := int(u) / n
		if k >= totalSyms {
			break
		}
		x := u - float64(k*n)
		switch {
		case k < PreambleUpSymbols:
			out[j] = chirp.EvalShifted(p, e.shift, x)
		case k < PreambleSymbols:
			v := chirp.EvalShifted(p, e.shift, x)
			out[j] = complex(real(v), -imag(v))
		default:
			if bits[k-PreambleSymbols] != 0 {
				out[j] = chirp.EvalShifted(p, e.shift, x)
			}
		}
	}
	return out
}

// OnFraction returns the fraction of payload symbols that carry energy
// for the given bits — used by energy accounting in the simulator.
func OnFraction(bits []byte) float64 {
	if len(bits) == 0 {
		return 0
	}
	on := 0
	for _, b := range bits {
		if b != 0 {
			on++
		}
	}
	return float64(on) / float64(len(bits))
}

// ValidateShiftForBook checks that a shift is assignable in the given
// code book; used when programming devices.
func ValidateShiftForBook(book *CodeBook, shift int) error {
	if _, ok := book.SlotOfShift(shift); !ok {
		return fmt.Errorf("core: shift %d is not a SKIP-%d slot", shift, book.Skip())
	}
	return nil
}
