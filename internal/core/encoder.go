package core

import (
	"fmt"
	"math"

	"netscatter/internal/chirp"
	"netscatter/internal/synth"
)

// Encoder produces a single device's transmit waveform: preamble chirps
// and ON-OFF keyed payload chirps, all using the device's assigned
// cyclic shift. In hardware this is the FPGA chirp generator (§4.1);
// here it synthesizes baseband samples for the channel simulator
// through the shared phase-recurrence engine (internal/synth) — the
// analytic chirp.EvalShifted physics at two complex multiplies per
// sample, with whole frames reduced to one template symbol plus copies.
type Encoder struct {
	p     chirp.Params
	syn   *synth.Synthesizer
	shift int
}

// NewEncoder builds an encoder for one device. The underlying
// synthesizer (and its symbol bank) is cached per parameter set, so
// encoders are cheap to create in bulk.
func NewEncoder(p chirp.Params, shift int) *Encoder {
	syn := synth.For(p)
	return &Encoder{p: syn.Params(), syn: syn, shift: shift}
}

// Shift returns the device's assigned cyclic shift.
func (e *Encoder) Shift() int { return e.shift }

// SetShift reassigns the device's cyclic shift (the AP can reshuffle
// assignments in its query, §3.3.3).
func (e *Encoder) SetShift(shift int) { e.shift = shift }

// Params returns the chirp parameters.
func (e *Encoder) Params() chirp.Params { return e.p }

// AppendFrame appends the full frame waveform for payload to dst:
// 6 shifted upchirps, 2 shifted downchirps, then one shifted upchirp per
// '1' bit and one symbol of silence per '0' bit of FrameBits(payload).
func (e *Encoder) AppendFrame(dst []complex128, payload []byte) []complex128 {
	return e.AppendFrameBits(dst, FrameBits(payload))
}

// AppendFrameBits is AppendFrame for a caller-supplied bit section
// (already including any checksum). Symbols are written in place from
// the synthesizer's bank — no per-symbol scratch slices.
func (e *Encoder) AppendFrameBits(dst []complex128, bits []byte) []complex128 {
	return e.syn.AppendFrame(dst, e.shift, PreambleUpSymbols, PreambleDownSymbols, bits)
}

// FrameWaveform returns AppendFrame into a fresh slice.
func (e *Encoder) FrameWaveform(payload []byte) []complex128 {
	n := e.p.N()
	dst := make([]complex128, 0, n*FrameSymbols(len(payload)))
	return e.AppendFrame(dst, payload)
}

// FrameWaveformDelayed synthesizes the frame waveform delayed by frac
// samples (0 <= frac < 1), evaluating each symbol's chirp phase at the
// shifted time coordinates. This is the exact waveform a tag starting
// frac samples late contributes to the AP's sample grid: sample j holds
// frame((j - frac)), with samples near symbol boundaries correctly
// falling into the previous symbol's tail. Integer delays are applied by
// placement (air.Channel); together they realize arbitrary real-valued
// hardware delays with exact chirp physics.
func (e *Encoder) FrameWaveformDelayed(payload []byte, frac float64) []complex128 {
	return e.FrameBitsWaveformDelayed(FrameBits(payload), frac)
}

// FrameBitsWaveformDelayed is FrameWaveformDelayed for a caller-supplied
// bit section (already including any checksum).
func (e *Encoder) FrameBitsWaveformDelayed(bits []byte, frac float64) []complex128 {
	return e.FrameBitsWaveformDelayedInto(nil, bits, frac)
}

// FrameBitsWaveformDelayedInto is FrameBitsWaveformDelayed writing into
// dst's storage when its capacity suffices — the simulator's round
// context reuses one buffer per device across rounds, keeping the
// per-round synthesis path allocation-free.
func (e *Encoder) FrameBitsWaveformDelayedInto(dst []complex128, bits []byte, frac float64) []complex128 {
	return e.syn.FrameDelayedInto(dst, e.shift, PreambleUpSymbols, PreambleDownSymbols, bits, frac)
}

// FrameBitsWaveformMixedInto synthesizes the delayed frame with a
// frequency offset of freqOffsetHz and a complex carrier gain folded
// into the recurrence — the waveform air.Channel would otherwise
// produce by synthesizing, rotating and scaling in three passes.
func (e *Encoder) FrameBitsWaveformMixedInto(dst []complex128, bits []byte, frac, freqOffsetHz float64, gain complex128) []complex128 {
	omega := 2 * math.Pi * freqOffsetHz / e.p.SampleRate()
	return e.syn.FrameMixedInto(dst, e.shift, PreambleUpSymbols, PreambleDownSymbols, bits, frac, omega, gain)
}

// FrameBitsWaveformMixedAdd accumulates the mixed frame directly into a
// receive buffer at sample offset at, clipped to out's bounds — the
// superposition step fused into synthesis, so the frame is never
// materialized. tmpl is caller-owned template scratch (grown to 2N and
// returned for reuse); out must have been accumulated from zeroed
// storage (see synth.FrameMixedAccumulate for the exactness contract).
func (e *Encoder) FrameBitsWaveformMixedAdd(out []complex128, at int, tmpl []complex128, bits []byte, frac, freqOffsetHz float64, gain complex128) []complex128 {
	omega := 2 * math.Pi * freqOffsetHz / e.p.SampleRate()
	return e.syn.FrameMixedAccumulate(out, at, tmpl, e.shift, PreambleUpSymbols, PreambleDownSymbols, bits, frac, omega, gain)
}

// FrameBitsWaveformMixedTemplates synthesizes the mixed frame's
// template symbols into tmpl (grown to 2N and returned for reuse) —
// the per-device setup step of the tiled channel path, after which any
// sub-range of a receive buffer can be accumulated with
// FrameBitsWaveformMixedAddRange.
func (e *Encoder) FrameBitsWaveformMixedTemplates(tmpl []complex128, bits []byte, frac, freqOffsetHz float64, gain complex128) []complex128 {
	omega := 2 * math.Pi * freqOffsetHz / e.p.SampleRate()
	return e.syn.FrameMixedTemplates(tmpl, e.shift, PreambleUpSymbols, PreambleDownSymbols, bits, frac, omega, gain)
}

// FrameBitsWaveformMixedAddRange accumulates the [lo, hi) clip of the
// mixed frame (placed at sample offset at) into out, reading templates
// prepared by FrameBitsWaveformMixedTemplates with the same arguments.
// Accumulating disjoint tiles that cover the buffer reproduces
// FrameBitsWaveformMixedAdd bit for bit (see
// synth.FrameMixedAccumulateRange).
func (e *Encoder) FrameBitsWaveformMixedAddRange(out []complex128, lo, hi, at int, tmpl []complex128, bits []byte, frac, freqOffsetHz float64) {
	omega := 2 * math.Pi * freqOffsetHz / e.p.SampleRate()
	e.syn.FrameMixedAccumulateRange(out, lo, hi, at, tmpl, PreambleUpSymbols, PreambleDownSymbols, bits, frac, omega)
}

// OnFraction returns the fraction of payload symbols that carry energy
// for the given bits — used by energy accounting in the simulator.
func OnFraction(bits []byte) float64 {
	if len(bits) == 0 {
		return 0
	}
	on := 0
	for _, b := range bits {
		if b != 0 {
			on++
		}
	}
	return float64(on) / float64(len(bits))
}

// ValidateShiftForBook checks that a shift is assignable in the given
// code book; used when programming devices.
func ValidateShiftForBook(book *CodeBook, shift int) error {
	if _, ok := book.SlotOfShift(shift); !ok {
		return fmt.Errorf("core: shift %d is not a SKIP-%d slot", shift, book.Skip())
	}
	return nil
}
