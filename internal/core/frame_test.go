package core

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestBytesBitsRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		bits := BytesToBits(data)
		if len(bits) != len(data)*8 {
			return false
		}
		return bytes.Equal(BitsToBytes(bits), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameBitsRoundTrip(t *testing.T) {
	f := func(payload []byte) bool {
		bits := FrameBits(payload)
		if len(bits) != len(payload)*8+CRCBits {
			return false
		}
		got, ok := CheckFrameBits(bits)
		return ok && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameBitsDetectsCorruption(t *testing.T) {
	payload := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x42}
	bits := FrameBits(payload)
	for i := range bits {
		bits[i] ^= 1
		if _, ok := CheckFrameBits(bits); ok {
			t.Fatalf("bit flip at %d not detected", i)
		}
		bits[i] ^= 1
	}
}

func TestCheckFrameBitsRejectsBadLengths(t *testing.T) {
	if _, ok := CheckFrameBits(nil); ok {
		t.Error("nil bits accepted")
	}
	if _, ok := CheckFrameBits(make([]byte, 7)); ok {
		t.Error("too-short bits accepted")
	}
	if _, ok := CheckFrameBits(make([]byte, 13)); ok {
		t.Error("non-byte-aligned payload accepted")
	}
}

func TestFrameSymbols(t *testing.T) {
	// 5-byte payload (the paper's network experiments): 8 preamble
	// symbols + 40 payload bits + 8 CRC bits.
	if got := FrameSymbols(5); got != 56 {
		t.Fatalf("FrameSymbols(5) = %d, want 56", got)
	}
}

func TestCRC8KnownValue(t *testing.T) {
	// CRC-8/ATM of "123456789" is 0xF4.
	bits := BytesToBits([]byte("123456789"))
	if got := crc8(bits); got != 0xF4 {
		t.Fatalf("crc8(123456789) = %#x, want 0xF4", got)
	}
}

func TestOnFraction(t *testing.T) {
	if got := OnFraction([]byte{1, 0, 1, 0}); got != 0.5 {
		t.Fatalf("OnFraction = %v, want 0.5", got)
	}
	if got := OnFraction(nil); got != 0 {
		t.Fatalf("OnFraction(nil) = %v, want 0", got)
	}
}
