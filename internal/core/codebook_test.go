package core

import (
	"testing"
	"testing/quick"

	"netscatter/internal/chirp"
	"netscatter/internal/dsp"
)

func testBook(t *testing.T, sf, skip int) *CodeBook {
	t.Helper()
	book, err := NewCodeBook(chirp.Params{SF: sf, BW: 500e3, Oversample: 1}, skip)
	if err != nil {
		t.Fatal(err)
	}
	return book
}

func TestCodeBookPaperCapacity(t *testing.T) {
	// SF 9 with SKIP 2 supports 256 concurrent shifts (§4.2).
	book := testBook(t, 9, 2)
	if book.Slots() != 256 {
		t.Fatalf("Slots() = %d, want 256", book.Slots())
	}
}

func TestCodeBookSlotShiftInverse(t *testing.T) {
	for _, skip := range []int{1, 2, 3, 4} {
		book, err := NewCodeBook(chirp.Params{SF: 8, BW: 500e3, Oversample: 1}, skip)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int]bool{}
		for slot := 0; slot < book.Slots(); slot++ {
			shift := book.ShiftOfSlot(slot)
			if seen[shift] {
				t.Fatalf("skip=%d duplicate shift %d", skip, shift)
			}
			seen[shift] = true
			got, ok := book.SlotOfShift(shift)
			if !ok || got != slot {
				t.Fatalf("skip=%d SlotOfShift(%d) = %d,%v want %d", skip, shift, got, ok, slot)
			}
		}
		// The guard invariant: every pair of assigned shifts is at
		// least SKIP bins apart on the circular spectrum.
		n := book.Params().N()
		shifts := book.AllShifts()
		for i, a := range shifts {
			for _, b := range shifts[i+1:] {
				if d := dsp.CircularDistance(a, b, n); d < skip {
					t.Fatalf("skip=%d shifts %d,%d only %d bins apart", skip, a, b, d)
				}
			}
		}
	}
}

func TestCodeBookSlotDistanceMonotonic(t *testing.T) {
	// Higher slot index must never be closer to slot 0 than a lower
	// one — the property the power-aware allocator relies on.
	book := testBook(t, 9, 2)
	prev := -1
	for slot := 0; slot < book.Slots(); slot++ {
		d := book.CircularBinDistance(0, slot)
		if d < prev {
			t.Fatalf("slot %d distance %d < previous %d", slot, d, prev)
		}
		prev = d
	}
	// The farthest slot sits near the spectrum middle.
	far := book.CircularBinDistance(0, book.Slots()-1)
	if far < book.Params().N()/2-book.Skip() {
		t.Fatalf("farthest slot only %d bins away", far)
	}
}

func TestCodeBookAdjacentSlotsNearby(t *testing.T) {
	// The zig-zag ordering alternates sides of the anchor, so slots i
	// and i+2 sit on the same side exactly SKIP apart, and slots i and
	// i+1 are at most ~2·SKIP apart in circular distance — devices with
	// similar SNR end up physically near each other as §3.2.3 requires.
	book := testBook(t, 9, 2)
	for slot := 2; slot < book.Slots(); slot++ {
		d := book.CircularBinDistance(slot-2, slot)
		if d > 2*book.Skip() {
			t.Fatalf("slots %d,%d are %d bins apart", slot-2, slot, d)
		}
	}
}

func TestCodeBookSlotOfShiftRejectsNonSlots(t *testing.T) {
	book := testBook(t, 9, 2)
	if _, ok := book.SlotOfShift(3); ok {
		t.Error("odd shift accepted with SKIP=2")
	}
}

func TestCodeBookQuickInverse(t *testing.T) {
	book := testBook(t, 9, 2)
	f := func(raw int) bool {
		slot := ((raw % book.Slots()) + book.Slots()) % book.Slots()
		got, ok := book.SlotOfShift(book.ShiftOfSlot(slot))
		return ok && got == slot
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCodeBookAssociationSlots(t *testing.T) {
	book := testBook(t, 9, 2)
	hi, lo := book.AssociationSlots()
	if hi < 0 || hi >= book.Slots() || lo < 0 || lo >= book.Slots() || hi == lo {
		t.Fatalf("bad association slots %d, %d", hi, lo)
	}
	// High-SNR slot near the anchor, low-SNR slot far from it.
	if book.CircularBinDistance(0, hi) >= book.CircularBinDistance(0, lo) {
		t.Fatalf("high-SNR assoc slot farther than low-SNR slot")
	}
}

func TestNewCodeBookErrors(t *testing.T) {
	if _, err := NewCodeBook(chirp.Params{SF: 9, BW: 500e3}, 0); err == nil {
		t.Error("SKIP=0 accepted")
	}
	if _, err := NewCodeBook(chirp.Params{SF: 9, BW: 500e3}, 1024); err == nil {
		t.Error("huge SKIP accepted")
	}
	if _, err := NewCodeBook(chirp.Params{SF: 99, BW: 500e3}, 2); err == nil {
		t.Error("bad SF accepted")
	}
}
