package core

import (
	"fmt"
	"math"

	"netscatter/internal/chirp"
	"netscatter/internal/dsp"
)

// DecoderConfig tunes the concurrent decoder. The zero value is not
// valid; use DefaultDecoderConfig.
type DecoderConfig struct {
	// ZeroPad is the FFT zero-padding factor for sub-bin resolution
	// (§3.2.3). Fig. 8 of the paper corresponds to 10x; 8 keeps the
	// padded size a power of two.
	ZeroPad int
	// DetectFactor is how far (linear power ratio) a device's mean
	// preamble peak must sit above the estimated noise-bin power to be
	// declared present.
	DetectFactor float64
	// PresentFactor is the per-symbol bar each preamble symbol must
	// clear (lower than DetectFactor; non-coherent averaging over the
	// six upchirps does the heavy lifting).
	PresentFactor float64
	// MinPresent is how many of the six preamble upchirps must
	// individually clear PresentFactor.
	MinPresent int
	// GuardBins is the half-width (in FFT bins) of the preamble search
	// window around a device's assigned bin; it must accommodate the
	// residual timing/frequency offset, i.e. about SKIP/2.
	GuardBins float64
	// TrackBins is the tighter payload search half-width around the
	// device's preamble-estimated bin.
	TrackBins float64
	// OOKFactor is the fraction of a device's mean preamble peak power
	// used as its ON/OFF decision threshold. The paper uses 1/2
	// (§3.3.1). At full SKIP=2 density the preamble reference is biased
	// high — every neighbour is ON during the preamble but only half
	// the time during the payload, so '1' powers fluctuate below the
	// preamble mean — and a somewhat lower factor is more robust; the
	// threshold ablation bench quantifies the trade-off.
	OOKFactor float64
	// OOKNoiseGuard lower-bounds the OOK threshold at this multiple of
	// the per-bin noise power, protecting '0' decisions when a device
	// operates far below the noise floor (where OOKFactor·meanPeak
	// approaches the noise level itself).
	OOKNoiseGuard float64
	// NoiseFloor, when positive, is the calibrated per-padded-bin noise
	// power (receivers measure their thermal floor while no tag
	// transmits — the AP controls the schedule, so quiet intervals are
	// free). When zero, the decoder falls back to estimating the floor
	// from the lower quartile of each spectrum, which overestimates
	// badly at full device density: with 256 concurrent main lobes
	// there are no noise-only bins left to sample.
	NoiseFloor float64
	// GhostFactor rejects side-lobe ghosts: a strong device's Dirichlet
	// side lobes carry its exact OOK pattern, so an unoccupied candidate
	// bin can "decode" a CRC-valid replica of that device's frame at
	// -13.5 dB or below. A detected candidate whose bits are identical
	// to another detected candidate's and whose mean peak power is more
	// than GhostFactor times weaker is demoted. Zero disables the check.
	GhostFactor float64
}

// DefaultDecoderConfig returns the configuration used for the paper's
// deployment parameters (SKIP = 2).
func DefaultDecoderConfig(skip int) DecoderConfig {
	return DecoderConfig{
		ZeroPad:       8,
		DetectFactor:  4,
		PresentFactor: 1.8,
		MinPresent:    5,
		GuardBins:     float64(skip) / 2,
		TrackBins:     0.3,
		OOKFactor:     0.35,
		OOKNoiseGuard: 3.5,
		GhostFactor:   15, // ~11.8 dB, safely under the -13.5 dB first side lobe
	}
}

// DeviceDecode is the decode outcome for one candidate cyclic shift.
type DeviceDecode struct {
	// Shift is the candidate cyclic shift (FFT bin) examined.
	Shift int
	// Detected reports whether the preamble test found the device.
	Detected bool
	// MeanPeakPower is the average FFT peak power over the six
	// preamble upchirps — the reference for the OOK threshold.
	MeanPeakPower float64
	// ObservedBin is the power-weighted fractional bin where the
	// device's energy actually appeared (assigned bin plus residual
	// timing/frequency offset).
	ObservedBin float64
	// Bits is the demodulated payload section (including CRC bits).
	Bits []byte
	// Payload is the CRC-stripped payload; nil when the CRC failed.
	Payload []byte
	// CRCOK reports whether the frame check sequence matched.
	CRCOK bool
}

// FrameDecode is the result of decoding one concurrent frame.
type FrameDecode struct {
	// Start is the sample index the frame was decoded at.
	Start int
	// NoiseBinPower is the estimated per-bin noise power used for
	// detection thresholds.
	NoiseBinPower float64
	// Devices holds one entry per candidate shift, in input order.
	Devices []DeviceDecode
	// FFTs is the number of FFT operations performed — independent of
	// the number of candidate devices (the paper's receiver-complexity
	// claim, §3.1).
	FFTs int
}

// DetectedCount returns how many candidates were detected.
func (f *FrameDecode) DetectedCount() int {
	n := 0
	for _, d := range f.Devices {
		if d.Detected {
			n++
		}
	}
	return n
}

// Decoder decodes concurrent NetScatter transmissions. One dechirp and
// one (zero-padded, pruned) FFT are performed per symbol; every candidate
// device is then read off the shared spectrum. Not safe for concurrent
// use.
//
// The decoder is steady-state allocation-free: every buffer — including
// the returned FrameDecode, its Devices, Bits and Payload slices — lives
// in arenas that grow to the high-water mark of (candidates,
// payloadBits) and are reused afterwards. A DecodeFrame result is
// therefore only valid until the next DecodeFrame call on the same
// decoder; callers that keep payloads must copy them.
type Decoder struct {
	book *CodeBook
	dem  *chirp.Demodulator
	cfg  DecoderConfig

	// per-candidate accumulators, reused across calls
	sumPower  []float64
	sumWBin   []float64
	present   []int
	scanPow   []float64
	scanAt    []float64
	payCenter []int // padded payload search center per candidate; -1 = not detected
	quantBuf  []float64

	// noisePerSym holds each preamble symbol's noise-floor estimate;
	// keeping them in per-symbol slots (instead of a running sum) lets
	// the parallel decoder fill them from workers and still reduce in a
	// fixed order, bit-identical to the serial path.
	noisePerSym [PreambleUpSymbols]float64

	// emitSpec holds per-preamble-symbol views into a caller's emitted
	// spectra arena (DecodeFrameEmit / DecodeFrameSpectra); a fixed-size
	// array of reslices so repointing it each call allocates nothing.
	emitSpec [PreambleUpSymbols][]float64

	// result arenas, reused across calls
	res     FrameDecode
	devices []DeviceDecode
	powers  []float64 // candidate-major [cand][sym] payload peak powers
	bits    []byte    // candidate-major payload bit storage
	payload []byte    // candidate-major CRC-stripped payload bytes
}

// NewDecoder builds a decoder over a code book.
func NewDecoder(book *CodeBook, cfg DecoderConfig) *Decoder {
	if cfg.ZeroPad < 1 {
		panic("core: DecoderConfig.ZeroPad must be >= 1")
	}
	return &Decoder{
		book: book,
		dem:  chirp.NewDemodulator(book.Params(), cfg.ZeroPad),
		cfg:  cfg,
	}
}

// Book returns the decoder's code book.
func (d *Decoder) Book() *CodeBook { return d.book }

// Demodulator exposes the underlying demodulator (for experiments that
// inspect raw spectra).
func (d *Decoder) Demodulator() *chirp.Demodulator { return d.dem }

// DecodeFrame decodes a frame of payloadBits OOK symbols starting at
// sample index start for the given candidate shifts. The signal must
// contain the full frame (PreambleSymbols + payloadBits symbols). The
// returned FrameDecode aliases decoder-owned storage and is valid until
// the next DecodeFrame call.
//
// The number crunching runs through the batched planar front-end
// (chirp.SpectraBatch / chirp.ScanBatch): whole symbol runs are
// dechirped and transformed per pre-planned pass, and payload peak
// powers are written straight into the decoder's candidate-major power
// arena without materializing per-symbol spectra. The output is
// bit-identical to DecodeFrameOracle, the retained single-symbol path —
// a property the test suite enforces.
func (d *Decoder) DecodeFrame(sig []complex128, start int, shifts []int, payloadBits int) (*FrameDecode, error) {
	if err := d.begin(sig, start, shifts, payloadBits); err != nil {
		return nil, err
	}
	n := d.book.Params().N()

	// Pass 1: preamble upchirps — the whole run of spectra in one batch
	// into the demodulator's arena, per-symbol noise quantiles, then
	// candidate statistics and detection.
	specs := d.dem.SpectraBatch(sig, start, PreambleUpSymbols)
	for sym, spec := range specs {
		if d.cfg.NoiseFloor > 0 {
			d.noisePerSym[sym] = d.cfg.NoiseFloor
		} else {
			d.noisePerSym[sym], d.quantBuf = noiseQuantile(d.quantBuf, spec)
		}
	}
	noise := d.reduceNoise()
	d.accumPreamble(specs, shifts, noise)

	// Pass 2: payload symbols, fused — dechirp, pruned planar FFT and
	// candidate window scan in one kernel, peak powers landing directly
	// in the candidate-major power arena. The two preamble downchirps
	// are skipped — they exist for packet-start estimation (sync.go).
	d.preparePayload(payloadBits)
	payloadStart := start + PreambleSymbols*n
	d.dem.ScanBatch(sig, payloadStart, 0, payloadBits, d.payCenter, d.trackHalf(), d.powers, payloadBits)

	d.finish(noise, payloadBits)
	d.rejectGhosts(d.devices)
	return &d.res, nil
}

// DecodeFrameOracle is DecodeFrame through the single-symbol pipeline —
// one chirp.Demodulator.Spectrum and one window scan per symbol, the
// original per-symbol receiver. It is retained as the bit-exactness
// oracle for the batched path: both produce identical FrameDecodes for
// identical inputs, and the batch kernels are only allowed
// optimizations that preserve that equality.
func (d *Decoder) DecodeFrameOracle(sig []complex128, start int, shifts []int, payloadBits int) (*FrameDecode, error) {
	if err := d.begin(sig, start, shifts, payloadBits); err != nil {
		return nil, err
	}
	n := d.book.Params().N()

	specs := d.dem.Spectra(sig, start, PreambleUpSymbols)
	for sym, spec := range specs {
		if d.cfg.NoiseFloor > 0 {
			d.noisePerSym[sym] = d.cfg.NoiseFloor
		} else {
			d.noisePerSym[sym], d.quantBuf = noiseQuantile(d.quantBuf, spec)
		}
	}
	noise := d.reduceNoise()
	d.accumPreamble(specs, shifts, noise)

	d.preparePayload(payloadBits)
	payloadStart := start + PreambleSymbols*n
	halfIdx := d.trackHalf()
	for sym := 0; sym < payloadBits; sym++ {
		spec := d.dem.Spectrum(sig[payloadStart+sym*n : payloadStart+(sym+1)*n])
		chirp.ScanPaddedCenters(spec, d.payCenter, halfIdx, d.scanPow)
		for i := range shifts {
			if d.payCenter[i] >= 0 {
				d.powers[i*payloadBits+sym] = d.scanPow[i]
			}
		}
	}

	d.finish(noise, payloadBits)
	d.rejectGhosts(d.devices)
	return &d.res, nil
}

// EmitRows returns the number of spectra rows an emitted-spectra arena
// holds for a frame of payloadBits payload symbols: the six preamble
// upchirps plus one row per payload symbol. The two preamble downchirps
// carry no decode information and are skipped, exactly as DecodeFrame
// skips them.
func EmitRows(payloadBits int) int { return PreambleUpSymbols + payloadBits }

// EmitLen returns the float64 length of an emitted-spectra arena for a
// frame of payloadBits payload symbols: EmitRows rows of PaddedBins()
// bins each, row r of symbol r at [r·PaddedBins(), (r+1)·PaddedBins()).
func (d *Decoder) EmitLen(payloadBits int) int {
	return EmitRows(payloadBits) * d.dem.PaddedBins()
}

// DecodeFrameEmit is DecodeFrame that additionally materializes every
// decode-relevant power spectrum into emit (layout per EmitLen): the
// six preamble upchirp spectra followed by one row per payload symbol.
// The decode outcome is bit-identical to DecodeFrame — the preamble
// rows are the exact arena SpectraBatch fills, and the payload scan
// runs through chirp.ScanBatchEmit, whose scan output is untouched by
// the emission. The emitted rows are what the soft cross-AP combiner
// sums across APs before a single DecodeFrameSpectra pass.
func (d *Decoder) DecodeFrameEmit(sig []complex128, start int, shifts []int, payloadBits int, emit []float64) (*FrameDecode, error) {
	if err := d.begin(sig, start, shifts, payloadBits); err != nil {
		return nil, err
	}
	if len(emit) < d.EmitLen(payloadBits) {
		return nil, fmt.Errorf("core: emit arena length %d, want at least %d", len(emit), d.EmitLen(payloadBits))
	}
	n := d.book.Params().N()
	bins := d.dem.PaddedBins()

	// Pass 1: preamble upchirp spectra batched straight into the emit
	// arena's leading rows (instead of the demodulator's private arena).
	d.dem.SpectraBatchInto(emit[:PreambleUpSymbols*bins], sig, start, PreambleUpSymbols)
	for sym := range d.emitSpec {
		d.emitSpec[sym] = emit[sym*bins : (sym+1)*bins]
		if d.cfg.NoiseFloor > 0 {
			d.noisePerSym[sym] = d.cfg.NoiseFloor
		} else {
			d.noisePerSym[sym], d.quantBuf = noiseQuantile(d.quantBuf, d.emitSpec[sym])
		}
	}
	noise := d.reduceNoise()
	d.accumPreamble(d.emitSpec[:], shifts, noise)

	// Pass 2: fused payload scan, with each symbol's power spectrum
	// emitted into its arena row on the way through.
	d.preparePayload(payloadBits)
	payloadStart := start + PreambleSymbols*n
	d.dem.ScanBatchEmit(sig, payloadStart, 0, payloadBits, d.payCenter, d.trackHalf(), d.powers, payloadBits, emit[PreambleUpSymbols*bins:])

	d.finish(noise, payloadBits)
	d.rejectGhosts(d.devices)
	return &d.res, nil
}

// DecodeFrameSpectra decodes a frame from materialized power-spectrum
// rows instead of a signal — the soft (non-coherent) cross-AP combining
// entry point. spectra follows the DecodeFrameEmit layout for
// payloadBits (see EmitLen); typically it is the bin-wise sum of
// nSummed per-AP emitted arenas. A calibrated NoiseFloor is scaled by
// nSummed, since summing k APs' spectra sums their independent noise
// powers; the quantile fallback estimates from the summed rows
// directly.
//
// With nSummed = 1 and one AP's emitted arena, the result is
// bit-identical to DecodeFrame on that AP's signal (up to the FFTs
// count, reported as 0 here because this pass performs none): the rows
// are the exact spectra DecodeFrame scans, and windowMax over a
// materialized row is bit-identical to the fused planar scan
// (chirp.planarWindowPower's contract). The test suite enforces this
// k=1 degeneracy.
func (d *Decoder) DecodeFrameSpectra(spectra []float64, nSummed int, shifts []int, payloadBits int) (*FrameDecode, error) {
	if nSummed < 1 {
		return nil, fmt.Errorf("core: DecodeFrameSpectra nSummed %d, want >= 1", nSummed)
	}
	if len(spectra) < d.EmitLen(payloadBits) {
		return nil, fmt.Errorf("core: spectra arena length %d, want at least %d", len(spectra), d.EmitLen(payloadBits))
	}
	bins := d.dem.PaddedBins()
	d.beginFrame(0, shifts, payloadBits, 0)

	for sym := range d.emitSpec {
		d.emitSpec[sym] = spectra[sym*bins : (sym+1)*bins]
		if d.cfg.NoiseFloor > 0 {
			d.noisePerSym[sym] = d.cfg.NoiseFloor * float64(nSummed)
		} else {
			d.noisePerSym[sym], d.quantBuf = noiseQuantile(d.quantBuf, d.emitSpec[sym])
		}
	}
	noise := d.reduceNoise()
	d.accumPreamble(d.emitSpec[:], shifts, noise)

	d.preparePayload(payloadBits)
	halfIdx := d.trackHalf()
	for sym := 0; sym < payloadBits; sym++ {
		row := spectra[(PreambleUpSymbols+sym)*bins : (PreambleUpSymbols+sym+1)*bins]
		chirp.ScanPaddedCenters(row, d.payCenter, halfIdx, d.scanPow)
		for i := range shifts {
			if d.payCenter[i] >= 0 {
				d.powers[i*payloadBits+sym] = d.scanPow[i]
			}
		}
	}

	d.finish(noise, payloadBits)
	d.rejectGhosts(d.devices)
	return &d.res, nil
}

// begin validates the request and prepares (grows, resets) every arena
// for a frame of len(shifts) candidates and payloadBits payload symbols.
func (d *Decoder) begin(sig []complex128, start int, shifts []int, payloadBits int) error {
	n := d.book.Params().N()
	total := (PreambleSymbols + payloadBits) * n
	if start < 0 || start+total > len(sig) {
		return fmt.Errorf("core: frame [%d, %d) outside signal of %d samples", start, start+total, len(sig))
	}
	d.beginFrame(start, shifts, payloadBits, PreambleUpSymbols+payloadBits)
	return nil
}

// beginFrame is begin without the signal-bounds check — the shared
// arena setup for both the signal-driven and spectra-driven decode
// entry points. ffts is the FFT count recorded in the result: one per
// dechirped symbol on the signal paths, zero on the spectra path
// (which reuses transforms its inputs already paid for).
func (d *Decoder) beginFrame(start int, shifts []int, payloadBits, ffts int) {
	d.grow(len(shifts), payloadBits)
	for i, s := range shifts {
		d.devices[i] = DeviceDecode{Shift: s}
		d.sumPower[i] = 0
		d.sumWBin[i] = 0
		d.present[i] = 0
	}
	d.res = FrameDecode{
		Start:   start,
		Devices: d.devices,
		// One dechirped FFT per preamble upchirp and per payload symbol,
		// independent of the candidate count (§3.1).
		FFTs: ffts,
	}
}

// accumPreamble folds the preamble spectra into per-candidate peak
// statistics and applies the detection rule. One ScanPeaks pass per
// symbol serves both the power accumulation and the per-symbol presence
// test (the noise estimate is already known), where the previous decoder
// walked every candidate window twice.
func (d *Decoder) accumPreamble(specs [][]float64, shifts []int, noise float64) {
	p := d.book.Params()
	presentBar := d.cfg.PresentFactor * noise
	for _, spec := range specs {
		d.dem.ScanPeaks(spec, shifts, d.cfg.GuardBins, d.scanPow, d.scanAt)
		for i, s := range shifts {
			pw := d.scanPow[i]
			d.sumPower[i] += pw
			// Accumulate the peak location weighted by power, unwrapped
			// around the assigned bin so averaging works across the
			// circular boundary.
			rel := dsp.WrapFrac(d.scanAt[i]-float64(s), p.N())
			d.sumWBin[i] += pw * rel
			if pw > presentBar {
				d.present[i]++
			}
		}
	}
	for i := range shifts {
		dev := &d.devices[i]
		dev.MeanPeakPower = d.sumPower[i] / PreambleUpSymbols
		rel := 0.0
		if d.sumPower[i] > 0 {
			rel = d.sumWBin[i] / d.sumPower[i]
		}
		dev.ObservedBin = float64(dev.Shift) + rel
		dev.Detected = dev.MeanPeakPower > d.cfg.DetectFactor*noise &&
			d.present[i] >= d.cfg.MinPresent
	}
	d.res.NoiseBinPower = noise
}

// preparePayload computes each detected candidate's padded-spectrum
// search center (undetected slots get -1 and are skipped by the scan)
// and hands out Bits storage from the bit arena.
func (d *Decoder) preparePayload(payloadBits int) {
	zp := d.dem.ZeroPad()
	bins := d.dem.PaddedBins()
	for i := range d.devices {
		dev := &d.devices[i]
		if !dev.Detected {
			d.payCenter[i] = -1
			continue
		}
		d.payCenter[i] = dsp.WrapIndex(int(math.Round(dev.ObservedBin*float64(zp))), bins)
		bits := d.bits[i*payloadBits : (i+1)*payloadBits]
		clear(bits)
		dev.Bits = bits
	}
}

// trackHalf is the payload search half-width in padded bins.
func (d *Decoder) trackHalf() int {
	return int(d.cfg.TrackBins * float64(d.dem.ZeroPad()))
}

// finish applies each detected device's OOK threshold to its collected
// payload peak powers and checks the CRC, decoding payload bytes into
// the payload arena.
func (d *Decoder) finish(noise float64, payloadBits int) {
	nBytes := payloadByteCount(payloadBits)
	for i := range d.devices {
		dev := &d.devices[i]
		if !dev.Detected {
			continue
		}
		thr := dev.MeanPeakPower * d.cfg.OOKFactor
		if guard := d.cfg.OOKNoiseGuard * noise; thr < guard {
			thr = guard
		}
		row := d.powers[i*payloadBits : (i+1)*payloadBits]
		for sym, pw := range row {
			if pw > thr {
				dev.Bits[sym] = 1
			}
		}
		if nBytes >= 0 {
			dst := d.payload[i*nBytes : (i+1)*nBytes]
			if CheckFrameBitsInto(dst, dev.Bits) {
				dev.Payload = dst
				dev.CRCOK = true
			}
		}
	}
}

// payloadByteCount returns the CRC-stripped byte count of a payload
// section, or -1 when the bit count cannot carry a framed payload.
func payloadByteCount(payloadBits int) int {
	if payloadBits < CRCBits || (payloadBits-CRCBits)%8 != 0 {
		return -1
	}
	return (payloadBits - CRCBits) / 8
}

// reduceNoise averages the per-symbol noise estimates in symbol order.
func (d *Decoder) reduceNoise() float64 {
	var sum float64
	for _, v := range d.noisePerSym {
		sum += v
	}
	return sum / PreambleUpSymbols
}

// rejectGhosts demotes side-lobe replicas: detected candidates whose
// demodulated bits exactly match a far stronger detected candidate's.
func (d *Decoder) rejectGhosts(devs []DeviceDecode) {
	if d.cfg.GhostFactor <= 0 {
		return
	}
	for i := range devs {
		weak := &devs[i]
		if !weak.Detected || len(weak.Bits) == 0 {
			continue
		}
		for j := range devs {
			if i == j {
				continue
			}
			strong := &devs[j]
			if !strong.Detected || len(strong.Bits) != len(weak.Bits) {
				continue
			}
			if strong.MeanPeakPower < d.cfg.GhostFactor*weak.MeanPeakPower {
				continue
			}
			same := true
			for k := range weak.Bits {
				if weak.Bits[k] != strong.Bits[k] {
					same = false
					break
				}
			}
			if same {
				weak.Detected = false
				weak.CRCOK = false
				weak.Payload = nil
				break
			}
		}
	}
}

// noiseQuantile estimates the mean noise power per padded FFT bin from
// the lower quartile of a spectrum, using buf as scratch (grown and
// returned so callers can keep it). For complex Gaussian noise, bin
// powers are exponential with mean m and 25th percentile
// m·ln(4/3) ≈ 0.2877·m; the lower quartile is robust against the
// minority of bins occupied by device peaks and side lobes. The quartile
// uses proper rank interpolation (h = 0.25·(n-1)) — the previous
// buf[len/4] was the exact 25th percentile only when len(buf)%4 == 0 —
// and an O(n) quickselect instead of a full sort.
func noiseQuantile(buf []float64, spec []float64) (float64, []float64) {
	if cap(buf) < len(spec) {
		buf = make([]float64, len(spec))
	}
	buf = buf[:len(spec)]
	copy(buf, spec)
	return dsp.QuantileInPlace(buf, 0.25) / 0.28768, buf // ln(4/3)
}

func (d *Decoder) grow(nCand, payloadBits int) {
	if cap(d.sumPower) < nCand {
		d.sumPower = make([]float64, nCand)
		d.sumWBin = make([]float64, nCand)
		d.present = make([]int, nCand)
		d.scanPow = make([]float64, nCand)
		d.scanAt = make([]float64, nCand)
		d.payCenter = make([]int, nCand)
		d.devices = make([]DeviceDecode, nCand)
	}
	d.sumPower = d.sumPower[:nCand]
	d.sumWBin = d.sumWBin[:nCand]
	d.present = d.present[:nCand]
	d.scanPow = d.scanPow[:nCand]
	d.scanAt = d.scanAt[:nCand]
	d.payCenter = d.payCenter[:nCand]
	d.devices = d.devices[:nCand]

	if cap(d.powers) < nCand*payloadBits {
		d.powers = make([]float64, nCand*payloadBits)
		d.bits = make([]byte, nCand*payloadBits)
	}
	d.powers = d.powers[:nCand*payloadBits]
	d.bits = d.bits[:nCand*payloadBits]
	if nBytes := payloadByteCount(payloadBits); nBytes > 0 && cap(d.payload) < nCand*nBytes {
		d.payload = make([]byte, nCand*nBytes)
	}
}
