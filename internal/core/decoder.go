package core

import (
	"fmt"
	"math"
	"sort"

	"netscatter/internal/chirp"
	"netscatter/internal/dsp"
)

// DecoderConfig tunes the concurrent decoder. The zero value is not
// valid; use DefaultDecoderConfig.
type DecoderConfig struct {
	// ZeroPad is the FFT zero-padding factor for sub-bin resolution
	// (§3.2.3). Fig. 8 of the paper corresponds to 10x; 8 keeps the
	// padded size a power of two.
	ZeroPad int
	// DetectFactor is how far (linear power ratio) a device's mean
	// preamble peak must sit above the estimated noise-bin power to be
	// declared present.
	DetectFactor float64
	// PresentFactor is the per-symbol bar each preamble symbol must
	// clear (lower than DetectFactor; non-coherent averaging over the
	// six upchirps does the heavy lifting).
	PresentFactor float64
	// MinPresent is how many of the six preamble upchirps must
	// individually clear PresentFactor.
	MinPresent int
	// GuardBins is the half-width (in FFT bins) of the preamble search
	// window around a device's assigned bin; it must accommodate the
	// residual timing/frequency offset, i.e. about SKIP/2.
	GuardBins float64
	// TrackBins is the tighter payload search half-width around the
	// device's preamble-estimated bin.
	TrackBins float64
	// OOKFactor is the fraction of a device's mean preamble peak power
	// used as its ON/OFF decision threshold. The paper uses 1/2
	// (§3.3.1). At full SKIP=2 density the preamble reference is biased
	// high — every neighbour is ON during the preamble but only half
	// the time during the payload, so '1' powers fluctuate below the
	// preamble mean — and a somewhat lower factor is more robust; the
	// threshold ablation bench quantifies the trade-off.
	OOKFactor float64
	// OOKNoiseGuard lower-bounds the OOK threshold at this multiple of
	// the per-bin noise power, protecting '0' decisions when a device
	// operates far below the noise floor (where OOKFactor·meanPeak
	// approaches the noise level itself).
	OOKNoiseGuard float64
	// NoiseFloor, when positive, is the calibrated per-padded-bin noise
	// power (receivers measure their thermal floor while no tag
	// transmits — the AP controls the schedule, so quiet intervals are
	// free). When zero, the decoder falls back to estimating the floor
	// from the lower quartile of each spectrum, which overestimates
	// badly at full device density: with 256 concurrent main lobes
	// there are no noise-only bins left to sample.
	NoiseFloor float64
	// GhostFactor rejects side-lobe ghosts: a strong device's Dirichlet
	// side lobes carry its exact OOK pattern, so an unoccupied candidate
	// bin can "decode" a CRC-valid replica of that device's frame at
	// -13.5 dB or below. A detected candidate whose bits are identical
	// to another detected candidate's and whose mean peak power is more
	// than GhostFactor times weaker is demoted. Zero disables the check.
	GhostFactor float64
}

// DefaultDecoderConfig returns the configuration used for the paper's
// deployment parameters (SKIP = 2).
func DefaultDecoderConfig(skip int) DecoderConfig {
	return DecoderConfig{
		ZeroPad:       8,
		DetectFactor:  4,
		PresentFactor: 1.8,
		MinPresent:    5,
		GuardBins:     float64(skip) / 2,
		TrackBins:     0.3,
		OOKFactor:     0.35,
		OOKNoiseGuard: 3.5,
		GhostFactor:   15, // ~11.8 dB, safely under the -13.5 dB first side lobe
	}
}

// DeviceDecode is the decode outcome for one candidate cyclic shift.
type DeviceDecode struct {
	// Shift is the candidate cyclic shift (FFT bin) examined.
	Shift int
	// Detected reports whether the preamble test found the device.
	Detected bool
	// MeanPeakPower is the average FFT peak power over the six
	// preamble upchirps — the reference for the OOK threshold.
	MeanPeakPower float64
	// ObservedBin is the power-weighted fractional bin where the
	// device's energy actually appeared (assigned bin plus residual
	// timing/frequency offset).
	ObservedBin float64
	// Bits is the demodulated payload section (including CRC bits).
	Bits []byte
	// Payload is the CRC-stripped payload; nil when the CRC failed.
	Payload []byte
	// CRCOK reports whether the frame check sequence matched.
	CRCOK bool
}

// FrameDecode is the result of decoding one concurrent frame.
type FrameDecode struct {
	// Start is the sample index the frame was decoded at.
	Start int
	// NoiseBinPower is the estimated per-bin noise power used for
	// detection thresholds.
	NoiseBinPower float64
	// Devices holds one entry per candidate shift, in input order.
	Devices []DeviceDecode
	// FFTs is the number of FFT operations performed — independent of
	// the number of candidate devices (the paper's receiver-complexity
	// claim, §3.1).
	FFTs int
}

// DetectedCount returns how many candidates were detected.
func (f *FrameDecode) DetectedCount() int {
	n := 0
	for _, d := range f.Devices {
		if d.Detected {
			n++
		}
	}
	return n
}

// Decoder decodes concurrent NetScatter transmissions. One dechirp and
// one (zero-padded) FFT are performed per symbol; every candidate device
// is then read off the shared spectrum. Not safe for concurrent use.
type Decoder struct {
	book *CodeBook
	dem  *chirp.Demodulator
	cfg  DecoderConfig

	// per-candidate accumulators, reused across calls
	minPower []float64
	sumPower []float64
	sumWBin  []float64
	present  []int
	quantBuf []float64
	// preSpec caches the six preamble spectra so detection thresholds
	// (which need the noise estimate from all six) are applied without
	// recomputing FFTs.
	preSpec [PreambleUpSymbols][]float64
}

// NewDecoder builds a decoder over a code book.
func NewDecoder(book *CodeBook, cfg DecoderConfig) *Decoder {
	if cfg.ZeroPad < 1 {
		panic("core: DecoderConfig.ZeroPad must be >= 1")
	}
	return &Decoder{
		book: book,
		dem:  chirp.NewDemodulator(book.Params(), cfg.ZeroPad),
		cfg:  cfg,
	}
}

// Book returns the decoder's code book.
func (d *Decoder) Book() *CodeBook { return d.book }

// Demodulator exposes the underlying demodulator (for experiments that
// inspect raw spectra).
func (d *Decoder) Demodulator() *chirp.Demodulator { return d.dem }

// DecodeFrame decodes a frame of payloadBits OOK symbols starting at
// sample index start for the given candidate shifts. The signal must
// contain the full frame (PreambleSymbols + payloadBits symbols).
func (d *Decoder) DecodeFrame(sig []complex128, start int, shifts []int, payloadBits int) (*FrameDecode, error) {
	p := d.book.Params()
	n := p.N()
	total := (PreambleSymbols + payloadBits) * n
	if start < 0 || start+total > len(sig) {
		return nil, fmt.Errorf("core: frame [%d, %d) outside signal of %d samples", start, start+total, len(sig))
	}
	res := &FrameDecode{Start: start}
	res.Devices = make([]DeviceDecode, len(shifts))
	for i, s := range shifts {
		res.Devices[i] = DeviceDecode{Shift: s}
	}
	d.grow(len(shifts))

	// Pass 1: preamble upchirps. One spectrum per symbol; accumulate
	// per-candidate peak statistics.
	for i := range shifts {
		d.minPower[i] = math.Inf(1)
		d.sumPower[i] = 0
		d.sumWBin[i] = 0
		d.present[i] = 0
	}
	var noiseEst float64
	for sym := 0; sym < PreambleUpSymbols; sym++ {
		win := sig[start+sym*n : start+(sym+1)*n]
		spec := d.dem.Spectrum(win)
		res.FFTs++
		if cap(d.preSpec[sym]) < len(spec) {
			d.preSpec[sym] = make([]float64, len(spec))
		}
		d.preSpec[sym] = d.preSpec[sym][:len(spec)]
		copy(d.preSpec[sym], spec)
		if d.cfg.NoiseFloor > 0 {
			noiseEst += d.cfg.NoiseFloor
		} else {
			noiseEst += d.estimateNoiseBin(spec)
		}
		for i, s := range shifts {
			pw, at := chirp.PeakNear(d.dem, spec, s, d.cfg.GuardBins)
			if pw < d.minPower[i] {
				d.minPower[i] = pw
			}
			d.sumPower[i] += pw
			// Accumulate the peak location weighted by power, unwrapped
			// around the assigned bin so averaging works across the
			// circular boundary.
			rel := dsp.WrapFrac(at-float64(s), p.N())
			d.sumWBin[i] += pw * rel
		}
	}
	noiseEst /= PreambleUpSymbols
	res.NoiseBinPower = noiseEst

	// Per-symbol presence bar against the cached preamble spectra.
	for sym := 0; sym < PreambleUpSymbols; sym++ {
		spec := d.preSpec[sym]
		for i, s := range shifts {
			pw, _ := chirp.PeakNear(d.dem, spec, s, d.cfg.GuardBins)
			if pw > d.cfg.PresentFactor*noiseEst {
				d.present[i]++
			}
		}
	}

	for i := range shifts {
		dev := &res.Devices[i]
		dev.MeanPeakPower = d.sumPower[i] / PreambleUpSymbols
		rel := 0.0
		if d.sumPower[i] > 0 {
			rel = d.sumWBin[i] / d.sumPower[i]
		}
		dev.ObservedBin = float64(dev.Shift) + rel
		dev.Detected = dev.MeanPeakPower > d.cfg.DetectFactor*noiseEst &&
			d.present[i] >= d.cfg.MinPresent
	}

	// Pass 2: payload symbols. The two preamble downchirps are skipped —
	// they exist for packet-start estimation (sync.go). Peak powers are
	// collected first; thresholds are applied per device afterwards.
	payloadStart := start + PreambleSymbols*n
	powers := make([][]float64, len(shifts))
	for i := range shifts {
		if res.Devices[i].Detected {
			res.Devices[i].Bits = make([]byte, payloadBits)
			powers[i] = make([]float64, payloadBits)
		}
	}
	for sym := 0; sym < payloadBits; sym++ {
		win := sig[payloadStart+sym*n : payloadStart+(sym+1)*n]
		spec := d.dem.Spectrum(win)
		res.FFTs++
		for i := range shifts {
			dev := &res.Devices[i]
			if !dev.Detected {
				continue
			}
			powers[i][sym] = d.peakNearFrac(spec, dev.ObservedBin, d.cfg.TrackBins)
		}
	}

	for i := range shifts {
		dev := &res.Devices[i]
		if !dev.Detected {
			continue
		}
		thr := dev.MeanPeakPower * d.cfg.OOKFactor
		if guard := d.cfg.OOKNoiseGuard * noiseEst; thr < guard {
			thr = guard
		}
		for sym, pw := range powers[i] {
			if pw > thr {
				dev.Bits[sym] = 1
			}
		}
		if payload, ok := CheckFrameBits(dev.Bits); ok {
			dev.Payload = payload
			dev.CRCOK = true
		}
	}
	d.rejectGhosts(res.Devices)
	return res, nil
}

// rejectGhosts demotes side-lobe replicas: detected candidates whose
// demodulated bits exactly match a far stronger detected candidate's.
func (d *Decoder) rejectGhosts(devs []DeviceDecode) {
	if d.cfg.GhostFactor <= 0 {
		return
	}
	for i := range devs {
		weak := &devs[i]
		if !weak.Detected || len(weak.Bits) == 0 {
			continue
		}
		for j := range devs {
			if i == j {
				continue
			}
			strong := &devs[j]
			if !strong.Detected || len(strong.Bits) != len(weak.Bits) {
				continue
			}
			if strong.MeanPeakPower < d.cfg.GhostFactor*weak.MeanPeakPower {
				continue
			}
			same := true
			for k := range weak.Bits {
				if weak.Bits[k] != strong.Bits[k] {
					same = false
					break
				}
			}
			if same {
				weak.Detected = false
				weak.CRCOK = false
				weak.Payload = nil
				break
			}
		}
	}
}

// peakNearFrac returns the max power within ±half bins of a fractional
// bin center.
func (d *Decoder) peakNearFrac(spec []float64, centerBin, half float64) float64 {
	zp := d.dem.ZeroPad()
	center := int(math.Round(centerBin * float64(zp)))
	halfIdx := int(half * float64(zp))
	_, pw := dsp.MaxInWindow(spec, dsp.WrapIndex(center, len(spec)), halfIdx)
	return pw
}

// estimateNoiseBin estimates the mean noise power per padded FFT bin
// from the lower quartile of the spectrum. For complex Gaussian noise,
// bin powers are exponential with mean m and 25th percentile
// m·ln(4/3) ≈ 0.2877·m; the lower quartile is robust against the
// minority of bins occupied by device peaks and side lobes.
func (d *Decoder) estimateNoiseBin(spec []float64) float64 {
	if cap(d.quantBuf) < len(spec) {
		d.quantBuf = make([]float64, len(spec))
	}
	buf := d.quantBuf[:len(spec)]
	copy(buf, spec)
	sort.Float64s(buf)
	q25 := buf[len(buf)/4]
	return q25 / 0.28768 // ln(4/3)
}

func (d *Decoder) grow(n int) {
	if cap(d.minPower) < n {
		d.minPower = make([]float64, n)
		d.sumPower = make([]float64, n)
		d.sumWBin = make([]float64, n)
		d.present = make([]int, n)
	}
	d.minPower = d.minPower[:n]
	d.sumPower = d.sumPower[:n]
	d.sumWBin = d.sumWBin[:n]
	d.present = d.present[:n]
}
