package core

import (
	"math"
	"math/cmplx"
	"testing"

	"netscatter/internal/air"
	"netscatter/internal/chirp"
	"netscatter/internal/dsp"
)

func TestFrameWaveformLayout(t *testing.T) {
	p := testParams
	enc := NewEncoder(p, 12)
	payload := []byte{0xF0} // bits 11110000 + CRC
	w := enc.FrameWaveform(payload)
	n := p.N()
	if len(w) != FrameSymbols(1)*n {
		t.Fatalf("waveform length %d", len(w))
	}
	bits := FrameBits(payload)
	for i, b := range bits {
		seg := w[(PreambleSymbols+i)*n : (PreambleSymbols+i+1)*n]
		energy := dsp.SignalEnergy(seg)
		if b == 1 && energy < float64(n)/2 {
			t.Fatalf("bit %d ('1') has energy %v", i, energy)
		}
		if b == 0 && energy != 0 {
			t.Fatalf("bit %d ('0') has energy %v", i, energy)
		}
	}
}

func TestFrameWaveformPreambleStructure(t *testing.T) {
	p := testParams
	shift := 44
	enc := NewEncoder(p, shift)
	w := enc.FrameWaveform([]byte{0x00})
	n := p.N()
	dem := chirp.NewDemodulator(p, 8)
	// Six upchirps at the assigned shift...
	for sym := 0; sym < PreambleUpSymbols; sym++ {
		frac, _ := dem.PeakFrac(w[sym*n : (sym+1)*n])
		if math.Abs(frac-float64(shift)) > 0.1 {
			t.Fatalf("preamble up %d peak at %v", sym, frac)
		}
	}
	// ...then two downchirps carrying the same shift (§3.3.1).
	mod := chirp.NewModulator(p)
	want := mod.DownSymbol(shift)
	for sym := PreambleUpSymbols; sym < PreambleSymbols; sym++ {
		seg := w[sym*n : (sym+1)*n]
		for i := range want {
			if cmplx.Abs(seg[i]-want[i]) > 1e-9 {
				t.Fatalf("preamble down symbol %d differs at %d", sym, i)
			}
		}
	}
}

func TestFrameWaveformDelayedMatchesUndelayedAtZero(t *testing.T) {
	p := testParams
	enc := NewEncoder(p, 3)
	payload := []byte{0xAB, 0xCD}
	a := enc.FrameWaveform(payload)
	b := enc.FrameWaveformDelayed(payload, 0)
	if len(b) != len(a) {
		t.Fatalf("lengths differ: %d vs %d", len(b), len(a))
	}
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestFrameWaveformDelayedSampleRelation(t *testing.T) {
	// A frac delay shifts every interior sample to the previous
	// continuous-time coordinate: delayed[j] == frame(j - frac).
	p := testParams
	enc := NewEncoder(p, 30)
	payload := []byte{0xFF} // all ones: continuous chirps, easy to check
	frac := 0.25
	w := enc.FrameWaveformDelayed(payload, frac)
	n := p.N()
	// Check interior samples of the first preamble symbol.
	for i := 1; i < n; i++ {
		want := chirp.EvalShifted(p, 30, float64(i)-frac)
		if cmplx.Abs(w[i]-want) > 1e-9 {
			t.Fatalf("sample %d: %v != %v", i, w[i], want)
		}
	}
	// First sample of the second symbol belongs to the FIRST symbol's
	// tail (u = n - frac < n).
	want := chirp.EvalShifted(p, 30, float64(n)-frac)
	if cmplx.Abs(w[n]-want) > 1e-9 {
		t.Fatalf("boundary sample: %v != %v", w[n], want)
	}
}

func TestEncoderSetShift(t *testing.T) {
	enc := NewEncoder(testParams, 2)
	enc.SetShift(8)
	if enc.Shift() != 8 {
		t.Fatal("SetShift failed")
	}
	dem := chirp.NewDemodulator(testParams, 1)
	w := enc.FrameWaveform([]byte{0})
	bin, _ := dem.DemodSymbol(w[:testParams.N()])
	if bin != 8 {
		t.Fatalf("reprogrammed shift decodes to %d", bin)
	}
}

func TestValidateShiftForBook(t *testing.T) {
	book, _ := NewCodeBook(testParams, 2)
	if err := ValidateShiftForBook(book, 4); err != nil {
		t.Errorf("valid shift rejected: %v", err)
	}
	if err := ValidateShiftForBook(book, 5); err == nil {
		t.Error("odd shift accepted with SKIP=2")
	}
}

func TestGhostRejection(t *testing.T) {
	// A strong device's side lobes replicate its OOK pattern at other
	// bins; an unoccupied candidate shift must not "decode" that
	// replica as a real device.
	p := chirp.Default500k9
	book, _ := NewCodeBook(p, 2)
	dec := NewDecoder(book, DefaultDecoderConfig(2))
	rng := dsp.NewRand(3)
	payload := []byte{0x5A, 0x11, 0xFE}
	bits := FrameBits(payload)
	enc := NewEncoder(p, 400)
	ch := air.NewChannel(p, rng)
	sig := ch.Receive(ch.FrameLength(PreambleSymbols+len(bits), 2), []air.Transmission{{
		Delayed: func(f float64) []complex128 {
			return enc.FrameWaveformDelayed(payload, f)
		},
		SNRdB:    18,
		DelaySec: 0.6e-6,
	}})
	// Candidates: the real device plus many silent shifts that sit in
	// its side-lobe skirt.
	cands := []int{400, 396, 404, 410, 2, 102, 200}
	res, err := dec.DecodeFrame(sig, 0, cands, len(bits))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Devices[0].Detected || !res.Devices[0].CRCOK {
		t.Fatal("real device lost")
	}
	for _, d := range res.Devices[1:] {
		if d.Detected {
			t.Fatalf("ghost detected at shift %d (meanPk %.0f vs real %.0f)",
				d.Shift, d.MeanPeakPower, res.Devices[0].MeanPeakPower)
		}
	}
}

func TestGhostRejectionSparesDistinctPayloads(t *testing.T) {
	// Two genuine devices 20 dB apart with different payloads must both
	// survive (the power-aware allocation separates them by 256 bins).
	p := chirp.Default500k9
	book, _ := NewCodeBook(p, 2)
	dec := NewDecoder(book, DefaultDecoderConfig(2))
	rng := dsp.NewRand(4)
	plA := []byte{0x01, 0x02, 0x03}
	plB := []byte{0xFD, 0xFC, 0xFB}
	bits := len(plA)*8 + CRCBits
	encA := NewEncoder(p, 0)
	encB := NewEncoder(p, 256)
	ch := air.NewChannel(p, rng)
	sig := ch.Receive(ch.FrameLength(PreambleSymbols+bits, 2), []air.Transmission{
		{Delayed: func(f float64) []complex128 { return encA.FrameWaveformDelayed(plA, f) }, SNRdB: 18},
		{Delayed: func(f float64) []complex128 { return encB.FrameWaveformDelayed(plB, f) }, SNRdB: -2},
	})
	res, err := dec.DecodeFrame(sig, 0, []int{0, 256}, bits)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range res.Devices {
		if !d.Detected || !d.CRCOK {
			t.Fatalf("device %d demoted incorrectly: %+v", i, d)
		}
	}
}
