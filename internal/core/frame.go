package core

// Link-layer frame structure (§3.3.1): every device's packet is
//
//	6 upchirps + 2 downchirps (preamble, all with the device's assigned
//	cyclic shift) followed by the ON-OFF keyed payload and a CRC-8.
//
// All concurrent devices send their preambles at the same time, so the
// preamble overhead is paid once per round rather than once per device —
// the main source of NetScatter's link-layer gain (Fig. 18).

const (
	// PreambleUpSymbols is the number of leading upchirps.
	PreambleUpSymbols = 6
	// PreambleDownSymbols is the number of trailing downchirps used to
	// locate the exact packet start (§3.3.1).
	PreambleDownSymbols = 2
	// PreambleSymbols is the total preamble length in symbols.
	PreambleSymbols = PreambleUpSymbols + PreambleDownSymbols
	// CRCBits is the length of the frame check sequence.
	CRCBits = 8
)

// crc8 computes the CRC-8/ATM (poly 0x07) checksum over data bits
// (one bit per byte). Operating on bits keeps the frame layout explicit;
// payloads are small (tens of bits) so performance is irrelevant.
func crc8(bits []byte) byte {
	var crc byte
	for _, b := range bits {
		crc ^= (b & 1) << 7
		if crc&0x80 != 0 {
			crc = crc<<1 ^ 0x07
		} else {
			crc <<= 1
		}
	}
	return crc
}

// BytesToBits expands data into MSB-first bits, one per output byte.
func BytesToBits(data []byte) []byte {
	out := make([]byte, 0, len(data)*8)
	for _, d := range data {
		for i := 7; i >= 0; i-- {
			out = append(out, (d>>uint(i))&1)
		}
	}
	return out
}

// BitsToBytes packs MSB-first bits back into bytes; the bit count must
// be a multiple of 8.
func BitsToBytes(bits []byte) []byte {
	out := make([]byte, len(bits)/8)
	for i := range out {
		var v byte
		for j := 0; j < 8; j++ {
			v = v<<1 | (bits[i*8+j] & 1)
		}
		out[i] = v
	}
	return out
}

// FrameBits returns the on-air payload section for a data payload:
// the payload bits followed by their CRC-8. Each bit occupies one chirp
// symbol (ON-OFF keying).
func FrameBits(payload []byte) []byte {
	bits := make([]byte, len(payload)*8+CRCBits)
	FrameBitsInto(bits, payload)
	return bits
}

// FrameBitsInto is FrameBits writing into caller-owned storage — the
// simulator's round context keeps every device's bit section in one
// arena. dst must hold len(payload)*8 + CRCBits bytes.
func FrameBitsInto(dst []byte, payload []byte) {
	if len(dst) != len(payload)*8+CRCBits {
		panic("core: FrameBitsInto dst length mismatch")
	}
	k := 0
	for _, d := range payload {
		for i := 7; i >= 0; i-- {
			dst[k] = (d >> uint(i)) & 1
			k++
		}
	}
	crc := crc8(dst[:k])
	for i := 7; i >= 0; i-- {
		dst[k] = (crc >> uint(i)) & 1
		k++
	}
}

// CheckFrameBits verifies and strips the CRC from a received payload
// section. It returns the payload bytes and whether the CRC matched.
// The bit count must be 8·k + CRCBits.
func CheckFrameBits(bits []byte) (payload []byte, ok bool) {
	if len(bits) < CRCBits || (len(bits)-CRCBits)%8 != 0 {
		return nil, false
	}
	out := make([]byte, (len(bits)-CRCBits)/8)
	return out, CheckFrameBitsInto(out, bits)
}

// CheckFrameBitsInto is CheckFrameBits decoding into caller-owned
// storage — the allocation-free decoder packs payloads straight into its
// arena. dst must hold (len(bits)-CRCBits)/8 bytes; it is filled with
// the decoded payload whenever the bit count is structurally valid,
// and the return value reports whether the CRC matched.
func CheckFrameBitsInto(dst []byte, bits []byte) bool {
	if len(bits) < CRCBits || (len(bits)-CRCBits)%8 != 0 {
		return false
	}
	data := bits[:len(bits)-CRCBits]
	if len(dst) != len(data)/8 {
		panic("core: CheckFrameBitsInto dst length mismatch")
	}
	for i := range dst {
		var v byte
		for j := 0; j < 8; j++ {
			v = v<<1 | (data[i*8+j] & 1)
		}
		dst[i] = v
	}
	var rx byte
	for _, b := range bits[len(bits)-CRCBits:] {
		rx = rx<<1 | (b & 1)
	}
	return crc8(data) == rx
}

// FrameSymbols returns the total number of chirp-symbol periods a frame
// with payloadBytes of data occupies, including preamble and CRC.
func FrameSymbols(payloadBytes int) int {
	return PreambleSymbols + payloadBytes*8 + CRCBits
}
