package serve

// Client is the typed Go client for the service, shared by
// cmd/netscatter-load and the soak test so they exercise exactly the
// HTTP surface a real integration would.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// ErrThrottled reports a 429: the per-tenant round backlog or the
// deployment limit is full. Callers back off and retry.
var ErrThrottled = errors.New("serve: throttled (backlog or deployment limit reached)")

// Client talks to one netscatter-serve instance.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8437".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do runs one request; out (when non-nil) receives the decoded JSON
// body of a 2xx response.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		io.Copy(io.Discard, resp.Body)
		return ErrThrottled
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e errorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("serve: %s %s: %s (HTTP %d)", method, path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("serve: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// CreateDeployment creates a tenant and returns its id.
func (c *Client) CreateDeployment(ctx context.Context, cfg DeploymentConfig) (int64, error) {
	var resp CreateResponse
	if err := c.do(ctx, http.MethodPost, "/v1/deployments", cfg, &resp); err != nil {
		return 0, err
	}
	return resp.ID, nil
}

// DeleteDeployment tears a tenant down.
func (c *Client) DeleteDeployment(ctx context.Context, id int64) error {
	return c.do(ctx, http.MethodDelete, fmt.Sprintf("/v1/deployments/%d", id), nil, nil)
}

// List returns every deployment's control-plane view.
func (c *Client) List(ctx context.Context) ([]DeploymentInfo, error) {
	var out []DeploymentInfo
	err := c.do(ctx, http.MethodGet, "/v1/deployments", nil, &out)
	return out, err
}

// Detail returns one deployment's control-plane view.
func (c *Client) Detail(ctx context.Context, id int64) (DeploymentInfo, error) {
	var out DeploymentInfo
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/deployments/%d", id), nil, &out)
	return out, err
}

// Step enqueues rounds; ErrThrottled when the backlog is full.
func (c *Client) Step(ctx context.Context, id int64, rounds int) (StepResponse, error) {
	var out StepResponse
	err := c.do(ctx, http.MethodPost, fmt.Sprintf("/v1/deployments/%d/step", id),
		StepRequest{Rounds: rounds}, &out)
	return out, err
}

// Run switches a tenant to continuous rounds.
func (c *Client) Run(ctx context.Context, id int64) (StepResponse, error) {
	var out StepResponse
	err := c.do(ctx, http.MethodPost, fmt.Sprintf("/v1/deployments/%d/run", id), nil, &out)
	return out, err
}

// Pause stops continuous rounds and clears the backlog.
func (c *Client) Pause(ctx context.Context, id int64) (StepResponse, error) {
	var out StepResponse
	err := c.do(ctx, http.MethodPost, fmt.Sprintf("/v1/deployments/%d/pause", id), nil, &out)
	return out, err
}

// Configure toggles soft combining / adversity on a live tenant.
func (c *Client) Configure(ctx context.Context, id int64, req ConfigRequest) (DeploymentInfo, error) {
	var out DeploymentInfo
	err := c.do(ctx, http.MethodPost, fmt.Sprintf("/v1/deployments/%d/config", id), req, &out)
	return out, err
}

// Stats snapshots a tenant's live statistics.
func (c *Client) Stats(ctx context.Context, id int64) (StatsResponse, error) {
	var out StatsResponse
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/deployments/%d/stats", id), nil, &out)
	return out, err
}

// StepAll enqueues exactly rounds rounds, splitting the request into
// backlog-sized chunks and backing off on 429s until everything is
// accepted (rounds may exceed the service's per-tenant backlog bound).
// Returns as soon as the last chunk is accepted; the rounds still
// drain asynchronously — pair with WaitRounds for completion.
func (c *Client) StepAll(ctx context.Context, id int64, rounds int, poll time.Duration) error {
	if poll <= 0 {
		poll = 20 * time.Millisecond
	}
	for queued := 0; queued < rounds; {
		chunk := min(rounds-queued, stepChunk)
		_, err := c.Step(ctx, id, chunk)
		switch {
		case errors.Is(err, ErrThrottled):
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(poll):
			}
		case err != nil:
			return err
		default:
			queued += chunk
		}
	}
	return nil
}

// stepChunk bounds one StepAll request so a large campaign cell's
// round count never trips the service's default backlog limit in a
// single request.
const stepChunk = 256

// WaitRounds polls stats until the deployment has accumulated at least
// n rounds, and returns that snapshot.
func (c *Client) WaitRounds(ctx context.Context, id int64, n int, poll time.Duration) (StatsResponse, error) {
	if poll <= 0 {
		poll = 20 * time.Millisecond
	}
	for {
		st, err := c.Stats(ctx, id)
		if err != nil {
			return st, err
		}
		if st.Stats.Rounds >= n {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Metrics snapshots the process-wide counters.
func (c *Client) Metrics(ctx context.Context) (map[string]int64, error) {
	var out map[string]int64
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &out)
	return out, err
}
