package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"netscatter/internal/chirp"
	"netscatter/internal/deploy"
	"netscatter/internal/dsp"
	"netscatter/internal/radio"
	"netscatter/internal/sim"
)

// smallCfg is a fast tenant: tiny world, short rounds.
func smallCfg(seed int64) DeploymentConfig {
	return DeploymentConfig{
		Devices:      2,
		APs:          1,
		SF:           6,
		BandwidthHz:  500e3,
		PayloadBytes: 2,
		Seed:         seed,
	}
}

// newTestServer builds a Server plus an httptest front end and a typed
// client, all torn down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, &Client{BaseURL: ts.URL, HTTPClient: ts.Client()}
}

// waitRounds polls until the tenant has accumulated at least n rounds.
func waitRounds(t *testing.T, c *Client, id int64, n int) StatsResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := c.Stats(context.Background(), id)
		if err != nil {
			t.Fatalf("stats: %v", err)
		}
		if st.Stats.Rounds >= n {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("deployment %d stuck at %d/%d rounds", id, st.Stats.Rounds, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestLifecycle: create → list → detail → step → stats → delete → 404.
func TestLifecycle(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()

	id, err := c.CreateDeployment(ctx, smallCfg(7))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	list, err := c.List(ctx)
	if err != nil || len(list) != 1 || list[0].ID != id {
		t.Fatalf("list = %v, %v; want one deployment %d", list, err, id)
	}
	info, err := c.Detail(ctx, id)
	if err != nil || info.Config.Devices != 2 || info.Config.SF != 6 {
		t.Fatalf("detail = %+v, %v", info, err)
	}
	if _, err := c.Step(ctx, id, 10); err != nil {
		t.Fatalf("step: %v", err)
	}
	st := waitRounds(t, c, id, 10)
	if st.Stats.Devices != 20 {
		t.Fatalf("10 rounds x 2 devices should give 20 device-rounds, got %d", st.Stats.Devices)
	}
	if err := c.DeleteDeployment(ctx, id); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := c.Detail(ctx, id); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("detail after delete = %v; want 404", err)
	}
}

// TestServedMatchesOracle: a served deployment's totals after N rounds
// are bit-identical to stepping the same seed/config directly — the
// service adds scheduling, not simulation drift.
func TestServedMatchesOracle(t *testing.T) {
	cfg := smallCfg(42)
	cfg.APs = 2
	const rounds = 12

	// Oracle: replicate buildTenant's construction path by hand.
	rng := dsp.NewRand(cfg.Seed)
	dep := deploy.Generate(deploy.DefaultOffice, radio.DefaultLinkBudget, cfg.Devices, cfg.BandwidthHz, rng)
	dep.PlaceAPs(cfg.APs)
	sc := sim.DefaultConfig()
	sc.Params = chirp.Params{SF: cfg.SF, BW: cfg.BandwidthHz, Oversample: 1}
	sc.Skip = 2
	sc.PayloadBytes = cfg.PayloadBytes
	net, err := sim.NewMultiAPNetwork(sc, dep, cfg.APs, cfg.Devices, cfg.Seed+1)
	if err != nil {
		t.Fatal(err)
	}
	var want sim.Accumulator
	for i := 0; i < rounds; i++ {
		stats, err := net.RunRound(cfg.Devices)
		if err != nil {
			t.Fatal(err)
		}
		want.AddMulti(stats, false)
	}

	_, c := newTestServer(t, Config{})
	id, err := c.CreateDeployment(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(context.Background(), id, rounds); err != nil {
		t.Fatal(err)
	}
	st := waitRounds(t, c, id, rounds)
	if st.Stats != want.Snapshot() {
		t.Fatalf("served stats %+v != direct-simulation oracle %+v", st.Stats, want.Snapshot())
	}
}

// TestRunPause: continuous mode accumulates rounds until paused, then
// stops.
func TestRunPause(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	id, err := c.CreateDeployment(ctx, smallCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(ctx, id); err != nil {
		t.Fatalf("run: %v", err)
	}
	waitRounds(t, c, id, 20)
	if _, err := c.Pause(ctx, id); err != nil {
		t.Fatalf("pause: %v", err)
	}
	// After the in-flight turn drains, the count must stop moving.
	var last int
	for i := 0; i < 50; i++ {
		st, err := c.Stats(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		info, err := c.Detail(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State == "idle" {
			last = st.Stats.Rounds
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	st, err := c.Stats(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats.Rounds != last || st.Continuous {
		t.Fatalf("rounds moved after pause: %d -> %d (continuous=%v)", last, st.Stats.Rounds, st.Continuous)
	}
}

// TestConfigToggles: soft combining and adversity flip live and are
// reflected in listings and stats.
func TestConfigToggles(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	cfg := smallCfg(5)
	cfg.APs = 2
	id, err := c.CreateDeployment(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	on := true
	info, err := c.Configure(ctx, id, ConfigRequest{
		SoftCombining: &on,
		Adversity:     &AdversityConfig{DopplerHz: 4, Correlation: 0.9, SleepProb: 0.05, WakeProb: 0.5},
	})
	if err != nil {
		t.Fatalf("configure: %v", err)
	}
	if !info.Soft || !info.Adversity {
		t.Fatalf("toggles not reflected: %+v", info)
	}
	if _, err := c.Step(ctx, id, 8); err != nil {
		t.Fatal(err)
	}
	st := waitRounds(t, c, id, 8)
	if st.Stats.SoftRounds != 8 {
		t.Fatalf("want 8 soft rounds with combining on, got %d", st.Stats.SoftRounds)
	}
	off := false
	info, err = c.Configure(ctx, id, ConfigRequest{SoftCombining: &off, DisableAdversity: true})
	if err != nil {
		t.Fatal(err)
	}
	if info.Soft || info.Adversity {
		t.Fatalf("toggles did not clear: %+v", info)
	}
}

// TestBackpressure: a step past MaxPending and a create past
// MaxDeployments both refuse with 429/ErrThrottled.
func TestBackpressure(t *testing.T) {
	_, c := newTestServer(t, Config{MaxPending: 4, MaxDeployments: 2})
	ctx := context.Background()
	id, err := c.CreateDeployment(ctx, smallCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(ctx, id, 10); err != ErrThrottled {
		t.Fatalf("step of 10 rounds against MaxPending=4 = %v; want ErrThrottled", err)
	}
	if _, err := c.CreateDeployment(ctx, smallCfg(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateDeployment(ctx, smallCfg(3)); err != ErrThrottled {
		t.Fatalf("third create against MaxDeployments=2 = %v; want ErrThrottled", err)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["throttled_total"] < 2 {
		t.Fatalf("throttled_total = %d; want >= 2", m["throttled_total"])
	}
}

// TestValidation: malformed configs and unknown ids produce 400/404,
// not tenants.
func TestValidation(t *testing.T) {
	_, c := newTestServer(t, Config{MaxDevices: 8})
	ctx := context.Background()
	bad := []DeploymentConfig{
		{Devices: 0},
		{Devices: 100},         // past MaxDevices
		{Devices: 2, SF: 3},    // SF below chirp's valid range
		{Devices: 2, APs: -1},  // negative APs
		{Devices: 2, Skip: -2}, // negative skip
	}
	for _, cfg := range bad {
		if _, err := c.CreateDeployment(ctx, cfg); err == nil || !strings.Contains(err.Error(), "400") {
			t.Fatalf("create %+v = %v; want HTTP 400", cfg, err)
		}
	}
	if _, err := c.Stats(ctx, 999); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("stats on unknown id = %v; want 404", err)
	}
	if _, err := c.Step(ctx, 999, 1); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("step on unknown id = %v; want 404", err)
	}
}

// TestStream: the NDJSON stream delivers per-round updates and honors
// ?limit.
func TestStream(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	id, err := c.CreateDeployment(ctx, smallCfg(9))
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodGet,
		fmt.Sprintf("%s/v1/deployments/%d/stream?limit=5", c.BaseURL, id), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	if _, err := c.Step(ctx, id, 20); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	var got []RoundUpdate
	for sc.Scan() {
		var u RoundUpdate
		if err := json.Unmarshal(sc.Bytes(), &u); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		got = append(got, u)
	}
	if len(got) != 5 {
		t.Fatalf("limit=5 delivered %d updates", len(got))
	}
	for _, u := range got {
		if u.Devices != 2 || u.Round < 1 {
			t.Fatalf("implausible update %+v", u)
		}
	}
}

// TestHealthzAndMetrics: the operational endpoints respond with the
// expected shapes.
func TestHealthzAndMetrics(t *testing.T) {
	_, c := newTestServer(t, Config{})
	resp, err := c.httpClient().Get(c.BaseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"rounds_total", "http_requests_total", "deployments_active", "queued_turns", "goroutines"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("metrics missing %q: %v", key, m)
		}
	}
}

// TestPprofRegistered: the pprof index is reachable through the route
// table (a plain mux would 404 it).
func TestPprofRegistered(t *testing.T) {
	_, c := newTestServer(t, Config{})
	resp, err := c.httpClient().Get(c.BaseURL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
}

// TestRoundHotPathAllocs: the per-round tenant work the scheduler turn
// does — run the round, fold stats, publish with no subscribers — is
// allocation-free. This is the property that keeps a thousand resident
// tenants from churning the heap.
func TestRoundHotPathAllocs(t *testing.T) {
	tn, err := buildTenant(smallCfg(11).withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	// Warm the round arenas: first rounds grow buffers once.
	for i := 0; i < 3; i++ {
		if _, err := tn.net.RunRound(tn.cfg.Devices); err != nil {
			t.Fatal(err)
		}
	}
	n := testing.AllocsPerRun(50, func() {
		stats, err := tn.net.RunRound(tn.cfg.Devices)
		if err != nil {
			t.Fatal(err)
		}
		tn.acc.AddMulti(stats, false)
		tn.publish(stats, false)
	})
	if n != 0 {
		t.Fatalf("tenant round hot path allocates %v/op; want 0", n)
	}
}
