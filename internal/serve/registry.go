package serve

// The deployment registry and the tenant round loop. A tenant is one
// hosted deployment: its own geometry, network (round arenas, decoders,
// RNG) and statistics. Control-plane state (pending rounds, continuous
// mode, lifecycle) lives behind tenant.mu; the simulation itself is
// serialized by the fair scheduler plus tenant.stepMu (config mutations
// take stepMu to exclude a running turn). The round hot path —
// RunRound/Step, the accumulator fold, the subscriber fan-out — is
// allocation-free for non-adversity tenants, which is what lets one
// process hold thousands of them (the soak test pins this).

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"netscatter/internal/chirp"
	"netscatter/internal/deploy"
	"netscatter/internal/dsp"
	"netscatter/internal/radio"
	"netscatter/internal/sim"
)

// DeploymentConfig creates one tenant. Zero fields select defaults;
// Devices is mandatory.
type DeploymentConfig struct {
	// Name is an optional label echoed back in listings.
	Name string `json:"name,omitempty"`
	// Devices is the concurrent device count (1..Config.MaxDevices).
	Devices int `json:"devices"`
	// APs is the access-point count heard by the deployment
	// (default 1; >1 enables cross-AP selection combining).
	APs int `json:"aps,omitempty"`
	// SF is the chirp spreading factor (default 9).
	SF int `json:"sf,omitempty"`
	// BandwidthHz is the chirp bandwidth (default 500 kHz).
	BandwidthHz float64 `json:"bandwidth_hz,omitempty"`
	// Skip is the minimum cyclic-shift spacing (default 2).
	Skip int `json:"skip,omitempty"`
	// PayloadBytes per device per round (default 5).
	PayloadBytes int `json:"payload_bytes,omitempty"`
	// Seed pins the deployment geometry and every simulation draw
	// (default 1). Equal configs step bit-identical rounds.
	Seed int64 `json:"seed,omitempty"`
	// SoftCombining enables the soft (summed power spectra) cross-AP
	// decode from creation; it can also be toggled later via config.
	SoftCombining bool `json:"soft_combining,omitempty"`
	// OptimizePlacement replaces the default AP line placement with
	// the greedy combined-PER optimizer.
	OptimizePlacement bool `json:"optimize_placement,omitempty"`
	// Adversity, when set, steps the deployment through the
	// time-varying adversarial world from the first round.
	Adversity *AdversityConfig `json:"adversity,omitempty"`
}

// AdversityConfig selects the trajectory's time-varying processes
// (zero fields disable the corresponding process; see
// sim.TrajectoryConfig for semantics and defaults).
type AdversityConfig struct {
	DopplerHz     float64 `json:"doppler_hz,omitempty"`
	Correlation   float64 `json:"correlation,omitempty"`
	CFODriftHz    float64 `json:"cfo_drift_hz,omitempty"`
	MobilityStepM float64 `json:"mobility_step_m,omitempty"`
	SleepProb     float64 `json:"sleep_prob,omitempty"`
	WakeProb      float64 `json:"wake_prob,omitempty"`
	BurstProb     float64 `json:"burst_prob,omitempty"`
	APDropProb    float64 `json:"ap_drop_prob,omitempty"`
}

func (c DeploymentConfig) withDefaults() DeploymentConfig {
	if c.APs == 0 {
		c.APs = 1
	}
	if c.SF == 0 {
		c.SF = 9
	}
	if c.BandwidthHz == 0 {
		c.BandwidthHz = 500e3
	}
	if c.Skip == 0 {
		c.Skip = 2
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func (c DeploymentConfig) validate(maxDevices int) error {
	switch {
	case c.Devices < 1:
		return fmt.Errorf("devices must be at least 1 (got %d)", c.Devices)
	case c.Devices > maxDevices:
		return fmt.Errorf("devices %d exceeds the service limit %d", c.Devices, maxDevices)
	case c.APs < 1:
		return fmt.Errorf("aps must be at least 1 (got %d)", c.APs)
	case c.PayloadBytes < 1:
		return fmt.Errorf("payload_bytes must be at least 1 (got %d)", c.PayloadBytes)
	case c.Skip < 1:
		return fmt.Errorf("skip must be at least 1 (got %d)", c.Skip)
	}
	p := chirp.Params{SF: c.SF, BW: c.BandwidthHz, Oversample: 1}
	if err := p.Validate(); err != nil {
		return err
	}
	return nil
}

// RoundUpdate is one completed round as published to stream
// subscribers.
type RoundUpdate struct {
	Round        int     `json:"round"`
	Devices      int     `json:"devices"`
	FramesOK     int     `json:"frames_ok"`
	SoftFramesOK int     `json:"soft_frames_ok,omitempty"`
	PER          float64 `json:"per"`
}

// tenant is one hosted deployment.
type tenant struct {
	id      int64
	cfg     DeploymentConfig // defaults applied
	created time.Time

	// stepMu serializes simulation access: the scheduler turn holds it
	// across its rounds, config mutations take it to exclude them.
	stepMu    sync.Mutex
	net       *sim.MultiAPNetwork
	tr        *sim.Trajectory // nil until adversity is first enabled
	adversity bool            // step through tr rather than net

	acc sim.Accumulator

	// mu guards the control-plane fields below. advOn/softOn mirror
	// the sim-plane toggles (t.adversity, the network's soft flag,
	// both guarded by stepMu) so listings and stats never contend with
	// a turn in progress.
	mu         sync.Mutex
	closed     bool
	pending    int  // requested rounds not yet run
	continuous bool // keep running without explicit steps
	scheduled  bool // a turn is queued or running
	advOn      bool
	softOn     bool
	lastErr    string
	subs       []chan RoundUpdate

	turnFn func() // persistent scheduler job (allocated once)
}

// buildTenant constructs the tenant's world exactly the way
// cmd/netscatter-sim does for the same knobs: geometry from Seed,
// network from Seed+1, so a served deployment is bit-identical to the
// corresponding batch run (the endpoint test pins this).
func buildTenant(cfg DeploymentConfig) (*tenant, error) {
	rng := dsp.NewRand(cfg.Seed)
	dep := deploy.Generate(deploy.DefaultOffice, radio.DefaultLinkBudget, cfg.Devices, cfg.BandwidthHz, rng)
	if cfg.OptimizePlacement {
		dep.PlaceAPsOptimized(cfg.APs)
	} else {
		dep.PlaceAPs(cfg.APs)
	}
	sc := sim.DefaultConfig()
	sc.Params = chirp.Params{SF: cfg.SF, BW: cfg.BandwidthHz, Oversample: 1}
	sc.Skip = cfg.Skip
	sc.PayloadBytes = cfg.PayloadBytes
	net, err := sim.NewMultiAPNetwork(sc, dep, cfg.APs, cfg.Devices, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	net.SetSoftCombining(cfg.SoftCombining)
	t := &tenant{cfg: cfg, created: time.Now(), net: net, softOn: cfg.SoftCombining}
	if cfg.Adversity != nil {
		if err := t.ensureTrajectory(*cfg.Adversity); err != nil {
			return nil, err
		}
		t.adversity = true
		t.advOn = true
	}
	return t, nil
}

// ensureTrajectory attaches the tenant's trajectory on first enable.
// The adversity processes are fixed at that point; later enables
// reattach the same trajectory (its protocol state carries over).
// Callers hold stepMu, or own the tenant exclusively as buildTenant
// does.
func (t *tenant) ensureTrajectory(a AdversityConfig) error {
	if t.tr != nil {
		return nil
	}
	tr, err := sim.NewTrajectory(t.net, sim.TrajectoryConfig{
		Seed:          t.cfg.Seed,
		DopplerHz:     a.DopplerHz,
		Correlation:   a.Correlation,
		CFODriftHz:    a.CFODriftHz,
		MobilityStepM: a.MobilityStepM,
		SleepProb:     a.SleepProb,
		WakeProb:      a.WakeProb,
		BurstProb:     a.BurstProb,
		APDropProb:    a.APDropProb,
		// A resident service must not grow per-round series without
		// bound; the tenant accumulator is the durable aggregate.
		NoSeries: true,
	})
	if err != nil {
		return err
	}
	t.tr = tr
	return nil
}

// registry is the id→tenant map.
type registry struct {
	mu      sync.Mutex
	tenants map[int64]*tenant
	nextID  int64
}

func (r *registry) add(t *tenant, limit int) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.tenants) >= limit {
		return 0, fmt.Errorf("deployment limit %d reached", limit)
	}
	r.nextID++
	t.id = r.nextID
	r.tenants[t.id] = t
	return t.id, nil
}

func (r *registry) get(id int64) *tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tenants[id]
}

func (r *registry) remove(id int64) *tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.tenants[id]
	delete(r.tenants, id)
	return t
}

func (r *registry) all() []*tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

func (r *registry) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.tenants)
}

// kick ensures a turn is queued for the tenant. Callers hold t.mu.
func (s *Server) kickLocked(t *tenant) error {
	if t.scheduled || t.closed {
		return nil
	}
	if t.turnFn == nil {
		t.turnFn = func() { s.turn(t) }
	}
	if err := s.sched.Submit(t.id, t.turnFn); err != nil {
		return err
	}
	t.scheduled = true
	return nil
}

// turn is one scheduled slice of a tenant's round stream: up to
// RoundBudget rounds, then yield and resubmit if work remains. The
// scheduler guarantees one turn per tenant at a time; stepMu
// additionally excludes control-plane config mutations.
func (s *Server) turn(t *tenant) {
	t.stepMu.Lock()
	defer t.stepMu.Unlock()
	for ran := 0; ran < s.cfg.RoundBudget; ran++ {
		t.mu.Lock()
		if t.closed || (t.pending == 0 && !t.continuous) {
			t.mu.Unlock()
			break
		}
		if t.pending > 0 {
			t.pending--
		}
		t.mu.Unlock()

		var stats sim.MultiRoundStats
		var err error
		if t.adversity {
			stats, err = t.tr.Step()
		} else {
			stats, err = t.net.RunRound(t.cfg.Devices)
		}
		if err != nil {
			t.mu.Lock()
			t.lastErr = err.Error()
			t.continuous = false
			t.pending = 0
			t.mu.Unlock()
			s.metrics.roundErrors.Add(1)
			break
		}
		// A completed round supersedes any recorded failure: clear the
		// sticky error so long-lived listings report recovery instead of
		// the last incident forever.
		t.mu.Lock()
		t.lastErr = ""
		t.mu.Unlock()
		soft := t.net.SoftCombining()
		t.acc.AddMulti(stats, soft)
		s.metrics.rounds.Add(1)
		s.metrics.framesOK.Add(int64(stats.Combined.FramesOK))
		t.publish(stats, soft)
	}

	t.mu.Lock()
	if !t.closed && (t.continuous || t.pending > 0) {
		// Stay scheduled: queue the next turn before releasing the
		// flag so a concurrent step request doesn't double-queue.
		if err := s.sched.Submit(t.id, t.turnFn); err != nil {
			t.scheduled = false
			t.lastErr = err.Error()
		}
	} else {
		t.scheduled = false
	}
	t.mu.Unlock()
}

// publish fans a completed round out to stream subscribers without
// blocking the round loop: a subscriber that cannot keep up misses
// updates rather than stalling the tenant.
func (t *tenant) publish(stats sim.MultiRoundStats, soft bool) {
	t.mu.Lock()
	if len(t.subs) > 0 {
		u := RoundUpdate{
			Round:    t.acc.Rounds(),
			Devices:  stats.Combined.Devices,
			FramesOK: stats.Combined.FramesOK,
			PER:      stats.Combined.PER(),
		}
		if soft {
			u.SoftFramesOK = stats.Soft.FramesOK
		}
		for _, ch := range t.subs {
			select {
			case ch <- u:
			default:
			}
		}
	}
	t.mu.Unlock()
}

// subscribe registers a stream listener; the returned cancel detaches
// it.
func (t *tenant) subscribe() (<-chan RoundUpdate, func()) {
	ch := make(chan RoundUpdate, 64)
	t.mu.Lock()
	t.subs = append(t.subs, ch)
	t.mu.Unlock()
	cancel := func() {
		t.mu.Lock()
		for i, c := range t.subs {
			if c == ch {
				t.subs = append(t.subs[:i], t.subs[i+1:]...)
				break
			}
		}
		t.mu.Unlock()
	}
	return ch, cancel
}

// teardown closes a tenant: no new rounds start, queued turns are
// dropped, subscribers are detached, and an in-flight turn finishes
// its current round before observing closed.
func (s *Server) teardown(t *tenant) {
	t.mu.Lock()
	t.closed = true
	t.pending = 0
	t.continuous = false
	subs := t.subs
	t.subs = nil
	t.mu.Unlock()
	s.sched.Drop(t.id)
	for _, ch := range subs {
		close(ch)
	}
}
