// Package serve is the long-lived multi-tenant simulation service
// behind cmd/netscatter-serve: many independent NetScatter deployments
// hosted on one process, each created, configured, stepped, streamed
// and torn down over HTTP+JSON.
//
// The layering mirrors the repository's batch tools but stays resident:
//
//   - registry.go owns the tenants. Each tenant wraps one
//     sim.MultiAPNetwork (k >= 1 APs) — and, once adversity is enabled,
//     its sim.Trajectory — so every tenant carries its own zero-alloc
//     round arenas, encoders, decoders and RNG state; tenants share no
//     mutable simulation state with each other.
//   - Rounds are multiplexed over a pool.FairScheduler: per-tenant
//     serialized turns (a round arena is single-threaded by design),
//     round-robin rotation across runnable tenants, and a bounded
//     per-tenant round backlog. A turn runs at most Config.RoundBudget
//     rounds before yielding, so a tenant streaming continuously cannot
//     starve interactive step requests; a backlog past
//     Config.MaxPending is refused with HTTP 429.
//   - api.go is the HTTP surface (see docs/API.md — a test walks the
//     route table below and fails on undocumented endpoints), metrics.go
//     the expvar-style counter surface, client.go the typed client the
//     load generator (cmd/netscatter-load) and the soak test share.
//
// Statistics flow through sim.Accumulator, the concurrency-safe
// snapshot/export seam: the scheduler folds each completed round in,
// and GET …/stats serializes a consistent Snapshot at any moment, even
// mid-turn.
package serve

import (
	"net/http"
	"net/http/pprof"
	"time"

	"netscatter/internal/pool"
)

// Config sizes the service. The zero value of any field selects its
// default.
type Config struct {
	// Workers is the round scheduler's worker count (default
	// pool.Size(), i.e. GOMAXPROCS).
	Workers int
	// RoundBudget is the most rounds one scheduled turn runs before
	// the tenant yields its worker (default 8).
	RoundBudget int
	// MaxPending bounds a tenant's requested-but-unrun round backlog;
	// step requests past it fail with 429 (default 1024).
	MaxPending int
	// MaxDeployments bounds the registry; creates past it fail with
	// 429 (default 4096).
	MaxDeployments int
	// MaxDevices bounds a single deployment's device count (default
	// 256, the paper's scale).
	MaxDevices int
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = pool.Size()
	}
	if c.RoundBudget < 1 {
		c.RoundBudget = 8
	}
	if c.MaxPending < 1 {
		c.MaxPending = 1024
	}
	if c.MaxDeployments < 1 {
		c.MaxDeployments = 4096
	}
	if c.MaxDevices < 1 {
		c.MaxDevices = 256
	}
	return c
}

// Server hosts the deployment registry, the fair round scheduler and
// the HTTP API. Create one with New, expose Handler() on an
// http.Server, and Close it on shutdown.
type Server struct {
	cfg     Config
	sched   *pool.FairScheduler
	reg     registry
	metrics metrics
	start   time.Time
}

// New starts a Server (its scheduler workers run until Close).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg: cfg,
		// Cap 2 queued turns per tenant: the control plane keeps at
		// most one turn queued (the scheduled flag), and a turn's
		// self-resubmission briefly overlaps it.
		sched: pool.NewFairScheduler(cfg.Workers, 2),
		start: time.Now(),
	}
	s.reg.tenants = make(map[int64]*tenant)
	return s
}

// Close tears down every tenant and stops the scheduler, waiting for
// in-flight rounds to finish.
func (s *Server) Close() {
	for _, t := range s.reg.all() {
		s.teardown(t)
	}
	s.sched.Close()
}

// Route is one registered endpoint. The route table is the single
// source of truth for the mux and for docs/API.md: the docs test fails
// when an entry here is missing from the reference (or vice versa).
type Route struct {
	Method  string
	Pattern string
	Doc     string
	handler http.HandlerFunc
}

// Routes returns the service's endpoint table.
func (s *Server) Routes() []Route {
	return []Route{
		{"GET", "/healthz", "liveness probe with uptime", s.handleHealthz},
		{"GET", "/metrics", "expvar-style counter snapshot", s.handleMetrics},
		{"POST", "/v1/deployments", "create a deployment", s.handleCreate},
		{"GET", "/v1/deployments", "list deployments", s.handleList},
		{"GET", "/v1/deployments/{id}", "deployment detail and stats", s.handleDetail},
		{"DELETE", "/v1/deployments/{id}", "tear a deployment down", s.handleDelete},
		{"POST", "/v1/deployments/{id}/step", "enqueue rounds (429 past the backlog bound)", s.handleStep},
		{"POST", "/v1/deployments/{id}/run", "run rounds continuously", s.handleRun},
		{"POST", "/v1/deployments/{id}/pause", "stop continuous running, clear the backlog", s.handlePause},
		{"POST", "/v1/deployments/{id}/config", "toggle soft combining / adversity", s.handleConfig},
		{"GET", "/v1/deployments/{id}/stats", "live stats snapshot", s.handleStats},
		{"GET", "/v1/deployments/{id}/stream", "stream per-round stats as NDJSON", s.handleStream},
		{"GET", "/debug/pprof/", "pprof profile index (heap, goroutine, ...)", pprof.Index},
		{"GET", "/debug/pprof/profile", "CPU profile", pprof.Profile},
		{"GET", "/debug/pprof/cmdline", "process command line", pprof.Cmdline},
		{"GET", "/debug/pprof/symbol", "pprof symbol lookup", pprof.Symbol},
		{"GET", "/debug/pprof/trace", "execution trace", pprof.Trace},
	}
}

// Handler builds the service's http.Handler from the route table,
// wrapped in the request-counting middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range s.Routes() {
		mux.HandleFunc(rt.Method+" "+rt.Pattern, rt.handler)
	}
	return s.countRequests(mux)
}
