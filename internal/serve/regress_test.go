package serve

import (
	"context"
	"errors"
	"testing"
)

// TestStepRoundsOverflow pins the backlog bound against integer
// overflow: a huge rounds value used to wrap t.pending+req.Rounds
// negative, slip past MaxPending, and leave the tenant with an absurd
// pending count. It must be throttled like any other over-budget
// request, with the backlog untouched.
func TestStepRoundsOverflow(t *testing.T) {
	_, c := newTestServer(t, Config{MaxPending: 8})
	ctx := context.Background()
	id, err := c.CreateDeployment(ctx, smallCfg(1))
	if err != nil {
		t.Fatalf("create: %v", err)
	}

	for _, rounds := range []int{1 << 62, 1<<63 - 1, 9} {
		if _, err := c.Step(ctx, id, rounds); !errors.Is(err, ErrThrottled) {
			t.Errorf("step rounds=%d: got %v, want ErrThrottled", rounds, err)
		}
	}
	info, err := c.Detail(ctx, id)
	if err != nil {
		t.Fatalf("detail: %v", err)
	}
	if info.Pending != 0 {
		t.Errorf("pending = %d after rejected oversize steps, want 0", info.Pending)
	}

	// The bound itself still admits a full backlog.
	if _, err := c.Step(ctx, id, 8); err != nil {
		t.Errorf("step rounds=MaxPending: %v", err)
	}
}

// TestLastErrClearsOnRecovery pins the sticky-error fix: once a round
// completes, a previously recorded error must stop appearing in
// listings — a recovered tenant should not report its last incident
// forever.
func TestLastErrClearsOnRecovery(t *testing.T) {
	s, c := newTestServer(t, Config{})
	ctx := context.Background()
	id, err := c.CreateDeployment(ctx, smallCfg(1))
	if err != nil {
		t.Fatalf("create: %v", err)
	}

	tn := s.reg.get(id)
	tn.mu.Lock()
	tn.lastErr = "injected: round failed"
	tn.mu.Unlock()

	info, err := c.Detail(ctx, id)
	if err != nil {
		t.Fatalf("detail: %v", err)
	}
	if info.LastError == "" {
		t.Fatal("injected last_error not visible before recovery")
	}

	if _, err := c.Step(ctx, id, 1); err != nil {
		t.Fatalf("step: %v", err)
	}
	waitRounds(t, c, id, 1)

	info, err = c.Detail(ctx, id)
	if err != nil {
		t.Fatalf("detail: %v", err)
	}
	if info.LastError != "" {
		t.Errorf("last_error = %q after a successful round, want cleared", info.LastError)
	}
}
