package serve

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"
)

// TestSoakManyDeployments holds a large fleet of small deployments in
// one server and drives rounds through the HTTP API in waves, checking
// the two resident-service properties the package promises:
//
//   - steady-state round throughput does not decay between waves
//     (no queue collapse, no scheduler starvation), and
//   - the heap is flat once the per-tenant arenas exist — the round
//     hot path allocates nothing, so more rounds must not mean more
//     memory.
//
// The full run hosts 1000 concurrent deployments; -short scales the
// fleet down for CI but exercises the same path.
func TestSoakManyDeployments(t *testing.T) {
	fleet := 1000
	roundsPerWave := 4
	if testing.Short() {
		fleet = 128
	}

	_, c := newTestServer(t, Config{MaxDeployments: fleet})
	ctx := context.Background()

	ids := make([]int64, 0, fleet)
	for i := 0; i < fleet; i++ {
		id, err := c.CreateDeployment(ctx, DeploymentConfig{
			Name:         fmt.Sprintf("soak-%d", i),
			Devices:      2,
			SF:           6,
			PayloadBytes: 2,
			Seed:         int64(i + 1),
		})
		if err != nil {
			t.Fatalf("create %d/%d: %v", i, fleet, err)
		}
		ids = append(ids, id)
	}

	wave := func(n int) (rounds int64, elapsed time.Duration) {
		start := time.Now()
		before := totalRounds(t, c)
		for _, id := range ids {
			if _, err := c.Step(ctx, id, n); err != nil {
				t.Fatalf("step %d: %v", id, err)
			}
		}
		want := before + int64(n*len(ids))
		deadline := time.Now().Add(2 * time.Minute)
		for {
			if got := totalRounds(t, c); got >= want {
				return got - before, time.Since(start)
			}
			if time.Now().After(deadline) {
				t.Fatalf("wave stalled: %d/%d rounds", totalRounds(t, c)-before, n*len(ids))
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Wave 0 warms every tenant's round arenas (first rounds grow
	// buffers once); the heap baseline is taken after it.
	wave(2)
	heap0 := heapInUse()

	r1, d1 := wave(roundsPerWave)
	r2, d2 := wave(roundsPerWave)
	heap1 := heapInUse()

	tp1 := float64(r1) / d1.Seconds()
	tp2 := float64(r2) / d2.Seconds()
	t.Logf("fleet=%d wave1=%.0f rounds/s wave2=%.0f rounds/s heap %0.1f MB -> %0.1f MB",
		fleet, tp1, tp2, float64(heap0)/1e6, float64(heap1)/1e6)

	if tp2 < 0.4*tp1 {
		t.Fatalf("round throughput collapsed between waves: %.0f -> %.0f rounds/s", tp1, tp2)
	}
	// Flat heap: thousands more rounds must not grow live memory beyond
	// noise (GC timing, HTTP scratch). 10 MB of slack on top of 10%.
	limit := heap0 + heap0/10 + 10<<20
	if heap1 > limit {
		t.Fatalf("heap grew across waves: %d -> %d bytes (limit %d)", heap0, heap1, limit)
	}

	// The fleet stays individually addressable at scale: spot-check a
	// tenant's stats and tear one down.
	st, err := c.Stats(ctx, ids[len(ids)/2])
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats.Rounds < int(2+2*roundsPerWave) {
		t.Fatalf("mid-fleet tenant ran %d rounds; want >= %d", st.Stats.Rounds, 2+2*roundsPerWave)
	}
	if err := c.DeleteDeployment(ctx, ids[0]); err != nil {
		t.Fatal(err)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["deployments_active"] != int64(fleet-1) {
		t.Fatalf("deployments_active = %d; want %d", m["deployments_active"], fleet-1)
	}
}

func totalRounds(t *testing.T, c *Client) int64 {
	t.Helper()
	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	return m["rounds_total"]
}

// heapInUse forces two GCs (finalizers, then the real collection) and
// reports live heap bytes.
func heapInUse() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}
