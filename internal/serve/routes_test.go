package serve

import (
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// docHeading matches the endpoint headings docs/API.md uses:
//
//	### `METHOD /path`
var docHeading = regexp.MustCompile("(?m)^### `([A-Z]+) (/[^`]*)`")

// TestRoutesDocumented keeps docs/API.md honest in both directions:
// every route the server registers must have a heading in the
// reference, and every heading must correspond to a registered route.
func TestRoutesDocumented(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "docs", "API.md"))
	if err != nil {
		t.Fatalf("docs/API.md must exist and document the API: %v", err)
	}
	documented := map[string]bool{}
	for _, m := range docHeading.FindAllStringSubmatch(string(data), -1) {
		documented[m[1]+" "+m[2]] = true
	}
	if len(documented) == 0 {
		t.Fatal("docs/API.md has no '### `METHOD /path`' endpoint headings")
	}

	s := New(Config{})
	defer s.Close()
	registered := map[string]bool{}
	for _, rt := range s.Routes() {
		key := rt.Method + " " + rt.Pattern
		registered[key] = true
		if !documented[key] {
			t.Errorf("route %q is registered but undocumented in docs/API.md", key)
		}
		if rt.Doc == "" {
			t.Errorf("route %q has no Doc string", key)
		}
	}
	for key := range documented {
		if !registered[key] {
			t.Errorf("docs/API.md documents %q but the server does not register it", key)
		}
	}
}
