package serve

// Process-wide counters, exported as a flat JSON object on /metrics in
// the expvar style: monotonically increasing int64s, cheap enough to
// bump from the round hot path (a single atomic add, no allocation).

import "sync/atomic"

type metrics struct {
	rounds       atomic.Int64 // simulation rounds completed
	framesOK     atomic.Int64 // frames decoded across all rounds
	roundErrors  atomic.Int64 // rounds aborted by a simulation error
	httpRequests atomic.Int64 // requests served (all endpoints)
	httpErrors   atomic.Int64 // error responses written
	throttled    atomic.Int64 // 429s (backlog or deployment limit)
	created      atomic.Int64 // deployments created over the lifetime
	closed       atomic.Int64 // deployments torn down
}

// snapshot dumps the counters. The caller adds gauge-style fields
// (active deployments, queued turns, goroutines, uptime) on top.
func (m *metrics) snapshot() map[string]int64 {
	return map[string]int64{
		"rounds_total":        m.rounds.Load(),
		"frames_ok_total":     m.framesOK.Load(),
		"round_errors_total":  m.roundErrors.Load(),
		"http_requests_total": m.httpRequests.Load(),
		"http_errors_total":   m.httpErrors.Load(),
		"throttled_total":     m.throttled.Load(),
		"deployments_created": m.created.Load(),
		"deployments_closed":  m.closed.Load(),
	}
}
