package serve

// RunLocal is the in-process twin of a hosted deployment: it builds
// the tenant world exactly as POST /v1/deployments would (geometry
// from Seed, network from Seed+1, trajectory when adversity is set)
// and runs rounds through the same step path the scheduler uses, so a
// config stepped locally and the same config stepped on a live
// netscatter-serve instance accumulate bit-identical snapshots. The
// campaign runner uses this as its local executor; the equivalence is
// test-enforced from both internal/campaign and internal/exper.

import "netscatter/internal/sim"

// RunLocal executes rounds of one deployment config in-process and
// returns the accumulated snapshot.
func RunLocal(cfg DeploymentConfig, rounds int) (sim.Snapshot, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(Config{}.withDefaults().MaxDevices); err != nil {
		return sim.Snapshot{}, err
	}
	t, err := buildTenant(cfg)
	if err != nil {
		return sim.Snapshot{}, err
	}
	for i := 0; i < rounds; i++ {
		var stats sim.MultiRoundStats
		if t.adversity {
			stats, err = t.tr.Step()
		} else {
			stats, err = t.net.RunRound(cfg.Devices)
		}
		if err != nil {
			return sim.Snapshot{}, err
		}
		t.acc.AddMulti(stats, t.net.SoftCombining())
	}
	return t.acc.Snapshot(), nil
}
