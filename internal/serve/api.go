package serve

// The HTTP+JSON surface. Every endpoint is registered through the
// route table in serve.go and documented in docs/API.md (test-enforced
// both ways). Handlers translate between the wire types below and the
// registry; all simulation work happens on the scheduler, so handlers
// stay fast even while tenants are mid-round.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"netscatter/internal/sim"
)

// CreateResponse answers POST /v1/deployments.
type CreateResponse struct {
	ID int64 `json:"id"`
}

// DeploymentInfo is one tenant's control-plane view.
type DeploymentInfo struct {
	ID         int64            `json:"id"`
	Name       string           `json:"name,omitempty"`
	State      string           `json:"state"` // "idle" | "running"
	Continuous bool             `json:"continuous"`
	Pending    int              `json:"pending"`
	Rounds     int              `json:"rounds"`
	Adversity  bool             `json:"adversity"`
	Soft       bool             `json:"soft_combining"`
	LastError  string           `json:"last_error,omitempty"`
	CreatedAt  time.Time        `json:"created_at"`
	Config     DeploymentConfig `json:"config"`
}

// StatsResponse answers GET /v1/deployments/{id}/stats.
type StatsResponse struct {
	ID         int64        `json:"id"`
	State      string       `json:"state"`
	Continuous bool         `json:"continuous"`
	Pending    int          `json:"pending"`
	Adversity  bool         `json:"adversity"`
	Soft       bool         `json:"soft_combining"`
	Stats      sim.Snapshot `json:"stats"`
}

// StepRequest asks for rounds to be enqueued (default 1).
type StepRequest struct {
	Rounds int `json:"rounds,omitempty"`
}

// StepResponse reports the backlog after a step/run/pause request.
type StepResponse struct {
	Pending    int  `json:"pending"`
	Continuous bool `json:"continuous"`
}

// ConfigRequest toggles per-tenant options. Nil fields are untouched.
// Adversity processes are fixed the first time they are enabled;
// setting adversity again reattaches the same trajectory, and
// disable_adversity reverts to plain rounds (trajectory state is
// retained for the next enable).
type ConfigRequest struct {
	SoftCombining    *bool            `json:"soft_combining,omitempty"`
	Adversity        *AdversityConfig `json:"adversity,omitempty"`
	DisableAdversity bool             `json:"disable_adversity,omitempty"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, code int, format string, args ...any) {
	if code == http.StatusTooManyRequests {
		s.metrics.throttled.Add(1)
	}
	s.metrics.httpErrors.Add(1)
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// tenantFromPath resolves {id}; nil means the response was written.
func (s *Server) tenantFromPath(w http.ResponseWriter, r *http.Request) *tenant {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "malformed deployment id %q", r.PathValue("id"))
		return nil
	}
	t := s.reg.get(id)
	if t == nil {
		s.writeError(w, http.StatusNotFound, "no deployment %d", id)
		return nil
	}
	return t
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.metrics.snapshot()
	m["deployments_active"] = int64(s.reg.count())
	m["queued_turns"] = int64(s.sched.Queued())
	m["goroutines"] = int64(runtime.NumGoroutine())
	m["uptime_seconds"] = int64(time.Since(s.start).Seconds())
	writeJSON(w, http.StatusOK, m)
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var cfg DeploymentConfig
	if err := json.NewDecoder(r.Body).Decode(&cfg); err != nil {
		s.writeError(w, http.StatusBadRequest, "malformed deployment config: %v", err)
		return
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(s.cfg.MaxDevices); err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	t, err := buildTenant(cfg)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "building deployment: %v", err)
		return
	}
	id, err := s.reg.add(t, s.cfg.MaxDeployments)
	if err != nil {
		s.writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	}
	s.metrics.created.Add(1)
	writeJSON(w, http.StatusCreated, CreateResponse{ID: id})
}

func (t *tenant) info() DeploymentInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	state := "idle"
	if t.scheduled {
		state = "running"
	}
	return DeploymentInfo{
		ID:         t.id,
		Name:       t.cfg.Name,
		State:      state,
		Continuous: t.continuous,
		Pending:    t.pending,
		Rounds:     t.acc.Rounds(),
		Adversity:  t.advOn,
		Soft:       t.softOn,
		LastError:  t.lastErr,
		CreatedAt:  t.created,
		Config:     t.cfg,
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	tenants := s.reg.all()
	out := make([]DeploymentInfo, 0, len(tenants))
	for _, t := range tenants {
		out = append(out, t.info())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDetail(w http.ResponseWriter, r *http.Request) {
	t := s.tenantFromPath(w, r)
	if t == nil {
		return
	}
	writeJSON(w, http.StatusOK, t.info())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "malformed deployment id %q", r.PathValue("id"))
		return
	}
	t := s.reg.remove(id)
	if t == nil {
		s.writeError(w, http.StatusNotFound, "no deployment %d", id)
		return
	}
	s.teardown(t)
	s.metrics.closed.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	t := s.tenantFromPath(w, r)
	if t == nil {
		return
	}
	req := StepRequest{Rounds: 1}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		s.writeError(w, http.StatusBadRequest, "malformed step request: %v", err)
		return
	}
	if req.Rounds == 0 {
		req.Rounds = 1
	}
	if req.Rounds < 1 {
		s.writeError(w, http.StatusBadRequest, "rounds must be at least 1 (got %d)", req.Rounds)
		return
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		s.writeError(w, http.StatusNotFound, "deployment %d is closed", t.id)
		return
	}
	// Compare against the headroom rather than summing: pending and
	// MaxPending are both small non-negatives, so MaxPending-pending
	// cannot overflow, whereas pending+req.Rounds wraps negative for a
	// huge request and would slip past the bound.
	if req.Rounds > s.cfg.MaxPending-t.pending {
		pending := t.pending
		t.mu.Unlock()
		s.writeError(w, http.StatusTooManyRequests,
			"backlog full: %d pending + %d requested exceeds %d; retry after rounds drain",
			pending, req.Rounds, s.cfg.MaxPending)
		return
	}
	t.pending += req.Rounds
	err := s.kickLocked(t)
	resp := StepResponse{Pending: t.pending, Continuous: t.continuous}
	t.mu.Unlock()
	if err != nil {
		s.writeError(w, http.StatusServiceUnavailable, "scheduling: %v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, resp)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	t := s.tenantFromPath(w, r)
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		s.writeError(w, http.StatusNotFound, "deployment %d is closed", t.id)
		return
	}
	t.continuous = true
	err := s.kickLocked(t)
	resp := StepResponse{Pending: t.pending, Continuous: true}
	t.mu.Unlock()
	if err != nil {
		s.writeError(w, http.StatusServiceUnavailable, "scheduling: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePause(w http.ResponseWriter, r *http.Request) {
	t := s.tenantFromPath(w, r)
	if t == nil {
		return
	}
	t.mu.Lock()
	t.continuous = false
	t.pending = 0
	resp := StepResponse{Pending: 0, Continuous: false}
	t.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	t := s.tenantFromPath(w, r)
	if t == nil {
		return
	}
	var req ConfigRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "malformed config request: %v", err)
		return
	}
	if req.Adversity != nil && req.DisableAdversity {
		s.writeError(w, http.StatusBadRequest, "adversity and disable_adversity are mutually exclusive")
		return
	}

	// Sim-plane mutations exclude a turn in progress; the control-plane
	// mirrors update after, so readers never see a half-applied toggle.
	t.stepMu.Lock()
	if req.Adversity != nil {
		if err := t.ensureTrajectory(*req.Adversity); err != nil {
			t.stepMu.Unlock()
			s.writeError(w, http.StatusBadRequest, "enabling adversity: %v", err)
			return
		}
		t.adversity = true
	}
	if req.DisableAdversity {
		t.adversity = false
	}
	if req.SoftCombining != nil {
		t.net.SetSoftCombining(*req.SoftCombining)
	}
	adv := t.adversity
	soft := t.net.SoftCombining()
	t.stepMu.Unlock()

	t.mu.Lock()
	t.advOn = adv
	t.softOn = soft
	if req.Adversity != nil && t.cfg.Adversity == nil {
		a := *req.Adversity
		t.cfg.Adversity = &a
	}
	t.mu.Unlock()
	writeJSON(w, http.StatusOK, t.info())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	t := s.tenantFromPath(w, r)
	if t == nil {
		return
	}
	t.mu.Lock()
	resp := StatsResponse{
		ID:         t.id,
		State:      "idle",
		Continuous: t.continuous,
		Pending:    t.pending,
		Adversity:  t.advOn,
		Soft:       t.softOn,
	}
	if t.scheduled {
		resp.State = "running"
	}
	t.mu.Unlock()
	resp.Stats = t.acc.Snapshot()
	writeJSON(w, http.StatusOK, resp)
}

// handleStream writes one NDJSON RoundUpdate line per completed round
// until the client disconnects, the optional ?limit=N is reached, or
// the deployment is torn down. A slow client misses rounds rather than
// stalling the tenant.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	t := s.tenantFromPath(w, r)
	if t == nil {
		return
	}
	limit := 0
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			s.writeError(w, http.StatusBadRequest, "malformed limit %q", q)
			return
		}
		limit = n
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	ch, cancel := t.subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	enc := json.NewEncoder(w)
	sent := 0
	for {
		select {
		case <-r.Context().Done():
			return
		case u, ok := <-ch:
			if !ok {
				return // deployment torn down
			}
			if err := enc.Encode(u); err != nil {
				return
			}
			flusher.Flush()
			sent++
			if limit > 0 && sent >= limit {
				return
			}
		}
	}
}

// countRequests is the metrics middleware.
func (s *Server) countRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.httpRequests.Add(1)
		next.ServeHTTP(w, r)
	})
}
