package sim

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"netscatter/internal/chirp"
	"netscatter/internal/core"
)

func testSoftNetwork(t testing.TB, nDev, nAPs int, seed int64) *MultiAPNetwork {
	t.Helper()
	net := testMultiAPNetwork(t, nDev, nAPs, seed)
	net.SetSoftCombining(true)
	return net
}

// TestSoftCombinedSpectraOracle pins the summed arena against an
// independent materialization: for k ∈ {1, 2, 4}, the round's combined
// spectra arena must be bit-equal to naively recomputing every AP's
// power spectra symbol by symbol (fresh demodulator, single-symbol
// Spectrum — the retained oracle path) and summing them with a scalar
// += loop in the same AP order. This covers the emit layout, the fused
// kernels' emitted rows and the AVX2 power-sum kernel in one equality.
func TestSoftCombinedSpectraOracle(t *testing.T) {
	for _, k := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			const nDev = 12
			net := testSoftNetwork(t, nDev, k, 21)
			if _, err := net.RunRound(nDev); err != nil {
				t.Fatal(err)
			}

			p := net.cfg.Params
			n := p.N()
			payloadBits := net.cfg.PayloadBytes*8 + core.CRCBits
			dcfg := resolveDecoderConfig(net.cfg, net.book.Skip())
			dem := chirp.NewDemodulator(p, dcfg.ZeroPad)
			bins := dem.PaddedBins()
			want := make([]float64, core.EmitRows(payloadBits)*bins)
			row := make([]float64, bins)
			addRow := func(dst []float64, spec []float64) {
				for i, v := range spec {
					dst[i] += v
				}
			}
			for a := 0; a < k; a++ {
				sig := net.rc.sigs[a]
				for sym := 0; sym < core.PreambleUpSymbols; sym++ {
					copy(row, dem.Spectrum(sig[sym*n:(sym+1)*n]))
					addRow(want[sym*bins:(sym+1)*bins], row)
				}
				payloadStart := core.PreambleSymbols * n
				for sym := 0; sym < payloadBits; sym++ {
					copy(row, dem.Spectrum(sig[payloadStart+sym*n:payloadStart+(sym+1)*n]))
					addRow(want[(core.PreambleUpSymbols+sym)*bins:(core.PreambleUpSymbols+sym+1)*bins], row)
				}
			}
			if !reflect.DeepEqual(net.rc.comb, want) {
				for i := range want {
					if net.rc.comb[i] != want[i] {
						t.Fatalf("k=%d: combined arena diverges from naive sum at %d: %v vs %v",
							k, i, net.rc.comb[i], want[i])
					}
				}
			}
		})
	}
}

// TestSoftCombineSingleAPDegeneracy pins the acceptance criterion's
// k=1 contract at the sim level: with one AP, the combined-spectra
// decode is bit-identical to that AP's own decode (devices, powers,
// bits, flags), and the soft round stats equal the selection stats.
func TestSoftCombineSingleAPDegeneracy(t *testing.T) {
	const nDev = 16
	net := testSoftNetwork(t, nDev, 1, 7)
	stats, err := net.RunRound(nDev)
	if err != nil {
		t.Fatal(err)
	}
	if net.rc.softRes == nil {
		t.Fatal("soft round kept no combined decode")
	}
	if !reflect.DeepEqual(net.rc.softRes.Devices, net.rc.res[0].Devices) {
		t.Fatalf("k=1 combined decode diverges from the single AP's:\n got %+v\nwant %+v",
			net.rc.softRes.Devices, net.rc.res[0].Devices)
	}
	if net.rc.softRes.NoiseBinPower != net.rc.res[0].NoiseBinPower {
		t.Fatalf("k=1 combined noise %v != single-AP %v",
			net.rc.softRes.NoiseBinPower, net.rc.res[0].NoiseBinPower)
	}
	if stats.Soft != stats.Combined {
		t.Fatalf("k=1 soft stats %+v != selection stats %+v", stats.Soft, stats.Combined)
	}
}

// TestSoftCombineLeavesSelectionUntouched: the soft path is strictly
// additive — the same network with the flag on and off produces
// bit-identical Combined and PerAP statistics round after round (no
// random draw, arena or decode is perturbed by emitting and combining).
func TestSoftCombineLeavesSelectionUntouched(t *testing.T) {
	const nDev = 24
	a := testMultiAPNetwork(t, nDev, 3, 11)
	b := testSoftNetwork(t, nDev, 3, 11)
	for round := 0; round < 3; round++ {
		sa, err := a.RunRound(nDev)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := b.RunRound(nDev)
		if err != nil {
			t.Fatal(err)
		}
		if sa.Combined != sb.Combined || !reflect.DeepEqual(sa.PerAP, sb.PerAP) {
			t.Fatalf("round %d: soft flag changed selection outcome:\n off %+v\n on  %+v", round, sa, sb)
		}
		if sb.SoftFramesGained() < 0 {
			t.Fatalf("round %d: soft combining lost %d frames vs selection",
				round, -sb.SoftFramesGained())
		}
	}
}

// TestSoftCombineRunRoundSteadyStateZeroAlloc extends the round
// allocation gate to the soft path: after one warm-up round, a soft
// k-AP round — per-AP emit decodes, the bin-wise arena sum, the
// combined-spectra decode and both aggregations — touches no heap.
func TestSoftCombineRunRoundSteadyStateZeroAlloc(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	net := testSoftNetwork(t, 16, 2, 3)
	if _, err := net.RunRound(16); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := net.RunRound(16); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state soft RunRound allocates %.1f objects/op, want 0", allocs)
	}
}

// TestSoftCombineRoundBitIdenticalAcrossGOMAXPROCSRace pins the soft
// path's determinism contract under the race detector: the emitted
// arenas are filled by pool workers, but the bin-wise sum runs serially
// in AP order, so Soft (and everything else) is bit-identical across
// GOMAXPROCS ∈ {1, 2, 4}.
func TestSoftCombineRoundBitIdenticalAcrossGOMAXPROCSRace(t *testing.T) {
	const nDev = 20
	const nAPs = 2
	const rounds = 3

	type roundOut struct {
		Combined RoundStats
		Soft     RoundStats
		PerAP    []RoundStats
	}
	run := func(procs int) []roundOut {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		net := testSoftNetwork(t, nDev, nAPs, 17)
		var outs []roundOut
		for r := 0; r < rounds; r++ {
			stats, err := net.RunRound(nDev)
			if err != nil {
				t.Fatal(err)
			}
			outs = append(outs, roundOut{stats.Combined, stats.Soft, append([]RoundStats(nil), stats.PerAP...)})
		}
		return outs
	}

	want := run(1)
	for _, procs := range []int{2, 4} {
		got := run(procs)
		for r := range want {
			if !reflect.DeepEqual(got[r], want[r]) {
				t.Fatalf("GOMAXPROCS=%d round %d diverges: %+v vs %+v", procs, r, got[r], want[r])
			}
		}
	}
}

// TestSoftCombineSurvivesAPDropout: with a dead AP mid-round, the soft
// path sums only the live arenas (stale spectra never leak in) and the
// soft stats stay no worse than selection. Exercised through a
// trajectory with AP dropout forced on.
func TestSoftCombineSurvivesAPDropout(t *testing.T) {
	const nDev = 12
	const nAPs = 3
	net := testSoftNetwork(t, nDev, nAPs, 29)
	adv := advRound{apAlive: make([]bool, nAPs)}
	// Kill AP 1; APs 0 and 2 stay live.
	adv.apAlive[0], adv.apAlive[1], adv.apAlive[2] = true, false, true
	stats, err := net.runRound(nDev, &adv)
	if err != nil {
		t.Fatal(err)
	}
	if net.rc.softRes == nil {
		t.Fatal("soft decode missing with live APs remaining")
	}
	if stats.SoftFramesGained() < 0 {
		t.Fatalf("soft lost %d frames vs selection under dropout", -stats.SoftFramesGained())
	}

	// All APs dead: no combined decode, soft degenerates to the empty
	// selection outcome.
	adv.apAlive[0], adv.apAlive[2] = false, false
	stats, err = net.runRound(nDev, &adv)
	if err != nil {
		t.Fatal(err)
	}
	if net.rc.softRes != nil {
		t.Fatal("combined decode produced with every AP dead")
	}
	if stats.Soft.FramesOK != 0 || stats.Combined.FramesOK != 0 {
		t.Fatalf("all-dead round decoded frames: %+v", stats)
	}
}
