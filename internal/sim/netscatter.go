package sim

import (
	"fmt"
	"sort"

	"netscatter/internal/air"
	"netscatter/internal/chirp"
	"netscatter/internal/core"
	"netscatter/internal/deploy"
	"netscatter/internal/dsp"
	"netscatter/internal/hw"
	"netscatter/internal/mac"
	"netscatter/internal/radio"
)

// Config parameterizes the sample-level NetScatter network simulation.
type Config struct {
	// Params is the chirp configuration (the paper deploys 500 kHz,
	// SF 9).
	Params chirp.Params
	// Skip is the cyclic-shift spacing (2 in the deployment).
	Skip int
	// PayloadBytes per device per round (5 in §4.4).
	PayloadBytes int
	// Decoder tunes the receiver; zero value means
	// core.DefaultDecoderConfig(Skip).
	Decoder *core.DecoderConfig
	// Timing is the on-air accounting.
	Timing Timing
	// Query selects Config1/Config2 overheads.
	Query QueryConfig
	// DisablePowerControl turns off the device-side power adaptation
	// (for the ablation bench).
	DisablePowerControl bool
	// PowerAwareAllocation selects the §3.2.3 allocation; when false
	// slots are assigned in arrival order (ablation).
	PowerAwareAllocation bool
	// Fading applies a per-round Ricean fading draw per device.
	Fading bool
	// DelayModel draws per-packet hardware delays.
	DelayModel hw.DelayModel
}

// DefaultConfig returns the deployment configuration of §4.4.
func DefaultConfig() Config {
	return Config{
		Params:               chirp.Default500k9,
		Skip:                 2,
		PayloadBytes:         5,
		Timing:               DefaultTiming(),
		Query:                Config1,
		PowerAwareAllocation: true,
		DelayModel:           hw.DefaultDelayModel,
	}
}

// RoundStats aggregates one concurrent round.
type RoundStats struct {
	Devices       int // devices scheduled to transmit
	Detected      int // devices whose preamble was found
	FramesOK      int // devices with matching CRC and payload
	BitErrors     int // payload bit errors across detected devices
	TotalBits     int // payload bits transmitted by detected devices
	ScheduledBits int // payload bits transmitted by all devices
	RoundSecs     float64
	PayloadSec    float64
}

// PER returns the packet error rate: the fraction of scheduled devices
// whose frame did not arrive CRC-valid.
func (r RoundStats) PER() float64 {
	if r.Devices == 0 {
		return 0
	}
	return 1 - float64(r.FramesOK)/float64(r.Devices)
}

// BER returns the payload bit error rate over detected devices.
func (r RoundStats) BER() float64 {
	if r.TotalBits == 0 {
		return 0
	}
	return float64(r.BitErrors) / float64(r.TotalBits)
}

// GoodBits returns the correctly received payload bits across all
// scheduled devices (bits of undetected devices count as lost).
func (r RoundStats) GoodBits() int {
	return r.TotalBits - r.BitErrors
}

// GoodFraction is GoodBits over everything scheduled.
func (r RoundStats) GoodFraction() float64 {
	if r.ScheduledBits == 0 {
		return 0
	}
	return float64(r.GoodBits()) / float64(r.ScheduledBits)
}

// Network is a deployed NetScatter network ready to run rounds.
type Network struct {
	cfg     Config
	dep     *deploy.Deployment
	book    *core.CodeBook
	decoder *core.ParallelDecoder
	rng     *dsp.Rand
	ch      *air.Channel

	// per-device state, parallel to dep.Devices
	slots  []int
	gains  []float64
	oscs   []radio.Oscillator
	faders []*radio.FadingProcess
	encs   []*core.Encoder

	rc roundCtx
}

// roundCtx is the network's reusable round arena: every buffer frame
// setup needs — transmissions, payloads, frame bit sections, the
// received stream — is carved out once at association time and refilled
// in place each round, extending the decoder's zero-allocation property
// (PR 1) up through the transmit path. The DelayedInto closures are
// built once per device; each round only rewrites the scalar channel
// fields (SNR, delay, frequency offset, fade) and the arena contents.
type roundCtx struct {
	txs      []air.Transmission
	shifts   []int
	payloads [][]byte // per-device views into payloadArena
	bits     [][]byte // per-device frame bit sections into bitsArena

	payloadArena []byte
	bitsArena    []byte
	sig          []complex128
}

// NewNetwork associates the first maxDevices of a deployment: slots are
// assigned with the power-aware allocator (strongest devices nearest
// the anchor bin), and each device runs its association-time power rule.
func NewNetwork(cfg Config, dep *deploy.Deployment, maxDevices int, seed int64) (*Network, error) {
	if cfg.Skip < 1 {
		return nil, fmt.Errorf("sim: invalid SKIP %d", cfg.Skip)
	}
	if maxDevices > len(dep.Devices) {
		return nil, fmt.Errorf("sim: %d devices requested, deployment has %d", maxDevices, len(dep.Devices))
	}
	book, err := buildCodeBook(cfg, maxDevices)
	if err != nil {
		return nil, err
	}
	dcfg := resolveDecoderConfig(cfg, book.Skip())
	n := &Network{
		cfg:     cfg,
		dep:     dep,
		book:    book,
		decoder: core.NewParallelDecoder(book, dcfg, 0),
		rng:     dsp.NewRand(seed),
		slots:   make([]int, maxDevices),
		gains:   make([]float64, maxDevices),
		oscs:    make([]radio.Oscillator, maxDevices),
		faders:  make([]*radio.FadingProcess, maxDevices),
		encs:    make([]*core.Encoder, maxDevices),
	}
	n.ch = air.NewChannel(cfg.Params, n.rng)

	// Association-time power rule, then allocation on the resulting
	// received strengths.
	pcs := make([]*mac.PowerController, maxDevices)
	effSNR := make([]float64, maxDevices)
	for i := 0; i < maxDevices; i++ {
		pcs[i] = mac.NewPowerController()
		gain := 0.0
		if !cfg.DisablePowerControl {
			gain = pcs[i].AssociateGainDB(dep.Devices[i].DownlinkRSSIdBm)
		}
		n.gains[i] = gain
		effSNR[i] = dep.Devices[i].UplinkSNRdB + gain
		n.oscs[i] = radio.NewBackscatterOscillator(n.rng, 20, 50)
		if cfg.Fading {
			n.faders[i] = radio.NewFadingProcess(10, 0.97, n.rng.Fork())
		}
	}

	if cfg.PowerAwareAllocation {
		alloc := mac.NewDataOnlyAllocator(book)
		ids := make([]uint8, maxDevices)
		for i := range ids {
			ids[i] = uint8(i)
		}
		assign := alloc.AssignAll(ids, effSNR)
		for i := range ids {
			n.slots[i] = assign[uint8(i)]
		}
	} else {
		// Arrival-order (random) assignment for the ablation.
		perm := n.rng.Perm(book.Slots())
		for i := 0; i < maxDevices; i++ {
			n.slots[i] = perm[i]
		}
	}
	n.initRoundCtx(maxDevices)
	return n, nil
}

// buildCodeBook selects the effective cyclic-shift spacing for a
// network of maxDevices and builds its code book. Devices are spread
// over the whole spectrum when slots outnumber them: with 128 of 256
// devices the effective spacing is SKIP=4, matching the paper's
// observation that under 128 devices "the devices are separated by
// more than 2 cyclic shifts" (§4.4).
func buildCodeBook(cfg Config, maxDevices int) (*core.CodeBook, error) {
	skip := cfg.Skip
	if maxDevices > 0 {
		if s := cfg.Params.N() / maxDevices; s > skip {
			skip = s
		}
	}
	if max := cfg.Params.N() / 2; skip > max {
		skip = max
	}
	book, err := core.NewCodeBook(cfg.Params, skip)
	if err != nil {
		return nil, err
	}
	if maxDevices > book.Slots() {
		return nil, fmt.Errorf("sim: %d devices exceed %d slots", maxDevices, book.Slots())
	}
	return book, nil
}

// resolveDecoderConfig applies the simulator's decoder defaults: a
// guard window matched to the residual-offset regime and the
// normalized noise floor the AP would calibrate on quiet intervals
// (exactly N per padded bin — unit noise over an N-sample window).
func resolveDecoderConfig(cfg Config, skip int) core.DecoderConfig {
	dcfg := core.DefaultDecoderConfig(skip)
	if dcfg.GuardBins > 2 {
		// Residual offsets never exceed ~2 bins (Fig. 14b); a wider
		// search window would only admit neighbours.
		dcfg.GuardBins = 2
	}
	if cfg.Decoder != nil {
		dcfg = *cfg.Decoder
	}
	if dcfg.NoiseFloor == 0 {
		dcfg.NoiseFloor = float64(cfg.Params.N())
	}
	return dcfg
}

// tallyDevice folds one device's decode outcome into stats: detection,
// payload bit errors against the transmitted bits, and frame validity
// against the transmitted payload.
func tallyDevice(stats *RoundStats, dev *core.DeviceDecode, wantBits []byte, wantPayload []byte, payloadBits int) {
	if !dev.Detected {
		return
	}
	stats.Detected++
	stats.TotalBits += payloadBits
	for j := range wantBits {
		if dev.Bits[j] != wantBits[j] {
			stats.BitErrors++
		}
	}
	if dev.CRCOK && equalBytes(dev.Payload, wantPayload) {
		stats.FramesOK++
	}
}

// initRoundCtx carves the reusable round arena and builds the
// per-device encoders and transmission closures once; RunRound only
// refills it. Slots are fixed after association, so shifts — and the
// synthesizer state behind each encoder — never change between rounds.
func (n *Network) initRoundCtx(maxDevices int) {
	payloadBytes := n.cfg.PayloadBytes
	payloadBits := payloadBytes*8 + core.CRCBits
	frameSymbols := core.PreambleSymbols + payloadBits

	rc := &n.rc
	rc.txs = make([]air.Transmission, maxDevices)
	rc.shifts = make([]int, maxDevices)
	rc.payloads = make([][]byte, maxDevices)
	rc.bits = make([][]byte, maxDevices)
	rc.payloadArena = make([]byte, maxDevices*payloadBytes)
	rc.bitsArena = make([]byte, maxDevices*payloadBits)
	rc.sig = make([]complex128, n.ch.FrameLength(frameSymbols, 2))
	for i := 0; i < maxDevices; i++ {
		rc.shifts[i] = n.book.ShiftOfSlot(n.slots[i])
		n.encs[i] = core.NewEncoder(n.cfg.Params, rc.shifts[i])
		rc.payloads[i] = rc.payloadArena[i*payloadBytes : (i+1)*payloadBytes]
		rc.bits[i] = rc.bitsArena[i*payloadBits : (i+1)*payloadBits]
		// The tiled channel path: the frame is never materialized —
		// template symbols are synthesized once per round into the
		// channel's arena, and every receive-buffer tile accumulates its
		// clip of the frame straight from them (bit-identical to
		// materialize + superpose, at any worker count).
		rc.txs[i].MixedTmpl = func(tmpl []complex128, frac, freqHz float64, gain complex128) []complex128 {
			return n.encs[i].FrameBitsWaveformMixedTemplates(tmpl, n.rc.bits[i], frac, freqHz, gain)
		}
		rc.txs[i].MixedAddRange = func(out []complex128, lo, hi, at int, tmpl []complex128, frac, freqHz float64) {
			n.encs[i].FrameBitsWaveformMixedAddRange(out, lo, hi, at, tmpl, n.rc.bits[i], frac, freqHz)
		}
	}
}

// Book exposes the code book.
func (n *Network) Book() *core.CodeBook { return n.book }

// SlotOf returns the slot of device i.
func (n *Network) SlotOf(i int) int { return n.slots[i] }

// GainOf returns the power gain of device i.
func (n *Network) GainOf(i int) float64 { return n.gains[i] }

// EffectiveSNRs returns the post-power-control SNRs of the first k
// devices.
func (n *Network) EffectiveSNRs(k int) []float64 {
	out := make([]float64, k)
	for i := 0; i < k; i++ {
		out[i] = n.dep.Devices[i].UplinkSNRdB + n.gains[i]
	}
	return out
}

// RunRound executes one concurrent round with nDevices (the first
// nDevices of the network) and returns its statistics.
func (n *Network) RunRound(nDevices int) (RoundStats, error) {
	if nDevices > len(n.slots) {
		return RoundStats{}, fmt.Errorf("sim: round with %d devices, network has %d", nDevices, len(n.slots))
	}
	p := n.cfg.Params
	payloadBits := n.cfg.PayloadBytes*8 + core.CRCBits

	// Refill the round arena in place: same rng draw order as the
	// original per-round construction (payload bytes, fade, delay,
	// oscillator), so a seed produces the same round sequence.
	rc := &n.rc
	txs := rc.txs[:nDevices]
	for i := 0; i < nDevices; i++ {
		n.rng.FillBytes(rc.payloads[i])
		core.FrameBitsInto(rc.bits[i], rc.payloads[i])
		var fade complex128
		if n.faders[i] != nil {
			fade = n.faders[i].Step()
		}
		txs[i].SNRdB = n.dep.Devices[i].UplinkSNRdB + n.gains[i]
		txs[i].DelaySec = n.cfg.DelayModel.Draw(n.rng) +
			hw.PropagationDelaySec(n.dep.Devices[i].Pos.Distance(n.dep.Plan.AP))
		txs[i].FreqOffsetHz = n.oscs[i].PacketOffsetHz(n.rng)
		txs[i].FadeGain = fade
	}

	sig := n.ch.ReceiveInto(rc.sig, txs)
	res, err := n.decoder.DecodeFrame(sig, 0, rc.shifts[:nDevices], payloadBits)
	if err != nil {
		return RoundStats{}, err
	}

	stats := RoundStats{
		Devices:       nDevices,
		ScheduledBits: nDevices * payloadBits,
		RoundSecs:     n.cfg.Timing.NetScatterRoundSeconds(p, n.cfg.Query, n.cfg.PayloadBytes),
		PayloadSec:    float64(payloadBits) * p.SymbolPeriod(),
	}
	for i := range res.Devices {
		tallyDevice(&stats, &res.Devices[i], rc.bits[i], rc.payloads[i], payloadBits)
	}
	return stats, nil
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SortDeploymentBySNR reorders a deployment's devices by descending
// uplink SNR; useful for experiments that pick "the strongest k".
func SortDeploymentBySNR(dep *deploy.Deployment) {
	sort.SliceStable(dep.Devices, func(i, j int) bool {
		return dep.Devices[i].UplinkSNRdB > dep.Devices[j].UplinkSNRdB
	})
}
