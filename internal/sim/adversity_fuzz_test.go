package sim

import (
	"testing"
)

// FuzzAdversityScheduler pins the structural invariants of the
// deterministic fault scheduler under arbitrary seeds and knobs:
//   - a planned burst always lies inside the round's sample window
//     (0 ≤ start, start+dur ≤ roundSamples, dur > 0) with a chirp shift
//     inside the symbol and an interferer on the floor;
//   - dropout masks are internally consistent (the returned survivor
//     count equals the mask's population) and never double-count;
//   - every plan re-derives bit-identically from (seed, round) — the
//     property trajectory resume/reproducibility rests on;
//   - a device asleep this round can never transmit, whatever its
//     other state (churn gating is absolute).
func FuzzAdversityScheduler(f *testing.F) {
	f.Add(int64(1), uint64(0), 0.5, 4096, 64, 16, uint8(3), 0.3, 0.3)
	f.Add(int64(-7), uint64(1000), 1.0, 1, 1, 1, uint8(1), 1.0, 0.0)
	f.Add(int64(42), uint64(3), 0.01, 1<<20, 512, 64, uint8(8), 0.0, 1.0)
	f.Add(int64(0), uint64(0), 0.0, 0, 0, 0, uint8(0), 0.5, 0.5)
	f.Fuzz(func(t *testing.T, seed int64, round uint64, prob float64,
		roundSamples, symbolSamples, maxSymbols int, nAPs uint8,
		sleepProb, wakeProb float64) {

		// Keep the window arithmetic in a sane range; the planner's own
		// guards handle non-positive sizes.
		if roundSamples > 1<<24 {
			roundSamples %= 1 << 24
		}
		if symbolSamples > 1<<16 {
			symbolSamples %= 1 << 16
		}
		if maxSymbols > 1<<10 {
			maxSymbols %= 1 << 10
		}
		const w, h = 40.0, 20.0

		b := planBurst(seed, round, prob, roundSamples, symbolSamples, maxSymbols, w, h)
		if b.present {
			if b.dur <= 0 || b.start < 0 || b.start+b.dur > roundSamples {
				t.Fatalf("burst window [%d, %d) escapes round of %d samples",
					b.start, b.start+b.dur, roundSamples)
			}
			if b.shift < 0 || b.shift >= symbolSamples {
				t.Fatalf("chirp shift %d outside symbol of %d", b.shift, symbolSamples)
			}
			if b.pos.X < 0 || b.pos.X > w || b.pos.Y < 0 || b.pos.Y > h {
				t.Fatalf("interferer at %+v off the %vx%v floor", b.pos, w, h)
			}
		}
		if again := planBurst(seed, round, prob, roundSamples, symbolSamples, maxSymbols, w, h); again != b {
			t.Fatalf("burst plan not reproducible: %+v vs %+v", b, again)
		}

		alive := make([]bool, int(nAPs))
		n := planDropout(seed, round, prob, alive)
		count := 0
		for _, a := range alive {
			if a {
				count++
			}
		}
		if n != count {
			t.Fatalf("planDropout returned %d survivors, mask holds %d", n, count)
		}
		alive2 := make([]bool, int(nAPs))
		n2 := planDropout(seed, round, prob, alive2)
		for a := range alive {
			if alive[a] != alive2[a] || n != n2 {
				t.Fatal("dropout mask not reproducible")
			}
		}

		// Churn: replaying the stream replays the decisions, one draw per
		// round; asleep devices can never be active.
		st := adversityStream(seed, axisChurn, round)
		st2 := st
		asleep := false
		for r := 0; r < 16; r++ {
			asleep = churnStep(&st, asleep, sleepProb, wakeProb)
			if asleep && deviceActive(asleep, 0, true) {
				t.Fatal("asleep device reported active")
			}
		}
		replay := false
		for r := 0; r < 16; r++ {
			replay = churnStep(&st2, replay, sleepProb, wakeProb)
		}
		if replay != asleep {
			t.Fatal("churn trajectory not reproducible")
		}
	})
}
