package sim

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

// statsFixture builds a deterministic set of per-round stats shaped
// like real rounds (including all-lost rounds).
func statsFixture(n int) []RoundStats {
	out := make([]RoundStats, n)
	for i := range out {
		devices := 1 + i%7
		ok := i % (devices + 1)
		out[i] = RoundStats{
			Devices:       devices,
			Detected:      min(devices, ok+1),
			FramesOK:      ok,
			BitErrors:     i % 5,
			TotalBits:     48 * (ok + 1),
			ScheduledBits: 48 * devices,
			RoundSecs:     0.001 * float64(1+i%3),
		}
	}
	return out
}

// TestAccumulatorSerialOracle: the accumulator's totals equal a plain
// serial fold of the same rounds.
func TestAccumulatorSerialOracle(t *testing.T) {
	rounds := statsFixture(200)
	var a Accumulator
	var want Snapshot
	for _, r := range rounds {
		a.AddRound(r)
		want.Rounds++
		if r.Devices > 0 && r.FramesOK == 0 {
			want.AllLostRounds++
		}
		want.Devices += int64(r.Devices)
		want.Detected += int64(r.Detected)
		want.FramesOK += int64(r.FramesOK)
		want.BitErrors += int64(r.BitErrors)
		want.TotalBits += int64(r.TotalBits)
		want.ScheduledBits += int64(r.ScheduledBits)
		want.SimSeconds += r.RoundSecs
	}
	want.derive()
	got := a.Snapshot()
	if got != want {
		t.Fatalf("snapshot %+v != serial oracle %+v", got, want)
	}
	if got.PER != 1-float64(got.FramesOK)/float64(got.Devices) {
		t.Fatalf("derived PER %v inconsistent with counters", got.PER)
	}
}

// TestAccumulatorConcurrent: folding the same rounds from many
// goroutines (with interleaved snapshots) matches the serial oracle —
// the race detector checks the locking, the totals check atomicity.
func TestAccumulatorConcurrent(t *testing.T) {
	rounds := statsFixture(400)
	var serial Accumulator
	for _, r := range rounds {
		serial.AddRound(r)
	}
	want := serial.Snapshot()

	const workers = 8
	var a Accumulator
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < len(rounds); i += workers {
				a.AddRound(rounds[i])
				if i%13 == 0 {
					// Interleaved snapshots must always be internally
					// consistent: counters never exceed the full fold.
					s := a.Snapshot()
					if s.FramesOK > want.FramesOK || s.Rounds > want.Rounds {
						t.Errorf("snapshot overshoots oracle: %+v", s)
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := a.Snapshot(); got != want {
		t.Fatalf("concurrent fold %+v != serial oracle %+v", got, want)
	}
}

// TestAccumulatorMulti: AddMulti folds the combined round and tracks
// soft totals only when the round carried a soft outcome.
func TestAccumulatorMulti(t *testing.T) {
	var a Accumulator
	m := MultiRoundStats{
		Combined: RoundStats{Devices: 4, Detected: 3, FramesOK: 2, TotalBits: 96, ScheduledBits: 192, RoundSecs: 0.01},
		Soft:     RoundStats{Devices: 4, Detected: 4, FramesOK: 3, TotalBits: 96, ScheduledBits: 192},
	}
	a.AddMulti(m, true)
	a.AddMulti(m, false)
	s := a.Snapshot()
	if s.Rounds != 2 || s.FramesOK != 4 {
		t.Fatalf("combined fold wrong: %+v", s)
	}
	if s.SoftRounds != 1 || s.SoftFramesOK != 3 {
		t.Fatalf("soft fold wrong: %+v", s)
	}
}

// TestAccumulatorAddAllocs: the fold is allocation-free — it sits on
// every tenant's round hot path in netscatter-serve.
func TestAccumulatorAddAllocs(t *testing.T) {
	var a Accumulator
	r := statsFixture(1)[0]
	m := MultiRoundStats{Combined: r, Soft: r}
	if n := testing.AllocsPerRun(100, func() { a.AddRound(r) }); n != 0 {
		t.Fatalf("AddRound allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { a.AddMulti(m, true) }); n != 0 {
		t.Fatalf("AddMulti allocates %v/op", n)
	}
}

// TestSnapshotJSON: the export round-trips through JSON with the
// derived rates present.
func TestSnapshotJSON(t *testing.T) {
	var a Accumulator
	for _, r := range statsFixture(50) {
		a.AddRound(r)
	}
	s := a.Snapshot()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("JSON round-trip changed the snapshot: %+v != %+v", back, s)
	}
	if math.IsNaN(s.PER) || math.IsNaN(s.BER) || math.IsNaN(s.GoodputBps) {
		t.Fatalf("derived rates not finite: %+v", s)
	}
}

// TestAccumulatorLiveRounds: real network rounds stepped in one
// goroutine while other goroutines snapshot concurrently — snapshots
// stay internally consistent at every instant, and the final export
// equals the serial oracle fold of the exact per-round stats.
func TestAccumulatorLiveRounds(t *testing.T) {
	net := testMultiAPNetwork(t, 8, 2, 21)
	oracle := testMultiAPNetwork(t, 8, 2, 21)
	const rounds = 24

	var want Snapshot
	for i := 0; i < rounds; i++ {
		stats, err := oracle.RunRound(8)
		if err != nil {
			t.Fatal(err)
		}
		var w Accumulator
		w.AddMulti(stats, false)
		s := w.Snapshot()
		want.Rounds += s.Rounds
		want.AllLostRounds += s.AllLostRounds
		want.Devices += s.Devices
		want.Detected += s.Detected
		want.FramesOK += s.FramesOK
		want.BitErrors += s.BitErrors
		want.TotalBits += s.TotalBits
		want.ScheduledBits += s.ScheduledBits
		want.SimSeconds += s.SimSeconds
	}
	want.derive()

	var a Accumulator
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				s := a.Snapshot()
				if s.FramesOK > s.Devices || s.Rounds > rounds {
					t.Errorf("inconsistent live snapshot: %+v", s)
					return
				}
			}
		}()
	}
	for i := 0; i < rounds; i++ {
		stats, err := net.RunRound(8)
		if err != nil {
			t.Fatal(err)
		}
		a.AddMulti(stats, false)
	}
	close(done)
	wg.Wait()
	if got := a.Snapshot(); got != want {
		t.Fatalf("live fold %+v != serial oracle %+v", got, want)
	}
}
