// Package sim runs end-to-end NetScatter network rounds at the sample
// level and evaluates the comparison schemes of §4.4 (LoRa backscatter
// with and without ideal rate adaptation), producing the network PHY
// rate, link-layer rate and latency series of Figs. 17-19.
package sim

import (
	"netscatter/internal/chirp"
	"netscatter/internal/core"
	"netscatter/internal/css"
	"netscatter/internal/radio"
)

// Timing captures the on-air time accounting of §4.4.
type Timing struct {
	// Downlink is the AP's ASK modem (160 kbps).
	Downlink radio.ASKModem
}

// DefaultTiming matches the paper's setup.
func DefaultTiming() Timing {
	return Timing{Downlink: radio.DefaultASK}
}

// QueryConfig selects the AP query size of §4.4.
type QueryConfig int

const (
	// Config1: shifts were all assigned at association; the query
	// coordinating concurrent transmissions is 32 bits.
	Config1 QueryConfig = iota
	// Config2: the query carries cyclic-shift assignments for every
	// device, 1760 bits.
	Config2
)

// QueryBits returns the downlink query length in bits.
func (c QueryConfig) QueryBits() int {
	if c == Config2 {
		return 1760
	}
	return 32
}

// NetScatterRoundSeconds returns the duration of one concurrent round:
// the AP query plus the shared frame (preamble + payload + CRC). All
// devices pay these costs once, together.
func (t Timing) NetScatterRoundSeconds(p chirp.Params, cfg QueryConfig, payloadBytes int) float64 {
	query := t.Downlink.Duration(cfg.QueryBits())
	frame := float64(core.FrameSymbols(payloadBytes)) * p.SymbolPeriod()
	return query + frame
}

// LoRaQueryBits is the per-device query of the sequential LoRa
// backscatter baseline (§4.4).
const LoRaQueryBits = 28

// LoRaDeviceSeconds returns the per-device service time of the TDMA
// baseline: its own query, its own preamble (8 chirp symbols at the
// chosen configuration) and its payload+CRC at the given bitrate.
func (t Timing) LoRaDeviceSeconds(p chirp.Params, bitrate float64, payloadBytes int) float64 {
	query := t.Downlink.Duration(LoRaQueryBits)
	preamble := float64(core.PreambleSymbols) * p.SymbolPeriod()
	payload := float64(payloadBytes*8+core.CRCBits) / bitrate
	return query + preamble + payload
}

// FixedLoRaBitrate is the no-rate-adaptation baseline's bitrate
// (8.7 kbps ~ SF 9 at 500 kHz, §4.4).
const FixedLoRaBitrate = 8.7e3

// RateForSNR returns the ideal rate-adaptation choice for a device SNR,
// falling back to the slowest option when even it does not fit.
func RateForSNR(snrDB float64, bw float64) css.RateOption {
	opts := css.RateTable(bw)
	if best, ok := css.BestRate(snrDB, opts); ok {
		return best
	}
	// Out of range: the device is served at the most robust setting
	// (it may still fail; the paper's deployment had all devices in
	// range).
	return opts[len(opts)-1]
}
