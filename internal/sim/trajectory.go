package sim

// Trajectory: a multi-round run of a MultiAPNetwork through a
// time-varying adversarial world — correlated fading drift, CFO random
// walks, slow mobility, device duty-cycling, interference bursts and
// AP dropout — wired to the protocol's recovery machinery: the §3.2.3
// power controller decides participation per round from the (faded)
// downlink proxy, `NeedsReassociation` trips after three consecutive
// skips, the AP's `OnDeviceLost`/`OnAssociationRequest` paths re-place
// the device, and per-device recovery latency (rounds from the outage
// event to the next CRC-valid frame) is tracked along with PER over
// time and frame-loss attribution. All adversity randomness comes from
// dsp.StreamAt-derived streams (see adversity.go), so a trajectory is
// bit-reproducible from one seed and, with every knob at zero,
// bit-identical to plain RunRound calls. See DESIGN-trajectory.md.

import (
	"fmt"
	"math"
	"sort"

	"netscatter/internal/air"
	"netscatter/internal/chirp"
	"netscatter/internal/dsp"
	"netscatter/internal/mac"
	"netscatter/internal/radio"
)

// TrajectoryConfig selects the adversity processes layered over a
// network's rounds. The zero value (beyond Rounds and Seed) disables
// every process — the configuration whose trajectory is the RunRound
// oracle.
type TrajectoryConfig struct {
	// Rounds is the trajectory length Run executes (Step may be called
	// beyond it; pre-sized stats arenas then grow).
	Rounds int
	// Seed keys every adversity stream. Independent of the network's
	// construction seed.
	Seed int64

	// Correlation is the per-round AR(1) fading correlation rho ∈
	// [0, 1). 0 disables evolved fading: a memoryless trajectory is
	// exactly the i.i.d. world RunRound already redraws each round.
	Correlation float64
	// DopplerHz, when positive, derives Correlation from the Jakes
	// model at the round period: rho = J0(2π·fD·T_round).
	DopplerHz float64
	// KFactorDB is the Ricean K-factor of the evolved fading
	// (default 10 dB).
	KFactorDB float64
	// RoundPeriodSec is the fade step interval (default: the network's
	// configured round duration).
	RoundPeriodSec float64

	// CFODriftHz is the per-round standard deviation of each device's
	// oscillator random walk (0 disables). The walk reflects at
	// ±CFOBoundHz (default 40 Hz, roughly a 40 ppm crystal's thermal
	// wander at the 3 MHz subcarrier).
	CFODriftHz float64
	CFOBoundHz float64

	// MobilityStepM is the per-round, per-axis standard deviation of
	// each device's position random walk in meters (0 disables). Moving
	// devices re-derive path loss and wall counts from position.
	MobilityStepM float64

	// SleepProb and WakeProb drive device duty-cycling: an awake device
	// sleeps with SleepProb per round, a sleeping one wakes with
	// WakeProb (default 0.3 when churn is on). A sleeping device keeps
	// its stale power-control and grouping state.
	SleepProb float64
	WakeProb  float64
	// LostAfterRounds is how many silent rounds the AP tolerates before
	// declaring a sleeping device lost and freeing its slot (default 3;
	// a woken device without a record must re-associate).
	LostAfterRounds int

	// BurstProb fires an interference burst per round with this
	// probability: WiFi-shaped noise or a foreign LoRa chirp train from
	// a transmitter placed uniformly on the floor at BurstEIRPdBm
	// (default 20 dBm), lasting up to BurstMaxSymbols symbol periods
	// (default 16).
	BurstProb       float64
	BurstEIRPdBm    float64
	BurstMaxSymbols int

	// APDropProb kills each AP independently per round (a dead AP's
	// decode contributes nothing; all dead is a well-formed all-lost
	// round).
	APDropProb float64

	// ReassocRounds is the association handshake cost in rounds — how
	// long a re-associating device stays off the air (default 1).
	ReassocRounds int
	// DeepFadeDB attributes a lost frame to fading when the device's
	// evolved fade sits this many dB or more below the mean channel
	// (default 15).
	DeepFadeDB float64

	// NoSeries disables the per-round series (PERPerRound,
	// FramesOKPerRound, ActivePerRound) — the only trajectory state
	// that grows without bound in the round count. Long-lived hosts
	// (netscatter-serve) step trajectories indefinitely and keep their
	// own bounded aggregates; with NoSeries set, every scalar counter,
	// the loss attribution and the (event-bounded) recovery-latency
	// list keep accumulating, while MeanPER returns 0 for lack of a
	// series.
	NoSeries bool
}

func (cfg TrajectoryConfig) withDefaults() TrajectoryConfig {
	if cfg.KFactorDB == 0 {
		cfg.KFactorDB = 10
	}
	if cfg.WakeProb == 0 {
		cfg.WakeProb = 0.3
	}
	if cfg.LostAfterRounds == 0 {
		cfg.LostAfterRounds = 3
	}
	if cfg.BurstEIRPdBm == 0 {
		cfg.BurstEIRPdBm = 20
	}
	if cfg.BurstMaxSymbols == 0 {
		cfg.BurstMaxSymbols = 16
	}
	if cfg.CFOBoundHz == 0 {
		cfg.CFOBoundHz = 40
	}
	if cfg.ReassocRounds == 0 {
		cfg.ReassocRounds = 1
	}
	if cfg.DeepFadeDB == 0 {
		cfg.DeepFadeDB = 15
	}
	return cfg
}

// TrajectoryStats aggregates a trajectory's outcome: PER over time,
// the recovery-latency distribution, and frame losses attributed to
// their dominant cause.
type TrajectoryStats struct {
	Rounds int

	// Per-round series (index = round).
	PERPerRound      []float64
	FramesOKPerRound []int
	ActivePerRound   []int // devices scheduled (awake and participating)

	// Protocol events.
	SleepEvents     int // awake→asleep transitions
	WakeEvents      int // asleep→awake transitions
	SkippedRounds   int // device-rounds sat out by the power rule
	Reassociations  int // completed re-associations
	DevicesLostByAP int // AP-side OnDeviceLost calls (timeout or re-association)

	// Adversity exposure.
	BurstRounds   int // rounds carrying an interference burst
	APDownRounds  int // dead AP-rounds (sum over rounds of dead APs)
	AllLostRounds int // rounds where devices transmitted and nothing got through

	// RecoveryLatencies holds, per closed recovery, the rounds from the
	// outage event (first skip of a streak, or wake-up, or
	// re-association trigger — whichever opened it) to the device's
	// next CRC-valid frame.
	RecoveryLatencies []int

	// Frame-loss attribution for scheduled-but-failed frames, by
	// documented precedence: every AP dead → dropout; an interference
	// burst this round → interference; the device's evolved fade below
	// -DeepFadeDB → fading; anything else (noise, collisions) → other.
	LostToDropout      int
	LostToInterference int
	LostToFading       int
	LostToOther        int
}

// MeanPER averages the per-round packet error rates.
func (s *TrajectoryStats) MeanPER() float64 {
	if len(s.PERPerRound) == 0 {
		return 0
	}
	var acc float64
	for _, v := range s.PERPerRound {
		acc += v
	}
	return acc / float64(len(s.PERPerRound))
}

// LostFrames is the total attributed frame losses.
func (s *TrajectoryStats) LostFrames() int {
	return s.LostToDropout + s.LostToInterference + s.LostToFading + s.LostToOther
}

// MeanRecoveryLatency averages the closed recovery latencies in
// rounds; 0 when no recovery was observed.
func (s *TrajectoryStats) MeanRecoveryLatency() float64 {
	if len(s.RecoveryLatencies) == 0 {
		return 0
	}
	acc := 0
	for _, v := range s.RecoveryLatencies {
		acc += v
	}
	return float64(acc) / float64(len(s.RecoveryLatencies))
}

// RecoveryLatencyQuantile returns the q-quantile (0..1) of the closed
// recovery latencies; 0 when none were observed.
func (s *TrajectoryStats) RecoveryLatencyQuantile(q float64) float64 {
	n := len(s.RecoveryLatencies)
	if n == 0 {
		return 0
	}
	sorted := append([]int(nil), s.RecoveryLatencies...)
	sort.Ints(sorted)
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return float64(sorted[idx])
}

// Trajectory drives a MultiAPNetwork through a time-varying world.
// Not safe for concurrent use; one trajectory owns its network.
type Trajectory struct {
	net *MultiAPNetwork
	cfg TrajectoryConfig
	ap  *mac.AP

	nDevices int
	rho      float64

	// Per-device evolution state (nil slices when the process is off).
	faders []*radio.CorrelatedFader
	cfos   []*radio.CFOWalk
	mobSt  []dsp.Stream
	chrnSt []dsp.Stream

	// Per-device protocol state.
	pcs          []*mac.PowerController
	ids          []uint8 // current network ID at the AP
	known        []bool  // AP still holds a record
	asleep       []bool
	sleepRounds  []int
	reassocLeft  []int
	pendingSince []int // round an open outage began, -1 when none

	// Interference arena: one retargetable burst.
	burst     *air.Burst
	burstTx   air.MultiTransmission
	burstSNRs []float64
	burstBuf  []complex128
	burstMod  *chirp.Modulator

	adv          advRound
	roundSamples int
	periodSec    float64
	round        int
	stats        TrajectoryStats
}

// NewTrajectory wraps a freshly constructed network (no rounds run
// yet) in a trajectory. The network must keep power control enabled —
// the participation rule is the recovery loop's engine — and
// power-aware allocation, so the AP-side warm start can adopt the
// association-time slot map.
func NewTrajectory(net *MultiAPNetwork, cfg TrajectoryConfig) (*Trajectory, error) {
	if net.cfg.DisablePowerControl {
		return nil, fmt.Errorf("sim: trajectory needs the device power rule enabled")
	}
	cfg = cfg.withDefaults()
	nd := len(net.slots)
	t := &Trajectory{
		net:      net,
		cfg:      cfg,
		nDevices: nd,
	}
	t.periodSec = cfg.RoundPeriodSec
	if t.periodSec <= 0 {
		t.periodSec = net.cfg.Timing.NetScatterRoundSeconds(net.cfg.Params, net.cfg.Query, net.cfg.PayloadBytes)
	}
	t.rho = cfg.Correlation
	if cfg.DopplerHz > 0 {
		t.rho = radio.JakesCorrelation(cfg.DopplerHz, t.periodSec)
	}
	t.roundSamples = len(net.rc.sigs[0])

	// Device-side state. Power controllers re-run the association-time
	// rule on the same best-AP downlink the network used, so their
	// baselines and gains replicate the network's exactly.
	t.pcs = make([]*mac.PowerController, nd)
	t.ids = make([]uint8, nd)
	t.known = make([]bool, nd)
	t.asleep = make([]bool, nd)
	t.sleepRounds = make([]int, nd)
	t.reassocLeft = make([]int, nd)
	t.pendingSince = make([]int, nd)
	if t.rho > 0 {
		t.faders = make([]*radio.CorrelatedFader, nd)
		t.adv.fade = make([]complex128, nd)
	}
	if cfg.CFODriftHz > 0 {
		t.cfos = make([]*radio.CFOWalk, nd)
		t.adv.cfoHz = make([]float64, nd)
	}
	if cfg.MobilityStepM > 0 {
		t.mobSt = make([]dsp.Stream, nd)
	}
	if cfg.SleepProb > 0 {
		t.chrnSt = make([]dsp.Stream, nd)
	}

	// AP-side warm start: adopt the association-time assignment so the
	// dynamic machinery continues from the slots already on the air.
	t.ap = mac.NewAPWith(net.book, mac.NewDataOnlyAllocator(net.book))
	for i := 0; i < nd; i++ {
		dev := &net.dep.Devices[i]
		best := dev.BestAP()
		bestDown := dev.APLinks[0].DownlinkRSSIdBm
		for _, l := range dev.APLinks[1:] {
			if l.DownlinkRSSIdBm > bestDown {
				bestDown = l.DownlinkRSSIdBm
			}
		}
		t.pcs[i] = mac.NewPowerController()
		gain := t.pcs[i].AssociateGainDB(bestDown)
		if gain != net.gains[i] {
			return nil, fmt.Errorf("sim: device %d association gain %v diverges from network's %v", i, gain, net.gains[i])
		}
		t.ids[i] = uint8(i)
		t.known[i] = true
		t.pendingSince[i] = -1
		eff := dev.APLinks[best].UplinkSNRdB + gain
		if err := t.ap.AdoptAssignment(t.ids[i], net.slots[i], eff); err != nil {
			return nil, fmt.Errorf("sim: adopting device %d: %w", i, err)
		}
		if t.faders != nil {
			f := adversityStream(cfg.Seed, axisFade, uint64(i))
			t.faders[i] = radio.NewCorrelatedFader(cfg.KFactorDB, t.rho, f)
		}
		if t.cfos != nil {
			w := adversityStream(cfg.Seed, axisCFO, uint64(i))
			t.cfos[i] = radio.NewCFOWalk(cfg.CFODriftHz, cfg.CFOBoundHz, w)
		}
		if t.mobSt != nil {
			t.mobSt[i] = adversityStream(cfg.Seed, axisMobility, uint64(i))
		}
		if t.chrnSt != nil {
			t.chrnSt[i] = adversityStream(cfg.Seed, axisChurn, uint64(i))
		}
	}

	t.adv.active = make([]bool, nd)
	t.adv.apAlive = make([]bool, net.nAPs)
	t.adv.extra = make([]air.MultiTransmission, 0, maxBurstsPerRound)
	t.burst = &air.Burst{}
	t.burstSNRs = make([]float64, net.nAPs)
	t.burstTx = t.burst.Tx(t.burstSNRs)
	t.burstBuf = make([]complex128, 2*net.cfg.Params.N())
	t.burstMod = chirp.NewModulator(net.cfg.Params)

	r := cfg.Rounds
	if r < 0 {
		r = 0
	}
	t.stats.PERPerRound = make([]float64, 0, r)
	t.stats.FramesOKPerRound = make([]int, 0, r)
	t.stats.ActivePerRound = make([]int, 0, r)
	t.stats.RecoveryLatencies = make([]int, 0, 16)
	return t, nil
}

// Stats exposes the accumulated trajectory statistics.
func (t *Trajectory) Stats() *TrajectoryStats { return &t.stats }

// Round returns the number of rounds stepped so far.
func (t *Trajectory) Round() int { return t.round }

// AP exposes the infrastructure-side protocol state (tests).
func (t *Trajectory) AP() *mac.AP { return t.ap }

// Run steps the trajectory cfg.Rounds times and returns the stats.
func (t *Trajectory) Run() (*TrajectoryStats, error) {
	for r := 0; r < t.cfg.Rounds; r++ {
		if _, err := t.Step(); err != nil {
			return nil, err
		}
	}
	return &t.stats, nil
}

// fadeDB returns device i's current evolved fade in dB (0 when evolved
// fading is off).
func (t *Trajectory) fadeDB(i int) float64 {
	if t.faders == nil {
		return 0
	}
	h := t.faders[i].Gain()
	p := real(h)*real(h) + imag(h)*imag(h)
	if p <= 0 {
		return -300
	}
	return radio.LinearToDB(p)
}

// downlinkRSSI is the device's reciprocity proxy: the strongest AP
// query at its current position, through its current fade. (AP dropout
// is a receive-path fault; queries keep flowing, so the proxy ignores
// the per-round liveness mask.)
func (t *Trajectory) downlinkRSSI(i int) float64 {
	dev := &t.net.dep.Devices[i]
	best := dev.APLinks[0].DownlinkRSSIdBm
	for _, l := range dev.APLinks[1:] {
		if l.DownlinkRSSIdBm > best {
			best = l.DownlinkRSSIdBm
		}
	}
	return best + t.fadeDB(i)
}

// markPending opens device i's recovery window at round r unless one
// is already open (an outage has one event and one recovery).
func (t *Trajectory) markPending(i, r int) {
	if t.pendingSince[i] < 0 {
		t.pendingSince[i] = r
	}
}

// startReassoc takes device i off the air for the association
// handshake after the AP dropped (or never had) its record.
func (t *Trajectory) startReassoc(i, r int) {
	t.reassocLeft[i] = t.cfg.ReassocRounds
	t.markPending(i, r)
}

// reassociate completes device i's handshake: the association-time
// power rule runs on today's (faded) downlink, the AP assigns a fresh
// network ID and slot — possibly reshuffling the whole fleet — and the
// new slot map is synced back into the network's encoders.
func (t *Trajectory) reassociate(i int) bool {
	rssi := t.downlinkRSSI(i)
	t.pcs[i].Reset()
	gain := t.pcs[i].AssociateGainDB(rssi)
	dev := &t.net.dep.Devices[i]
	best := dev.BestAP()
	eff := dev.APLinks[best].UplinkSNRdB + gain + t.fadeDB(i)
	asg, err := t.ap.OnAssociationRequest(eff)
	if err != nil {
		// Another association in flight: stay silent one more round.
		t.reassocLeft[i] = 1
		return false
	}
	t.ap.OnAssociationAck(asg.NetworkID)
	t.net.gains[i] = gain
	t.ids[i] = asg.NetworkID
	t.known[i] = true
	t.stats.Reassociations++
	t.syncSlots()
	return true
}

// syncSlots folds the AP's current slot map (which a re-association
// may have reshuffled wholesale) back into the network's per-device
// slots, decode candidates and encoders.
func (t *Trajectory) syncSlots() {
	for j := 0; j < t.nDevices; j++ {
		if !t.known[j] {
			continue
		}
		if rec, ok := t.ap.Record(t.ids[j]); ok && rec.Slot != t.net.slots[j] {
			t.net.setSlot(j, rec.Slot)
		}
	}
}

// Step advances the world one round, runs it, and folds the outcome
// into the trajectory statistics. All adversity evolution is serial
// (device order, then the round), so a trajectory is bit-identical at
// any GOMAXPROCS. An event-free step allocates nothing once Stats
// arenas are warm.
func (t *Trajectory) Step() (MultiRoundStats, error) {
	n := t.net
	r := t.round
	nd := t.nDevices
	cfg := &t.cfg

	// Infrastructure faults for the round.
	nAlive := planDropout(cfg.Seed, uint64(r), cfg.APDropProb, t.adv.apAlive)
	t.stats.APDownRounds += n.nAPs - nAlive

	t.adv.extra = t.adv.extra[:0]
	bp := planBurst(cfg.Seed, uint64(r), cfg.BurstProb, t.roundSamples,
		n.cfg.Params.N(), cfg.BurstMaxSymbols, n.dep.Plan.Width, n.dep.Plan.Height)
	if bp.present {
		t.stats.BurstRounds++
		t.synthesizeBurst(r, bp)
		t.adv.extra = append(t.adv.extra, t.burstTx)
	}

	// World evolution, in device order. The channel keeps moving for
	// sleeping devices too — that is what makes their power-control
	// state stale when they wake.
	for i := 0; i < nd; i++ {
		if t.chrnSt != nil {
			was := t.asleep[i]
			t.asleep[i] = churnStep(&t.chrnSt[i], was, cfg.SleepProb, cfg.WakeProb)
			switch {
			case t.asleep[i] && !was:
				t.stats.SleepEvents++
			case !t.asleep[i] && was:
				t.stats.WakeEvents++
				t.sleepRounds[i] = 0
				t.markPending(i, r)
			}
		}
		if t.faders != nil {
			t.adv.fade[i] = t.faders[i].Step()
		}
		if t.cfos != nil {
			t.adv.cfoHz[i] = t.cfos[i].Step()
		}
		if t.mobSt != nil {
			st := &t.mobSt[i]
			dx := cfg.MobilityStepM * st.NormFloat64()
			dy := cfg.MobilityStepM * st.NormFloat64()
			n.dep.MoveDevice(i, dx, dy)
			dev := &n.dep.Devices[i]
			n.bestDist[i] = dev.APLinks[dev.BestAP()].Dist
		}
	}

	// Protocol step: participation, loss declarations, re-association.
	for i := 0; i < nd; i++ {
		participate := false
		switch {
		case t.asleep[i]:
			t.sleepRounds[i]++
			if t.known[i] && t.sleepRounds[i] > cfg.LostAfterRounds {
				t.ap.OnDeviceLost(t.ids[i])
				t.known[i] = false
				t.stats.DevicesLostByAP++
			}
		case t.reassocLeft[i] > 0:
			t.reassocLeft[i]--
			if t.reassocLeft[i] == 0 && t.reassociate(i) {
				// Handshake done: back on the air this round.
				_, participate = t.pcs[i].Adjust(t.downlinkRSSI(i))
			}
		case !t.known[i]:
			// Woke up after the AP timed it out: full re-association.
			t.startReassoc(i, r)
		default:
			var gain float64
			gain, participate = t.pcs[i].Adjust(t.downlinkRSSI(i))
			if participate {
				n.gains[i] = gain
			} else {
				t.stats.SkippedRounds++
				t.markPending(i, r)
				if t.pcs[i].NeedsReassociation() {
					t.ap.OnDeviceLost(t.ids[i])
					t.known[i] = false
					t.stats.DevicesLostByAP++
					t.startReassoc(i, r)
				}
			}
		}
		t.adv.active[i] = deviceActive(t.asleep[i], t.reassocLeft[i], participate) && t.known[i]
	}

	// Refresh the per-(device, AP) effective SNRs from current geometry
	// and gains. With every process off these writes are identities, so
	// the oracle round is untouched.
	for i := 0; i < nd; i++ {
		snrs := n.rc.snrArena[i*n.nAPs : (i+1)*n.nAPs]
		for a := 0; a < n.nAPs; a++ {
			snrs[a] = n.dep.Devices[i].APLinks[a].UplinkSNRdB + n.gains[i]
		}
	}

	stats, err := n.runRound(nd, &t.adv)
	if err != nil {
		return stats, err
	}

	// Outcomes: close recovery windows on CRC-valid frames, attribute
	// losses, feed measured strengths back to the AP's allocator.
	for i := 0; i < nd; i++ {
		if !t.adv.active[i] {
			continue
		}
		sel := n.rc.sel[i]
		if sel >= 0 && n.rc.res[sel].Devices[i].CRCOK {
			if t.pendingSince[i] >= 0 {
				t.stats.RecoveryLatencies = append(t.stats.RecoveryLatencies, r-t.pendingSince[i])
				t.pendingSince[i] = -1
			}
			t.ap.UpdateSNR(t.ids[i], n.rc.snrArena[i*n.nAPs+sel]+t.fadeDB(i))
			continue
		}
		switch {
		case nAlive == 0:
			t.stats.LostToDropout++
		case bp.present:
			t.stats.LostToInterference++
		case t.fadeDB(i) < -cfg.DeepFadeDB:
			t.stats.LostToFading++
		default:
			t.stats.LostToOther++
		}
	}

	t.stats.Rounds++
	if !t.cfg.NoSeries {
		t.stats.PERPerRound = append(t.stats.PERPerRound, stats.Combined.PER())
		t.stats.FramesOKPerRound = append(t.stats.FramesOKPerRound, stats.Combined.FramesOK)
		t.stats.ActivePerRound = append(t.stats.ActivePerRound, stats.Combined.Devices)
	}
	if stats.Combined.Devices > 0 && stats.Combined.FramesOK == 0 {
		t.stats.AllLostRounds++
	}
	t.round++
	return stats, nil
}

// synthesizeBurst retargets the trajectory's burst arena to this
// round's plan: template waveform (chirp train or wideband noise),
// window, and per-AP received SNRs from the interferer's position
// through the deployment's path-loss model, capped by the front end's
// AGC like every other arrival.
func (t *Trajectory) synthesizeBurst(r int, bp burstPlan) {
	n := t.net
	if bp.chirpKind {
		t.burst.Template = air.ChirpBurstTemplate(t.burstBuf, t.burstMod, bp.shift)
	} else {
		st := adversityStream(t.cfg.Seed, axisBurstWave, uint64(r))
		t.burst.Template = t.burstBuf[:cap(t.burstBuf)]
		air.NoiseBurstTemplate(t.burst.Template, &st)
	}
	t.burst.StartSample = bp.start
	t.burst.DurSamples = bp.dur
	bw := n.dep.BWHz
	if bw == 0 {
		bw = 500e3
	}
	noise := radio.ThermalNoiseDBm(bw, radio.DefaultNoiseFigureDB)
	for a, ap := range n.dep.APs {
		dist := bp.pos.Distance(ap)
		walls := n.dep.Plan.WallsBetween(bp.pos, ap)
		snr := t.cfg.BurstEIRPdBm + n.dep.Budget.APAntennaGainDBi -
			n.dep.Budget.Model.LossDB(dist, walls) - noise
		if agc := n.dep.Budget.AGCCapDB; agc > 0 && snr > agc {
			snr = agc
		}
		t.burstSNRs[a] = snr
	}
}
