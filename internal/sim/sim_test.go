package sim

import (
	"math"
	"testing"

	"netscatter/internal/chirp"
	"netscatter/internal/core"
	"netscatter/internal/deploy"
	"netscatter/internal/dsp"
	"netscatter/internal/simtest"
)

// testDeployment delegates to the shared seed-pinned constructor; the
// sim suites' pinned statistics ride on its seeds staying put.
func testDeployment(t *testing.T, n int, seed int64) *deploy.Deployment {
	t.Helper()
	return simtest.Deployment(t, n, seed)
}

func TestTimingPaperNumbers(t *testing.T) {
	tm := DefaultTiming()
	p := chirp.Default500k9
	// Config 1 round with 40-bit payload+CRC: 0.2 ms query + 8.192 ms
	// preamble + 40.96 ms payload = 49.35 ms -> 207 kbps link rate for
	// 256 devices (the paper's Fig. 18 level).
	round := tm.NetScatterRoundSeconds(p, Config1, 4)
	if math.Abs(round-0.049352) > 1e-5 {
		t.Fatalf("config-1 round = %v s", round)
	}
	link := 256 * 40 / round / 1e3
	if math.Abs(link-207.5) > 1 {
		t.Fatalf("ideal 256-device link rate = %v kbps, want ~207.5", link)
	}
	// Config 2 adds the 1760-bit (11 ms) query.
	round2 := tm.NetScatterRoundSeconds(p, Config2, 4)
	if math.Abs(round2-round-0.0108) > 1e-4 {
		t.Fatalf("config-2 overhead = %v", round2-round)
	}
	// LoRa baseline per-device time ~13 ms (query + preamble + 40 bits
	// at 8.7 kbps).
	per := tm.LoRaDeviceSeconds(p, FixedLoRaBitrate, 4)
	if math.Abs(per-0.01297) > 2e-4 {
		t.Fatalf("per-device TDMA time = %v", per)
	}
}

func TestRateForSNR(t *testing.T) {
	if got := RateForSNR(20, 500e3); got.BitRate != 32e3 {
		t.Fatalf("high SNR rate = %v", got.BitRate)
	}
	low := RateForSNR(-40, 500e3)
	if low.Params.SF != 12 {
		t.Fatalf("out-of-range SNR should fall back to SF12, got SF%d", low.Params.SF)
	}
}

func TestNetworkRoundSmallClean(t *testing.T) {
	dep := testDeployment(t, 16, 1)
	cfg := DefaultConfig()
	cfg.PayloadBytes = 3
	net, err := NewNetwork(cfg, dep, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := net.RunRound(16)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Detected < 15 {
		t.Fatalf("detected %d/16", stats.Detected)
	}
	if stats.FramesOK < 14 {
		t.Fatalf("framesOK %d/16", stats.FramesOK)
	}
	if stats.GoodFraction() < 0.9 {
		t.Fatalf("good fraction %v", stats.GoodFraction())
	}
}

func TestNetworkAutoSkipSpreads(t *testing.T) {
	dep := testDeployment(t, 32, 3)
	cfg := DefaultConfig()
	net, err := NewNetwork(cfg, dep, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 32 devices in 512 bins -> effective SKIP 16.
	if got := net.Book().Skip(); got != 16 {
		t.Fatalf("effective skip = %d, want 16", got)
	}
}

func TestNetworkErrors(t *testing.T) {
	dep := testDeployment(t, 4, 5)
	cfg := DefaultConfig()
	if _, err := NewNetwork(cfg, dep, 10, 1); err == nil {
		t.Error("oversubscribed deployment accepted")
	}
	cfg.Skip = 0
	if _, err := NewNetwork(cfg, dep, 4, 1); err == nil {
		t.Error("zero skip accepted")
	}
	cfg = DefaultConfig()
	net, err := NewNetwork(cfg, dep, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.RunRound(8); err == nil {
		t.Error("round larger than network accepted")
	}
}

func TestPowerControlTightensSpread(t *testing.T) {
	dep := testDeployment(t, 64, 6)
	cfgOn := DefaultConfig()
	netOn, err := NewNetwork(cfgOn, dep, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfgOff := DefaultConfig()
	cfgOff.DisablePowerControl = true
	netOff, err := NewNetwork(cfgOff, dep, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	spread := func(snrs []float64) float64 {
		min, max := dsp.MinMax(snrs)
		return max - min
	}
	on := spread(netOn.EffectiveSNRs(64))
	off := spread(netOff.EffectiveSNRs(64))
	if on >= off {
		t.Fatalf("power control did not tighten the spread: %v vs %v", on, off)
	}
}

func TestPowerAwareAllocationOrdersSlots(t *testing.T) {
	dep := testDeployment(t, 64, 8)
	cfg := DefaultConfig()
	net, err := NewNetwork(cfg, dep, 64, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Device in slot 0 must be the strongest.
	snrs := net.EffectiveSNRs(64)
	var slot0SNR float64
	maxSNR := math.Inf(-1)
	for i := 0; i < 64; i++ {
		if net.SlotOf(i) == 0 {
			slot0SNR = snrs[i]
		}
		if snrs[i] > maxSNR {
			maxSNR = snrs[i]
		}
	}
	if slot0SNR != maxSNR {
		t.Fatalf("slot 0 has %v dB, strongest is %v dB", slot0SNR, maxSNR)
	}
}

func TestSchemeMetricsShapes(t *testing.T) {
	p := chirp.Default500k9
	tm := DefaultTiming()
	// Ideal NetScatter PHY rate is exactly N·976.56.
	m := NetScatterIdealMetrics(256, p, tm, Config1, 4)
	if math.Abs(m.PHYRateBps-256*p.OOKBitRate()) > 1 {
		t.Fatalf("ideal PHY = %v", m.PHYRateBps)
	}
	// Fixed LoRa: flat PHY rate, latency linear in N.
	f64 := LoRaFixedMetrics(64, p, tm, 4)
	f256 := LoRaFixedMetrics(256, p, tm, 4)
	if f64.PHYRateBps != f256.PHYRateBps {
		t.Fatal("fixed PHY rate should not depend on N")
	}
	if math.Abs(f256.LatencySec/f64.LatencySec-4) > 0.01 {
		t.Fatal("fixed latency not linear in N")
	}
	// Rate adaptation beats fixed on latency for a realistic office.
	dep := testDeployment(t, 64, 10)
	ra := LoRaRateAdaptedMetrics(dep.Devices, tm, 4)
	fixed := LoRaFixedMetrics(64, p, tm, 4)
	if ra.LatencySec >= fixed.LatencySec {
		t.Fatalf("rate adaptation slower than fixed: %v vs %v", ra.LatencySec, fixed.LatencySec)
	}
}

func TestNetScatterBeatsBaselinesAtScale(t *testing.T) {
	// The paper's headline: at 256 devices NetScatter's link-layer
	// rate and latency beat both baselines by an order of magnitude.
	dep := testDeployment(t, 256, 11)
	cfg := DefaultConfig()
	cfg.PayloadBytes = 4
	net, err := NewNetwork(cfg, dep, 256, 12)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := net.RunRound(256)
	if err != nil {
		t.Fatal(err)
	}
	p := chirp.Default500k9
	tm := DefaultTiming()
	ns := NetScatterMetrics(stats, p, 4)
	fixed := LoRaFixedMetrics(256, p, tm, 4)
	ra := LoRaRateAdaptedMetrics(dep.Devices, tm, 4)

	if ns.LinkRateBps < 10*fixed.LinkRateBps {
		t.Fatalf("link gain over fixed only %.1fx", ns.LinkRateBps/fixed.LinkRateBps)
	}
	if ns.LinkRateBps < 4*ra.LinkRateBps {
		t.Fatalf("link gain over rate adaptation only %.1fx", ns.LinkRateBps/ra.LinkRateBps)
	}
	if fixed.LatencySec < 30*ns.LatencySec {
		t.Fatalf("latency gain only %.1fx", fixed.LatencySec/ns.LatencySec)
	}
	if stats.GoodFraction() < 0.8 {
		t.Fatalf("good fraction %v at 256 devices", stats.GoodFraction())
	}
}

func TestRoundStatsAccounting(t *testing.T) {
	s := RoundStats{Devices: 4, Detected: 3, TotalBits: 30, BitErrors: 3, ScheduledBits: 40}
	if s.BER() != 0.1 {
		t.Fatalf("BER = %v", s.BER())
	}
	if s.GoodBits() != 27 {
		t.Fatalf("GoodBits = %d", s.GoodBits())
	}
	if s.GoodFraction() != 27.0/40 {
		t.Fatalf("GoodFraction = %v", s.GoodFraction())
	}
	empty := RoundStats{}
	if empty.BER() != 0 || empty.GoodFraction() != 0 {
		t.Fatal("zero-value stats not safe")
	}
}

func TestQueryConfigBits(t *testing.T) {
	if Config1.QueryBits() != 32 || Config2.QueryBits() != 1760 {
		t.Fatal("query sizes diverge from §4.4")
	}
	_ = core.CRCBits
}
