package sim

// Multi-AP deployments: one device fleet heard by k access points.
// Every device transmits once per round; each AP receives the
// superposition over its own links (air.MultiChannel's shared-template
// fan-out), decodes the full candidate set through its own
// ParallelDecoder arenas, and a cross-AP aggregator merges the per-AP
// decodes — best-SNR selection with CRC preference, deduplicated by
// device — into the network-wide round outcome. See DESIGN-multiap.md.

import (
	"fmt"

	"netscatter/internal/air"
	"netscatter/internal/core"
	"netscatter/internal/deploy"
	"netscatter/internal/dsp"
	"netscatter/internal/hw"
	"netscatter/internal/mac"
	"netscatter/internal/radio"
)

// MultiRoundStats is one multi-AP round's statistics: the combined
// (post-aggregation) outcome plus each AP's standalone view of the same
// round. When the network runs with soft combining enabled
// (SetSoftCombining), Soft additionally carries the outcome of
// selecting per device over the per-AP decodes *and* the soft
// (non-coherent power-summed) combined decode — by construction never
// worse than Combined, since the combined decode only adds a candidate
// to the selection pool. With soft combining off, Soft is zero. PerAP
// aliases network-owned storage, valid until the next RunRound call.
type MultiRoundStats struct {
	Combined RoundStats
	Soft     RoundStats
	PerAP    []RoundStats
}

// SoftFramesGained returns how many CRC-valid frames soft spectral
// combining added over frame-level selection combining this round.
func (m MultiRoundStats) SoftFramesGained() int {
	return m.Soft.FramesOK - m.Combined.FramesOK
}

// DiversityFramesGained returns how many CRC-valid frames the
// aggregation added over the best single AP.
func (m MultiRoundStats) DiversityFramesGained() int {
	best := 0
	for _, s := range m.PerAP {
		if s.FramesOK > best {
			best = s.FramesOK
		}
	}
	return m.Combined.FramesOK - best
}

// MultiAPNetwork is a deployed NetScatter network heard by k APs,
// ready to run diversity rounds.
type MultiAPNetwork struct {
	cfg      Config
	dep      *deploy.Deployment
	book     *core.CodeBook
	decoders []*core.ParallelDecoder
	rng      *dsp.Rand
	mch      *air.MultiChannel
	nAPs     int

	// Soft (pre-detection) cross-AP combining: when enabled, each live
	// AP's decode also emits its power spectra into a per-AP arena, the
	// arenas are summed bin-wise in AP order, and combDec decodes the
	// summed spectra as one more "virtual AP" in the selection pool.
	soft    bool
	combDec *core.Decoder

	// per-device state, parallel to dep.Devices
	slots    []int
	gains    []float64
	oscs     []radio.Oscillator
	faders   []*radio.FadingProcess
	encs     []*core.Encoder
	bestDist []float64 // distance to the strongest AP (delay anchor)

	rc multiRoundCtx
}

// multiRoundCtx is the network's reusable round arena, the multi-AP
// analogue of roundCtx: per-device transmissions and frame sections,
// per-AP receive buffers, per-AP decode results and the aggregation
// scratch — carved once at association, refilled in place each round,
// so steady-state multi-AP rounds allocate nothing.
type multiRoundCtx struct {
	txs      []air.MultiTransmission
	shifts   []int
	payloads [][]byte
	bits     [][]byte

	payloadArena []byte
	bitsArena    []byte
	snrArena     []float64 // per-device, per-AP effective SNRs
	sigArena     []complex128
	sigs         [][]complex128

	res   []*core.FrameDecode
	sel   []int
	perAP []RoundStats

	// Soft-combining arenas (carved by SetSoftCombining): one emitted
	// spectra arena per AP, the bin-wise sum, the per-AP results plus
	// the combined decode as a virtual AP, and its selection scratch.
	// softRes keeps the round's combined decode for inspection (tests,
	// degeneracy oracles); like all decode results it aliases decoder
	// arenas, valid until the next round.
	emitArena []float64
	emits     [][]float64
	comb      []float64
	resPlus   []*core.FrameDecode
	softSel   []int
	softRes   *core.FrameDecode

	// Adversity support: saved copies of the per-device fan-out
	// closures (restored after a round that silenced devices) and the
	// scratch transmission list used when a round carries interference
	// bursts on top of the device fleet.
	tmplFns  []func(tmpl []complex128, frac, freqHz float64, gain complex128) []complex128
	rangeFns []func(out []complex128, lo, hi, at int, tmpl []complex128, frac, freqHz float64)
	chTxs    []air.MultiTransmission
}

// NewMultiAPNetwork associates the first maxDevices of a deployment
// with a k-AP infrastructure. If the deployment does not already carry
// a k-AP placement it is placed here (deploy.PlaceAPs); pre-place when
// sharing one deployment across concurrently constructed networks.
// Slot allocation and the association-time power rule run exactly as in
// the single-AP network, but on each device's best-AP link — the
// infrastructure-side controller sees every AP's RSSI and anchors each
// device to its strongest AP.
func NewMultiAPNetwork(cfg Config, dep *deploy.Deployment, nAPs, maxDevices int, seed int64) (*MultiAPNetwork, error) {
	if cfg.Skip < 1 {
		return nil, fmt.Errorf("sim: invalid SKIP %d", cfg.Skip)
	}
	if nAPs < 1 {
		return nil, fmt.Errorf("sim: multi-AP network with %d APs", nAPs)
	}
	if maxDevices > len(dep.Devices) {
		return nil, fmt.Errorf("sim: %d devices requested, deployment has %d", maxDevices, len(dep.Devices))
	}
	if len(dep.APs) != nAPs || (len(dep.Devices) > 0 && len(dep.Devices[0].APLinks) != nAPs) {
		dep.PlaceAPs(nAPs)
	}
	book, err := buildCodeBook(cfg, maxDevices)
	if err != nil {
		return nil, err
	}
	dcfg := resolveDecoderConfig(cfg, book.Skip())
	n := &MultiAPNetwork{
		cfg:      cfg,
		dep:      dep,
		book:     book,
		decoders: make([]*core.ParallelDecoder, nAPs),
		rng:      dsp.NewRand(seed),
		nAPs:     nAPs,
		slots:    make([]int, maxDevices),
		gains:    make([]float64, maxDevices),
		oscs:     make([]radio.Oscillator, maxDevices),
		faders:   make([]*radio.FadingProcess, maxDevices),
		encs:     make([]*core.Encoder, maxDevices),
		bestDist: make([]float64, maxDevices),
	}
	for a := range n.decoders {
		n.decoders[a] = core.NewParallelDecoder(book, dcfg, 0)
	}
	n.mch = air.NewMultiChannel(cfg.Params, nAPs, n.rng)

	// Association-time power rule on the best-AP downlink, then
	// allocation on the resulting best-AP received strengths.
	effSNR := make([]float64, maxDevices)
	for i := 0; i < maxDevices; i++ {
		dev := &dep.Devices[i]
		best := dev.BestAP()
		n.bestDist[i] = dev.APLinks[best].Dist
		// The strongest heard query drives the device's power rule; it
		// may come from a different AP than the best-uplink anchor.
		bestDown := dev.APLinks[0].DownlinkRSSIdBm
		for _, l := range dev.APLinks[1:] {
			if l.DownlinkRSSIdBm > bestDown {
				bestDown = l.DownlinkRSSIdBm
			}
		}
		gain := 0.0
		if !cfg.DisablePowerControl {
			gain = mac.NewPowerController().AssociateGainDB(bestDown)
		}
		n.gains[i] = gain
		effSNR[i] = dev.APLinks[best].UplinkSNRdB + gain
		n.oscs[i] = radio.NewBackscatterOscillator(n.rng, 20, 50)
		if cfg.Fading {
			n.faders[i] = radio.NewFadingProcess(10, 0.97, n.rng.Fork())
		}
	}

	if cfg.PowerAwareAllocation {
		alloc := mac.NewDataOnlyAllocator(book)
		ids := make([]uint8, maxDevices)
		for i := range ids {
			ids[i] = uint8(i)
		}
		assign := alloc.AssignAll(ids, effSNR)
		for i := range ids {
			n.slots[i] = assign[uint8(i)]
		}
	} else {
		perm := n.rng.Perm(book.Slots())
		for i := 0; i < maxDevices; i++ {
			n.slots[i] = perm[i]
		}
	}
	n.initRoundCtx(maxDevices)
	return n, nil
}

// initRoundCtx carves the reusable multi-AP round arena and builds the
// per-device encoders and fan-out closures once. The per-AP effective
// SNR slices are static after association (deployment geometry plus the
// device's power setting), so RunRound only rewrites delays, offsets,
// fades and the frame contents.
func (n *MultiAPNetwork) initRoundCtx(maxDevices int) {
	payloadBytes := n.cfg.PayloadBytes
	payloadBits := payloadBytes*8 + core.CRCBits
	frameSymbols := core.PreambleSymbols + payloadBits

	rc := &n.rc
	rc.txs = make([]air.MultiTransmission, maxDevices)
	rc.shifts = make([]int, maxDevices)
	rc.payloads = make([][]byte, maxDevices)
	rc.bits = make([][]byte, maxDevices)
	rc.payloadArena = make([]byte, maxDevices*payloadBytes)
	rc.bitsArena = make([]byte, maxDevices*payloadBits)
	rc.snrArena = make([]float64, maxDevices*n.nAPs)
	length := n.mch.FrameLength(frameSymbols, 2)
	rc.sigArena = make([]complex128, n.nAPs*length)
	rc.sigs = make([][]complex128, n.nAPs)
	for a := 0; a < n.nAPs; a++ {
		rc.sigs[a] = rc.sigArena[a*length : (a+1)*length]
	}
	rc.res = make([]*core.FrameDecode, n.nAPs)
	rc.sel = make([]int, maxDevices)
	rc.perAP = make([]RoundStats, n.nAPs)
	rc.tmplFns = make([]func(tmpl []complex128, frac, freqHz float64, gain complex128) []complex128, maxDevices)
	rc.rangeFns = make([]func(out []complex128, lo, hi, at int, tmpl []complex128, frac, freqHz float64), maxDevices)
	rc.chTxs = make([]air.MultiTransmission, 0, maxDevices+maxBurstsPerRound)
	for i := 0; i < maxDevices; i++ {
		rc.shifts[i] = n.book.ShiftOfSlot(n.slots[i])
		n.encs[i] = core.NewEncoder(n.cfg.Params, rc.shifts[i])
		rc.payloads[i] = rc.payloadArena[i*payloadBytes : (i+1)*payloadBytes]
		rc.bits[i] = rc.bitsArena[i*payloadBits : (i+1)*payloadBits]
		snrs := rc.snrArena[i*n.nAPs : (i+1)*n.nAPs]
		for a := 0; a < n.nAPs; a++ {
			snrs[a] = n.dep.Devices[i].APLinks[a].UplinkSNRdB + n.gains[i]
		}
		rc.txs[i].SNRdB = snrs
		rc.txs[i].MixedTmpl = func(tmpl []complex128, frac, freqHz float64, gain complex128) []complex128 {
			return n.encs[i].FrameBitsWaveformMixedTemplates(tmpl, n.rc.bits[i], frac, freqHz, gain)
		}
		rc.txs[i].MixedAddRange = func(out []complex128, lo, hi, at int, tmpl []complex128, frac, freqHz float64) {
			n.encs[i].FrameBitsWaveformMixedAddRange(out, lo, hi, at, tmpl, n.rc.bits[i], frac, freqHz)
		}
		rc.tmplFns[i] = rc.txs[i].MixedTmpl
		rc.rangeFns[i] = rc.txs[i].MixedAddRange
	}
}

// setSlot re-points device i at a new slot: slot table, decode
// candidate shift and a fresh encoder. The fan-out closures look
// n.encs[i] up per call, so they pick the replacement up on the next
// round — this is how a trajectory applies a re-association's new
// assignment.
func (n *MultiAPNetwork) setSlot(i, slot int) {
	n.slots[i] = slot
	n.rc.shifts[i] = n.book.ShiftOfSlot(slot)
	n.encs[i] = core.NewEncoder(n.cfg.Params, n.rc.shifts[i])
}

// SetSoftCombining turns the soft (non-coherent power) cross-AP
// combining path on or off for subsequent rounds. Enabling it carves
// the per-AP emit arenas and the combined-spectra decoder on first use;
// after that warm-up the soft round stays steady-state allocation-free,
// like the rest of the round path. The combining work is strictly
// additive: per-AP decodes, selection aggregation and every random draw
// are untouched, so a network's Combined/PerAP stats are bit-identical
// with the flag on or off.
func (n *MultiAPNetwork) SetSoftCombining(on bool) {
	n.soft = on
	if !on || n.combDec != nil {
		return
	}
	n.combDec = core.NewDecoder(n.book, resolveDecoderConfig(n.cfg, n.book.Skip()))
	payloadBits := n.cfg.PayloadBytes*8 + core.CRCBits
	emitLen := n.combDec.EmitLen(payloadBits)
	rc := &n.rc
	rc.emitArena = make([]float64, n.nAPs*emitLen)
	rc.emits = make([][]float64, n.nAPs)
	for a := 0; a < n.nAPs; a++ {
		rc.emits[a] = rc.emitArena[a*emitLen : (a+1)*emitLen]
	}
	rc.comb = make([]float64, emitLen)
	rc.resPlus = make([]*core.FrameDecode, 0, n.nAPs+1)
	rc.softSel = make([]int, len(rc.sel))
}

// SoftCombining reports whether the soft combining path is enabled.
func (n *MultiAPNetwork) SoftCombining() bool { return n.soft }

// Book exposes the code book.
func (n *MultiAPNetwork) Book() *core.CodeBook { return n.book }

// APs returns the infrastructure's AP count.
func (n *MultiAPNetwork) APs() int { return n.nAPs }

// RunRound executes one concurrent round heard by every AP and returns
// the combined and per-AP statistics.
func (n *MultiAPNetwork) RunRound(nDevices int) (MultiRoundStats, error) {
	return n.runRound(nDevices, nil)
}

// advRound is one round's fault-injection state, filled by a
// Trajectory before each runRound call. A nil advRound — or one whose
// masks are all-permissive and whose overlays are zero — leaves the
// round path exactly as RunRound has always run it: every per-device
// draw below happens in the same order regardless of adversity, so an
// all-off trajectory is bit-identical to plain RunRound calls (the
// retained oracle) and a churn event on device i never perturbs the
// draws of device j.
type advRound struct {
	// active[i] false silences device i this round (asleep, skipping, or
	// mid-re-association): its closures are detached so the channel adds
	// no samples and draws no carrier phases for it, and it is excluded
	// from the scheduled-device statistics. nil means all active.
	active []bool
	// fade[i], when nonzero, multiplies onto device i's channel gain —
	// the trajectory's evolved correlated fade.
	fade []complex128
	// cfoHz[i] adds onto device i's oscillator offset — the trajectory's
	// CFO random-walk drift.
	cfoHz []float64
	// extra carries interference-burst transmissions appended after the
	// device fleet (so device carrier-phase draws are unperturbed).
	extra []air.MultiTransmission
	// apAlive[a] false drops AP a this round: its buffer still fills
	// (the channel's draw sequence is AP-count-shaped, not mask-shaped)
	// but it decodes nothing and contributes nothing to aggregation.
	// nil means all alive.
	apAlive []bool
}

// maxBurstsPerRound bounds the interference transmissions a single
// round may carry (the burst scheduler draws at most one event per
// round; the chTxs arena is sized for it).
const maxBurstsPerRound = 1

// runRound executes one round with optional fault injection. With adv
// == nil this is exactly the historical RunRound path.
func (n *MultiAPNetwork) runRound(nDevices int, adv *advRound) (MultiRoundStats, error) {
	if nDevices > len(n.slots) {
		return MultiRoundStats{}, fmt.Errorf("sim: round with %d devices, network has %d", nDevices, len(n.slots))
	}
	p := n.cfg.Params
	payloadBits := n.cfg.PayloadBytes*8 + core.CRCBits

	// Refill the round arena in place, drawing per device: payload
	// bytes, fade, delay, oscillator — the single-AP order — with the
	// per-(device, AP) carrier phases drawn later inside the channel.
	// Silenced devices still consume their draws (payload, fade, delay,
	// offset) so adversity never shifts another device's randomness.
	rc := &n.rc
	txs := rc.txs[:nDevices]
	for i := 0; i < nDevices; i++ {
		n.rng.FillBytes(rc.payloads[i])
		core.FrameBitsInto(rc.bits[i], rc.payloads[i])
		var fade complex128
		if n.faders[i] != nil {
			fade = n.faders[i].Step()
		}
		txs[i].DelaySec = n.cfg.DelayModel.Draw(n.rng) +
			hw.PropagationDelaySec(n.bestDist[i])
		txs[i].FreqOffsetHz = n.oscs[i].PacketOffsetHz(n.rng)
		txs[i].FadeGain = fade
	}

	scheduled := nDevices
	silenced := false
	if adv != nil {
		for i := 0; i < nDevices; i++ {
			if adv.active != nil && !adv.active[i] {
				// Detach the closures: a non-contributing transmission
				// adds no samples and draws no carrier phases.
				txs[i].MixedTmpl, txs[i].MixedAddRange = nil, nil
				silenced = true
				scheduled--
				continue
			}
			if adv.fade != nil && adv.fade[i] != 0 {
				if txs[i].FadeGain == 0 {
					txs[i].FadeGain = adv.fade[i]
				} else {
					txs[i].FadeGain *= adv.fade[i]
				}
			}
			if adv.cfoHz != nil {
				txs[i].FreqOffsetHz += adv.cfoHz[i]
			}
		}
	}

	chTxs := txs
	if adv != nil && len(adv.extra) > 0 {
		// Bursts ride after the fleet so per-(device, AP) phase draws
		// stay in fleet order; the burst's own phases draw last.
		rc.chTxs = append(rc.chTxs[:0], txs...)
		rc.chTxs = append(rc.chTxs, adv.extra...)
		chTxs = rc.chTxs
	}
	n.mch.ReceiveInto(rc.sigs, chTxs)
	if silenced {
		for i := 0; i < nDevices; i++ {
			if !adv.active[i] {
				txs[i].MixedTmpl = rc.tmplFns[i]
				txs[i].MixedAddRange = rc.rangeFns[i]
			}
		}
	}

	for a := 0; a < n.nAPs; a++ {
		if adv != nil && adv.apAlive != nil && !adv.apAlive[a] {
			rc.res[a] = nil // a dead AP contributes nothing
			continue
		}
		var res *core.FrameDecode
		var err error
		if n.soft {
			res, err = n.decoders[a].DecodeFrameEmit(rc.sigs[a], 0, rc.shifts[:nDevices], payloadBits, rc.emits[a])
		} else {
			res, err = n.decoders[a].DecodeFrame(rc.sigs[a], 0, rc.shifts[:nDevices], payloadBits)
		}
		if err != nil {
			return MultiRoundStats{}, err
		}
		rc.res[a] = res
	}

	// Soft combining: sum the live APs' emitted power spectra bin-wise
	// (serial, in AP order — bit-identical at any GOMAXPROCS) and decode
	// the sum as one more candidate decode. Dead APs' arenas hold stale
	// spectra and are excluded, exactly like their frame decodes.
	rc.softRes = nil
	if n.soft {
		nSummed := 0
		for a := 0; a < n.nAPs; a++ {
			if rc.res[a] == nil {
				continue
			}
			if nSummed == 0 {
				copy(rc.comb, rc.emits[a])
			} else {
				dsp.AddFloat64(rc.comb, rc.emits[a])
			}
			nSummed++
		}
		if nSummed > 0 {
			res, err := n.combDec.DecodeFrameSpectra(rc.comb, nSummed, rc.shifts[:nDevices], payloadBits)
			if err != nil {
				return MultiRoundStats{}, err
			}
			rc.softRes = res
		}
	}

	base := RoundStats{
		Devices:       scheduled,
		ScheduledBits: scheduled * payloadBits,
		RoundSecs:     n.cfg.Timing.NetScatterRoundSeconds(p, n.cfg.Query, n.cfg.PayloadBytes),
		PayloadSec:    float64(payloadBits) * p.SymbolPeriod(),
	}
	for a := 0; a < n.nAPs; a++ {
		st := &rc.perAP[a]
		*st = base
		if rc.res[a] == nil {
			continue
		}
		for i := range rc.res[a].Devices {
			if adv != nil && adv.active != nil && !adv.active[i] {
				continue // spurious detection of a silent device
			}
			tallyDevice(st, &rc.res[a].Devices[i], rc.bits[i], rc.payloads[i], payloadBits)
		}
	}

	// With every AP dead all res entries are nil, every sel lands at -1,
	// and the combined stats stay at base — a well-formed all-lost round.
	AggregateDecodes(rc.sel[:nDevices], rc.res)
	combined := base
	for i, a := range rc.sel[:nDevices] {
		if a < 0 {
			continue
		}
		if adv != nil && adv.active != nil && !adv.active[i] {
			continue
		}
		tallyDevice(&combined, &rc.res[a].Devices[i], rc.bits[i], rc.payloads[i], payloadBits)
	}

	// Soft outcome: the same CRC-preferring selection, over the per-AP
	// decodes plus the combined-spectra decode as a virtual AP at index
	// nAPs. Because selection only gains a candidate, the soft stats are
	// structurally no worse than the selection-combining stats; the
	// diversity gain is every device only the *sum* of the APs can hear.
	var soft RoundStats
	if n.soft {
		soft = base
		rc.resPlus = append(rc.resPlus[:0], rc.res...)
		rc.resPlus = append(rc.resPlus, rc.softRes)
		AggregateDecodes(rc.softSel[:nDevices], rc.resPlus)
		for i, a := range rc.softSel[:nDevices] {
			if a < 0 {
				continue
			}
			if adv != nil && adv.active != nil && !adv.active[i] {
				continue
			}
			tallyDevice(&soft, &rc.resPlus[a].Devices[i], rc.bits[i], rc.payloads[i], payloadBits)
		}
	}
	return MultiRoundStats{Combined: combined, Soft: soft, PerAP: rc.perAP}, nil
}

// BestDecode returns the index of the AP whose decode of candidate dev
// should represent it network-wide: CRC-valid decodes outrank
// detected-only ones, stronger observed preamble power (MeanPeakPower,
// the receiver's SNR proxy) breaks ties within a class, and the lower
// AP index breaks exact power ties so the choice is deterministic.
// Returns -1 when no AP detected the device. APs whose result is nil
// or too short (an AP that decoded a smaller candidate set) contribute
// nothing.
func BestDecode(perAP []*core.FrameDecode, dev int) int {
	best := -1
	for a, res := range perAP {
		if res == nil || dev >= len(res.Devices) {
			continue
		}
		d := &res.Devices[dev]
		if !d.Detected {
			continue
		}
		if best < 0 {
			best = a
			continue
		}
		b := &perAP[best].Devices[dev]
		if d.CRCOK != b.CRCOK {
			if d.CRCOK {
				best = a
			}
			continue
		}
		if d.MeanPeakPower > b.MeanPeakPower {
			best = a
		}
	}
	return best
}

// AggregateDecodes merges per-AP decodes of one candidate set: sel[i]
// receives BestDecode(perAP, i) — the representing AP for candidate i,
// -1 if nobody heard it. Every device decoded by at least one AP is
// represented exactly once (no drops, no double counting; the fuzz
// target pins both). Returns the number of represented devices.
func AggregateDecodes(sel []int, perAP []*core.FrameDecode) int {
	detected := 0
	for i := range sel {
		sel[i] = BestDecode(perAP, i)
		if sel[i] >= 0 {
			detected++
		}
	}
	return detected
}
