package sim

import (
	"testing"

	"netscatter/internal/core"
)

// decodeSetFromBytes deterministically expands raw fuzz bytes into a
// per-AP decode set: nAPs ∈ [1, 5] frame decodes over nDev ∈ [1, 16]
// candidates, each device flag byte encoding detection, CRC validity
// and a small power level. The encoding deliberately reaches the
// aggregator's corner cases: empty APs (no detections), duplicates
// (several APs detecting one device), conflicts (CRC-valid decodes at
// different power), and nil AP entries.
func decodeSetFromBytes(data []byte) (perAP []*core.FrameDecode, nDev int) {
	if len(data) < 2 {
		return nil, 0
	}
	nAPs := 1 + int(data[0]%5)
	nDev = 1 + int(data[1]%16)
	data = data[2:]
	perAP = make([]*core.FrameDecode, nAPs)
	for a := 0; a < nAPs; a++ {
		if a*nDev < len(data) && data[a*nDev]%17 == 0 {
			continue // a nil AP: decoder error or absent receiver
		}
		res := &core.FrameDecode{Devices: make([]core.DeviceDecode, nDev)}
		for i := 0; i < nDev; i++ {
			var b byte
			if idx := a*nDev + i; idx < len(data) {
				b = data[idx]
			}
			d := &res.Devices[i]
			d.Shift = i
			d.Detected = b&1 != 0
			d.CRCOK = d.Detected && b&2 != 0
			d.MeanPeakPower = float64(b >> 2)
		}
		perAP[a] = res
	}
	return perAP, nDev
}

// FuzzAggregateDecodes pins the cross-AP aggregator's invariants over
// arbitrary per-AP decode sets: a device decoded by any AP is never
// dropped, a device decoded by several APs is represented exactly once
// (no double counting), the chosen AP really detected the device,
// CRC-valid decodes always outrank detected-only ones, and within a
// class the choice has maximal observed power. Seeds cover the shapes
// called out in the contract: empty APs, duplicates, CRC conflicts.
func FuzzAggregateDecodes(f *testing.F) {
	f.Add([]byte{0, 0})                                  // 1 AP, 1 device, nothing detected
	f.Add([]byte{1, 2, 1, 1, 3, 3})                      // duplicates across 2 APs
	f.Add([]byte{2, 1, 3, 7, 255})                       // CRC conflict at different powers
	f.Add([]byte{4, 3, 0, 0, 0, 1, 1, 1, 3, 3, 3})       // an empty AP among detecting ones
	f.Add([]byte{3, 15, 5, 1, 2, 3, 4, 5, 6, 7, 8, 9})   // wide candidate set, sparse data
	f.Add([]byte{4, 7, 17, 34, 51, 68, 85, 102, 1, 255}) // nil-AP marker bytes

	f.Fuzz(func(t *testing.T, data []byte) {
		perAP, nDev := decodeSetFromBytes(data)
		if nDev == 0 {
			return
		}
		sel := make([]int, nDev)
		got := AggregateDecodes(sel, perAP)

		represented := 0
		for i := 0; i < nDev; i++ {
			detectedBy := 0
			anyCRC := false
			bestPower := -1.0
			bestCRCPower := -1.0
			for _, res := range perAP {
				if res == nil {
					continue
				}
				d := &res.Devices[i]
				if !d.Detected {
					continue
				}
				detectedBy++
				if d.MeanPeakPower > bestPower {
					bestPower = d.MeanPeakPower
				}
				if d.CRCOK {
					anyCRC = true
					if d.MeanPeakPower > bestCRCPower {
						bestCRCPower = d.MeanPeakPower
					}
				}
			}
			switch {
			case detectedBy == 0:
				if sel[i] != -1 {
					t.Fatalf("device %d detected nowhere but represented by AP %d", i, sel[i])
				}
			default:
				// Never dropped, represented exactly once (sel holds a
				// single AP per device by construction — the property is
				// that it is valid).
				a := sel[i]
				if a < 0 || a >= len(perAP) || perAP[a] == nil {
					t.Fatalf("device %d (detected by %d APs) got invalid selection %d", i, detectedBy, a)
				}
				d := &perAP[a].Devices[i]
				if !d.Detected {
					t.Fatalf("device %d represented by AP %d which did not detect it", i, a)
				}
				if anyCRC && !d.CRCOK {
					t.Fatalf("device %d has a CRC-valid decode but selection (AP %d) is CRC-invalid", i, a)
				}
				if anyCRC && d.MeanPeakPower != bestCRCPower {
					t.Fatalf("device %d: chose CRC-valid power %v, best is %v", i, d.MeanPeakPower, bestCRCPower)
				}
				if !anyCRC && d.MeanPeakPower != bestPower {
					t.Fatalf("device %d: chose power %v, best is %v", i, d.MeanPeakPower, bestPower)
				}
				represented++
			}
		}
		if got != represented {
			t.Fatalf("AggregateDecodes reported %d represented devices, invariant count is %d", got, represented)
		}
	})
}
