package sim

// Deterministic adversity scheduling: every fault-injection decision a
// trajectory makes — who sleeps, when interference fires, which APs
// drop — is a pure function of (trajectory seed, axis, index) through
// dsp.StreamAt, never of the network's round RNG. Two consequences the
// tests and fuzz target pin: a multi-round trajectory is
// bit-reproducible from its seed alone (the same plans re-derive
// identically), and adversity state never perturbs the round path's
// own draw sequence — turning every fault off leaves RunRound's
// randomness untouched (the correlation-0 oracle).
//
// Key derivation: stream index = axis<<56 | idx, where idx is the
// device index for per-device axes (fade, CFO, mobility, churn) and
// the round number for per-round axes (burst, dropout). The axis tag
// lives in the top byte so device and round indices can never collide
// across axes. See DESIGN-trajectory.md.

import (
	"netscatter/internal/deploy"
	"netscatter/internal/dsp"
)

const (
	axisFade uint64 = 1 + iota
	axisCFO
	axisMobility
	axisChurn
	axisBurst
	axisBurstWave
	axisDropout
)

// adversityStream derives the stream for one (axis, index) pair of a
// trajectory seed.
func adversityStream(seed int64, axis, idx uint64) dsp.Stream {
	return dsp.StreamAt(seed, axis<<56|idx)
}

// churnStep advances one device's duty-cycle state by one round,
// drawing exactly one uniform variate regardless of state: asleep
// devices wake with probability wakeProb, awake devices sleep with
// probability sleepProb. Returns the new asleep state.
func churnStep(st *dsp.Stream, asleep bool, sleepProb, wakeProb float64) bool {
	u := st.Float64()
	if asleep {
		return u >= wakeProb
	}
	return u < sleepProb
}

// deviceActive is the single predicate deciding whether a device
// transmits this round: it must be awake, not mid-re-association, and
// its power controller must have elected to participate. The fuzz
// target pins the structural invariant that an asleep device can never
// be active.
func deviceActive(asleep bool, reassocLeft int, participate bool) bool {
	return !asleep && reassocLeft == 0 && participate
}

// burstPlan is one round's interference decision.
type burstPlan struct {
	present bool
	// chirpKind selects the LoRa-shaped upchirp-train interferer;
	// otherwise the burst is wideband complex-Gaussian (WiFi-shaped).
	chirpKind bool
	// shift is the chirp interferer's cyclic shift in [0, symbolSamples).
	shift int
	// start, dur delimit the burst window in samples:
	// 0 ≤ start, start+dur ≤ roundSamples (fuzz-enforced).
	start, dur int
	// pos is the interferer's position on the floor (drives per-AP
	// received strengths through the path-loss model).
	pos deploy.Point
}

// planBurst draws round `round`'s interference plan: with probability
// prob a burst of 1..maxSymbols symbol periods at a uniform start
// inside the round's sample window, from a transmitter placed
// uniformly on the floor. Pure in (seed, round) — re-deriving the plan
// returns identical values.
func planBurst(seed int64, round uint64, prob float64, roundSamples, symbolSamples, maxSymbols int, w, h float64) burstPlan {
	var b burstPlan
	if prob <= 0 || roundSamples <= 0 || symbolSamples <= 0 || maxSymbols <= 0 {
		return b
	}
	st := adversityStream(seed, axisBurst, round)
	if st.Float64() >= prob {
		return b
	}
	b.present = true
	b.chirpKind = st.Uint64()&1 == 0
	b.shift = int(st.Uint64() % uint64(symbolSamples))
	b.dur = (1 + int(st.Uint64()%uint64(maxSymbols))) * symbolSamples
	if b.dur > roundSamples {
		b.dur = roundSamples
	}
	b.start = int(st.Uint64() % uint64(roundSamples-b.dur+1))
	b.pos = deploy.Point{X: st.Float64() * w, Y: st.Float64() * h}
	return b
}

// planDropout fills alive with round `round`'s AP liveness mask (each
// AP independently dead with probability prob) and returns the number
// of surviving APs. Pure in (seed, round); a zero probability leaves
// every AP alive without drawing.
func planDropout(seed int64, round uint64, prob float64, alive []bool) int {
	if prob <= 0 {
		for a := range alive {
			alive[a] = true
		}
		return len(alive)
	}
	st := adversityStream(seed, axisDropout, round)
	n := 0
	for a := range alive {
		alive[a] = st.Float64() >= prob
		if alive[a] {
			n++
		}
	}
	return n
}
