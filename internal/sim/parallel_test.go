package sim

import (
	"runtime"
	"sync"
	"testing"

	"netscatter/internal/pool"
	"netscatter/internal/simtest"
)

// TestConcurrentRunRoundRace drives several independent networks'
// RunRound simultaneously — each round internally fans waveform
// synthesis and the decode pipeline across the shared pool — so `go
// test -race` sweeps the whole parallel receive path for data races.
func TestConcurrentRunRoundRace(t *testing.T) {
	dep := simtest.Deployment(t, 16, 3)
	cfg := DefaultConfig()
	cfg.PayloadBytes = 2

	const nets = 4
	var wg sync.WaitGroup
	errs := make([]error, nets)
	stats := make([]RoundStats, nets)
	for g := 0; g < nets; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			net, err := NewNetwork(cfg, dep, 16, int64(g)+1)
			if err != nil {
				errs[g] = err
				return
			}
			for round := 0; round < 2; round++ {
				s, err := net.RunRound(16)
				if err != nil {
					errs[g] = err
					return
				}
				stats[g] = s
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("network %d: %v", g, err)
		}
	}
	for g, s := range stats {
		if s.Devices != 16 {
			t.Fatalf("network %d ran %d devices", g, s.Devices)
		}
	}
}

// TestRunRoundBitIdenticalAcrossGOMAXPROCSRace pins the tiled channel
// path's hard determinism contract at the sample level: for a fixed
// seed the composite received stream of every round — signal
// accumulation and tile-stream noise — is bit-identical across
// GOMAXPROCS ∈ {1, 2, 4}. Run under -race in CI, this simultaneously
// sweeps the template fan-out and tile workers for data races.
func TestRunRoundBitIdenticalAcrossGOMAXPROCSRace(t *testing.T) {
	const nDev = 24
	const rounds = 3

	run := func(procs int) ([][]complex128, []RoundStats) {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		dep := simtest.Deployment(t, nDev, 17)
		cfg := DefaultConfig()
		cfg.PayloadBytes = 3
		net, err := NewNetwork(cfg, dep, nDev, 99)
		if err != nil {
			t.Fatal(err)
		}
		var sigs [][]complex128
		var stats []RoundStats
		for r := 0; r < rounds; r++ {
			s, err := net.RunRound(nDev)
			if err != nil {
				t.Fatal(err)
			}
			stats = append(stats, s)
			sigs = append(sigs, append([]complex128(nil), net.rc.sig...))
		}
		return sigs, stats
	}

	wantSigs, wantStats := run(1)
	for _, procs := range []int{2, 4} {
		gotSigs, gotStats := run(procs)
		for r := range wantStats {
			if gotStats[r] != wantStats[r] {
				t.Fatalf("GOMAXPROCS=%d round %d stats diverge: %+v vs %+v",
					procs, r, gotStats[r], wantStats[r])
			}
			for i := range wantSigs[r] {
				if gotSigs[r][i] != wantSigs[r][i] {
					t.Fatalf("GOMAXPROCS=%d round %d: received stream diverges at sample %d",
						procs, r, i)
				}
			}
		}
	}
}

// TestRunRoundDeterministicAcrossGOMAXPROCS pins the parallelization
// contract: a seeded round produces identical statistics whether the
// pool has one slot or many.
func TestRunRoundDeterministicAcrossGOMAXPROCS(t *testing.T) {
	run := func() RoundStats {
		dep := simtest.Deployment(t, 24, 17)
		cfg := DefaultConfig()
		cfg.PayloadBytes = 3
		net, err := NewNetwork(cfg, dep, 24, 99)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := net.RunRound(24)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}

	prev := runtime.GOMAXPROCS(1)
	serial := run()
	runtime.GOMAXPROCS(prev)
	if pool.Size() != runtime.GOMAXPROCS(0) {
		t.Fatalf("pool.Size() = %d, GOMAXPROCS = %d", pool.Size(), runtime.GOMAXPROCS(0))
	}
	parallel := run()
	if serial != parallel {
		t.Fatalf("round stats differ across GOMAXPROCS:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}
