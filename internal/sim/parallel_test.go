package sim

import (
	"runtime"
	"sync"
	"testing"

	"netscatter/internal/deploy"
	"netscatter/internal/dsp"
	"netscatter/internal/pool"
	"netscatter/internal/radio"
)

// TestConcurrentRunRoundRace drives several independent networks'
// RunRound simultaneously — each round internally fans waveform
// synthesis and the decode pipeline across the shared pool — so `go
// test -race` sweeps the whole parallel receive path for data races.
func TestConcurrentRunRoundRace(t *testing.T) {
	rng := dsp.NewRand(3)
	dep := deploy.Generate(deploy.DefaultOffice, radio.DefaultLinkBudget, 16, 500e3, rng)
	cfg := DefaultConfig()
	cfg.PayloadBytes = 2

	const nets = 4
	var wg sync.WaitGroup
	errs := make([]error, nets)
	stats := make([]RoundStats, nets)
	for g := 0; g < nets; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			net, err := NewNetwork(cfg, dep, 16, int64(g)+1)
			if err != nil {
				errs[g] = err
				return
			}
			for round := 0; round < 2; round++ {
				s, err := net.RunRound(16)
				if err != nil {
					errs[g] = err
					return
				}
				stats[g] = s
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("network %d: %v", g, err)
		}
	}
	for g, s := range stats {
		if s.Devices != 16 {
			t.Fatalf("network %d ran %d devices", g, s.Devices)
		}
	}
}

// TestRunRoundDeterministicAcrossGOMAXPROCS pins the parallelization
// contract: a seeded round produces identical statistics whether the
// pool has one slot or many.
func TestRunRoundDeterministicAcrossGOMAXPROCS(t *testing.T) {
	run := func() RoundStats {
		rng := dsp.NewRand(17)
		dep := deploy.Generate(deploy.DefaultOffice, radio.DefaultLinkBudget, 24, 500e3, rng)
		cfg := DefaultConfig()
		cfg.PayloadBytes = 3
		net, err := NewNetwork(cfg, dep, 24, 99)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := net.RunRound(24)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}

	prev := runtime.GOMAXPROCS(1)
	serial := run()
	runtime.GOMAXPROCS(prev)
	if pool.Size() != runtime.GOMAXPROCS(0) {
		t.Fatalf("pool.Size() = %d, GOMAXPROCS = %d", pool.Size(), runtime.GOMAXPROCS(0))
	}
	parallel := run()
	if serial != parallel {
		t.Fatalf("round stats differ across GOMAXPROCS:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}
