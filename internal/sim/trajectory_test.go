package sim

import (
	"reflect"
	"runtime"
	"testing"
)

// TestTrajectoryOracleBitIdenticalToRunRound pins the retained oracle:
// with every adversity knob at zero, stepping a trajectory is
// bit-identical to calling RunRound on an identically-seeded network —
// not just statistics, the received waveforms themselves. The
// trajectory genuinely exercises the runRound(adv) path (all-active
// masks, all-alive APs, identity SNR rewrites), so this holds only if
// the adversity plumbing is a true no-op when idle.
func TestTrajectoryOracleBitIdenticalToRunRound(t *testing.T) {
	for _, k := range []int{1, 2} {
		ref := testMultiAPNetwork(t, 12, k, 21)
		sub := testMultiAPNetwork(t, 12, k, 21)
		tr, err := NewTrajectory(sub, TrajectoryConfig{Rounds: 4, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 4; r++ {
			want, err := ref.RunRound(12)
			if err != nil {
				t.Fatal(err)
			}
			got, err := tr.Step()
			if err != nil {
				t.Fatal(err)
			}
			if got.Combined != want.Combined || !reflect.DeepEqual(got.PerAP, want.PerAP) {
				t.Fatalf("k=%d round %d stats diverge:\n got %+v\nwant %+v", k, r, got, want)
			}
			if !reflect.DeepEqual(sub.rc.sigArena, ref.rc.sigArena) {
				t.Fatalf("k=%d round %d received waveforms diverge", k, r)
			}
		}
	}
}

// fullAdversityConfig turns every process on at once.
func fullAdversityConfig(rounds int) TrajectoryConfig {
	return TrajectoryConfig{
		Rounds:        rounds,
		Seed:          7,
		Correlation:   0.95,
		CFODriftHz:    1,
		MobilityStepM: 0.05,
		SleepProb:     0.2,
		WakeProb:      0.5,
		BurstProb:     0.3,
		APDropProb:    0.2,
	}
}

// TestTrajectoryBitReproducibleAcrossGOMAXPROCS pins the tentpole's
// determinism contract: a full-adversity trajectory — fading drift,
// CFO walks, mobility, churn, bursts and AP dropout all active — is
// bit-reproducible from its seed at any GOMAXPROCS. All evolution is
// serial; only the round's synthesis/decode fan out, and those were
// already schedule-invariant.
func TestTrajectoryBitReproducibleAcrossGOMAXPROCS(t *testing.T) {
	const rounds = 6
	type out struct {
		per   []MultiRoundStats
		stats TrajectoryStats
	}
	run := func(procs int) out {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		net := testMultiAPNetwork(t, 16, 2, 31)
		tr, err := NewTrajectory(net, fullAdversityConfig(rounds))
		if err != nil {
			t.Fatal(err)
		}
		var o out
		for r := 0; r < rounds; r++ {
			st, err := tr.Step()
			if err != nil {
				t.Fatal(err)
			}
			o.per = append(o.per, MultiRoundStats{
				Combined: st.Combined,
				PerAP:    append([]RoundStats(nil), st.PerAP...),
			})
		}
		o.stats = *tr.Stats()
		return o
	}

	want := run(1)
	for _, procs := range []int{2, 4} {
		got := run(procs)
		if !reflect.DeepEqual(got.per, want.per) {
			t.Fatalf("GOMAXPROCS=%d per-round stats diverge", procs)
		}
		if !reflect.DeepEqual(got.stats, want.stats) {
			t.Fatalf("GOMAXPROCS=%d trajectory stats diverge:\n got %+v\nwant %+v",
				procs, got.stats, want.stats)
		}
	}
}

// TestTrajectoryAllAPsDropoutWellFormed: APDropProb = 1 kills the whole
// infrastructure every round. The rounds must stay well-formed — no
// panic, base statistics intact, zero frames through — and every
// scheduled frame is attributed to dropout.
func TestTrajectoryAllAPsDropoutWellFormed(t *testing.T) {
	const nDev, rounds = 8, 3
	net := testMultiAPNetwork(t, nDev, 2, 41)
	tr, err := NewTrajectory(net, TrajectoryConfig{Rounds: rounds, Seed: 5, APDropProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rounds; r++ {
		st, err := tr.Step()
		if err != nil {
			t.Fatal(err)
		}
		if st.Combined.Devices != nDev || st.Combined.FramesOK != 0 || st.Combined.Detected != 0 {
			t.Fatalf("round %d: all-dead round not well-formed: %+v", r, st.Combined)
		}
		if st.Combined.PER() != 1 {
			t.Fatalf("round %d: PER %v on an all-dead round", r, st.Combined.PER())
		}
	}
	s := tr.Stats()
	if s.AllLostRounds != rounds {
		t.Fatalf("AllLostRounds = %d, want %d", s.AllLostRounds, rounds)
	}
	if s.APDownRounds != 2*rounds {
		t.Fatalf("APDownRounds = %d, want %d", s.APDownRounds, 2*rounds)
	}
	if s.LostToDropout != nDev*rounds {
		t.Fatalf("LostToDropout = %d, want %d", s.LostToDropout, nDev*rounds)
	}
	if s.LostToInterference+s.LostToFading+s.LostToOther != 0 {
		t.Fatalf("losses misattributed: %+v", s)
	}
}

// TestTrajectoryDeepFadeRecovery drives one strong device into a
// persistent 12 dB fade (everyone else rides a high-K channel that
// never trips the power rule) and asserts the full recovery loop: the
// §3.2.3 slack rule skips it three rounds, NeedsReassociation trips,
// the AP drops it, it re-associates against the faded downlink, and
// its first CRC-valid frame closes the recovery window within the
// skip-budget + handshake latency.
func TestTrajectoryDeepFadeRecovery(t *testing.T) {
	const nDev = 8
	net := testMultiAPNetwork(t, nDev, 1, 51)
	tr, err := NewTrajectory(net, TrajectoryConfig{
		Rounds:      12,
		Seed:        13,
		Correlation: 0.999,
		KFactorDB:   25, // shallow fleet fading: only the forced fade trips
	})
	if err != nil {
		t.Fatal(err)
	}

	// Deep-fade the strongest device: plenty of SNR headroom, so the
	// only thing keeping it off the air is the power rule itself.
	dev := 0
	for i := 1; i < nDev; i++ {
		if net.dep.Devices[i].UplinkSNRdB > net.dep.Devices[dev].UplinkSNRdB {
			dev = i
		}
	}
	tr.faders[dev].SetDeepFade(12)

	recovered := -1
	for r := 0; r < 12; r++ {
		if _, err := tr.Step(); err != nil {
			t.Fatal(err)
		}
		if recovered < 0 && tr.pendingSince[dev] < 0 && r > 0 {
			recovered = r
			break
		}
	}
	s := tr.Stats()
	if s.Reassociations < 1 {
		t.Fatalf("deep fade never forced a re-association: %+v", s)
	}
	if s.DevicesLostByAP < 1 {
		t.Fatal("AP never dropped the faded device")
	}
	if recovered < 0 {
		t.Fatalf("device %d never recovered: %+v", dev, s)
	}
	// Budget: 3 skips to trip NeedsReassociation, ReassocRounds (1) of
	// handshake, back on the air that same round.
	budget := 3 + 1
	if len(s.RecoveryLatencies) == 0 || s.RecoveryLatencies[0] > budget {
		t.Fatalf("recovery latency %v exceeds budget %d", s.RecoveryLatencies, budget)
	}
	if !tr.known[dev] {
		t.Fatal("recovered device lost its AP record")
	}
}

// TestTrajectoryChurnRecoveryAccounting: heavy duty-cycling produces
// sleep and wake transitions, AP-side timeouts and re-associations,
// and the books stay consistent — every adversity decision re-derives
// from the seed, so two identical runs agree event for event.
func TestTrajectoryChurnRecoveryAccounting(t *testing.T) {
	run := func() TrajectoryStats {
		net := testMultiAPNetwork(t, 12, 1, 61)
		tr, err := NewTrajectory(net, TrajectoryConfig{
			Rounds:    20,
			Seed:      17,
			SleepProb: 0.3,
			WakeProb:  0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Run(); err != nil {
			t.Fatal(err)
		}
		return *tr.Stats()
	}
	s := run()
	if s.SleepEvents == 0 || s.WakeEvents == 0 {
		t.Fatalf("churn produced no transitions: %+v", s)
	}
	if s.DevicesLostByAP == 0 {
		t.Fatal("no sleeper was ever timed out by the AP")
	}
	if s.Reassociations == 0 {
		t.Fatal("no woken device ever re-associated")
	}
	if s.Rounds != 20 || len(s.PERPerRound) != 20 || len(s.ActivePerRound) != 20 {
		t.Fatalf("per-round series malformed: %+v", s)
	}
	for r, a := range s.ActivePerRound {
		if a < 0 || a > 12 {
			t.Fatalf("round %d: %d active devices", r, a)
		}
	}
	if again := run(); !reflect.DeepEqual(s, again) {
		t.Fatalf("churn trajectory not reproducible:\n %+v\nvs %+v", s, again)
	}
}

// TestTrajectoryInterferenceBurstsAttributed: with a burst every round
// and no other adversity, any lost frame can only be attributed to
// interference (or other — never fading or dropout).
func TestTrajectoryInterferenceBurstsAttributed(t *testing.T) {
	net := testMultiAPNetwork(t, 12, 2, 71)
	tr, err := NewTrajectory(net, TrajectoryConfig{
		Rounds:    6,
		Seed:      23,
		BurstProb: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.BurstRounds != 6 {
		t.Fatalf("BurstRounds = %d, want 6", s.BurstRounds)
	}
	if s.LostToFading != 0 || s.LostToDropout != 0 {
		t.Fatalf("burst-only losses misattributed: %+v", s)
	}
	if s.LostFrames() != s.LostToInterference+s.LostToOther {
		t.Fatalf("attribution books don't balance: %+v", s)
	}
}

// TestTrajectorySteadyStateAllocsDropoutFree: an event-free but
// evolution-active trajectory step — correlated fading and CFO drift
// on, no churn/burst/dropout events — touches no heap once the stats
// arenas are warm (the round path already had this gate; the
// trajectory layer must not regress it).
func TestTrajectorySteadyStateAllocsDropoutFree(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	net := testMultiAPNetwork(t, 12, 2, 81)
	tr, err := NewTrajectory(net, TrajectoryConfig{
		Rounds:      40,
		Seed:        29,
		Correlation: 0.9,
		KFactorDB:   20, // shallow fades: no skip/re-association events
		CFODriftHz:  0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		if _, err := tr.Step(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := tr.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state trajectory step allocates %.1f objects/op, want 0", allocs)
	}
}
