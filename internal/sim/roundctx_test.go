package sim

// Tests for the reusable round context: steady-state rounds must not
// allocate (extending PR 1's decoder gate up through frame setup and
// channel synthesis), must stay deterministic per seed, and must be
// safe to run concurrently across networks (the synth bank, FFT plans
// and worker pool are shared) — the latter exercised under -race in CI.

import (
	"runtime"
	"sync"
	"testing"

	"netscatter/internal/simtest"
)

func testNetwork(t testing.TB, nDev int, seed int64) *Network {
	t.Helper()
	dep := simtest.Deployment(t, nDev, seed)
	cfg := DefaultConfig()
	cfg.Params = simtest.SmallParams()
	cfg.PayloadBytes = 2
	net, err := NewNetwork(cfg, dep, nDev, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestRunRoundSteadyStateZeroAlloc pins the round context's
// allocation-free claim: after the first (warm-up) round, running a
// round touches no heap at GOMAXPROCS=1 (the worker pool runs inline;
// with workers it spawns goroutines, which allocate by design).
func TestRunRoundSteadyStateZeroAlloc(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	net := testNetwork(t, 16, 3)
	if _, err := net.RunRound(16); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := net.RunRound(16); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state RunRound allocates %.1f objects/op, want 0", allocs)
	}
}

// TestRunRoundDeterministicPerSeed asserts the arena refill preserves
// the draw order: two networks built from the same seed produce the
// same round statistics, round after round.
func TestRunRoundDeterministicPerSeed(t *testing.T) {
	a := testNetwork(t, 24, 11)
	b := testNetwork(t, 24, 11)
	for round := 0; round < 3; round++ {
		sa, err := a.RunRound(24)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := b.RunRound(24)
		if err != nil {
			t.Fatal(err)
		}
		if sa != sb {
			t.Fatalf("round %d diverged: %+v vs %+v", round, sa, sb)
		}
	}
}

// TestConcurrentRoundsAcrossNetworks runs several independent networks
// concurrently — sharing the synthesizer cache, FFT plans and the
// bounded worker pool — and checks each produces exactly its serial
// statistics. Run under -race this exercises the rewired sim path for
// data races.
func TestConcurrentRoundsAcrossNetworks(t *testing.T) {
	const nets = 4
	const rounds = 2

	// Serial baseline.
	want := make([][]RoundStats, nets)
	for i := 0; i < nets; i++ {
		net := testNetwork(t, 16, int64(100+i))
		for r := 0; r < rounds; r++ {
			stats, err := net.RunRound(16)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = append(want[i], stats)
		}
	}

	got := make([][]RoundStats, nets)
	errs := make([]error, nets)
	var wg sync.WaitGroup
	for i := 0; i < nets; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			net := testNetwork(t, 16, int64(100+i))
			for r := 0; r < rounds; r++ {
				stats, err := net.RunRound(16)
				if err != nil {
					errs[i] = err
					return
				}
				got[i] = append(got[i], stats)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < nets; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		for r := range want[i] {
			if got[i][r] != want[i][r] {
				t.Fatalf("network %d round %d: concurrent %+v != serial %+v", i, r, got[i][r], want[i][r])
			}
		}
	}
}
