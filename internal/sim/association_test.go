package sim

import (
	"bytes"
	"testing"

	"netscatter/internal/air"
	"netscatter/internal/chirp"
	"netscatter/internal/core"
	"netscatter/internal/dsp"
	"netscatter/internal/mac"
	"netscatter/internal/radio"
)

// TestAssociationOverTheAir runs the full Fig. 10 sequence through the
// physical layer: a new device's association request is an actual chirp
// frame on a reserved association shift, decoded by the AP's concurrent
// decoder alongside an existing device's data, and the ACK arrives on
// the newly assigned shift — all from superposed sample streams.
func TestAssociationOverTheAir(t *testing.T) {
	p := chirp.Default500k9
	book, err := core.NewCodeBook(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	ap := mac.NewAP(book)
	dec := core.NewDecoder(book, core.DefaultDecoderConfig(2))
	rng := dsp.NewRand(45)

	// Device 1 is already associated (protocol shortcut; its frames
	// below are real).
	dev1 := mac.NewDevice(book)
	act := dev1.OnQuery(ap.NextQuery(), -30)
	if !act.AssocRequest {
		t.Fatal("dev1 should request association")
	}
	if _, err := ap.OnAssociationRequest(12); err != nil {
		t.Fatal(err)
	}
	act = dev1.OnQuery(ap.NextQuery(), -30)
	if !act.AssocAck {
		t.Fatal("dev1 should ACK")
	}
	ap.OnAssociationAck(dev1.NetworkID())

	dev2 := mac.NewDevice(book)
	const dev2RSSI = -42.0 // weakish downlink
	payload1 := []byte{0x10, 0x20, 0x30}
	assocPayload := []byte{0xD2, 0x00, 0x01} // device hardware ID
	bits := len(payload1)*8 + core.CRCBits

	// --- Round 1: dev1 sends data, dev2 sends an association request,
	// both concurrently over the air.
	q := ap.NextQuery()
	a1 := dev1.OnQuery(q, -30)
	a2 := dev2.OnQuery(q, dev2RSSI)
	if !a2.AssocRequest {
		t.Fatal("dev2 should request association")
	}
	rx := receiveFrames(p, rng, []frameTx{
		{shift: a1.Shift, payload: payload1, snr: 12 + a1.GainDB},
		{shift: a2.Shift, payload: assocPayload, snr: -4 + a2.GainDB},
	}, bits)

	shifts, _ := ap.ActiveShifts() // dev1's shift + both assoc shifts
	res, err := dec.DecodeFrame(rx, 0, shifts, bits)
	if err != nil {
		t.Fatal(err)
	}
	// dev1's data decodes.
	if !res.Devices[0].CRCOK || !bytes.Equal(res.Devices[0].Payload, payload1) {
		t.Fatalf("dev1 data lost: %+v", res.Devices[0])
	}
	// The association request appears on exactly one assoc shift.
	var reqDecode *core.DeviceDecode
	for i := 1; i < len(res.Devices); i++ {
		if res.Devices[i].Detected {
			if reqDecode != nil {
				t.Fatal("request detected on both association shifts")
			}
			reqDecode = &res.Devices[i]
		}
	}
	if reqDecode == nil || !reqDecode.CRCOK || !bytes.Equal(reqDecode.Payload, assocPayload) {
		t.Fatalf("association request not decoded: %+v", reqDecode)
	}
	if reqDecode.Shift != a2.Shift {
		t.Fatalf("request on shift %d, expected %d", reqDecode.Shift, a2.Shift)
	}

	// The AP measures the request's strength and assigns a slot.
	measuredSNR := radio.LinearToDB(reqDecode.MeanPeakPower / res.NoiseBinPower / float64(p.N()))
	assign, err := ap.OnAssociationRequest(measuredSNR)
	if err != nil {
		t.Fatal(err)
	}

	// --- Round 2: the assignment rides the next query (here consumed
	// directly; the ASK downlink codec is covered by mac tests); dev2
	// ACKs on its new shift while dev1 keeps sending data.
	q2 := ap.NextQuery()
	if q2.Assign == nil {
		t.Fatal("assignment not piggybacked")
	}
	a1 = dev1.OnQuery(q2, -30)
	a2 = dev2.OnQuery(q2, dev2RSSI)
	if !a2.AssocAck {
		t.Fatalf("dev2 should ACK, got %+v", a2)
	}
	if a2.Shift != book.ShiftOfSlot(int(assign.Slot)) {
		t.Fatalf("ACK on shift %d, assigned slot %d", a2.Shift, assign.Slot)
	}
	ackPayload := []byte{0xAC, byte(dev2.NetworkID()), 0x00}
	rx2 := receiveFrames(p, rng, []frameTx{
		{shift: a1.Shift, payload: payload1, snr: 12 + a1.GainDB},
		{shift: a2.Shift, payload: ackPayload, snr: -4 + a2.GainDB},
	}, bits)
	res2, err := dec.DecodeFrame(rx2, 0, []int{a1.Shift, a2.Shift}, bits)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Devices[1].CRCOK || !bytes.Equal(res2.Devices[1].Payload, ackPayload) {
		t.Fatalf("ACK not decoded: %+v", res2.Devices[1])
	}
	ap.OnAssociationAck(dev2.NetworkID())

	if ap.Devices() != 2 {
		t.Fatalf("AP has %d devices, want 2", ap.Devices())
	}
	// --- Steady state: both devices' data decodes concurrently.
	q3 := ap.NextQuery()
	a1 = dev1.OnQuery(q3, -30)
	a2 = dev2.OnQuery(q3, dev2RSSI)
	if a2.AssocRequest || a2.AssocAck || !a2.Transmit {
		t.Fatalf("dev2 should send data, got %+v", a2)
	}
	payload2 := []byte{0x77, 0x88, 0x99}
	rx3 := receiveFrames(p, rng, []frameTx{
		{shift: a1.Shift, payload: payload1, snr: 12 + a1.GainDB},
		{shift: a2.Shift, payload: payload2, snr: -4 + a2.GainDB},
	}, bits)
	res3, err := dec.DecodeFrame(rx3, 0, []int{a1.Shift, a2.Shift}, bits)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res3.Devices[0].Payload, payload1) || !bytes.Equal(res3.Devices[1].Payload, payload2) {
		t.Fatal("steady-state concurrent decode failed")
	}
}

type frameTx struct {
	shift   int
	payload []byte
	snr     float64
}

func receiveFrames(p chirp.Params, rng *dsp.Rand, frames []frameTx, payloadBits int) []complex128 {
	var txs []air.Transmission
	for _, f := range frames {
		enc := core.NewEncoder(p, f.shift)
		pl := f.payload
		txs = append(txs, air.Transmission{
			Delayed: func(frac float64) []complex128 {
				return enc.FrameWaveformDelayed(pl, frac)
			},
			SNRdB:    f.snr,
			DelaySec: rng.Uniform(0, 1e-6),
		})
	}
	ch := air.NewChannel(p, rng)
	return ch.Receive(ch.FrameLength(core.PreambleSymbols+payloadBits, 2), txs)
}

// TestQueryOverASKDownlink closes the remaining over-the-air gap: the
// AP's query travels the 160 kbps ASK downlink (with noise) and decodes
// at the tag's envelope detector into the same Query.
func TestQueryOverASKDownlink(t *testing.T) {
	ap := mac.NewAP(mustBook(t))
	if _, err := ap.OnAssociationRequest(7); err != nil {
		t.Fatal(err)
	}
	q := ap.NextQuery()
	bits := q.EncodeBits()

	modem := radio.DefaultASK
	sig := modem.Modulate(bits)
	rng := dsp.NewRand(9)
	for i := range sig {
		sig[i] += rng.ComplexNormal(0.05) // ~13 dB envelope SNR
	}
	rxBits, err := modem.Demodulate(sig, len(bits))
	if err != nil {
		t.Fatal(err)
	}
	got, err := mac.DecodeBits(rxBits)
	if err != nil {
		t.Fatal(err)
	}
	if got.Assign == nil || got.Assign.NetworkID != q.Assign.NetworkID || got.Assign.Slot != q.Assign.Slot {
		t.Fatalf("query corrupted over downlink: %+v vs %+v", got.Assign, q.Assign)
	}
}

func mustBook(t *testing.T) *core.CodeBook {
	t.Helper()
	book, err := core.NewCodeBook(chirp.Default500k9, 2)
	if err != nil {
		t.Fatal(err)
	}
	return book
}
