package sim

import (
	"netscatter/internal/chirp"
	"netscatter/internal/core"
	"netscatter/internal/deploy"
)

// SchemeMetrics is one scheme's result at one network size — the three
// quantities of Figs. 17, 18 and 19.
type SchemeMetrics struct {
	// PHYRateBps is the network physical-layer rate: useful payload
	// bits per second during payload airtime (Fig. 17).
	PHYRateBps float64
	// LinkRateBps includes every overhead: AP queries and preambles
	// (Fig. 18).
	LinkRateBps float64
	// LatencySec is the time to collect the payload from all devices
	// (Fig. 19).
	LatencySec float64
}

// NetScatterMetrics converts measured round statistics into the three
// network metrics. Rates are bit goodput — correctly received payload
// bits over the relevant airtime — matching how Fig. 17's measured
// points hug the ideal line with growing variance at full SKIP=2
// density. Link-layer rates count the whole 40-bit payload+CRC section
// as useful (the paper's 207 kbps at N=256 is exactly 256·40 bits per
// 49.35 ms round).
func NetScatterMetrics(stats RoundStats, p chirp.Params, payloadBytes int) SchemeMetrics {
	frameBits := float64(payloadBytes*8 + core.CRCBits)
	good := stats.GoodFraction()
	return SchemeMetrics{
		PHYRateBps:  good * float64(stats.Devices) * p.OOKBitRate(),
		LinkRateBps: good * float64(stats.Devices) * frameBits / stats.RoundSecs,
		LatencySec:  stats.RoundSecs,
	}
}

// NetScatterIdealMetrics is the "NetScatter (Ideal)" line of Fig. 17:
// every device decodes, so the PHY rate is N·BW/2^SF.
func NetScatterIdealMetrics(n int, p chirp.Params, t Timing, q QueryConfig, payloadBytes int) SchemeMetrics {
	round := t.NetScatterRoundSeconds(p, q, payloadBytes)
	frameBits := float64(payloadBytes*8 + core.CRCBits)
	return SchemeMetrics{
		PHYRateBps:  float64(n) * p.OOKBitRate(),
		LinkRateBps: float64(n) * frameBits / round,
		LatencySec:  round,
	}
}

// LoRaFixedMetrics models the sequential LoRa backscatter baseline at a
// fixed 8.7 kbps ([25] via the paper's re-implementation): the AP
// queries each device in turn; every device pays its own query and
// preamble.
func LoRaFixedMetrics(n int, p chirp.Params, t Timing, payloadBytes int) SchemeMetrics {
	perDevice := t.LoRaDeviceSeconds(p, FixedLoRaBitrate, payloadBytes)
	total := float64(n) * perDevice
	// During payload airtime a sequential network sustains exactly the
	// per-device bitrate (one transmitter at a time), so the network
	// PHY rate is flat at 8.7 kbps regardless of N — the flat line of
	// Fig. 17.
	return SchemeMetrics{
		PHYRateBps:  FixedLoRaBitrate,
		LinkRateBps: float64(n) * float64(payloadBytes*8+core.CRCBits) / total,
		LatencySec:  total,
	}
}

// LoRaRateAdaptedMetrics models the ideal rate-adaptation baseline: each
// device transmits at the best bitrate its SNR admits (SX1276 SNR
// table, capped at 32 kbps), still sequentially.
func LoRaRateAdaptedMetrics(devices []deploy.Device, t Timing, payloadBytes int) SchemeMetrics {
	var total, payloadTime float64
	frameBits := float64(payloadBytes*8 + core.CRCBits)
	for _, d := range devices {
		opt := RateForSNR(d.UplinkSNRdB, 500e3)
		total += t.LoRaDeviceSeconds(opt.Params, opt.BitRate, payloadBytes)
		payloadTime += frameBits / opt.BitRate
	}
	return SchemeMetrics{
		// Payload-airtime rate of a sequential network: the harmonic
		// mean of the per-device bitrates.
		PHYRateBps:  frameBits * float64(len(devices)) / payloadTime,
		LinkRateBps: frameBits * float64(len(devices)) / total,
		LatencySec:  total,
	}
}
