package sim

import (
	"reflect"
	"runtime"
	"testing"

	"netscatter/internal/simtest"
)

func testMultiAPNetwork(t testing.TB, nDev, nAPs int, seed int64) *MultiAPNetwork {
	t.Helper()
	dep := simtest.MultiAPDeployment(t, nDev, nAPs, seed)
	cfg := DefaultConfig()
	cfg.Params = simtest.SmallParams()
	cfg.PayloadBytes = 2
	net, err := NewMultiAPNetwork(cfg, dep, nAPs, nDev, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestMultiAPRoundSmallClean: a small clean fleet should decode nearly
// everywhere, and the combined outcome can never fall below every
// single AP's (the aggregator represents each device by its best
// decode).
func TestMultiAPRoundSmallClean(t *testing.T) {
	net := testMultiAPNetwork(t, 16, 2, 1)
	stats, err := net.RunRound(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.PerAP) != 2 {
		t.Fatalf("per-AP stats for %d APs", len(stats.PerAP))
	}
	if stats.Combined.Detected < 15 {
		t.Fatalf("combined detected %d/16", stats.Combined.Detected)
	}
	if stats.Combined.FramesOK < 14 {
		t.Fatalf("combined framesOK %d/16", stats.Combined.FramesOK)
	}
	for a, s := range stats.PerAP {
		if s.Devices != 16 {
			t.Fatalf("AP %d saw %d devices", a, s.Devices)
		}
		if stats.Combined.FramesOK < s.FramesOK {
			t.Fatalf("combined framesOK %d below AP %d's %d",
				stats.Combined.FramesOK, a, s.FramesOK)
		}
	}
	if got := stats.DiversityFramesGained(); got < 0 {
		t.Fatalf("diversity gain %d negative", got)
	}
	if per := stats.Combined.PER(); per < 0 || per > 2.0/16 {
		t.Fatalf("combined PER %v", per)
	}
}

// TestMultiAPRunRoundSteadyStateZeroAlloc extends the single-AP round
// context's allocation gate to the multi-AP path: after the warm-up
// round, a k-AP round — template fan-out, k receive buffers, k decodes
// and the aggregation — touches no heap at GOMAXPROCS=1.
func TestMultiAPRunRoundSteadyStateZeroAlloc(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	net := testMultiAPNetwork(t, 16, 2, 3)
	if _, err := net.RunRound(16); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := net.RunRound(16); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state multi-AP RunRound allocates %.1f objects/op, want 0", allocs)
	}
}

// TestMultiAPRoundDeterministicPerSeed: two networks built from the
// same seed produce identical combined and per-AP statistics, round
// after round.
func TestMultiAPRoundDeterministicPerSeed(t *testing.T) {
	a := testMultiAPNetwork(t, 24, 3, 11)
	b := testMultiAPNetwork(t, 24, 3, 11)
	for round := 0; round < 3; round++ {
		sa, err := a.RunRound(24)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := b.RunRound(24)
		if err != nil {
			t.Fatal(err)
		}
		if sa.Combined != sb.Combined || !reflect.DeepEqual(sa.PerAP, sb.PerAP) {
			t.Fatalf("round %d diverged: %+v vs %+v", round, sa, sb)
		}
	}
}

// TestMultiAPRoundBitIdenticalAcrossGOMAXPROCSRace pins the tentpole's
// sim-level determinism contract under the race detector: for a fixed
// seed, every round's combined and per-AP statistics are identical
// across GOMAXPROCS ∈ {1, 2, 4}. The worker pool fans out template
// synthesis, the (AP, tile) grid and k parallel decodes; none of that
// scheduling may leak into the outcome.
func TestMultiAPRoundBitIdenticalAcrossGOMAXPROCSRace(t *testing.T) {
	const nDev = 20
	const nAPs = 2
	const rounds = 3

	type roundOut struct {
		Combined RoundStats
		PerAP    []RoundStats
	}
	run := func(procs int) []roundOut {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		net := testMultiAPNetwork(t, nDev, nAPs, 17)
		var outs []roundOut
		for r := 0; r < rounds; r++ {
			stats, err := net.RunRound(nDev)
			if err != nil {
				t.Fatal(err)
			}
			outs = append(outs, roundOut{stats.Combined, append([]RoundStats(nil), stats.PerAP...)})
		}
		return outs
	}

	want := run(1)
	for _, procs := range []int{2, 4} {
		got := run(procs)
		for r := range want {
			if !reflect.DeepEqual(got[r], want[r]) {
				t.Fatalf("GOMAXPROCS=%d round %d diverges: %+v vs %+v", procs, r, got[r], want[r])
			}
		}
	}
}

// TestMultiAPSingleAPDegeneracy: a 1-AP multi network places its AP at
// the floor center (the classic deployment's position), so its link
// state matches the classic generator's and rounds behave like a
// single-AP network's.
func TestMultiAPSingleAPDegeneracy(t *testing.T) {
	dep := simtest.MultiAPDeployment(t, 16, 1, 7)
	for i, dev := range dep.Devices {
		if dev.APLinks[0].UplinkSNRdB != dev.UplinkSNRdB {
			t.Fatalf("device %d: 1-AP uplink %v != classic %v",
				i, dev.APLinks[0].UplinkSNRdB, dev.UplinkSNRdB)
		}
		if dev.APLinks[0].Walls != dev.Walls {
			t.Fatalf("device %d: 1-AP walls %d != classic %d", i, dev.APLinks[0].Walls, dev.Walls)
		}
	}
	net := testMultiAPNetwork(t, 16, 1, 7)
	stats, err := net.RunRound(16)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Combined != stats.PerAP[0] {
		t.Fatalf("1-AP combined %+v != its only AP's %+v", stats.Combined, stats.PerAP[0])
	}
}

// TestMultiAPDiversityHelpsWeakDevices: with more APs, the weakest
// links shorten — at a pinned seed a 4-AP deployment must decode at
// least as many frames as the same fleet heard by one central AP, and
// the deployment's best-AP SNR floor must rise.
func TestMultiAPDiversityHelpsWeakDevices(t *testing.T) {
	const nDev = 48
	run := func(k int) int {
		net := testMultiAPNetwork(t, nDev, k, 5)
		stats, err := net.RunRound(nDev)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Combined.FramesOK
	}
	if ok1, ok4 := run(1), run(4); ok4 < ok1 {
		t.Fatalf("4-AP round decoded %d frames, 1-AP %d — diversity lost frames", ok4, ok1)
	}
}
