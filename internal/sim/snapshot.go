package sim

// Snapshot/export seam: long-lived hosts (netscatter-serve) fold every
// round's statistics into an Accumulator and export consistent
// Snapshot values concurrently with round stepping. RoundStats and
// MultiRoundStats are per-round views into arena-backed state, valid
// only until the next round; the Accumulator is the durable,
// concurrency-safe aggregate built from them.

import "sync"

// Snapshot is a self-contained aggregate of completed rounds, safe to
// retain and serialize. PER/BER/goodput are derived at snapshot time so
// the exported document carries both the raw counters (mergeable across
// snapshots) and the rates a dashboard wants.
type Snapshot struct {
	// Rounds completed; AllLostRounds of them scheduled devices but
	// delivered nothing.
	Rounds        int `json:"rounds"`
	AllLostRounds int `json:"all_lost_rounds"`

	// Device-round counters summed over rounds (a device transmitting
	// in R rounds counts R times).
	Devices  int64 `json:"device_rounds"`
	Detected int64 `json:"detected"`
	FramesOK int64 `json:"frames_ok"`

	// Payload accounting, in bits.
	BitErrors     int64 `json:"bit_errors"`
	TotalBits     int64 `json:"total_bits"`
	ScheduledBits int64 `json:"scheduled_bits"`

	// Simulated on-air time, summed over rounds.
	SimSeconds float64 `json:"sim_seconds"`

	// Soft cross-AP combining totals; zero unless the network ran with
	// SetSoftCombining enabled.
	SoftFramesOK int64 `json:"soft_frames_ok,omitempty"`
	SoftRounds   int   `json:"soft_rounds,omitempty"`

	// Derived rates (filled by Snapshot()).
	PER        float64 `json:"per"`
	BER        float64 `json:"ber"`
	GoodputBps float64 `json:"goodput_bps"`
}

// Merge folds another snapshot's counters into s and refreshes the
// derived rates. Snapshots are mergeable by design — every counter is
// a plain sum over rounds — which is what lets a campaign merge
// per-cell snapshots into one grid-wide aggregate.
func (s *Snapshot) Merge(o Snapshot) {
	s.Rounds += o.Rounds
	s.AllLostRounds += o.AllLostRounds
	s.Devices += o.Devices
	s.Detected += o.Detected
	s.FramesOK += o.FramesOK
	s.BitErrors += o.BitErrors
	s.TotalBits += o.TotalBits
	s.ScheduledBits += o.ScheduledBits
	s.SimSeconds += o.SimSeconds
	s.SoftFramesOK += o.SoftFramesOK
	s.SoftRounds += o.SoftRounds
	s.derive()
}

// derive fills the rate fields from the counters.
func (s *Snapshot) derive() {
	s.PER, s.BER, s.GoodputBps = 0, 0, 0
	if s.Devices > 0 {
		s.PER = 1 - float64(s.FramesOK)/float64(s.Devices)
	}
	if s.TotalBits > 0 {
		s.BER = float64(s.BitErrors) / float64(s.TotalBits)
	}
	if s.SimSeconds > 0 {
		s.GoodputBps = float64(s.TotalBits-s.BitErrors) / s.SimSeconds
	}
}

// Accumulator folds per-round statistics into a running Snapshot.
// All methods are safe for concurrent use; a Snapshot call observes a
// consistent state (never a torn round). The zero value is ready to
// use. Adding allocates nothing, so a tenant's round hot path stays
// allocation-free.
type Accumulator struct {
	mu sync.Mutex
	s  Snapshot
}

// AddRound folds one single-AP (or combined) round.
func (a *Accumulator) AddRound(r RoundStats) {
	a.mu.Lock()
	a.addLocked(r)
	a.mu.Unlock()
}

// AddMulti folds one multi-AP round: the combined outcome counts as
// the round, and the soft-combining outcome (when the round carried
// one) accumulates alongside.
func (a *Accumulator) AddMulti(m MultiRoundStats, soft bool) {
	a.mu.Lock()
	a.addLocked(m.Combined)
	if soft {
		a.s.SoftFramesOK += int64(m.Soft.FramesOK)
		a.s.SoftRounds++
	}
	a.mu.Unlock()
}

func (a *Accumulator) addLocked(r RoundStats) {
	s := &a.s
	s.Rounds++
	if r.Devices > 0 && r.FramesOK == 0 {
		s.AllLostRounds++
	}
	s.Devices += int64(r.Devices)
	s.Detected += int64(r.Detected)
	s.FramesOK += int64(r.FramesOK)
	s.BitErrors += int64(r.BitErrors)
	s.TotalBits += int64(r.TotalBits)
	s.ScheduledBits += int64(r.ScheduledBits)
	s.SimSeconds += r.RoundSecs
}

// Snapshot returns a consistent copy of the aggregate with derived
// rates filled in.
func (a *Accumulator) Snapshot() Snapshot {
	a.mu.Lock()
	s := a.s
	a.mu.Unlock()
	s.derive()
	return s
}

// Rounds reports the completed-round count (a cheap progress probe).
func (a *Accumulator) Rounds() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.s.Rounds
}
