package sim

import (
	"testing"

	"netscatter/internal/dsp"
	"netscatter/internal/mac"
)

// TestGroupScheduleSweepsWholeNetwork runs the §3.3.3 grouping end to
// end: more devices than one concurrent round supports are split into
// signal-strength groups, each group answers its own query round, and a
// full sweep collects from everyone with bounded per-group SNR spread.
func TestGroupScheduleSweepsWholeNetwork(t *testing.T) {
	dep := testDeployment(t, 192, 21)
	ids := make([]uint8, 192)
	snrs := make([]float64, 192)
	for i := range ids {
		ids[i] = uint8(i)
		snrs[i] = dep.Devices[i].UplinkSNRdB
	}
	// Cap groups at 96 devices and 18 dB spread: tighter rounds than
	// one 192-device free-for-all.
	groups, err := mac.PlanGroups(ids, snrs, 96, 18)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) < 2 {
		t.Fatalf("expected >= 2 groups, got %d", len(groups))
	}

	sched := mac.NewSchedule(groups)
	cfg := DefaultConfig()
	cfg.PayloadBytes = 4

	seen := map[uint8]bool{}
	var totalGood, totalSched float64
	for round := 0; round < sched.RoundsPerSweep(); round++ {
		g := sched.Next()
		// Build a per-group sub-deployment preserving device physics.
		sub := *dep
		sub.Devices = nil
		for _, id := range g.Members {
			sub.Devices = append(sub.Devices, dep.Devices[id])
			seen[id] = true
		}
		net, err := NewNetwork(cfg, &sub, len(g.Members), int64(round)+50)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := net.RunRound(len(g.Members))
		if err != nil {
			t.Fatal(err)
		}
		totalGood += float64(stats.GoodBits())
		totalSched += float64(stats.ScheduledBits)
		if frac := stats.GoodFraction(); frac < 0.75 {
			t.Fatalf("group %d (spread %.1f dB, %d devices) good fraction %.2f",
				g.ID, g.SpreadDB(), len(g.Members), frac)
		}
	}
	if len(seen) != 192 {
		t.Fatalf("sweep covered %d of 192 devices", len(seen))
	}
	if totalGood/totalSched < 0.85 {
		t.Fatalf("sweep goodput %.2f", totalGood/totalSched)
	}
	_ = dsp.Mean // keep dsp linked if assertions change
}
