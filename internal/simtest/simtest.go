// Package simtest holds the seed-pinned constructors the repository's
// test suites share: office deployments, small chirp parameter sets and
// template-path transmission fleets. Before it existed every test file
// rebuilt the same deploy.Generate / encoder-closure boilerplate by
// hand; centralizing it keeps the seeds (and therefore the pinned
// statistics across sim, air and deploy tests) in one place.
//
// The package deliberately does not import internal/sim: sim's
// in-package tests import simtest, and a simtest→sim edge would be an
// import cycle.
package simtest

import (
	"testing"

	"netscatter/internal/air"
	"netscatter/internal/chirp"
	"netscatter/internal/core"
	"netscatter/internal/deploy"
	"netscatter/internal/dsp"
	"netscatter/internal/radio"
)

// BandwidthHz is the receive bandwidth every test deployment's link
// budgets are computed over — the paper's 500 kHz.
const BandwidthHz = 500e3

// Deployment generates the standard test office: n devices over the
// DefaultOffice floor with the DefaultLinkBudget, placed by the given
// seed. Equal (n, seed) pairs reproduce the same geometry everywhere.
func Deployment(tb testing.TB, n int, seed int64) *deploy.Deployment {
	tb.Helper()
	rng := dsp.NewRand(seed)
	return deploy.Generate(deploy.DefaultOffice, radio.DefaultLinkBudget, n, BandwidthHz, rng)
}

// MultiAPDeployment is Deployment with a k-AP placement applied.
func MultiAPDeployment(tb testing.TB, n, aps int, seed int64) *deploy.Deployment {
	tb.Helper()
	dep := Deployment(tb, n, seed)
	dep.PlaceAPs(aps)
	return dep
}

// SmallParams returns the light chirp configuration (SF 7, 125 kHz)
// the suites use where decode physics matter but paper-scale frames
// would only cost time.
func SmallParams() chirp.Params {
	return chirp.Params{SF: 7, BW: 125e3, Oversample: 1}
}

// Bits returns nDev random bit sections of nBits each, pinned to seed.
func Bits(nDev, nBits int, seed int64) [][]byte {
	rng := dsp.NewRand(seed)
	bits := make([][]byte, nDev)
	for i := range bits {
		bits[i] = rng.Bits(nBits)
	}
	return bits
}

// txLink deterministically varies the per-device link scalars the
// transmission fleets below share, so fleets built by different suites
// exercise the same spread of SNRs, delays and offsets.
func txLink(p chirp.Params, i int) (snrDB, delaySec, freqHz float64) {
	return float64(3 + i%9),
		float64(i%5)/p.SampleRate() + 0.31/p.SampleRate(),
		float64(i*13%90) - 40
}

// TiledTxs builds a fleet of template-path (MixedTmpl + MixedAddRange)
// transmissions over the given bit sections; with mixed, the
// equivalent legacy Mixed-path fleet instead.
func TiledTxs(p chirp.Params, nDev int, bits [][]byte, mixed bool) []air.Transmission {
	txs := make([]air.Transmission, nDev)
	for i := 0; i < nDev; i++ {
		enc := core.NewEncoder(p, (i*7+3)%p.N())
		b := bits[i]
		tx := &txs[i]
		tx.SNRdB, tx.DelaySec, tx.FreqOffsetHz = txLink(p, i)
		if mixed {
			tx.Mixed = func(dst []complex128, frac, freqHz float64, gain complex128) []complex128 {
				return enc.FrameBitsWaveformMixedInto(dst, b, frac, freqHz, gain)
			}
		} else {
			tx.MixedTmpl = func(tmpl []complex128, frac, freqHz float64, gain complex128) []complex128 {
				return enc.FrameBitsWaveformMixedTemplates(tmpl, b, frac, freqHz, gain)
			}
			tx.MixedAddRange = func(out []complex128, lo, hi, at int, tmpl []complex128, frac, freqHz float64) {
				enc.FrameBitsWaveformMixedAddRange(out, lo, hi, at, tmpl, b, frac, freqHz)
			}
		}
	}
	return txs
}

// MultiTxs builds a fleet of multi-AP transmissions over the given bit
// sections, with per-AP SNRs spread deterministically per (device, AP).
// The closures are the same encoder closures TiledTxs installs, so a
// multi fleet and a tiled fleet over the same bits describe the same
// devices.
func MultiTxs(p chirp.Params, nDev, nAPs int, bits [][]byte) []air.MultiTransmission {
	txs := make([]air.MultiTransmission, nDev)
	for i := 0; i < nDev; i++ {
		enc := core.NewEncoder(p, (i*7+3)%p.N())
		b := bits[i]
		tx := &txs[i]
		snr, delay, freq := txLink(p, i)
		tx.DelaySec, tx.FreqOffsetHz = delay, freq
		tx.SNRdB = make([]float64, nAPs)
		for a := range tx.SNRdB {
			tx.SNRdB[a] = snr + float64((i+3*a)%7) - 3
		}
		tx.MixedTmpl = func(tmpl []complex128, frac, freqHz float64, gain complex128) []complex128 {
			return enc.FrameBitsWaveformMixedTemplates(tmpl, b, frac, freqHz, gain)
		}
		tx.MixedAddRange = func(out []complex128, lo, hi, at int, tmpl []complex128, frac, freqHz float64) {
			enc.FrameBitsWaveformMixedAddRange(out, lo, hi, at, tmpl, b, frac, freqHz)
		}
	}
	return txs
}
