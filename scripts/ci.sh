#!/usr/bin/env bash
# ci.sh — the repository's tier-1 gate: formatting, vet (plus
# staticcheck when available), build, tests (which include the
# golden-vector, zero-allocation, batch-vs-oracle bit-exactness and
# fuzz-seed gates), an explicit fuzz-seed pass, a race-detector pass
# over the concurrent paths, the benchmark-trajectory guard over the
# committed BENCH_<tag>.json reports, and the docs gate (route-coverage
# test, markdown link check, short-mode service soak).
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...
# Explicit assembly-declaration gate: the dsp package's AVX2 kernels
# must keep their Go prototypes, frame sizes and argument offsets in
# sync with the .s bodies (a mismatch is silent corruption, not a build
# error). Plain `go vet` includes asmdecl, but the dedicated pass keeps
# the gate visible and scoped even if the default analyzer set changes.
go vet -asmdecl ./internal/dsp

echo "== staticcheck =="
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
else
    echo "staticcheck not installed; skipping (tier-1 still gates on vet+tests)" >&2
fi

echo "== go build =="
go build ./...

echo "== go test =="
# -count=1 defeats the test cache so every CI run re-executes; -shuffle
# randomizes test order to surface inter-test state leaks.
go test -count=1 -shuffle=on ./...

echo "== fuzz seed corpus =="
# Runs every Fuzz* target over its committed seeds (no exploration):
# synthesizer phase continuity, interleaved-chain stride continuity
# (chain path vs serial recurrence), cyclic-shift identity, decoder
# round-trip, and the cross-AP aggregator's never-drop/never-double
# invariants.
go test -count=1 -run 'Fuzz' ./internal/synth ./internal/core ./internal/sim

echo "== race: concurrent paths =="
# The rewired sim round path, the batched parallel decoder (including
# the batch-vs-oracle bit-exactness sweep), the tiled channel path
# (template fan-out + tile workers, with the GOMAXPROCS ∈ {1,2,4}
# bit-exactness sweeps), the multi-AP fan-out (shared-template per-AP
# scaling, (AP, tile) workers, per-AP decodes — with its own
# GOMAXPROCS and single-AP-oracle sweeps), the adversarial trajectory
# runner (oracle bit-identity, churn/dropout recovery accounting, the
# full-adversity GOMAXPROCS sweep), the soft cross-AP combining path
# (emit arenas filled by pool workers, serial bin-wise sum, its own
# GOMAXPROCS sweep) and the stream/noise kernels, all under the race
# detector. The MatchesScalar|ZeroAlloc|SIMDMatches names pull in the
# per-kernel scalar-vs-vector bit-exactness gates (axpy/scale, fused
# noise add, dechirp, window-power scan, interleaved synthesis chains,
# ziggurat batch fill) so the vector dispatch seams also run raced.
go test -race -count=1 -run 'Concurrent|Parallel|Race|Mixed|Tiled|Stream|MultiAP|MultiChannel|Trajectory|Churn|Dropout|Soft|Emit|Fair|Accumulator|MatchesScalar|ZeroAlloc|SIMDMatches' ./internal/sim ./internal/core ./internal/air ./internal/pool ./internal/dsp ./internal/radio

echo "== campaign: unit + resume + race =="
# The declarative campaign runner: spec expansion, shard-order
# independence (artifacts byte-identical at any worker count), the
# kill/resume gate (truncated checkpoint resumes to a byte-identical
# artifact), and the remote (netscatter-serve) executor equivalence —
# all again under the race detector, which exercises the sharded
# worker pool and the checkpoint journal serialization.
go test -race -count=1 ./internal/campaign

echo "== serve: race + short soak =="
# The multi-tenant service under the race detector (endpoints, stream
# fan-out, fair scheduling), plus the reduced-fleet soak: steady round
# throughput and a flat heap across waves.
go test -race -count=1 -short ./internal/serve

echo "== benchguard: perf trajectory =="
scripts/benchguard.sh

echo "== docs =="
# Route coverage: every registered endpoint documented in docs/API.md
# and vice versa.
go test -count=1 -run 'TestRoutesDocumented' ./internal/serve
# Link check: every relative markdown link in the top-level and docs/
# references must resolve to a real file.
scripts/linkcheck.sh
# Campaign smoke: the worked spec example documented in docs/API.md
# must load and expand, and a short-mode campaign pass (grid run,
# checkpoint resume) must stay green.
go run ./cmd/netscatter-campaign -spec examples/campaign/office.json -expand >/dev/null
go test -count=1 -short -run 'TestShardOrderIndependence|TestResume' ./internal/campaign

echo "ci.sh: all green"
