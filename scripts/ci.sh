#!/usr/bin/env bash
# ci.sh — the repository's tier-1 gate: formatting, vet, build, tests
# (which include the golden-vector, zero-allocation and fuzz-seed
# gates), plus an explicit fuzz-seed pass and a race-detector pass over
# the concurrent paths.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== fuzz seed corpus =="
# Runs every Fuzz* target over its committed seeds (no exploration):
# synthesizer phase continuity, cyclic-shift identity, decoder round-trip.
go test -run 'Fuzz' ./internal/synth ./internal/core

echo "== race: concurrent paths =="
# The rewired sim round path, the parallel decoder and the channel
# synthesis fan-out, all under the race detector.
go test -race -run 'Concurrent|Parallel|Race|Mixed' ./internal/sim ./internal/core ./internal/air ./internal/pool

echo "ci.sh: all green"
