#!/usr/bin/env bash
# ci.sh — the repository's tier-1 gate: formatting, vet, build, tests.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "ci.sh: all green"
