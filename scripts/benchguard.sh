#!/usr/bin/env bash
# benchguard.sh — the benchmark-trajectory gate: diffs the newest
# committed BENCH_<tag>.json against its predecessor and fails on any
# >10% ns/op regression (or a zero-alloc benchmark starting to
# allocate, or a dropped benchmark) in the reports' shared set. Reports
# from different machines or bench times are refused rather than
# compared.
#
# Usage: scripts/benchguard.sh [-threshold X] [-allow-new spec] [report.json ...]
# Leading flags are forwarded to cmd/benchguard (e.g. -allow-new for
# intentionally renamed or retired benchmarks). With no file arguments
# the git-tracked BENCH_*.json reports are compared (newest two by
# embedded run timestamp), so stray local bench runs in the working
# tree never hijack the gate; outside a git checkout it falls back to
# globbing the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

flags=()
files=()
while [ "$#" -gt 0 ]; do
    case "$1" in
    -threshold|-allow-new|-dir|--threshold|--allow-new|--dir)
        if [ "$#" -lt 2 ]; then
            echo "benchguard.sh: flag $1 requires a value" >&2
            exit 2
        fi
        flags+=("$1" "$2")
        shift 2
        ;;
    -*)
        flags+=("$1")
        shift
        ;;
    *)
        files+=("$1")
        shift
        ;;
    esac
done

if [ "${#files[@]}" -gt 0 ]; then
    exec go run ./cmd/benchguard "${flags[@]}" "${files[@]}"
fi

tracked=()
if command -v git >/dev/null 2>&1 && git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
    while IFS= read -r f; do
        tracked+=("$f")
    done < <(git ls-files 'BENCH_*.json')
    # Reports staged in this checkout but not yet committed still count:
    # ls-files covers the index, which is exactly "what the PR ships".
fi
if [ "${#tracked[@]}" -ge 2 ]; then
    exec go run ./cmd/benchguard "${flags[@]}" "${tracked[@]}"
fi
exec go run ./cmd/benchguard "${flags[@]}"
