#!/usr/bin/env bash
# linkcheck.sh — verifies every relative markdown link in README.md,
# docs/*.md and DESIGN-*.md resolves to an existing file. External
# (http/https/mailto) links and pure #anchors are skipped; a path's
# #fragment is stripped before the existence check.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
checked=0
for doc in README.md docs/*.md DESIGN-*.md ROADMAP.md CHANGES.md PAPER.md; do
    [ -f "$doc" ] || continue
    dir=$(dirname "$doc")
    # Extract markdown link targets: [text](target)
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*|'#'*) continue ;;
        esac
        path="${target%%#*}"
        [ -n "$path" ] || continue
        checked=$((checked + 1))
        if [ ! -e "$dir/$path" ]; then
            echo "linkcheck: $doc links to missing file: $target" >&2
            fail=1
        fi
    done < <(grep -oE '\[[^][]*\]\([^()[:space:]]+\)' "$doc" | sed -E 's/.*\(([^()]+)\)/\1/')
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "linkcheck: $checked relative links resolve"
