package main

import (
	"strings"
	"testing"
)

func report(tag string, results ...Result) *Report {
	return &Report{Tag: tag, Results: results}
}

func res(name string, ns float64, allocs int64) Result {
	return Result{Name: name, NsPerOp: ns, AllocsPerOp: allocs}
}

func noAllow(t *testing.T) allowance {
	t.Helper()
	a, err := parseAllowNew("")
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestDiffPassesOnImprovement(t *testing.T) {
	base := report("old", res("A", 100, 0), res("B", 200, 3))
	cand := report("new", res("A", 90, 0), res("B", 150, 3))
	if f := diff(base, cand, 1.10, noAllow(t)); len(f) != 0 {
		t.Fatalf("unexpected failures: %v", f)
	}
}

func TestDiffFailsOnRegression(t *testing.T) {
	base := report("old", res("A", 100, 0))
	cand := report("new", res("A", 120, 0))
	f := diff(base, cand, 1.10, noAllow(t))
	if len(f) != 1 || !strings.Contains(f[0], "1.20x") {
		t.Fatalf("regression not flagged: %v", f)
	}
}

func TestDiffFailsOnNewAllocations(t *testing.T) {
	base := report("old", res("A", 100, 0))
	cand := report("new", res("A", 100, 2))
	f := diff(base, cand, 1.10, noAllow(t))
	if len(f) != 1 || !strings.Contains(f[0], "allocation-free") {
		t.Fatalf("alloc regression not flagged: %v", f)
	}
}

func TestDiffFailsOnUndeclaredDrop(t *testing.T) {
	base := report("old", res("A", 100, 0), res("B", 50, 0))
	cand := report("new", res("A", 100, 0))
	f := diff(base, cand, 1.10, noAllow(t))
	if len(f) != 1 || !strings.Contains(f[0], "missing") {
		t.Fatalf("drop not flagged: %v", f)
	}
}

func TestDiffAllowsDeclaredRemoval(t *testing.T) {
	base := report("old", res("A", 100, 0), res("B", 50, 0))
	cand := report("new", res("A", 100, 0))
	allow, err := parseAllowNew("B")
	if err != nil {
		t.Fatal(err)
	}
	if f := diff(base, cand, 1.10, allow); len(f) != 0 {
		t.Fatalf("declared removal still failed: %v", f)
	}
}

func TestDiffRenameCarriesRegressionGate(t *testing.T) {
	base := report("old", res("A", 100, 0), res("Old", 100, 0))
	cand := report("new", res("A", 100, 0), res("New", 200, 0))
	allow, err := parseAllowNew("Old=New")
	if err != nil {
		t.Fatal(err)
	}
	// The rename is permitted, but New regressed vs Old — still a fail.
	f := diff(base, cand, 1.10, allow)
	if len(f) != 1 || !strings.Contains(f[0], "New (was Old)") {
		t.Fatalf("renamed regression not flagged: %v", f)
	}

	// A clean rename passes, and Old is not reported missing.
	cand2 := report("new", res("A", 100, 0), res("New", 95, 0))
	if f := diff(base, cand2, 1.10, allow); len(f) != 0 {
		t.Fatalf("clean rename failed: %v", f)
	}
}

func TestDiffRejectsDanglingAllowances(t *testing.T) {
	base := report("old", res("A", 100, 0))
	cand := report("new", res("A", 100, 0))
	for _, spec := range []string{"Ghost", "Ghost=A", "A=Ghost"} {
		allow, err := parseAllowNew(spec)
		if err != nil {
			t.Fatal(err)
		}
		if f := diff(base, cand, 1.10, allow); len(f) == 0 {
			t.Fatalf("dangling allowance %q not rejected", spec)
		}
	}
}

func TestDiffNewBenchmarksAreFree(t *testing.T) {
	base := report("old", res("A", 100, 0))
	cand := report("new", res("A", 100, 0), res("Fresh", 1e9, 100))
	if f := diff(base, cand, 1.10, noAllow(t)); len(f) != 0 {
		t.Fatalf("new benchmark should not fail the gate: %v", f)
	}
}

func TestParseAllowNew(t *testing.T) {
	a, err := parseAllowNew(" Old=New , Gone ,X=Y")
	if err != nil {
		t.Fatal(err)
	}
	if a.renames["Old"] != "New" || a.renames["X"] != "Y" || !a.removed["Gone"] {
		t.Fatalf("parse result: %+v", a)
	}
	if _, err := parseAllowNew("=New"); err == nil {
		t.Fatal("malformed rename accepted")
	}
}

func TestDiffNoSharedBenchmarks(t *testing.T) {
	base := report("old", res("A", 100, 0))
	cand := report("new", res("B", 100, 0))
	f := diff(base, cand, 1.10, noAllow(t))
	found := false
	for _, msg := range f {
		if strings.Contains(msg, "no shared benchmarks") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no-shared-benchmarks not flagged: %v", f)
	}
}
